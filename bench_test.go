package scorpion

// Benchmark harness: one testing.B per table/figure of the paper's
// evaluation (§8), plus ablation benches for the design choices DESIGN.md
// calls out (incremental scoring, DT sampling, merger approximation).
//
// These run the same experiment code as cmd/scorpion-bench at a reduced
// scale so `go test -bench=. -benchmem` completes on a laptop; run
// `scorpion-bench -full` for paper-scale parameters. Quality metrics (F1)
// are attached with b.ReportMetric so shape comparisons appear alongside
// timings.

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/experiments"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// benchScale is the reduced experiment scale used by every figure bench.
func benchScale() experiments.Scale {
	return experiments.Scale{
		TuplesPerGroup: 150,
		Groups:         6,
		OutlierGroups:  3,
		Bins:           8,
		NaiveDeadline:  3 * time.Second,
		Seed:           1,
	}
}

// BenchmarkTable1RunningExample regenerates Tables 1 and 2 and the
// explanation of the running example.
func BenchmarkTable1RunningExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunningExample(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9NaivePredicates regenerates Figure 9 (NAIVE optimal
// predicates on SYNTH-2D-Hard across c).
func BenchmarkFigure9NaivePredicates(b *testing.B) {
	s := benchScale()
	var f1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure9(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		f1 = rows[len(rows)-1].OuterAcc.F1
	}
	b.ReportMetric(f1, "F1@c=0.5")
}

// BenchmarkFigure10NaiveAccuracy regenerates Figure 10 (NAIVE accuracy
// curves, Easy and Hard).
func BenchmarkFigure10NaiveAccuracy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11NaiveConvergence regenerates Figure 11 (best-so-far
// accuracy over time).
func BenchmarkFigure11NaiveConvergence(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12AccuracyByAlgorithm regenerates Figure 12 (DT vs MC vs
// NAIVE accuracy, 2D).
func BenchmarkFigure12AccuracyByAlgorithm(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13FScoreByDimension regenerates Figure 13 (F-score, 2-4D).
// NAIVE is restricted to keep the 4D grid tractable per iteration; the DT
// and MC curves are the figure's point.
func BenchmarkFigure13FScoreByDimension(b *testing.B) {
	s := benchScale()
	s.Algorithms = []string{"dt", "mc"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14CostByDimension regenerates Figure 14 (cost vs c, 2-4D).
func BenchmarkFigure14CostByDimension(b *testing.B) {
	s := benchScale()
	s.Algorithms = []string{"dt", "mc"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure15CostByScale regenerates Figure 15 (cost vs dataset
// size).
func BenchmarkFigure15CostByScale(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure15(s, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure16Caching regenerates Figure 16 (cached vs fresh c sweep)
// and reports the aggregate speedup.
func BenchmarkFigure16Caching(b *testing.B) {
	s := benchScale()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure16(s, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		var cached, fresh time.Duration
		for _, r := range rows {
			cached += r.Cached
			fresh += r.NoCache
		}
		if cached > 0 {
			speedup = float64(fresh) / float64(cached)
		}
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkIntelWorkload1 regenerates §8.4 INTEL workload 1 (dying sensor).
func BenchmarkIntelWorkload1(b *testing.B) {
	benchIntel(b, 1)
}

// BenchmarkIntelWorkload2 regenerates §8.4 INTEL workload 2 (battery
// decay).
func BenchmarkIntelWorkload2(b *testing.B) {
	benchIntel(b, 2)
}

func benchIntel(b *testing.B, workload int) {
	scale := experiments.IntelScale{Hours: 30, Sensors: 30, EpochsPerHour: 2, Seed: 7}
	var f1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.IntelWorkload(workload, scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Acc.F1 > f1 {
				f1 = r.Acc.F1
			}
		}
	}
	b.ReportMetric(f1, "bestF1")
}

// BenchmarkExpenseWorkload regenerates §8.4's EXPENSE workload.
func BenchmarkExpenseWorkload(b *testing.B) {
	scale := experiments.ExpenseScale{Days: 30, RowsPerDay: 60, Recipients: 120, Seed: 5}
	var f1 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExpenseWorkload(scale, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Acc.F1 > f1 {
				f1 = r.Acc.F1
			}
		}
	}
	b.ReportMetric(f1, "bestF1")
}

// --- Parallel search benches ------------------------------------------

// BenchmarkExplainParallel measures the worker-pool scaling of each search
// algorithm (Workers = 1, 2, 4, 8) on a fixed synthetic dataset — the perf
// trajectory baseline recorded in BENCH_parallel.json. NAIVE runs the
// black-box (median) scorer, DT the incremental AVG path, MC the
// anti-monotonic SUM path; parallel output is identical to serial, so the
// benches measure pure scheduling overhead vs. fan-out win.
func BenchmarkExplainParallel(b *testing.B) {
	cases := []struct {
		name string
		algo scorpionAlgo
		agg  string
	}{
		{"naive", scorpionAlgo{Naive, &naive.Params{Bins: 8}}, "median"},
		{"dt", scorpionAlgo{DT, nil}, "avg"},
		{"mc", scorpionAlgo{MC, nil}, "sum"},
	}
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 600, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 13,
	})
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
				req := &Request{
					Table:            ds.Table,
					SQL:              "SELECT " + tc.agg + "(v), g FROM synth GROUP BY g",
					Outliers:         ds.OutlierKeys,
					AllOthersHoldOut: true,
					Direction:        TooHigh,
					Attributes:       ds.DimNames(),
					Algorithm:        tc.algo.algo,
					NaiveParams:      tc.algo.naiveParams,
					Workers:          workers,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Explain(req); err != nil {
						b.Fatal(err)
					}
				}
				// Record the host parallelism with every run (after the
				// loop — ResetTimer deletes reported metrics): the scaling
				// numbers are only meaningful relative to it (a 1-CPU
				// container caps speedup at 1.0), so BENCH_parallel.json
				// re-records carry the caveat machine-readably.
				b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			})
		}
	}
}

// scorpionAlgo bundles an algorithm choice with its NAIVE tuning.
type scorpionAlgo struct {
	algo        Algorithm
	naiveParams *naive.Params
}

// BenchmarkExplainSharded measures sharding ONE NAIVE Explain across
// horizontal table slices at an EQUAL worker budget (Workers=1 for both
// sides, so the comparison is algorithmic, not core-count). The dataset is
// the realistic sharding shape: a large group-contiguous table (rows
// ordered by the GROUP BY key, as time-series data is) with many hold-out
// groups and few flagged outlier groups. The sharded path wins because the
// group-aware planner splits the hold-out-only region into slices whose
// local searches are skipped outright, and each searched shard's scorer
// scans only its window's slice of the flagged provenance — the combiner
// then re-scores the deduped per-shard candidates exactly on the full
// table (with the hold-out penalties the shard searches did not see), so
// the top predicate matches the unsharded run's, which the bench asserts.
// Recorded in BENCH_shard.json alongside gomaxprocs.
func BenchmarkExplainSharded(b *testing.B) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 2000, Groups: 60, OutlierGroups: 4, Mu: 80, Seed: 21,
	})
	request := func(shards int) *Request {
		return &Request{
			Table:            ds.Table,
			SQL:              "SELECT sum(v), g FROM synth GROUP BY g",
			Outliers:         ds.OutlierKeys,
			AllOthersHoldOut: true,
			Direction:        TooHigh,
			Attributes:       ds.DimNames(),
			Algorithm:        Naive,
			NaiveParams:      &naive.Params{Bins: 10},
			Workers:          1,
			Shards:           shards,
		}
	}
	// The correctness side of the acceptance criterion, checked once per
	// bench run: same top predicate, sharded or not.
	baseline, err := Explain(request(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var res *Result
			for i := 0; i < b.N; i++ {
				var err error
				if res, err = Explain(request(shards)); err != nil {
					b.Fatal(err)
				}
			}
			if len(res.Explanations) == 0 ||
				!res.Explanations[0].Predicate.Equal(baseline.Explanations[0].Predicate) {
				b.Fatalf("shards=%d top predicate diverged from unsharded", shards)
			}
			b.ReportMetric(float64(res.Stats.Shards), "shards")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// --- Ablation benches -------------------------------------------------

// benchSetup prepares a scorer + space over a standard 2D workload.
func benchSetup(b *testing.B, aggName string, c float64) (*influence.Scorer, *predicate.Space, *synth.Dataset) {
	b.Helper()
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 500, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 3,
	})
	task, space, err := eval.SynthTask(ds, aggName, 0.5, c)
	if err != nil {
		b.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		b.Fatal(err)
	}
	return scorer, space, ds
}

// BenchmarkScorerIncremental measures the §5.1 incremental scoring path.
func BenchmarkScorerIncremental(b *testing.B) {
	scorer, _, ds := benchSetup(b, "avg", 0.2)
	col := ds.Table.Schema().MustIndex("a1")
	p := predicate.MustNew(predicate.NewRangeClause(col, "a1", 20, 60, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer.ResetCache()
		_ = scorer.Influence(p)
	}
}

// BenchmarkScorerBlackBox measures the same predicate scored through the
// black-box recomputation path (the ablation of §5.1).
func BenchmarkScorerBlackBox(b *testing.B) {
	scorer, _, ds := benchSetup(b, "median", 0.2)
	col := ds.Table.Schema().MustIndex("a1")
	p := predicate.MustNew(predicate.NewRangeClause(col, "a1", 20, 60, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scorer.ResetCache()
		_ = scorer.Influence(p)
	}
}

// BenchmarkDTWithSampling measures DT with §6.1.2 sampling enabled.
func BenchmarkDTWithSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scorer, space, _ := benchSetup(b, "avg", 0.2)
		if _, err := dt.Run(scorer, space, dt.Params{SampleSeed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDTNoSampling is the sampling ablation: every tuple's influence
// is computed.
func BenchmarkDTNoSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scorer, space, _ := benchSetup(b, "avg", 0.2)
		if _, err := dt.Run(scorer, space, dt.Params{DisableSampling: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergerExact measures merging DT candidates with exact Scorer
// calls.
func BenchmarkMergerExact(b *testing.B) {
	benchMerger(b, false)
}

// BenchmarkMergerApproximation measures the §6.3 cached-tuple
// approximation.
func BenchmarkMergerApproximation(b *testing.B) {
	benchMerger(b, true)
}

func benchMerger(b *testing.B, approx bool) {
	scorer, space, _ := benchSetup(b, "avg", 0.2)
	res, err := dt.Run(scorer, space, dt.Params{DisableSampling: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var calls int64
	for i := 0; i < b.N; i++ {
		before := scorer.Calls()
		m := merge.New(scorer, space, merge.Params{
			TopQuartileOnly:  true,
			UseApproximation: approx,
		})
		out := m.Merge(res.Candidates)
		if _, ok := partition.Top(out); !ok {
			b.Fatal("no merged candidates")
		}
		calls = scorer.Calls() - before
		scorer.ResetCache()
	}
	b.ReportMetric(float64(calls), "scorer-calls/op")
}

// --- Anytime search benches -------------------------------------------

// BenchmarkExplainAnytime measures the interval-pruning win on the NAIVE
// enumeration at a stated error bound (epsilon = 2000 on a workload whose
// top scores sit near 11.6k, i.e. tolerate up to ~17% rank regret;
// confidence 0.95), against the exact run on the same dataset — the perf trajectory baseline
// recorded in BENCH_anytime.json. The workload is the shape the anytime
// path targets: few flagged outlier groups among many hold-outs, so a
// candidate settled by the sampled outlier interval skips the full outlier
// AND hold-out scans of the exact scorer. The bench asserts the anytime
// answer stays within epsilon of the exact run at every reported rank (the
// knob's contract), and reports pruned/escalated alongside gomaxprocs so
// re-records stay machine-comparable.
func BenchmarkExplainAnytime(b *testing.B) {
	const eps = 2000
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 2000, Groups: 24, OutlierGroups: 2, Mu: 300, Seed: 29,
	})
	request := func(epsilon float64) *Request {
		return &Request{
			Table:            ds.Table,
			SQL:              "SELECT sum(v), g FROM synth GROUP BY g",
			Outliers:         ds.OutlierKeys,
			AllOthersHoldOut: true,
			Direction:        TooHigh,
			Attributes:       ds.DimNames(),
			Algorithm:        Naive,
			Workers:          1,
			Epsilon:          epsilon,
		}
	}
	exact, err := Explain(request(0))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		epsilon float64
	}{
		{"exact", 0},
		{"anytime/eps=2000", eps},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var res *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if res, err = Explain(request(tc.epsilon)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			if tc.epsilon == 0 {
				return
			}
			b.ReportMetric(float64(res.Stats.Pruned), "pruned")
			b.ReportMetric(float64(res.Stats.Escalated), "escalated")
			if res.Stats.Pruned == 0 {
				b.Fatal("anytime bench run pruned nothing")
			}
			n := len(res.Explanations)
			if len(exact.Explanations) < n {
				n = len(exact.Explanations)
			}
			worst := 0.0
			for i := 0; i < n; i++ {
				if d := exact.Explanations[i].Influence - res.Explanations[i].Influence; d > worst {
					worst = d
				}
			}
			if worst > tc.epsilon+1e-9 {
				b.Fatalf("anytime regret %v exceeds epsilon %v", worst, tc.epsilon)
			}
			b.ReportMetric(worst, "max-regret")
		})
	}
}
