package scorpion

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// outlierRows unions the flagged groups' provenance for accuracy scoring.
func outlierRows(t *testing.T, ds *synth.Dataset) *relation.RowSet {
	t.Helper()
	qres, err := RunQuery(ds.Table, "SELECT avg(v), g FROM synth GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	gO := relation.NewRowSet(ds.Table.NumRows())
	for _, k := range ds.OutlierKeys {
		row, ok := qres.Lookup(k)
		if !ok {
			t.Fatalf("missing group %q", k)
		}
		gO.Or(row.Group)
	}
	return gO
}

// shardedRequest builds the standard synthetic request used by the
// sharded-vs-unsharded fixtures.
func shardedRequest(ds *synth.Dataset, agg string, algo Algorithm, shards int) *Request {
	return &Request{
		Table:            ds.Table,
		SQL:              fmt.Sprintf("SELECT %s(v), g FROM synth GROUP BY g", agg),
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
		Algorithm:        algo,
		NaiveParams:      &naive.Params{Bins: 6},
		Shards:           shards,
	}
}

// TestShardedMatchesUnshardedTopPredicate: Explain with Shards: k returns
// the same top predicate as the unsharded path, for every algorithm, on
// the synthetic fixtures.
func TestShardedMatchesUnshardedTopPredicate(t *testing.T) {
	// NAIVE enumerates the global clause grid exhaustively, so sharded runs
	// rediscover the identical top predicate on any dataset. MC is greedy:
	// its shard-local merges are order-dependent, so its strict-equality
	// fixture is the 1-D dataset where the merge order cannot diverge (on
	// higher dimensions sharded MC hovers around the unsharded heuristic,
	// sometimes beating it — see the README's determinism caveats).
	ds2 := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	ds1 := synth.Generate(synth.Config{
		Dims: 1, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	for _, tc := range []struct {
		algo Algorithm
		agg  string
		ds   *synth.Dataset
	}{
		{Naive, "sum", ds2},
		{MC, "sum", ds1},
		{DT, "avg", ds2},
	} {
		ds := tc.ds
		t.Run(tc.algo.String(), func(t *testing.T) {
			base, err := Explain(shardedRequest(ds, tc.agg, tc.algo, 1))
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Explanations) == 0 {
				t.Fatal("unsharded run found nothing")
			}
			if base.Stats.Shards != 1 {
				t.Fatalf("unsharded Stats.Shards = %d", base.Stats.Shards)
			}
			for _, k := range []int{2, 4} {
				res, err := Explain(shardedRequest(ds, tc.agg, tc.algo, k))
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Explanations) == 0 {
					t.Fatalf("shards=%d found nothing", k)
				}
				if res.Stats.Shards != k {
					t.Errorf("shards=%d: Stats.Shards = %d", k, res.Stats.Shards)
				}
				got, want := res.Explanations[0], base.Explanations[0]
				// DT partitions each shard's slice independently, so its
				// shard-local leaf boxes are data-dependent and the top
				// explanation can differ syntactically in either direction;
				// what must hold is that it explains the PLANTED truth at
				// least as well as the unsharded answer. The grid algorithms
				// (NAIVE, MC) enumerate the identical global grid and must
				// return the very same predicate.
				if tc.algo == DT {
					gO := outlierRows(t, ds)
					baseF1 := eval.Score(want.Predicate, ds.Table, gO, ds.OuterRows).F1
					gotF1 := eval.Score(got.Predicate, ds.Table, gO, ds.OuterRows).F1
					if gotF1 < baseF1-0.05 {
						t.Errorf("shards=%d: top %q F1 %.3f < unsharded %q F1 %.3f",
							k, got.Where, gotF1, want.Where, baseF1)
					}
					continue
				}
				if !got.Predicate.Equal(want.Predicate) {
					t.Errorf("shards=%d: top %q != unsharded %q", k, got.Where, want.Where)
				}
				if got.Influence != want.Influence {
					t.Errorf("shards=%d: influence %.9f != unsharded %.9f", k, got.Influence, want.Influence)
				}
			}
		})
	}
}

// TestShardedProgressReportsPerShard: a sharded search's Progress
// snapshots carry tagged per-shard best-so-far lists alongside the global
// best.
func TestShardedProgressReportsPerShard(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 400, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 17,
	})
	req := shardedRequest(ds, "sum", Naive, 3)
	req.Workers = 2
	req.ProgressInterval = 1 // sample as fast as possible
	var mu sync.Mutex
	var last Progress
	seenShards := false
	req.OnProgress = func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		last = p
		if len(p.Shards) > 0 {
			seenShards = true
		}
	}
	res, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shards != 3 {
		t.Fatalf("Stats.Shards = %d", res.Stats.Shards)
	}
	mu.Lock()
	defer mu.Unlock()
	if !seenShards {
		t.Fatal("no Progress snapshot carried per-shard bests")
	}
	if len(last.Best) == 0 {
		t.Fatal("final snapshot has no global best")
	}
	for _, sp := range last.Shards {
		if !strings.HasPrefix(sp.Shard, "shard-") {
			t.Errorf("shard tag %q", sp.Shard)
		}
	}
	if last.ScorerCalls == 0 {
		t.Error("progress never saw shard-local scorer calls")
	}
	if res.Stats.ScorerCalls == 0 {
		t.Error("Stats.ScorerCalls lost shard-local calls")
	}
}

// TestShardedCancellation: one context cancels every shard search
// mid-run; the partial result is flagged interrupted, like the unsharded
// path. The black-box median aggregate keeps the per-shard searches slow
// enough to catch in flight.
func TestShardedCancellation(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 3, TuplesPerGroup: 500, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 23,
	})
	req := shardedRequest(ds, "median", Naive, 4)
	req.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := ExplainContext(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res == nil || !res.Stats.Interrupted {
		t.Fatalf("cancelled sharded search should return an interrupted partial result")
	}
}

// TestShardsKnobValidation: negative shard counts are rejected; 0 (auto)
// on a small table runs unsharded.
func TestShardsKnobValidation(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 50, Groups: 4, OutlierGroups: 2, Mu: 80, Seed: 1,
	})
	req := shardedRequest(ds, "sum", Naive, -1)
	if _, err := Explain(req); err == nil {
		t.Fatal("negative shards accepted")
	}
	req.Shards = 0
	res, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shards != 1 {
		t.Fatalf("auto shards on a tiny table ran %d shards", res.Stats.Shards)
	}
}
