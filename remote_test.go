package scorpion_test

// Remote shard workers, exercised from the public API: a coordinator
// Request carrying a ShardDispatch must produce byte-identical output to
// the local sharded path — with a healthy fleet (every shard answered
// remotely) and under every injected worker failure (500s, hangs, deaths
// mid-stream, version skew), where per-shard local fallback recovers the
// exact answer. Lives in an external test package: internal/dispatch
// imports the scorpion root, so in-package tests cannot reach it.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/dispatch"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
	"github.com/scorpiondb/scorpion/internal/wire"
	"github.com/scorpiondb/scorpion/internal/worker"
)

// newTestWorker is an in-process stand-in for scorpion-server -worker: it
// answers POST /shards/search against the given tables through the same
// worker.Run a real deployment uses.
func newTestWorker(tb testing.TB, tables map[string]*scorpion.Table) *httptest.Server {
	tb.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		var task wire.Task
		if err := json.NewDecoder(r.Body).Decode(&task); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tbl, ok := tables[task.Table]
		if !ok {
			http.Error(w, "no such table", http.StatusNotFound)
			return
		}
		res, err := worker.Run(r.Context(), tbl, &task, 2)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(res)
	}))
}

// remoteRequest mirrors sharded_test.go's fixture request (PR 4), with the
// dispatcher left for the caller to attach.
func remoteRequest(ds *synth.Dataset, agg string, algo scorpion.Algorithm, shards int) *scorpion.Request {
	return &scorpion.Request{
		Table:            ds.Table,
		SQL:              fmt.Sprintf("SELECT %s(v), g FROM synth GROUP BY g", agg),
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
		Attributes:       ds.DimNames(),
		Algorithm:        algo,
		NaiveParams:      &naive.Params{Bins: 6},
		Shards:           shards,
	}
}

// assertSameAnswer requires the remote-sharded result to be
// indistinguishable from the reference: same explanation list, same
// predicates, bitwise-equal influences.
func assertSameAnswer(t *testing.T, got, want *scorpion.Result) {
	t.Helper()
	if len(got.Explanations) == 0 || len(got.Explanations) != len(want.Explanations) {
		t.Fatalf("explanation count %d, want %d", len(got.Explanations), len(want.Explanations))
	}
	for i := range got.Explanations {
		g, w := got.Explanations[i], want.Explanations[i]
		if !g.Predicate.Equal(w.Predicate) || g.Where != w.Where {
			t.Fatalf("explanation %d: %q != %q", i, g.Where, w.Where)
		}
		if g.Influence != w.Influence {
			t.Fatalf("explanation %d: influence %.17g != %.17g", i, g.Influence, w.Influence)
		}
	}
}

// TestRemoteShardedMatchesLocal is the tentpole acceptance criterion on
// the PR 4 fixtures: with every shard answered by a remote worker, the
// combined result matches the local-sharded run exactly — NAIVE on the
// 2-D dataset, MC on the 1-D dataset (where its greedy merges are
// deterministic).
func TestRemoteShardedMatchesLocal(t *testing.T) {
	ds2 := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	ds1 := synth.Generate(synth.Config{
		Dims: 1, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	for _, tc := range []struct {
		algo scorpion.Algorithm
		ds   *synth.Dataset
	}{
		{scorpion.Naive, ds2},
		{scorpion.MC, ds1},
	} {
		t.Run(tc.algo.String(), func(t *testing.T) {
			local, err := scorpion.Explain(remoteRequest(tc.ds, "sum", tc.algo, 2))
			if err != nil {
				t.Fatal(err)
			}
			srv := newTestWorker(t, map[string]*scorpion.Table{"synth": tc.ds.Table})
			defer srv.Close()
			pool, err := dispatch.NewPool(dispatch.Options{Peers: []string{srv.URL}})
			if err != nil {
				t.Fatal(err)
			}
			req := remoteRequest(tc.ds, "sum", tc.algo, 2)
			req.ShardDispatch = pool.For("synth", 1)
			remote, err := scorpion.Explain(req)
			if err != nil {
				t.Fatal(err)
			}
			assertSameAnswer(t, remote, local)
			st := pool.Stats()
			if st.Succeeded == 0 || st.Fallbacks != 0 {
				t.Fatalf("fleet did not answer the shards: %+v", st)
			}
		})
	}
}

// TestRemoteWorkerFailureFallsBackLocal injects every worker failure mode
// the dispatch layer must survive; in each, the coordinator's per-shard
// local fallback recovers and the final answer is identical to a run with
// no dispatcher at all.
func TestRemoteWorkerFailureFallsBackLocal(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	want, err := scorpion.Explain(remoteRequest(ds, "sum", scorpion.Naive, 2))
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	defer close(release)
	cases := []struct {
		name    string
		opts    dispatch.Options
		handler http.HandlerFunc
	}{
		{"worker answers 500", dispatch.Options{Retries: -1}, func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "internal", http.StatusInternalServerError)
		}},
		{"worker rejects task version", dispatch.Options{Retries: -1}, func(w http.ResponseWriter, r *http.Request) {
			// What a version-skewed real worker answers (see handleShardSearch).
			http.Error(w, "wire version not supported", http.StatusBadRequest)
		}},
		{"worker hangs past the shard timeout", dispatch.Options{Retries: -1, ShardTimeout: 100 * time.Millisecond},
			func(w http.ResponseWriter, r *http.Request) {
				io.Copy(io.Discard, r.Body)
				select {
				case <-r.Context().Done():
				case <-release:
				}
			}},
		{"worker dies mid-stream", dispatch.Options{Retries: -1}, func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, `{"version":1,"candidates":[{"cla`)
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // sever the connection mid-body
		}},
		{"worker answers a skewed result version", dispatch.Options{Retries: -1}, func(w http.ResponseWriter, r *http.Request) {
			io.Copy(io.Discard, r.Body)
			json.NewEncoder(w).Encode(&wire.Result{Version: wire.Version + 1})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.handler)
			defer srv.Close()
			opts := tc.opts
			opts.Peers = []string{srv.URL}
			opts.Backoff = time.Millisecond
			pool, err := dispatch.NewPool(opts)
			if err != nil {
				t.Fatal(err)
			}
			req := remoteRequest(ds, "sum", scorpion.Naive, 2)
			req.ShardDispatch = pool.For("synth", 1)
			got, err := scorpion.Explain(req)
			if err != nil {
				t.Fatalf("fleet failure leaked out of the search: %v", err)
			}
			assertSameAnswer(t, got, want)
			st := pool.Stats()
			if st.Succeeded != 0 || st.Fallbacks == 0 {
				t.Fatalf("expected every dispatch to fall back: %+v", st)
			}
		})
	}
}

// TestRemoteWorkerInterruptedOutcomeFallsBack: a worker whose search was
// interrupted (deadline, cancellation on ITS side) must not feed a partial
// candidate stream into the combiner; the coordinator re-searches locally.
func TestRemoteWorkerInterruptedOutcomeFallsBack(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 11,
	})
	want, err := scorpion.Explain(remoteRequest(ds, "sum", scorpion.Naive, 2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		json.NewEncoder(w).Encode(&wire.Result{Version: wire.Version, Interrupted: true})
	}))
	defer srv.Close()
	pool, err := dispatch.NewPool(dispatch.Options{Peers: []string{srv.URL}, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	req := remoteRequest(ds, "sum", scorpion.Naive, 2)
	req.ShardDispatch = pool.For("synth", 1)
	got, err := scorpion.Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswer(t, got, want)
}

// TestRemoteTaskWireSizeCompact is the wire-format acceptance criterion on
// the memory-lane 1M-row workload: a shard task whose provenance rides the
// adaptive (run-encoded) codec must cost at most a tenth of the same task
// with dense-bitmap provenance.
func TestRemoteTaskWireSizeCompact(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row fixture")
	}
	ds := synth.Generate(synth.Config{
		Dims: 1, TuplesPerGroup: 1000, Groups: 1000, OutlierGroups: 4, Mu: 80, Seed: 37,
	})
	n := ds.Table.NumRows()
	if n != 1_000_000 {
		t.Fatalf("fixture rows = %d, want 1M", n)
	}
	qres, err := scorpion.RunQuery(ds.Table, "SELECT sum(v), g FROM synth GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	task := func(groups []wire.Group) int {
		data, err := json.Marshal(&wire.Task{
			Version: wire.Version, Table: "synth", Rows: n,
			SQL: "SELECT sum(v), g FROM synth GROUP BY g", WindowLo: 0, WindowHi: n,
			Algorithm: "naive", Bins: 10, Attrs: ds.DimNames(),
			Lambda: 0.5, C: 0.2, Outliers: groups,
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	var compact, dense []wire.Group
	for _, k := range ds.OutlierKeys {
		row, ok := qres.Lookup(k)
		if !ok {
			t.Fatalf("missing group %q", k)
		}
		compact = append(compact, wire.Group{Key: k, Direction: 1, Rows: row.Group.AppendBinary(nil)})
		bm := relation.NewDenseRowSet(n)
		row.Group.ForEach(func(r int) { bm.Add(r) })
		if bm.Encoding() != "dense" {
			t.Fatalf("dense reference decayed to %q", bm.Encoding())
		}
		dense = append(dense, wire.Group{Key: k, Direction: 1, Rows: bm.AppendBinary(nil)})
	}
	compactBytes, denseBytes := task(compact), task(dense)
	t.Logf("shard task bytes: adaptive %d, dense %d (%.1fx)",
		compactBytes, denseBytes, float64(denseBytes)/float64(compactBytes))
	if compactBytes*10 > denseBytes {
		t.Fatalf("run-encoded task %d bytes, dense equivalent %d: want <= 1/10", compactBytes, denseBytes)
	}
}
