package scorpion

// Phase-trace structure suite: an explain run under a caller-provided root
// span must produce the documented phase tree, with each phase parented
// where the README says it is — plan and search under the root, per-shard
// spans (with the algorithm's own spans below them) under search, refine
// under combine, rank last. The companion registry assertions pin that the
// same run also lands in the metrics spine.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// TestExplainSpanTree runs a sharded anytime NAIVE explain under a root
// span and asserts the full phase tree.
func TestExplainSpanTree(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 150, Groups: 6, OutlierGroups: 2, Mu: 80, Seed: 11,
	})
	req := anytimeRequest(ds, Naive)
	req.Shards = 2
	req.Epsilon = 0.05
	req.Workers = 2

	root := obs.NewSpan("explain")
	reg := obs.NewRegistry()
	ctx := obs.ContextWithSpan(context.Background(), root)
	ctx = obs.ContextWithRegistry(ctx, reg)
	if _, err := ExplainContext(ctx, req); err != nil {
		t.Fatal(err)
	}
	root.End()

	node := root.Snapshot()
	search := node.Find("search")
	if node.Find("plan") == nil || search == nil || node.Find("rank") == nil {
		var buf bytes.Buffer
		root.WriteTree(&buf)
		t.Fatalf("missing top-level phase span; trace:\n%s", buf.String())
	}
	// The per-shard and combine spans must hang off "search", not the root.
	shard := search.Find("shard.search")
	combine := search.Find("combine")
	if shard == nil || combine == nil {
		var buf bytes.Buffer
		root.WriteTree(&buf)
		t.Fatalf("search span missing shard.search/combine children; trace:\n%s", buf.String())
	}
	// The anytime NAIVE path flushes at least one batch per shard search,
	// and its span nests under THAT shard, not under search directly.
	if shard.Find("naive.batch") == nil {
		var buf bytes.Buffer
		root.WriteTree(&buf)
		t.Fatalf("shard.search has no naive.batch child; trace:\n%s", buf.String())
	}
	// Refine is a combine sub-phase.
	if combine.Find("refine") == nil {
		var buf bytes.Buffer
		root.WriteTree(&buf)
		t.Fatalf("combine has no refine child; trace:\n%s", buf.String())
	}
	if shard.Attrs["shard"] == nil || shard.Attrs["rows"] == nil {
		t.Errorf("shard.search attrs = %v, want shard and rows", shard.Attrs)
	}
	if got := search.Attrs["algorithm"]; got != "naive" {
		t.Errorf("search algorithm attr = %v, want naive", got)
	}

	// The same run must have landed in the registry.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`scorpion_search_total{algorithm="naive"} 1`,
		"scorpion_scorer_calls_total",
		"scorpion_search_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q; got:\n%s", want, text)
		}
	}
}

// TestExplainSpanTreeSession pins the session (c-sweep) path's trace shape:
// no plan span, a dt-session search span that flips its reused_partition
// attr on the second run, and a rank span.
func TestExplainSpanTreeSession(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 100, Groups: 6, OutlierGroups: 2, Mu: 80, Seed: 3,
	})
	req := anytimeRequest(ds, DT)
	exp, err := NewExplainer(req)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{false, true} {
		root := obs.NewSpan("explain")
		ctx := obs.ContextWithSpan(context.Background(), root)
		if _, err := exp.ExplainCContext(ctx, 0.5-0.2*float64(i)); err != nil {
			t.Fatal(err)
		}
		root.End()
		node := root.Snapshot()
		search := node.Find("search")
		if search == nil || node.Find("rank") == nil {
			t.Fatalf("run %d: missing search/rank span", i)
		}
		if got := search.Attrs["reused_partition"]; got != want {
			t.Errorf("run %d: reused_partition = %v, want %v", i, got, want)
		}
	}
}
