package scorpion_test

import (
	"runtime"
	"testing"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/dispatch"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// BenchmarkExplainRemote measures the coordinator-side cost of answering
// shards on a worker fleet instead of in-process, on the BenchmarkExplainSharded
// workload: two httptest workers in the same process (so the wire cost is
// serialization + loopback HTTP, with no real network in the way), four
// shards, equal worker budget. Reported extras: dispatch overhead and
// bytes on the wire per shard, from the pool's own accounting. Each lane
// asserts the acceptance criterion first — remote-sharded top predicate
// identical to the local-sharded (and unsharded) one.
func BenchmarkExplainRemote(b *testing.B) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 2000, Groups: 60, OutlierGroups: 4, Mu: 80, Seed: 21,
	})
	request := func(shards int) *scorpion.Request {
		return &scorpion.Request{
			Table:            ds.Table,
			SQL:              "SELECT sum(v), g FROM synth GROUP BY g",
			Outliers:         ds.OutlierKeys,
			AllOthersHoldOut: true,
			Direction:        scorpion.TooHigh,
			Attributes:       ds.DimNames(),
			Algorithm:        scorpion.Naive,
			NaiveParams:      &naive.Params{Bins: 10},
			Workers:          1,
			Shards:           shards,
		}
	}
	baseline, err := scorpion.Explain(request(1))
	if err != nil {
		b.Fatal(err)
	}
	localSharded, err := scorpion.Explain(request(4))
	if err != nil {
		b.Fatal(err)
	}
	if !localSharded.Explanations[0].Predicate.Equal(baseline.Explanations[0].Predicate) {
		b.Fatal("local-sharded top predicate diverged from unsharded")
	}

	tables := map[string]*scorpion.Table{"synth": ds.Table}
	w1 := newTestWorker(b, tables)
	defer w1.Close()
	w2 := newTestWorker(b, tables)
	defer w2.Close()

	b.Run("shards=4/local", func(b *testing.B) {
		var res *scorpion.Result
		for i := 0; i < b.N; i++ {
			var err error
			if res, err = scorpion.Explain(request(4)); err != nil {
				b.Fatal(err)
			}
		}
		if !res.Explanations[0].Predicate.Equal(baseline.Explanations[0].Predicate) {
			b.Fatal("local-sharded top predicate diverged")
		}
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})

	b.Run("shards=4/remote", func(b *testing.B) {
		pool, err := dispatch.NewPool(dispatch.Options{Peers: []string{w1.URL, w2.URL}})
		if err != nil {
			b.Fatal(err)
		}
		var res *scorpion.Result
		for i := 0; i < b.N; i++ {
			req := request(4)
			req.ShardDispatch = pool.For("synth", 1)
			var err error
			if res, err = scorpion.Explain(req); err != nil {
				b.Fatal(err)
			}
		}
		if !res.Explanations[0].Predicate.Equal(localSharded.Explanations[0].Predicate) {
			b.Fatal("remote-sharded top predicate diverged from local-sharded")
		}
		st := pool.Stats()
		if st.Succeeded == 0 || st.Fallbacks != 0 {
			b.Fatalf("fleet did not answer the shards: %+v", st)
		}
		b.ReportMetric(float64(st.BytesOut)/float64(st.Succeeded), "task-B/shard")
		b.ReportMetric(float64(st.BytesIn)/float64(st.Succeeded), "result-B/shard")
		b.ReportMetric(float64(st.DispatchNanos)/float64(st.Succeeded), "dispatch-ns/shard")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})
}
