package scorpion

// Memory lane: the bytes/row cost of provenance and the scorer memo on a
// group-contiguous million-row workload — the numbers recorded in
// BENCH_memory.json next to the ns/op lanes. The workload is the shape the
// adaptive RowSet encodings target (and the shape real GROUP BY time
// tables have): rows clustered by group key, so each group's provenance is
// a handful of runs. The bench measures the same sets twice — as the
// adaptive encodings build them, and rebuilt through NewDenseRowSet, the
// fixed-bitmap baseline every set cost before the encoding family existed.

import (
	"runtime"
	"testing"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// heapAlloc forces a GC and reads live heap bytes.
func heapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BenchmarkProvenanceMemory measures group provenance and memo-cache
// memory on a 1000-groups × 1000-tuples/group synthetic table:
//
//	adaptive-bytes/row   per-row provenance cost as query.Run built it
//	dense-bytes/row      the same sets forced into the dense bitmap
//	reduction            dense / adaptive (acceptance floor: ≥ 4×)
//	heap-delta-bytes     live-heap growth attributable to the group sets
//	memo-entries/bytes   scorer memo size after a predicate grid
//
// Run with -benchtime 1x: the metrics are properties of the workload, not
// of iteration count.
func BenchmarkProvenanceMemory(b *testing.B) {
	ds := synth.Generate(synth.Config{
		Dims: 1, TuplesPerGroup: 1000, Groups: 1000, OutlierGroups: 4, Mu: 80, Seed: 37,
	})
	n := ds.Table.NumRows()
	q, err := query.FromSQL(ds.Table, "SELECT sum(v), g FROM synth GROUP BY g")
	if err != nil {
		b.Fatal(err)
	}

	var (
		adaptiveBytes, denseBytes int
		heapDelta                 uint64
		memoEntries               int
		memoBytes                 int64
		groups                    int
	)
	for i := 0; i < b.N; i++ {
		before := heapAlloc()
		res, err := q.Run()
		if err != nil {
			b.Fatal(err)
		}
		heapDelta = heapAlloc() - before

		adaptiveBytes, denseBytes, groups = 0, 0, len(res.Rows)
		for _, row := range res.Rows {
			adaptiveBytes += row.Group.MemBytes()
			// The baseline: the identical membership as a fixed bitmap.
			d := relation.NewDenseRowSet(n)
			row.Group.ForEach(func(r int) { d.Add(r) })
			if d.Count() != row.Group.Count() {
				b.Fatal("baseline rebuild diverged")
			}
			denseBytes += d.MemBytes()
		}

		// Memo cost: score a grid of candidate predicates through a scorer
		// over the flagged groups (4 outliers, 3 hold-outs keeps the bench
		// about memory, not scan time).
		task := &influence.Task{
			Table:  ds.Table,
			Agg:    q.Agg,
			AggCol: q.AggCol,
			Lambda: 0.5,
			C:      0.5,
		}
		for _, key := range ds.OutlierKeys {
			row, ok := res.Lookup(key)
			if !ok {
				b.Fatalf("missing outlier group %q", key)
			}
			task.Outliers = append(task.Outliers, influence.Group{
				Key: key, Rows: row.Group, Direction: influence.TooHigh,
			})
		}
		for _, key := range ds.HoldOutKeys[:3] {
			row, ok := res.Lookup(key)
			if !ok {
				b.Fatalf("missing hold-out group %q", key)
			}
			task.HoldOuts = append(task.HoldOuts, influence.Group{Key: key, Rows: row.Group})
		}
		scorer, err := influence.NewScorer(task)
		if err != nil {
			b.Fatal(err)
		}
		col := ds.Table.Schema().MustIndex(synth.DimName(0))
		for g := 0; g < 25; g++ {
			lo := float64(g * 4)
			p := predicate.MustNew(predicate.NewRangeClause(col, synth.DimName(0), lo, lo+8, false))
			_ = scorer.Influence(p)
		}
		memoEntries, memoBytes = scorer.MemoSize()
	}

	perRowAdaptive := float64(adaptiveBytes) / float64(n)
	perRowDense := float64(denseBytes) / float64(n)
	b.ReportMetric(perRowAdaptive, "adaptive-bytes/row")
	b.ReportMetric(perRowDense, "dense-bytes/row")
	b.ReportMetric(perRowDense/perRowAdaptive, "reduction")
	b.ReportMetric(float64(heapDelta), "heap-delta-bytes")
	b.ReportMetric(float64(groups), "groups")
	b.ReportMetric(float64(memoEntries), "memo-entries")
	b.ReportMetric(float64(memoBytes), "memo-bytes")
	if perRowDense < 4*perRowAdaptive {
		b.Fatalf("provenance reduction %.1f× below the 4× acceptance floor (adaptive %.3f B/row, dense %.3f B/row)",
			perRowDense/perRowAdaptive, perRowAdaptive, perRowDense)
	}
}
