package scorpion

import (
	"context"
	"fmt"
	"time"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/stream"
)

// Refresher answers repeated explanation requests over an APPEND-ONLY table
// as it grows — the streaming-ingestion counterpart of the Explainer's
// c-sweep reuse. Where the Explainer keeps search state warm across knob
// changes on fixed data, the Refresher keeps it warm across data changes on
// a fixed request:
//
//   - a cold run snapshots the full exact-scored candidate list (not just
//     the top-k) and starts a stream.Tracker over the table;
//   - when the table grows by an append batch, the tracker folds the tail
//     window into its per-group provenance and Removable states at
//     O(batch) cost, and the Refresher re-scores the snapshot's candidates
//     EXACTLY against the grown groups through a state-seeded scorer —
//     skipping query re-execution, state rebuilding, and the entire
//     predicate search.
//
// The warm result re-ranks the previous run's candidate pool under the new
// data. If an append shifts the data so far that the best predicate lies
// OUTSIDE that pool, only a cold run can find it — so the Refresher falls
// back to a cold run whenever the structure changed (new groups under
// all-others-hold-out, label groups missing, non-removable aggregates,
// interrupted prior runs) or the table grew past MaxWarmGrowth since the
// last cold run. See the README's "Streaming ingestion" section for the
// determinism caveats.
//
// ExplainTable must be called with the request's own table or an append
// SUCCESSOR of it: a later snapshot of the same append chain (equal schema,
// the previous rows as a prefix — what catalog entries sharing a Lineage
// guarantee). A Refresher is NOT safe for concurrent use; callers
// serialize (the HTTP server's stream sessions hold a per-session lock).
type Refresher struct {
	req     Request
	tracker *stream.Tracker // nil until a clean cold run (or when not removable)
	cands   []partition.Candidate
	algo    Algorithm
	shards  int // shard count of the cold search the candidates came from
	rows    int // rows at the last cold run — MaxWarmGrowth's baseline
	// fallback records why the LAST ExplainTable call took the cold path
	// ("" after a warm refresh); serving layers label their
	// warm-vs-cold counters with it.
	fallback string
}

// MaxWarmGrowth caps how much the table may grow, relative to its size at
// the last cold run, before the Refresher re-searches instead of
// re-scoring: past 50% growth the cached candidate pool is more stale than
// warm. (Each warm refresh still advances the tracker; the cap only forces
// the search itself to rerun.)
const MaxWarmGrowth = 0.5

// NewRefresher prepares a refresher for the request. No search runs until
// the first ExplainTable call (which is always cold). The request's Table
// is the chain's base; its knobs (labels, λ, c, algorithm, shards) are
// fixed for the refresher's lifetime — a different request shape belongs to
// a different Refresher.
func NewRefresher(req *Request) (*Refresher, error) {
	if req == nil {
		return nil, fmt.Errorf("scorpion: nil request")
	}
	return &Refresher{req: *req}, nil
}

// Configure adjusts the per-run execution knobs — worker-pool size,
// progress callback, and sampling interval — without touching warm state.
func (f *Refresher) Configure(workers int, onProgress func(Progress), interval time.Duration) {
	f.req.Workers = workers
	f.req.OnProgress = onProgress
	f.req.ProgressInterval = interval
}

// ExplainTable explains the request against tbl — the refresher's current
// table or an append successor of it. It reports whether the warm path
// answered (Stats.Refreshed is set on the Result too).
func (f *Refresher) ExplainTable(ctx context.Context, tbl *Table) (*Result, bool, error) {
	if tbl == nil {
		return nil, false, fmt.Errorf("scorpion: nil table")
	}
	if f.canRefresh(tbl) {
		if res, err, ok := f.refresh(ctx, tbl); ok {
			f.fallback = ""
			return res, true, err
		}
	}
	res, err := f.cold(ctx, tbl)
	return res, false, err
}

// FallbackReason names why the last ExplainTable call ran cold: one of
// "cold_start", "table_shrunk", "schema_changed", "growth_cap",
// "advance_failed", "new_group", "group_missing", "states_unavailable",
// or "seed_failed". Empty after a warm refresh.
func (f *Refresher) FallbackReason() string { return f.fallback }

// canRefresh gates the warm path on the cheap structural checks; refresh
// itself re-checks what only the tail reveals (new groups, missing labels).
func (f *Refresher) canRefresh(tbl *Table) bool {
	if f.tracker == nil || len(f.cands) == 0 || f.rows == 0 {
		f.fallback = "cold_start"
		return false
	}
	n := tbl.NumRows()
	if n < f.tracker.Rows() {
		// A shrunken table is not an append successor at all — distinct from
		// a schema change, and serving layers alert on the two differently.
		f.fallback = "table_shrunk"
		return false
	}
	if !tbl.Schema().Equal(f.tracker.Table().Schema()) {
		f.fallback = "schema_changed"
		return false
	}
	if float64(n-f.rows) > MaxWarmGrowth*float64(f.rows) {
		f.fallback = "growth_cap"
		return false
	}
	return true
}

// cold runs the full search against tbl and snapshots the warm state.
func (f *Refresher) cold(ctx context.Context, tbl *Table) (*Result, error) {
	r := f.req
	r.Table = tbl
	res, scored, err := explainFull(ctx, &r)
	f.req.Table = tbl
	f.rows = tbl.NumRows()
	if err != nil || res == nil || res.Stats.Interrupted {
		// A partial candidate list would silently degrade every later warm
		// refresh; only clean runs seed the snapshot.
		f.cands, f.tracker = nil, nil
		return res, err
	}
	f.algo = res.Stats.Algorithm
	f.shards = res.Stats.Shards
	f.cands = scored
	// Seed the tracker from the run's own query result: the search just
	// executed this exact query, so only the per-group states are built
	// here, not a second full-table grouping pass.
	if tr, terr := stream.NewTrackerFromResult(tbl, f.req.SQL, res.QueryResult); terr == nil {
		f.tracker = tr
	} else {
		// Not incrementally removable: this refresher only ever runs cold.
		f.tracker = nil
	}
	return res, nil
}

// refresh advances the tracker over the appended tail and re-scores the
// cached candidates exactly under the grown groups. ok=false means the
// delta revealed a structural change and the caller should run cold.
func (f *Refresher) refresh(ctx context.Context, tbl *Table) (*Result, error, bool) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scorpion: %w", err), true
	}
	delta, err := f.tracker.Advance(tbl)
	if err != nil {
		// An advance that failed structurally may have been a half-applied
		// batch; drop the tracker so the cold fallback rebuilds it. The
		// error itself explains WHY the warm path bailed — surface it
		// instead of letting the cold fallback look unprovoked.
		obs.LoggerFrom(ctx).Warn("scorpion: warm refresh abandoned, tracker advance failed",
			"error", err, "rows", tbl.NumRows())
		obs.SpanFrom(ctx).SetAttr("advance_error", err.Error())
		f.tracker = nil
		f.fallback = "advance_failed"
		return nil, nil, false
	}
	// A brand-new group under all-others-hold-out changes the label set
	// itself — the cached candidates were never scored against it.
	if f.req.AllOthersHoldOut && len(f.req.HoldOuts) == 0 && len(delta.New) > 0 {
		f.fallback = "new_group"
		return nil, nil, false
	}
	task := &influence.Task{
		Table:   tbl,
		Agg:     f.tracker.Removable(),
		AggCol:  f.tracker.AggCol(),
		Lambda:  f.req.ResolvedLambda(),
		C:       f.req.ResolvedC(),
		Perturb: f.req.Perturb,
	}
	flagged := make(map[string]bool, len(f.req.Outliers))
	for _, key := range f.req.Outliers {
		g, ok := f.tracker.Group(key)
		if !ok {
			f.fallback = "group_missing"
			return nil, nil, false // label group gone from the query output
		}
		task.Outliers = append(task.Outliers,
			influence.Group{Key: key, Rows: g.Rows, Direction: f.req.directionFor(key)})
		flagged[key] = true
	}
	holdKeys := f.req.HoldOuts
	if len(holdKeys) == 0 && f.req.AllOthersHoldOut {
		for _, key := range f.tracker.Keys() {
			if !flagged[key] {
				holdKeys = append(holdKeys, key)
			}
		}
	}
	for _, key := range holdKeys {
		g, ok := f.tracker.Group(key)
		if !ok {
			f.fallback = "group_missing"
			return nil, nil, false
		}
		task.HoldOuts = append(task.HoldOuts, influence.Group{Key: key, Rows: g.Rows})
	}
	outStates, err := f.tracker.States(outlierKeys(task))
	if err != nil {
		f.fallback = "states_unavailable"
		return nil, nil, false
	}
	holdStates, err := f.tracker.States(holdOutKeys(task))
	if err != nil {
		f.fallback = "states_unavailable"
		return nil, nil, false
	}
	scorer, err := influence.NewScorerSeeded(task, outStates, holdStates)
	if err != nil {
		f.fallback = "seed_failed"
		return nil, nil, false
	}
	// Re-score a copy: rescoreExact sorts and rewrites scores in place, and
	// the cold-fallback path must not observe a half-updated snapshot.
	cands := make([]partition.Candidate, len(f.cands))
	copy(cands, f.cands)
	scored := rescoreExact(scorer, cands)
	f.cands = scored
	r := f.req
	r.Table = tbl
	// f.rows deliberately stays at the LAST COLD run's size: MaxWarmGrowth
	// caps cumulative drift since the candidates were searched, not
	// per-batch growth — many small appends eventually force a re-search.
	f.req.Table = tbl
	res := present(&r, scorer, scored, f.tracker.Result())
	res.Stats.Algorithm = f.algo
	res.Stats.Duration = time.Since(start)
	res.Stats.ScorerCalls = scorer.Calls()
	// Report the shard count of the search that PRODUCED the candidate
	// pool: the re-score itself is windowless, but dropping the field
	// would make a sharded request look like its knob was ignored.
	res.Stats.Shards = f.shards
	res.Stats.Refreshed = true
	return res, nil, true
}

// Rows reports the refresher's current table size (0 before the first run).
func (f *Refresher) Rows() int {
	if f.tracker != nil {
		return f.tracker.Rows()
	}
	return f.rows
}

func outlierKeys(t *influence.Task) []string {
	out := make([]string, len(t.Outliers))
	for i, g := range t.Outliers {
		out[i] = g.Key
	}
	return out
}

func holdOutKeys(t *influence.Task) []string {
	out := make([]string, len(t.HoldOuts))
	for i, g := range t.HoldOuts {
		out[i] = g.Key
	}
	return out
}
