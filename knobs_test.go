package scorpion

// Regression tests for the explicit-zero knob fix, the hold-out flag
// recomputation in assemble, the count(*) algorithm auto-pick, and the
// Explainer session's §8.3.3 partition reuse.

import (
	"testing"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// TestExplicitZeroKnobsReachScorer proves SetLambda(0)/SetC(0) survive to
// the scorer's task, while plain zero fields still resolve to defaults —
// the resolved-defaults step that un-aliases "unset" from "explicitly 0".
func TestExplicitZeroKnobsReachScorer(t *testing.T) {
	base := Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
	}

	unset := base
	s, err := buildScorerForTest(&unset)
	if err != nil {
		t.Fatal(err)
	}
	if s.Task().Lambda != DefaultLambda || s.Task().C != DefaultC {
		t.Fatalf("unset knobs resolved to λ=%v c=%v, want defaults %v/%v",
			s.Task().Lambda, s.Task().C, DefaultLambda, DefaultC)
	}

	explicit := base
	explicit.SetLambda(0) // legal §3.2 setting: all weight on hold-outs
	explicit.SetC(0)      // legal §7 setting: Δ unscaled by |p(g)|
	s, err = buildScorerForTest(&explicit)
	if err != nil {
		t.Fatal(err)
	}
	if s.Task().Lambda != 0 || s.Task().C != 0 {
		t.Fatalf("explicit zeros reached the scorer as λ=%v c=%v, want 0/0",
			s.Task().Lambda, s.Task().C)
	}
	if got := explicit.ResolvedLambda(); got != 0 {
		t.Errorf("ResolvedLambda = %v, want 0", got)
	}
	if got := explicit.ResolvedC(); got != 0 {
		t.Errorf("ResolvedC = %v, want 0", got)
	}

	// Non-zero field writes keep working without the setters.
	direct := base
	direct.Lambda, direct.C = 0.3, 0.7
	if direct.ResolvedLambda() != 0.3 || direct.ResolvedC() != 0.7 {
		t.Errorf("non-zero field writes resolved to λ=%v c=%v",
			direct.ResolvedLambda(), direct.ResolvedC())
	}
}

// TestLambdaZeroChangesRanking is the behavioral half: with λ = 0 the
// objective is −(1−λ)·max_h|inf(h,p)| ≤ 0, so every reported influence
// must be non-positive — under the old bug (0 silently replaced by 0.5)
// the top influence stayed positive.
func TestLambdaZeroChangesRanking(t *testing.T) {
	req := &Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	}
	req.SetLambda(0)
	res, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Explanations {
		if e.Influence > 0 {
			t.Fatalf("λ=0 influence %v > 0 for %q: explicit zero was replaced by the default", e.Influence, e.Where)
		}
	}
}

// TestAssembleRecomputesHoldOutFlag checks assemble derives
// InfluencesHoldOut from the exact re-scored penalty instead of copying
// the partitioner's search-time estimate: a wrongly-true flag on a
// predicate that touches no hold-out rows is cleared, and a wrongly-false
// flag on one that perturbs a hold-out is set.
func TestAssembleRecomputesHoldOutFlag(t *testing.T) {
	req := &Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	}
	scorer, err := buildScorerForTest(req)
	if err != nil {
		t.Fatal(err)
	}
	tempCol := req.Table.Schema().MustIndex("temp")
	// temp ∈ [80, 200] matches rows only in the outlier groups (11AM temps
	// are ~35): exact hold-out penalty 0, yet the search claims true.
	outlierOnly := predicate.MustNew(predicate.NewRangeClause(tempCol, "temp", 80, 200, true))
	// temp ∈ [34, 34.5] matches one 11AM row: exact penalty > 0, yet the
	// search claims false.
	holdOutTouching := predicate.MustNew(predicate.NewRangeClause(tempCol, "temp", 34, 34.5, true))
	cands := []partition.Candidate{
		{Pred: outlierOnly, Score: 1, InfluencesHoldOut: true},
		{Pred: holdOutTouching, Score: 0.5, InfluencesHoldOut: false},
	}
	res, _ := assemble(req, scorer, cands, nil)
	if len(res.Explanations) != 2 {
		t.Fatalf("explanations = %d, want 2", len(res.Explanations))
	}
	for _, e := range res.Explanations {
		wantFlag := e.HoldOutPenalty > 0
		if e.InfluencesHoldOut != wantFlag {
			t.Errorf("%q: InfluencesHoldOut = %v contradicts exact HoldOutPenalty %v",
				e.Where, e.InfluencesHoldOut, e.HoldOutPenalty)
		}
	}
	// And the penalties themselves split as constructed.
	if res.Explanations[0].HoldOutPenalty != 0 {
		t.Errorf("outlier-only predicate has penalty %v", res.Explanations[0].HoldOutPenalty)
	}
	if res.Explanations[1].HoldOutPenalty <= 0 {
		t.Errorf("hold-out-touching predicate has penalty %v", res.Explanations[1].HoldOutPenalty)
	}
}

// checkRecorder is an anti-monotonic independent aggregate that records
// what check(D) actually received.
type checkRecorder struct {
	sawVals []int // lengths of the value slices passed to Check
}

func (c *checkRecorder) Name() string                   { return "recorder" }
func (c *checkRecorder) Compute(vals []float64) float64 { return float64(len(vals)) }
func (c *checkRecorder) Independent() bool              { return true }
func (c *checkRecorder) Check(vals []float64) bool {
	c.sawVals = append(c.sawVals, len(vals))
	return len(vals) > 0 // an empty projection must NOT pass
}

// TestChooseAlgorithmCountStarChecksData proves the §5.3 check(D) for a
// count(*)-style aggregate (AggCol = -1) runs on real per-tuple values:
// under the old code the chooser built an empty slice, the check passed
// vacuously, and MC was picked without the data ever being inspected.
func TestChooseAlgorithmCountStarChecksData(t *testing.T) {
	tbl := sensorsTable(t)
	rec := &checkRecorder{}
	task := &influence.Task{
		Table:  tbl,
		Agg:    rec,
		AggCol: -1, // count(*): no aggregate column
		Outliers: []influence.Group{
			{Key: "g", Rows: allRows(tbl), Direction: influence.TooHigh},
		},
		Lambda: 0.5,
		C:      0.2,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	algo, err := chooseAlgorithm(&Request{Algorithm: Auto}, scorer)
	if err != nil {
		t.Fatal(err)
	}
	if algo != MC {
		t.Fatalf("auto-picked %v, want MC (check saw real values and passed)", algo)
	}
	if len(rec.sawVals) != 1 || rec.sawVals[0] != tbl.NumRows() {
		t.Fatalf("Check received value slices of lengths %v, want one slice of %d (one value per tuple)",
			rec.sawVals, tbl.NumRows())
	}
}

// TestCountStarAutoPicksMC is the end-to-end sanity: count(*) through SQL
// still resolves to MC (COUNT's check is unconditionally true), now with
// the check actually fed.
func TestCountStarAutoPicksMC(t *testing.T) {
	res, err := Explain(&Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT count(*), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != MC {
		t.Errorf("count(*) auto-picked %v, want MC", res.Stats.Algorithm)
	}
}

func allRows(tbl *Table) *RowSet {
	rs := relation.NewRowSet(tbl.NumRows())
	for i := 0; i < tbl.NumRows(); i++ {
		rs.Add(i)
	}
	return rs
}

// TestExplainerSessionReusesPartitioning is the §8.3.3 acceptance test at
// the library level: the second ExplainC (new c) reports ReusedPartition
// and spends strictly fewer scorer calls than a cold one-shot Explain at
// the same c, while returning the same explanations.
func TestExplainerSessionReusesPartitioning(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 400, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 13,
	})
	base := &Request{
		Table:            ds.Table,
		SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
		Algorithm:        DT,
	}
	exp, err := NewExplainer(base)
	if err != nil {
		t.Fatal(err)
	}
	first, err := exp.ExplainC(1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.ReusedPartition {
		t.Error("first session run claims a reused partitioning")
	}
	warm, err := exp.ExplainC(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.ReusedPartition {
		t.Fatal("second session run did not reuse the partitioning")
	}

	cold := *base
	cold.SetC(0.5)
	coldRes, err := Explain(&cold)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.ScorerCalls >= coldRes.Stats.ScorerCalls {
		t.Errorf("warm run spent %d scorer calls, cold %d — reuse saved nothing",
			warm.Stats.ScorerCalls, coldRes.Stats.ScorerCalls)
	}
	if len(warm.Explanations) == 0 || len(coldRes.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	// Seeded merging may converge to a slightly different (equally valid)
	// merged predicate than an unseeded cold run — §8.3.3 trades exact
	// convergence for speed — so compare answer QUALITY, not identity: the
	// warm top's exact influence must be within 10% of the cold top's.
	warmTop, coldTop := warm.Explanations[0].Influence, coldRes.Explanations[0].Influence
	if coldTop <= 0 {
		t.Fatalf("cold top influence %v not positive", coldTop)
	}
	if warmTop < 0.9*coldTop {
		t.Errorf("warm top influence %v degraded vs cold %v", warmTop, coldTop)
	}
}
