// Quickstart: the paper's running example (Tables 1 and 2) through the
// public API. Nine sensor readings, an AVG(temp) GROUP BY query, two
// flagged outliers — and Scorpion explains them with "sensorid in ('3')".
package main

import (
	"fmt"
	"log"

	scorpion "github.com/scorpiondb/scorpion"
)

func main() {
	schema, err := scorpion.NewSchema(
		scorpion.Column{Name: "time", Kind: scorpion.Discrete},
		scorpion.Column{Name: "sensorid", Kind: scorpion.Discrete},
		scorpion.Column{Name: "voltage", Kind: scorpion.Continuous},
		scorpion.Column{Name: "humidity", Kind: scorpion.Continuous},
		scorpion.Column{Name: "temp", Kind: scorpion.Continuous},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Table 1 of the paper.
	b := scorpion.NewBuilder(schema)
	for _, r := range []scorpion.Row{
		{scorpion.S("11AM"), scorpion.S("1"), scorpion.F(2.64), scorpion.F(0.4), scorpion.F(34)},
		{scorpion.S("11AM"), scorpion.S("2"), scorpion.F(2.65), scorpion.F(0.5), scorpion.F(35)},
		{scorpion.S("11AM"), scorpion.S("3"), scorpion.F(2.63), scorpion.F(0.4), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(0.3), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(0.5), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(0.4), scorpion.F(100)},
		{scorpion.S("1PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(0.3), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(0.5), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(0.5), scorpion.F(80)},
	} {
		b.MustAppend(r)
	}
	table := b.Build()

	// The analyst sees the 12PM and 1PM averages spike (Table 2) and asks
	// why, keeping 11AM as the "this looks normal" reference.
	res, err := scorpion.Explain(&scorpion.Request{
		Table:            table,
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
		C:                1, // the paper's basic influence definition
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Q1 results (Table 2):")
	for _, row := range res.QueryResult.Rows {
		fmt.Printf("  avg(temp) @ %-4s = %6.2f\n", row.Key, row.Value)
	}
	fmt.Printf("\nSearch algorithm: %s (%s)\n", res.Stats.Algorithm, res.Stats.Duration.Round(1e6))
	fmt.Println("\nWhy are 12PM and 1PM so high?")
	for i, e := range res.Explanations {
		fmt.Printf("  %d. WHERE %-40s influence=%.2f matches=%d\n",
			i+1, e.Where, e.Influence, e.MatchedOutlierTuples)
	}
}
