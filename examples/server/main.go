// Server: the paper's Figure 2 architecture end to end over HTTP. The
// program generates the simulated Intel deployment, serves it through
// Scorpion's JSON API on a local port, then plays the front-end's role:
// query, flag the anomalous hours, and ask for explanations — all over
// the wire.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"github.com/scorpiondb/scorpion/datagen"
	"github.com/scorpiondb/scorpion/internal/server"
)

func main() {
	ds := datagen.Intel(datagen.IntelConfig{
		Hours: 36, Sensors: 30, EpochsPerHour: 2, Seed: 11,
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Fatal(http.Serve(ln, server.New(ds.Table)))
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving the simulated deployment at", base)

	// 1. The front-end runs the aggregate query to draw the chart.
	var queryOut struct {
		Rows []struct {
			Key   string  `json:"key"`
			Value float64 `json:"value"`
		} `json:"rows"`
	}
	post(base+"/query", map[string]any{
		"sql": "SELECT stddev(temp), hour FROM readings GROUP BY hour",
	}, &queryOut)
	fmt.Println("\nstddev(temp) by hour (every 6th):")
	for i, row := range queryOut.Rows {
		if i%6 == 0 {
			fmt.Printf("  %s  %8.3f\n", row.Key, row.Value)
		}
	}

	// 2. The user lassoes the spiking hours and asks why.
	var explainOut struct {
		Algorithm    string `json:"algorithm"`
		Explanations []struct {
			Where     string  `json:"where"`
			Influence float64 `json:"influence"`
		} `json:"explanations"`
	}
	post(base+"/explain", map[string]any{
		"sql":                "SELECT stddev(temp), hour FROM readings GROUP BY hour",
		"outliers":           ds.OutlierHours,
		"all_others_holdout": true,
		"direction":          "high",
		"attributes":         []string{"sensorid", "voltage", "light"},
		"top_k":              3,
	}, &explainOut)

	fmt.Printf("\nexplanations (algorithm %s):\n", explainOut.Algorithm)
	for i, e := range explainOut.Explanations {
		fmt.Printf("  %d. %s  (influence %.2f)\n", i+1, e.Where, e.Influence)
	}
	fmt.Printf("\nscripted culprit was sensor %s\n", ds.FailingSensor)
}

func post(url string, body any, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		log.Fatalf("%s: %s — %s", url, resp.Status, msg.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
