// Expenses: the paper's EXPENSE workload on the simulated 2012 campaign
// disbursement ledger. Seven days show eight-figure spending where the
// baseline is a few thousand dollars a day; Scorpion's MC search pins the
// spikes on GMMB INC. media buys — the same finding as the paper's §8.4.
package main

import (
	"fmt"
	"log"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/datagen"
)

func main() {
	ds := datagen.Expense(datagen.ExpenseConfig{
		Days:       90,
		RowsPerDay: 150,
		Recipients: 800,
		Seed:       2012,
	})
	fmt.Printf("ledger: %d disbursements over %d days (%d outlier days)\n\n",
		ds.Table.NumRows(), len(ds.OutlierDays)+len(ds.HoldOutDays), len(ds.OutlierDays))

	// Show the daily totals around the first outlier day.
	req := &scorpion.Request{
		Table:            ds.Table,
		SQL:              "SELECT sum(disb_amt), date FROM expenses WHERE candidate = 'Obama' GROUP BY date",
		Outliers:         ds.OutlierDays,
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
		C:                0.5,
		TopK:             3,
	}
	res, err := scorpion.Explain(req)
	if err != nil {
		log.Fatal(err)
	}

	outlier := map[string]bool{}
	for _, d := range ds.OutlierDays {
		outlier[d] = true
	}
	fmt.Println("daily totals (first 10 days):")
	for i, row := range res.QueryResult.Rows {
		if i >= 10 {
			break
		}
		marker := ""
		if outlier[row.Key] {
			marker = "  <-- flagged"
		}
		fmt.Printf("  %s  $%12.2f%s\n", row.Key, row.Value, marker)
	}

	fmt.Printf("\nalgorithm: %s (%s)\n", res.Stats.Algorithm, res.Stats.Duration.Round(1e6))
	fmt.Println("\nwhere did the money go?")
	for i, e := range res.Explanations {
		fmt.Printf("  %d. WHERE %s\n     influence %.0f, matches %d disbursements\n",
			i+1, e.Where, e.Influence, e.MatchedOutlierTuples)
	}

	// Tightening c narrows the explanation toward the biggest buys, exactly
	// as the paper's c sweep does.
	req.C = 1
	res, err = scorpion.Explain(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith c = 1 (most selective):")
	for i, e := range res.Explanations {
		fmt.Printf("  %d. WHERE %s\n", i+1, e.Where)
	}
}
