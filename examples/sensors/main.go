// Sensors: the paper's INTEL workloads on the simulated Intel Lab
// deployment. A full day-scale trace from 61 motes is generated with two
// scripted failures — a dying sensor (workload 1) and a battery-depleted
// one (workload 2) — and Scorpion traces each anomalous STDDEV(temp) spike
// back to the culprit's attributes.
package main

import (
	"fmt"
	"log"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/datagen"
)

func main() {
	for _, workload := range []datagen.IntelWorkload{
		datagen.IntelDyingSensor,
		datagen.IntelLowBattery,
	} {
		explainWorkload(workload)
	}
}

func explainWorkload(workload datagen.IntelWorkload) {
	ds := datagen.Intel(datagen.IntelConfig{
		Hours:         72,
		Sensors:       61,
		EpochsPerHour: 4,
		Workload:      workload,
		Seed:          42,
	})
	fmt.Printf("=== INTEL workload %d: %d readings, failing sensor %s, %d outlier hours ===\n",
		workload, ds.Table.NumRows(), ds.FailingSensor, len(ds.OutlierHours))

	// The paper sweeps c: high c yields selective predicates that expose
	// refinements (light/voltage bands), low c yields the broad culprit.
	for _, c := range []float64{1.0, 0.1} {
		res, err := scorpion.Explain(&scorpion.Request{
			Table:      ds.Table,
			SQL:        "SELECT stddev(temp), hour FROM readings GROUP BY hour",
			Outliers:   ds.OutlierHours,
			HoldOuts:   ds.HoldOutHours,
			Direction:  scorpion.TooHigh,
			C:          c,
			Attributes: []string{"sensorid", "voltage", "humidity", "light"},
			TopK:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  c = %.1f  (algorithm %s, %s)\n",
			c, res.Stats.Algorithm, res.Stats.Duration.Round(1e6))
		for i, e := range res.Explanations {
			fmt.Printf("   %d. %s\n      influence %.3f, matches %d readings\n",
				i+1, e.Where, e.Influence, e.MatchedOutlierTuples)
		}
	}
	fmt.Println()
}
