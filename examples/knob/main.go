// Knob: the §7 c parameter explored interactively with the caching
// Explainer. On a synthetic dataset with planted nested cubes, sweeping c
// from 1 to 0 walks the returned predicate from the tight inner cube out to
// the full outer cube — and the Explainer reuses the DT partitioning and
// prior merge results so each step after the first is much cheaper
// (the paper's §8.3.3 caching experiment).
package main

import (
	"fmt"
	"log"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/datagen"
)

func main() {
	ds := datagen.Synth(datagen.SynthConfig{
		Dims:           2,
		TuplesPerGroup: 1000,
		Mu:             80,
		Seed:           7,
	})
	fmt.Printf("planted outer cube: a1 ∈ [%.1f, %.1f], a2 ∈ [%.1f, %.1f]\n",
		ds.Outer.Lo[0], ds.Outer.Hi[0], ds.Outer.Lo[1], ds.Outer.Hi[1])
	fmt.Printf("planted inner cube: a1 ∈ [%.1f, %.1f], a2 ∈ [%.1f, %.1f]\n\n",
		ds.Inner.Lo[0], ds.Inner.Hi[0], ds.Inner.Lo[1], ds.Inner.Hi[1])

	explainer, err := scorpion.NewExplainer(&scorpion.Request{
		Table:            ds.Table,
		SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
		Attributes:       ds.DimNames(),
		TopK:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sweeping the c knob (cached Explainer):")
	for _, c := range []float64{1.0, 0.5, 0.2, 0.1, 0.0} {
		res, err := explainer.ExplainC(c)
		if err != nil {
			log.Fatal(err)
		}
		top := res.Explanations[0]
		fmt.Printf("  c=%.1f  (%8s)  matches %5d tuples  WHERE %s\n",
			c, res.Stats.Duration.Round(1e5), top.MatchedOutlierTuples, top.Where)
	}

	fmt.Println("\nsame sweep without caching (fresh Explain each time):")
	for _, c := range []float64{1.0, 0.5, 0.2, 0.1, 0.0} {
		req := &scorpion.Request{
			Table:            ds.Table,
			SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
			Outliers:         ds.OutlierKeys,
			AllOthersHoldOut: true,
			Direction:        scorpion.TooHigh,
			Attributes:       ds.DimNames(),
			Algorithm:        scorpion.DT,
			TopK:             1,
		}
		// SetC (not a field write) so the sweep's final c=0 step is an
		// explicit zero, matching ExplainC's semantics above.
		req.SetC(c)
		res, err := scorpion.Explain(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  c=%.1f  (%8s)  WHERE %s\n",
			c, res.Stats.Duration.Round(1e5), res.Explanations[0].Where)
	}
}
