package scorpion

// Streaming-ingestion equivalence suite — the append path's proof
// obligation: a table ingested as K append batches (through the Appender's
// shared-backing snapshot chain) must be INDISTINGUISHABLE to the search
// from a one-shot load. Table-driven over all three algorithms ×
// sharded/unsharded × K ∈ {1, 2, 7}: same top predicate, scores within
// 1e-9.

import (
	"fmt"
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// ingestKBatches rebuilds tbl's rows through an Appender in k batches.
func ingestKBatches(t *testing.T, tbl *Table, k int) *Table {
	t.Helper()
	app := NewAppender(tbl.Schema())
	n := tbl.NumRows()
	for b := 0; b < k; b++ {
		lo, hi := b*n/k, (b+1)*n/k
		rows := make([]Row, 0, hi-lo)
		for r := lo; r < hi; r++ {
			rows = append(rows, tbl.Row(r))
		}
		if _, err := app.Append(rows); err != nil {
			t.Fatal(err)
		}
	}
	got := app.Snapshot()
	if got.NumRows() != n {
		t.Fatalf("ingested %d rows, want %d", got.NumRows(), n)
	}
	return got
}

func TestAppendIngestionEquivalentToOneShot(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 100, Groups: 6, OutlierGroups: 2, Mu: 80, Seed: 9,
	})
	oneShot := ds.Table

	algos := []struct {
		name        string
		algo        Algorithm
		agg         string
		naiveParams *naive.Params
	}{
		{"naive", Naive, "sum", &naive.Params{Bins: 8}},
		{"mc", MC, "sum", nil},
		{"dt", DT, "avg", nil},
	}
	request := func(tbl *Table, a int, shards int) *Request {
		return &Request{
			Table:            tbl,
			SQL:              "SELECT " + algos[a].agg + "(v), g FROM synth GROUP BY g",
			Outliers:         ds.OutlierKeys,
			AllOthersHoldOut: true,
			Direction:        TooHigh,
			Attributes:       ds.DimNames(),
			Algorithm:        algos[a].algo,
			NaiveParams:      algos[a].naiveParams,
			Shards:           shards,
		}
	}

	for a := range algos {
		for _, shards := range []int{1, 2} {
			// The one-shot baseline for this (algorithm, sharding) cell.
			baseline, err := Explain(request(oneShot, a, shards))
			if err != nil {
				t.Fatalf("%s/shards=%d baseline: %v", algos[a].name, shards, err)
			}
			if len(baseline.Explanations) == 0 {
				t.Fatalf("%s/shards=%d baseline found nothing", algos[a].name, shards)
			}
			for _, k := range []int{1, 2, 7} {
				name := fmt.Sprintf("%s/shards=%d/K=%d", algos[a].name, shards, k)
				t.Run(name, func(t *testing.T) {
					ingested := ingestKBatches(t, oneShot, k)
					res, err := Explain(request(ingested, a, shards))
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Explanations) != len(baseline.Explanations) {
						t.Fatalf("explanations %d != baseline %d",
							len(res.Explanations), len(baseline.Explanations))
					}
					if !res.Explanations[0].Predicate.Equal(baseline.Explanations[0].Predicate) {
						t.Fatalf("top predicate %q != baseline %q",
							res.Explanations[0].Where, baseline.Explanations[0].Where)
					}
					for i := range res.Explanations {
						d := math.Abs(res.Explanations[i].Influence - baseline.Explanations[i].Influence)
						if d > 1e-9 {
							t.Fatalf("explanation %d influence %v != baseline %v (Δ %g)",
								i, res.Explanations[i].Influence, baseline.Explanations[i].Influence, d)
						}
					}
					if res.Stats.Shards != baseline.Stats.Shards {
						t.Fatalf("shards %d != baseline %d", res.Stats.Shards, baseline.Stats.Shards)
					}
				})
			}
		}
	}
}
