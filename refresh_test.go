package scorpion

import (
	"context"
	"math"
	"testing"
)

// streamFixture builds a group-contiguous table whose "out" group has a
// clear cause region (a ∈ [5, 8] carries v=100 against a background of 10).
func streamFixture(t *testing.T) (*Schema, []Row) {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "a", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	appendGroup := func(g string, n int, outlier bool) {
		for i := 0; i < n; i++ {
			a := float64(i % 10)
			v := 10.0
			if outlier && a >= 5 && a <= 8 {
				v = 100
			}
			rows = append(rows, Row{S(g), F(a), F(v)})
		}
	}
	appendGroup("hold1", 40, false)
	appendGroup("hold2", 40, false)
	appendGroup("out", 40, true)
	return schema, rows
}

// streamRows generates an append batch following the fixture's pattern.
func streamBatch(n int, withOutlierRows bool) []Row {
	var rows []Row
	for i := 0; i < n; i++ {
		a := float64((i * 3) % 10)
		v := 10.0
		g := []string{"hold1", "hold2"}[i%2]
		if withOutlierRows && i%3 == 0 {
			g = "out"
			if a >= 5 && a <= 8 {
				v = 100
			}
		}
		rows = append(rows, Row{S(g), F(a), F(v)})
	}
	return rows
}

func streamRequest(tbl *Table) *Request {
	return &Request{
		Table:            tbl,
		SQL:              "SELECT sum(v), g FROM t GROUP BY g",
		Outliers:         []string{"out"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Algorithm:        Naive,
	}
}

func buildFrom(t *testing.T, schema *Schema, rows []Row) *Table {
	t.Helper()
	b := NewBuilder(schema)
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}

func TestRefresherWarmMatchesCold(t *testing.T) {
	schema, rows := streamFixture(t)
	base := buildFrom(t, schema, rows)
	f, err := NewRefresher(streamRequest(base))
	if err != nil {
		t.Fatal(err)
	}
	res, refreshed, err := f.ExplainTable(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed || res.Stats.Refreshed {
		t.Fatal("first run reported as refreshed")
	}
	if len(res.Explanations) == 0 {
		t.Fatal("cold run found nothing")
	}

	app := AppenderFor(base)
	for batch := 0; batch < 3; batch++ {
		succ, err := app.Append(streamBatch(12, true))
		if err != nil {
			t.Fatal(err)
		}
		warm, refreshed, err := f.ExplainTable(context.Background(), succ)
		if err != nil {
			t.Fatal(err)
		}
		if !refreshed || !warm.Stats.Refreshed {
			t.Fatalf("batch %d: expected warm refresh", batch)
		}
		// The warm re-score must agree with a full cold run on the grown
		// table: same top predicate, same exact score.
		coldRes, err := Explain(streamRequest(succ))
		if err != nil {
			t.Fatal(err)
		}
		if len(warm.Explanations) == 0 || len(coldRes.Explanations) == 0 {
			t.Fatalf("batch %d: empty explanations (warm %d cold %d)",
				batch, len(warm.Explanations), len(coldRes.Explanations))
		}
		if !warm.Explanations[0].Predicate.Equal(coldRes.Explanations[0].Predicate) {
			t.Fatalf("batch %d: warm top %q != cold top %q",
				batch, warm.Explanations[0].Where, coldRes.Explanations[0].Where)
		}
		if d := math.Abs(warm.Explanations[0].Influence - coldRes.Explanations[0].Influence); d > 1e-9 {
			t.Fatalf("batch %d: warm influence %v != cold %v (Δ %g)",
				batch, warm.Explanations[0].Influence, coldRes.Explanations[0].Influence, d)
		}
		// Warm refreshes must be incremental: far fewer scorer calls than
		// the cold search.
		if warm.Stats.ScorerCalls >= coldRes.Stats.ScorerCalls {
			t.Fatalf("batch %d: warm path spent %d scorer calls, cold %d",
				batch, warm.Stats.ScorerCalls, coldRes.Stats.ScorerCalls)
		}
		// The refreshed query result reflects the grown data.
		wr, ok1 := warm.QueryResult.Lookup("out")
		cr, ok2 := coldRes.QueryResult.Lookup("out")
		if !ok1 || !ok2 || math.Abs(wr.Value-cr.Value) > 1e-9 {
			t.Fatalf("batch %d: warm group value %v != cold %v", batch, wr.Value, cr.Value)
		}
	}
}

func TestRefresherColdFallbacks(t *testing.T) {
	schema, rows := streamFixture(t)
	base := buildFrom(t, schema, rows)

	t.Run("new group under all-others-holdout", func(t *testing.T) {
		f, _ := NewRefresher(streamRequest(base))
		if _, _, err := f.ExplainTable(context.Background(), base); err != nil {
			t.Fatal(err)
		}
		app := AppenderFor(base)
		succ, err := app.Append([]Row{{S("brandnew"), F(1), F(10)}})
		if err != nil {
			t.Fatal(err)
		}
		res, refreshed, err := f.ExplainTable(context.Background(), succ)
		if err != nil {
			t.Fatal(err)
		}
		if refreshed || res.Stats.Refreshed {
			t.Fatal("label-set change served warm")
		}
		// The cold fallback rebuilt the snapshot: the NEXT append is warm.
		succ2, err := app.Append(streamBatch(6, true))
		if err != nil {
			t.Fatal(err)
		}
		if _, refreshed, err = f.ExplainTable(context.Background(), succ2); err != nil {
			t.Fatal(err)
		}
		if !refreshed {
			t.Fatal("refresher did not recover after cold fallback")
		}
	})

	t.Run("growth past MaxWarmGrowth", func(t *testing.T) {
		f, _ := NewRefresher(streamRequest(base))
		if _, _, err := f.ExplainTable(context.Background(), base); err != nil {
			t.Fatal(err)
		}
		app := AppenderFor(base)
		// Grow by more than 50% in one go.
		succ, err := app.Append(streamBatch(base.NumRows(), true))
		if err != nil {
			t.Fatal(err)
		}
		_, refreshed, err := f.ExplainTable(context.Background(), succ)
		if err != nil {
			t.Fatal(err)
		}
		if refreshed {
			t.Fatal("oversized growth served warm")
		}
	})

	t.Run("black-box aggregate never warms", func(t *testing.T) {
		req := streamRequest(base)
		req.SQL = "SELECT median(v), g FROM t GROUP BY g"
		f, _ := NewRefresher(req)
		if _, _, err := f.ExplainTable(context.Background(), base); err != nil {
			t.Fatal(err)
		}
		app := AppenderFor(base)
		succ, err := app.Append(streamBatch(6, true))
		if err != nil {
			t.Fatal(err)
		}
		res, refreshed, err := f.ExplainTable(context.Background(), succ)
		if err != nil {
			t.Fatal(err)
		}
		if refreshed || res.Stats.Refreshed {
			t.Fatal("black-box aggregate served warm")
		}
		if len(res.Explanations) == 0 {
			t.Fatal("cold fallback found nothing")
		}
	})

	t.Run("shrunken table vs schema change", func(t *testing.T) {
		// The two operator problems must surface as distinct reasons: a
		// table with FEWER rows than the tracker has folded in is not an
		// append successor at all, while a schema mismatch is a different
		// table entirely.
		f, _ := NewRefresher(streamRequest(base))
		if _, _, err := f.ExplainTable(context.Background(), base); err != nil {
			t.Fatal(err)
		}
		schema, rows := streamFixture(t)
		shrunk := buildFrom(t, schema, rows[:len(rows)-10])
		res, refreshed, err := f.ExplainTable(context.Background(), shrunk)
		if err != nil {
			t.Fatal(err)
		}
		if refreshed || res.Stats.Refreshed {
			t.Fatal("shrunken table served warm")
		}
		if got := f.FallbackReason(); got != "table_shrunk" {
			t.Fatalf("shrunken table fallback reason = %q, want table_shrunk", got)
		}

		f2, _ := NewRefresher(streamRequest(base))
		if _, _, err := f2.ExplainTable(context.Background(), base); err != nil {
			t.Fatal(err)
		}
		wideSchema, err := NewSchema(
			Column{Name: "g", Kind: Discrete},
			Column{Name: "a", Kind: Continuous},
			Column{Name: "v", Kind: Continuous},
			Column{Name: "extra", Kind: Continuous},
		)
		if err != nil {
			t.Fatal(err)
		}
		wideRows := make([]Row, 0, len(rows))
		for _, r := range rows {
			wideRows = append(wideRows, append(append(Row{}, r...), F(1)))
		}
		wide := buildFrom(t, wideSchema, wideRows)
		res, refreshed, err = f2.ExplainTable(context.Background(), wide)
		if err != nil {
			t.Fatal(err)
		}
		if refreshed || res.Stats.Refreshed {
			t.Fatal("schema change served warm")
		}
		if got := f2.FallbackReason(); got != "schema_changed" {
			t.Fatalf("schema change fallback reason = %q, want schema_changed", got)
		}
	})

	t.Run("nil table", func(t *testing.T) {
		f, _ := NewRefresher(streamRequest(base))
		if _, _, err := f.ExplainTable(context.Background(), nil); err == nil {
			t.Fatal("nil table accepted")
		}
	})
}

func TestRefresherInterruptedRunDoesNotPoisonWarmState(t *testing.T) {
	schema, rows := streamFixture(t)
	base := buildFrom(t, schema, rows)
	f, _ := NewRefresher(streamRequest(base))
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.ExplainTable(canceled, base); err == nil {
		t.Fatal("canceled context succeeded")
	}
	// The interrupted run must not have seeded candidates: the next call
	// runs cold and succeeds.
	res, refreshed, err := f.ExplainTable(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed {
		t.Fatal("served warm from an interrupted run's state")
	}
	if len(res.Explanations) == 0 {
		t.Fatal("recovery run found nothing")
	}
}

func TestRefresherWarmKeepsShardCount(t *testing.T) {
	schema, rows := streamFixture(t)
	base := buildFrom(t, schema, rows)
	req := streamRequest(base)
	req.Shards = 2
	f, _ := NewRefresher(req)
	cold, _, err := f.ExplainTable(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	app := AppenderFor(base)
	succ, err := app.Append(streamBatch(9, true))
	if err != nil {
		t.Fatal(err)
	}
	warm, refreshed, err := f.ExplainTable(context.Background(), succ)
	if err != nil {
		t.Fatal(err)
	}
	if !refreshed {
		t.Fatal("sharded request did not refresh warm")
	}
	// The warm result must not silently drop the request's sharding: it
	// reports the shard count of the search that produced the candidates.
	if warm.Stats.Shards != cold.Stats.Shards {
		t.Fatalf("warm Stats.Shards = %d, cold = %d", warm.Stats.Shards, cold.Stats.Shards)
	}
}
