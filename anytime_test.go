package scorpion

// Anytime-explanation suite — the proof obligations of the epsilon knob:
//
//  1. Epsilon = 0 is byte-identical to an untouched request: the estimator
//     is never built, so the exact path cannot have been perturbed. Checked
//     across NAIVE/MC × sharded/unsharded via reflect.DeepEqual on the
//     explanations.
//  2. Epsilon > 0 keeps every reported rank within epsilon of the exact
//     run's (the per-rank regret bound), prunes a meaningful share of the
//     candidate stream, and reports exact influence values.
//  3. Approximate runs are deterministic: run-to-run and serial-vs-parallel
//     equality (the per-(generation, group) seeding plus the frozen-frontier
//     batches).
//  4. Invalid knobs are rejected up front.

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/scorpiondb/scorpion/internal/synth"
)

// anytimeRequest builds a NAIVE-friendly request over the shared synthetic
// dataset; callers mutate the returned request per case.
func anytimeRequest(ds *synth.Dataset, algo Algorithm) *Request {
	return &Request{
		Table:            ds.Table,
		SQL:              "SELECT sum(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
		Algorithm:        algo,
		Shards:           1,
	}
}

func TestEpsilonZeroByteIdentical(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 150, Groups: 6, OutlierGroups: 2, Mu: 80, Seed: 11,
	})
	for _, algo := range []Algorithm{Naive, MC} {
		for _, shards := range []int{1, 2} {
			name := algo.String() + "/shards=" + string(rune('0'+shards))
			t.Run(name, func(t *testing.T) {
				plain := anytimeRequest(ds, algo)
				plain.Shards = shards
				base, err := Explain(plain)
				if err != nil {
					t.Fatal(err)
				}
				zero := anytimeRequest(ds, algo)
				zero.Shards = shards
				zero.Epsilon = 0
				zero.Confidence = 0.99 // must be ignored at epsilon 0
				res, err := Explain(zero)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Explanations, base.Explanations) {
					t.Fatalf("epsilon=0 explanations differ from the plain request's")
				}
				if res.Stats.Pruned != 0 || res.Stats.Escalated != 0 {
					t.Fatalf("epsilon=0 reported anytime counters: pruned %d escalated %d",
						res.Stats.Pruned, res.Stats.Escalated)
				}
			})
		}
	}
}

func TestAnytimeWithinEpsilonOfExact(t *testing.T) {
	// The two algorithms prune at very different scales. NAIVE's enumeration
	// is dominated by thousands of near-empty range predicates whose
	// zero-match bound already separates from the top-k frontier on small
	// groups. MC scores only a few dozen units per generation and prunes
	// against its generation's best unit, so a unit is certifiably droppable
	// only when its influence sits far below that frontier relative to the
	// sampling error of a quarter-sample — hence larger groups and a stronger
	// planted outlier (Mu) here, which pushes the background-only units well
	// under the cube cells' scores.
	configs := map[Algorithm]synth.Config{
		Naive: {Dims: 2, TuplesPerGroup: 400, Groups: 8, OutlierGroups: 3, Mu: 80, Seed: 23},
		MC:    {Dims: 2, TuplesPerGroup: 24000, Groups: 6, OutlierGroups: 2, Mu: 150, Seed: 23},
	}
	for _, algo := range []Algorithm{Naive, MC} {
		t.Run(algo.String(), func(t *testing.T) {
			ds := synth.Generate(configs[algo])
			exact, err := Explain(anytimeRequest(ds, algo))
			if err != nil {
				t.Fatal(err)
			}
			const eps = 0.5
			req := anytimeRequest(ds, algo)
			req.Epsilon = eps
			approx, err := Explain(req)
			if err != nil {
				t.Fatal(err)
			}
			if approx.Stats.Pruned == 0 {
				t.Fatalf("anytime %s run pruned nothing (escalated %d)", algo, approx.Stats.Escalated)
			}
			if len(approx.Explanations) == 0 {
				t.Fatal("anytime run found nothing")
			}
			// Per-rank regret: the anytime kth score may trail the exact kth
			// by at most epsilon (scores are exact re-scores on both sides).
			n := len(approx.Explanations)
			if len(exact.Explanations) < n {
				n = len(exact.Explanations)
			}
			for i := 0; i < n; i++ {
				if d := exact.Explanations[i].Influence - approx.Explanations[i].Influence; d > eps+1e-9 {
					t.Fatalf("rank %d regret %v exceeds epsilon %v", i, d, eps)
				}
			}
		})
	}
}

func TestAnytimeDeterministic(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 300, Groups: 6, OutlierGroups: 2, Mu: 80, Seed: 31,
	})
	run := func(workers int) *Result {
		req := anytimeRequest(ds, Naive)
		req.Epsilon = 0.5
		req.Workers = workers
		res, err := Explain(req)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	again := run(0)
	parallel := run(4)
	if !reflect.DeepEqual(serial.Explanations, again.Explanations) {
		t.Fatal("anytime run-to-run explanations differ")
	}
	if serial.Stats.Pruned != again.Stats.Pruned || serial.Stats.Escalated != again.Stats.Escalated {
		t.Fatalf("anytime run-to-run counters differ: (%d,%d) vs (%d,%d)",
			serial.Stats.Pruned, serial.Stats.Escalated, again.Stats.Pruned, again.Stats.Escalated)
	}
	if !reflect.DeepEqual(serial.Explanations, parallel.Explanations) {
		t.Fatal("anytime serial and parallel explanations differ")
	}
	if serial.Stats.Pruned != parallel.Stats.Pruned || serial.Stats.Escalated != parallel.Stats.Escalated {
		t.Fatalf("anytime serial/parallel counters differ: (%d,%d) vs (%d,%d)",
			serial.Stats.Pruned, serial.Stats.Escalated, parallel.Stats.Pruned, parallel.Stats.Escalated)
	}
}

func TestAnytimeShardedRuns(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 400, Groups: 8, OutlierGroups: 3, Mu: 80, Seed: 37,
	})
	req := anytimeRequest(ds, Naive)
	req.Epsilon = 0.5
	req.Shards = 2
	req.Workers = 2
	res, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shards != 2 {
		t.Fatalf("ran on %d shards, want 2", res.Stats.Shards)
	}
	if res.Stats.Pruned == 0 && res.Stats.Escalated == 0 {
		t.Fatal("sharded anytime run reported no anytime activity")
	}
	if len(res.Explanations) == 0 {
		t.Fatal("sharded anytime run found nothing")
	}
	// Top-1 sanity: the winner's score must be near the unsharded exact
	// winner's (sharded search is a different heuristic, so predicates may
	// differ; the influence must not collapse).
	exact, err := Explain(anytimeRequest(ds, Naive))
	if err != nil {
		t.Fatal(err)
	}
	if d := exact.Explanations[0].Influence - res.Explanations[0].Influence; math.Abs(d) > 1.0 {
		t.Fatalf("sharded anytime top influence %v far from exact %v",
			res.Explanations[0].Influence, exact.Explanations[0].Influence)
	}
}

func TestAnytimeKnobValidation(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 50, Groups: 4, OutlierGroups: 1, Mu: 80, Seed: 41,
	})
	req := anytimeRequest(ds, Naive)
	req.Epsilon = -0.1
	if _, err := Explain(req); err == nil || !strings.Contains(err.Error(), "epsilon") {
		t.Fatalf("negative epsilon accepted (err: %v)", err)
	}
	req = anytimeRequest(ds, Naive)
	req.Epsilon = 0.1
	req.Confidence = 1.5
	if _, err := Explain(req); err == nil || !strings.Contains(err.Error(), "confidence") {
		t.Fatalf("confidence 1.5 accepted (err: %v)", err)
	}
	req = anytimeRequest(ds, Naive)
	req.Confidence = -1
	if _, err := Explain(req); err == nil || !strings.Contains(err.Error(), "confidence") {
		t.Fatalf("confidence -1 accepted (err: %v)", err)
	}
}

func TestAnytimeUnsupportedFallsBackExact(t *testing.T) {
	// AVG is not linear-Δ: an epsilon > 0 request must silently run exact
	// (nil estimator), matching the plain request bit for bit.
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 100, Groups: 5, OutlierGroups: 2, Mu: 80, Seed: 43,
	})
	build := func() *Request {
		r := anytimeRequest(ds, Naive)
		r.SQL = "SELECT avg(v), g FROM synth GROUP BY g"
		return r
	}
	base, err := Explain(build())
	if err != nil {
		t.Fatal(err)
	}
	req := build()
	req.Epsilon = 0.5
	res, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Explanations, base.Explanations) {
		t.Fatal("AVG anytime request diverged from the exact run")
	}
	if res.Stats.Pruned != 0 || res.Stats.Escalated != 0 {
		t.Fatalf("AVG request reported anytime counters: pruned %d escalated %d",
			res.Stats.Pruned, res.Stats.Escalated)
	}
}
