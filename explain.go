package scorpion

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/estimate"
	"github.com/scorpiondb/scorpion/internal/feature"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/partition/mc"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/shard"
)

// Algorithm selects the predicate search strategy.
type Algorithm int

const (
	// Auto picks the best algorithm for the aggregate's properties:
	// MC for independent anti-monotonic aggregates whose data passes
	// check(D), DT for independent aggregates, NAIVE otherwise.
	Auto Algorithm = iota
	// Naive is the exhaustive §4.2 search (any aggregate).
	Naive
	// DT is the §6.1 regression-tree partitioner (independent aggregates).
	DT
	// MC is the §6.2 bottom-up search (independent, anti-monotonic).
	MC
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Naive:
		return "naive"
	case DT:
		return "dt"
	case MC:
		return "mc"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Request describes one explanation task.
type Request struct {
	// Table is the input relation D.
	Table *Table
	// SQL is the aggregate query (single table, one aggregate, GROUP BY).
	SQL string
	// Outliers lists the group keys the user flagged as anomalous. Keys of
	// multi-column GROUP BYs join the rendered values with "\x1f".
	Outliers []string
	// HoldOuts lists the group keys that must stay unchanged. When empty
	// and AllOthersHoldOut is set, every unflagged group is a hold-out.
	HoldOuts []string
	// AllOthersHoldOut treats every non-outlier group as a hold-out.
	AllOthersHoldOut bool
	// Direction is the error vector applied to all outliers (TooHigh or
	// TooLow). Use Directions for per-key control.
	Direction Direction
	// Directions optionally overrides Direction per outlier key.
	Directions map[string]Direction
	// Attributes restricts the explanation search space; empty means all
	// of A_rest (every attribute neither grouped nor aggregated).
	Attributes []string
	// AutoSelectAttributes, when positive, keeps only the k attributes most
	// informative about tuple influence (the §6.4 dimensionality-reduction
	// step, implemented via filter-based feature selection). Ignored when
	// Attributes is set explicitly.
	AutoSelectAttributes int
	// Lambda is the outlier/hold-out trade-off (§3.2). A zero value means
	// DefaultLambda; to request an explicit λ = 0 (all weight on hold-out
	// stability, a legal §3.2 setting), use SetLambda, which records
	// explicitness so the zero is honored.
	Lambda float64
	// C is the §7 influence/selectivity knob. A zero value means DefaultC;
	// to request an explicit c = 0 (influence unscaled by predicate
	// cardinality), use SetC. Lower values favor broad predicates, higher
	// values selective ones.
	C float64
	// lambdaSet / cSet mark Lambda / C as explicitly set — the
	// resolved-defaults step that lets a legal zero survive to the scorer
	// instead of being mistaken for "unset".
	lambdaSet bool
	cSet      bool
	// Perturb, when non-nil, switches influence from tuple deletion to
	// value perturbation (the §3.2 footnote's alternative): Δ measures how
	// the result would change had the matched tuples' aggregate values
	// been *Perturb instead.
	Perturb *float64
	// Algorithm forces a specific search strategy.
	Algorithm Algorithm
	// Workers sets the worker-pool size shared by every search algorithm
	// (the parallelization §8.3.2 leaves to future work): NAIVE fans out
	// predicate scoring, DT fans out tree-node expansion, and MC fans out
	// frontier scoring and merge expansion. 0 or 1 runs serially; a
	// negative value uses GOMAXPROCS. Parallel runs return the same
	// explanations as serial runs.
	Workers int
	// NaiveWorkers is honored when Workers is zero.
	//
	// Deprecated: use Workers, which parallelizes all three algorithms
	// rather than NAIVE alone.
	NaiveWorkers int
	// Shards fans the search across horizontal slices of the table: the
	// table is cut into (at most) Shards contiguous zero-copy views,
	// group-aware — cut points follow the outlier provenance quantiles —
	// the chosen algorithm runs per shard against that shard's rows only
	// (sharing the Workers budget, the context, and one best-so-far board,
	// tagged per shard), and the shards' candidates are deduped, re-scored
	// exactly on the full table, and merged. 1 disables sharding; 0 (the
	// default) picks automatically from the table size and worker budget —
	// small tables never shard. Negative values are rejected.
	//
	// Shard-local scores are estimates (each shard sees only its slice of
	// every group), so mid-search Progress numbers can differ from an
	// unsharded run's; the final ranking is exact. See the README's
	// "Sharded search" section for determinism caveats.
	Shards int
	// ShardDispatch, when non-nil, offers each shard search of a sharded
	// run to a remote worker fleet (see internal/dispatch) before running
	// it locally. Only grid-based algorithms (NAIVE, MC) with default
	// tuning — Bins and TopK aside — dispatch; everything else, and every
	// shard whose dispatch fails, runs locally. Because the coordinator's
	// post-processing and combiner are identical for both paths, remote
	// and local runs return identical results.
	ShardDispatch ShardDispatcher
	// TopK bounds the returned explanations (default 5).
	TopK int
	// Epsilon, when positive, switches NAIVE and MC to the anytime path: an
	// internal/estimate layer maintains stratified per-group row samples,
	// brackets each candidate's influence in a [lower, upper] interval at
	// increasing sample fractions, and escalates to the exact scorer only
	// while the interval still overlaps the running top-k frontier. A
	// candidate is pruned once its upper bound falls below the kth best
	// exact score plus Epsilon, so — at the estimator's confidence — every
	// reported rank is within Epsilon of the exact run's. Epsilon is in
	// influence units (the same scale as Explanation.Influence). Zero (the
	// default) runs the exact search, byte-identical to previous releases;
	// negative values are rejected. Unsupported tasks (AVG and other
	// non-linear aggregates, perturbation mode, DT) silently fall back to
	// the exact path. Scores in the Result are always exact: anytime mode
	// changes which candidates pay full scans, never the reported numbers.
	Epsilon float64
	// Confidence is the probability the anytime path's intervals jointly
	// cover the true influences (so pruning errors beyond Epsilon happen
	// with probability at most 1-Confidence). Zero means
	// DefaultConfidence (0.95); other values must lie in (0, 1). Ignored
	// when Epsilon is zero.
	Confidence float64

	// OnProgress, when non-nil, is invoked periodically while the search
	// runs with a best-so-far snapshot: elapsed time, scorer calls, and the
	// top candidates published so far. It is called from a monitor
	// goroutine (never after ExplainContext returns) and must not block for
	// long — the async job service uses it to answer polls mid-search.
	OnProgress func(Progress)
	// ProgressInterval is the OnProgress sampling period; 0 means 200ms.
	ProgressInterval time.Duration

	// NaiveParams, DTParams, MCParams and MergeParams override algorithm
	// tuning knobs when non-nil.
	NaiveParams *naive.Params
	DTParams    *dt.Params
	MCParams    *mc.Params
	MergeParams *merge.Params
}

// DefaultC is the default §7 selectivity knob value.
const DefaultC = 0.2

// DefaultLambda is the default hold-out trade-off.
const DefaultLambda = 0.5

// SetLambda sets the λ trade-off, honoring explicit zeros: unlike a plain
// field write, SetLambda(0) resolves to 0 (all weight on hold-outs)
// rather than DefaultLambda.
func (r *Request) SetLambda(v float64) {
	r.Lambda = v
	r.lambdaSet = true
}

// SetC sets the §7 c knob, honoring explicit zeros: unlike a plain field
// write, SetC(0) resolves to 0 (Δ unscaled by |p(g)|) rather than
// DefaultC.
func (r *Request) SetC(v float64) {
	r.C = v
	r.cSet = true
}

// ResolvedLambda is the λ the scorer will use: Lambda, unless it is an
// unset zero, in which case DefaultLambda. Cache keys must use resolved
// values so an explicit default and an unset knob never alias to
// different entries — nor an explicit zero to the default.
func (r *Request) ResolvedLambda() float64 {
	if r.Lambda == 0 && !r.lambdaSet {
		return DefaultLambda
	}
	return r.Lambda
}

// ResolvedC is the c the scorer will use: C, unless it is an unset zero,
// in which case DefaultC.
func (r *Request) ResolvedC() float64 {
	if r.C == 0 && !r.cSet {
		return DefaultC
	}
	return r.C
}

// DefaultConfidence is the interval confidence the anytime path uses when
// Request.Confidence is unset.
const DefaultConfidence = estimate.DefaultConfidence

// ResolvedConfidence is the interval confidence the anytime path will use:
// Confidence, unless it is an unset zero, in which case DefaultConfidence.
// Unlike Lambda and C, zero is not a legal confidence, so no explicit-zero
// setter is needed. Cache keys must use resolved values (see
// ResolvedLambda).
func (r *Request) ResolvedConfidence() float64 {
	if r.Confidence == 0 {
		return DefaultConfidence
	}
	return r.Confidence
}

// Explanation is one ranked answer.
type Explanation struct {
	// Predicate filters the tuples that explain the outliers.
	Predicate Predicate
	// Where is the predicate rendered as a SQL-ish condition with
	// dictionary values resolved.
	Where string
	// Influence is inf(O, H, p, V), the ranking objective.
	Influence float64
	// MatchedOutlierTuples is |p(g_O)|.
	MatchedOutlierTuples int
	// Matched is p(g_O) itself: the influential subset of the outliers'
	// provenance. This is the paper's §2 "extending provenance
	// functionality" use case — the aggregate's full provenance reduced to
	// the inputs that actually caused the anomaly.
	Matched *RowSet
	// HoldOutPenalty is max_h |inf(h, p)|.
	HoldOutPenalty float64
	// InfluencesHoldOut marks explanations that perturb a hold-out result.
	InfluencesHoldOut bool
}

// Progress is a best-so-far snapshot of a running search, delivered to
// Request.OnProgress. Snapshots are monotone: BestScore never decreases
// across deliveries, and Version increases whenever Best changed.
type Progress struct {
	// Elapsed is the wall-clock time since the search started.
	Elapsed time.Duration
	// ScorerCalls counts influence evaluations so far.
	ScorerCalls int64
	// Best holds the current best-so-far predicates (descending influence,
	// capped at the request's TopK). Scores are the search's estimates; the
	// final Result re-scores exactly.
	Best []BestSoFar
	// Shards holds per-shard best-so-far snapshots when the search runs
	// sharded (Request.Shards), in shard order; nil otherwise. Shard scores
	// are window-local estimates.
	Shards []ShardProgress
	// Version changes whenever Best improved since the previous snapshot —
	// including any shard's local improvement on a sharded search; pollers
	// can use it to skip unchanged states.
	Version int64
}

// ShardProgress is one shard's best-so-far inside a Progress snapshot.
type ShardProgress struct {
	// Shard is the shard tag ("shard-0", "shard-1", ...).
	Shard string `json:"shard"`
	// Best holds the shard's current best predicates (local estimates).
	Best []BestSoFar `json:"best"`
}

// BestSoFar is one partial-result predicate inside a Progress snapshot.
type BestSoFar struct {
	// Where is the predicate rendered against the request's table.
	Where string `json:"where"`
	// Influence is the search's running score estimate.
	Influence float64 `json:"influence"`
}

// Stats reports search-cost counters.
type Stats struct {
	// Algorithm is the strategy actually used.
	Algorithm Algorithm
	// Duration is the end-to-end search time.
	Duration time.Duration
	// ScorerCalls counts (group × predicate) influence evaluations.
	ScorerCalls int64
	// Candidates counts predicates considered.
	Candidates int
	// Shards is the number of horizontal slices the search ran across
	// (1 = unsharded).
	Shards int
	// Pruned counts candidates the anytime path (Request.Epsilon > 0)
	// discarded on a sample interval's upper bound without exact scoring;
	// Escalated counts those that reached the exact scorer. Both are 0 on
	// the exact path. Sharded searches sum across shards.
	Pruned    int64
	Escalated int64
	// ReusedPartition reports that the search skipped re-partitioning by
	// reusing an Explainer session's cached DT partitioning (§8.3.3) — the
	// c-sweep fast path. Always false for one-shot Explain calls.
	ReusedPartition bool
	// Refreshed reports that the result came from a Refresher's warm path:
	// after an append, the previous run's candidates were re-scored exactly
	// against the grown table (per-group aggregate states advanced
	// incrementally from the appended tail) instead of re-running the
	// search. Always false for one-shot Explain calls.
	Refreshed bool
	// Interrupted reports that the search was cut short by context
	// cancellation or deadline; Explanations hold the best predicates
	// found up to that point.
	Interrupted bool
	// InterruptReason is the context error message ("context canceled",
	// "context deadline exceeded") when Interrupted.
	InterruptReason string
}

// Result is the outcome of Explain.
type Result struct {
	// Explanations are ranked by descending influence.
	Explanations []Explanation
	// Stats reports cost counters.
	Stats Stats
	// QueryResult is the executed aggregate query with provenance.
	QueryResult *query.Result
}

// Explain runs the full Scorpion pipeline: execute the query, resolve the
// flagged groups through provenance, and search for the most influential
// predicates. It is ExplainContext with a background context.
func Explain(req *Request) (*Result, error) {
	return ExplainContext(context.Background(), req)
}

// ExplainContext is Explain under a context: the search checks ctx
// periodically in its inner loops and stops early once it is cancelled or
// its deadline passes.
//
// On cancellation mid-search, ExplainContext returns BOTH a non-nil partial
// Result — the best explanations found so far, with Stats.Interrupted set
// and Stats.InterruptReason carrying the context error — AND a non-nil
// error wrapping ctx.Err(), so errors.Is(err, context.DeadlineExceeded)
// and errors.Is(err, context.Canceled) work. Callers that can use partial
// answers should check the Result before discarding it on error.
//
// Request.Workers sizes the worker pool shared by all three algorithms;
// parallel searches return the same explanations as serial ones.
func ExplainContext(ctx context.Context, req *Request) (*Result, error) {
	res, _, err := explainFull(ctx, req)
	return res, err
}

// explainFull is ExplainContext returning, alongside the capped Result, the
// FULL deduped exact-scored candidate list the top-k was cut from — the
// state a Refresher snapshots so a later append can re-rank warm instead of
// re-searching. The slice is nil when the search errored before scoring.
func explainFull(ctx context.Context, req *Request) (*Result, []partition.Candidate, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("scorpion: %w", err)
	}
	if req.Shards < 0 {
		return nil, nil, fmt.Errorf("scorpion: shards %d must be >= 0 (0 = auto)", req.Shards)
	}
	if req.Epsilon < 0 {
		return nil, nil, fmt.Errorf("scorpion: epsilon %v must be >= 0 (0 = exact)", req.Epsilon)
	}
	if req.Confidence != 0 && (req.Confidence <= 0 || req.Confidence >= 1) {
		return nil, nil, fmt.Errorf("scorpion: confidence %v must lie in (0, 1)", req.Confidence)
	}
	reg := obs.RegistryFrom(ctx)
	_, planSpan := obs.StartSpan(ctx, "plan")
	scorer, space, qres, err := buildScorer(req)
	if err != nil {
		planSpan.End()
		return nil, nil, err
	}
	algo, err := chooseAlgorithm(req, scorer)
	if err != nil {
		planSpan.End()
		return nil, nil, err
	}
	searcher, coord, err := buildTopSearcher(req, scorer, space, algo, reg)
	if err != nil {
		planSpan.End()
		return nil, nil, err
	}
	planSpan.SetAttr("algorithm", algo.String())
	planSpan.SetAttr("rows", req.Table.NumRows())
	planSpan.SetAttr("workers", req.effectiveWorkers())
	if coord != nil {
		planSpan.SetAttr("shards", coord.NumShards())
	}
	planSpan.End()
	calls := func() int64 {
		n := scorer.Calls()
		if coord != nil {
			n += coord.Calls()
		}
		return n
	}
	var board *partition.Board
	var stopMonitor func()
	if req.OnProgress != nil {
		board = partition.NewBoard()
		stopMonitor = watchProgress(req, calls, board, start)
	}
	searchCtx, searchSpan := obs.StartSpan(ctx, "search")
	searchSpan.SetAttr("algorithm", algo.String())
	outcome, err := partition.RunSearchObserved(searchCtx, req.effectiveWorkers(), board, searcher)
	if stopMonitor != nil {
		stopMonitor()
	}
	if outcome != nil {
		searchSpan.SetAttr("candidates", len(outcome.Candidates))
		searchSpan.SetAttr("pruned", outcome.Pruned)
		searchSpan.SetAttr("escalated", outcome.Escalated)
	}
	searchSpan.End()
	if err != nil {
		return nil, nil, err
	}
	_, rankSpan := obs.StartSpan(ctx, "rank")
	res, scored := assemble(req, scorer, outcome.Candidates, qres)
	rankSpan.SetAttr("candidates", len(scored))
	rankSpan.End()
	res.Stats.Algorithm = algo
	res.Stats.Duration = time.Since(start)
	res.Stats.ScorerCalls = calls()
	res.Stats.Shards = 1
	if coord != nil {
		res.Stats.Shards = coord.NumShards()
	}
	res.Stats.Pruned = outcome.Pruned
	res.Stats.Escalated = outcome.Escalated
	if outcome.Interrupted {
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		res.Stats.Interrupted = true
		res.Stats.InterruptReason = cause.Error()
		recordSearchMetrics(reg, algo, res.Stats, scorer)
		return res, scored, fmt.Errorf("scorpion: search interrupted: %w", cause)
	}
	recordSearchMetrics(reg, algo, res.Stats, scorer)
	return res, scored, nil
}

// recordSearchMetrics publishes one finished search's counters into the
// request's registry (no-op when telemetry is off). Scorers are built
// per search, so totals are deltas; memo stats fold in the hit-rate
// signal without touching the registry from the scoring hot path.
func recordSearchMetrics(reg *obs.Registry, algo Algorithm, st Stats, scorer *influence.Scorer) {
	if reg == nil {
		return
	}
	label := []string{"algorithm", algo.String()}
	reg.Counter("scorpion_search_total", label...).Inc()
	reg.Histogram("scorpion_search_seconds", nil, label...).Observe(st.Duration.Seconds())
	reg.Counter("scorpion_scorer_calls_total").Add(float64(st.ScorerCalls))
	hits, misses := scorer.MemoStats()
	reg.Counter("scorpion_scorer_memo_hits_total").Add(float64(hits))
	reg.Counter("scorpion_scorer_memo_misses_total").Add(float64(misses))
	reg.Counter("scorpion_anytime_pruned_total").Add(float64(st.Pruned))
	reg.Counter("scorpion_anytime_escalated_total").Add(float64(st.Escalated))
	if st.Interrupted {
		reg.Counter("scorpion_search_interrupted_total", label...).Inc()
	}
}

// watchProgress starts the OnProgress monitor goroutine: at every
// ProgressInterval tick it samples the board (global best plus any tagged
// per-shard children) and the calls counter — a closure, so sessions can
// subtract a baseline and sharded searches can add their shard-local
// scorers — and delivers a Progress snapshot. The returned stop function
// emits one final snapshot and joins the goroutine, so OnProgress is
// never invoked after ExplainContext returns.
func watchProgress(req *Request, calls func() int64, board *partition.Board, start time.Time) (stop func()) {
	interval := req.ProgressInterval
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	render := func(cands []partition.Candidate) []BestSoFar {
		if len(cands) > topK {
			cands = cands[:topK]
		}
		best := make([]BestSoFar, len(cands))
		for i, c := range cands {
			best[i] = BestSoFar{Where: c.Pred.Format(req.Table), Influence: c.Score}
		}
		return best
	}
	emit := func() {
		// Version BEFORE content: a publish landing between the two reads
		// then yields newer content under an older version, so the next
		// tick still bumps and pollers re-read. The other order would pair
		// stale content with the new version and make pollers skip the
		// corrected snapshot forever.
		version := board.AggregateVersion()
		cands, _ := board.Snapshot()
		var shards []ShardProgress
		for _, child := range board.Children() {
			shards = append(shards, ShardProgress{Shard: child.Tag, Best: render(child.Cands)})
		}
		req.OnProgress(Progress{
			Elapsed:     time.Since(start),
			ScorerCalls: calls(),
			Best:        render(cands),
			Shards:      shards,
			Version:     version,
		})
	}
	done := make(chan struct{})
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				emit()
				return
			case <-ticker.C:
				emit()
			}
		}
	}()
	return func() {
		close(done)
		<-joined
	}
}

// directionFor resolves the error vector for an outlier key: the per-key
// Directions override, else the request-wide Direction, else TooHigh.
func (r *Request) directionFor(key string) Direction {
	if d, ok := r.Directions[key]; ok {
		return d
	}
	if r.Direction == 0 {
		return TooHigh
	}
	return r.Direction
}

// effectiveWorkers resolves the Workers knob, honoring the deprecated
// NaiveWorkers alias when Workers is unset.
func (r *Request) effectiveWorkers() int {
	if r.Workers != 0 {
		return r.Workers
	}
	if r.NaiveWorkers != 0 {
		return r.NaiveWorkers
	}
	return 1
}

// autoShardRows is the row volume one shard should cover when Shards is
// auto (0): tables under 2× this never auto-shard.
const autoShardRows = 1 << 17

// maxShards caps the slice count: beyond this, per-shard setup (scorer
// states, clause grids) outweighs any slicing benefit.
const maxShards = 64

// maxAutoSerialShards bounds auto-sharding below the worker budget. The
// sharding win is algorithmic (skipped hold-out-only slices, window-local
// scans — see BENCH_shard.json, recorded at Workers=1), so a serial
// request on a huge table still benefits from a handful of slices; more
// than the budget only helps up to this point.
const maxAutoSerialShards = 8

// ResolvedShards is the slice count the search will use: the Shards knob
// resolved like ResolvedLambda/ResolvedC resolve theirs. Serving layers
// consult it to route requests — a request that resolves to a sharded run
// must bypass Explainer sessions, whose cached partitioning is a
// full-table artifact.
func (r *Request) ResolvedShards() int { return r.effectiveShards() }

// effectiveShards resolves the Shards knob: an explicit count is clamped
// to [1, maxShards]; 0 picks from the table size and worker budget.
func (r *Request) effectiveShards() int {
	k := r.Shards
	if k == 0 {
		rows := 0
		if r.Table != nil {
			rows = r.Table.NumRows()
		}
		workers := r.effectiveWorkers()
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		cap := workers
		if cap < maxAutoSerialShards {
			cap = maxAutoSerialShards
		}
		k = rows / autoShardRows
		if k > cap {
			k = cap
		}
	}
	if k > maxShards {
		k = maxShards
	}
	if k < 1 {
		k = 1
	}
	return k
}

// DispatchSpec pins the search parameters a remote shard worker needs to
// reproduce a shard search exactly: the query, the algorithm, and the
// resolved grid knobs (resolved HERE, coordinator-side, so a worker built
// from different defaults cannot skew the grid).
type DispatchSpec struct {
	// SQL is the request's aggregate query, parsed (never executed) by the
	// worker to recover the aggregate function and column.
	SQL string
	// Algorithm is the resolved search strategy (Naive or MC).
	Algorithm Algorithm
	// Bins is the resolved continuous grid (naive/mc Params.Bins).
	Bins int
	// TopK is the resolved per-shard candidate retention (NAIVE only).
	TopK int
	// Epsilon and Confidence configure the worker's anytime estimator;
	// Epsilon 0 is the exact path.
	Epsilon    float64
	Confidence float64
}

// ShardDispatcher turns a resolved search spec into a per-shard remote
// searcher. Implemented by internal/dispatch's peer pool; defined here so
// the root package never imports the networking layer.
type ShardDispatcher interface {
	Remote(spec DispatchSpec) shard.RemoteSearcher
}

// remoteDispatchable reports whether the request's shard searches can be
// reproduced remotely from a DispatchSpec alone: grid algorithm, and no
// tuning overrides beyond Bins/TopK (which the spec carries). Anything
// else must run locally or results could differ between paths.
func remoteDispatchable(req *Request, algo Algorithm) bool {
	switch algo {
	case Naive:
		if p := req.NaiveParams; p != nil {
			if p.MaxClauses != 0 || p.MaxDiscreteSubset != 0 || p.Deadline != 0 || p.Domains != nil || p.Estimator != nil {
				return false
			}
		}
		return true
	case MC:
		if req.MergeParams != nil && *req.MergeParams != (merge.Params{}) {
			return false
		}
		if p := req.MCParams; p != nil {
			if p.MaxDiscreteValues != 0 || p.MaxIterations != 0 || p.MaxUnits != 0 || p.Merge != (merge.Params{}) || p.Domains != nil || p.Estimator != nil {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// buildTopSearcher resolves the searcher ExplainContext drives: the plain
// algorithm searcher, or — when the request shards — a shard.Coordinator
// fanning that same algorithm across horizontal table slices. The returned
// coordinator is nil for unsharded searches.
func buildTopSearcher(req *Request, scorer *influence.Scorer, space *predicate.Space, algo Algorithm, reg *obs.Registry) (partition.Searcher, *shard.Coordinator, error) {
	if k := req.effectiveShards(); k > 1 {
		factory := func(sc *influence.Scorer, sp *predicate.Space, domains map[int]predicate.Domain) (partition.Searcher, error) {
			r := req
			if algo == Naive && (req.NaiveParams == nil || req.NaiveParams.TopK == 0) {
				// Shard-local rankings are window estimates (shards without
				// local hold-out rows rank unpenalized), so each shard must
				// hand the combiner deeper recall than a final top-k for the
				// exact re-score to recover the true winner.
				params := naive.Params{}
				if req.NaiveParams != nil {
					params = *req.NaiveParams
				}
				params.TopK = shard.DefaultTopPerShard
				rc := *req
				rc.NaiveParams = &params
				r = &rc
			}
			return buildSearcher(r, sc, sp, algo, domains, reg)
		}
		params := shard.Params{}
		if req.MergeParams != nil {
			params.Merge = *req.MergeParams
		}
		// Tell the combiner the shard searchers' grid so its refine pass
		// can climb to any bin edge (15 is naive/mc's shared paper
		// default). DT has no grid; its refine lattice stays
		// candidate-derived.
		switch algo {
		case Naive:
			params.GridBins = 15
			if req.NaiveParams != nil && req.NaiveParams.Bins > 0 {
				params.GridBins = req.NaiveParams.Bins
			}
		case MC:
			params.GridBins = 15
			if req.MCParams != nil && req.MCParams.Bins > 0 {
				params.GridBins = req.MCParams.Bins
			}
		}
		if req.Epsilon > 0 {
			// Anytime runs also ship a full-table hold-out sketch to every
			// shard, so shard-local rankings become penalty-aware before the
			// TopPerShard cut (nil for unsupported tasks or no hold-outs).
			params.Penalty = estimate.NewSketch(scorer, 0)
		}
		if req.ShardDispatch != nil && remoteDispatchable(req, algo) {
			spec := DispatchSpec{SQL: req.SQL, Algorithm: algo, Bins: params.GridBins}
			if algo == Naive {
				spec.TopK = shard.DefaultTopPerShard
				if req.NaiveParams != nil && req.NaiveParams.TopK != 0 {
					spec.TopK = req.NaiveParams.TopK
				}
			}
			if req.Epsilon > 0 {
				spec.Epsilon = req.Epsilon
				spec.Confidence = req.ResolvedConfidence()
			}
			params.Remote = req.ShardDispatch.Remote(spec)
		}
		if coord := shard.NewCoordinator(scorer, space, factory, k, params); coord.NumShards() > 1 {
			return coord, coord, nil
		}
		// The planner collapsed to one slice (tiny table or concentrated
		// outliers): run unsharded.
	}
	s, err := buildSearcher(req, scorer, space, algo, nil, reg)
	return s, nil, err
}

// buildScorer parses, executes and labels the query.
func buildScorer(req *Request) (*influence.Scorer, *predicate.Space, *query.Result, error) {
	if req.Table == nil {
		return nil, nil, nil, fmt.Errorf("scorpion: request has no table")
	}
	if req.SQL == "" {
		return nil, nil, nil, fmt.Errorf("scorpion: request has no SQL query")
	}
	if len(req.Outliers) == 0 {
		return nil, nil, nil, fmt.Errorf("scorpion: request flags no outlier results")
	}
	q, err := query.FromSQL(req.Table, req.SQL)
	if err != nil {
		return nil, nil, nil, err
	}
	qres, err := q.Run()
	if err != nil {
		return nil, nil, nil, err
	}

	task := &influence.Task{
		Table:   req.Table,
		Agg:     q.Agg,
		AggCol:  q.AggCol,
		Lambda:  req.ResolvedLambda(),
		C:       req.ResolvedC(),
		Perturb: req.Perturb,
	}

	flagged := make(map[string]bool, len(req.Outliers))
	for _, key := range req.Outliers {
		row, ok := qres.Lookup(key)
		if !ok {
			return nil, nil, nil, fmt.Errorf("scorpion: no query result group %q (have %v)", key, qres.Keys())
		}
		task.Outliers = append(task.Outliers, influence.Group{Key: key, Rows: row.Group, Direction: req.directionFor(key)})
		flagged[key] = true
	}
	holdKeys := req.HoldOuts
	if len(holdKeys) == 0 && req.AllOthersHoldOut {
		for _, key := range qres.Keys() {
			if !flagged[key] {
				holdKeys = append(holdKeys, key)
			}
		}
	}
	for _, key := range holdKeys {
		if flagged[key] {
			return nil, nil, nil, fmt.Errorf("scorpion: group %q is both outlier and hold-out", key)
		}
		row, ok := qres.Lookup(key)
		if !ok {
			return nil, nil, nil, fmt.Errorf("scorpion: no query result group %q", key)
		}
		task.HoldOuts = append(task.HoldOuts, influence.Group{Key: key, Rows: row.Group})
	}

	attrs := req.Attributes
	if len(attrs) == 0 {
		attrs = q.RestAttributes()
	}
	if len(attrs) == 0 {
		return nil, nil, nil, fmt.Errorf("scorpion: no attributes available to build explanations")
	}
	space, err := predicate.NewSpace(req.Table, attrs, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		return nil, nil, nil, err
	}
	if req.AutoSelectAttributes > 0 && len(req.Attributes) == 0 &&
		req.AutoSelectAttributes < len(attrs) {
		selected := feature.Select(scorer, space, req.AutoSelectAttributes)
		space, err = predicate.NewSpace(req.Table, selected, nil)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	return scorer, space, qres, nil
}

// chooseAlgorithm resolves Auto using the aggregate's properties (§5).
func chooseAlgorithm(req *Request, scorer *influence.Scorer) (Algorithm, error) {
	task := scorer.Task()
	if req.Algorithm != Auto {
		// Validate forced choices early for a clear error.
		switch req.Algorithm {
		case DT:
			if !task.Agg.Independent() {
				return 0, fmt.Errorf("scorpion: DT requires an independent aggregate; %q is not", task.Agg.Name())
			}
		case MC:
			if _, ok := task.Agg.(aggregate.AntiMonotonic); !ok || !task.Agg.Independent() {
				return 0, fmt.Errorf("scorpion: MC requires an independent anti-monotonic aggregate; %q is not", task.Agg.Name())
			}
		}
		return req.Algorithm, nil
	}
	if !task.Agg.Independent() {
		return Naive, nil
	}
	if am, ok := task.Agg.(aggregate.AntiMonotonic); ok {
		pass := true
		for _, g := range task.Outliers {
			// Project the per-tuple aggregate values through Task.Value so
			// count(*) (AggCol = -1, one 1 per tuple) feeds check(D) real
			// data. Building an empty slice there made the check vacuously
			// true: MC was auto-picked without the data ever being checked.
			vals := make([]float64, 0, g.Rows.Count())
			g.Rows.ForEach(func(r int) { vals = append(vals, task.Value(r)) })
			if !am.Check(vals) {
				pass = false
				break
			}
		}
		if pass {
			return MC, nil
		}
	}
	return DT, nil
}

// buildSearcher constructs the partition.Searcher for the chosen algorithm;
// partition.RunSearch then drives it over the request's context and worker
// budget, so all three strategies share one execution spine. domains, when
// non-nil, pins the continuous clause-grid extents (a shard-local searcher
// receives the global outlier extents so every shard enumerates the grid
// the unsharded search would).
func buildSearcher(req *Request, scorer *influence.Scorer, space *predicate.Space, algo Algorithm, domains map[int]predicate.Domain, reg *obs.Registry) (partition.Searcher, error) {
	switch algo {
	case Naive:
		params := naive.Params{}
		if req.NaiveParams != nil {
			params = *req.NaiveParams
		}
		if domains != nil {
			params.Domains = domains
		}
		if req.Epsilon > 0 {
			// nil when the task is unsupported (AVG, perturbation): the
			// search then runs its exact path.
			params.Estimator = estimate.New(scorer, estimate.Params{
				Epsilon:    req.Epsilon,
				Confidence: req.ResolvedConfidence(),
				Metrics:    reg,
			})
		}
		return naive.NewSearcher(scorer, space, params), nil

	case DT:
		params := dt.Params{}
		if req.DTParams != nil {
			params = *req.DTParams
		}
		mergeParams := merge.Params{TopQuartileOnly: true, UseApproximation: scorer.Incremental()}
		if req.MergeParams != nil {
			mergeParams = *req.MergeParams
		}
		return &dtSearcher{scorer: scorer, space: space, params: params, mergeParams: mergeParams}, nil

	case MC:
		params := mc.Params{}
		if req.MCParams != nil {
			params = *req.MCParams
		}
		if req.MergeParams != nil {
			params.Merge = *req.MergeParams
		}
		if domains != nil {
			params.Domains = domains
		}
		if req.Epsilon > 0 {
			params.Estimator = estimate.New(scorer, estimate.Params{
				Epsilon:    req.Epsilon,
				Confidence: req.ResolvedConfidence(),
				Metrics:    reg,
			})
		}
		return mc.NewSearcher(scorer, space, params), nil

	default:
		return nil, fmt.Errorf("scorpion: unknown algorithm %v", algo)
	}
}

// dtSearcher composes the DT partitioner with the §6.3 Merger behind the
// partition.Searcher interface. The composition lives at this layer (rather
// than in the dt package) so dt stays independent of the merger, mirroring
// the paper's partitioner/merger split.
type dtSearcher struct {
	scorer      *influence.Scorer
	space       *predicate.Space
	params      dt.Params
	mergeParams merge.Params
}

func (s *dtSearcher) Name() string { return "dt" }

func (s *dtSearcher) Search(pool *partition.Pool) (*partition.Outcome, error) {
	pt, err := dt.PartitionPool(pool, s.scorer, s.space, s.params)
	if err != nil {
		return nil, err
	}
	cands := pt.CandidatesPool(s.scorer, pool)
	// The scored leaves are a valid partial answer while the merge runs.
	pool.PublishBest(cands)
	merged := merge.New(s.scorer, s.space, s.mergeParams).WithPool(pool).Merge(cands)
	pool.PublishBest(merged)
	return &partition.Outcome{
		Candidates:  merged,
		Work:        int64(len(pt.OutlierLeaves) + len(pt.HoldOutLeaves)),
		Interrupted: pt.Interrupted || pool.Cancelled(),
	}, nil
}

// assemble converts candidates into ranked explanations, also returning the
// full exact-scored list the top-k Result was cut from.
func assemble(req *Request, scorer *influence.Scorer, cands []partition.Candidate, qres *query.Result) (*Result, []partition.Candidate) {
	scored := rescoreExact(scorer, cands)
	return present(req, scorer, scored, qres), scored
}

// rescoreExact dedupes candidates, re-scores them exactly, and sorts
// descending — mutating the slice in place. The hold-out flag is
// recomputed from the exact penalty rather than copied from the search:
// partitioners set it from estimates (sampled influence, the §6.1.4
// combine step), so the search-time flag could contradict the exact
// HoldOutPenalty reported right beside it. The Explainer caches the
// returned slice as merge seeds for future lower-c runs.
func rescoreExact(scorer *influence.Scorer, cands []partition.Candidate) []partition.Candidate {
	cands = partition.Dedupe(cands)
	for i := range cands {
		outMean, holdPen := scorer.Parts(cands[i].Pred)
		cands[i].Score = scorer.Task().Lambda*outMean - (1-scorer.Task().Lambda)*holdPen
		cands[i].HoldPenalty = holdPen
		cands[i].InfluencesHoldOut = holdPen > 0
	}
	partition.SortByScore(cands)
	return cands
}

// present renders exactly-scored candidates as the request's top-k ranked
// explanations. It does not mutate cands.
func present(req *Request, scorer *influence.Scorer, cands []partition.Candidate, qres *query.Result) *Result {
	topK := req.TopK
	if topK <= 0 {
		topK = 5
	}
	if len(cands) > topK {
		cands = cands[:topK]
	}
	res := &Result{QueryResult: qres}
	gO := outlierUnion(scorer.Task())
	for _, c := range cands {
		matched := c.Pred.Eval(req.Table, gO)
		res.Explanations = append(res.Explanations, Explanation{
			Predicate:            c.Pred,
			Where:                c.Pred.Format(req.Table),
			Influence:            c.Score,
			MatchedOutlierTuples: matched.Count(),
			Matched:              matched,
			HoldOutPenalty:       c.HoldPenalty,
			InfluencesHoldOut:    c.InfluencesHoldOut,
		})
	}
	res.Stats.Candidates = len(cands)
	return res
}

func outlierUnion(task *influence.Task) *RowSet {
	return shard.OutlierUnion(task)
}
