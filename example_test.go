package scorpion_test

import (
	"fmt"
	"log"
	"strings"

	scorpion "github.com/scorpiondb/scorpion"
)

// buildSensors constructs the paper's Table 1.
func buildSensors() *scorpion.Table {
	schema, err := scorpion.NewSchema(
		scorpion.Column{Name: "time", Kind: scorpion.Discrete},
		scorpion.Column{Name: "sensorid", Kind: scorpion.Discrete},
		scorpion.Column{Name: "voltage", Kind: scorpion.Continuous},
		scorpion.Column{Name: "temp", Kind: scorpion.Continuous},
	)
	if err != nil {
		log.Fatal(err)
	}
	b := scorpion.NewBuilder(schema)
	for _, r := range []scorpion.Row{
		{scorpion.S("11AM"), scorpion.S("1"), scorpion.F(2.64), scorpion.F(34)},
		{scorpion.S("11AM"), scorpion.S("2"), scorpion.F(2.65), scorpion.F(35)},
		{scorpion.S("11AM"), scorpion.S("3"), scorpion.F(2.63), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(100)},
		{scorpion.S("1PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(80)},
	} {
		b.MustAppend(r)
	}
	return b.Build()
}

// ExampleExplain reproduces the paper's running example: the 12PM and 1PM
// averages are flagged as too high and Scorpion blames sensor 3.
func ExampleExplain() {
	res, err := scorpion.Explain(&scorpion.Request{
		Table:            buildSensors(),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
		C:                1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Explanations[0].Where)
	// Output: sensorid in ('3')
}

// ExampleRunQuery shows plain query execution with provenance, without any
// explanation — the step a UI uses to let users pick outliers.
func ExampleRunQuery() {
	res, err := scorpion.RunQuery(buildSensors(),
		"SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s %.2f (%d inputs)\n", row.Key, row.Value, row.Group.Count())
	}
	// Output:
	// 11AM 34.67 (3 inputs)
	// 12PM 56.67 (3 inputs)
	// 1PM 50.00 (3 inputs)
}

// ExampleReadCSV loads a dataset from CSV with type inference.
func ExampleReadCSV() {
	csv := "city,rides\nBOS,12\nNYC,85\nBOS,14\n"
	tbl, err := scorpion.ReadCSV(strings.NewReader(csv), scorpion.CSVOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl.Schema().String())
	fmt.Println(tbl.NumRows(), "rows")
	// Output:
	// city:discrete, rides:continuous
	// 3 rows
}

// ExampleNewExplainer sweeps the §7 c knob with cached partitioning: lower
// c values return broader predicates, reusing work from the earlier runs.
func ExampleNewExplainer() {
	e, err := scorpion.NewExplainer(&scorpion.Request{
		Table:            buildSensors(),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []float64{1.0, 0.0} {
		res, err := e.ExplainC(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("c=%.1f: %s\n", c, res.Explanations[0].Where)
	}
	// Output:
	// c=1.0: sensorid in ('3')
	// c=0.0: sensorid in ('3')
}
