package scorpion

// Tests for the context-aware parallel search spine: Workers must not
// change any result, and cancellation must surface promptly through
// ExplainContext with best-so-far partial results.

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// synthRequest builds an Explain request over a planted-cube synthetic
// dataset. agg selects the aggregate (and thereby the Auto algorithm: avg →
// DT, sum → MC, median → NAIVE).
func synthRequest(t testing.TB, agg string, perGroup int) *Request {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: perGroup, Groups: 5, OutlierGroups: 2, Mu: 80, Seed: 11,
	})
	return &Request{
		Table:            ds.Table,
		SQL:              "SELECT " + agg + "(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
	}
}

// identicalResults fails unless both results carry exactly the same ranked
// explanations: predicate, bit-equal influence, matched counts.
func identicalResults(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if len(serial.Explanations) == 0 {
		t.Fatalf("%s: serial run found no explanations", label)
	}
	if len(serial.Explanations) != len(parallel.Explanations) {
		t.Fatalf("%s: explanation counts differ: serial %d, parallel %d",
			label, len(serial.Explanations), len(parallel.Explanations))
	}
	for i := range serial.Explanations {
		s, p := serial.Explanations[i], parallel.Explanations[i]
		if s.Where != p.Where {
			t.Fatalf("%s: explanation %d predicate differs:\nserial   %s\nparallel %s",
				label, i, s.Where, p.Where)
		}
		if s.Influence != p.Influence {
			t.Fatalf("%s: explanation %d influence differs: %v vs %v", label, i, s.Influence, p.Influence)
		}
		if s.MatchedOutlierTuples != p.MatchedOutlierTuples {
			t.Fatalf("%s: explanation %d matched count differs", label, i)
		}
		if s.HoldOutPenalty != p.HoldOutPenalty {
			t.Fatalf("%s: explanation %d hold-out penalty differs", label, i)
		}
	}
}

// TestWorkersDeterministicAcrossAlgorithms asserts the acceptance
// criterion at the public API: for each algorithm, Workers: 8 returns the
// same top-k predicates and scores as the serial run.
func TestWorkersDeterministicAcrossAlgorithms(t *testing.T) {
	cases := []struct {
		algo Algorithm
		agg  string
	}{
		{Naive, "median"}, // black-box path
		{DT, "avg"},
		{MC, "sum"},
	}
	for _, tc := range cases {
		t.Run(tc.algo.String(), func(t *testing.T) {
			req := synthRequest(t, tc.agg, 150)
			req.Algorithm = tc.algo
			if tc.algo == Naive {
				req.NaiveParams = &naive.Params{Bins: 6}
			}
			serial, err := Explain(req)
			if err != nil {
				t.Fatal(err)
			}
			if serial.Stats.Algorithm != tc.algo {
				t.Fatalf("serial ran %v, want %v", serial.Stats.Algorithm, tc.algo)
			}
			reqP := *req
			reqP.Workers = 8
			parallel, err := Explain(&reqP)
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, serial, parallel, tc.algo.String())
		})
	}
}

// TestNaiveWorkersDeprecatedAlias checks the old NaiveWorkers field still
// fans the search out (Workers unset) and matches the serial result.
func TestNaiveWorkersDeprecatedAlias(t *testing.T) {
	req := synthRequest(t, "median", 100)
	req.Algorithm = Naive
	req.NaiveParams = &naive.Params{Bins: 6}
	serial, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	reqP := *req
	reqP.NaiveWorkers = 4
	parallel, err := Explain(&reqP)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, serial, parallel, "naive-workers-alias")
}

// TestExplainContextPreCancelled checks an already-expired context returns
// promptly with context.DeadlineExceeded surfaced.
func TestExplainContextPreCancelled(t *testing.T) {
	req := synthRequest(t, "avg", 100)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := ExplainContext(ctx, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("pre-cancelled ExplainContext took %s", elapsed)
	}
}

// TestExplainContextShortDeadline checks a deadline that expires mid-search
// interrupts a NAIVE run promptly, surfaces context.DeadlineExceeded, and
// still returns the best-so-far partial result with Stats annotated.
func TestExplainContextShortDeadline(t *testing.T) {
	req := synthRequest(t, "median", 600) // black-box NAIVE: slow exhaustive search
	req.Algorithm = Naive
	req.Workers = 2
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := ExplainContext(ctx, req)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("interrupted search returned no partial result")
	}
	if !res.Stats.Interrupted {
		t.Fatal("partial result not marked interrupted")
	}
	if res.Stats.InterruptReason == "" {
		t.Fatal("partial result carries no interrupt reason")
	}
	if elapsed > 15*time.Second {
		t.Fatalf("interrupted search took %s, want prompt return", elapsed)
	}
}

// TestExplainContextCancelMidSearch checks explicit cancellation (the
// client-disconnect path) is surfaced as context.Canceled with partials.
func TestExplainContextCancelMidSearch(t *testing.T) {
	req := synthRequest(t, "median", 600)
	req.Algorithm = Naive
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := ExplainContext(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if res == nil || !res.Stats.Interrupted {
		t.Fatal("cancelled search should return an interrupted partial result")
	}
}

// TestExplainContextCompletesUncancelled checks ExplainContext with a
// generous deadline behaves exactly like Explain.
func TestExplainContextCompletesUncancelled(t *testing.T) {
	req := synthRequest(t, "avg", 120)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := ExplainContext(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Interrupted {
		t.Fatal("completed search marked interrupted")
	}
	plain, err := Explain(req)
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, plain, res, "explaincontext-complete")
}
