package scorpion

import (
	"fmt"
	"strings"
	"testing"

	"github.com/scorpiondb/scorpion/internal/datasets"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// sensorsTable builds the paper's Table 1 running example.
func sensorsTable(t testing.TB) *Table {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "time", Kind: Discrete},
		Column{Name: "sensorid", Kind: Discrete},
		Column{Name: "voltage", Kind: Continuous},
		Column{Name: "humidity", Kind: Continuous},
		Column{Name: "temp", Kind: Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(schema)
	rows := []Row{
		{S("11AM"), S("1"), F(2.64), F(0.4), F(34)},
		{S("11AM"), S("2"), F(2.65), F(0.5), F(35)},
		{S("11AM"), S("3"), F(2.63), F(0.4), F(35)},
		{S("12PM"), S("1"), F(2.7), F(0.3), F(35)},
		{S("12PM"), S("2"), F(2.7), F(0.5), F(35)},
		{S("12PM"), S("3"), F(2.3), F(0.4), F(100)},
		{S("1PM"), S("1"), F(2.7), F(0.3), F(35)},
		{S("1PM"), S("2"), F(2.7), F(0.5), F(35)},
		{S("1PM"), S("3"), F(2.3), F(0.5), F(80)},
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}

// TestRunningExample reproduces the paper's Tables 1 and 2: the 12PM and
// 1PM averages are flagged too high with 11AM as hold-out, and Scorpion
// must blame sensor 3 (equivalently, its low voltage).
func TestRunningExample(t *testing.T) {
	res, err := Explain(&Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		C:                1,
	})
	if err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	top := res.Explanations[0]
	if top.Influence <= 0 {
		t.Fatalf("top influence = %v", top.Influence)
	}
	// The culprit readings are T6 and T9 (sensor 3 / low voltage). Either
	// attribution is correct.
	if !strings.Contains(top.Where, "sensorid in ('3')") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("top explanation %q does not implicate sensor 3 or voltage", top.Where)
	}
	if top.MatchedOutlierTuples == 0 {
		t.Error("top explanation matches no outlier tuples")
	}
	// Query result must expose Table 2's values.
	row, ok := res.QueryResult.Lookup("12PM")
	if !ok || row.Value < 56 || row.Value > 57 {
		t.Errorf("12PM avg = %+v, want ≈ 56.67", row)
	}
}

func TestExplainAlgorithmAutoSelection(t *testing.T) {
	tbl := sensorsTable(t)
	base := Request{
		Table:            tbl,
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	}
	cases := []struct {
		sql  string
		want Algorithm
	}{
		{"SELECT avg(temp), time FROM s GROUP BY time", DT},       // independent, not AM
		{"SELECT sum(temp), time FROM s GROUP BY time", MC},       // independent + AM (non-negative)
		{"SELECT count(*), time FROM s GROUP BY time", MC},        // always AM
		{"SELECT median(temp), time FROM s GROUP BY time", Naive}, // black box
	}
	for _, tc := range cases {
		req := base
		req.SQL = tc.sql
		res, err := Explain(&req)
		if err != nil {
			t.Fatalf("Explain(%q): %v", tc.sql, err)
		}
		if res.Stats.Algorithm != tc.want {
			t.Errorf("%q chose %v, want %v", tc.sql, res.Stats.Algorithm, tc.want)
		}
	}
}

func TestExplainForcedAlgorithmValidation(t *testing.T) {
	tbl := sensorsTable(t)
	req := Request{
		Table:     tbl,
		SQL:       "SELECT median(temp), time FROM s GROUP BY time",
		Outliers:  []string{"12PM"},
		Direction: TooHigh,
		Algorithm: DT,
	}
	if _, err := Explain(&req); err == nil {
		t.Error("DT over median should fail")
	}
	req.Algorithm = MC
	if _, err := Explain(&req); err == nil {
		t.Error("MC over median should fail")
	}
}

func TestExplainRequestValidation(t *testing.T) {
	tbl := sensorsTable(t)
	cases := []Request{
		{},           // no table
		{Table: tbl}, // no SQL
		{Table: tbl, SQL: "SELECT avg(temp), time FROM s GROUP BY time"}, // no outliers
		{Table: tbl, SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"9AM"}, Direction: TooHigh}, // unknown group
		{Table: tbl, SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"12PM"}, HoldOuts: []string{"12PM"}, Direction: TooHigh}, // overlap
		{Table: tbl, SQL: "nonsense", Outliers: []string{"12PM"}, Direction: TooHigh},
	}
	for i, req := range cases {
		if _, err := Explain(&req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestExplainPerKeyDirections(t *testing.T) {
	tbl := sensorsTable(t)
	res, err := Explain(&Request{
		Table:    tbl,
		SQL:      "SELECT avg(temp), time FROM s GROUP BY time",
		Outliers: []string{"12PM", "1PM"},
		Directions: map[string]Direction{
			"12PM": TooHigh,
			"1PM":  TooHigh,
		},
		AllOthersHoldOut: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no explanations")
	}
}

func TestExplainSynthEndToEnd(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 200, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 17,
	})
	res, err := Explain(&Request{
		Table:            ds.Table,
		SQL:              "SELECT sum(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		C:                0.2,
		Attributes:       ds.DimNames(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != MC {
		t.Errorf("algorithm = %v, want MC", res.Stats.Algorithm)
	}
	if len(res.Explanations) == 0 || res.Explanations[0].Influence <= 0 {
		t.Fatal("no positive-influence explanation")
	}
}

func TestExplainIntelWorkload(t *testing.T) {
	ds := datasets.GenerateIntel(datasets.IntelConfig{
		Hours: 30, Sensors: 20, EpochsPerHour: 2, Seed: 2,
	})
	res, err := Explain(&Request{
		Table:      ds.Table,
		SQL:        "SELECT stddev(temp), hour FROM readings GROUP BY hour",
		Outliers:   ds.OutlierHours,
		HoldOuts:   ds.HoldOutHours,
		Direction:  TooHigh,
		C:          0.2,
		Attributes: []string{"sensorid", "voltage", "humidity", "light"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != DT {
		t.Errorf("algorithm = %v, want DT (stddev)", res.Stats.Algorithm)
	}
	top := res.Explanations[0]
	if !strings.Contains(top.Where, "'"+ds.FailingSensor+"'") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("top explanation %q does not implicate sensor %s", top.Where, ds.FailingSensor)
	}
}

func TestExplainerCachedSweep(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 200, Groups: 6, OutlierGroups: 3, Mu: 80, Seed: 23,
	})
	req := &Request{
		Table:            ds.Table,
		SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
	}
	e, err := NewExplainer(req)
	if err != nil {
		t.Fatal(err)
	}
	var prev *Result
	for _, c := range []float64{0.5, 0.3, 0.1} {
		res, err := e.ExplainC(c)
		if err != nil {
			t.Fatalf("ExplainC(%v): %v", c, err)
		}
		if len(res.Explanations) == 0 {
			t.Fatalf("c=%v: no explanations", c)
		}
		prev = res
	}
	_ = prev
	// Cached sweep must agree with a fresh run at the same c on the top
	// explanation's influence within a reasonable factor.
	fresh, err := Explain(&Request{
		Table:            ds.Table,
		SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		Attributes:       ds.DimNames(),
		C:                0.1,
		Algorithm:        DT,
	})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := e.ExplainC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Explanations[0].Influence < 0.5*fresh.Explanations[0].Influence {
		t.Errorf("cached sweep influence %v far below fresh %v",
			cached.Explanations[0].Influence, fresh.Explanations[0].Influence)
	}
	e.InvalidateCache()
	if _, err := e.ExplainC(0.2); err != nil {
		t.Fatalf("after invalidate: %v", err)
	}
}

func TestExplainerRejectsBlackBox(t *testing.T) {
	tbl := sensorsTable(t)
	_, err := NewExplainer(&Request{
		Table:     tbl,
		SQL:       "SELECT median(temp), time FROM s GROUP BY time",
		Outliers:  []string{"12PM"},
		Direction: TooHigh,
	})
	if err == nil {
		t.Error("Explainer over median should fail")
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		Auto: "auto", Naive: "naive", DT: "dt", MC: "mc",
	} {
		if algo.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(algo), algo.String(), want)
		}
	}
}

func TestAutoSelectAttributes(t *testing.T) {
	// Add a junk attribute to the sensors table; auto-selection must keep
	// the informative ones and still find the culprit.
	schema, err := NewSchema(
		Column{Name: "time", Kind: Discrete},
		Column{Name: "sensorid", Kind: Discrete},
		Column{Name: "voltage", Kind: Continuous},
		Column{Name: "junk", Kind: Continuous},
		Column{Name: "temp", Kind: Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(schema)
	times := []string{"11AM", "12PM", "1PM"}
	for ti, tm := range times {
		for s := 1; s <= 3; s++ {
			temp, volt := 35.0, 2.7
			if s == 3 && ti > 0 {
				temp, volt = 90+float64(ti)*10, 2.3
			}
			b.MustAppend(Row{S(tm), S(fmt.Sprintf("%d", s)),
				F(volt), F(float64((ti*3 + s) % 2)), F(temp)})
		}
	}
	res, err := Explain(&Request{
		Table:                b.Build(),
		SQL:                  "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:             []string{"12PM", "1PM"},
		AllOthersHoldOut:     true,
		Direction:            TooHigh,
		C:                    1,
		AutoSelectAttributes: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Explanations[0]
	if strings.Contains(top.Where, "junk") {
		t.Errorf("auto-selection kept the junk attribute: %q", top.Where)
	}
	if !strings.Contains(top.Where, "sensorid in ('3')") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("explanation %q misses the culprit", top.Where)
	}
}

func TestPerturbationModeThroughAPI(t *testing.T) {
	target := 20.0
	res, err := Explain(&Request{
		Table:            sensorsTable(t),
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		C:                1,
		Perturb:          &target,
	})
	if err != nil {
		t.Fatal(err)
	}
	top := res.Explanations[0]
	if !strings.Contains(top.Where, "sensorid in ('3')") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("perturbation-mode explanation = %q", top.Where)
	}
	// Matched rows (provenance reduction) must expose T6 and T9.
	if top.Matched == nil || !top.Matched.Contains(5) || !top.Matched.Contains(8) {
		t.Errorf("Matched rows = %v, want {5, 8}", top.Matched)
	}
}
