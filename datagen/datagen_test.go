package datagen

import (
	"testing"

	scorpion "github.com/scorpiondb/scorpion"
)

func TestSynthWrappers(t *testing.T) {
	easy := SynthEasy(2, 50, 1)
	if easy.Config.Mu != 80 {
		t.Errorf("SynthEasy mu = %v", easy.Config.Mu)
	}
	hard := SynthHard(3, 50, 1)
	if hard.Config.Mu != 30 {
		t.Errorf("SynthHard mu = %v", hard.Config.Mu)
	}
	custom := Synth(SynthConfig{Dims: 2, TuplesPerGroup: 40, Mu: 55, Seed: 2})
	if custom.Table.NumRows() != 40*10 {
		t.Errorf("custom rows = %d", custom.Table.NumRows())
	}
}

func TestIntelWrapper(t *testing.T) {
	ds := Intel(IntelConfig{Hours: 8, Sensors: 20, EpochsPerHour: 1,
		Workload: IntelLowBattery, Seed: 3})
	if ds.FailingSensor != "18" {
		t.Errorf("failing sensor = %s", ds.FailingSensor)
	}
}

func TestExpenseWrapper(t *testing.T) {
	ds := Expense(ExpenseConfig{Days: 8, RowsPerDay: 20, Seed: 4})
	if ds.Table.NumRows() == 0 || ds.TruthRows.IsEmpty() {
		t.Error("empty expense dataset")
	}
}

// TestGeneratedTablesWorkWithPublicAPI is the end-to-end contract: every
// generator's output is directly explainable.
func TestGeneratedTablesWorkWithPublicAPI(t *testing.T) {
	ds := SynthEasy(2, 60, 5)
	res, err := scorpion.Explain(&scorpion.Request{
		Table:            ds.Table,
		SQL:              "SELECT avg(v), g FROM synth GROUP BY g",
		Outliers:         ds.OutlierKeys,
		AllOthersHoldOut: true,
		Direction:        scorpion.TooHigh,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Explanations) == 0 {
		t.Fatal("no explanations from generated dataset")
	}
}
