// Package datagen exposes Scorpion's deterministic dataset generators: the
// paper's SYNTH ground-truth benchmark (§8.1) and the simulated INTEL and
// EXPENSE workloads (§8.4, see DESIGN.md "Substitutions"). All generators
// are seeded and reproducible.
package datagen

import (
	"github.com/scorpiondb/scorpion/internal/datasets"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// Re-exported generator configurations and outputs.
type (
	// SynthConfig parameterizes the §8.1 synthetic benchmark.
	SynthConfig = synth.Config
	// SynthDataset is a generated table plus its planted ground truth.
	SynthDataset = synth.Dataset
	// IntelConfig parameterizes the sensor-network simulator.
	IntelConfig = datasets.IntelConfig
	// IntelDataset is a simulated sensor trace with scripted failures.
	IntelDataset = datasets.IntelDataset
	// IntelWorkload selects the scripted sensor failure.
	IntelWorkload = datasets.IntelWorkload
	// ExpenseConfig parameterizes the campaign-expense simulator.
	ExpenseConfig = datasets.ExpenseConfig
	// ExpenseDataset is a simulated FEC-style disbursement file.
	ExpenseDataset = datasets.ExpenseDataset
)

// Intel failure scripts.
const (
	// IntelDyingSensor is §8.4 workload 1: sensor 15 emits >100°C garbage.
	IntelDyingSensor = datasets.IntelDyingSensor
	// IntelLowBattery is §8.4 workload 2: sensor 18's battery drains.
	IntelLowBattery = datasets.IntelLowBattery
)

// Synth generates a synthetic ground-truth dataset.
func Synth(cfg SynthConfig) *SynthDataset { return synth.Generate(cfg) }

// SynthEasy generates SYNTH-<dims>D-Easy (µ=80).
func SynthEasy(dims, perGroup int, seed int64) *SynthDataset {
	return synth.Easy(dims, perGroup, seed)
}

// SynthHard generates SYNTH-<dims>D-Hard (µ=30).
func SynthHard(dims, perGroup int, seed int64) *SynthDataset {
	return synth.Hard(dims, perGroup, seed)
}

// Intel generates a simulated Intel-Lab-style sensor trace.
func Intel(cfg IntelConfig) *IntelDataset { return datasets.GenerateIntel(cfg) }

// Expense generates a simulated campaign-expense ledger.
func Expense(cfg ExpenseConfig) *ExpenseDataset { return datasets.GenerateExpense(cfg) }
