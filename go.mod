module github.com/scorpiondb/scorpion

go 1.24
