package scorpion

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
)

// Explainer answers repeated explanation requests over the same query and
// labels while the user sweeps the c knob (e.g. via a UI slider). It caches
// what §8.3.3 shows is reusable:
//
//   - the executed query, its provenance, and the scorer's per-group
//     aggregate states, none of which depend on c;
//   - the DT partitioning, which is agnostic to c; and
//   - the Merger results of previous runs, which seed runs at lower c
//     (decreasing c only grows predicates further).
//
// Explainer requires an independent aggregate (it is a DT-path facility).
// An Explainer is NOT safe for concurrent use; callers that share one
// across requests (the HTTP server's per-session reuse) serialize runs.
//
// Sessions always run unsharded: the cached DT partitioning is a
// full-table artifact, so Request.Shards is ignored here — serving layers
// route sharded requests (Shards > 1) through one-shot ExplainContext
// instead of a session.
type Explainer struct {
	req    Request
	scorer *influence.Scorer
	qres   *query.Result
	space  *predicate.Space

	part *dt.Partitioning
	// mergedByC caches final merged candidates per c value.
	mergedByC map[float64][]partition.Candidate
}

// NewExplainer validates the request, executes the query, and prepares the
// reusable state (one scorer whose group states are shared by every run).
// Request.C is ignored; pass c per ExplainC call.
func NewExplainer(req *Request) (*Explainer, error) {
	r := *req
	r.SetC(1) // placeholder; per-call c overrides
	scorer, space, qres, err := buildScorer(&r)
	if err != nil {
		return nil, err
	}
	if !scorer.Task().Agg.Independent() {
		return nil, fmt.Errorf("scorpion: Explainer requires an independent aggregate; %q is not",
			scorer.Task().Agg.Name())
	}
	return &Explainer{
		req:       r,
		scorer:    scorer,
		qres:      qres,
		space:     space,
		mergedByC: make(map[float64][]partition.Candidate),
	}, nil
}

// AutoAlgorithm reports which algorithm an Auto request over this query
// would resolve to. Serving layers use it to decide whether the session
// can answer Auto requests without changing the algorithm choice: the
// session always runs the DT path, so it only substitutes for Auto when
// Auto itself resolves to DT.
func (e *Explainer) AutoAlgorithm() Algorithm {
	algo, err := chooseAlgorithm(&Request{Algorithm: Auto}, e.scorer)
	if err != nil {
		return DT // unreachable for Auto; keep the session usable
	}
	return algo
}

// Configure adjusts the per-run execution knobs — worker-pool size,
// progress callback, and sampling interval — without invalidating any
// cached session state. The serving layer calls it before each run with
// the job's granted workers and reporter.
func (e *Explainer) Configure(workers int, onProgress func(Progress), interval time.Duration) {
	e.req.Workers = workers
	e.req.OnProgress = onProgress
	e.req.ProgressInterval = interval
}

// ExplainC runs (or replays) the explanation at the given c value, reusing
// the cached partitioning and any cached merger results with higher c.
func (e *Explainer) ExplainC(c float64) (*Result, error) {
	return e.ExplainCContext(context.Background(), c)
}

// ExplainCContext is ExplainC under a context, with the same
// partial-result-on-interrupt contract as ExplainContext: on cancellation
// it returns BOTH the best-so-far Result (Stats.Interrupted set) AND a
// non-nil error wrapping ctx.Err(). Interrupted runs never poison the
// session: a partial partitioning or merge is not cached.
func (e *Explainer) ExplainCContext(ctx context.Context, c float64) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("scorpion: %w", err)
	}
	if err := e.scorer.SetC(c); err != nil {
		return nil, fmt.Errorf("scorpion: %w", err)
	}
	callsBefore := e.scorer.Calls()
	reused := e.part != nil
	r := e.req
	r.SetC(c)
	reg := obs.RegistryFrom(ctx)
	// Session runs skip the "plan" phase (the plan is the cached state);
	// the search span records whether the run was warm instead.
	searchCtx, searchSpan := obs.StartSpan(ctx, "search")
	searchSpan.SetAttr("algorithm", "dt-session")
	searchSpan.SetAttr("c", c)
	searchSpan.SetAttr("reused_partition", reused)

	var board *partition.Board
	var stopMonitor func()
	if r.OnProgress != nil {
		board = partition.NewBoard()
		// callsBefore as the baseline: progress snapshots of a warm run
		// must report this run's scorer calls, not the session's lifetime
		// total, or mid-run polls would contradict the final Stats.
		stopMonitor = watchProgress(&r, func() int64 { return e.scorer.Calls() - callsBefore }, board, start)
	}
	outcome, err := partition.RunSearchObserved(searchCtx, r.effectiveWorkers(), board, &sessionSearcher{e: e, c: c})
	if stopMonitor != nil {
		stopMonitor()
	}
	if err != nil {
		searchSpan.End()
		return nil, err
	}
	searchSpan.SetAttr("candidates", len(outcome.Candidates))
	searchSpan.End()
	// One exact re-scoring pass feeds both the response and the seed
	// cache: the stored seeds are this run's strongest distinct
	// predicates under their EXACT scores (present never mutates the
	// slice, so the cache and the response can share it).
	scored := rescoreExact(e.scorer, outcome.Candidates)
	if !outcome.Interrupted {
		e.storeMerged(c, scored)
	}
	_, rankSpan := obs.StartSpan(ctx, "rank")
	res := present(&r, e.scorer, scored, e.qres)
	rankSpan.End()
	res.Stats.Algorithm = DT
	res.Stats.Duration = time.Since(start)
	res.Stats.ScorerCalls = e.scorer.Calls() - callsBefore
	res.Stats.ReusedPartition = reused
	if outcome.Interrupted {
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		res.Stats.Interrupted = true
		res.Stats.InterruptReason = cause.Error()
		recordSearchMetrics(reg, DT, res.Stats, e.scorer)
		return res, fmt.Errorf("scorpion: search interrupted: %w", cause)
	}
	recordSearchMetrics(reg, DT, res.Stats, e.scorer)
	return res, nil
}

// sessionSearcher drives one ExplainC run behind the partition.Searcher
// interface so session runs share the execution spine (worker pool,
// cancellation, best-so-far board) with one-shot searches.
type sessionSearcher struct {
	e *Explainer
	c float64
}

func (s *sessionSearcher) Name() string { return "dt-session" }

func (s *sessionSearcher) Search(pool *partition.Pool) (*partition.Outcome, error) {
	e := s.e
	pt := e.part
	if pt == nil {
		params := dt.Params{}
		if e.req.DTParams != nil {
			params = *e.req.DTParams
		}
		var err error
		pt, err = dt.PartitionPool(pool, e.scorer, e.space, params)
		if err != nil {
			return nil, err
		}
		if !pt.Interrupted {
			// Only complete partitionings are cached: an interrupted one
			// would silently degrade every later run in the session.
			e.part = pt
		}
	}
	cands := pt.CandidatesPool(e.scorer, pool)
	// The scored leaves are a valid partial answer while the merge runs.
	pool.PublishBest(cands)
	mergeParams := merge.Params{TopQuartileOnly: true, UseApproximation: e.scorer.Incremental()}
	if e.req.MergeParams != nil {
		mergeParams = *e.req.MergeParams
	}
	merged := merge.New(e.scorer, e.space, mergeParams).WithPool(pool).MergeSeeded(cands, e.seedsFor(s.c))
	pool.PublishBest(merged)
	return &partition.Outcome{
		Candidates:  merged,
		Work:        int64(len(pt.OutlierLeaves) + len(pt.HoldOutLeaves)),
		Interrupted: pt.Interrupted || pool.Cancelled(),
	}, nil
}

// maxCachedMerges bounds mergedByC: a long-lived serving session sweeping
// a continuous c slider must not accumulate one candidate slice per
// distinct float forever.
const maxCachedMerges = 16

// storeMerged caches a run's merged candidates under its c, evicting the
// smallest cached c when full — high-c results seed the widest range of
// future (lower-c) runs, so they are the ones worth keeping.
func (e *Explainer) storeMerged(c float64, merged []partition.Candidate) {
	if _, exists := e.mergedByC[c]; !exists && len(e.mergedByC) >= maxCachedMerges {
		evict := c
		for k := range e.mergedByC {
			if k < evict {
				evict = k
			}
		}
		if evict == c {
			return // c is the smallest of all: not worth a slot
		}
		delete(e.mergedByC, evict)
	}
	e.mergedByC[c] = merged
}

// seedsFor returns the cached merged results of the smallest cached c value
// that is still greater than c — the §8.3.3 reuse rule ("if the user first
// ran c = 1, those results can be re-used when the user reduces c to 0.5").
func (e *Explainer) seedsFor(c float64) []partition.Candidate {
	var keys []float64
	for k := range e.mergedByC {
		if k > c {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Float64s(keys)
	seeds := e.mergedByC[keys[0]]
	// Seed with the strongest few; seeding everything would defeat the
	// point of the cache.
	if len(seeds) > 5 {
		seeds = seeds[:5]
	}
	return seeds
}

// InvalidateCache drops all cached search state (e.g. after editing
// labels). The executed query and scorer states are kept: they depend only
// on the request, not on any previous run.
func (e *Explainer) InvalidateCache() {
	e.part = nil
	e.mergedByC = make(map[float64][]partition.Candidate)
}

// QueryResult exposes the executed query with provenance.
func (e *Explainer) QueryResult() *query.Result { return e.qres }

// buildScorerForTest is a test hook returning the scorer for a request.
func buildScorerForTest(req *Request) (*influence.Scorer, error) {
	s, _, _, err := buildScorer(req)
	return s, err
}
