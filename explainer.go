package scorpion

import (
	"fmt"
	"sort"
	"time"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
)

// Explainer answers repeated explanation requests over the same query and
// labels while the user sweeps the c knob (e.g. via a UI slider). It caches
// what §8.3.3 shows is reusable:
//
//   - the DT partitioning, which is agnostic to c, and
//   - the Merger results of previous runs, which seed runs at lower c
//     (decreasing c only grows predicates further).
//
// Explainer requires an independent aggregate (it is a DT-path facility).
type Explainer struct {
	req   Request
	qres  *query.Result
	space *predicate.Space

	part *dt.Partitioning
	// mergedByC caches final merged candidates per c value.
	mergedByC map[float64][]partition.Candidate
}

// NewExplainer validates the request and prepares the reusable state.
// Request.C is ignored; pass c per ExplainC call.
func NewExplainer(req *Request) (*Explainer, error) {
	r := *req
	r.C = 1 // placeholder; per-call c overrides
	scorer, space, qres, err := buildScorer(&r)
	if err != nil {
		return nil, err
	}
	if !scorer.Task().Agg.Independent() {
		return nil, fmt.Errorf("scorpion: Explainer requires an independent aggregate; %q is not",
			scorer.Task().Agg.Name())
	}
	return &Explainer{
		req:       r,
		qres:      qres,
		space:     space,
		mergedByC: make(map[float64][]partition.Candidate),
	}, nil
}

// ExplainC runs (or replays) the explanation at the given c value, reusing
// the cached partitioning and any cached merger results with higher c.
func (e *Explainer) ExplainC(c float64) (*Result, error) {
	start := time.Now()
	r := e.req
	r.C = c
	scorer, _, _, err := buildScorer(&r)
	if err != nil {
		return nil, err
	}
	if e.part == nil {
		params := dt.Params{}
		if e.req.DTParams != nil {
			params = *e.req.DTParams
		}
		pt, err := dt.Partition(scorer, e.space, params)
		if err != nil {
			return nil, err
		}
		e.part = pt
	}
	cands := e.part.Candidates(scorer)

	mergeParams := merge.Params{TopQuartileOnly: true, UseApproximation: scorer.Incremental()}
	if e.req.MergeParams != nil {
		mergeParams = *e.req.MergeParams
	}
	merger := merge.New(scorer, e.space, mergeParams)
	merged := merger.MergeSeeded(cands, e.seedsFor(c))
	e.mergedByC[c] = merged

	res := assemble(&r, scorer, merged, e.qres)
	res.Stats.Algorithm = DT
	res.Stats.Duration = time.Since(start)
	res.Stats.ScorerCalls = scorer.Calls()
	return res, nil
}

// seedsFor returns the cached merged results of the smallest cached c value
// that is still greater than c — the §8.3.3 reuse rule ("if the user first
// ran c = 1, those results can be re-used when the user reduces c to 0.5").
func (e *Explainer) seedsFor(c float64) []partition.Candidate {
	var keys []float64
	for k := range e.mergedByC {
		if k > c {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Float64s(keys)
	seeds := e.mergedByC[keys[0]]
	// Seed with the strongest few; seeding everything would defeat the
	// point of the cache.
	if len(seeds) > 5 {
		seeds = seeds[:5]
	}
	return seeds
}

// InvalidateCache drops all cached state (e.g. after editing labels).
func (e *Explainer) InvalidateCache() {
	e.part = nil
	e.mergedByC = make(map[float64][]partition.Candidate)
}

// QueryResult exposes the executed query with provenance.
func (e *Explainer) QueryResult() *query.Result { return e.qres }

// buildScorerForTest is a test hook returning the scorer for a request.
func buildScorerForTest(req *Request) (*influence.Scorer, error) {
	s, _, _, err := buildScorer(req)
	return s, err
}
