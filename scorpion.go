// Package scorpion is a Go implementation of Scorpion (Wu & Madden, VLDB
// 2013): given an aggregate GROUP BY query and a set of user-flagged outlier
// results, it finds the predicate over the input tuples' attributes that
// most influences those outliers while leaving the hold-out results intact —
// an answer to "which inputs caused this output to look wrong?".
//
// # Quick start
//
//	tbl, _ := scorpion.ReadCSV(f, scorpion.CSVOptions{})
//	res, _ := scorpion.Explain(&scorpion.Request{
//		Table:     tbl,
//		SQL:       "SELECT avg(temp), hour FROM readings GROUP BY hour",
//		Outliers:  []string{"h012", "h013"},
//		Direction: scorpion.TooHigh,
//	})
//	fmt.Println(res.Explanations[0].Predicate.Format(tbl))
//
// The package selects among three search algorithms based on the aggregate's
// properties (§5 of the paper): the exhaustive NAIVE search for black-box
// aggregates, the DT regression-tree partitioner for independent aggregates
// (AVG, STDDEV, ...), and the bottom-up MC subspace search for independent
// anti-monotonic aggregates (SUM, COUNT). See the Request.Algorithm knob to
// force a choice, and Request.C for the §7 influence/selectivity trade-off.
//
// # Cancellation and parallelism
//
// ExplainContext threads a context.Context through every search loop: a
// cancelled or expired context stops the search promptly and returns the
// best explanations found so far alongside the context error. Request.
// Workers fans all three algorithms out over a shared worker pool — the
// parallelization §8.3.2 of the paper leaves to future work — with output
// identical to the serial run. (Request.NaiveWorkers is the deprecated,
// NAIVE-only spelling of the same knob.)
package scorpion

import (
	"io"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Core relational vocabulary, re-exported from the internal substrate.
type (
	// Table is an immutable columnar relation.
	Table = relation.Table
	// Builder accumulates rows into a Table.
	Builder = relation.Builder
	// Schema is an ordered list of uniquely named columns.
	Schema = relation.Schema
	// Column describes one attribute.
	Column = relation.Column
	// Kind distinguishes continuous from discrete attributes.
	Kind = relation.Kind
	// Row is one tuple.
	Row = relation.Row
	// Value is one cell.
	Value = relation.Value
	// RowSet is a set of row indices — Scorpion's provenance currency. It
	// self-selects among dense-bitmap, range-run, and sparse-array
	// encodings, so group-contiguous provenance costs bytes per run, not
	// bytes per row.
	RowSet = relation.RowSet
	// CSVOptions controls CSV decoding.
	CSVOptions = relation.CSVOptions
	// Appender grows an append-only table as a chain of immutable
	// snapshots sharing backing arrays — the streaming-ingestion substrate.
	Appender = relation.Appender
	// Predicate is the explanation language: a conjunction of range and
	// set-containment clauses.
	Predicate = predicate.Predicate
	// Clause is a single-attribute constraint.
	Clause = predicate.Clause
	// Direction is a ±1 error vector for an outlier result.
	Direction = influence.Direction
	// Aggregate is the aggregate-function interface; custom black-box
	// aggregates implement it (see also aggregate properties in DESIGN.md).
	Aggregate = aggregate.Func
)

// Attribute kinds.
const (
	// Continuous columns hold float64 values and admit range clauses.
	Continuous = relation.Continuous
	// Discrete columns hold strings and admit set-containment clauses.
	Discrete = relation.Discrete
)

// Error-vector directions.
const (
	// TooHigh flags outlier results whose values should decrease.
	TooHigh = influence.TooHigh
	// TooLow flags outlier results whose values should increase.
	TooLow = influence.TooLow
)

// F wraps a float64 as a continuous Value.
func F(v float64) Value { return relation.F(v) }

// S wraps a string as a discrete Value.
func S(v string) Value { return relation.S(v) }

// NewSchema builds a schema from uniquely named columns.
func NewSchema(cols ...Column) (*Schema, error) { return relation.NewSchema(cols...) }

// NewBuilder returns a table builder for the schema.
func NewBuilder(schema *Schema) *Builder { return relation.NewBuilder(schema) }

// NewAppender returns an appender over an empty table of the schema.
func NewAppender(schema *Schema) *Appender { return relation.NewAppender(schema) }

// AppenderFor returns an appender extending an existing table; the table
// itself stays immutable while successor snapshots share its storage.
func AppenderFor(t *Table) *Appender { return relation.AppenderFor(t) }

// ReadCSV decodes a CSV stream with a header row, inferring column kinds.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) { return relation.ReadCSV(r, opts) }

// ParseCSVRows decodes a CSV batch (header row, any column order) into rows
// matching an existing schema — the append-batch codec.
func ParseCSVRows(r io.Reader, schema *Schema, opts CSVOptions) ([]Row, error) {
	return relation.ParseCSVRows(r, schema, opts)
}

// WriteCSV encodes a table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error { return relation.WriteCSV(w, t) }

// QueryResult is an executed aggregate query: one row per group, each
// carrying its provenance RowSet.
type QueryResult = query.Result

// RunQuery parses and executes an aggregate GROUP BY query against the
// table, without explaining anything — useful to inspect the results (and
// pick outliers) before calling Explain.
func RunQuery(t *Table, sql string) (*QueryResult, error) {
	q, err := query.FromSQL(t, sql)
	if err != nil {
		return nil, err
	}
	return q.Run()
}
