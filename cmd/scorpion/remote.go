package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/scorpiondb/scorpion/internal/dispatch"
	"github.com/scorpiondb/scorpion/internal/plot"
)

// remoteOptions carries one explanation request aimed at a running
// scorpion-server instead of a locally loaded CSV.
type remoteOptions struct {
	base       string // server base URL, e.g. http://localhost:8080
	table      string // catalog table name ("" = server's only table)
	async      bool   // submit as a job and poll best-so-far
	follow     bool   // keep re-explaining as the table grows
	appendPath string // CSV batch to append before explaining ("" = none)
	poll       time.Duration
	timeout    time.Duration // the -timeout flag; also caps the transport's dial/TLS phases
	showQuery  bool
	body       map[string]any // the /explain request body
	sql        string
}

// remoteExplanation mirrors the server's ExplanationJSON.
type remoteExplanation struct {
	Where     string  `json:"where"`
	Influence float64 `json:"influence"`
	Matched   int     `json:"matched_outlier_tuples"`
}

// remoteResult mirrors the server's /explain response body; Error captures
// the {"error": ...} shape of non-200 answers.
type remoteResult struct {
	Algorithm       string              `json:"algorithm"`
	DurationMS      int64               `json:"duration_ms"`
	ScorerCalls     int64               `json:"scorer_calls"`
	Shards          int                 `json:"shards"`
	Pruned          int64               `json:"pruned"`
	Escalated       int64               `json:"escalated"`
	Explanations    []remoteExplanation `json:"explanations"`
	Cached          bool                `json:"cached"`
	ReusedPartition bool                `json:"reused_partition"`
	Refreshed       bool                `json:"refreshed"`
	RefreshedFrom   int64               `json:"refreshed_from"`
	Interrupted     bool                `json:"interrupted"`
	InterruptReason string              `json:"interrupt_reason"`
	Error           string              `json:"error"`
}

// jobView mirrors the fields of the server's /jobs/{id} response the CLI
// uses.
type jobView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Progress *struct {
		ElapsedMS   int64 `json:"elapsed_ms"`
		ScorerCalls int64 `json:"scorer_calls"`
		Best        []struct {
			Where     string  `json:"where"`
			Influence float64 `json:"influence"`
		} `json:"best"`
		Shards []struct {
			Shard string `json:"shard"`
		} `json:"shards"`
		Version int64 `json:"version"`
	} `json:"progress"`
	Result *remoteResult `json:"result"`
	Error  string        `json:"error"`
}

// minPollInterval floors the -poll knob: a zero or negative interval would
// spin the poll loop flat out against the server (and, on interrupt, the
// wind-down loop's unconditional sleep would vanish too).
const minPollInterval = 100 * time.Millisecond

// clampPoll applies the poll-interval floor.
func clampPoll(d time.Duration) time.Duration {
	if d < minPollInterval {
		return minPollInterval
	}
	return d
}

// controlRequestTimeout bounds the quick control-plane requests that run
// off context.Background() — job polls and the cancel DELETE — so a
// wedged server can't hang the wind-down loop forever. Generous relative
// to what these endpoints actually take (milliseconds) because a tripped
// deadline here abandons the job's best-so-far output.
const controlRequestTimeout = 30 * time.Second

// newRemoteClient builds the CLI's HTTP client on the hardened transport
// shared with the server's shard-dispatch path: bounded dial and TLS
// handshake phases so a dead host fails fast instead of wedging commands
// run without -timeout. A -timeout shorter than the default dial bound
// tightens it further. No whole-request client.Timeout is set — a sync
// /explain legitimately holds its response until the search finishes, and
// the -timeout context already bounds command-scoped requests.
func newRemoteClient(timeout time.Duration) *http.Client {
	dial := 10 * time.Second
	if timeout > 0 && timeout < dial {
		dial = timeout
	}
	return dispatch.NewHTTPClient(dial)
}

// runRemote drives an explanation against a running server: synchronously
// through POST /explain, or as an async job polled for best-so-far results
// and canceled (DELETE) when ctx fires.
func runRemote(ctx context.Context, opts remoteOptions) error {
	opts.poll = clampPoll(opts.poll)
	client := newRemoteClient(opts.timeout)
	if opts.appendPath != "" {
		if err := remoteAppend(ctx, client, opts); err != nil {
			return err
		}
	}
	if opts.showQuery {
		if err := remoteQuery(ctx, client, opts); err != nil {
			return err
		}
	}
	if opts.follow {
		return followRemote(ctx, client, opts)
	}
	if !opts.async {
		var res remoteResult
		if code, err := postJSON(ctx, client, opts.base+"/explain", opts.body, &res); err != nil {
			// A client-side -timeout (or Ctrl-C) kills the request; the
			// server cancels the search but the partial answer stays on its
			// side. Only the async path can retrieve it.
			if ctx.Err() != nil {
				return fmt.Errorf("request interrupted (%v); rerun with -async to keep best-so-far results on interrupt", ctx.Err())
			}
			return err
		} else if code != http.StatusOK {
			return fmt.Errorf("server: %s", httpErrorText(code, &res))
		}
		printRemoteResult(&res)
		return nil
	}

	// Async: enqueue, poll, cancel on interrupt.
	var accepted struct {
		JobID string `json:"job_id"`
		Poll  string `json:"poll"`
		Error string `json:"error"`
	}
	if code, err := postJSON(ctx, client, opts.base+"/jobs", opts.body, &accepted); err != nil {
		return err
	} else if code != http.StatusAccepted {
		if accepted.Error != "" {
			return fmt.Errorf("server rejected job: %s (HTTP %d)", accepted.Error, code)
		}
		return fmt.Errorf("server rejected job (HTTP %d)", code)
	}
	fmt.Printf("job %s enqueued; polling every %s (Ctrl-C cancels the job)\n\n", accepted.JobID, opts.poll)

	jobURL := opts.base + "/jobs/" + accepted.JobID
	var lastVersion int64 = -1
	canceled := false
	for {
		// Poll with a background-derived context: an interrupt must still
		// let us cancel the job and fetch its final (partial) state. The
		// per-request deadline keeps a wedged server from hanging the loop.
		var view jobView
		pollCtx, cancelPoll := context.WithTimeout(context.Background(), controlRequestTimeout)
		code, err := getJSON(pollCtx, client, jobURL, &view)
		cancelPoll()
		if err != nil {
			return err
		} else if code != http.StatusOK {
			return fmt.Errorf("poll: HTTP %d", code)
		}
		if view.Progress != nil && view.Progress.Version != lastVersion {
			lastVersion = view.Progress.Version
			line := fmt.Sprintf("[%6.2fs] %s  scorer calls %d",
				float64(view.Progress.ElapsedMS)/1000, view.Status, view.Progress.ScorerCalls)
			if n := len(view.Progress.Shards); n > 0 {
				line += fmt.Sprintf("  [%d shards]", n)
			}
			if len(view.Progress.Best) > 0 {
				b := view.Progress.Best[0]
				line += fmt.Sprintf("  best %.4f WHERE %s", b.Influence, b.Where)
			}
			fmt.Println(line)
		}
		if terminalStatus(view.Status) {
			fmt.Println()
			if view.Result != nil {
				printRemoteResult(view.Result)
			}
			switch view.Status {
			case "done":
				return nil
			case "canceled":
				fmt.Println("job canceled; results above are best-so-far")
				return nil
			case "timeout":
				fmt.Println("job hit the server's explain deadline; results above are best-so-far")
				return nil
			default:
				return fmt.Errorf("job %s: %s", view.Status, view.Error)
			}
		}
		if canceled {
			// ctx.Done is permanently ready now; sleep unconditionally so
			// the wind-down polls stay paced instead of busy-spinning.
			time.Sleep(opts.poll)
			continue
		}
		select {
		case <-ctx.Done():
			canceled = true
			fmt.Println("\ncanceling job...")
			// The command context is already done; the cancel request gets
			// its own bounded context so it can't hang indefinitely either.
			delCtx, cancelDel := context.WithTimeout(context.Background(), controlRequestTimeout)
			final, err := deleteJob(delCtx, client, jobURL)
			cancelDel()
			if err != nil {
				return err
			}
			if final != nil {
				// The cancel raced the job's own completion: the server
				// already removed the terminal job and handed back its
				// final state, so finish from that instead of polling a
				// now-404 id.
				fmt.Println()
				if final.Result != nil {
					printRemoteResult(final.Result)
				}
				if final.Status != "done" {
					fmt.Printf("job ended %s; results above are best-so-far\n", final.Status)
				}
				return nil
			}
			// Keep polling: the job winds down to a terminal state carrying
			// its best-so-far result.
		case <-time.After(opts.poll):
		}
	}
}

// remoteAppend uploads a CSV batch to POST /tables/{name}/rows.
func remoteAppend(ctx context.Context, client *http.Client, opts remoteOptions) error {
	f, err := os.Open(opts.appendPath)
	if err != nil {
		return err
	}
	defer f.Close()
	url := opts.base + "/tables/" + opts.table + "/rows"
	req, err := http.NewRequestWithContext(ctx, "POST", url, f)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/csv")
	var out struct {
		Appended int `json:"appended"`
		Table    struct {
			Rows int   `json:"rows"`
			Gen  int64 `json:"gen"`
		} `json:"table"`
		Error string `json:"error"`
	}
	code, err := doJSON(client, req, &out)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		if out.Error != "" {
			return fmt.Errorf("append: %s (HTTP %d)", out.Error, code)
		}
		return fmt.Errorf("append: HTTP %d", code)
	}
	fmt.Printf("appended %d rows to %s (now %d rows, generation %d)\n\n",
		out.Appended, opts.table, out.Table.Rows, out.Table.Gen)
	return nil
}

// followRemote re-explains on the poll interval until ctx fires, printing a
// result whenever the server computed a fresh one (cold or incrementally
// refreshed). Identical repeats come back "cached" and are skipped, so an
// idle table costs one cache hit per tick.
func followRemote(ctx context.Context, client *http.Client, opts remoteOptions) error {
	first := true
	for {
		var res remoteResult
		code, err := postJSON(ctx, client, opts.base+"/explain", opts.body, &res)
		if err != nil {
			if ctx.Err() != nil {
				return nil // Ctrl-C ends the follow loop cleanly
			}
			return err
		}
		if code != http.StatusOK {
			// Transient server states — an explain hitting the server's
			// deadline (504), a full queue (429), a draining scheduler
			// (503) — must not kill a watcher documented to run until
			// Ctrl-C: report and retry on the next tick. Other statuses
			// (bad request, unknown table) will never succeed; stop.
			if code == http.StatusGatewayTimeout || code == http.StatusTooManyRequests ||
				code == http.StatusServiceUnavailable {
				fmt.Printf("server busy (%s); retrying in %s\n", httpErrorText(code, &res), opts.poll)
				select {
				case <-ctx.Done():
					return nil
				case <-time.After(opts.poll):
				}
				continue
			}
			return fmt.Errorf("server: %s", httpErrorText(code, &res))
		}
		if first || !res.Cached {
			fmt.Printf("--- %s ---\n", time.Now().Format(time.TimeOnly))
			printRemoteResult(&res)
			fmt.Println()
			first = false
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(opts.poll):
		}
	}
}

// remoteQuery prints the aggregate query result from the server, mirroring
// the local -show-query plot.
func remoteQuery(ctx context.Context, client *http.Client, opts remoteOptions) error {
	var out struct {
		Rows []struct {
			Key   string  `json:"key"`
			Value float64 `json:"value"`
		} `json:"rows"`
		Error string `json:"error"`
	}
	body := map[string]any{"table": opts.table, "sql": opts.sql}
	if code, err := postJSON(ctx, client, opts.base+"/query", body, &out); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("query: %s", out.Error)
	}
	fmt.Printf("query: %s\n\n", opts.sql)
	points := make([]plot.Point, 0, len(out.Rows))
	for _, row := range out.Rows {
		points = append(points, plot.Point{Label: row.Key, Value: row.Value})
	}
	plot.Render(os.Stdout, points, plot.Options{MaxRows: 40})
	fmt.Println()
	return nil
}

func printRemoteResult(res *remoteResult) {
	note := ""
	if res.Cached {
		note = "   (served from the server's result cache)"
	} else if res.Refreshed {
		note = "   (refreshed incrementally"
		if res.RefreshedFrom > 0 {
			note += fmt.Sprintf(" from generation %d", res.RefreshedFrom)
		}
		note += ")"
	} else if res.ReusedPartition {
		note = "   (reused cached partitioning)"
	}
	if res.Shards > 1 {
		note += fmt.Sprintf("   (%d shards)", res.Shards)
	}
	fmt.Printf("algorithm: %s   scorer calls: %d   elapsed: %s%s\n\n",
		res.Algorithm, res.ScorerCalls, time.Duration(res.DurationMS)*time.Millisecond, note)
	if res.Pruned > 0 || res.Escalated > 0 {
		fmt.Printf("anytime: pruned %d candidates on interval bounds, escalated %d to exact scoring\n\n",
			res.Pruned, res.Escalated)
	}
	if res.Interrupted {
		fmt.Printf("search interrupted (%s); showing best results so far\n\n", res.InterruptReason)
	}
	if len(res.Explanations) == 0 {
		fmt.Println("no explanations found")
		return
	}
	for i, e := range res.Explanations {
		fmt.Printf("%2d. influence %10.4f  matches %6d tuples  WHERE %s\n",
			i+1, e.Influence, e.Matched, e.Where)
	}
}

func terminalStatus(s string) bool {
	switch s {
	case "done", "failed", "canceled", "timeout":
		return true
	}
	return false
}

// postJSON posts v as JSON and decodes the response into out (which may
// also capture an "error" field on non-200s).
func postJSON(ctx context.Context, client *http.Client, url string, v any, out any) (int, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return 0, err
	}
	return doJSON(client, req, out)
}

// deleteJob cancels (or, if already terminal, removes) the job. When the
// server reports it removed a terminal job, the returned view carries that
// job's final state; a nil view means cancellation is in flight and the
// caller should keep polling.
func deleteJob(ctx context.Context, client *http.Client, jobURL string) (*jobView, error) {
	req, err := http.NewRequestWithContext(ctx, "DELETE", jobURL, nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Removed string   `json:"removed"`
		Job     *jobView `json:"job"`
	}
	code, err := doJSON(client, req, &out)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("cancel: HTTP %d", code)
	}
	if out.Removed != "" {
		return out.Job, nil
	}
	return nil, nil
}

func doJSON(client *http.Client, req *http.Request, out any) (int, error) {
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("bad server response (HTTP %d): %s",
				resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
	return resp.StatusCode, nil
}

// httpErrorText renders a non-200 /explain response for the user.
func httpErrorText(code int, res *remoteResult) string {
	if res.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", res.Error, code)
	}
	return fmt.Sprintf("HTTP %d", code)
}
