package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// writeCSV writes a small dataset with an obvious culprit: source "bad"
// sends high values in the outlier groups.
func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	content := "grp,src,v\n"
	for _, g := range []string{"g1", "g2"} {
		for i := 0; i < 30; i++ {
			src := []string{"ok1", "ok2", "bad"}[i%3]
			v := "10"
			if g == "g2" && src == "bad" {
				v = "100"
			}
			content += g + "," + src + "," + v + "\n"
		}
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	csv := writeCSV(t)
	err := run(context.Background(), []string{
		"-csv", csv,
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-direction", "high",
		"-c", "1",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	csv := writeCSV(t)
	cases := [][]string{
		{},            // missing everything
		{"-csv", csv}, // missing sql/outliers
		{"-csv", csv, "-sql", "SELECT avg(v), grp FROM t GROUP BY grp"}, // missing outliers
		{"-csv", csv, "-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2", "-direction", "sideways"},
		{"-csv", csv, "-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2", "-algo", "quantum"},
		{"-csv", "/nonexistent.csv", "-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2"},
		{"-csv", csv, "-sql", "not sql", "-outliers", "g2"},
		{"-csv", csv, "-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "nope"},
	}
	for i, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestRunForcedAlgorithms(t *testing.T) {
	csv := writeCSV(t)
	for _, algo := range []string{"auto", "naive", "dt"} {
		err := run(context.Background(), []string{
			"-csv", csv,
			"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2",
			"-all-others",
			"-algo", algo,
			"-show-query=false",
		})
		if err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	// MC works with sum (non-negative values).
	err := run(context.Background(), []string{
		"-csv", csv,
		"-sql", "SELECT sum(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-algo", "mc",
		"-show-query=false",
	})
	if err != nil {
		t.Errorf("algo mc: %v", err)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("splitList(\"\") should be nil")
	}
}
