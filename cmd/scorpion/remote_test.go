package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/server"
)

// startServer serves the CSV at path through a real internal/server over
// an httptest listener and returns its base URL.
func startServer(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	table, err := scorpion.ReadCSV(f, scorpion.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(table)
	srv.ProgressInterval = 5 * time.Millisecond
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return hs.URL
}

// writeBigCSV writes a dataset whose NAIVE search over three continuous
// attributes takes far longer than these tests — the remote-cancel target.
func writeBigCSV(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("grp,a1,a2,a3,v\n")
	for g := 0; g < 4; g++ {
		key := []string{"g0", "g1", "g2", "g3"}[g]
		for i := 0; i < 800; i++ {
			v := 10.0
			if g >= 2 && i%7 == 0 {
				v = 90
			}
			fmt.Fprintf(&sb, "%s,%d,%d,%d,%g\n", key, i%100, (i*13)%100, (i*29)%100, v)
		}
	}
	path := t.TempDir() + "/big.csv"
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRemoteSync explains through a running server with -server.
func TestRemoteSync(t *testing.T) {
	url := startServer(t, writeCSV(t))
	err := run(context.Background(), []string{
		"-server", url,
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-c", "1",
	})
	if err != nil {
		t.Fatalf("remote sync: %v", err)
	}
}

// TestRemoteAsync submits a job, polls it to completion, and prints the
// result.
func TestRemoteAsync(t *testing.T) {
	url := startServer(t, writeCSV(t))
	err := run(context.Background(), []string{
		"-server", url,
		"-async",
		"-poll", "10ms",
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-show-query=false",
	})
	if err != nil {
		t.Fatalf("remote async: %v", err)
	}
}

// TestRemoteAsyncCancel interrupts a long remote job (the Ctrl-C path):
// the CLI cancels the job on the server and drains it to its terminal
// best-so-far state instead of erroring out.
func TestRemoteAsyncCancel(t *testing.T) {
	url := startServer(t, writeBigCSV(t))
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-server", url,
			"-async",
			"-poll", "20ms",
			"-algo", "naive",
			"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2,g3",
			"-all-others",
			"-show-query=false",
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("canceled remote job: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("remote cancel did not drain the job")
	}
}

// TestRemoteFlagValidation covers the new flag combinations.
func TestRemoteFlagValidation(t *testing.T) {
	csv := writeCSV(t)
	cases := [][]string{
		{"-table", "x"}, // -table without -server
		{"-async"},      // -async without -server
		{"-server", "http://localhost:1", "-csv", csv, "-sql", "q", "-outliers", "g"}, // both sources
		{"-server", "http://localhost:1"},                                             // missing sql/outliers
	}
	for i, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

// TestPollClampFloor: -poll values at or below zero are floored to a sane
// interval instead of busy-looping the poller; positive values pass
// through.
func TestPollClampFloor(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second, time.Millisecond} {
		if got := clampPoll(d); got != minPollInterval {
			t.Errorf("clampPoll(%v) = %v, want %v", d, got, minPollInterval)
		}
	}
	for _, d := range []time.Duration{minPollInterval, 250 * time.Millisecond, 5 * time.Second} {
		if got := clampPoll(d); got != d {
			t.Errorf("clampPoll(%v) = %v, want unchanged", d, got)
		}
	}
}

// TestRemoteAsyncPollZeroDoesNotBusyLoop drives a full async run with
// -poll 0 and counts the poll requests that actually hit the server: the
// clamp must pace them (a busy loop would issue thousands in the first
// 100ms alone).
func TestRemoteAsyncPollZeroDoesNotBusyLoop(t *testing.T) {
	f, err := os.Open(writeCSV(t))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	table, err := scorpion.ReadCSV(f, scorpion.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(table)
	srv.ProgressInterval = 5 * time.Millisecond
	t.Cleanup(srv.Close)

	var polls atomic.Int64
	counting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == "GET" && strings.HasPrefix(r.URL.Path, "/jobs/") {
			polls.Add(1)
		}
		srv.ServeHTTP(w, r)
	})
	hs := httptest.NewServer(counting)
	t.Cleanup(hs.Close)

	err = run(context.Background(), []string{
		"-server", hs.URL, "-async", "-poll", "0", "-show-query=false",
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2", "-all-others",
	})
	if err != nil {
		t.Fatal(err)
	}
	// This search finishes almost instantly; a clamped poller gets a
	// handful of polls in, a busy loop gets thousands.
	if got := polls.Load(); got > 50 {
		t.Errorf("%d polls for a near-instant job: -poll 0 busy-looped", got)
	}
}
