// Command scorpion explains outlier aggregate results in a CSV dataset.
//
// Usage:
//
//	scorpion -csv readings.csv \
//	   -sql "SELECT stddev(temp), hour FROM readings GROUP BY hour" \
//	   -outliers h012,h013 -direction high [-holdouts h000,h001 | -all-others] \
//	   [-c 0.2] [-lambda 0.5] [-algo auto|naive|dt|mc] [-attrs a,b,c] [-topk 5] \
//	   [-workers 4] [-timeout 30s] [-epsilon 0.05] [-confidence 0.95]
//
// The tool prints the query result (so the flagged groups can be checked)
// followed by the ranked explanation predicates. The search is fanned out
// over -workers goroutines and runs under a context: Ctrl-C (or -timeout)
// stops it promptly and prints the best explanations found so far.
//
// With -server the tool talks to a running scorpion-server instead of
// loading a CSV: -table picks the dataset from the server's catalog, and
// -async submits the search as a job, polls its best-so-far results while
// it runs, and cancels it (keeping the partial answer) on Ctrl-C:
//
//	scorpion -server http://localhost:8080 -table readings -async \
//	   -sql "SELECT stddev(temp), hour FROM readings GROUP BY hour" \
//	   -outliers h012,h013 -all-others
//
// Streaming ingestion: -append batch.csv appends a CSV batch of rows to the
// table before explaining (locally through an Appender snapshot, remotely
// via POST /tables/{name}/rows — the server then answers the explanation
// warm, re-scoring its previous candidates against the grown groups), and
// -follow keeps re-explaining on the -poll interval as other writers append,
// printing each refreshed answer until Ctrl-C:
//
//	scorpion -server http://localhost:8080 -table readings -follow \
//	   -sql "SELECT stddev(temp), hour FROM readings GROUP BY hour" \
//	   -outliers h012,h013 -all-others
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/plot"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "scorpion:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("scorpion", flag.ContinueOnError)
	var (
		csvPath   = fs.String("csv", "", "input CSV file (header row required)")
		sqlText   = fs.String("sql", "", "aggregate GROUP BY query")
		outliers  = fs.String("outliers", "", "comma-separated outlier group keys")
		holdouts  = fs.String("holdouts", "", "comma-separated hold-out group keys")
		allOthers = fs.Bool("all-others", false, "treat every unflagged group as a hold-out")
		direction = fs.String("direction", "high", "error vector: high | low")
		cKnob     = fs.Float64("c", scorpion.DefaultC, "influence/selectivity knob (§7)")
		lambda    = fs.Float64("lambda", scorpion.DefaultLambda, "outlier vs hold-out trade-off")
		algo      = fs.String("algo", "auto", "search algorithm: auto | naive | dt | mc")
		attrs     = fs.String("attrs", "", "comma-separated explanation attributes (default: all unused)")
		topK      = fs.Int("topk", 5, "number of explanations to print")
		discrete  = fs.String("discrete", "", "comma-separated columns to force discrete")
		showQuery = fs.Bool("show-query", true, "print the aggregate query result first")
		workers   = fs.Int("workers", 0, "search worker pool (0 = serial, -1 = GOMAXPROCS)")
		shards    = fs.Int("shards", 0, "horizontal table shards for one search (0 = auto, 1 = unsharded)")
		epsilon   = fs.Float64("epsilon", 0, "anytime error bound in influence units (0 = exact search)")
		confid    = fs.Float64("confidence", 0, "anytime interval confidence in (0, 1) (0 = default 0.95)")
		timeout   = fs.Duration("timeout", 0, "search deadline (0 = none); best-so-far results are printed on expiry")
		serverURL = fs.String("server", "", "base URL of a running scorpion-server (explain remotely instead of loading a CSV)")
		table     = fs.String("table", "", "table name in the server's catalog (with -server; empty = its only table)")
		asyncMode = fs.Bool("async", false, "with -server: enqueue as a job, poll best-so-far, cancel on Ctrl-C")
		pollEvery = fs.Duration("poll", 500*time.Millisecond, "poll interval with -async (job polls) and -follow (re-explains)")
		appendCSV = fs.String("append", "", "CSV batch of rows to append to the table before explaining")
		follow    = fs.Bool("follow", false, "with -server: keep re-explaining as the table grows (Ctrl-C stops)")
		noCache   = fs.Bool("no-cache", false, "with -server: bypass the server's result cache (force a cold search)")
		traceOn   = fs.Bool("trace", false, "print the search's phase-span timeline after the results (local searches)")
		logLevel  = fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *serverURL == "" && (*table != "" || *asyncMode || *noCache || *follow) {
		return fmt.Errorf("-table, -async, -no-cache and -follow require -server")
	}
	if *follow && *asyncMode {
		return fmt.Errorf("-follow re-explains synchronously; drop -async")
	}
	if *follow && *noCache {
		// Without the cache, every idle tick would be a full cold search
		// and every tick would reprint an identical answer (the loop skips
		// repeats by their "cached" marker).
		return fmt.Errorf("-follow relies on the server cache to skip idle ticks; drop -no-cache")
	}
	if *serverURL != "" && *appendCSV != "" && *table == "" {
		return fmt.Errorf("-append with -server needs -table (the append endpoint is per table)")
	}
	if *serverURL != "" && *csvPath != "" {
		return fmt.Errorf("-csv and -server are mutually exclusive (the server owns the data)")
	}
	if *serverURL != "" && *traceOn {
		return fmt.Errorf("-trace applies to local searches; the server records job traces in GET /jobs/{id}")
	}
	if *serverURL != "" && *discrete != "" {
		return fmt.Errorf("-discrete only applies to locally loaded CSVs; the server inferred its column kinds at load time")
	}
	if *serverURL != "" {
		if *sqlText == "" || *outliers == "" {
			fs.Usage()
			return fmt.Errorf("-sql and -outliers are required")
		}
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		body := map[string]any{
			"table":    *table,
			"sql":      *sqlText,
			"outliers": splitList(*outliers),
			"c":        *cKnob,
			"lambda":   *lambda,
		}
		// Send workers only when the flag was given, preserving its local
		// semantics: an explicit 0 means serial (a 1-worker grant), not
		// "server default" as a literal 0 would on the wire; -1 stays
		// GOMAXPROCS on both sides. An unset flag defers to the server.
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				w := *workers
				if w == 0 {
					w = 1
				}
				body["workers"] = w
			}
		})
		if hs := splitList(*holdouts); len(hs) > 0 {
			body["holdouts"] = hs
		}
		if *allOthers {
			body["all_others_holdout"] = true
		}
		if d := strings.ToLower(*direction); d != "high" {
			body["direction"] = d
		}
		if a := strings.ToLower(*algo); a != "auto" {
			body["algorithm"] = a
		}
		if as := splitList(*attrs); len(as) > 0 {
			body["attributes"] = as
		}
		if *topK != 5 {
			body["top_k"] = *topK
		}
		if *shards != 0 {
			body["shards"] = *shards
		}
		if *epsilon != 0 {
			body["epsilon"] = *epsilon
		}
		if *confid != 0 {
			body["confidence"] = *confid
		}
		if *noCache {
			body["cache"] = "bypass"
		}
		return runRemote(ctx, remoteOptions{
			base:       strings.TrimRight(*serverURL, "/"),
			table:      *table,
			async:      *asyncMode,
			follow:     *follow,
			appendPath: *appendCSV,
			poll:       *pollEvery,
			timeout:    *timeout,
			showQuery:  *showQuery,
			body:       body,
			sql:        *sqlText,
		})
	}
	if *csvPath == "" || *sqlText == "" || *outliers == "" {
		fs.Usage()
		return fmt.Errorf("-csv, -sql and -outliers are required")
	}

	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	opts := scorpion.CSVOptions{}
	if *discrete != "" {
		opts.Kinds = map[string]scorpion.Kind{}
		for _, col := range splitList(*discrete) {
			opts.Kinds[col] = scorpion.Discrete
		}
	}
	tbl, err := scorpion.ReadCSV(f, opts)
	if err != nil {
		return err
	}
	if *appendCSV != "" {
		// Local streaming ingestion: the batch lands as an Appender
		// snapshot sharing the loaded table's storage, exactly the shape
		// the server's append path publishes.
		af, err := os.Open(*appendCSV)
		if err != nil {
			return err
		}
		rows, err := scorpion.ParseCSVRows(af, tbl.Schema(), scorpion.CSVOptions{})
		af.Close()
		if err != nil {
			return err
		}
		tbl, err = scorpion.AppenderFor(tbl).Append(rows)
		if err != nil {
			return err
		}
		fmt.Printf("appended %d rows from %s (table now %d rows)\n\n", len(rows), *appendCSV, tbl.NumRows())
	}

	req := &scorpion.Request{
		Table:            tbl,
		SQL:              *sqlText,
		Outliers:         splitList(*outliers),
		HoldOuts:         splitList(*holdouts),
		AllOthersHoldOut: *allOthers,
		TopK:             *topK,
		Attributes:       splitList(*attrs),
		Workers:          *workers,
		Shards:           *shards,
		Epsilon:          *epsilon,
		Confidence:       *confid,
	}
	// Setters, not field writes: a flag value is always explicit, so
	// -lambda 0 / -c 0 must reach the scorer as real zeros instead of
	// being mistaken for "unset" and replaced by the defaults.
	req.SetLambda(*lambda)
	req.SetC(*cKnob)
	switch strings.ToLower(*direction) {
	case "high":
		req.Direction = scorpion.TooHigh
	case "low":
		req.Direction = scorpion.TooLow
	default:
		return fmt.Errorf("bad -direction %q (want high or low)", *direction)
	}
	switch strings.ToLower(*algo) {
	case "auto":
		req.Algorithm = scorpion.Auto
	case "naive":
		req.Algorithm = scorpion.Naive
	case "dt":
		req.Algorithm = scorpion.DT
	case "mc":
		req.Algorithm = scorpion.MC
	default:
		return fmt.Errorf("bad -algo %q", *algo)
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = obs.ContextWithLogger(ctx, obs.NewLogger(os.Stderr, *logLevel, *logFormat))
	var rootSpan *obs.Span
	if *traceOn {
		rootSpan = obs.NewSpan("explain")
		ctx = obs.ContextWithSpan(ctx, rootSpan)
	}
	res, err := scorpion.ExplainContext(ctx, req)
	if rootSpan != nil {
		rootSpan.End()
	}
	interrupted := false
	if err != nil {
		// A cancelled or expired search still carries the best-so-far
		// explanations; print them with a note instead of failing.
		if res == nil || !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			return err
		}
		interrupted = true
	}

	if *showQuery {
		fmt.Printf("query: %s\n\n", *sqlText)
		flagged := map[string]string{}
		for _, k := range req.Outliers {
			flagged[k] = "outlier"
		}
		for _, k := range req.HoldOuts {
			flagged[k] = "holdout"
		}
		points := make([]plot.Point, 0, len(res.QueryResult.Rows))
		for _, row := range res.QueryResult.Rows {
			mark := flagged[row.Key]
			if mark == "" && *allOthers {
				mark = "holdout"
			}
			points = append(points, plot.Point{Label: row.Key, Value: row.Value, Mark: mark})
		}
		plot.Render(os.Stdout, points, plot.Options{MaxRows: 40})
		fmt.Println()
	}

	fmt.Printf("algorithm: %s   scorer calls: %d   elapsed: %s\n\n",
		res.Stats.Algorithm, res.Stats.ScorerCalls, res.Stats.Duration.Round(time.Millisecond))
	if res.Stats.Pruned > 0 || res.Stats.Escalated > 0 {
		fmt.Printf("anytime: pruned %d candidates on interval bounds, escalated %d to exact scoring\n\n",
			res.Stats.Pruned, res.Stats.Escalated)
	}
	if interrupted {
		fmt.Printf("search interrupted (%s); showing best results so far\n\n", res.Stats.InterruptReason)
	}
	if rootSpan != nil {
		fmt.Println("phase trace:")
		rootSpan.WriteTree(os.Stdout)
		fmt.Println()
	}
	if len(res.Explanations) == 0 {
		fmt.Println("no explanations found")
		return nil
	}
	for i, e := range res.Explanations {
		marker := ""
		if e.InfluencesHoldOut {
			marker = "  [perturbs hold-outs]"
		}
		fmt.Printf("%2d. influence %10.4f  matches %6d tuples  WHERE %s%s\n",
			i+1, e.Influence, e.MatchedOutlierTuples, e.Where, marker)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
