package main

// CLI tests for the streaming flags: -append (local and remote) and
// -follow.

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeBatchCSV writes an append batch matching writeCSV's schema.
func writeBatchCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "batch.csv")
	content := "grp,src,v\ng2,bad,100\ng2,ok1,10\ng1,ok2,10\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunLocalAppend(t *testing.T) {
	csv := writeCSV(t)
	err := run(context.Background(), []string{
		"-csv", csv,
		"-append", writeBatchCSV(t),
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-c", "1",
	})
	if err != nil {
		t.Fatalf("run with -append: %v", err)
	}
}

func TestRunLocalAppendBadBatch(t *testing.T) {
	csv := writeCSV(t)
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("grp,unknown\nx,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{
		"-csv", csv,
		"-append", bad,
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
	})
	if err == nil {
		t.Fatal("schema-mismatched -append batch accepted")
	}
}

func TestRemoteAppend(t *testing.T) {
	url := startServer(t, writeCSV(t))
	err := run(context.Background(), []string{
		"-server", url,
		"-table", "default",
		"-append", writeBatchCSV(t),
		"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
		"-outliers", "g2",
		"-all-others",
		"-c", "1",
	})
	if err != nil {
		t.Fatalf("remote -append: %v", err)
	}
}

func TestRemoteFollowStopsOnCancel(t *testing.T) {
	url := startServer(t, writeCSV(t))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-server", url,
			"-follow",
			"-poll", "100ms",
			"-sql", "SELECT avg(v), grp FROM t GROUP BY grp",
			"-outliers", "g2",
			"-all-others",
			"-c", "1",
		})
	}()
	time.Sleep(400 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("-follow: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("-follow did not stop on cancel")
	}
}

func TestStreamFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-follow", "-csv", "x.csv", "-sql", "q", "-outliers", "o"},                 // -follow needs -server
		{"-server", "http://x", "-follow", "-async", "-sql", "q", "-outliers", "o"}, // -follow vs -async
		{"-server", "http://x", "-append", "b.csv", "-sql", "q", "-outliers", "o"},  // remote -append needs -table
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestFollowRejectsNoCache(t *testing.T) {
	err := run(context.Background(), []string{
		"-server", "http://x", "-follow", "-no-cache",
		"-sql", "q", "-outliers", "o",
	})
	if err == nil {
		t.Fatal("-follow -no-cache accepted")
	}
}
