package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table12", "fig9", "fig16", "intel1", "expense"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("list output missing %q", name)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "table12"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "Table 2", "table12 completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "fig99"}, &buf); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("expected flag error")
	}
}
