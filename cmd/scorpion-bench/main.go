// Command scorpion-bench regenerates every table and figure of the paper's
// evaluation section (§8) and prints the series as aligned text tables.
//
// Usage:
//
//	scorpion-bench                 # quick scale (seconds)
//	scorpion-bench -full           # paper-scale parameters (minutes)
//	scorpion-bench -only fig9,intel1
//	scorpion-bench -list
//
// Experiments: table12, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
// fig16, intel1, intel2, expense.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/scorpiondb/scorpion/internal/experiments"
)

type experiment struct {
	name string
	desc string
	run  func(cfg config, w io.Writer) error
}

type config struct {
	scale   experiments.Scale
	intel   experiments.IntelScale
	expense experiments.ExpenseScale
}

var all = []experiment{
	{"table12", "Tables 1-2: the running example end to end", func(c config, w io.Writer) error {
		_, err := experiments.RunningExample(w)
		return err
	}},
	{"fig9", "Figure 9: NAIVE optimal predicates as c varies", func(c config, w io.Writer) error {
		_, err := experiments.Figure9(c.scale, w)
		return err
	}},
	{"fig10", "Figure 10: NAIVE accuracy vs c", func(c config, w io.Writer) error {
		_, err := experiments.Figure10(c.scale, w)
		return err
	}},
	{"fig11", "Figure 11: NAIVE best-so-far accuracy vs time", func(c config, w io.Writer) error {
		_, err := experiments.Figure11(c.scale, w)
		return err
	}},
	{"fig12", "Figure 12: accuracy by algorithm (2D)", func(c config, w io.Writer) error {
		_, err := experiments.Figure12(c.scale, w)
		return err
	}},
	{"fig13", "Figure 13: F-score vs dimensionality", func(c config, w io.Writer) error {
		_, err := experiments.Figure13(c.scale, w)
		return err
	}},
	{"fig14", "Figure 14: cost vs dimensionality", func(c config, w io.Writer) error {
		_, err := experiments.Figure14(c.scale, w)
		return err
	}},
	{"fig15", "Figure 15: cost vs dataset size", func(c config, w io.Writer) error {
		_, err := experiments.Figure15(c.scale, w)
		return err
	}},
	{"fig16", "Figure 16: caching across a c sweep", func(c config, w io.Writer) error {
		_, err := experiments.Figure16(c.scale, w)
		return err
	}},
	{"intel1", "§8.4 INTEL workload 1 (dying sensor)", func(c config, w io.Writer) error {
		_, err := experiments.IntelWorkload(1, c.intel, w)
		return err
	}},
	{"intel2", "§8.4 INTEL workload 2 (battery decay)", func(c config, w io.Writer) error {
		_, err := experiments.IntelWorkload(2, c.intel, w)
		return err
	}},
	{"expense", "§8.4 EXPENSE workload (media buys)", func(c config, w io.Writer) error {
		_, err := experiments.ExpenseWorkload(c.expense, w)
		return err
	}},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scorpion-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scorpion-bench", flag.ContinueOnError)
	var (
		full = fs.Bool("full", false, "paper-scale parameters (minutes, not seconds)")
		only = fs.String("only", "", "comma-separated experiment subset")
		list = fs.Bool("list", false, "list experiments and exit")
		seed = fs.Int64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range all {
			fmt.Fprintf(w, "%-8s %s\n", e.name, e.desc)
		}
		return nil
	}

	cfg := config{
		scale:   experiments.QuickScale(),
		intel:   experiments.QuickIntel(),
		expense: experiments.QuickExpense(),
	}
	if *full {
		cfg.scale = experiments.PaperScale()
		cfg.intel = experiments.PaperIntel()
		cfg.expense = experiments.PaperExpense()
	}
	cfg.scale.Seed = *seed

	selected := all
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		selected = nil
		for _, e := range all {
			if want[e.name] {
				selected = append(selected, e)
				delete(want, e.name)
			}
		}
		if len(want) > 0 {
			return fmt.Errorf("unknown experiments: %v (use -list)", keys(want))
		}
	}

	mode := "quick"
	if *full {
		mode = "paper-scale"
	}
	fmt.Fprintf(w, "Scorpion evaluation harness — %s mode, seed %d\n", mode, *seed)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		if err := e.run(cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintf(w, "\n[%s completed in %s]\n", e.name, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "\nAll experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
