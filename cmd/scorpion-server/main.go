// Command scorpion-server serves a dataset through Scorpion's JSON API —
// the backend half of the paper's end-to-end exploration tool (Figure 2).
//
// Usage:
//
//	scorpion-server -csv readings.csv -addr :8080 -workers 4
//
//	curl localhost:8080/schema
//	curl -X POST localhost:8080/query \
//	     -d '{"sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour"}'
//	curl -X POST localhost:8080/explain \
//	     -d '{"sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour",
//	          "outliers":["h012","h013"],"all_others_holdout":true}'
//
// Explanation searches run under the request's context: they stop when the
// -explain-timeout deadline passes (returning a 504 JSON error) or when the
// client disconnects. On SIGINT/SIGTERM the server shuts down gracefully —
// it stops accepting connections, cancels in-flight searches, and waits
// (up to -shutdown-timeout) for handlers to drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/server"
)

func main() {
	var (
		csvPath   = flag.String("csv", "", "dataset to serve (CSV with header)")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("explain-timeout", 2*time.Minute, "per-request explanation deadline")
		workers   = flag.Int("workers", 0, "default search worker pool (0 = serial, -1 = GOMAXPROCS)")
		drainTime = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()
	if *csvPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := scorpion.ReadCSV(f, scorpion.CSVOptions{})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(table)
	srv.ExplainTimeout = *timeout
	srv.Workers = *workers

	// Request contexts derive from the signal context, so a shutdown also
	// cancels every in-flight explanation search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     srv,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		fmt.Println("\nshutting down...")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	fmt.Printf("serving %d rows × %d columns on %s\n",
		table.NumRows(), table.Schema().NumColumns(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the drain
	// to finish so in-flight handlers aren't killed mid-response.
	<-drained
}
