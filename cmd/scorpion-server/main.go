// Command scorpion-server serves a dataset through Scorpion's JSON API —
// the backend half of the paper's end-to-end exploration tool (Figure 2).
//
// Usage:
//
//	scorpion-server -csv readings.csv -addr :8080
//
//	curl localhost:8080/schema
//	curl -X POST localhost:8080/query \
//	     -d '{"sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour"}'
//	curl -X POST localhost:8080/explain \
//	     -d '{"sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour",
//	          "outliers":["h012","h013"],"all_others_holdout":true}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/server"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "dataset to serve (CSV with header)")
		addr    = flag.String("addr", ":8080", "listen address")
		timeout = flag.Duration("explain-timeout", 2*time.Minute, "per-request explanation deadline")
	)
	flag.Parse()
	if *csvPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		log.Fatal(err)
	}
	table, err := scorpion.ReadCSV(f, scorpion.CSVOptions{})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(table)
	srv.ExplainTimeout = *timeout
	fmt.Printf("serving %d rows × %d columns on %s\n",
		table.NumRows(), table.Schema().NumColumns(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
