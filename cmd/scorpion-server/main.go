// Command scorpion-server serves datasets through Scorpion's JSON API —
// the backend half of the paper's end-to-end exploration tool (Figure 2),
// grown into a multi-table serving process: a catalog of named tables and
// an async explain job service scheduled against one global worker budget.
//
// Usage:
//
//	scorpion-server -csv readings.csv -csv expenses=q3.csv \
//	    -data-dir ./datasets -addr :8080 -max-workers 8
//
//	curl localhost:8080/tables
//	curl 'localhost:8080/schema?table=readings'
//	curl -X POST localhost:8080/query \
//	     -d '{"table":"readings","sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour"}'
//	curl -X POST localhost:8080/explain \
//	     -d '{"table":"readings","sql":"SELECT stddev(temp), hour FROM readings GROUP BY hour",
//	          "outliers":["h012","h013"],"all_others_holdout":true}'
//
// Long searches can run as jobs instead of holding the connection:
//
//	curl -X POST localhost:8080/jobs -d '{...same body...}'   → {"job_id":...}
//	curl localhost:8080/jobs/job-1                            → status + best-so-far
//	curl -X DELETE localhost:8080/jobs/job-1                  → cancel
//
// Every explanation — sync or async — is admitted FIFO against the
// -max-workers budget; at most -queue-depth jobs wait (429 beyond that).
// Finished results are cached (bounded by -cache-entries): a repeated
// identical request answers instantly with "cached": true, concurrent
// identical requests run ONE search, and a repeat that changes only "c"
// reuses the cached partitioning (§8.3.3). GET /cache shows hit/miss
// counters; DELETE /cache empties the store.
// The -explain-timeout deadline bounds each search once it starts. On
// SIGINT/SIGTERM the server shuts down gracefully — it stops accepting
// connections, cancels queued and running jobs, and waits (up to
// -shutdown-timeout) for handlers to drain.
//
// Sharded searches can span processes: start workers with -worker (same
// tables loaded), point a coordinator at them with
// -peers http://w1:8081,http://w2:8081, and each shard of a sharded
// explain is searched on the fleet — with per-shard local fallback when a
// worker is down — before the coordinator combines candidates exactly as
// a single process would. See README "Remote shard workers".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/scorpiondb/scorpion/internal/cache"
	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/jobs"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/server"
)

// csvFlags collects repeated -csv values of the form "name=path" or "path"
// (name derived from the file's base name).
type csvFlags []string

func (c *csvFlags) String() string { return strings.Join(*c, ", ") }
func (c *csvFlags) Set(v string) error {
	*c = append(*c, v)
	return nil
}

func main() {
	var csvs csvFlags
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataDir    = flag.String("data-dir", "", "load every *.csv in this directory as a table")
		timeout    = flag.Duration("explain-timeout", 2*time.Minute, "per-search explanation deadline (runs, not queue wait)")
		workers    = flag.Int("workers", 0, "default per-search worker grant (0 = serial, -1 = GOMAXPROCS)")
		maxWorkers = flag.Int("max-workers", 0, "global worker budget shared by all concurrent searches (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 64, "max waiting explain jobs before 429")
		maxUpload  = flag.Int64("max-upload", 0, "max POST /tables body bytes (0 = 256 MiB)")
		drainTime  = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		cacheSize  = flag.Int("cache-entries", 0, fmt.Sprintf("result-cache LRU bound (0 = default %d, negative disables caching, coalescing and session reuse)", cache.DefaultCapacity))
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		pprofOn    = flag.Bool("pprof", false, "expose the runtime profiler under /debug/pprof/")
		workerMode = flag.Bool("worker", false, "serve POST /shards/search: execute remote shard searches for a coordinator (requires the same tables loaded)")
		peers      = flag.String("peers", "", "comma-separated worker base URLs; sharded explains dispatch per-shard searches to this fleet, falling back local per shard")
		peerTime   = flag.Duration("peer-timeout", 0, "per-shard dispatch attempt deadline (0 = 2m)")
	)
	flag.Var(&csvs, "csv", "dataset to serve, as name=path or path (repeatable)")
	flag.Parse()
	if len(csvs) == 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "need at least one -csv name=path or a -data-dir")
		flag.Usage()
		os.Exit(2)
	}

	cat := catalog.New()
	for _, spec := range csvs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = "", spec
		}
		e, err := cat.LoadCSVFile(name, path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded table %q: %d rows × %d columns (%s)", e.Name, e.Rows(), e.Columns(), path)
	}
	if *dataDir != "" {
		entries, err := cat.LoadDir(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			log.Printf("loaded table %q: %d rows × %d columns (%s)", e.Name, e.Rows(), e.Columns(), e.Source)
		}
	}
	if cat.Len() == 0 {
		log.Fatalf("no tables loaded (is %s empty?)", *dataDir)
	}

	sched := jobs.New(jobs.Options{Budget: *maxWorkers, QueueCap: *queueDepth})
	srv := server.NewCatalog(cat, sched)
	srv.ExplainTimeout = *timeout
	srv.Workers = *workers
	srv.MaxUploadBytes = *maxUpload
	srv.ConfigureCache(*cacheSize)
	srv.SetLogger(obs.NewLogger(os.Stderr, *logLevel, *logFormat))
	if *pprofOn {
		srv.EnablePprof()
		log.Printf("pprof enabled at /debug/pprof/")
	}
	if *workerMode {
		srv.EnableWorker()
		log.Printf("worker mode: serving POST /shards/search (budget %d)", sched.Budget())
	}
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		if err := srv.SetPeers(list, *peerTime, nil); err != nil {
			log.Fatal(err)
		}
		log.Printf("dispatching shard searches to %d peer(s)", len(list))
	}

	// Request contexts derive from the signal context, so a shutdown also
	// cancels every in-flight handler; closing the server cancels queued
	// and running jobs through the scheduler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{
		Addr:        *addr,
		Handler:     srv,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		fmt.Println("\nshutting down...")
		srv.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	fmt.Printf("serving %d table(s) on %s (worker budget %d, queue depth %d)\n",
		cat.Len(), *addr, sched.Budget(), *queueDepth)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the drain
	// to finish so in-flight handlers aren't killed mid-response.
	<-drained
}
