// Command synthgen emits Scorpion's benchmark datasets as CSV so they can
// be inspected, loaded elsewhere, or fed back through cmd/scorpion.
//
// Usage:
//
//	synthgen -kind synth  -dims 2 -per-group 2000 -mu 80 -seed 1 -out synth.csv
//	synthgen -kind intel  -hours 48 -sensors 61 -workload 1 -out intel.csv
//	synthgen -kind expense -days 40 -rows-per-day 120 -out expense.csv
//
// For synth/intel/expense the tool also prints the flagged outlier and
// hold-out group keys, ready to paste into cmd/scorpion.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/datagen"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	var (
		kind = fs.String("kind", "synth", "dataset kind: synth | intel | expense")
		out  = fs.String("out", "", "output CSV path (default stdout)")
		seed = fs.Int64("seed", 1, "generator seed")
		// synth
		dims     = fs.Int("dims", 2, "synth: dimension attributes")
		perGroup = fs.Int("per-group", 2000, "synth: tuples per group")
		muFlag   = fs.Float64("mu", 80, "synth: outlier mean µ (80=Easy, 30=Hard)")
		// intel
		hours    = fs.Int("hours", 48, "intel: trace hours")
		sensors  = fs.Int("sensors", 61, "intel: mote count")
		epochs   = fs.Int("epochs", 4, "intel: readings per sensor-hour")
		workload = fs.Int("workload", 1, "intel: failure script (1 or 2)")
		// expense
		days       = fs.Int("days", 40, "expense: days")
		rowsPerDay = fs.Int("rows-per-day", 120, "expense: disbursements per day")
		recipients = fs.Int("recipients", 400, "expense: recipient cardinality")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		table    *scorpion.Table
		outliers []string
		holdouts []string
		sql      string
	)
	switch strings.ToLower(*kind) {
	case "synth":
		ds := datagen.Synth(datagen.SynthConfig{
			Dims: *dims, TuplesPerGroup: *perGroup, Mu: *muFlag, Seed: *seed,
		})
		table, outliers, holdouts = ds.Table, ds.OutlierKeys, ds.HoldOutKeys
		sql = "SELECT sum(v), g FROM synth GROUP BY g"
	case "intel":
		ds := datagen.Intel(datagen.IntelConfig{
			Hours: *hours, Sensors: *sensors, EpochsPerHour: *epochs,
			Workload: datagen.IntelWorkload(*workload), Seed: *seed,
		})
		table, outliers, holdouts = ds.Table, ds.OutlierHours, ds.HoldOutHours
		sql = "SELECT stddev(temp), hour FROM readings GROUP BY hour"
	case "expense":
		ds := datagen.Expense(datagen.ExpenseConfig{
			Days: *days, RowsPerDay: *rowsPerDay, Recipients: *recipients, Seed: *seed,
		})
		table, outliers, holdouts = ds.Table, ds.OutlierDays, ds.HoldOutDays
		sql = "SELECT sum(disb_amt), date FROM expenses WHERE candidate = 'Obama' GROUP BY date"
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := scorpion.WriteCSV(w, table); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %d rows × %d columns to %s\n",
			table.NumRows(), table.Schema().NumColumns(), *out)
		fmt.Printf("suggested query:   %s\n", sql)
		fmt.Printf("outlier groups:    %s\n", strings.Join(outliers, ","))
		fmt.Printf("hold-out groups:   %s\n", strings.Join(holdouts, ","))
	}
	return nil
}
