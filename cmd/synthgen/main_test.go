package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind string
		args []string
	}{
		{"synth", []string{"-dims", "2", "-per-group", "50"}},
		{"intel", []string{"-hours", "6", "-sensors", "5", "-epochs", "1"}},
		{"expense", []string{"-days", "5", "-rows-per-day", "10", "-recipients", "20"}},
	}
	for _, tc := range cases {
		out := filepath.Join(dir, tc.kind+".csv")
		args := append([]string{"-kind", tc.kind, "-out", out}, tc.args...)
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s: csv has %d lines", tc.kind, len(lines))
		}
		if !strings.Contains(lines[0], ",") {
			t.Fatalf("%s: header %q has no columns", tc.kind, lines[0])
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if err := run([]string{"-kind", "galaxy"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	for _, out := range []string{a, b} {
		if err := run([]string{"-kind", "synth", "-per-group", "30", "-seed", "9", "-out", out}); err != nil {
			t.Fatal(err)
		}
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different CSVs")
	}
}
