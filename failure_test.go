package scorpion

// Failure-injection tests: malformed inputs, degenerate data, NaN/Inf
// values, and empty corners of the API must fail cleanly (errors or
// well-defined zero-influence behavior), never panic.

import (
	"math"
	"strings"
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/catalog"
)

func TestExplainMalformedCSVKinds(t *testing.T) {
	// Discrete-valued column forced continuous must fail at load time —
	// covered in relation — but type-inferred tables whose aggregate
	// column ends up discrete must fail at bind time.
	csv := "g,v\na,x\nb,y\n"
	tbl, err := ReadCSV(strings.NewReader(csv), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Explain(&Request{
		Table:     tbl,
		SQL:       "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:  []string{"a"},
		Direction: TooHigh,
	})
	if err == nil {
		t.Fatal("expected error for discrete aggregate column")
	}
}

func TestExplainNaNValues(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "x", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	for i := 0; i < 40; i++ {
		v := 10.0
		if i%20 == 5 {
			v = math.NaN()
		}
		if i >= 20 && i%3 == 0 {
			v = 100
		}
		b.MustAppend(Row{
			S([]string{"hold", "out"}[i/20]),
			F(float64(i % 20)),
			F(v),
		})
	}
	res, err := Explain(&Request{
		Table:            b.Build(),
		SQL:              "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:         []string{"out"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
		C:                0.5,
	})
	if err != nil {
		t.Fatalf("NaN data: %v", err)
	}
	// Influences must never be NaN even with NaN inputs in play.
	for _, e := range res.Explanations {
		if math.IsNaN(e.Influence) || math.IsInf(e.Influence, 0) {
			t.Fatalf("explanation %q has non-finite influence %v", e.Where, e.Influence)
		}
	}
}

func TestExplainSingleTupleGroups(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "a", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	b.MustAppend(Row{S("g1"), F(1), F(10)})
	b.MustAppend(Row{S("g2"), F(2), F(99)})
	res, err := Explain(&Request{
		Table:     b.Build(),
		SQL:       "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:  []string{"g2"},
		HoldOuts:  []string{"g1"},
		Direction: TooHigh,
	})
	if err != nil {
		t.Fatalf("single-tuple groups: %v", err)
	}
	// Deleting the only tuple would erase the result: AVG treats it as
	// non-influential, so everything scores zero — but nothing panics.
	for _, e := range res.Explanations {
		if math.IsNaN(e.Influence) {
			t.Fatal("NaN influence")
		}
	}
}

func TestExplainConstantAttribute(t *testing.T) {
	// An explanation attribute with a single constant value offers no
	// splits; the search must still return (possibly trivial) results.
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "constant", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	for i := 0; i < 30; i++ {
		v := 10.0
		if i >= 15 {
			v = 50
		}
		b.MustAppend(Row{S([]string{"a", "b"}[i/15]), F(7), F(v)})
	}
	_, err := Explain(&Request{
		Table:            b.Build(),
		SQL:              "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:         []string{"b"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	})
	if err != nil {
		t.Fatalf("constant attribute: %v", err)
	}
}

func TestExplainNoRestAttributes(t *testing.T) {
	// Every column grouped or aggregated: nothing to explain with.
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	b.MustAppend(Row{S("a"), F(1)})
	b.MustAppend(Row{S("b"), F(2)})
	_, err := Explain(&Request{
		Table:     b.Build(),
		SQL:       "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:  []string{"b"},
		Direction: TooHigh,
	})
	if err == nil || !strings.Contains(err.Error(), "no attributes") {
		t.Fatalf("expected no-attributes error, got %v", err)
	}
}

func TestExplainEmptyTable(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "a", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	tbl := NewBuilder(schema).Build()
	_, err := Explain(&Request{
		Table:     tbl,
		SQL:       "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:  []string{"a"},
		Direction: TooHigh,
	})
	if err == nil {
		t.Fatal("expected error for empty table (no groups)")
	}
}

func TestExplainInfValues(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "a", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	for i := 0; i < 30; i++ {
		v := 10.0
		if i == 20 {
			v = math.Inf(1)
		}
		if i > 20 {
			v = 90
		}
		b.MustAppend(Row{S([]string{"h", "o"}[i/15]), F(float64(i % 15)), F(v)})
	}
	res, err := Explain(&Request{
		Table:            b.Build(),
		SQL:              "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:         []string{"o"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	})
	if err != nil {
		t.Fatalf("Inf data: %v", err)
	}
	for _, e := range res.Explanations {
		if math.IsNaN(e.Influence) {
			t.Fatalf("NaN influence with Inf input")
		}
	}
}

// --- append-path failure injection --------------------------------------
// The streaming surface must fail as cleanly as the static one: malformed
// batches, NaN/Inf values arriving mid-stream, appends to unknown tables,
// and appends racing unloads produce errors (or finite results), never
// panics. The HTTP layer's 4xx mapping for the same cases lives in
// internal/server/append_test.go.

func TestAppendNaNInfRowsExplainStaysFinite(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "a", Kind: Continuous},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	for i := 0; i < 40; i++ {
		v := 10.0
		if i >= 20 && i%3 == 0 {
			v = 100
		}
		b.MustAppend(Row{S([]string{"hold", "out"}[i/20]), F(float64(i % 10)), F(v)})
	}
	base := b.Build()
	// The appended batch smuggles NaN and ±Inf aggregate values in.
	app := AppenderFor(base)
	tbl, err := app.Append([]Row{
		{S("out"), F(3), F(math.NaN())},
		{S("out"), F(4), F(math.Inf(1))},
		{S("hold"), F(5), F(math.Inf(-1))},
	})
	if err != nil {
		t.Fatalf("NaN/Inf rows are legal values; append failed: %v", err)
	}
	res, err := Explain(&Request{
		Table:            tbl,
		SQL:              "SELECT avg(v), g FROM t GROUP BY g",
		Outliers:         []string{"out"},
		AllOthersHoldOut: true,
		Direction:        TooHigh,
	})
	if err != nil {
		t.Fatalf("explain after NaN/Inf append: %v", err)
	}
	for _, e := range res.Explanations {
		if math.IsNaN(e.Influence) || math.IsInf(e.Influence, 0) {
			t.Fatalf("explanation %q has non-finite influence %v", e.Where, e.Influence)
		}
	}
}

func TestAppendSchemaMismatchedBatch(t *testing.T) {
	schema, _ := NewSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "v", Kind: Continuous},
	)
	b := NewBuilder(schema)
	b.MustAppend(Row{S("a"), F(1)})
	app := AppenderFor(b.Build())
	// Wrong arity, wrong kind, and a CSV batch naming an unknown column:
	// all clean errors, nothing partially applied.
	if _, err := app.Append([]Row{{S("a")}}); err == nil {
		t.Error("short row accepted")
	}
	if _, err := app.Append([]Row{{F(1), F(2)}}); err == nil {
		t.Error("kind-swapped row accepted")
	}
	if _, err := ParseCSVRows(strings.NewReader("g,w\na,1\n"), schema, CSVOptions{}); err == nil {
		t.Error("unknown-column batch accepted")
	}
	if got := app.NumRows(); got != 1 {
		t.Fatalf("failed batches mutated the table: %d rows", got)
	}
}

func TestAppendUnknownTable(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Append("ghost", []Row{{S("a")}}); err == nil {
		t.Fatal("append to unknown table succeeded")
	}
	if _, _, err := cat.AppendCSV("ghost", strings.NewReader("g\na\n")); err == nil {
		t.Fatal("csv append to unknown table succeeded")
	}
}

func TestAppendRacingUnload(t *testing.T) {
	// Appends racing Remove/re-Add on the same catalog name must never
	// panic; each append either lands on the live lineage or errors.
	cat := catalog.New()
	load := func() {
		schema, _ := NewSchema(
			Column{Name: "g", Kind: Discrete},
			Column{Name: "v", Kind: Continuous},
		)
		b := NewBuilder(schema)
		b.MustAppend(Row{S("a"), F(1)})
		if _, err := cat.Add("t", b.Build(), "test"); err != nil {
			t.Error(err)
		}
	}
	load()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 60; j++ {
				_, _ = cat.Append("t", []Row{{S("b"), F(2)}})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 30; j++ {
			cat.Remove("t")
			load()
		}
	}()
	wg.Wait()
	if e, ok := cat.Get("t"); ok {
		if _, err := cat.Append("t", []Row{{S("c"), F(3)}}); err != nil {
			t.Fatalf("surviving entry %q not appendable: %v", e.Name, err)
		}
	}
}
