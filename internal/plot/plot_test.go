package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, []Point{
		{Label: "11AM", Value: 34.7, Mark: "holdout"},
		{Label: "12PM", Value: 56.7, Mark: "outlier"},
		{Label: "1PM", Value: 50.0, Mark: "outlier"},
	}, Options{Width: 20})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "<- outlier") {
		t.Errorf("outlier row missing marker: %q", lines[1])
	}
	if !strings.Contains(lines[1], "█") || !strings.Contains(lines[0], "▒") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	// Larger value gets a longer bar.
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Errorf("bar lengths not ordered:\n%s", out)
	}
}

func TestRenderNegativeValues(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, []Point{
		{Label: "a", Value: -10},
		{Label: "b", Value: 20},
	}, Options{Width: 30})
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
	// Both rows render without panicking; the zero axis splits them.
	if lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n"); len(lines) != 2 {
		t.Fatalf("lines:\n%s", buf.String())
	}
}

func TestRenderNaN(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, []Point{
		{Label: "ok", Value: 5},
		{Label: "bad", Value: math.NaN()},
	}, Options{})
	if !strings.Contains(buf.String(), "n/a") {
		t.Errorf("NaN row not marked:\n%s", buf.String())
	}
}

func TestRenderElision(t *testing.T) {
	var points []Point
	for i := 0; i < 50; i++ {
		mark := ""
		if i == 25 {
			mark = "outlier"
		}
		points = append(points, Point{Label: "g", Value: float64(i), Mark: mark})
	}
	var buf bytes.Buffer
	Render(&buf, points, Options{MaxRows: 10})
	out := buf.String()
	if !strings.Contains(out, "...") {
		t.Errorf("no ellipsis in elided output:\n%s", out)
	}
	if !strings.Contains(out, "<- outlier") {
		t.Errorf("flagged row elided:\n%s", out)
	}
	if n := strings.Count(out, "\n"); n > 14 {
		t.Errorf("too many rows after elision: %d", n)
	}
}

func TestRenderDegenerate(t *testing.T) {
	Render(nil, []Point{{Label: "x", Value: 1}}, Options{})
	var buf bytes.Buffer
	Render(&buf, nil, Options{})
	if buf.Len() != 0 {
		t.Error("empty input produced output")
	}
	// Constant values (span 0) must not divide by zero.
	Render(&buf, []Point{{Label: "a", Value: 3}, {Label: "b", Value: 3}}, Options{})
	if buf.Len() == 0 {
		t.Error("constant values produced no output")
	}
}
