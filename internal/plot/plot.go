// Package plot renders aggregate query results as ASCII charts for the CLI
// — a terminal stand-in for the visualization front-end of the paper's
// Figure 2 tool, with outlier and hold-out results marked so the user can
// see what they flagged.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Point is one aggregate result to plot.
type Point struct {
	Label string
	Value float64
	// Mark distinguishes flagged points: "" (plain), "outlier", "holdout".
	Mark string
}

// Options controls chart geometry.
type Options struct {
	// Width is the bar area width in characters (default 48).
	Width int
	// MaxRows caps the number of rendered rows; the rest are elided from
	// the middle (default unlimited).
	MaxRows int
}

// glyph returns the bar glyph for a mark.
func glyph(mark string) string {
	switch mark {
	case "outlier":
		return "█"
	case "holdout":
		return "▒"
	default:
		return "░"
	}
}

// suffix returns the row annotation for a mark.
func suffix(mark string) string {
	switch mark {
	case "outlier":
		return "  <- outlier"
	case "holdout":
		return ""
	default:
		return ""
	}
}

// Render writes a horizontal bar chart. Values may be negative; bars grow
// from a shared zero axis. NaN/Inf values render as "n/a".
func Render(w io.Writer, points []Point, opts Options) {
	if w == nil || len(points) == 0 {
		return
	}
	if opts.Width <= 0 {
		opts.Width = 48
	}

	lo, hi := 0.0, 0.0
	labelWidth := 0
	for _, p := range points {
		if len(p.Label) > labelWidth {
			labelWidth = len(p.Label)
		}
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			continue
		}
		if p.Value < lo {
			lo = p.Value
		}
		if p.Value > hi {
			hi = p.Value
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	scale := float64(opts.Width) / span
	zero := int(math.Round((0 - lo) * scale))

	rows := selectRows(points, opts.MaxRows)
	for _, idx := range rows {
		if idx < 0 {
			fmt.Fprintf(w, "%*s  ...\n", labelWidth, "")
			continue
		}
		p := points[idx]
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			fmt.Fprintf(w, "%*s  n/a\n", labelWidth, p.Label)
			continue
		}
		pos := int(math.Round((p.Value - lo) * scale))
		var bar string
		if pos >= zero {
			bar = strings.Repeat(" ", zero) + strings.Repeat(glyph(p.Mark), maxInt(pos-zero, 1))
		} else {
			bar = strings.Repeat(" ", pos) + strings.Repeat(glyph(p.Mark), zero-pos)
		}
		fmt.Fprintf(w, "%*s  %-*s %12.4g%s\n",
			labelWidth, p.Label, opts.Width+1, bar, p.Value, suffix(p.Mark))
	}
}

// selectRows returns the point indexes to draw, eliding the middle when the
// list exceeds maxRows. A -1 index marks the ellipsis row.
func selectRows(points []Point, maxRows int) []int {
	n := len(points)
	if maxRows <= 0 || n <= maxRows {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Always keep flagged rows; fill the remainder from the ends.
	keep := make(map[int]bool)
	for i, p := range points {
		if p.Mark == "outlier" {
			keep[i] = true
		}
	}
	budget := maxRows - len(keep)
	head := budget / 2
	tail := budget - head
	for i := 0; i < head && i < n; i++ {
		keep[i] = true
	}
	for i := n - tail; i < n; i++ {
		if i >= 0 {
			keep[i] = true
		}
	}
	var out []int
	prev := -1
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		if prev >= 0 && i != prev+1 {
			out = append(out, -1)
		}
		out = append(out, i)
		prev = i
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
