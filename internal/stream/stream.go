// Package stream maintains the incremental state that lets explanations
// track an append-only table instead of restarting from scratch — the
// streaming-ingestion counterpart of §5.1's decomposable aggregates.
//
// A Tracker follows one (table lineage, query) pair. It keeps, per output
// group, the provenance RowSet and the aggregate's Removable state; when
// the table grows by an append batch, Advance runs the query over ONLY the
// tail window (the rows the batch added, modeled as a relation.View),
// embeds the tail's group slices into the new global id space, and folds
// their states into the existing ones with Removable.Update. All QUERY
// work is proportional to the batch, never to the table — including the
// universe growth: group provenance over a grouped scan is run-encoded
// (see relation.RowSet), so widening a group's set to the new row count is
// O(#runs) offset arithmetic, not a |D|/64-word bitmap copy; only a group
// that degraded to the dense encoding still pays the word copy. The
// refreshed states seed influence.NewScorerSeeded, so a warm re-explain
// skips the cold path's full scan, regroup, and per-group state rebuild.
//
// The Tracker is deliberately label-agnostic: it maintains ALL groups, and
// the caller (which knows the request's outlier/hold-out labels and λ)
// decides from the Advance delta whether its cached candidates can be
// re-scored warm or the labels changed shape (e.g. a brand-new group under
// all-others-hold-out) and a cold run is due.
package stream

import (
	"fmt"
	"sort"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// GroupState is one output group's incrementally maintained state.
type GroupState struct {
	// Key is the canonical group key.
	Key string
	// KeyValues are the group-by column values.
	KeyValues []relation.Value
	// Rows is the group's provenance over the CURRENT table (universe =
	// Tracker.Rows()). It is replaced — never mutated in place — on
	// Advance, so snapshots handed out earlier stay consistent.
	Rows *relation.RowSet
	// State is the aggregate's Removable state over Rows.
	State aggregate.State
}

// Value recovers the group's aggregate result from its state.
func (g *GroupState) Value(rem aggregate.Removable) float64 { return rem.Recover(g.State) }

// Delta reports what an append batch did to the query's output groups.
type Delta struct {
	// TailRows is the number of appended rows the batch contributed
	// (after the query's WHERE filter, rows that joined some group).
	TailRows int
	// Touched lists existing groups that gained rows, sorted by key.
	Touched []string
	// New lists groups that did not exist before the batch, sorted by key.
	New []string
}

// Tracker maintains per-group provenance and Removable states for one
// query over one append-only table lineage. It is not safe for concurrent
// use; callers (the Refresher, the server's stream sessions) serialize.
type Tracker struct {
	sql    string
	table  *relation.Table
	rows   int
	q      *query.AggregateQuery // bound against the current table
	rem    aggregate.Removable
	groups map[string]*GroupState
}

// NewTracker executes the query cold over the table and captures every
// group's provenance and state. The query's aggregate must be
// incrementally removable — black-box aggregates have no decomposable
// state to maintain, so streaming callers fall back to cold runs.
func NewTracker(tbl *relation.Table, sql string) (*Tracker, error) {
	q, err := query.FromSQL(tbl, sql)
	if err != nil {
		return nil, err
	}
	res, err := q.Run()
	if err != nil {
		return nil, err
	}
	return newTracker(tbl, sql, q, res)
}

// NewTrackerFromResult builds a tracker from an ALREADY-EXECUTED query
// result over tbl — the cold-run path, where the search just ran the very
// same query and re-scanning the table for grouping would double the
// O(|D|) work. Only the per-group state construction remains.
func NewTrackerFromResult(tbl *relation.Table, sql string, res *query.Result) (*Tracker, error) {
	if res == nil || res.Query == nil {
		return nil, fmt.Errorf("stream: nil query result")
	}
	if res.Query.Table.Data() != tbl {
		return nil, fmt.Errorf("stream: query result was executed against a different table")
	}
	return newTracker(tbl, sql, res.Query, res)
}

func newTracker(tbl *relation.Table, sql string, q *query.AggregateQuery, res *query.Result) (*Tracker, error) {
	rem, ok := q.Agg.(aggregate.Removable)
	if !ok {
		return nil, fmt.Errorf("stream: aggregate %q is not incrementally removable", q.Agg.Name())
	}
	tr := &Tracker{
		sql:    sql,
		table:  tbl,
		rows:   tbl.NumRows(),
		q:      q,
		rem:    rem,
		groups: make(map[string]*GroupState, len(res.Rows)),
	}
	for _, row := range res.Rows {
		tr.groups[row.Key] = &GroupState{
			Key:       row.Key,
			KeyValues: row.KeyValues,
			Rows:      row.Group,
			State:     rem.State(tr.values(tbl, row.Group)),
		}
	}
	return tr, nil
}

// values projects the aggregate attribute over a group, with the Task
// convention for count(*): every tuple contributes 1.
func (tr *Tracker) values(tbl *relation.Table, rows *relation.RowSet) []float64 {
	out := make([]float64, 0, rows.Count())
	if tr.q.AggCol < 0 {
		for i := 0; i < rows.Count(); i++ {
			out = append(out, 1)
		}
		return out
	}
	col := tbl.Floats(tr.q.AggCol)
	rows.ForEach(func(r int) { out = append(out, col[r]) })
	return out
}

// Rows reports the row count the tracker's state matches.
func (tr *Tracker) Rows() int { return tr.rows }

// Table returns the snapshot the tracker's state matches.
func (tr *Tracker) Table() *relation.Table { return tr.table }

// Removable returns the aggregate's removable interface.
func (tr *Tracker) Removable() aggregate.Removable { return tr.rem }

// AggCol returns the aggregate attribute's column index (-1 for count(*)).
func (tr *Tracker) AggCol() int { return tr.q.AggCol }

// Group returns the state of the keyed group.
func (tr *Tracker) Group(key string) (*GroupState, bool) {
	g, ok := tr.groups[key]
	return g, ok
}

// Keys returns every group key, sorted.
func (tr *Tracker) Keys() []string {
	out := make([]string, 0, len(tr.groups))
	for k := range tr.groups {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Advance folds an append batch into the tracker: succ must be a successor
// snapshot of the tracked table (same schema, at least as many rows, with
// the tracked rows as its prefix — the shape catalog.Append guarantees for
// entries sharing a Lineage). Only the tail window [Rows(), succ.NumRows())
// is scanned. It returns what changed; a no-growth successor yields an
// empty delta.
func (tr *Tracker) Advance(succ *relation.Table) (*Delta, error) {
	if succ == nil {
		return nil, fmt.Errorf("stream: nil successor table")
	}
	if !succ.Schema().Equal(tr.table.Schema()) {
		return nil, fmt.Errorf("stream: successor schema %q != tracked %q", succ.Schema(), tr.table.Schema())
	}
	n := succ.NumRows()
	if n < tr.rows {
		return nil, fmt.Errorf("stream: successor has %d rows, tracker at %d — not an append", n, tr.rows)
	}
	if n == tr.rows {
		tr.table = succ
		return &Delta{}, nil
	}
	tail := succ.Tail(tr.rows)
	// Re-binding against the tail view recompiles the WHERE filter and the
	// grouping over window-local ids; Run costs O(tail).
	tq, err := query.FromSQL(tail, tr.sql)
	if err != nil {
		return nil, err
	}
	tres, err := tq.Run()
	if err != nil {
		return nil, err
	}
	delta := &Delta{}
	// Grow every existing group's universe to the new row count. Embed
	// allocates fresh sets, so previously handed-out snapshots (scorer
	// tasks, query results) keep reading their own frozen state.
	for _, g := range tr.groups {
		g.Rows = g.Rows.Embed(0, n)
	}
	for _, row := range tres.Rows {
		local := row.Group
		delta.TailRows += local.Count()
		global := tail.GlobalRows(local)
		tailState := tr.rem.State(tr.valuesView(tail, local))
		if g, ok := tr.groups[row.Key]; ok {
			g.Rows.Or(global)
			g.State = tr.rem.Update(g.State, tailState)
			delta.Touched = append(delta.Touched, row.Key)
		} else {
			tr.groups[row.Key] = &GroupState{
				Key:       row.Key,
				KeyValues: row.KeyValues,
				Rows:      global,
				State:     tailState,
			}
			delta.New = append(delta.New, row.Key)
		}
	}
	sort.Strings(delta.Touched)
	sort.Strings(delta.New)
	tr.table = succ
	tr.rows = n
	q, err := query.FromSQL(succ, tr.sql)
	if err != nil {
		return nil, err
	}
	tr.q = q
	return delta, nil
}

// valuesView projects the aggregate attribute over window-local rows.
func (tr *Tracker) valuesView(v *relation.View, rows *relation.RowSet) []float64 {
	out := make([]float64, 0, rows.Count())
	if tr.q.AggCol < 0 {
		for i := 0; i < rows.Count(); i++ {
			out = append(out, 1)
		}
		return out
	}
	col := v.Floats(tr.q.AggCol)
	rows.ForEach(func(r int) { out = append(out, col[r]) })
	return out
}

// Result materializes the tracked groups as a query.Result over the
// current table — values recovered from the maintained states, provenance
// shared with the tracker's current sets. Equivalent to re-running the
// query, at O(groups) cost.
func (tr *Tracker) Result() *query.Result {
	rows := make([]query.ResultRow, 0, len(tr.groups))
	for _, g := range tr.groups {
		rows = append(rows, query.ResultRow{
			Key:       g.Key,
			KeyValues: g.KeyValues,
			Value:     tr.rem.Recover(g.State),
			Group:     g.Rows,
		})
	}
	return query.NewResult(tr.q, rows)
}

// States collects the Removable states for the given group keys, in order.
// A missing key yields an error — the caller's labels referenced a group
// the tracked query no longer produces.
func (tr *Tracker) States(keys []string) ([]aggregate.State, error) {
	out := make([]aggregate.State, len(keys))
	for i, k := range keys {
		g, ok := tr.groups[k]
		if !ok {
			return nil, fmt.Errorf("stream: no tracked group %q", k)
		}
		out[i] = g.State
	}
	return out, nil
}
