package stream

import (
	"math"
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func schema() *relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "a", Kind: relation.Continuous},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
}

func row(g string, a, v float64) relation.Row {
	return relation.Row{relation.S(g), relation.F(a), relation.F(v)}
}

func baseRows() []relation.Row {
	var rows []relation.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, row([]string{"x", "y", "z"}[i%3], float64(i%10), float64(10+i%7)))
	}
	return rows
}

const sql = "SELECT sum(v), g FROM t GROUP BY g"

func buildTable(t *testing.T, rows []relation.Row) *relation.Table {
	t.Helper()
	b := relation.NewBuilder(schema())
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTrackerAdvanceMatchesColdTracker(t *testing.T) {
	base := buildTable(t, baseRows())
	tr, err := NewTracker(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	app := relation.AppenderFor(base)
	batches := [][]relation.Row{
		{row("x", 1, 99), row("w", 2, 5)}, // touches x, creates w
		{row("y", 3, 7), row("y", 4, 8)},  // touches y twice
		{row("w", 5, 1), row("z", 6, 2), row("x", 7, 3)},
	}
	for i, batch := range batches {
		succ, err := app.Append(batch)
		if err != nil {
			t.Fatal(err)
		}
		delta, err := tr.Advance(succ)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if delta.TailRows != len(batch) {
			t.Fatalf("batch %d: tail rows %d, want %d", i, delta.TailRows, len(batch))
		}
	}
	final := app.Snapshot()

	// The incrementally advanced tracker must agree with a cold tracker
	// built on the final snapshot: same groups, same provenance, same
	// recovered values.
	cold, err := NewTracker(final, sql)
	if err != nil {
		t.Fatal(err)
	}
	warmKeys, coldKeys := tr.Keys(), cold.Keys()
	if len(warmKeys) != len(coldKeys) {
		t.Fatalf("keys %v != %v", warmKeys, coldKeys)
	}
	for i := range warmKeys {
		if warmKeys[i] != coldKeys[i] {
			t.Fatalf("keys %v != %v", warmKeys, coldKeys)
		}
		w, _ := tr.Group(warmKeys[i])
		c, _ := cold.Group(coldKeys[i])
		if !w.Rows.Equal(c.Rows) {
			t.Fatalf("group %q provenance %v != %v", warmKeys[i], w.Rows, c.Rows)
		}
		if !almostEqual(w.Value(tr.Removable()), c.Value(cold.Removable())) {
			t.Fatalf("group %q value %v != %v", warmKeys[i],
				w.Value(tr.Removable()), c.Value(cold.Removable()))
		}
	}
	// Result() round-trips through query.NewResult with canonical ordering.
	wres, cres := tr.Result(), cold.Result()
	if len(wres.Rows) != len(cres.Rows) {
		t.Fatalf("result rows %d != %d", len(wres.Rows), len(cres.Rows))
	}
	for i := range wres.Rows {
		if wres.Rows[i].Key != cres.Rows[i].Key || !almostEqual(wres.Rows[i].Value, cres.Rows[i].Value) {
			t.Fatalf("result row %d: %+v != %+v", i, wres.Rows[i], cres.Rows[i])
		}
	}
}

func TestTrackerDeltaReportsTouchedAndNew(t *testing.T) {
	base := buildTable(t, baseRows())
	tr, err := NewTracker(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	app := relation.AppenderFor(base)
	succ, err := app.Append([]relation.Row{row("x", 0, 1), row("new1", 0, 2), row("new1", 0, 3)})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := tr.Advance(succ)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Touched) != 1 || delta.Touched[0] != "x" {
		t.Fatalf("touched = %v", delta.Touched)
	}
	if len(delta.New) != 1 || delta.New[0] != "new1" {
		t.Fatalf("new = %v", delta.New)
	}
	g, ok := tr.Group("new1")
	if !ok || g.Rows.Count() != 2 || !almostEqual(g.Value(tr.Removable()), 5) {
		t.Fatalf("new group state: %+v", g)
	}
	// No-growth advance: empty delta.
	delta, err = tr.Advance(succ)
	if err != nil || len(delta.Touched)+len(delta.New) != 0 || delta.TailRows != 0 {
		t.Fatalf("no-growth delta = %+v err %v", delta, err)
	}
}

func TestTrackerRespectsWhereFilter(t *testing.T) {
	base := buildTable(t, baseRows())
	filtered := "SELECT sum(v), g FROM t WHERE a < 5 GROUP BY g"
	tr, err := NewTracker(base, filtered)
	if err != nil {
		t.Fatal(err)
	}
	app := relation.AppenderFor(base)
	// One row passes the filter, one does not.
	succ, err := app.Append([]relation.Row{row("x", 1, 50), row("x", 9, 50)})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := tr.Advance(succ)
	if err != nil {
		t.Fatal(err)
	}
	if delta.TailRows != 1 {
		t.Fatalf("filtered tail rows = %d, want 1", delta.TailRows)
	}
	cold, err := NewTracker(succ, filtered)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := tr.Group("x")
	c, _ := cold.Group("x")
	if !w.Rows.Equal(c.Rows) || !almostEqual(w.Value(tr.Removable()), c.Value(cold.Removable())) {
		t.Fatalf("filtered advance diverged: %v vs %v", w, c)
	}
}

func TestTrackerErrors(t *testing.T) {
	base := buildTable(t, baseRows())
	// Black-box aggregate: no decomposable state to maintain.
	if _, err := NewTracker(base, "SELECT median(v), g FROM t GROUP BY g"); err == nil {
		t.Fatal("median tracker built")
	}
	tr, err := NewTracker(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	// A shorter table is not a successor.
	short := buildTable(t, baseRows()[:10])
	if _, err := tr.Advance(short); err == nil {
		t.Fatal("shrunk successor accepted")
	}
	// A different schema is not a successor.
	other := relation.NewBuilder(relation.MustSchema(
		relation.Column{Name: "q", Kind: relation.Continuous})).Build()
	if _, err := tr.Advance(other); err == nil {
		t.Fatal("foreign schema accepted")
	}
	if _, err := tr.Advance(nil); err == nil {
		t.Fatal("nil successor accepted")
	}
	// States for a label that is not a group.
	if _, err := tr.States([]string{"x", "ghost"}); err == nil {
		t.Fatal("missing group accepted")
	}
}

func TestTrackerSnapshotsStableUnderConcurrentAdvance(t *testing.T) {
	// The supported concurrency pattern: state handed out before an
	// Advance (group rowsets, results) is frozen — readers may keep using
	// it while the tracker advances. The race detector checks this.
	base := buildTable(t, baseRows())
	tr, err := NewTracker(base, sql)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := tr.Group("x")
	frozenRows := g.Rows
	frozenRes := tr.Result()
	app := relation.AppenderFor(base)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			frozenRows.Count()
			if r, ok := frozenRes.Lookup("x"); !ok || r.Group.IsEmpty() {
				t.Error("frozen result lost its group")
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		succ, err := app.Append([]relation.Row{row("x", 1, 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Advance(succ); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if frozenRows.Universe() != base.NumRows() {
		t.Fatalf("frozen rowset universe changed to %d", frozenRows.Universe())
	}
}
