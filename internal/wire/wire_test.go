package wire

import (
	"encoding/json"
	"strings"
	"testing"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

func validTask() *Task {
	out := relation.NewRowSet(100)
	out.AddRange(10, 20)
	return &Task{
		Version:   Version,
		Table:     "t",
		Rows:      1000,
		SQL:       "SELECT sum(v), g FROM t GROUP BY g",
		WindowLo:  200,
		WindowHi:  300,
		Algorithm: "naive",
		Bins:      10,
		Attrs:     []string{"a"},
		Lambda:    0.5,
		C:         0.2,
		Outliers:  []Group{{Key: "out", Direction: 1, Rows: out.AppendBinary(nil)}},
	}
}

func TestTaskJSONRoundTrip(t *testing.T) {
	task := validTask()
	task.Domains = EncodeDomains(map[int]predicate.Domain{2: {Lo: -1, Hi: 9, Card: 0}, 1: {Lo: 0, Hi: 1}})
	hold := relation.RowSetOf(100, 1, 2, 3, 90)
	task.HoldOuts = EncodeGroups([]influence.Group{{Key: "hold", Rows: hold}})

	data, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	var back Task
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Domains arrive sorted by column and rebuild the exact map.
	if back.Domains[0].Col != 1 || back.Domains[1].Col != 2 {
		t.Fatalf("domains not sorted by column: %+v", back.Domains)
	}
	doms := DecodeDomains(back.Domains)
	if d := doms[2]; d.Lo != -1 || d.Hi != 9 {
		t.Fatalf("domain 2 = %+v", d)
	}
	// Group provenance survives the base64 detour bit-for-bit.
	groups, err := DecodeGroups(back.Outliers, 100)
	if err != nil {
		t.Fatal(err)
	}
	if groups[0].Key != "out" || groups[0].Direction != 1 || groups[0].Rows.Count() != 10 {
		t.Fatalf("outlier group decoded wrong: %+v", groups[0])
	}
	holds, err := DecodeGroups(back.HoldOuts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !holds[0].Rows.Equal(hold) {
		t.Fatal("hold-out provenance drifted through the wire")
	}
}

func TestDecodeGroupsRejections(t *testing.T) {
	rs := relation.RowSetOf(100, 5)
	enc := rs.AppendBinary(nil)
	if _, err := DecodeGroups([]Group{{Key: "g", Rows: enc}}, 50); err == nil {
		t.Fatal("wrong universe accepted")
	}
	if _, err := DecodeGroups([]Group{{Key: "g", Rows: append(enc, 0)}}, 100); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeGroups([]Group{{Key: "g", Rows: enc[:2]}}, 100); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func testCandidates(t *testing.T) []partition.Candidate {
	t.Helper()
	p1, err := predicate.New(predicate.NewRangeClause(1, "a", 2, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := predicate.New(
		predicate.NewRangeClause(1, "a", 0, 1, true),
		predicate.NewSetClause(2, "b", []int32{3, 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return []partition.Candidate{
		{Pred: p1, Score: 1.5, GroupCards: []float64{3, 0}, HoldPenalty: 0.25, InfluencesHoldOut: true},
		{Pred: p2, Score: -2, CachedRows: []int{7, 9}, MeanInfluences: []float64{0.5}},
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	out := &partition.Outcome{
		Candidates: testCandidates(t),
		Work:       42,
		Pruned:     3,
		Escalated:  1,
	}
	res := EncodeOutcome(out)
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var wres Result
	if err := json.Unmarshal(data, &wres); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeOutcome(&wres)
	if err != nil {
		t.Fatal(err)
	}
	if back.Work != 42 || back.Pruned != 3 || back.Escalated != 1 || back.Interrupted {
		t.Fatalf("outcome counters drifted: %+v", back)
	}
	if len(back.Candidates) != len(out.Candidates) {
		t.Fatalf("candidate count %d != %d", len(back.Candidates), len(out.Candidates))
	}
	for i := range back.Candidates {
		g, w := back.Candidates[i], out.Candidates[i]
		if g.Pred.Key() != w.Pred.Key() {
			t.Fatalf("candidate %d: key %q != %q", i, g.Pred.Key(), w.Pred.Key())
		}
		if g.Score != w.Score || g.HoldPenalty != w.HoldPenalty || g.InfluencesHoldOut != w.InfluencesHoldOut {
			t.Fatalf("candidate %d drifted: %+v vs %+v", i, g, w)
		}
	}
}

func TestDecodeCandidatesFingerprintMismatch(t *testing.T) {
	enc := EncodeCandidates(testCandidates(t))
	enc[0].Key = "sum(v):bogus"
	if _, err := DecodeCandidates(enc); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("corrupted fingerprint accepted (err = %v)", err)
	}

	// A mutated clause must fail the same way: the recomputed canonical key
	// no longer matches what the producer stamped.
	enc = EncodeCandidates(testCandidates(t))
	enc[0].Clauses[0].Hi += 1
	if _, err := DecodeCandidates(enc); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mutated clause accepted (err = %v)", err)
	}

	enc = EncodeCandidates(testCandidates(t))
	enc[0].Clauses[0].Kind = "mystery"
	if _, err := DecodeCandidates(enc); err == nil {
		t.Fatal("unknown clause kind accepted")
	}
}

func TestDecodeOutcomeVersionMismatch(t *testing.T) {
	res := EncodeOutcome(&partition.Outcome{})
	res.Version = Version + 1
	if _, err := DecodeOutcome(res); err == nil {
		t.Fatal("future result version accepted")
	}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Task)
	}{
		{"future version", func(t *Task) { t.Version = Version + 1 }},
		{"no table", func(t *Task) { t.Table = "" }},
		{"no sql", func(t *Task) { t.SQL = "" }},
		{"negative window", func(t *Task) { t.WindowLo = -1 }},
		{"inverted window", func(t *Task) { t.WindowHi = t.WindowLo - 1 }},
		{"dt never serializes", func(t *Task) { t.Algorithm = "dt" }},
		{"no outliers", func(t *Task) { t.Outliers = nil }},
		{"no attrs", func(t *Task) { t.Attrs = nil }},
	}
	if err := validTask().Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	for _, tc := range cases {
		task := validTask()
		tc.mutate(task)
		if err := task.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
