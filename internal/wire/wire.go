// Package wire defines the versioned serialization of a shard search task
// and its result — the contract between the shard coordinator and a remote
// worker (scorpion-server -worker).
//
// The envelope is JSON (self-describing, trivially inspectable on the
// wire), but the expensive parts — group provenance RowSets — travel as
// the relation package's versioned binary codec inside []byte fields, so
// a run-encoded shard task costs O(#runs) bytes, not N/8. Candidate
// predicates travel as explicit clause lists plus their canonical
// fingerprint; the decoder rebuilds each predicate through the canonical
// constructors and verifies the fingerprint matches, so a worker running
// subtly different predicate-canonicalisation code is detected instead of
// silently corrupting the combiner's dedupe.
//
// Versioning rules (documented in README "Remote shard workers"):
//
//   - wire.Version gates the JSON envelope. A worker rejects any task
//     whose Version differs from its own; the coordinator treats that
//     rejection as a dead peer and falls back to a local search.
//   - relation.RowSetCodecVersion gates the embedded RowSet payloads
//     independently, so the provenance codec can evolve without a wire
//     envelope bump (and vice versa).
//   - Any field addition that an old worker can safely ignore does NOT
//     bump Version; any semantic change to existing fields does.
package wire

import (
	"fmt"
	"sort"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Version is the shard-task envelope version. Bump on any incompatible
// change to Task or Result semantics.
const Version = 1

// Task is one shard's search, fully self-contained: a worker that holds
// the same table needs nothing but this to reproduce the coordinator's
// local shard search bit-for-bit.
type Task struct {
	// Version must equal wire.Version; workers reject anything else.
	Version int `json:"version"`
	// Table names the catalog entry the task runs against; Rows pins the
	// expected base-table row count — a worker whose copy differs answers
	// 409 rather than computing a wrong answer on drifted data. Gen is the
	// coordinator's catalog generation, informational only (generation
	// counters are per-process).
	Table string `json:"table"`
	Gen   int64  `json:"gen,omitempty"`
	Rows  int    `json:"rows"`
	// SQL is the original aggregate query; the worker parses and binds it
	// (never executes it) to recover the aggregate function and column.
	SQL string `json:"sql"`
	// WindowLo/WindowHi delimit this shard's half-open row window in base
	// table ids; group Rows below are window-local.
	WindowLo int `json:"window_lo"`
	WindowHi int `json:"window_hi"`
	// Algorithm selects the partitioner: "naive" or "mc". (DT shards are
	// never dispatched remotely — its parameters don't serialize.)
	Algorithm string `json:"algorithm"`
	// Search knobs, pre-resolved by the coordinator so defaults cannot
	// skew across versions: Bins is the unit grid, TopK the per-shard
	// candidate cut for NAIVE, Epsilon/Confidence the anytime estimator
	// (Epsilon 0 = exact path).
	Bins       int     `json:"bins"`
	TopK       int     `json:"top_k,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	// Attrs is the predicate search space (A_rest), in the coordinator's
	// canonical order.
	Attrs []string `json:"attrs"`
	// Influence knobs (see influence.Task).
	Lambda  float64  `json:"lambda"`
	C       float64  `json:"c"`
	Perturb *float64 `json:"perturb,omitempty"`
	// Workers caps the worker-side search parallelism for this shard.
	Workers int `json:"workers,omitempty"`
	// Domains pins the coordinator's global continuous extents so every
	// shard builds an identical unit grid.
	Domains []Domain `json:"domains,omitempty"`
	// Outliers and HoldOuts are the flagged groups, provenance sliced to
	// the window and shifted to window-local ids.
	Outliers []Group `json:"outliers"`
	HoldOuts []Group `json:"holdouts,omitempty"`
}

// Domain is one pinned continuous extent (predicate.Domain keyed by column
// index; JSON objects can't key maps by int).
type Domain struct {
	Col  int     `json:"col"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
	Card int     `json:"card,omitempty"`
}

// Group is one flagged result group. Rows is the window-local provenance
// RowSet in the relation binary codec (base64 inside JSON).
type Group struct {
	Key       string  `json:"key"`
	Direction float64 `json:"direction,omitempty"`
	Rows      []byte  `json:"rows"`
}

// Result carries a shard search's outcome back: every candidate the
// local searcher would have produced, before the coordinator-side penalty
// rerank and top-per-shard cut.
type Result struct {
	Version     int         `json:"version"`
	Candidates  []Candidate `json:"candidates"`
	Work        int64       `json:"work"`
	Pruned      int64       `json:"pruned,omitempty"`
	Escalated   int64       `json:"escalated,omitempty"`
	Interrupted bool        `json:"interrupted,omitempty"`
}

// Candidate mirrors partition.Candidate with the predicate exploded into
// clauses plus its canonical fingerprint.
type Candidate struct {
	Clauses []Clause `json:"clauses"`
	// Key is the producer's predicate.Key(); the decoder recomputes it
	// from Clauses and rejects the candidate on mismatch.
	Key               string    `json:"key"`
	Score             float64   `json:"score"`
	GroupCards        []float64 `json:"group_cards,omitempty"`
	CachedRows        []int     `json:"cached_rows,omitempty"`
	MeanInfluences    []float64 `json:"mean_influences,omitempty"`
	HoldPenalty       float64   `json:"hold_penalty"`
	InfluencesHoldOut bool      `json:"influences_holdout,omitempty"`
}

// Clause is one predicate clause. Kind is "continuous" or "discrete".
type Clause struct {
	Col    int     `json:"col"`
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Lo     float64 `json:"lo,omitempty"`
	Hi     float64 `json:"hi,omitempty"`
	HiInc  bool    `json:"hi_inc,omitempty"`
	Values []int32 `json:"values,omitempty"`
}

// EncodeGroups converts influence groups (window-local RowSets) to wire
// form using the relation binary codec.
func EncodeGroups(groups []influence.Group) []Group {
	out := make([]Group, len(groups))
	for i, g := range groups {
		out[i] = Group{Key: g.Key, Direction: float64(g.Direction), Rows: g.Rows.AppendBinary(nil)}
	}
	return out
}

// DecodeGroups rebuilds influence groups, checking every provenance set
// decodes cleanly and lives in the expected (window-local) universe.
func DecodeGroups(groups []Group, universe int) ([]influence.Group, error) {
	out := make([]influence.Group, len(groups))
	for i, g := range groups {
		rs, used, err := relation.DecodeRowSet(g.Rows)
		if err != nil {
			return nil, fmt.Errorf("wire: group %q: %w", g.Key, err)
		}
		if used != len(g.Rows) {
			return nil, fmt.Errorf("wire: group %q: %d trailing bytes", g.Key, len(g.Rows)-used)
		}
		if rs.Universe() != universe {
			return nil, fmt.Errorf("wire: group %q: universe %d, window %d", g.Key, rs.Universe(), universe)
		}
		out[i] = influence.Group{Key: g.Key, Rows: rs, Direction: influence.Direction(g.Direction)}
	}
	return out, nil
}

// EncodeDomains converts a pinned domain map to wire form.
func EncodeDomains(domains map[int]predicate.Domain) []Domain {
	out := make([]Domain, 0, len(domains))
	for col, d := range domains {
		out = append(out, Domain{Col: col, Lo: d.Lo, Hi: d.Hi, Card: d.Card})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Col < out[j].Col })
	return out
}

// DecodeDomains rebuilds the pinned domain map.
func DecodeDomains(domains []Domain) map[int]predicate.Domain {
	if len(domains) == 0 {
		return nil
	}
	out := make(map[int]predicate.Domain, len(domains))
	for _, d := range domains {
		out[d.Col] = predicate.Domain{Lo: d.Lo, Hi: d.Hi, Card: d.Card}
	}
	return out
}

// EncodeCandidates converts a shard search outcome's candidates to wire
// form, stamping each with its canonical fingerprint.
func EncodeCandidates(cands []partition.Candidate) []Candidate {
	out := make([]Candidate, len(cands))
	for i, c := range cands {
		clauses := c.Pred.Clauses()
		wc := make([]Clause, len(clauses))
		for j, cl := range clauses {
			wc[j] = Clause{
				Col:    cl.Col,
				Name:   cl.Name,
				Kind:   cl.Kind.String(),
				Lo:     cl.Lo,
				Hi:     cl.Hi,
				HiInc:  cl.HiInc,
				Values: cl.Values,
			}
		}
		out[i] = Candidate{
			Clauses:           wc,
			Key:               c.Pred.Key(),
			Score:             c.Score,
			GroupCards:        c.GroupCards,
			CachedRows:        c.CachedRows,
			MeanInfluences:    c.MeanInfluences,
			HoldPenalty:       c.HoldPenalty,
			InfluencesHoldOut: c.InfluencesHoldOut,
		}
	}
	return out
}

// DecodeCandidates rebuilds partition candidates through the canonical
// predicate constructors, verifying each recomputed fingerprint against
// the one on the wire.
func DecodeCandidates(cands []Candidate) ([]partition.Candidate, error) {
	out := make([]partition.Candidate, len(cands))
	for i, c := range cands {
		clauses := make([]predicate.Clause, len(c.Clauses))
		for j, cl := range c.Clauses {
			switch cl.Kind {
			case relation.Continuous.String():
				if cl.Lo > cl.Hi {
					return nil, fmt.Errorf("wire: candidate %d: empty range [%v,%v] on %q", i, cl.Lo, cl.Hi, cl.Name)
				}
				clauses[j] = predicate.NewRangeClause(cl.Col, cl.Name, cl.Lo, cl.Hi, cl.HiInc)
			case relation.Discrete.String():
				clauses[j] = predicate.NewSetClause(cl.Col, cl.Name, cl.Values)
			default:
				return nil, fmt.Errorf("wire: candidate %d: unknown clause kind %q", i, cl.Kind)
			}
		}
		pred, err := predicate.New(clauses...)
		if err != nil {
			return nil, fmt.Errorf("wire: candidate %d: %w", i, err)
		}
		if pred.Key() != c.Key {
			return nil, fmt.Errorf("wire: candidate %d: fingerprint mismatch: rebuilt %q, wire %q", i, pred.Key(), c.Key)
		}
		out[i] = partition.Candidate{
			Pred:              pred,
			Score:             c.Score,
			GroupCards:        c.GroupCards,
			CachedRows:        c.CachedRows,
			MeanInfluences:    c.MeanInfluences,
			HoldPenalty:       c.HoldPenalty,
			InfluencesHoldOut: c.InfluencesHoldOut,
		}
	}
	return out, nil
}

// EncodeOutcome wraps a shard outcome for the wire.
func EncodeOutcome(o *partition.Outcome) *Result {
	return &Result{
		Version:     Version,
		Candidates:  EncodeCandidates(o.Candidates),
		Work:        o.Work,
		Pruned:      o.Pruned,
		Escalated:   o.Escalated,
		Interrupted: o.Interrupted,
	}
}

// DecodeOutcome unwraps a wire result, rejecting version mismatches.
func DecodeOutcome(r *Result) (*partition.Outcome, error) {
	if r.Version != Version {
		return nil, fmt.Errorf("wire: result version %d, want %d", r.Version, Version)
	}
	cands, err := DecodeCandidates(r.Candidates)
	if err != nil {
		return nil, err
	}
	return &partition.Outcome{
		Candidates:  cands,
		Work:        r.Work,
		Pruned:      r.Pruned,
		Escalated:   r.Escalated,
		Interrupted: r.Interrupted,
	}, nil
}

// Validate performs the worker-side structural checks that do not need
// the table: version, window sanity, algorithm, and group presence.
func (t *Task) Validate() error {
	if t.Version != Version {
		return fmt.Errorf("wire: task version %d, want %d", t.Version, Version)
	}
	if t.Table == "" {
		return fmt.Errorf("wire: task has no table")
	}
	if t.SQL == "" {
		return fmt.Errorf("wire: task has no query")
	}
	if t.WindowLo < 0 || t.WindowHi < t.WindowLo {
		return fmt.Errorf("wire: bad window [%d,%d)", t.WindowLo, t.WindowHi)
	}
	switch t.Algorithm {
	case "naive", "mc":
	default:
		return fmt.Errorf("wire: unsupported algorithm %q", t.Algorithm)
	}
	if len(t.Outliers) == 0 {
		return fmt.Errorf("wire: task has no outlier groups")
	}
	if len(t.Attrs) == 0 {
		return fmt.Errorf("wire: task has no search attributes")
	}
	return nil
}
