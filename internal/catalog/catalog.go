// Package catalog is a concurrency-safe registry of named tables — the
// multi-dataset half of turning the paper's one-database-per-process tool
// (§4.1, Figure 2) into a serving system. One server process registers many
// datasets (from CSV files, directory scans, or uploads) and resolves every
// query/explain request to a table by name.
//
// Tables themselves are immutable, so a resolved *Table stays valid even if
// its catalog entry is replaced or removed afterwards; the catalog only
// guards the name→table map. Growth happens by SUCCESSION, not mutation:
// Append publishes a new immutable snapshot (sharing the predecessor's
// backing arrays) as a new generation on the same lineage, so consumers can
// distinguish "same table, more rows" (refresh incrementally) from "a
// different table under the same name" (start cold).
package catalog

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// Entry is one registered table with its provenance metadata.
type Entry struct {
	// Name is the registry key.
	Name string
	// Table is the immutable relation.
	Table *relation.Table
	// Source records where the table came from ("csv:/path", "upload",
	// "builtin", ...), for /tables listings.
	Source string
	// LoadedAt is the registration time.
	LoadedAt time.Time
	// Gen is the entry's content generation: a catalog-wide counter
	// assigned at registration, so replacing a table (upload over an
	// existing name, replace-on-Add) yields an entry with a new Gen even
	// though the name is unchanged. Caches key their entries by
	// (Name, Gen); a replace or an unload-then-reload can therefore never
	// serve results computed against the old data.
	Gen int64
	// Lineage identifies the append-only snapshot chain this entry belongs
	// to: assigned when a table is loaded (Add/LoadCSV) and PRESERVED by
	// Append, so two entries with equal Lineage are snapshots of the same
	// growing table — the later one's rows are a superset, with the new
	// rows forming a contiguous tail. A replace or reload starts a fresh
	// lineage. Warm-start caches key incremental state by (Name, Lineage)
	// and treat a successor generation as refreshable rather than stale.
	Lineage int64
	// PrevGen is the generation this entry succeeded via Append (0 when
	// the entry is a fresh load or replace).
	PrevGen int64
	// PrevRows is the predecessor's row count when PrevGen is set: the
	// appended tail is rows [PrevRows, Rows()).
	PrevRows int
}

// Rows returns the entry's row count.
func (e *Entry) Rows() int { return e.Table.NumRows() }

// Columns returns the entry's column count.
func (e *Entry) Columns() int { return e.Table.Schema().NumColumns() }

// ErrNotFound marks operations against a table name with no live entry;
// serving layers map it to 404. Errors carrying it wrap the name.
var ErrNotFound = errors.New("catalog: table not found")

// validName constrains table names to something safe in URLs and flags.
var validName = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9_.-]*$`)

// Catalog is the registry. The zero value is not usable; call New.
type Catalog struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// appenders holds one relation.Appender per live entry: the single
	// writer of that entry's snapshot chain. Replacing or removing the
	// entry swaps/drops the appender, which is how an in-flight Append
	// detects it lost its table.
	appenders map[string]*tableAppender
	gen       int64 // generation counter; incremented on every Add/Append
}

// tableAppender pairs an entry's appender with its lineage id. Its mutex
// serializes appends to one table without holding the catalog lock across
// the (possibly large) row copy.
type tableAppender struct {
	mu      sync.Mutex
	app     *relation.Appender
	lineage int64
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		entries:   make(map[string]*Entry),
		appenders: make(map[string]*tableAppender),
	}
}

// Add registers table under name with the given source tag, replacing any
// existing entry of that name. It rejects invalid names and nil tables.
// The new entry starts a fresh lineage (its snapshot chain is unrelated to
// any prior table of the same name).
func (c *Catalog) Add(name string, table *relation.Table, source string) (*Entry, error) {
	if !validName.MatchString(name) {
		return nil, fmt.Errorf("catalog: invalid table name %q", name)
	}
	if table == nil {
		return nil, fmt.Errorf("catalog: table %q is nil", name)
	}
	c.mu.Lock()
	c.gen++
	e := &Entry{Name: name, Table: table, Source: source, LoadedAt: time.Now(), Gen: c.gen, Lineage: c.gen}
	c.entries[name] = e
	c.appenders[name] = &tableAppender{app: relation.AppenderFor(table), lineage: e.Lineage}
	c.mu.Unlock()
	return e, nil
}

// Append extends the named table with rows, publishing a SUCCESSOR entry:
// a new generation on the SAME lineage whose table shares the predecessor's
// backing arrays, with the appended rows as a contiguous tail. Unlike Add,
// an append never invalidates warm state computed against the predecessor —
// consumers recognize the successor by its unchanged Lineage and refresh
// incrementally from the tail window (Table.Tail(PrevRows)).
//
// Appends to one table are serialized; an append that races a Remove or a
// replacing Add fails cleanly (the rows are not resurrected onto the dead
// table). An empty batch is a no-op returning the current entry.
func (c *Catalog) Append(name string, rows []relation.Row) (*Entry, error) {
	c.mu.RLock()
	e, ok := c.entries[name]
	ta := c.appenders[name]
	c.mu.RUnlock()
	if !ok || ta == nil {
		return nil, fmt.Errorf("%w: no table %q to append to", ErrNotFound, name)
	}
	if len(rows) == 0 {
		return e, nil
	}
	return c.appendVia(name, ta, rows)
}

// appendVia commits a batch onto a SPECIFIC appender (the one the rows
// were validated/parsed against). The commit step re-checks that ta is
// still the live appender for name, so rows prepared against one lineage
// can never be committed onto a replacement — even a same-shape one.
func (c *Catalog) appendVia(name string, ta *tableAppender, rows []relation.Row) (*Entry, error) {
	ta.mu.Lock()
	defer ta.mu.Unlock()
	table, err := ta.app.Append(rows)
	if err != nil {
		return nil, fmt.Errorf("catalog: appending to %q: %w", name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	prev, ok := c.entries[name]
	if !ok || c.appenders[name] != ta {
		// The table was removed or replaced while the batch was being
		// written; the orphaned appender's arrays are garbage now.
		return nil, fmt.Errorf("%w: table %q was replaced or removed during append", ErrNotFound, name)
	}
	c.gen++
	succ := &Entry{
		Name:     name,
		Table:    table,
		Source:   prev.Source,
		LoadedAt: prev.LoadedAt,
		Gen:      c.gen,
		Lineage:  ta.lineage,
		PrevGen:  prev.Gen,
		PrevRows: prev.Table.NumRows(),
	}
	c.entries[name] = succ
	return succ, nil
}

// AppendCSV parses a CSV batch (header row naming the table's columns, any
// order) against the named table's schema and appends it. It returns the
// successor entry and the number of rows appended.
func (c *Catalog) AppendCSV(name string, r io.Reader) (*Entry, int, error) {
	// Capture the schema TOGETHER with its appender: the batch is parsed
	// against this exact lineage, and appendVia refuses to commit it onto
	// any appender but ta — a concurrent replace with a same-shape schema
	// cannot silently receive rows mapped by the old header order.
	c.mu.RLock()
	e, ok := c.entries[name]
	ta := c.appenders[name]
	c.mu.RUnlock()
	if !ok || ta == nil {
		return nil, 0, fmt.Errorf("%w: no table %q to append to", ErrNotFound, name)
	}
	rows, err := relation.ParseCSVRows(r, e.Table.Schema(), relation.CSVOptions{})
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: appending to %q: %w", name, err)
	}
	if len(rows) == 0 {
		return e, 0, nil
	}
	succ, err := c.appendVia(name, ta, rows)
	if err != nil {
		return nil, 0, err
	}
	return succ, len(rows), nil
}

// LoadCSV reads a CSV stream and registers it under name.
func (c *Catalog) LoadCSV(name string, r io.Reader, opts relation.CSVOptions, source string) (*Entry, error) {
	if !validName.MatchString(name) {
		return nil, fmt.Errorf("catalog: invalid table name %q", name)
	}
	table, err := relation.ReadCSV(r, opts)
	if err != nil {
		return nil, fmt.Errorf("catalog: loading %q: %w", name, err)
	}
	return c.Add(name, table, source)
}

// LoadCSVFile reads path and registers it under name; an empty name derives
// one from the file's base name (data/flights.csv → flights).
func (c *Catalog) LoadCSVFile(name, path string) (*Entry, error) {
	if name == "" {
		name = NameFromPath(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	defer f.Close()
	return c.LoadCSV(name, f, relation.CSVOptions{}, "csv:"+path)
}

// LoadDir registers every *.csv file directly inside dir, named after its
// base name. It returns the entries loaded (sorted by name) and fails on
// the first unreadable file — or on two files whose sanitized names
// collide, which would otherwise silently replace one dataset with the
// other — so a bad data directory is caught at startup.
func (c *Catalog) LoadDir(dir string) ([]*Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, fmt.Errorf("catalog: scanning %q: %w", dir, err)
	}
	sort.Strings(paths)
	seen := make(map[string]string, len(paths))
	entries := make([]*Entry, 0, len(paths))
	for _, p := range paths {
		name := NameFromPath(p)
		if prev, dup := seen[name]; dup {
			return nil, fmt.Errorf("catalog: %q and %q both load as table %q; rename one", prev, p, name)
		}
		seen[name] = p
		e, err := c.LoadCSVFile(name, p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// NameFromPath derives a table name from a file path: the base name without
// its extension, with characters outside the valid-name alphabet replaced
// by underscores.
func NameFromPath(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, filepath.Ext(base))
	if base == "" {
		base = "table"
	}
	var b strings.Builder
	for i, r := range base {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case (r == '.' || r == '-') && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Get resolves a name to its entry.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[name]
	return e, ok
}

// Resolve maps a request's table parameter to an entry: an explicit name
// must exist, and an empty name is allowed only when exactly one table is
// registered (the single-dataset convenience the pre-catalog server had).
func (c *Catalog) Resolve(name string) (*Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if name != "" {
		e, ok := c.entries[name]
		if !ok {
			return nil, fmt.Errorf("catalog: no table %q (have %s)", name, strings.Join(c.namesLocked(), ", "))
		}
		return e, nil
	}
	switch len(c.entries) {
	case 0:
		return nil, fmt.Errorf("catalog: no tables loaded")
	case 1:
		for _, e := range c.entries {
			return e, nil
		}
	}
	return nil, fmt.Errorf("catalog: %d tables loaded, specify one of %s", len(c.entries), strings.Join(c.namesLocked(), ", "))
}

// Remove unloads name, reporting whether it was present.
func (c *Catalog) Remove(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; !ok {
		return false
	}
	delete(c.entries, name)
	delete(c.appenders, name)
	return true
}

// List returns all entries sorted by name.
func (c *Catalog) List() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// namesLocked returns the sorted table names; callers hold c.mu.
func (c *Catalog) namesLocked() []string {
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
