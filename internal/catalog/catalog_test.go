package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleCSV = "g,v\na,1\na,2\nb,3\n"

func TestLoadCSVFileAndResolve(t *testing.T) {
	c := New()
	path := writeCSV(t, t.TempDir(), "readings.csv", sampleCSV)
	e, err := c.LoadCSVFile("", path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "readings" {
		t.Errorf("derived name = %q", e.Name)
	}
	if e.Rows() != 3 || e.Columns() != 2 {
		t.Errorf("stat = %d rows × %d cols", e.Rows(), e.Columns())
	}
	if !strings.HasPrefix(e.Source, "csv:") {
		t.Errorf("source = %q", e.Source)
	}

	// Single-table convenience: an empty name resolves to the only table.
	got, err := c.Resolve("")
	if err != nil || got != e {
		t.Fatalf("Resolve(\"\") = %v, %v", got, err)
	}
	if _, err := c.Resolve("nope"); err == nil {
		t.Error("Resolve of a missing name succeeded")
	}

	// A second table makes the empty name ambiguous.
	if _, err := c.LoadCSVFile("other", path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(""); err == nil {
		t.Error("ambiguous Resolve(\"\") succeeded with 2 tables")
	}
	if got, err := c.Resolve("other"); err != nil || got.Name != "other" {
		t.Errorf("Resolve(other) = %v, %v", got, err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "b.csv", sampleCSV)
	writeCSV(t, dir, "a.csv", sampleCSV)
	writeCSV(t, dir, "notes.txt", "ignored")
	c := New()
	entries, err := c.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a" || entries[1].Name != "b" {
		t.Fatalf("entries = %+v", entries)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLoadDirNameCollision(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "foo bar.csv", sampleCSV)
	writeCSV(t, dir, "foo_bar.csv", sampleCSV)
	c := New()
	if _, err := c.LoadDir(dir); err == nil || !strings.Contains(err.Error(), "foo_bar") {
		t.Fatalf("colliding dir load: err = %v, want collision error", err)
	}
}

func TestAddValidationAndRemove(t *testing.T) {
	c := New()
	if _, err := c.Add("bad name", nil, "x"); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := c.LoadCSV("t1", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadCSV("t1", strings.NewReader("x,y\n1,2\n3"), relation.CSVOptions{}, "upload"); err == nil {
		t.Error("ragged CSV accepted")
	}
	if !c.Remove("t1") {
		t.Error("Remove(t1) = false")
	}
	if c.Remove("t1") {
		t.Error("second Remove(t1) = true")
	}
	if _, err := c.Resolve(""); err == nil {
		t.Error("Resolve on empty catalog succeeded")
	}
}

func TestNameFromPath(t *testing.T) {
	cases := map[string]string{
		"/data/flights.csv": "flights",
		"weird name!.csv":   "weird_name_",
		"v1.2-final.csv":    "v1.2-final",
		".csv":              "table",
		"-leading-dash.csv": "_leading-dash",
	}
	for in, want := range cases {
		if got := NameFromPath(in); got != want {
			t.Errorf("NameFromPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestConcurrentAccess exercises the registry under the race detector.
func TestConcurrentAccess(t *testing.T) {
	c := New()
	path := writeCSV(t, t.TempDir(), "t.csv", sampleCSV)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 20; j++ {
				if _, err := c.LoadCSVFile(name, path); err != nil {
					t.Error(err)
					return
				}
				c.List()
				c.Resolve(name)
				c.Remove(name)
			}
		}(i)
	}
	wg.Wait()
}

// TestGenerations checks the content-generation counter caches key by:
// every Add — including replace-on-Add over an existing name and a reload
// after Remove — yields a strictly newer Gen, so no cache entry keyed by
// (name, gen) can ever resolve against different data.
func TestGenerations(t *testing.T) {
	c := New()
	tbl, err := relation.ReadCSV(strings.NewReader(sampleCSV), relation.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Add("t", tbl, "builtin")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Add("t", tbl, "builtin") // replace-on-Add, same name
	if err != nil {
		t.Fatal(err)
	}
	if e2.Gen <= e1.Gen {
		t.Fatalf("replace-on-Add gen %d not newer than %d", e2.Gen, e1.Gen)
	}
	if !c.Remove("t") {
		t.Fatal("Remove failed")
	}
	e3, err := c.Add("t", tbl, "builtin") // reload after unload
	if err != nil {
		t.Fatal(err)
	}
	if e3.Gen <= e2.Gen {
		t.Fatalf("reload gen %d not newer than %d", e3.Gen, e2.Gen)
	}
	// Distinct names draw from the same counter: gens are unique
	// catalog-wide, never reused across names.
	e4, err := c.Add("u", tbl, "builtin")
	if err != nil {
		t.Fatal(err)
	}
	if e4.Gen <= e3.Gen {
		t.Fatalf("gen %d reused across names (prev %d)", e4.Gen, e3.Gen)
	}
}

func TestAppendSuccessorGeneration(t *testing.T) {
	c := New()
	e1, err := c.LoadCSV("t", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload")
	if err != nil {
		t.Fatal(err)
	}
	e2, n, err := c.AppendCSV("t", strings.NewReader("g,v\nc,4\nb,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("appended %d rows, want 2", n)
	}
	if e2.Gen <= e1.Gen {
		t.Fatalf("successor gen %d not after %d", e2.Gen, e1.Gen)
	}
	if e2.Lineage != e1.Lineage {
		t.Fatalf("append changed lineage: %d -> %d", e1.Lineage, e2.Lineage)
	}
	if e2.PrevGen != e1.Gen || e2.PrevRows != e1.Rows() {
		t.Fatalf("succession metadata = prevGen %d prevRows %d, want %d/%d",
			e2.PrevGen, e2.PrevRows, e1.Gen, e1.Rows())
	}
	if e2.Rows() != e1.Rows()+2 {
		t.Fatalf("rows = %d", e2.Rows())
	}
	// The predecessor snapshot is untouched.
	if e1.Rows() != 3 {
		t.Fatalf("predecessor grew to %d rows", e1.Rows())
	}
	// The appended tail is visible as a window of the successor.
	tail := e2.Table.Tail(e2.PrevRows)
	if tail.Len() != 2 || tail.Floats(e2.Table.Schema().MustIndex("v"))[0] != 4 {
		t.Fatalf("tail window wrong: %v", tail)
	}
	// A replacing Add starts a fresh lineage with no succession metadata.
	e3, err := c.LoadCSV("t", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload")
	if err != nil {
		t.Fatal(err)
	}
	if e3.Lineage == e2.Lineage || e3.PrevGen != 0 {
		t.Fatalf("replace kept lineage/succession: %+v", e3)
	}
}

func TestAppendErrors(t *testing.T) {
	c := New()
	if _, err := c.Append("nope", []relation.Row{{relation.S("a")}}); err == nil {
		t.Fatal("append to unknown table succeeded")
	}
	if _, _, err := c.AppendCSV("nope", strings.NewReader("g,v\na,1\n")); err == nil {
		t.Fatal("csv append to unknown table succeeded")
	}
	if _, err := c.LoadCSV("t", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload"); err != nil {
		t.Fatal(err)
	}
	// Schema-mismatched batches: wrong column set, wrong kind.
	for name, body := range map[string]string{
		"unknown column": "g,w\na,1\n",
		"bad kind":       "g,v\na,notanumber\n",
		"missing column": "g\na\n",
	} {
		if _, _, err := c.AppendCSV("t", strings.NewReader(body)); err == nil {
			t.Errorf("%s: append succeeded", name)
		}
	}
	// Failed appends leave the entry untouched.
	e, _ := c.Get("t")
	if e.Rows() != 3 || e.PrevGen != 0 {
		t.Fatalf("failed append mutated entry: %+v", e)
	}
	// Empty batch: no-op, same entry.
	e2, err := c.Append("t", nil)
	if err != nil || e2 != e {
		t.Fatalf("empty append: %v %v", e2, err)
	}
}

func TestAppendRacingRemoveAndReplace(t *testing.T) {
	// Concurrent appends, removes and replacing loads must never panic or
	// resurrect rows onto a dead table; every append either lands on the
	// live lineage or fails cleanly.
	c := New()
	if _, err := c.LoadCSV("t", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _, _ = c.AppendCSV("t", strings.NewReader("g,v\nz,9\n"))
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				c.Remove("t")
				_, _ = c.LoadCSV("t", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload")
			}
		}()
	}
	wg.Wait()
	// Whatever survived must be internally consistent.
	if e, ok := c.Get("t"); ok {
		if e.Rows() < 3 {
			t.Fatalf("final table has %d rows", e.Rows())
		}
		if _, err := c.Append("t", nil); err != nil {
			t.Fatalf("final entry not appendable: %v", err)
		}
	}
}

func TestAppendSerializesBatches(t *testing.T) {
	c := New()
	if _, err := c.LoadCSV("t", strings.NewReader("g,v\na,0\n"), relation.CSVOptions{}, "upload"); err != nil {
		t.Fatal(err)
	}
	const writers, batches = 4, 20
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < batches; j++ {
				if _, err := c.Append("t", []relation.Row{{relation.S("a"), relation.F(1)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e, _ := c.Get("t")
	if got := e.Rows(); got != 1+writers*batches {
		t.Fatalf("rows = %d, want %d", got, 1+writers*batches)
	}
}
