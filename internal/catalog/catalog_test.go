package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func writeCSV(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleCSV = "g,v\na,1\na,2\nb,3\n"

func TestLoadCSVFileAndResolve(t *testing.T) {
	c := New()
	path := writeCSV(t, t.TempDir(), "readings.csv", sampleCSV)
	e, err := c.LoadCSVFile("", path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name != "readings" {
		t.Errorf("derived name = %q", e.Name)
	}
	if e.Rows() != 3 || e.Columns() != 2 {
		t.Errorf("stat = %d rows × %d cols", e.Rows(), e.Columns())
	}
	if !strings.HasPrefix(e.Source, "csv:") {
		t.Errorf("source = %q", e.Source)
	}

	// Single-table convenience: an empty name resolves to the only table.
	got, err := c.Resolve("")
	if err != nil || got != e {
		t.Fatalf("Resolve(\"\") = %v, %v", got, err)
	}
	if _, err := c.Resolve("nope"); err == nil {
		t.Error("Resolve of a missing name succeeded")
	}

	// A second table makes the empty name ambiguous.
	if _, err := c.LoadCSVFile("other", path); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resolve(""); err == nil {
		t.Error("ambiguous Resolve(\"\") succeeded with 2 tables")
	}
	if got, err := c.Resolve("other"); err != nil || got.Name != "other" {
		t.Errorf("Resolve(other) = %v, %v", got, err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "b.csv", sampleCSV)
	writeCSV(t, dir, "a.csv", sampleCSV)
	writeCSV(t, dir, "notes.txt", "ignored")
	c := New()
	entries, err := c.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "a" || entries[1].Name != "b" {
		t.Fatalf("entries = %+v", entries)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLoadDirNameCollision(t *testing.T) {
	dir := t.TempDir()
	writeCSV(t, dir, "foo bar.csv", sampleCSV)
	writeCSV(t, dir, "foo_bar.csv", sampleCSV)
	c := New()
	if _, err := c.LoadDir(dir); err == nil || !strings.Contains(err.Error(), "foo_bar") {
		t.Fatalf("colliding dir load: err = %v, want collision error", err)
	}
}

func TestAddValidationAndRemove(t *testing.T) {
	c := New()
	if _, err := c.Add("bad name", nil, "x"); err == nil {
		t.Error("invalid name accepted")
	}
	if _, err := c.LoadCSV("t1", strings.NewReader(sampleCSV), relation.CSVOptions{}, "upload"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadCSV("t1", strings.NewReader("x,y\n1,2\n3"), relation.CSVOptions{}, "upload"); err == nil {
		t.Error("ragged CSV accepted")
	}
	if !c.Remove("t1") {
		t.Error("Remove(t1) = false")
	}
	if c.Remove("t1") {
		t.Error("second Remove(t1) = true")
	}
	if _, err := c.Resolve(""); err == nil {
		t.Error("Resolve on empty catalog succeeded")
	}
}

func TestNameFromPath(t *testing.T) {
	cases := map[string]string{
		"/data/flights.csv": "flights",
		"weird name!.csv":   "weird_name_",
		"v1.2-final.csv":    "v1.2-final",
		".csv":              "table",
		"-leading-dash.csv": "_leading-dash",
	}
	for in, want := range cases {
		if got := NameFromPath(in); got != want {
			t.Errorf("NameFromPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestConcurrentAccess exercises the registry under the race detector.
func TestConcurrentAccess(t *testing.T) {
	c := New()
	path := writeCSV(t, t.TempDir(), "t.csv", sampleCSV)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 20; j++ {
				if _, err := c.LoadCSVFile(name, path); err != nil {
					t.Error(err)
					return
				}
				c.List()
				c.Resolve(name)
				c.Remove(name)
			}
		}(i)
	}
	wg.Wait()
}

// TestGenerations checks the content-generation counter caches key by:
// every Add — including replace-on-Add over an existing name and a reload
// after Remove — yields a strictly newer Gen, so no cache entry keyed by
// (name, gen) can ever resolve against different data.
func TestGenerations(t *testing.T) {
	c := New()
	tbl, err := relation.ReadCSV(strings.NewReader(sampleCSV), relation.CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c.Add("t", tbl, "builtin")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.Add("t", tbl, "builtin") // replace-on-Add, same name
	if err != nil {
		t.Fatal(err)
	}
	if e2.Gen <= e1.Gen {
		t.Fatalf("replace-on-Add gen %d not newer than %d", e2.Gen, e1.Gen)
	}
	if !c.Remove("t") {
		t.Fatal("Remove failed")
	}
	e3, err := c.Add("t", tbl, "builtin") // reload after unload
	if err != nil {
		t.Fatal(err)
	}
	if e3.Gen <= e2.Gen {
		t.Fatalf("reload gen %d not newer than %d", e3.Gen, e2.Gen)
	}
	// Distinct names draw from the same counter: gens are unique
	// catalog-wide, never reused across names.
	e4, err := c.Add("u", tbl, "builtin")
	if err != nil {
		t.Fatal(err)
	}
	if e4.Gen <= e3.Gen {
		t.Fatalf("gen %d reused across names (prev %d)", e4.Gen, e3.Gen)
	}
}
