package partition

import (
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/predicate"
)

// cand builds a candidate over a distinct single-value set clause so each
// has a unique predicate key.
func cand(code int32, score float64) Candidate {
	return Candidate{
		Pred:  predicate.MustNew(predicate.NewSetClause(0, "a", []int32{code})),
		Score: score,
	}
}

func TestBoardPublishImprovements(t *testing.T) {
	b := NewBoard()
	if got, v := b.Snapshot(); len(got) != 0 || v != 0 {
		t.Fatalf("empty board = %v, %d", got, v)
	}

	b.Publish([]Candidate{cand(1, 5)})
	got, v1 := b.Snapshot()
	if len(got) != 1 || got[0].Score != 5 || v1 == 0 {
		t.Fatalf("after first publish: %v, %d", got, v1)
	}

	// Worse top score: rejected, version unchanged.
	b.Publish([]Candidate{cand(2, 3)})
	if _, v := b.Snapshot(); v != v1 {
		t.Fatalf("worse publish bumped version to %d", v)
	}

	// Same top but a fuller top-k: accepted with a version bump — the
	// leader is unchanged while ranks 2..k fill in.
	b.Publish([]Candidate{cand(1, 5), cand(3, 4)})
	got, v2 := b.Snapshot()
	if len(got) != 2 || got[0].Score != 5 || got[1].Score != 4 || v2 <= v1 {
		t.Fatalf("fill-in publish: %v, %d", got, v2)
	}

	// Exactly the same ranking again: dropped without a version bump.
	b.Publish([]Candidate{cand(3, 4), cand(1, 5)}) // unsorted input, same set
	if _, v := b.Snapshot(); v != v2 {
		t.Fatalf("identical publish bumped version to %d", v)
	}

	// Strictly better top: accepted.
	b.Publish([]Candidate{cand(4, 9)})
	got, v3 := b.Snapshot()
	if len(got) != 1 || got[0].Score != 9 || v3 <= v2 {
		t.Fatalf("better publish: %v, %d", got, v3)
	}

	// A nil board ignores everything.
	var nilBoard *Board
	nilBoard.Publish([]Candidate{cand(1, 1)})
	if got, v := nilBoard.Snapshot(); got != nil || v != 0 {
		t.Fatalf("nil board = %v, %d", got, v)
	}
}

// TestBoardConcurrentPublish checks the board under parallel publishers
// (race-detector gated): the final best never regresses below the highest
// published score.
func TestBoardConcurrentPublish(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Publish([]Candidate{cand(int32(w), float64(w*50+i))})
				b.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	got, _ := b.Snapshot()
	if len(got) == 0 || got[0].Score != 3*50+49 {
		t.Fatalf("final board = %v, want top score %d", got, 3*50+49)
	}
}

// Compile-time-ish guard that pools hand boards through correctly.
func TestPoolWithBoard(t *testing.T) {
	b := NewBoard()
	p := NewPool(nil, 1).WithBoard(b)
	if p.Board() != b {
		t.Fatal("pool lost its board")
	}
	p.PublishBest([]Candidate{cand(1, 2)})
	if got, _ := b.Snapshot(); len(got) != 1 {
		t.Fatalf("PublishBest did not reach the board: %v", got)
	}
	// Pools without boards are no-ops, not panics.
	NewPool(nil, 1).PublishBest([]Candidate{cand(1, 2)})
}

// Ensure predicate keys behave as the board's dedupe expects (guards the
// sameRanking comparison against Key collisions for distinct clauses).
func TestSameRankingDistinguishesPredicates(t *testing.T) {
	a := []Candidate{cand(1, 5)}
	b := []Candidate{cand(2, 5)}
	if sameRanking(a, b) {
		t.Fatal("distinct predicates judged identical")
	}
	if !sameRanking(a, []Candidate{cand(1, 5)}) {
		t.Fatal("identical ranking judged different")
	}
}
