package partition

import (
	"fmt"
	"sync"
	"testing"

	"github.com/scorpiondb/scorpion/internal/predicate"
)

// cand builds a candidate over a distinct single-value set clause so each
// has a unique predicate key.
func cand(code int32, score float64) Candidate {
	return Candidate{
		Pred:  predicate.MustNew(predicate.NewSetClause(0, "a", []int32{code})),
		Score: score,
	}
}

func TestBoardPublishImprovements(t *testing.T) {
	b := NewBoard()
	if got, v := b.Snapshot(); len(got) != 0 || v != 0 {
		t.Fatalf("empty board = %v, %d", got, v)
	}

	b.Publish([]Candidate{cand(1, 5)})
	got, v1 := b.Snapshot()
	if len(got) != 1 || got[0].Score != 5 || v1 == 0 {
		t.Fatalf("after first publish: %v, %d", got, v1)
	}

	// Worse top score: rejected, version unchanged.
	b.Publish([]Candidate{cand(2, 3)})
	if _, v := b.Snapshot(); v != v1 {
		t.Fatalf("worse publish bumped version to %d", v)
	}

	// Same top but a fuller top-k: accepted with a version bump — the
	// leader is unchanged while ranks 2..k fill in.
	b.Publish([]Candidate{cand(1, 5), cand(3, 4)})
	got, v2 := b.Snapshot()
	if len(got) != 2 || got[0].Score != 5 || got[1].Score != 4 || v2 <= v1 {
		t.Fatalf("fill-in publish: %v, %d", got, v2)
	}

	// Exactly the same ranking again: dropped without a version bump.
	b.Publish([]Candidate{cand(3, 4), cand(1, 5)}) // unsorted input, same set
	if _, v := b.Snapshot(); v != v2 {
		t.Fatalf("identical publish bumped version to %d", v)
	}

	// Strictly better top: accepted.
	b.Publish([]Candidate{cand(4, 9)})
	got, v3 := b.Snapshot()
	if len(got) != 1 || got[0].Score != 9 || v3 <= v2 {
		t.Fatalf("better publish: %v, %d", got, v3)
	}

	// A nil board ignores everything.
	var nilBoard *Board
	nilBoard.Publish([]Candidate{cand(1, 1)})
	if got, v := nilBoard.Snapshot(); got != nil || v != 0 {
		t.Fatalf("nil board = %v, %d", got, v)
	}
}

// TestBoardConcurrentPublish checks the board under parallel publishers
// (race-detector gated): the final best never regresses below the highest
// published score.
func TestBoardConcurrentPublish(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Publish([]Candidate{cand(int32(w), float64(w*50+i))})
				b.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	got, _ := b.Snapshot()
	if len(got) == 0 || got[0].Score != 3*50+49 {
		t.Fatalf("final board = %v, want top score %d", got, 3*50+49)
	}
}

// Compile-time-ish guard that pools hand boards through correctly.
func TestPoolWithBoard(t *testing.T) {
	b := NewBoard()
	p := NewPool(nil, 1).WithBoard(b)
	if p.Board() != b {
		t.Fatal("pool lost its board")
	}
	p.PublishBest([]Candidate{cand(1, 2)})
	if got, _ := b.Snapshot(); len(got) != 1 {
		t.Fatalf("PublishBest did not reach the board: %v", got)
	}
	// Pools without boards are no-ops, not panics.
	NewPool(nil, 1).PublishBest([]Candidate{cand(1, 2)})
}

// Ensure predicate keys behave as the board's dedupe expects (guards the
// sameRanking comparison against Key collisions for distinct clauses).
func TestSameRankingDistinguishesPredicates(t *testing.T) {
	a := []Candidate{cand(1, 5)}
	b := []Candidate{cand(2, 5)}
	if sameRanking(a, b) {
		t.Fatal("distinct predicates judged identical")
	}
	if !sameRanking(a, []Candidate{cand(1, 5)}) {
		t.Fatal("identical ranking judged different")
	}
}

// TestBoardChildren covers the sharded-search publication shape: children
// keep per-shard best lists, accepted child publications forward to the
// parent's global list, and AggregateVersion moves on any child progress.
func TestBoardChildren(t *testing.T) {
	b := NewBoard()
	s0 := b.Child("shard-0")
	s1 := b.Child("shard-1")
	if b.Child("shard-0") != s0 {
		t.Fatal("Child is not idempotent")
	}

	s0.Publish([]Candidate{cand(1, 5)})
	s1.Publish([]Candidate{cand(2, 9)})
	// A worse publication to shard-0 is rejected locally and not forwarded.
	agg := b.AggregateVersion()
	s0.Publish([]Candidate{cand(3, 1)})
	if b.AggregateVersion() != agg {
		t.Fatal("rejected child publication bumped the aggregate version")
	}

	global, _ := b.Snapshot()
	if len(global) == 0 || global[0].Score != 9 {
		t.Fatalf("parent best = %v, want shard-1's 9", global)
	}
	kids := b.Children()
	if len(kids) != 2 || kids[0].Tag != "shard-0" || kids[1].Tag != "shard-1" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Cands[0].Score != 5 || kids[1].Cands[0].Score != 9 {
		t.Fatalf("per-shard bests = %v / %v", kids[0].Cands, kids[1].Cands)
	}

	// A child improvement that does NOT change the global best still moves
	// the aggregate version (per-shard progress is observable).
	agg = b.AggregateVersion()
	s0.Publish([]Candidate{cand(4, 7)})
	if b.AggregateVersion() <= agg {
		t.Fatal("child-only improvement invisible in AggregateVersion")
	}
	if global, _ = b.Snapshot(); global[0].Score != 9 {
		t.Fatalf("global best regressed to %v", global[0].Score)
	}

	// Nil boards stay no-ops throughout.
	var nilBoard *Board
	if nilBoard.Child("x") != nil || nilBoard.Children() != nil || nilBoard.AggregateVersion() != 0 {
		t.Fatal("nil board children are not no-ops")
	}
}

// TestBoardChildrenConcurrent hammers child publication from many
// goroutines; run under -race in CI.
func TestBoardChildrenConcurrent(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			child := b.Child(fmt.Sprintf("shard-%d", s))
			for i := 0; i < 200; i++ {
				child.Publish([]Candidate{cand(int32(s), float64(i))})
			}
		}(s)
	}
	wg.Wait()
	kids := b.Children()
	if len(kids) != 4 {
		t.Fatalf("children = %d", len(kids))
	}
	for _, k := range kids {
		if len(k.Cands) == 0 || k.Cands[0].Score != 199 {
			t.Fatalf("shard %s best = %+v", k.Tag, k.Cands)
		}
	}
	if global, _ := b.Snapshot(); global[0].Score != 199 {
		t.Fatalf("global best = %v", global[0].Score)
	}
}
