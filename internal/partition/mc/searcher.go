package mc

import (
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
)

// searcher adapts the MC search to the partition.Searcher interface.
type searcher struct {
	scorer *influence.Scorer
	space  *predicate.Space
	params Params
}

// NewSearcher wraps an MC search as a partition.Searcher driven by the
// shared worker-pool runner.
func NewSearcher(scorer *influence.Scorer, space *predicate.Space, params Params) partition.Searcher {
	return &searcher{scorer: scorer, space: space, params: params}
}

func (s *searcher) Name() string { return "mc" }

func (s *searcher) Search(pool *partition.Pool) (*partition.Outcome, error) {
	res, err := runPool(pool, s.scorer, s.space, s.params)
	if err != nil {
		return nil, err
	}
	return &partition.Outcome{
		Candidates:  res.Candidates,
		Work:        int64(res.Iterations),
		Pruned:      res.Pruned,
		Escalated:   res.Escalated,
		Interrupted: res.Interrupted,
	}, nil
}
