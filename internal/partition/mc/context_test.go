package mc

import (
	"context"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/partition"
)

// TestParallelCandidatesIdenticalToSerial asserts the MC acceptance
// criterion: a Workers=8 run returns exactly the serial run's candidates —
// same predicates, same order, bit-equal scores.
func TestParallelCandidatesIdenticalToSerial(t *testing.T) {
	scorer, space, _ := setup(t, 2, 200, 80, 0.1)
	serial, err := Run(scorer, space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := RunContext(context.Background(), scorer, space, Params{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Best.Pred.Key() != serial.Best.Pred.Key() || par.Best.Score != serial.Best.Score {
			t.Fatalf("workers=%d: best differs: %s %v vs %s %v", workers,
				serial.Best.Pred.Key(), serial.Best.Score, par.Best.Pred.Key(), par.Best.Score)
		}
		if len(par.Candidates) != len(serial.Candidates) {
			t.Fatalf("workers=%d: candidate counts differ: %d vs %d",
				workers, len(serial.Candidates), len(par.Candidates))
		}
		for i := range serial.Candidates {
			if serial.Candidates[i].Pred.Key() != par.Candidates[i].Pred.Key() ||
				serial.Candidates[i].Score != par.Candidates[i].Score {
				t.Fatalf("workers=%d: candidate %d differs", workers, i)
			}
		}
	}
}

// TestRunContextCancellation checks cancelled runs stop promptly and are
// flagged interrupted rather than erroring.
func TestRunContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		scorer, space, _ := setup(t, 3, 300, 80, 0.1)
		// Cancel before the run starts: a deadline mid-run is a race against
		// how fast the search happens to be, and the compressed-provenance
		// encodings made small searches finish inside any sane timeout.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := RunContext(ctx, scorer, space, Params{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Interrupted {
			t.Fatalf("workers=%d: cancelled run not marked interrupted", workers)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: cancellation took %s", workers, elapsed)
		}
	}
}

// TestSearcherInterface drives MC through the shared runner.
func TestSearcherInterface(t *testing.T) {
	scorer, space, _ := setup(t, 2, 150, 80, 0.1)
	s := NewSearcher(scorer, space, Params{})
	if s.Name() != "mc" {
		t.Fatalf("Name = %q", s.Name())
	}
	out, err := partition.RunSearch(context.Background(), 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interrupted || len(out.Candidates) == 0 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
}
