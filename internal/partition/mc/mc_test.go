package mc

import (
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

func setup(t testing.TB, dims, perGroup int, mu, c float64) (*influence.Scorer, *predicate.Space, *synth.Dataset) {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Dims: dims, TuplesPerGroup: perGroup, Groups: 6, OutlierGroups: 3, Mu: mu, Seed: 33,
	})
	task, space, err := eval.SynthTask(ds, "sum", 0.5, c)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	return scorer, space, ds
}

func TestMCFindsPlantedCube(t *testing.T) {
	scorer, space, ds := setup(t, 2, 300, 80, 0.1)
	res, err := Run(scorer, space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score <= 0 {
		t.Fatalf("best score = %v", res.Best.Score)
	}
	acc := eval.Score(res.Best.Pred, ds.Table, eval.OutlierUnion(scorer.Task()), ds.OuterRows)
	if acc.F1 < 0.5 {
		t.Errorf("F1 = %v (prec %v rec %v), pred = %v",
			acc.F1, acc.Precision, acc.Recall, res.Best.Pred)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
}

func TestMCHigherDimensional(t *testing.T) {
	scorer, space, ds := setup(t, 3, 250, 80, 0.1)
	res, err := Run(scorer, space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	acc := eval.Score(res.Best.Pred, ds.Table, eval.OutlierUnion(scorer.Task()), ds.OuterRows)
	if acc.F1 < 0.4 {
		t.Errorf("3D F1 = %v, pred = %v", acc.F1, res.Best.Pred)
	}
}

func TestMCRequiresAntiMonotonicAggregate(t *testing.T) {
	scorer, space, _ := setup(t, 2, 100, 80, 0.1)
	task := *scorer.Task()
	task.Agg = aggregate.Avg{} // independent but not anti-monotonic
	s2, err := influence.NewScorer(&task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s2, space, Params{}); err == nil {
		t.Fatal("expected error for non-anti-monotonic aggregate")
	}
}

func TestMCRejectsNegativeDataForSum(t *testing.T) {
	// SUM's check(D) must veto data with negative values.
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 100, Groups: 4, OutlierGroups: 2,
		Mu: 80, Seed: 3, AllowNegative: true,
	})
	task, space, err := eval.SynthTask(ds, "sum", 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(scorer, space, Params{}); err == nil {
		t.Fatal("expected check(D) failure for negative values")
	}
}

func TestMCCountAggregate(t *testing.T) {
	// COUNT outliers: the outlier group has extra tuples clustered in a box.
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "x", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	// Hold-out group: 100 uniform tuples.
	for i := 0; i < 100; i++ {
		b.MustAppend(relation.Row{relation.S("hold"), relation.F(float64(i))})
	}
	// Outlier group: 100 uniform + 80 extra packed into x ∈ [40,50).
	for i := 0; i < 100; i++ {
		b.MustAppend(relation.Row{relation.S("out"), relation.F(float64(i))})
	}
	for i := 0; i < 80; i++ {
		b.MustAppend(relation.Row{relation.S("out"), relation.F(40 + float64(i%10))})
	}
	tbl := b.Build()
	hold := relation.NewRowSet(tbl.NumRows())
	out := relation.NewRowSet(tbl.NumRows())
	for r := 0; r < 100; r++ {
		hold.Add(r)
	}
	for r := 100; r < 280; r++ {
		out.Add(r)
	}
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Count{},
		AggCol:   -1,
		Outliers: []influence.Group{{Key: "out", Rows: out, Direction: influence.TooHigh}},
		HoldOuts: []influence.Group{{Key: "hold", Rows: hold}},
		Lambda:   0.5,
		C:        0.2,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	space, err := predicate.NewSpace(tbl, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(scorer, space, Params{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The dense region {40..49} should dominate the explanation (at 10-bin
	// granularity the tightest covering range is [39.6, 49.5)).
	cl := res.Best.Pred.Clauses()
	if len(cl) != 1 || cl[0].Lo > 40.0+1e-6 || cl[0].Hi <= 49.0-1e-6 {
		t.Errorf("best predicate = %v, want a range covering {40..49}", res.Best.Pred)
	}
}

func TestMCDiscreteAttributes(t *testing.T) {
	// Outlier spending concentrated on one recipient (EXPENSE-shaped).
	schema := relation.MustSchema(
		relation.Column{Name: "day", Kind: relation.Discrete},
		relation.Column{Name: "recipient", Kind: relation.Discrete},
		relation.Column{Name: "amt", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	recips := []string{"r1", "r2", "r3", "big"}
	for i := 0; i < 120; i++ {
		day := "normal"
		recip := recips[i%3] // never "big"
		amt := 100.0
		b.MustAppend(relation.Row{relation.S(day), relation.S(recip), relation.F(amt)})
	}
	for i := 0; i < 120; i++ {
		recip := recips[i%4]
		amt := 100.0
		if recip == "big" {
			amt = 50000
		}
		b.MustAppend(relation.Row{relation.S("spike"), relation.S(recip), relation.F(amt)})
	}
	tbl := b.Build()
	normal := relation.NewRowSet(tbl.NumRows())
	spike := relation.NewRowSet(tbl.NumRows())
	for r := 0; r < 120; r++ {
		normal.Add(r)
	}
	for r := 120; r < 240; r++ {
		spike.Add(r)
	}
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Sum{},
		AggCol:   tbl.Schema().MustIndex("amt"),
		Outliers: []influence.Group{{Key: "spike", Rows: spike, Direction: influence.TooHigh}},
		HoldOuts: []influence.Group{{Key: "normal", Rows: normal}},
		Lambda:   0.5,
		C:        0.5,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	space, err := predicate.NewSpace(tbl, []string{"recipient"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(scorer, space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best.Pred.Format(tbl); got != "recipient in ('big')" {
		t.Errorf("best = %q, want recipient in ('big')", got)
	}
}

func TestMCMaxDiscreteValuesCap(t *testing.T) {
	scorer, space, _ := setup(t, 2, 120, 80, 0.1)
	_, err := Run(scorer, space, Params{MaxDiscreteValues: 2})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMCPruningKeepsOptimalReachable(t *testing.T) {
	// With pruning, MC must still match a prune-free run's best score on a
	// small instance.
	scorer, space, _ := setup(t, 2, 150, 80, 0.1)
	res, err := Run(scorer, space, Params{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Compare against a wide-open run with more units allowed.
	scorer2, space2, _ := setup(t, 2, 150, 80, 0.1)
	res2, err := Run(scorer2, space2, Params{Bins: 8, MaxUnits: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Score < res2.Best.Score-1e-9 {
		t.Errorf("pruned best %v < unpruned best %v", res.Best.Score, res2.Best.Score)
	}
}
