// Package mc implements Scorpion's bottom-up MC partitioner (§6.2) for
// independent, anti-monotonic aggregates (COUNT, SUM on non-negative data).
// It adapts the CLIQUE subspace-clustering algorithm: single-attribute units
// are scored, merged, pruned against the best predicate so far, and
// intersected apriori-style to build higher-dimensional predicates until no
// merged predicate improves on the best.
//
// Pruning (§6.2, corrected): the paper's PRUNE pseudocode as printed keeps
// exactly the candidates it argues are prunable; we implement the stated
// intent. A unit p is pruned only when BOTH optimistic bounds fall below the
// best influence so far:
//
//  1. its hold-out-free influence λ·inf(O, ∅, p, V) — because a refinement
//     of p may escape hold-out penalties (Figure 6a) but cannot gain
//     outlier influence beyond anti-monotonic Δ, and
//  2. λ times the maximum single-tuple influence inside p — because
//     influence is only anti-monotonic when the best tuple of a subset
//     cannot dominate the subset's mean (the {1, 50, 100} SUM example).
package mc

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/estimate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Params configures the MC partitioner.
type Params struct {
	// Bins is the number of equi-width units per continuous attribute
	// (paper: 15).
	Bins int
	// MaxDiscreteValues caps the units of a discrete attribute to the
	// values with the highest single-tuple influence; 0 = no cap.
	MaxDiscreteValues int
	// MaxIterations caps the dimensionality growth; 0 = number of
	// attributes.
	MaxIterations int
	// MaxUnits caps the candidate population per generation (safety valve
	// against joins exploding on dense data); 0 = 4096.
	MaxUnits int
	// Merge configures the embedded Merger.
	Merge merge.Params
	// Domains optionally overrides the continuous unit-grid extents per
	// column index (see naive.Params.Domains): a sharded search passes the
	// global outlier extents so every shard builds an identical unit grid.
	Domains map[int]predicate.Domain
	// Estimator, when non-nil, switches the pruning bounds to the anytime
	// path: each unit first tries the cheap cached max-tuple bound, then an
	// interval estimate of its outlier-only influence at increasing sample
	// fractions, and pays the exact outlier-only scan only while the
	// interval still straddles the generation's best score. Keep/drop
	// decisions match the exact path up to the estimator's confidence.
	// Nil runs the exact bounds.
	Estimator *estimate.Estimator
}

func (p Params) withDefaults() Params {
	if p.Bins <= 0 {
		p.Bins = 15
	}
	if p.MaxUnits <= 0 {
		p.MaxUnits = 4096
	}
	return p
}

// Result is the outcome of an MC run.
type Result struct {
	// Best is the most influential predicate found.
	Best partition.Candidate
	// Candidates holds the final merged candidate list, descending.
	Candidates []partition.Candidate
	// Iterations is the number of completed intersection rounds.
	Iterations int
	// Pruned counts units the anytime path dropped on an interval upper
	// bound; Escalated counts those that needed the exact outlier-only
	// scan. Both stay 0 on the exact path.
	Pruned    int64
	Escalated int64
	// Interrupted reports whether context cancellation cut the search
	// short; Candidates then hold the best predicates found so far.
	Interrupted bool
}

// unit is a candidate predicate with its cached row set over g_O.
type unit struct {
	pred predicate.Predicate
	rows *relation.RowSet
	// dims is the number of constrained attributes.
	dims  int
	score float64
}

// Run executes the MC algorithm, serially and without cancellation.
func Run(scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	return RunContext(context.Background(), scorer, space, params, 1)
}

// RunContext is Run with cancellation and a worker budget: unit scoring,
// pruning bounds, per-tuple influence labeling and merge expansion fan out
// over a shared pool, and the bottom-up loop stops early (returning the
// best candidates found so far with Result.Interrupted set) once ctx is
// cancelled. workers <= 0 uses GOMAXPROCS. The candidate output is
// identical for any worker count.
func RunContext(ctx context.Context, scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Result, error) {
	return runPool(partition.NewPool(ctx, workers), scorer, space, params)
}

// runPool is the search core shared by every entry point.
func runPool(pool *partition.Pool, scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	params = params.withDefaults()
	task := scorer.Task()
	if !task.Agg.Independent() {
		return nil, fmt.Errorf("mc: aggregate %q is not independent", task.Agg.Name())
	}
	am, ok := task.Agg.(aggregate.AntiMonotonic)
	if !ok {
		return nil, fmt.Errorf("mc: aggregate %q is not anti-monotonic; use DT or NAIVE", task.Agg.Name())
	}
	for _, g := range task.Outliers {
		if !am.Check(groupValues(task, g)) {
			return nil, fmt.Errorf("mc: outlier group %q violates %s's anti-monotonicity constraint", g.Key, task.Agg.Name())
		}
	}

	m := &runner{scorer: scorer, space: space, params: params, task: task, pool: pool}
	m.init()
	return m.run()
}

type runner struct {
	scorer *influence.Scorer
	space  *predicate.Space
	params Params
	task   *influence.Task
	pool   *partition.Pool

	gO       *relation.RowSet // union of outlier groups
	tupleInf []float64        // per-row influence (NaN outside g_O)
	units    []unit
	// pruned/escalated tally the anytime prune outcomes (see Result); they
	// are atomics because prune bounds fan out over the pool.
	pruned    atomic.Int64
	escalated atomic.Int64
	// interrupted records a cancellation observed during a parallel phase;
	// partially-scored state must not feed best-so-far updates.
	interrupted bool
}

// groupValues projects the aggregate attribute of a group.
func groupValues(task *influence.Task, g influence.Group) []float64 {
	if task.AggCol < 0 {
		return make([]float64, g.Rows.Count())
	}
	col := task.Table.Floats(task.AggCol)
	out := make([]float64, 0, g.Rows.Count())
	g.Rows.ForEach(func(r int) { out = append(out, col[r]) })
	return out
}

// init precomputes g_O, per-tuple influences, and the generation-1 units.
// The per-tuple labeling and unit scoring — the dominant setup costs — fan
// out over the pool; each task writes a distinct slot, so the result is
// identical for any worker count.
func (m *runner) init() {
	t := m.task
	m.gO = relation.NewRowSet(t.Table.NumRows())
	m.tupleInf = make([]float64, t.Table.NumRows())
	for i := range m.tupleInf {
		m.tupleInf[i] = math.NaN()
	}
	type ref struct{ gi, row int }
	var refs []ref
	for gi, g := range t.Outliers {
		g.Rows.ForEach(func(r int) { refs = append(refs, ref{gi, r}) })
		m.gO.Or(g.Rows)
	}
	if err := m.pool.ForEach(len(refs), func(i int) {
		m.tupleInf[refs[i].row] = m.scorer.TupleOutlierInfluence(refs[i].gi, refs[i].row)
	}); err != nil {
		m.interrupted = true
		return
	}
	for _, col := range m.space.Columns() {
		if m.space.Kind(col) == relation.Continuous {
			m.initContinuousUnits(col)
		} else {
			m.initDiscreteUnits(col)
		}
	}
	m.scoreUnits()
}

// scoreUnits fills every unit's influence score across the pool. On
// cancellation it flags the runner interrupted so partial scores are never
// consumed.
func (m *runner) scoreUnits() {
	if err := m.pool.ForEach(len(m.units), func(i int) {
		m.units[i].score = m.scorer.Influence(m.units[i].pred)
	}); err != nil {
		m.interrupted = true
	}
}

func (m *runner) initContinuousUnits(col int) {
	t := m.task.Table
	st := t.FloatStats(col, m.gO)
	if st.Count == 0 {
		return
	}
	if dom, ok := m.params.Domains[col]; ok && dom.Hi > dom.Lo {
		st.Min, st.Max = dom.Lo, dom.Hi
	}
	if st.Max <= st.Min {
		return
	}
	name := m.space.Name(col)
	width := (st.Max - st.Min) / float64(m.params.Bins)
	for i := 0; i < m.params.Bins; i++ {
		lo := st.Min + float64(i)*width
		hi := st.Min + float64(i+1)*width
		p := predicate.MustNew(predicate.NewRangeClause(col, name, lo, hi, i == m.params.Bins-1))
		m.addUnit(p)
	}
}

func (m *runner) initDiscreteUnits(col int) {
	t := m.task.Table
	codes := t.DistinctCodes(col, m.gO)
	name := m.space.Name(col)
	if cap := m.params.MaxDiscreteValues; cap > 0 && len(codes) > cap {
		codes = m.topCodesByInfluence(col, codes, cap)
	}
	for _, c := range codes {
		p := predicate.MustNew(predicate.NewSetClause(col, name, []int32{c}))
		m.addUnit(p)
	}
}

// topCodesByInfluence keeps the cap codes whose best tuple influence is
// highest — the only codes whose units could survive pruning.
func (m *runner) topCodesByInfluence(col int, codes []int32, cap int) []int32 {
	colCodes := m.task.Table.Codes(col)
	best := make(map[int32]float64, len(codes))
	for _, c := range codes {
		best[c] = math.Inf(-1)
	}
	m.gO.ForEach(func(r int) {
		c := colCodes[r]
		if v := m.tupleInf[r]; v > best[c] {
			best[c] = v
		}
	})
	kept := append([]int32(nil), codes...)
	// Partial selection: simple sort is fine at these cardinalities.
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			if best[kept[j]] > best[kept[i]] {
				kept[i], kept[j] = kept[j], kept[i]
			}
		}
	}
	return kept[:cap]
}

func (m *runner) addUnit(p predicate.Predicate) {
	rows := p.Eval(m.task.Table.Data(), m.gO)
	if rows.IsEmpty() {
		return
	}
	m.units = append(m.units, unit{pred: p, rows: rows, dims: p.NumClauses()})
}

// run is the main MC loop (the paper's pseudocode, §6.2). Two deliberate
// clarifications of the pseudocode:
//
//   - `best` starts as Null, so the first iteration's line-12 filter keeps
//     every merged predicate (the paper's Merger also returns unexpanded
//     inputs, so line 15 retains all units initially);
//   - pruning compares a unit's optimistic bounds against the best score of
//     its OWN generation. Comparing fine-grained k-dim units against the
//     globally best merged (much larger) predicate would discard exactly
//     the cells the next intersection round needs — the bounds only argue
//     about refinements, while the Merger builds supersets.
func (m *runner) run() (*Result, error) {
	res := &Result{}
	if m.interrupted {
		res.Interrupted = true
		return res, nil
	}
	if len(m.units) == 0 {
		return nil, fmt.Errorf("mc: no non-empty units over the outlier groups")
	}
	maxIter := m.params.MaxIterations
	if maxIter <= 0 {
		maxIter = len(m.space.Columns())
	}

	merger := merge.New(m.scorer, m.space, m.params.Merge).WithPool(m.pool)
	global := partition.Candidate{Score: math.Inf(-1)}
	haveGlobal := false
	prevBest := math.Inf(-1) // the pseudocode's `best`: Null initially

	// One span per MC generation; the previous generation's span closes at
	// the top of the next iteration (and after the loop), so every break
	// path stays span-balanced without restructuring the exits.
	parent := obs.SpanFrom(m.pool.Context())
	var genSpan *obs.Span
	for iter := 0; iter < maxIter && len(m.units) > 0; iter++ {
		genSpan.End()
		if m.pool.Cancelled() {
			m.interrupted = true
			break
		}
		genSpan = parent.Child("mc.generation")
		genSpan.SetAttr("generation", iter)
		genSpan.SetAttr("units", len(m.units))
		if iter > 0 {
			m.units = m.intersect(m.units)
			if len(m.units) == 0 {
				break
			}
			m.scoreUnits()
			if m.interrupted {
				break // partial scores must not feed best-so-far updates
			}
		}
		genBest := math.Inf(-1)
		for _, u := range m.units {
			if u.score > genBest {
				genBest = u.score
			}
			if u.score > global.Score {
				global = partition.Candidate{Pred: u.pred, Score: u.score}
				haveGlobal = true
			}
		}
		// Line 10: prune units whose optimistic bounds cannot reach this
		// generation's best.
		m.units = m.prune(m.units, genBest)
		// Line 11: merge adjacent same-subspace units.
		cands := make([]partition.Candidate, len(m.units))
		for i, u := range m.units {
			cands[i] = partition.Candidate{Pred: u.pred, Score: u.score}
		}
		merged := merger.Merge(cands)
		res.Candidates = mergeCandidateLists(res.Candidates, merged)
		// Each iteration's accumulated candidates are a valid partial
		// answer; let observers see them mid-run.
		m.pool.PublishBest(res.Candidates)
		for _, c := range merged {
			if c.Score > global.Score {
				global = c
				haveGlobal = true
			}
		}
		// Line 12: keep merged predicates that beat the previous best.
		var winners []partition.Candidate
		for _, c := range merged {
			if c.Score > prevBest {
				winners = append(winners, c)
			}
		}
		res.Iterations = iter + 1
		if len(winners) == 0 {
			break
		}
		// Line 15: retain units contained in some winner.
		winnerRows := make([]*relation.RowSet, len(winners))
		if err := m.pool.ForEach(len(winners), func(i int) {
			winnerRows[i] = winners[i].Pred.Eval(m.task.Table.Data(), m.gO)
		}); err != nil {
			m.interrupted = true
			break
		}
		var kept []unit
		for _, u := range m.units {
			for _, wr := range winnerRows {
				if u.rows.SubsetOf(wr) {
					kept = append(kept, u)
					break
				}
			}
		}
		m.units = kept
		// Line 16: update best.
		if top, ok := partition.Top(winners); ok && top.Score > prevBest {
			prevBest = top.Score
		}
	}
	genSpan.End()
	res.Interrupted = m.interrupted || m.pool.Cancelled()
	res.Pruned = m.pruned.Load()
	res.Escalated = m.escalated.Load()
	if !haveGlobal {
		if res.Interrupted {
			// Cancelled before the first generation completed: return the
			// (empty) partial result rather than an error.
			return res, nil
		}
		return nil, fmt.Errorf("mc: search produced no candidates")
	}
	res.Best = global
	res.Candidates = mergeCandidateLists(res.Candidates, []partition.Candidate{global})
	partition.SortByScore(res.Candidates)
	res.Candidates = partition.Dedupe(res.Candidates)
	return res, nil
}

// prune drops units whose optimistic bounds cannot beat the generation's
// best score (see package comment). Both bounds are unweighted (no λ, no
// hold-out penalty), making them true upper bounds of the objective. The
// bound computations fan out over the pool; the keep/drop filter runs on
// the coordinating goroutine, preserving unit order. A cancellation
// mid-computation skips pruning entirely (keeping extra units is always
// sound) and lets the main loop observe the interruption.
func (m *runner) prune(units []unit, bestScore float64) []unit {
	if math.IsInf(bestScore, -1) {
		return units
	}
	keep := make([]bool, len(units))
	if err := m.pool.ForEach(len(units), func(i int) {
		u := units[i]
		if est := m.params.Estimator; est != nil {
			// Anytime ordering: the cached max-tuple bound is a few array
			// lookups, so it goes first; the interval ladder then settles
			// most units on a partial outlier sample, and only units whose
			// interval straddles bestScore at every level pay the exact
			// outlier-only scan.
			maxTuple := math.Inf(-1)
			u.rows.ForEach(func(r int) {
				if v := m.tupleInf[r]; v > maxTuple {
					maxTuple = v
				}
			})
			if maxTuple >= bestScore {
				keep[i] = true
				return
			}
			for level := 0; level < est.Levels(); level++ {
				iv := est.OutlierInterval(u.pred, level)
				if iv.Hi < bestScore {
					m.pruned.Add(1)
					return
				}
				if iv.Lo >= bestScore {
					keep[i] = true
					return
				}
			}
			m.escalated.Add(1)
			keep[i] = m.scorer.InfluenceOutliersOnly(u.pred) >= bestScore
			return
		}
		if m.scorer.InfluenceOutliersOnly(u.pred) >= bestScore {
			keep[i] = true
			return
		}
		maxTuple := math.Inf(-1)
		u.rows.ForEach(func(r int) {
			if v := m.tupleInf[r]; v > maxTuple {
				maxTuple = v
			}
		})
		keep[i] = maxTuple >= bestScore
	}); err != nil {
		return units
	}
	var kept []unit
	for i, u := range units {
		if keep[i] {
			kept = append(kept, u)
		}
	}
	return kept
}

// intersect performs the apriori join: pairs of k-dim units sharing k−1
// attributes produce (k+1)-dim units. Row sets compose by AND, so no fresh
// table scans are needed.
func (m *runner) intersect(units []unit) []unit {
	seen := make(map[string]bool)
	var out []unit
	for i := 0; i < len(units); i++ {
		for j := i + 1; j < len(units); j++ {
			a, b := units[i], units[j]
			if a.dims != b.dims || sharedAttrs(a.pred, b.pred) != a.dims-1 {
				continue
			}
			p, ok := a.pred.Intersect(b.pred)
			if !ok || p.NumClauses() != a.dims+1 {
				continue
			}
			key := p.Key()
			if seen[key] {
				continue
			}
			seen[key] = true
			rows := a.rows.Intersect(b.rows)
			if rows.IsEmpty() {
				continue
			}
			out = append(out, unit{pred: p, rows: rows, dims: a.dims + 1})
			if len(out) >= m.params.MaxUnits {
				return out
			}
		}
	}
	return out
}

// sharedAttrs counts attributes constrained by both predicates.
func sharedAttrs(a, b predicate.Predicate) int {
	n := 0
	for _, c := range a.Clauses() {
		if _, ok := b.ClauseOn(c.Col); ok {
			n++
		}
	}
	return n
}

// mergeCandidateLists concatenates and dedupes candidate lists.
func mergeCandidateLists(a, b []partition.Candidate) []partition.Candidate {
	out := append(a, b...)
	partition.SortByScore(out)
	return partition.Dedupe(out)
}
