package naive

import (
	"fmt"
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
)

type discreteFixture struct {
	task  *influence.Task
	space *predicate.Space
}

// buildDiscreteTask builds a table whose outlier group's anomaly is fully
// explained by the discrete attribute src = 'bad'.
func buildDiscreteTask(t testing.TB) discreteFixture {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "src", Kind: relation.Discrete},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	srcs := []string{"good1", "good2", "bad"}
	for i := 0; i < 60; i++ {
		src := srcs[i%3]
		v := 10.0 + float64(i%5)
		if src == "bad" {
			v = 100 + float64(i%5)
		}
		b.MustAppend(relation.Row{relation.S("out"), relation.S(src), relation.F(v)})
	}
	for i := 0; i < 60; i++ {
		// Hold-out group: 'bad' behaves normally here.
		b.MustAppend(relation.Row{relation.S("hold"), relation.S(srcs[i%3]), relation.F(10 + float64(i%5))})
	}
	tbl := b.Build()

	q, err := query.FromSQL(tbl, "SELECT avg(v), g FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Lookup("out")
	if !ok {
		t.Fatal("missing group out")
	}
	hold, ok := res.Lookup("hold")
	if !ok {
		t.Fatal("missing group hold")
	}
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Avg{},
		AggCol:   tbl.Schema().MustIndex("v"),
		Outliers: []influence.Group{{Key: "out", Rows: out.Group, Direction: influence.TooHigh}},
		HoldOuts: []influence.Group{{Key: "hold", Rows: hold.Group}},
		Lambda:   0.5,
		C:        1,
	}
	space, err := predicate.NewSpace(tbl, []string{"src"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return discreteFixture{task: task, space: space}
}

// Ensure fmt is referenced (kept for debugging helpers).
var _ = fmt.Sprintf
