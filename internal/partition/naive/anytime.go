package naive

import (
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
)

// anytimeBatch is how many enumerated predicates one anytime batch holds.
// Batches are the determinism unit: the top-k frontier is frozen at each
// batch boundary, estimate/escalate decisions inside a batch fan out over
// the pool against that frozen threshold, and the batch's surviving exact
// scores fold back in enumeration order before the next batch starts — so
// pruning decisions never depend on goroutine scheduling and the output is
// identical for any worker count (the threshold merely lags one batch,
// trading a sliver of pruning for reproducibility).
const anytimeBatch = 1024

// runAnytime is the estimate-then-escalate scoring pipeline behind
// Params.Estimator: NAIVE streams its enumeration through the estimator's
// refinement ladder, pruning candidates whose influence interval upper
// bound falls below the running top-k frontier (plus the epsilon margin)
// and exact-scoring only the escalated remainder.
func runAnytime(e *enumerator, res *Result, pool *partition.Pool, params Params, maxCard, maxClauses int) {
	est := params.Estimator
	keeper := topkKeeper{k: params.TopK}
	tracker := partition.NewAnytimeTracker(params.TopK, est.Epsilon())

	type item struct {
		p   predicate.Predicate
		seq int64
	}
	type slot struct {
		ok    bool
		score float64
	}
	parent := obs.SpanFrom(pool.Context())
	var batches int
	var batch []item
	flush := func() {
		if len(batch) == 0 {
			return
		}
		// One span per flushed batch (the determinism unit): the trace
		// shows how the ladder's prune rate evolves as the frontier
		// tightens. The span cap in obs bounds deep enumerations.
		span := parent.Child("naive.batch")
		batches++
		prunedBefore := tracker.Pruned()
		defer func() {
			span.SetAttr("pruned", tracker.Pruned()-prunedBefore)
			span.End()
		}()
		span.SetAttr("size", len(batch))
		thr := tracker.Threshold()
		slots := make([]slot, len(batch))
		_ = pool.ForEach(len(batch), func(i int) {
			score, pruned := est.Score(batch[i].p, thr)
			if pruned {
				tracker.CountPruned()
				return
			}
			slots[i] = slot{ok: true, score: score}
		})
		// Fold in enumeration order; a cancellation mid-batch leaves the
		// unprocessed slots unset, which simply drops them from the
		// (already partial) result.
		for i, s := range slots {
			if !s.ok {
				continue
			}
			tracker.Observe(s.score)
			keeper.consider(scoredPred{partition.Candidate{Pred: batch[i].p, Score: s.score}, batch[i].seq})
		}
		if pool.Board() != nil {
			pool.PublishBest(keeper.ranked())
		}
		batch = batch[:0]
	}
	e.sink = func(p predicate.Predicate, seq int64) {
		batch = append(batch, item{p, seq})
		if len(batch) >= anytimeBatch {
			flush()
		}
	}
	e.run(maxCard, maxClauses)
	flush()
	if batches > 0 {
		parent.SetAttr("naive_batches", batches)
	}
	if pool.Cancelled() {
		e.interrupted = true
	}
	res.TopK = keeper.ranked()
	res.Pruned = tracker.Pruned()
	res.Escalated = tracker.Escalated()
}
