package naive

import (
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// smallSetup builds a small 2D Easy dataset with SUM and the given c.
func smallSetup(t testing.TB, c float64) (*influence.Scorer, *predicate.Space, *synth.Dataset) {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 150, Groups: 4, OutlierGroups: 2, Mu: 80, Seed: 5,
	})
	task, space, err := eval.SynthTask(ds, "sum", 0.5, c)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	return scorer, space, ds
}

func TestNaiveFindsPlantedCube(t *testing.T) {
	scorer, space, ds := smallSetup(t, 0.1)
	res, err := Run(scorer, space, Params{Bins: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Enumerated == 0 {
		t.Fatal("nothing enumerated")
	}
	if res.Best.Score <= 0 {
		t.Fatalf("best score = %v, want positive", res.Best.Score)
	}
	acc := eval.Score(res.Best.Pred, ds.Table, eval.OutlierUnion(scorer.Task()), ds.OuterRows)
	if acc.F1 < 0.5 {
		t.Errorf("F1 = %v (prec %v, rec %v), want ≥ 0.5; pred = %v",
			acc.F1, acc.Precision, acc.Recall, res.Best.Pred)
	}
}

func TestNaiveTraceIsMonotone(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	res, err := Run(scorer, space, Params{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Score <= res.Trace[i-1].Score {
			t.Fatalf("trace not strictly improving at %d: %v then %v",
				i, res.Trace[i-1].Score, res.Trace[i].Score)
		}
		if res.Trace[i].Elapsed < res.Trace[i-1].Elapsed {
			t.Fatalf("trace time went backwards at %d", i)
		}
	}
	last := res.Trace[len(res.Trace)-1]
	if last.Score != res.Best.Score {
		t.Errorf("final trace score %v != best %v", last.Score, res.Best.Score)
	}
}

func TestNaiveDeadline(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.5)
	start := time.Now()
	res, err := Run(scorer, space, Params{Bins: 40, Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !res.TimedOut {
		t.Skip("search finished before the deadline on this machine")
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline ignored: ran %v", elapsed)
	}
	// Even a timed-out run must return its best-so-far.
	if res.Best.Pred.IsTrue() && res.Best.Score == 0 && res.Enumerated == 0 {
		t.Error("timed-out run returned nothing")
	}
}

func TestNaiveTopKOrdering(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	res, err := Run(scorer, space, Params{Bins: 6, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 || len(res.TopK) > 5 {
		t.Fatalf("TopK size = %d", len(res.TopK))
	}
	for i := 1; i < len(res.TopK); i++ {
		if res.TopK[i].Score > res.TopK[i-1].Score {
			t.Fatalf("TopK not descending at %d", i)
		}
	}
	if res.TopK[0].Score != res.Best.Score {
		t.Errorf("TopK[0] %v != Best %v", res.TopK[0].Score, res.Best.Score)
	}
}

func TestNaiveDiscreteSubsets(t *testing.T) {
	// Dataset with one discrete attribute whose value "bad" marks outliers.
	scorerTask := buildDiscreteTask(t)
	scorer, err := influence.NewScorer(scorerTask.task)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(scorer, scorerTask.space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	// The best predicate must single out the "bad" source.
	got := res.Best.Pred.Format(scorerTask.task.Table.Data())
	if got != "src in ('bad')" {
		t.Errorf("best predicate = %q, want src in ('bad')", got)
	}
}

func TestNaiveMaxClauses(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	res, err := Run(scorer, space, Params{Bins: 6, MaxClauses: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.TopK {
		if c.Pred.NumClauses() > 1 {
			t.Fatalf("predicate %v exceeds MaxClauses=1", c.Pred)
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	seq, err := Run(scorer, space, Params{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	scorer2, space2, _ := smallSetup(t, 0.1)
	par, err := RunParallel(scorer2, space2, Params{Bins: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Enumerated != seq.Enumerated {
		t.Errorf("enumerated %d (parallel) vs %d (sequential)", par.Enumerated, seq.Enumerated)
	}
	if par.Best.Score < seq.Best.Score-1e-9 {
		t.Errorf("parallel best %v < sequential best %v", par.Best.Score, seq.Best.Score)
	}
	if len(par.Trace) != 0 {
		t.Error("parallel mode must not record a trace")
	}
}

func TestRunParallelSingleWorkerDelegates(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	res, err := RunParallel(scorer, space, Params{Bins: 6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Error("single-worker parallel run should delegate to Run (with trace)")
	}
}
