// Package naive implements Scorpion's exhaustive NAIVE partitioner (§4.2),
// with the §8.2 modifications: predicates are enumerated in increasing
// complexity (max discrete-clause size, then number of clauses), the search
// respects a wall-clock deadline, and the best predicate found so far is
// recorded over time so convergence curves (Figure 11) can be reproduced.
//
// NAIVE makes no assumptions about the aggregate, so it is the fallback for
// black-box user-defined aggregates.
package naive

import (
	"fmt"
	"time"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Params configures the NAIVE search.
type Params struct {
	// Bins is the number of equi-width ranges per continuous attribute
	// (the paper uses 15).
	Bins int
	// MaxClauses caps the number of attributes per predicate; 0 = all.
	MaxClauses int
	// MaxDiscreteSubset caps discrete clause sizes; 0 = attribute cardinality.
	MaxDiscreteSubset int
	// Deadline bounds the wall-clock search time; 0 = unbounded.
	Deadline time.Duration
	// TopK is how many of the best candidates to retain (default 10).
	TopK int
}

// withDefaults fills zero fields with paper defaults.
func (p Params) withDefaults() Params {
	if p.Bins <= 0 {
		p.Bins = 15
	}
	if p.TopK <= 0 {
		p.TopK = 10
	}
	return p
}

// TracePoint records a best-so-far improvement during the search.
type TracePoint struct {
	Elapsed time.Duration
	Score   float64
	Pred    predicate.Predicate
}

// Result is the outcome of a NAIVE search.
type Result struct {
	// Best is the most influential predicate found.
	Best partition.Candidate
	// TopK holds the best candidates in descending score order.
	TopK []partition.Candidate
	// Trace records every improvement with its wall-clock offset.
	Trace []TracePoint
	// Enumerated counts scored predicates.
	Enumerated int64
	// TimedOut reports whether the deadline cut the search short.
	TimedOut bool
}

// Run exhaustively searches the predicate space over the given attributes.
//
// Clause domains are derived from the union of the outlier input groups
// (g_O): a predicate that matches no outlier tuple cannot have positive
// influence, so values appearing only outside g_O are not enumerated.
func Run(scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	params = params.withDefaults()
	task := scorer.Task()

	outRows := unionRows(task)
	clauseSets, maxCard, err := buildClauseSets(space, task.Table, outRows, params)
	if err != nil {
		return nil, err
	}
	if params.MaxDiscreteSubset > 0 && params.MaxDiscreteSubset < maxCard {
		maxCard = params.MaxDiscreteSubset
	}
	if maxCard < 1 {
		maxCard = 1
	}
	maxClauses := len(clauseSets)
	if params.MaxClauses > 0 && params.MaxClauses < maxClauses {
		maxClauses = params.MaxClauses
	}

	e := &enumerator{
		scorer:  scorer,
		params:  params,
		start:   time.Now(),
		sets:    clauseSets,
		res:     &Result{},
		checkAt: 64,
	}
	// Increasing complexity: discrete subset size first, then clause count.
	for size := 1; size <= maxCard && !e.done; size++ {
		for nAttrs := 1; nAttrs <= maxClauses && !e.done; nAttrs++ {
			e.enumerate(0, nAttrs, size, nil)
		}
	}
	partition.SortByScore(e.res.TopK)
	if best, ok := partition.Top(e.res.TopK); ok {
		e.res.Best = best
	}
	return e.res, nil
}

// unionRows returns g_O, the union of the outlier input groups.
func unionRows(task *influence.Task) *relation.RowSet {
	u := relation.NewRowSet(task.Table.NumRows())
	for _, g := range task.Outliers {
		u.Or(g.Rows)
	}
	return u
}

// attrClauses holds the clause inventory of one attribute.
type attrClauses struct {
	col      int
	name     string
	discrete bool
	// ranges holds all consecutive-bin range clauses (continuous attrs).
	ranges []predicate.Clause
	// codes holds the distinct codes present in g_O (discrete attrs).
	codes []int32
}

// buildClauseSets computes per-attribute clause inventories and the largest
// discrete cardinality.
func buildClauseSets(space *predicate.Space, t *relation.Table, rows *relation.RowSet, params Params) ([]attrClauses, int, error) {
	var sets []attrClauses
	maxCard := 1
	for _, col := range space.Columns() {
		name := space.Name(col)
		if space.Kind(col) == relation.Continuous {
			st := t.FloatStats(col, rows)
			if st.Count == 0 {
				continue
			}
			ac := attrClauses{col: col, name: name}
			ac.ranges = binRanges(col, name, st.Min, st.Max, params.Bins)
			sets = append(sets, ac)
			continue
		}
		codes := t.DistinctCodes(col, rows)
		if len(codes) == 0 {
			continue
		}
		if len(codes) > maxCard {
			maxCard = len(codes)
		}
		sets = append(sets, attrClauses{col: col, name: name, discrete: true, codes: codes})
	}
	if len(sets) == 0 {
		return nil, 0, fmt.Errorf("naive: no usable attributes in search space")
	}
	return sets, maxCard, nil
}

// binRanges enumerates every run of consecutive equi-width bins over
// [lo, hi]: bins·(bins+1)/2 clauses. The run that reaches the final bin is
// upper-inclusive so the domain maximum stays coverable.
func binRanges(col int, name string, lo, hi float64, bins int) []predicate.Clause {
	if hi <= lo {
		return []predicate.Clause{predicate.NewRangeClause(col, name, lo, hi, true)}
	}
	width := (hi - lo) / float64(bins)
	var out []predicate.Clause
	for i := 0; i < bins; i++ {
		for j := i; j < bins; j++ {
			clo := lo + float64(i)*width
			chi := lo + float64(j+1)*width
			out = append(out, predicate.NewRangeClause(col, name, clo, chi, j == bins-1))
		}
	}
	return out
}

// enumerator walks attribute combinations and clause choices.
type enumerator struct {
	scorer  *influence.Scorer
	params  Params
	start   time.Time
	sets    []attrClauses
	res     *Result
	done    bool
	checkAt int64
	// sink, when set, diverts assembled predicates to the caller instead of
	// scoring them inline (used by RunParallel's producer).
	sink func(predicate.Predicate)
}

// enumerate recursively picks nAttrs attributes from sets[from:], assigning
// every clause choice; size is the current discrete-subset complexity pass.
func (e *enumerator) enumerate(from, nAttrs, size int, chosen []predicate.Clause) {
	if e.done {
		return
	}
	if nAttrs == 0 {
		e.emit(chosen, size)
		return
	}
	for i := from; i+nAttrs <= len(e.sets); i++ {
		set := e.sets[i]
		if set.discrete {
			e.enumerateSubsets(set, size, 1, 0, nil, func(codes []int32) {
				clause := predicate.NewSetClause(set.col, set.name, codes)
				e.enumerate(i+1, nAttrs-1, size, append(chosen, clause))
			})
		} else {
			for _, cl := range set.ranges {
				e.enumerate(i+1, nAttrs-1, size, append(chosen, cl))
				if e.done {
					return
				}
			}
		}
	}
}

// enumerateSubsets yields all value subsets of sizes [minSize..size].
func (e *enumerator) enumerateSubsets(set attrClauses, size, minSize, from int, cur []int32, yield func([]int32)) {
	if e.done {
		return
	}
	if len(cur) >= minSize {
		yield(cur)
	}
	if len(cur) == size {
		return
	}
	for i := from; i < len(set.codes); i++ {
		e.enumerateSubsets(set, size, minSize, i+1, append(cur, set.codes[i]), yield)
		if e.done {
			return
		}
	}
}

// emit scores a fully-assembled predicate, de-duplicating across complexity
// passes: a predicate is scored only in the pass equal to its largest
// discrete clause (or pass 1 when it has none).
func (e *enumerator) emit(clauses []predicate.Clause, size int) {
	maxDiscrete := 0
	for _, c := range clauses {
		if c.Kind == relation.Discrete && len(c.Values) > maxDiscrete {
			maxDiscrete = len(c.Values)
		}
	}
	complexity := maxDiscrete
	if complexity == 0 {
		complexity = 1
	}
	if complexity != size {
		return
	}

	p := predicate.MustNew(clauses...)
	if e.sink != nil {
		e.sink(p)
		return
	}
	score := e.scorer.Influence(p)
	e.res.Enumerated++

	if len(e.res.Trace) == 0 || score > e.res.Trace[len(e.res.Trace)-1].Score {
		e.res.Trace = append(e.res.Trace, TracePoint{
			Elapsed: time.Since(e.start),
			Score:   score,
			Pred:    p,
		})
	}
	e.keepTopK(partition.Candidate{Pred: p, Score: score})

	if e.res.Enumerated%e.checkAt == 0 && e.params.Deadline > 0 &&
		time.Since(e.start) > e.params.Deadline {
		e.res.TimedOut = true
		e.done = true
	}
}

// keepTopK inserts the candidate into the bounded best list.
func (e *enumerator) keepTopK(c partition.Candidate) {
	top := e.res.TopK
	if len(top) < e.params.TopK {
		e.res.TopK = append(top, c)
		return
	}
	// Replace the current minimum if the newcomer beats it.
	minIdx := 0
	for i := 1; i < len(top); i++ {
		if top[i].Score < top[minIdx].Score {
			minIdx = i
		}
	}
	if c.Score > top[minIdx].Score {
		top[minIdx] = c
	}
}
