// Package naive implements Scorpion's exhaustive NAIVE partitioner (§4.2),
// with the §8.2 modifications: predicates are enumerated in increasing
// complexity (max discrete-clause size, then number of clauses), the search
// respects a wall-clock deadline, and the best predicate found so far is
// recorded over time so convergence curves (Figure 11) can be reproduced.
//
// NAIVE makes no assumptions about the aggregate, so it is the fallback for
// black-box user-defined aggregates.
//
// The search is cancellable and parallel: RunContext threads a
// context.Context into the enumeration loop (cancellation returns the best
// predicates found so far) and fans scoring out over a partition.Pool — the
// parallelization the paper's §8.3.2 leaves to future work. All workers
// share one influence.Scorer, which is safe for concurrent use. Parallel
// top-k output is identical to the serial output: every enumerated
// predicate carries its enumeration sequence number, and the top-k order is
// (score descending, sequence ascending) on both paths.
package naive

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/scorpiondb/scorpion/internal/estimate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Params configures the NAIVE search.
type Params struct {
	// Bins is the number of equi-width ranges per continuous attribute
	// (the paper uses 15).
	Bins int
	// MaxClauses caps the number of attributes per predicate; 0 = all.
	MaxClauses int
	// MaxDiscreteSubset caps discrete clause sizes; 0 = attribute cardinality.
	MaxDiscreteSubset int
	// Deadline bounds the wall-clock search time; 0 = unbounded.
	Deadline time.Duration
	// TopK is how many of the best candidates to retain (default 10).
	TopK int
	// Domains optionally overrides the continuous-range grid extents per
	// column index. A sharded search passes the GLOBAL outlier extents so
	// every shard enumerates an identical bin grid — candidates from
	// different shards then dedupe and bounding-box-merge exactly, instead
	// of differing by each window's local min/max. Unset (or empty-width)
	// columns keep the local data-derived extent.
	Domains map[int]predicate.Domain
	// Estimator, when non-nil, switches scoring to the anytime
	// estimate-then-escalate path: each enumerated predicate is interval-
	// estimated at increasing sample fractions and escalates to the exact
	// scorer only while its interval still overlaps the top-k frontier
	// (pruned candidates cost a partial sample scan instead of a full
	// one). Candidates are processed in deterministic enumeration-order
	// batches with the frontier frozen per batch, so the output is
	// identical for any worker count and across runs. The convergence
	// Trace is not recorded on this path. Nil runs the exact search.
	Estimator *estimate.Estimator
}

// withDefaults fills zero fields with paper defaults.
func (p Params) withDefaults() Params {
	if p.Bins <= 0 {
		p.Bins = 15
	}
	if p.TopK <= 0 {
		p.TopK = 10
	}
	return p
}

// TracePoint records a best-so-far improvement during the search.
type TracePoint struct {
	Elapsed time.Duration
	Score   float64
	Pred    predicate.Predicate
}

// Result is the outcome of a NAIVE search.
type Result struct {
	// Best is the most influential predicate found.
	Best partition.Candidate
	// TopK holds the best candidates in descending score order.
	TopK []partition.Candidate
	// Trace records every improvement with its wall-clock offset
	// (single-worker runs only; improvement order is non-deterministic
	// across workers).
	Trace []TracePoint
	// Enumerated counts enumerated predicates.
	Enumerated int64
	// Pruned counts predicates the anytime path discarded on an interval
	// upper bound; Escalated counts those that reached the exact scorer.
	// Both stay 0 on the exact path.
	Pruned    int64
	Escalated int64
	// TimedOut reports whether the Deadline cut the search short.
	TimedOut bool
	// Interrupted reports whether context cancellation cut the search
	// short; TopK then holds the best predicates found so far.
	Interrupted bool
}

// Run exhaustively searches the predicate space over the given attributes,
// serially and without cancellation.
//
// Clause domains are derived from the union of the outlier input groups
// (g_O): a predicate that matches no outlier tuple cannot have positive
// influence, so values appearing only outside g_O are not enumerated.
func Run(scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	return RunContext(context.Background(), scorer, space, params, 1)
}

// RunContext is Run with cancellation and a worker budget: the enumeration
// checks ctx periodically and, once cancelled, stops and returns the best
// candidates found so far with Result.Interrupted set. workers > 1 fans
// scoring out over a shared pool; workers <= 0 uses GOMAXPROCS.
func RunContext(ctx context.Context, scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Result, error) {
	return runPool(partition.NewPool(ctx, workers), scorer, space, params)
}

// runPool is the search core shared by every entry point.
func runPool(pool *partition.Pool, scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	params = params.withDefaults()
	task := scorer.Task()

	outRows := unionRows(task)
	clauseSets, maxCard, err := buildClauseSets(space, task.Table.Data(), outRows, params)
	if err != nil {
		return nil, err
	}
	if params.MaxDiscreteSubset > 0 && params.MaxDiscreteSubset < maxCard {
		maxCard = params.MaxDiscreteSubset
	}
	if maxCard < 1 {
		maxCard = 1
	}
	maxClauses := len(clauseSets)
	if params.MaxClauses > 0 && params.MaxClauses < maxClauses {
		maxClauses = params.MaxClauses
	}

	e := &enumerator{
		params: params,
		start:  time.Now(),
		sets:   clauseSets,
		pool:   pool,
	}
	res := &Result{}

	if params.Estimator != nil {
		runAnytime(e, res, pool, params, maxCard, maxClauses)
	} else if pool.Workers() <= 1 {
		// Serial: score inline, record the convergence trace. Every trace
		// improvement also goes to the pool's board (when one is attached)
		// so observers see the same best-so-far curve mid-run.
		keeper := topkKeeper{k: params.TopK}
		e.sink = func(p predicate.Predicate, seq int64) {
			score := scorer.Influence(p)
			keeper.consider(scoredPred{partition.Candidate{Pred: p, Score: score}, seq})
			if len(res.Trace) == 0 || score > res.Trace[len(res.Trace)-1].Score {
				res.Trace = append(res.Trace, TracePoint{
					Elapsed: time.Since(e.start),
					Score:   score,
					Pred:    p,
				})
				if pool.Board() != nil {
					pool.PublishBest(keeper.ranked())
				}
			}
		}
		e.run(maxCard, maxClauses)
		res.TopK = keeper.ranked()
	} else {
		// Parallel: stream predicate batches to the pool's workers, all
		// sharing one scorer. Each batch reduces to a local top-k which is
		// folded into the global keeper under a brief lock; (score, seq)
		// ordering makes the final list independent of arrival order.
		const batchSize = 256
		type item struct {
			p   predicate.Predicate
			seq int64
		}
		var mu sync.Mutex
		global := topkKeeper{k: params.TopK}
		submit, wait := partition.Stream(pool, func(batch []item) {
			local := topkKeeper{k: params.TopK}
			for _, it := range batch {
				local.consider(scoredPred{partition.Candidate{Pred: it.p, Score: scorer.Influence(it.p)}, it.seq})
			}
			mu.Lock()
			for _, s := range local.list {
				global.consider(s)
			}
			if pool.Board() != nil {
				// Publish the running top-k after each folded batch; the
				// board itself drops publications that don't improve it.
				pool.PublishBest(global.ranked())
			}
			mu.Unlock()
		})
		var batch []item
		e.sink = func(p predicate.Predicate, seq int64) {
			batch = append(batch, item{p, seq})
			if len(batch) >= batchSize {
				submit(batch)
				batch = nil
			}
		}
		e.run(maxCard, maxClauses)
		if len(batch) > 0 {
			submit(batch)
		}
		wait()
		// Batches in flight at cancellation time are dropped by the stream
		// workers, so a cancelled run is partial even when enumeration
		// finished.
		if pool.Cancelled() {
			e.interrupted = true
		}
		res.TopK = global.ranked()
	}

	res.Enumerated = e.produced
	res.TimedOut = e.timedOut
	res.Interrupted = e.interrupted
	if best, ok := partition.Top(res.TopK); ok {
		res.Best = best
	}
	return res, nil
}

// unionRows returns g_O, the union of the outlier input groups.
func unionRows(task *influence.Task) *relation.RowSet {
	u := relation.NewRowSet(task.Table.NumRows())
	for _, g := range task.Outliers {
		u.Or(g.Rows)
	}
	return u
}

// attrClauses holds the clause inventory of one attribute.
type attrClauses struct {
	col      int
	name     string
	discrete bool
	// ranges holds all consecutive-bin range clauses (continuous attrs).
	ranges []predicate.Clause
	// codes holds the distinct codes present in g_O (discrete attrs).
	codes []int32
}

// buildClauseSets computes per-attribute clause inventories and the largest
// discrete cardinality.
func buildClauseSets(space *predicate.Space, t *relation.Table, rows *relation.RowSet, params Params) ([]attrClauses, int, error) {
	var sets []attrClauses
	maxCard := 1
	for _, col := range space.Columns() {
		name := space.Name(col)
		if space.Kind(col) == relation.Continuous {
			st := t.FloatStats(col, rows)
			if st.Count == 0 {
				continue
			}
			if dom, ok := params.Domains[col]; ok && dom.Hi > dom.Lo {
				st.Min, st.Max = dom.Lo, dom.Hi
			}
			ac := attrClauses{col: col, name: name}
			ac.ranges = binRanges(col, name, st.Min, st.Max, params.Bins)
			sets = append(sets, ac)
			continue
		}
		codes := t.DistinctCodes(col, rows)
		if len(codes) == 0 {
			continue
		}
		if len(codes) > maxCard {
			maxCard = len(codes)
		}
		sets = append(sets, attrClauses{col: col, name: name, discrete: true, codes: codes})
	}
	if len(sets) == 0 {
		return nil, 0, fmt.Errorf("naive: no usable attributes in search space")
	}
	return sets, maxCard, nil
}

// binRanges enumerates every run of consecutive equi-width bins over
// [lo, hi]: bins·(bins+1)/2 clauses. The run that reaches the final bin is
// upper-inclusive so the domain maximum stays coverable.
func binRanges(col int, name string, lo, hi float64, bins int) []predicate.Clause {
	if hi <= lo {
		return []predicate.Clause{predicate.NewRangeClause(col, name, lo, hi, true)}
	}
	width := (hi - lo) / float64(bins)
	var out []predicate.Clause
	for i := 0; i < bins; i++ {
		for j := i; j < bins; j++ {
			clo := lo + float64(i)*width
			chi := lo + float64(j+1)*width
			out = append(out, predicate.NewRangeClause(col, name, clo, chi, j == bins-1))
		}
	}
	return out
}

// checkInterval is how many emitted predicates pass between deadline and
// cancellation checks.
const checkInterval = 64

// enumerator walks attribute combinations and clause choices, handing each
// assembled predicate (with its sequence number) to sink.
type enumerator struct {
	params      Params
	start       time.Time
	sets        []attrClauses
	pool        *partition.Pool
	done        bool
	timedOut    bool
	interrupted bool
	produced    int64
	sink        func(p predicate.Predicate, seq int64)
}

// run drives the increasing-complexity passes: discrete subset size first,
// then clause count.
func (e *enumerator) run(maxCard, maxClauses int) {
	for size := 1; size <= maxCard && !e.done; size++ {
		for nAttrs := 1; nAttrs <= maxClauses && !e.done; nAttrs++ {
			e.enumerate(0, nAttrs, size, nil)
		}
	}
}

// enumerate recursively picks nAttrs attributes from sets[from:], assigning
// every clause choice; size is the current discrete-subset complexity pass.
func (e *enumerator) enumerate(from, nAttrs, size int, chosen []predicate.Clause) {
	if e.done {
		return
	}
	if nAttrs == 0 {
		e.emit(chosen, size)
		return
	}
	for i := from; i+nAttrs <= len(e.sets); i++ {
		set := e.sets[i]
		if set.discrete {
			e.enumerateSubsets(set, size, 1, 0, nil, func(codes []int32) {
				clause := predicate.NewSetClause(set.col, set.name, codes)
				e.enumerate(i+1, nAttrs-1, size, append(chosen, clause))
			})
		} else {
			for _, cl := range set.ranges {
				e.enumerate(i+1, nAttrs-1, size, append(chosen, cl))
				if e.done {
					return
				}
			}
		}
	}
}

// enumerateSubsets yields all value subsets of sizes [minSize..size].
func (e *enumerator) enumerateSubsets(set attrClauses, size, minSize, from int, cur []int32, yield func([]int32)) {
	if e.done {
		return
	}
	if len(cur) >= minSize {
		yield(cur)
	}
	if len(cur) == size {
		return
	}
	for i := from; i < len(set.codes); i++ {
		e.enumerateSubsets(set, size, minSize, i+1, append(cur, set.codes[i]), yield)
		if e.done {
			return
		}
	}
}

// emit hands a fully-assembled predicate to the sink, de-duplicating across
// complexity passes: a predicate is emitted only in the pass equal to its
// largest discrete clause (or pass 1 when it has none). Every
// checkInterval emissions it polls the deadline and the pool's context.
func (e *enumerator) emit(clauses []predicate.Clause, size int) {
	maxDiscrete := 0
	for _, c := range clauses {
		if c.Kind == relation.Discrete && len(c.Values) > maxDiscrete {
			maxDiscrete = len(c.Values)
		}
	}
	complexity := maxDiscrete
	if complexity == 0 {
		complexity = 1
	}
	if complexity != size {
		return
	}

	p := predicate.MustNew(clauses...)
	seq := e.produced
	e.produced++
	e.sink(p, seq)

	if e.produced%checkInterval == 0 {
		if e.params.Deadline > 0 && time.Since(e.start) > e.params.Deadline {
			e.timedOut = true
			e.done = true
		}
		if e.pool.Cancelled() {
			e.interrupted = true
			e.done = true
		}
	}
}

// scoredPred couples a candidate with its enumeration sequence number — the
// tie-break that makes parallel and serial top-k selections identical.
type scoredPred struct {
	cand partition.Candidate
	seq  int64
}

// outranks reports whether a strictly precedes b in the result order:
// higher score first, earlier enumeration on ties. Sequence numbers are
// unique, so this is a strict total order and the top-k of any emission set
// is unique and independent of scoring order.
func (a scoredPred) outranks(b scoredPred) bool {
	if a.cand.Score != b.cand.Score {
		return a.cand.Score > b.cand.Score
	}
	return a.seq < b.seq
}

// topkKeeper is a bounded best-candidates list under the outranks order.
// Its contents after considering any set of entries are the set's unique
// top k, regardless of arrival order.
type topkKeeper struct {
	k    int
	list []scoredPred
}

func (t *topkKeeper) consider(s scoredPred) {
	if len(t.list) < t.k {
		t.list = append(t.list, s)
		return
	}
	worst := 0
	for i := 1; i < len(t.list); i++ {
		if t.list[worst].outranks(t.list[i]) {
			worst = i
		}
	}
	if s.outranks(t.list[worst]) {
		t.list[worst] = s
	}
}

// ranked returns the kept candidates in result order.
func (t *topkKeeper) ranked() []partition.Candidate {
	sort.Slice(t.list, func(i, j int) bool { return t.list[i].outranks(t.list[j]) })
	out := make([]partition.Candidate, len(t.list))
	for i, s := range t.list {
		out[i] = s.cand
	}
	return out
}
