package naive

import (
	"context"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/partition"
)

// identicalCandidates fails unless the two lists agree exactly: same
// predicates in the same order with bit-identical scores.
func identicalCandidates(t *testing.T, serial, parallel []partition.Candidate) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("candidate counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Pred.Key() != parallel[i].Pred.Key() {
			t.Fatalf("candidate %d predicate differs: serial %s, parallel %s",
				i, serial[i].Pred.Key(), parallel[i].Pred.Key())
		}
		if serial[i].Score != parallel[i].Score {
			t.Fatalf("candidate %d score differs: serial %v, parallel %v",
				i, serial[i].Score, parallel[i].Score)
		}
	}
}

// TestParallelTopKIdenticalToSerial asserts the acceptance criterion for
// NAIVE: the Workers=8 top-k is byte-identical to the serial run's — same
// predicates, same order, bit-equal scores.
func TestParallelTopKIdenticalToSerial(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	serial, err := Run(scorer, space, Params{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		scorerP, spaceP, _ := smallSetup(t, 0.1)
		par, err := RunContext(context.Background(), scorerP, spaceP, Params{Bins: 8}, workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalCandidates(t, serial.TopK, par.TopK)
		if par.Interrupted {
			t.Errorf("workers=%d: uncancelled run marked interrupted", workers)
		}
	}
}

// TestRunContextCancellation checks a cancelled context stops the search
// promptly with the best-so-far results flagged interrupted.
func TestRunContextCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		scorer, space, _ := smallSetup(t, 0.1)
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		start := time.Now()
		res, err := RunContext(ctx, scorer, space, Params{Bins: 15}, workers)
		cancel()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Interrupted {
			t.Fatalf("workers=%d: cancelled run not marked interrupted", workers)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Fatalf("workers=%d: cancellation took %s", workers, elapsed)
		}
	}
}

// TestSearcherInterface drives NAIVE through the shared runner.
func TestSearcherInterface(t *testing.T) {
	scorer, space, _ := smallSetup(t, 0.1)
	s := NewSearcher(scorer, space, Params{Bins: 8})
	if s.Name() != "naive" {
		t.Fatalf("Name = %q", s.Name())
	}
	out, err := partition.RunSearch(context.Background(), 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Interrupted || len(out.Candidates) == 0 || out.Work == 0 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
}
