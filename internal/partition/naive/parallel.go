package naive

import (
	"context"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
)

// RunParallel is Run with scoring fanned out over worker goroutines.
//
// Deprecated: use RunContext, which adds cancellation on top of the same
// worker pool (RunParallel is RunContext with a background context).
func RunParallel(scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Result, error) {
	return RunContext(context.Background(), scorer, space, params, workers)
}

// searcher adapts the NAIVE search to the partition.Searcher interface.
type searcher struct {
	scorer *influence.Scorer
	space  *predicate.Space
	params Params
}

// NewSearcher wraps a NAIVE search as a partition.Searcher driven by the
// shared worker-pool runner.
func NewSearcher(scorer *influence.Scorer, space *predicate.Space, params Params) partition.Searcher {
	return &searcher{scorer: scorer, space: space, params: params}
}

func (s *searcher) Name() string { return "naive" }

func (s *searcher) Search(pool *partition.Pool) (*partition.Outcome, error) {
	res, err := runPool(pool, s.scorer, s.space, s.params)
	if err != nil {
		return nil, err
	}
	return &partition.Outcome{
		Candidates:  res.TopK,
		Work:        res.Enumerated,
		Pruned:      res.Pruned,
		Escalated:   res.Escalated,
		Interrupted: res.Interrupted,
	}, nil
}
