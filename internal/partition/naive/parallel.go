package naive

import (
	"runtime"
	"sync"
	"time"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
)

// RunParallel is Run with the enumeration fanned out over worker
// goroutines — the parallelism the paper's §8.3.2 leaves to future work.
// Each worker owns a private Scorer (the Scorer is not safe for concurrent
// use; per-group state construction is cheap), predicates are streamed in
// batches, and the per-worker top-k lists are merged at the end.
//
// The best-so-far Trace is not recorded in parallel mode (improvement order
// is non-deterministic across workers); use Run for Figure 11 style
// convergence curves. Results are otherwise equivalent to Run up to ties.
func RunParallel(scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Result, error) {
	params = params.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Run(scorer, space, params)
	}
	task := scorer.Task()

	outRows := unionRows(task)
	clauseSets, maxCard, err := buildClauseSets(space, task.Table, outRows, params)
	if err != nil {
		return nil, err
	}
	if params.MaxDiscreteSubset > 0 && params.MaxDiscreteSubset < maxCard {
		maxCard = params.MaxDiscreteSubset
	}
	if maxCard < 1 {
		maxCard = 1
	}
	maxClauses := len(clauseSets)
	if params.MaxClauses > 0 && params.MaxClauses < maxClauses {
		maxClauses = params.MaxClauses
	}

	const batchSize = 256
	batches := make(chan []predicate.Predicate, workers*2)
	results := make([]*workerResult, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		ws, err := influence.NewScorer(task)
		if err != nil {
			return nil, err
		}
		wr := &workerResult{}
		results[wi] = wr
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range batches {
				for _, p := range batch {
					wr.consider(partition.Candidate{Pred: p, Score: ws.Influence(p)}, params.TopK)
					wr.enumerated++
				}
			}
		}()
	}

	// Producer: reuse the sequential enumerator but divert emissions into
	// batches instead of scoring inline.
	prod := &enumerator{
		scorer:  scorer,
		params:  params,
		start:   time.Now(),
		sets:    clauseSets,
		res:     &Result{},
		checkAt: 64,
	}
	var batch []predicate.Predicate
	flush := func() {
		if len(batch) > 0 {
			batches <- batch
			batch = nil
		}
	}
	prod.sink = func(p predicate.Predicate) {
		batch = append(batch, p)
		if len(batch) >= batchSize {
			flush()
		}
		if params.Deadline > 0 && prod.res.Enumerated%int64(batchSize) == 0 &&
			time.Since(prod.start) > params.Deadline {
			prod.res.TimedOut = true
			prod.done = true
		}
		prod.res.Enumerated++
	}
	for size := 1; size <= maxCard && !prod.done; size++ {
		for nAttrs := 1; nAttrs <= maxClauses && !prod.done; nAttrs++ {
			prod.enumerate(0, nAttrs, size, nil)
		}
	}
	flush()
	close(batches)
	wg.Wait()

	// Merge worker results.
	out := &Result{TimedOut: prod.res.TimedOut}
	for _, wr := range results {
		out.TopK = append(out.TopK, wr.top...)
		out.Enumerated += wr.enumerated
	}
	partition.SortByScore(out.TopK)
	out.TopK = partition.Dedupe(out.TopK)
	if len(out.TopK) > params.TopK {
		out.TopK = out.TopK[:params.TopK]
	}
	if best, ok := partition.Top(out.TopK); ok {
		out.Best = best
	}
	return out, nil
}

// workerResult accumulates one worker's best candidates.
type workerResult struct {
	top        []partition.Candidate
	enumerated int64
}

func (w *workerResult) consider(c partition.Candidate, topK int) {
	if len(w.top) < topK {
		w.top = append(w.top, c)
		return
	}
	minIdx := 0
	for i := 1; i < len(w.top); i++ {
		if w.top[i].Score < w.top[minIdx].Score {
			minIdx = i
		}
	}
	if c.Score > w.top[minIdx].Score {
		w.top[minIdx] = c
	}
}
