package partition

import (
	"testing"

	"github.com/scorpiondb/scorpion/internal/predicate"
)

func pred(lo, hi float64) predicate.Predicate {
	return predicate.MustNew(predicate.NewRangeClause(0, "x", lo, hi, false))
}

func TestSortByScore(t *testing.T) {
	cands := []Candidate{
		{Pred: pred(0, 1), Score: 1},
		{Pred: pred(1, 2), Score: 3},
		{Pred: pred(2, 3), Score: 2},
	}
	SortByScore(cands)
	if cands[0].Score != 3 || cands[1].Score != 2 || cands[2].Score != 1 {
		t.Errorf("sorted scores = %v,%v,%v", cands[0].Score, cands[1].Score, cands[2].Score)
	}
}

func TestDedupe(t *testing.T) {
	cands := []Candidate{
		{Pred: pred(0, 1), Score: 1},
		{Pred: pred(0, 1), Score: 5}, // duplicate, higher score wins
		{Pred: pred(1, 2), Score: 2},
	}
	out := Dedupe(cands)
	if len(out) != 2 {
		t.Fatalf("deduped length = %d, want 2", len(out))
	}
	if out[0].Score != 5 {
		t.Errorf("duplicate kept score %v, want 5", out[0].Score)
	}
}

func TestTop(t *testing.T) {
	if _, ok := Top(nil); ok {
		t.Error("Top(nil) should report false")
	}
	best, ok := Top([]Candidate{
		{Pred: pred(0, 1), Score: -1},
		{Pred: pred(1, 2), Score: 4},
		{Pred: pred(2, 3), Score: 2},
	})
	if !ok || best.Score != 4 {
		t.Errorf("Top = %v, %v", best, ok)
	}
}
