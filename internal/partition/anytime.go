package partition

import (
	"math"
	"sync"
	"sync/atomic"
)

// AnytimeTracker is the interval-aware top-k frontier of an anytime search.
// Escalated candidates contribute their EXACT scores, so the frontier's kth
// member has a degenerate interval whose lower bound is its score; a
// candidate whose interval upper bound falls below that kth lower bound can
// never displace the top-k and is pruned, and one whose bound falls below
// kth.lower + margin can displace it only by less than the caller's error
// budget — pruning there bounds the per-rank regret by the margin. A
// candidate's refinement terminates early as soon as its interval separates
// from the frontier by the margin in either direction (see
// estimate.Estimator.Score); the tracker records how each one ended.
//
// The tracker is safe for concurrent use, but anytime searchers that need
// worker-count-independent output should read Threshold once per
// deterministic batch rather than per candidate (see the naive package).
type AnytimeTracker struct {
	k      int
	margin float64

	mu     sync.Mutex
	scores []float64 // min-heap of the top-k exact scores seen

	pruned    atomic.Int64
	escalated atomic.Int64
}

// NewAnytimeTracker builds a tracker for a top-k frontier with the given
// prune margin (the caller's epsilon).
func NewAnytimeTracker(k int, margin float64) *AnytimeTracker {
	if k < 1 {
		k = 1
	}
	return &AnytimeTracker{k: k, margin: margin}
}

// Threshold returns the current prune line: the kth best exact score seen
// plus the margin, or -Inf while fewer than k candidates have escalated
// (nothing may be pruned before the frontier is populated).
func (t *AnytimeTracker) Threshold() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.scores) < t.k {
		return math.Inf(-1)
	}
	return t.scores[0] + t.margin
}

// Observe folds one escalated candidate's exact score into the frontier and
// counts the escalation.
func (t *AnytimeTracker) Observe(score float64) {
	t.escalated.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.scores) < t.k {
		t.scores = append(t.scores, score)
		t.up(len(t.scores) - 1)
		return
	}
	if score <= t.scores[0] {
		return
	}
	t.scores[0] = score
	t.down(0)
}

// CountPruned records one pruned candidate.
func (t *AnytimeTracker) CountPruned() { t.pruned.Add(1) }

// Pruned returns how many candidates the frontier pruned.
func (t *AnytimeTracker) Pruned() int64 { return t.pruned.Load() }

// Escalated returns how many candidates escalated to exact scoring.
func (t *AnytimeTracker) Escalated() int64 { return t.escalated.Load() }

func (t *AnytimeTracker) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.scores[parent] <= t.scores[i] {
			return
		}
		t.scores[parent], t.scores[i] = t.scores[i], t.scores[parent]
		i = parent
	}
}

func (t *AnytimeTracker) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.scores) && t.scores[l] < t.scores[min] {
			min = l
		}
		if r < len(t.scores) && t.scores[r] < t.scores[min] {
			min = r
		}
		if min == i {
			return
		}
		t.scores[i], t.scores[min] = t.scores[min], t.scores[i]
		i = min
	}
}
