package partition

import "context"

// Searcher is the common face of the three partitioning algorithms (NAIVE,
// DT, MC): given a Pool carrying the search context and worker budget, run
// the search and return ranked candidates. Implementations live in the
// algorithm packages and close over their scorer, space and tuning params.
type Searcher interface {
	// Name identifies the algorithm ("naive", "dt", "mc").
	Name() string
	// Search runs the algorithm on the pool. On context cancellation it
	// returns the best-so-far outcome with Outcome.Interrupted set rather
	// than an error; errors are reserved for invalid inputs.
	Search(pool *Pool) (*Outcome, error)
}

// Outcome is a partitioner run reduced to the common currency.
type Outcome struct {
	// Candidates holds the ranked results (descending score).
	Candidates []Candidate
	// Work counts algorithm-specific units of search effort: predicates
	// enumerated (NAIVE), tree leaves emitted (DT), units scored (MC).
	Work int64
	// Pruned counts candidates an anytime search discarded on a sample
	// interval's upper bound without exact scoring; Escalated counts those
	// that reached the exact scorer. Both are 0 on the exact path.
	Pruned    int64
	Escalated int64
	// Interrupted reports that the pool's context was cancelled mid-search
	// and Candidates holds partial best-so-far results.
	Interrupted bool
}

// RunSearch drives a Searcher over ctx with the given worker budget — the
// single entry point the public API uses for all three algorithms. A
// context that is already cancelled returns an empty interrupted outcome
// without touching the searcher.
func RunSearch(ctx context.Context, workers int, s Searcher) (*Outcome, error) {
	return RunSearchObserved(ctx, workers, nil, s)
}

// RunSearchObserved is RunSearch with an optional best-so-far board: when
// board is non-nil the searcher publishes its running top candidates to it,
// so a concurrent observer can snapshot partial results mid-search (the
// async job service's polling path). A nil board is exactly RunSearch.
func RunSearchObserved(ctx context.Context, workers int, board *Board, s Searcher) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Err() != nil {
		return &Outcome{Interrupted: true}, nil
	}
	return s.Search(NewPool(ctx, workers).WithBoard(board))
}
