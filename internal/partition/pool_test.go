package partition

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := NewPool(context.Background(), workers)
		const n = 500
		hits := make([]atomic.Int32, n)
		if err := p.ForEach(n, func(i int) { hits[i].Add(1) }); err != nil {
			t.Fatalf("workers=%d: ForEach error %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForEachStopsOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		p := NewPool(ctx, workers)
		var ran atomic.Int64
		err := p.ForEach(1_000_000, func(i int) {
			if ran.Add(1) == 100 {
				cancel()
			}
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: ForEach error = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n >= 1_000_000 {
			t.Fatalf("workers=%d: cancellation did not stop the loop (ran %d)", workers, n)
		}
		cancel()
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool(ctx, 4)
	var ran atomic.Int64
	if err := p.ForEach(100, func(i int) { ran.Add(1) }); err != context.Canceled {
		t.Fatalf("ForEach error = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("pre-cancelled ForEach ran %d tasks, want 0", n)
	}
}

func TestStreamProcessesAllItems(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(context.Background(), workers)
		var sum atomic.Int64
		submit, wait := Stream(p, func(v int) { sum.Add(int64(v)) })
		want := int64(0)
		for i := 1; i <= 200; i++ {
			submit(i)
			want += int64(i)
		}
		wait()
		if got := sum.Load(); got != want {
			t.Fatalf("workers=%d: stream sum = %d, want %d", workers, got, want)
		}
	}
}

func TestStreamSubmitDoesNotBlockAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPool(ctx, 1)
	block := make(chan struct{})
	submit, wait := Stream(p, func(int) { <-block })
	// Saturate the worker plus the channel buffer (workers*2) without
	// blocking: one item is held by the stalled worker, two sit buffered.
	for i := 0; i < 3; i++ {
		submit(i)
	}
	cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			submit(i) // must drop, not block
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submit blocked after cancellation")
	}
	close(block)
	wait()
}

func TestRunSearchPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunSearch(ctx, 4, failingSearcher{})
	if err != nil {
		t.Fatalf("RunSearch error = %v", err)
	}
	if !out.Interrupted {
		t.Fatal("pre-cancelled RunSearch outcome not marked interrupted")
	}
}

// failingSearcher fails the test if Search is ever invoked.
type failingSearcher struct{}

func (failingSearcher) Name() string { return "failing" }
func (failingSearcher) Search(*Pool) (*Outcome, error) {
	panic("Search called on a pre-cancelled context")
}
