// Package partition defines the common currency between Scorpion's
// partitioning algorithms (NAIVE §4.2, DT §6.1, MC §6.2) and the Merger
// (§4.3/§6.3): scored candidate predicates.
package partition

import (
	"sort"

	"github.com/scorpiondb/scorpion/internal/predicate"
)

// Candidate is a predicate produced by a partitioner, tagged with its
// estimated influence and, for DT partitions, the statistics the Merger's
// cached-tuple approximation needs (§6.3).
type Candidate struct {
	// Pred is the candidate explanation predicate.
	Pred predicate.Predicate
	// Score is the (estimated) influence inf(O, H, p, V).
	Score float64
	// GroupCards estimates |p(g_o)| per outlier group (DT only; nil
	// otherwise). Estimated from samples when sampling is enabled.
	GroupCards []float64
	// CachedRows holds, per outlier group, the row whose influence is
	// closest to the partition's mean influence in that group, or -1.
	// (DT only; nil otherwise.)
	CachedRows []int
	// MeanInfluences holds the per-group mean tuple influence (DT only).
	MeanInfluences []float64
	// HoldPenalty is max_h |inf(h, p)| at scoring time; the Merger's
	// cached-tuple approximation reuses it for merged predicates.
	HoldPenalty float64
	// InfluencesHoldOut marks partitions that overlap an influential
	// hold-out partition after the §6.1.4 combine step.
	InfluencesHoldOut bool
}

// SortByScore orders candidates by descending score (stable).
func SortByScore(cands []Candidate) {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Score > cands[j].Score })
}

// Dedupe removes candidates with duplicate canonical predicates, keeping the
// highest-scored instance. Input order is otherwise preserved.
func Dedupe(cands []Candidate) []Candidate {
	best := make(map[string]int, len(cands))
	out := cands[:0]
	for _, c := range cands {
		key := c.Pred.Key()
		if i, ok := best[key]; ok {
			if c.Score > out[i].Score {
				out[i] = c
			}
			continue
		}
		best[key] = len(out)
		out = append(out, c)
	}
	return out
}

// Top returns the best-scored candidate, or false when empty.
func Top(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Score > best.Score {
			best = c
		}
	}
	return best, true
}
