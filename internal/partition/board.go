package partition

import (
	"sync"
	"sync/atomic"
)

// Board is a concurrency-safe best-so-far bulletin: searchers publish their
// current top candidates mid-run, and observers (progress callbacks, async
// job snapshots) read them without stopping the search. A Board is the
// publication half of the paper's convergence story (§8.2's best-so-far
// curves): NAIVE publishes after every scored batch, MC after every
// iteration's merge, and the DT composite after partitioning and merging.
//
// A nil *Board is valid everywhere and makes every method a no-op, so
// searchers publish unconditionally and only observed runs pay for it.
//
// A board can also carry tagged child boards (Child): a sharded search
// gives each shard its own child, whose accepted publications forward to
// the parent's global list — so one board answers both "what is the best
// so far overall?" (Snapshot) and "what has each shard found?" (Children).
type Board struct {
	mu      sync.Mutex
	cands   []Candidate
	version atomic.Int64

	// parent, when non-nil, receives every accepted publication of this
	// (child) board; tag names the child within its parent.
	parent *Board
	tag    string
	// childVersion counts accepted child publications, so observers can
	// detect per-shard progress even when the global best is unchanged.
	childVersion atomic.Int64

	childMu    sync.Mutex
	children   map[string]*Board
	childOrder []string
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// Child returns the named child board, creating it on first use. Accepted
// publications to a child update the child's own best list AND forward to
// the parent's global list. Children of a nil board are nil (and therefore
// also no-ops).
func (b *Board) Child(tag string) *Board {
	if b == nil {
		return nil
	}
	b.childMu.Lock()
	defer b.childMu.Unlock()
	if b.children == nil {
		b.children = make(map[string]*Board)
	}
	c, ok := b.children[tag]
	if !ok {
		c = &Board{parent: b, tag: tag}
		b.children[tag] = c
		b.childOrder = append(b.childOrder, tag)
	}
	return c
}

// ChildSnapshot is one child board's state inside a Children listing.
type ChildSnapshot struct {
	// Tag names the child (the shard label).
	Tag string
	// Cands is the child's best-so-far list, descending score.
	Cands []Candidate
	// Version is the child's own publication version.
	Version int64
}

// Children snapshots every child board in creation order. A board without
// children (or a nil board) reports nil.
func (b *Board) Children() []ChildSnapshot {
	if b == nil {
		return nil
	}
	b.childMu.Lock()
	tags := append([]string(nil), b.childOrder...)
	kids := make([]*Board, len(tags))
	for i, tag := range tags {
		kids[i] = b.children[tag]
	}
	b.childMu.Unlock()
	out := make([]ChildSnapshot, len(kids))
	for i, c := range kids {
		cands, version := c.Snapshot()
		out[i] = ChildSnapshot{Tag: tags[i], Cands: cands, Version: version}
	}
	return out
}

// AggregateVersion covers the board and its children: it changes whenever
// the global best improves OR any child accepts a publication, so pollers
// tracking per-shard progress can use one number. A nil board reports 0.
func (b *Board) AggregateVersion() int64 {
	if b == nil {
		return 0
	}
	return b.version.Load() + b.childVersion.Load()
}

// Publish replaces the board's candidates with a copy of cands, ranked by
// descending score. Publications whose best is WORSE than the board's are
// ignored (concurrent publishers cannot regress the board), and identical
// lists are dropped without a version bump — but a publication that keeps
// the same #1 while improving ranks 2..k is accepted, so observers see the
// whole top-k fill in, not just the leader. No-op on a nil board.
func (b *Board) Publish(cands []Candidate) {
	if b == nil || len(cands) == 0 {
		return
	}
	snapshot := make([]Candidate, len(cands))
	copy(snapshot, cands)
	SortByScore(snapshot)
	b.mu.Lock()
	if len(b.cands) > 0 {
		if snapshot[0].Score < b.cands[0].Score {
			b.mu.Unlock()
			return
		}
		if snapshot[0].Score == b.cands[0].Score && sameRanking(b.cands, snapshot) {
			b.mu.Unlock()
			return
		}
	}
	b.cands = snapshot
	b.version.Add(1)
	b.mu.Unlock()
	// Forward accepted publications up: the child's lock is released first,
	// so parent and child locks never nest.
	if b.parent != nil {
		b.parent.childVersion.Add(1)
		b.parent.Publish(snapshot)
	}
}

// sameRanking reports whether two score-sorted candidate lists rank the
// same predicates with the same scores.
func sameRanking(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].Pred.Key() != b[i].Pred.Key() {
			return false
		}
	}
	return true
}

// Snapshot returns the board's current candidates (descending score) and a
// monotonically increasing version that changes with every accepted
// Publish. The returned slice is private to the caller. A nil board reports
// (nil, 0).
func (b *Board) Snapshot() ([]Candidate, int64) {
	if b == nil {
		return nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Candidate, len(b.cands))
	copy(out, b.cands)
	return out, b.version.Load()
}

// Version returns the board's current version without copying candidates.
func (b *Board) Version() int64 {
	if b == nil {
		return 0
	}
	return b.version.Load()
}
