package partition

import (
	"sync"
	"sync/atomic"
)

// Board is a concurrency-safe best-so-far bulletin: searchers publish their
// current top candidates mid-run, and observers (progress callbacks, async
// job snapshots) read them without stopping the search. A Board is the
// publication half of the paper's convergence story (§8.2's best-so-far
// curves): NAIVE publishes after every scored batch, MC after every
// iteration's merge, and the DT composite after partitioning and merging.
//
// A nil *Board is valid everywhere and makes every method a no-op, so
// searchers publish unconditionally and only observed runs pay for it.
type Board struct {
	mu      sync.Mutex
	cands   []Candidate
	version atomic.Int64
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// Publish replaces the board's candidates with a copy of cands, ranked by
// descending score. Publications whose best is WORSE than the board's are
// ignored (concurrent publishers cannot regress the board), and identical
// lists are dropped without a version bump — but a publication that keeps
// the same #1 while improving ranks 2..k is accepted, so observers see the
// whole top-k fill in, not just the leader. No-op on a nil board.
func (b *Board) Publish(cands []Candidate) {
	if b == nil || len(cands) == 0 {
		return
	}
	snapshot := make([]Candidate, len(cands))
	copy(snapshot, cands)
	SortByScore(snapshot)
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.cands) > 0 {
		if snapshot[0].Score < b.cands[0].Score {
			return
		}
		if snapshot[0].Score == b.cands[0].Score && sameRanking(b.cands, snapshot) {
			return
		}
	}
	b.cands = snapshot
	b.version.Add(1)
}

// sameRanking reports whether two score-sorted candidate lists rank the
// same predicates with the same scores.
func sameRanking(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].Pred.Key() != b[i].Pred.Key() {
			return false
		}
	}
	return true
}

// Snapshot returns the board's current candidates (descending score) and a
// monotonically increasing version that changes with every accepted
// Publish. The returned slice is private to the caller. A nil board reports
// (nil, 0).
func (b *Board) Snapshot() ([]Candidate, int64) {
	if b == nil {
		return nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Candidate, len(b.cands))
	copy(out, b.cands)
	return out, b.version.Load()
}

// Version returns the board's current version without copying candidates.
func (b *Board) Version() int64 {
	if b == nil {
		return 0
	}
	return b.version.Load()
}
