// Package dt implements Scorpion's DT partitioner (§6.1): a top-down
// regression-tree algorithm for independent aggregates. Tuples are labeled
// with their individual influence; the attribute space is recursively split
// so each partition holds tuples of similar influence, with the error
// threshold relaxed for non-influential partitions (Figure 4). Outlier and
// hold-out input groups are partitioned by two synchronized trees (§6.1.3)
// whose per-group split metrics combine via max, and the two partitionings
// are finally combined by splitting outlier partitions along influential
// hold-out partitions (§6.1.4).
//
// The partitioning itself is agnostic to the c knob (tuple influence has a
// denominator of 1^c), so a Partitioning can be cached and re-scored for
// different c values (§8.3.3).
//
// The build is cancellable and parallel: RunContext/PartitionContext thread
// a context.Context into the tree expansion (cancellation emits the
// unfinished frontier as coarse leaves, so the partial partitioning still
// tiles the space) and fan node expansion out over a partition.Pool.
// Because every node's sampling randomness is derived from its position in
// the tree, the partitioning is identical for any worker count.
package dt

import (
	"context"
	"fmt"
	"math"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// Params configures the DT partitioner.
type Params struct {
	// TauMin and TauMax bound the relative error threshold curve (Figure 4).
	TauMin, TauMax float64
	// InflectionP is the curve's inflection point p (paper: 0.5).
	InflectionP float64
	// MinSize stops splitting partitions with fewer sampled tuples.
	MinSize int
	// MaxDepth bounds tree depth (clamped to 60: node ids are heap-style
	// path indices in a uint64).
	MaxDepth int
	// ContSplitCandidates is the number of quantile split candidates per
	// continuous attribute.
	ContSplitCandidates int
	// Epsilon is the assumed fractional size of an influential cluster,
	// driving the §6.1.2 initial sampling rate.
	Epsilon float64
	// Confidence is the probability of catching the cluster (paper: 0.95).
	Confidence float64
	// DisableSampling forces full scans (sampling rate 1).
	DisableSampling bool
	// SampleSeed seeds the deterministic sampler.
	SampleSeed int64
	// HoldOutFrac classifies a hold-out partition as influential when its
	// |mean influence| exceeds this fraction of the hold-out influence
	// spread (§6.1.4 combine step).
	HoldOutFrac float64
}

func (p Params) withDefaults() Params {
	if p.TauMin <= 0 {
		p.TauMin = 0.05
	}
	if p.TauMax <= 0 {
		p.TauMax = 0.5
	}
	if p.InflectionP <= 0 {
		p.InflectionP = 0.5
	}
	if p.MinSize <= 0 {
		p.MinSize = 10
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MaxDepth > 60 {
		p.MaxDepth = 60
	}
	if p.ContSplitCandidates <= 0 {
		p.ContSplitCandidates = 3
	}
	if p.Epsilon <= 0 {
		p.Epsilon = 0.05
	}
	if p.Confidence <= 0 {
		p.Confidence = 0.95
	}
	if p.HoldOutFrac <= 0 {
		p.HoldOutFrac = 0.1
	}
	if p.SampleSeed == 0 {
		p.SampleSeed = 1
	}
	return p
}

// Leaf is one partition of an input-group tree with its per-group
// statistics.
type Leaf struct {
	// Pred is the partition's bounding predicate.
	Pred predicate.Predicate
	// Cards holds the exact per-group cardinality |Pred(g)|.
	Cards []float64
	// Means holds the per-group mean sampled tuple influence.
	Means []float64
	// CachedRows holds, per group, the sampled row whose influence is
	// closest to the group mean (-1 when the group is empty here).
	CachedRows []int
	// MeanInfluence is the pooled mean influence across groups.
	MeanInfluence float64
	// SampledCount is the pooled number of sampled tuples.
	SampledCount int
}

// Partitioning is the c-agnostic output of the DT trees: reusable across
// Scorer runs with different c values.
type Partitioning struct {
	// OutlierLeaves and HoldOutLeaves are the two trees' partitions.
	OutlierLeaves []Leaf
	HoldOutLeaves []Leaf
	// Combined holds the §6.1.4 combination: outlier partitions split along
	// influential hold-out partitions, each flagged when it overlaps one.
	Combined []combinedPiece
	// Interrupted reports that context cancellation cut the tree build
	// short; the leaves still tile the space, but unfinished frontier
	// nodes were kept as coarse partitions.
	Interrupted bool
}

type combinedPiece struct {
	pred              predicate.Predicate
	source            int // index into OutlierLeaves
	influencesHoldOut bool
}

// Result is a scored DT run.
type Result struct {
	// Candidates is the combined partitioning scored with the task's c.
	Candidates []partition.Candidate
	// Partitioning is the reusable c-agnostic structure.
	Partitioning *Partitioning
}

// Run partitions and scores in one call, serially and without cancellation.
func Run(scorer *influence.Scorer, space *predicate.Space, params Params) (*Result, error) {
	return RunContext(context.Background(), scorer, space, params, 1)
}

// RunContext is Run with cancellation and a worker budget: node expansion
// fans out over a shared pool and the build stops early (keeping the
// frontier as coarse leaves) once ctx is cancelled. workers <= 0 uses
// GOMAXPROCS.
func RunContext(ctx context.Context, scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Result, error) {
	pool := partition.NewPool(ctx, workers)
	pt, err := PartitionPool(pool, scorer, space, params)
	if err != nil {
		return nil, err
	}
	return &Result{Candidates: pt.CandidatesPool(scorer, pool), Partitioning: pt}, nil
}

// Partition builds the outlier and hold-out trees and combines them. The
// result does not depend on the task's C and can be cached across c sweeps.
func Partition(scorer *influence.Scorer, space *predicate.Space, params Params) (*Partitioning, error) {
	return PartitionContext(context.Background(), scorer, space, params, 1)
}

// PartitionContext is Partition with cancellation and a worker budget.
func PartitionContext(ctx context.Context, scorer *influence.Scorer, space *predicate.Space, params Params, workers int) (*Partitioning, error) {
	return PartitionPool(partition.NewPool(ctx, workers), scorer, space, params)
}

// PartitionPool is the build core shared by every entry point: it expands
// the trees over an existing pool, so callers composing DT with further
// stages (scoring, merging) can share one pool across the whole search.
func PartitionPool(pool *partition.Pool, scorer *influence.Scorer, space *predicate.Space, params Params) (*Partitioning, error) {
	params = params.withDefaults()
	task := scorer.Task()
	if !task.Agg.Independent() {
		return nil, fmt.Errorf("dt: aggregate %q is not independent; use the NAIVE partitioner", task.Agg.Name())
	}

	outTree := newTree(scorer, space, params, task.Outliers, scorer.TupleOutlierInfluence)
	outLeaves := outTree.build(pool)
	interrupted := outTree.interrupted

	var holdLeaves []Leaf
	if len(task.HoldOuts) > 0 {
		// Decorrelate the hold-out tree's per-node RNG streams from the
		// outlier tree's (both derive draws from SampleSeed and node ids).
		holdParams := params
		holdParams.SampleSeed ^= 0x5bd1e995
		holdTree := newTree(scorer, space, holdParams, task.HoldOuts, scorer.TupleHoldOutInfluence)
		holdLeaves = holdTree.build(pool)
		interrupted = interrupted || holdTree.interrupted
	}

	pt := &Partitioning{OutlierLeaves: outLeaves, HoldOutLeaves: holdLeaves, Interrupted: interrupted}
	pt.combine(space, params)
	return pt, nil
}

// Candidates scores the combined partitioning with the given scorer,
// producing Merger-ready candidates carrying the §6.3 statistics.
func (pt *Partitioning) Candidates(scorer *influence.Scorer) []partition.Candidate {
	return pt.CandidatesPool(scorer, partition.NewPool(context.Background(), 1))
}

// CandidatesPool is Candidates with piece scoring fanned out over the pool.
// Each piece writes its own slot, so the result (after the stable sort) is
// identical for any worker count. On cancellation, pieces that were never
// scored are dropped — the returned list is the scored best-so-far subset,
// never zero-value (match-everything, score-0) placeholders.
func (pt *Partitioning) CandidatesPool(scorer *influence.Scorer, pool *partition.Pool) []partition.Candidate {
	task := scorer.Task()
	out := make([]partition.Candidate, len(pt.Combined))
	scored := make([]bool, len(pt.Combined))
	err := pool.ForEach(len(pt.Combined), func(i int) {
		piece := pt.Combined[i]
		leaf := pt.OutlierLeaves[piece.source]
		outMean, holdPen := scorer.Parts(piece.pred)
		score := task.Lambda*outMean - (1-task.Lambda)*holdPen
		c := partition.Candidate{
			Pred:              piece.pred,
			Score:             score,
			HoldPenalty:       holdPen,
			InfluencesHoldOut: piece.influencesHoldOut,
		}
		// Piece statistics: when the piece equals its source leaf, reuse
		// leaf stats; otherwise estimate by volume fraction of the source.
		if piece.pred.Equal(leaf.Pred) {
			c.GroupCards = leaf.Cards
			c.CachedRows = leaf.CachedRows
			c.MeanInfluences = leaf.Means
		} else {
			frac := pieceFraction(leaf.Pred, piece.pred)
			cards := make([]float64, len(leaf.Cards))
			for i, n := range leaf.Cards {
				cards[i] = n * frac
			}
			c.GroupCards = cards
			c.CachedRows = leaf.CachedRows
			c.MeanInfluences = leaf.Means
		}
		out[i] = c
		scored[i] = true
	})
	if err != nil {
		kept := out[:0]
		for i, c := range out {
			if scored[i] {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	partition.SortByScore(out)
	return out
}

// pieceFraction estimates |piece| / |leaf| under uniform density.
func pieceFraction(leaf, piece predicate.Predicate) float64 {
	frac := 1.0
	for _, pc := range piece.Clauses() {
		lc, ok := leaf.ClauseOn(pc.Col)
		if !ok {
			continue
		}
		if lc.Kind == relation.Continuous {
			lw := lc.Hi - lc.Lo
			pw := math.Min(pc.Hi, lc.Hi) - math.Max(pc.Lo, lc.Lo)
			if lw > 0 && pw > 0 {
				frac *= pw / lw
			}
		} else if len(lc.Values) > 0 {
			frac *= float64(len(pc.Values)) / float64(len(lc.Values))
		}
	}
	if frac < 0 {
		return 0
	}
	if frac > 1 {
		return 1
	}
	return frac
}

// threshold computes the Figure 4 error threshold for a partition whose
// maximum tuple influence is infMax, given the tree-global influence bounds
// [infL, infU].
//
// The paper's slope formula as printed yields a negative slope (tightening
// the threshold as partitions become LESS influential, the opposite of the
// stated intent); we implement the stated curve: ω = τmax for
// infMax ≤ infL + p·(infU−infL), decreasing linearly to ω = τmin at
// infMax = infU.
func threshold(infMax, infL, infU, tauMin, tauMax, p float64) float64 {
	spread := infU - infL
	if spread <= 0 {
		return 0
	}
	s := (tauMax - tauMin) / ((1 - p) * spread)
	omega := tauMin + s*(infU-infMax)
	if omega > tauMax {
		omega = tauMax
	}
	if omega < tauMin {
		omega = tauMin
	}
	return omega * spread
}
