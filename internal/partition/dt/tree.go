package dt

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/sample"
)

// tree builds one synchronized regression tree over a set of input groups
// (§6.1.1–6.1.3). Split decisions minimize the maximum per-group weighted
// child standard deviation of tuple influence.
//
// The build is a breadth-first frontier expansion: each level's nodes are
// independent, so a partition.Pool fans them out over workers. Determinism
// across worker counts comes from two rules: every node draws its sampling
// randomness from an RNG seeded by (SampleSeed, node id) — the heap-style
// path id root=1, children 2i/2i+1 — and leaves are collected on the
// coordinating goroutine in frontier order, never in completion order.
type tree struct {
	scorer *influence.Scorer
	space  *predicate.Space
	params Params
	groups []influence.Group
	// tupleInf returns the influence of a row within group gi.
	tupleInf func(gi, row int) float64
	// infCache memoizes tuple influences per group (row → influence); it is
	// synchronized because concurrent node expansions share rows.
	infCache []groupInfCache
	// Tree-global influence bounds, fixed from the root samples.
	infL, infU float64
	// minSize is the effective minimum sampled-tuple count per node:
	// params.MinSize clamped so tiny datasets can still split.
	minSize int
	leaves  []Leaf
	// interrupted records a context cancellation during the build; the
	// emitted leaves then include unfinished nodes as coarse partitions.
	interrupted bool
}

// groupInfCache is one group's synchronized row→influence memo table.
type groupInfCache struct {
	mu sync.RWMutex
	m  map[int]float64
}

// nodeGroup is one group's data within a tree node.
type nodeGroup struct {
	full    []int     // all rows of the group inside the node's box
	sampled []int     // sampled rows
	infs    []float64 // influence per sampled row
	rate    float64   // sampling rate used
}

type node struct {
	// id is the heap-style path id (root 1, children 2id and 2id+1); it
	// seeds the node's sampling RNG, making the build independent of
	// execution order.
	id     uint64
	pred   predicate.Predicate
	groups []nodeGroup
	depth  int
}

func newTree(scorer *influence.Scorer, space *predicate.Space, params Params,
	groups []influence.Group, tupleInf func(int, int) float64) *tree {
	t := &tree{
		scorer:   scorer,
		space:    space,
		params:   params,
		groups:   groups,
		tupleInf: tupleInf,
		infCache: make([]groupInfCache, len(groups)),
	}
	for i := range t.infCache {
		t.infCache[i].m = make(map[int]float64)
	}
	return t
}

// rngFor derives a node-local RNG from the tree seed and the node id via a
// splitmix64-style mix, so sibling nodes get decorrelated streams and the
// draw sequence depends only on the node's position in the tree.
func (t *tree) rngFor(id uint64) *rand.Rand {
	x := uint64(t.params.SampleSeed) ^ (id * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x)))
}

func (t *tree) influenceOf(gi, row int) float64 {
	c := &t.infCache[gi]
	c.mu.RLock()
	v, ok := c.m[row]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = t.tupleInf(gi, row)
	c.mu.Lock()
	c.m[row] = v
	c.mu.Unlock()
	return v
}

// build runs the frontier partitioner over the pool and returns the leaves.
func (t *tree) build(pool *partition.Pool) []Leaf {
	parent := obs.SpanFrom(pool.Context())
	root := t.makeRoot(pool)
	frontier := []node{root}
	for level := 0; len(frontier) > 0; level++ {
		span := parent.Child("dt.level")
		span.SetAttr("level", level)
		span.SetAttr("nodes", len(frontier))
		type expansion struct {
			processed bool
			split     bool
			children  [2]node
		}
		results := make([]expansion, len(frontier))
		_ = pool.ForEach(len(frontier), func(i int) {
			children, split := t.process(&frontier[i])
			results[i] = expansion{processed: true, split: split, children: children}
		})
		// Collect on the coordinating goroutine, in frontier order, so the
		// leaf list is identical for any worker count.
		var next []node
		for i, r := range results {
			switch {
			case !r.processed:
				// Cancelled before this node ran: keep it as a coarse leaf
				// so the partitioning still tiles the space.
				t.emitLeaf(frontier[i])
			case r.split:
				next = append(next, r.children[0], r.children[1])
			default:
				t.emitLeaf(frontier[i])
			}
		}
		frontier = next
		span.SetAttr("split", len(next)/2)
		span.End()
		if pool.Cancelled() {
			t.interrupted = true
			for i := range frontier {
				t.emitLeaf(frontier[i])
			}
			break
		}
	}
	return t.leaves
}

// makeRoot draws the §6.1.2 initial sample and fixes the tree-global
// influence bounds. Root influence computations fan out over the pool (they
// dominate the cost of sampling-disabled builds); the reduction to bounds
// stays on the coordinating goroutine.
func (t *tree) makeRoot(pool *partition.Pool) node {
	root := node{id: 1, pred: predicate.True(), depth: 0}
	total := 0
	for _, g := range t.groups {
		total += g.Rows.Count()
	}
	rate := 1.0
	if !t.params.DisableSampling {
		rate = sample.InitialRate(total, t.params.Epsilon, t.params.Confidence)
	}
	rng := t.rngFor(root.id)
	for _, g := range t.groups {
		ng := nodeGroup{rate: rate}
		g.Rows.ForEach(func(r int) { ng.full = append(ng.full, r) })
		set := sample.Uniform(rng, g.Rows, rate)
		set.ForEach(func(r int) { ng.sampled = append(ng.sampled, r) })
		root.groups = append(root.groups, ng)
	}
	// Guarantee a minimally useful root sample.
	t.ensureMinSample(&root, rng)

	// Influence of every sampled root row, computed across the pool.
	type ref struct{ gi, idx int }
	var refs []ref
	for gi := range root.groups {
		ng := &root.groups[gi]
		ng.infs = make([]float64, len(ng.sampled))
		for i := range ng.sampled {
			refs = append(refs, ref{gi, i})
		}
	}
	computed := make([]bool, len(refs))
	if err := pool.ForEach(len(refs), func(i int) {
		r := refs[i]
		ng := &root.groups[r.gi]
		ng.infs[r.idx] = t.influenceOf(r.gi, ng.sampled[r.idx])
		computed[i] = true
	}); err != nil {
		// Cancelled mid-computation: drop the uncomputed sample slots so the
		// tree bounds and leaf statistics never mix in placeholder zeros.
		t.interrupted = true
		drop := make([]map[int]bool, len(root.groups))
		for i, r := range refs {
			if !computed[i] {
				if drop[r.gi] == nil {
					drop[r.gi] = make(map[int]bool)
				}
				drop[r.gi][r.idx] = true
			}
		}
		for gi := range root.groups {
			if drop[gi] == nil {
				continue
			}
			ng := &root.groups[gi]
			sampled := ng.sampled[:0]
			infs := ng.infs[:0]
			for i := range ng.sampled {
				if !drop[gi][i] {
					sampled = append(sampled, ng.sampled[i])
					infs = append(infs, ng.infs[i])
				}
			}
			ng.sampled, ng.infs = sampled, infs
		}
	}

	t.infL, t.infU = math.Inf(1), math.Inf(-1)
	for gi := range root.groups {
		for _, v := range root.groups[gi].infs {
			if v < t.infL {
				t.infL = v
			}
			if v > t.infU {
				t.infU = v
			}
		}
	}
	if math.IsInf(t.infL, 1) {
		t.infL, t.infU = 0, 0
	}
	t.minSize = t.params.MinSize
	if adaptive := total / 3; adaptive < t.minSize {
		t.minSize = adaptive
	}
	if t.minSize < 2 {
		t.minSize = 2
	}
	return root
}

// ensureMinSample tops up each group's sample to MinSize rows when the
// initial rate under-draws tiny groups.
func (t *tree) ensureMinSample(n *node, rng *rand.Rand) {
	for gi := range n.groups {
		ng := &n.groups[gi]
		if len(ng.sampled) >= t.params.MinSize || len(ng.sampled) == len(ng.full) {
			continue
		}
		have := make(map[int]bool, len(ng.sampled))
		for _, r := range ng.sampled {
			have[r] = true
		}
		perm := rng.Perm(len(ng.full))
		for _, idx := range perm {
			if len(ng.sampled) >= t.params.MinSize {
				break
			}
			r := ng.full[idx]
			if !have[r] {
				ng.sampled = append(ng.sampled, r)
				have[r] = true
			}
		}
		sort.Ints(ng.sampled)
	}
}

// nodeStats summarizes a node: pooled count/max and the per-group stds.
func (t *tree) nodeStats(n *node) (pooledCount int, pooledMax float64, maxStd float64) {
	pooledMax = math.Inf(-1)
	for gi := range n.groups {
		ng := &n.groups[gi]
		pooledCount += len(ng.infs)
		var sum, sumsq float64
		for _, v := range ng.infs {
			sum += v
			sumsq += v * v
			if v > pooledMax {
				pooledMax = v
			}
		}
		if len(ng.infs) > 0 {
			m := sum / float64(len(ng.infs))
			variance := sumsq/float64(len(ng.infs)) - m*m
			if variance < 0 {
				variance = 0
			}
			if sd := math.Sqrt(variance); sd > maxStd {
				maxStd = sd
			}
		}
	}
	if math.IsInf(pooledMax, -1) {
		pooledMax = 0
	}
	return pooledCount, pooledMax, maxStd
}

// process decides one node's fate: either it splits (returning the two
// children) or it is a leaf. Pure with respect to the node, so frontier
// nodes can be processed concurrently.
func (t *tree) process(n *node) (children [2]node, split bool) {
	count, infMax, maxStd := t.nodeStats(n)
	thr := threshold(infMax, t.infL, t.infU, t.params.TauMin, t.params.TauMax, t.params.InflectionP)
	if n.depth >= t.params.MaxDepth || count < t.minSize || maxStd <= thr {
		return children, false
	}
	best, ok := t.bestSplit(n, maxStd)
	if !ok {
		return children, false
	}
	left, right := t.apply(n, best)
	if t.degenerate(left) || t.degenerate(right) {
		return children, false
	}
	return [2]node{left, right}, true
}

func (t *tree) degenerate(n node) bool {
	total := 0
	for _, g := range n.groups {
		total += len(g.full)
	}
	return total == 0
}

// candidateSplit describes a potential binary split.
type candidateSplit struct {
	col      int
	metric   float64
	value    float64 // continuous split point
	discrete bool
	leftVals []int32 // discrete: codes routed left
}

// bestSplit evaluates all candidate (attribute, cut) pairs, combining the
// per-group error metrics by max (§6.1.3), and returns the minimizer if it
// improves on the node's current metric.
func (t *tree) bestSplit(n *node, nodeStd float64) (candidateSplit, bool) {
	best := candidateSplit{metric: math.Inf(1)}
	for _, col := range t.space.Columns() {
		if t.space.Kind(col) == relation.Continuous {
			t.continuousSplits(n, col, &best)
		} else {
			t.discreteSplit(n, col, &best)
		}
	}
	if math.IsInf(best.metric, 1) || best.metric >= nodeStd {
		return candidateSplit{}, false
	}
	return best, true
}

// continuousSplits tries quantile cut points of the pooled sample.
func (t *tree) continuousSplits(n *node, col int, best *candidateSplit) {
	vals := t.space.Table().Floats(col)
	var pool []float64
	for _, g := range n.groups {
		for _, r := range g.sampled {
			pool = append(pool, vals[r])
		}
	}
	if len(pool) < 2 {
		return
	}
	sort.Float64s(pool)
	k := t.params.ContSplitCandidates
	tried := make(map[float64]bool, k)
	for i := 1; i <= k; i++ {
		v := pool[len(pool)*i/(k+1)]
		if v <= pool[0] || v > pool[len(pool)-1] || tried[v] {
			continue
		}
		tried[v] = true
		metric := t.splitMetric(n, func(r int) bool { return vals[r] < v })
		if metric < best.metric {
			*best = candidateSplit{col: col, metric: metric, value: v}
		}
	}
}

// discreteSplit orders the node's values by pooled mean influence and scans
// every prefix cut (the CART categorical reduction).
func (t *tree) discreteSplit(n *node, col int, best *candidateSplit) {
	codes := t.space.Table().Codes(col)
	type valStat struct {
		code       int32
		count      int
		sum        float64
		groupCnt   []int
		groupSum   []float64
		groupSumSq []float64
	}
	stats := make(map[int32]*valStat)
	for gi := range n.groups {
		g := &n.groups[gi]
		for i, r := range g.sampled {
			c := codes[r]
			vs, ok := stats[c]
			if !ok {
				vs = &valStat{
					code:       c,
					groupCnt:   make([]int, len(n.groups)),
					groupSum:   make([]float64, len(n.groups)),
					groupSumSq: make([]float64, len(n.groups)),
				}
				stats[c] = vs
			}
			v := g.infs[i]
			vs.count++
			vs.sum += v
			vs.groupCnt[gi]++
			vs.groupSum[gi] += v
			vs.groupSumSq[gi] += v * v
		}
	}
	if len(stats) < 2 {
		return
	}
	ordered := make([]*valStat, 0, len(stats))
	for _, vs := range stats {
		ordered = append(ordered, vs)
	}
	sort.Slice(ordered, func(i, j int) bool {
		mi := ordered[i].sum / float64(ordered[i].count)
		mj := ordered[j].sum / float64(ordered[j].count)
		if mi != mj {
			return mi < mj
		}
		return ordered[i].code < ordered[j].code
	})

	nG := len(n.groups)
	// Prefix accumulators per group.
	cntL := make([]float64, nG)
	sumL := make([]float64, nG)
	sumSqL := make([]float64, nG)
	cntT := make([]float64, nG)
	sumT := make([]float64, nG)
	sumSqT := make([]float64, nG)
	for _, vs := range ordered {
		for gi := 0; gi < nG; gi++ {
			cntT[gi] += float64(vs.groupCnt[gi])
			sumT[gi] += vs.groupSum[gi]
			sumSqT[gi] += vs.groupSumSq[gi]
		}
	}
	for cut := 0; cut < len(ordered)-1; cut++ {
		vs := ordered[cut]
		for gi := 0; gi < nG; gi++ {
			cntL[gi] += float64(vs.groupCnt[gi])
			sumL[gi] += vs.groupSum[gi]
			sumSqL[gi] += vs.groupSumSq[gi]
		}
		metric := 0.0
		for gi := 0; gi < nG; gi++ {
			nL, nR := cntL[gi], cntT[gi]-cntL[gi]
			if nL+nR == 0 {
				continue
			}
			sdL := stdFromSums(sumL[gi], sumSqL[gi], nL)
			sdR := stdFromSums(sumT[gi]-sumL[gi], sumSqT[gi]-sumSqL[gi], nR)
			m := (nL*sdL + nR*sdR) / (nL + nR)
			if m > metric {
				metric = m
			}
		}
		if metric < best.metric {
			left := make([]int32, 0, cut+1)
			for i := 0; i <= cut; i++ {
				left = append(left, ordered[i].code)
			}
			*best = candidateSplit{col: col, metric: metric, discrete: true, leftVals: left}
		}
	}
}

func stdFromSums(sum, sumsq, n float64) float64 {
	if n <= 0 {
		return 0
	}
	m := sum / n
	v := sumsq/n - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// splitMetric computes max over groups of the weighted child std for an
// arbitrary left-routing function.
func (t *tree) splitMetric(n *node, goesLeft func(row int) bool) float64 {
	worst := 0.0
	for gi := range n.groups {
		g := &n.groups[gi]
		var cntL, sumL, sumSqL, cntR, sumR, sumSqR float64
		for i, r := range g.sampled {
			v := g.infs[i]
			if goesLeft(r) {
				cntL++
				sumL += v
				sumSqL += v * v
			} else {
				cntR++
				sumR += v
				sumSqR += v * v
			}
		}
		if cntL+cntR == 0 {
			continue
		}
		m := (cntL*stdFromSums(sumL, sumSqL, cntL) + cntR*stdFromSums(sumR, sumSqR, cntR)) / (cntL + cntR)
		if m > worst {
			worst = m
		}
	}
	return worst
}

// apply materializes the two children of a split, re-sampling each child at
// the §6.1.2 stratified rate. Each child samples from its own node-id RNG.
func (t *tree) apply(n *node, sp candidateSplit) (node, node) {
	table := t.space.Table()
	var goesLeft func(row int) bool
	var leftClause, rightClause predicate.Clause
	name := t.space.Name(sp.col)

	if sp.discrete {
		leftSet := make(map[int32]bool, len(sp.leftVals))
		for _, c := range sp.leftVals {
			leftSet[c] = true
		}
		codes := table.Codes(sp.col)
		goesLeft = func(r int) bool { return leftSet[codes[r]] }
		// Right values: the node's current values minus the left ones.
		cur, ok := n.pred.ClauseOn(sp.col)
		if !ok {
			cur = t.space.FullClause(sp.col)
		}
		var rightVals []int32
		for _, c := range cur.Values {
			if !leftSet[c] {
				rightVals = append(rightVals, c)
			}
		}
		leftClause = predicate.NewSetClause(sp.col, name, sp.leftVals)
		rightClause = predicate.NewSetClause(sp.col, name, rightVals)
	} else {
		vals := table.Floats(sp.col)
		goesLeft = func(r int) bool { return vals[r] < sp.value }
		cur, ok := n.pred.ClauseOn(sp.col)
		if !ok {
			cur = t.space.FullClause(sp.col)
		}
		leftClause = predicate.NewRangeClause(sp.col, name, cur.Lo, sp.value, false)
		rightClause = predicate.NewRangeClause(sp.col, name, sp.value, cur.Hi, cur.HiInc)
	}

	left := node{id: 2 * n.id, pred: replaceClause(n.pred, leftClause), depth: n.depth + 1}
	right := node{id: 2*n.id + 1, pred: replaceClause(n.pred, rightClause), depth: n.depth + 1}
	leftRng := t.rngFor(left.id)
	rightRng := t.rngFor(right.id)

	for gi := range n.groups {
		g := &n.groups[gi]
		lg, rg := nodeGroup{}, nodeGroup{}
		for _, r := range g.full {
			if goesLeft(r) {
				lg.full = append(lg.full, r)
			} else {
				rg.full = append(rg.full, r)
			}
		}
		// Influence mass of the parent's sample on each side.
		var infLmass, infRmass float64
		for i, r := range g.sampled {
			if goesLeft(r) {
				infLmass += math.Abs(g.infs[i])
			} else {
				infRmass += math.Abs(g.infs[i])
			}
		}
		if t.params.DisableSampling {
			lg.rate, rg.rate = 1, 1
		} else {
			// No minimum rate: the fixed sample budget |S| flowing down the
			// tree is what bounds its growth (§6.1.2) — influential
			// children inherit most of it, non-influential ones starve and
			// the `count < minSize` stop fires.
			lg.rate, rg.rate = sample.SplitRates(infLmass, infRmass,
				len(g.sampled), len(lg.full), len(rg.full), 0)
		}
		t.sampleChild(gi, &lg, leftRng)
		t.sampleChild(gi, &rg, rightRng)
		left.groups = append(left.groups, lg)
		right.groups = append(right.groups, rg)
	}
	return left, right
}

// sampleChild draws the child's sample from its full rows and computes the
// (memoized) influences.
func (t *tree) sampleChild(gi int, g *nodeGroup, rng *rand.Rand) {
	if g.rate >= 1 {
		g.sampled = append([]int(nil), g.full...)
	} else {
		for _, r := range g.full {
			if rng.Float64() < g.rate {
				g.sampled = append(g.sampled, r)
			}
		}
		// Never sample a non-empty child down to nothing.
		if len(g.sampled) == 0 && len(g.full) > 0 {
			g.sampled = append(g.sampled, g.full[rng.Intn(len(g.full))])
		}
	}
	g.infs = make([]float64, len(g.sampled))
	for i, r := range g.sampled {
		g.infs[i] = t.influenceOf(gi, r)
	}
}

// replaceClause swaps the clause on cl.Col (if any) for cl.
func replaceClause(p predicate.Predicate, cl predicate.Clause) predicate.Predicate {
	clauses := make([]predicate.Clause, 0, p.NumClauses()+1)
	for _, c := range p.Clauses() {
		if c.Col != cl.Col {
			clauses = append(clauses, c)
		}
	}
	clauses = append(clauses, cl)
	return predicate.MustNew(clauses...)
}

// emitLeaf converts a node into a Leaf with the §6.3 statistics. Only the
// coordinating goroutine emits, so no synchronization is needed.
func (t *tree) emitLeaf(n node) {
	leaf := Leaf{
		Pred:       n.pred,
		Cards:      make([]float64, len(n.groups)),
		Means:      make([]float64, len(n.groups)),
		CachedRows: make([]int, len(n.groups)),
	}
	var pooledSum float64
	pooledCount := 0
	for gi := range n.groups {
		g := &n.groups[gi]
		leaf.Cards[gi] = float64(len(g.full))
		leaf.CachedRows[gi] = -1
		if len(g.sampled) == 0 {
			continue
		}
		var sum float64
		for _, v := range g.infs {
			sum += v
		}
		mean := sum / float64(len(g.infs))
		leaf.Means[gi] = mean
		pooledSum += sum
		pooledCount += len(g.infs)
		bestDist := math.Inf(1)
		for i, v := range g.infs {
			if d := math.Abs(v - mean); d < bestDist {
				bestDist = d
				leaf.CachedRows[gi] = g.sampled[i]
			}
		}
	}
	if pooledCount > 0 {
		leaf.MeanInfluence = pooledSum / float64(pooledCount)
	}
	leaf.SampledCount = pooledCount
	t.leaves = append(t.leaves, leaf)
}
