package dt

import (
	"context"
	"testing"
	"time"
)

// TestParallelPartitioningIdenticalToSerial asserts the DT acceptance
// criterion: with sampling enabled (the path that consumes randomness), a
// Workers=8 build produces exactly the serial build's leaves and candidate
// scores, because every node draws from an RNG seeded by its tree position.
func TestParallelPartitioningIdenticalToSerial(t *testing.T) {
	scorer, space, _ := setup(t, 2, 300, 80, 0.1)
	serial, err := RunContext(context.Background(), scorer, space, Params{Epsilon: 0.05, SampleSeed: 7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := RunContext(context.Background(), scorer, space, Params{Epsilon: 0.05, SampleSeed: 7}, workers)
		if err != nil {
			t.Fatal(err)
		}
		sp, pp := serial.Partitioning, par.Partitioning
		if len(sp.OutlierLeaves) != len(pp.OutlierLeaves) {
			t.Fatalf("workers=%d: leaf counts differ: %d vs %d",
				workers, len(sp.OutlierLeaves), len(pp.OutlierLeaves))
		}
		for i := range sp.OutlierLeaves {
			if !sp.OutlierLeaves[i].Pred.Equal(pp.OutlierLeaves[i].Pred) {
				t.Fatalf("workers=%d: leaf %d predicate differs: %v vs %v",
					workers, i, sp.OutlierLeaves[i].Pred, pp.OutlierLeaves[i].Pred)
			}
			if sp.OutlierLeaves[i].MeanInfluence != pp.OutlierLeaves[i].MeanInfluence {
				t.Fatalf("workers=%d: leaf %d mean influence differs", workers, i)
			}
		}
		if len(serial.Candidates) != len(par.Candidates) {
			t.Fatalf("workers=%d: candidate counts differ: %d vs %d",
				workers, len(serial.Candidates), len(par.Candidates))
		}
		for i := range serial.Candidates {
			if serial.Candidates[i].Pred.Key() != par.Candidates[i].Pred.Key() ||
				serial.Candidates[i].Score != par.Candidates[i].Score {
				t.Fatalf("workers=%d: candidate %d differs: %s %v vs %s %v", workers, i,
					serial.Candidates[i].Pred.Key(), serial.Candidates[i].Score,
					par.Candidates[i].Pred.Key(), par.Candidates[i].Score)
			}
		}
	}
}

// TestPartitionContextCancellation checks that a cancelled build still
// returns a partitioning whose leaves tile the outlier groups (unfinished
// frontier nodes become coarse leaves) and is flagged interrupted.
func TestPartitionContextCancellation(t *testing.T) {
	scorer, space, _ := setup(t, 2, 300, 80, 0.1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context is the extreme case: the build must still
	// return a valid (single coarse leaf per tree) partitioning.
	pt, err := PartitionContext(ctx, scorer, space, Params{DisableSampling: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !pt.Interrupted {
		t.Fatal("cancelled build not marked interrupted")
	}
	if len(pt.OutlierLeaves) == 0 {
		t.Fatal("cancelled build returned no leaves")
	}
	task := scorer.Task()
	for _, g := range task.Outliers {
		g.Rows.ForEach(func(r int) {
			matches := 0
			for _, leaf := range pt.OutlierLeaves {
				if leaf.Pred.Match(task.Table.Data(), r) {
					matches++
				}
			}
			if matches != 1 {
				t.Fatalf("row %d matches %d leaves of the interrupted partitioning", r, matches)
			}
		})
	}
}

// TestRunContextCancellationPrompt checks a mid-build deadline stops the
// expansion quickly.
func TestRunContextCancellationPrompt(t *testing.T) {
	scorer, space, _ := setup(t, 3, 400, 80, 0.1)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunContext(ctx, scorer, space, Params{DisableSampling: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
	if !res.Partitioning.Interrupted {
		t.Fatal("expired build not marked interrupted")
	}
}
