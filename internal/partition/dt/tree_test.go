package dt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// bruteWeightedStd computes the split metric the slow way for one group.
func bruteWeightedStd(infs []float64, left []bool) float64 {
	var l, r []float64
	for i, v := range infs {
		if left[i] {
			l = append(l, v)
		} else {
			r = append(r, v)
		}
	}
	std := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		m := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - m) * (x - m)
		}
		return math.Sqrt(ss / float64(len(xs)))
	}
	n := float64(len(infs))
	return (float64(len(l))*std(l) + float64(len(r))*std(r)) / n
}

// Property: splitMetric equals the brute-force weighted std, maximized over
// groups.
func TestSplitMetricMatchesBruteForceProperty(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := relation.NewBuilder(schema)
		n := 10 + rng.Intn(60)
		for i := 0; i < n; i++ {
			b.MustAppend(relation.Row{
				relation.S([]string{"a", "b"}[rng.Intn(2)]),
				relation.F(rng.Float64() * 100),
				relation.F(rng.Float64() * 50),
			})
		}
		tbl := b.Build()
		groupsRows := map[string]*relation.RowSet{
			"a": relation.NewRowSet(tbl.NumRows()),
			"b": relation.NewRowSet(tbl.NumRows()),
		}
		gCol := tbl.Schema().MustIndex("g")
		for r := 0; r < tbl.NumRows(); r++ {
			groupsRows[tbl.Str(gCol, r)].Add(r)
		}
		var groups []influence.Group
		for _, key := range []string{"a", "b"} {
			if groupsRows[key].IsEmpty() {
				continue
			}
			groups = append(groups, influence.Group{
				Key: key, Rows: groupsRows[key], Direction: influence.TooHigh,
			})
		}
		task := &influence.Task{
			Table:    tbl,
			Agg:      aggregate.Avg{},
			AggCol:   tbl.Schema().MustIndex("v"),
			Outliers: groups,
			Lambda:   0.5,
			C:        1,
		}
		scorer, err := influence.NewScorer(task)
		if err != nil {
			return false
		}
		space, err := predicate.NewSpace(tbl, []string{"x"}, nil)
		if err != nil {
			return false
		}
		tr := newTree(scorer, space, Params{DisableSampling: true}.withDefaults(),
			groups, scorer.TupleOutlierInfluence)

		// Build a root node manually with full sampling.
		root := node{pred: predicate.True()}
		for gi, g := range groups {
			ng := nodeGroup{rate: 1}
			g.Rows.ForEach(func(r int) {
				ng.full = append(ng.full, r)
				ng.sampled = append(ng.sampled, r)
				ng.infs = append(ng.infs, tr.influenceOf(gi, r))
			})
			root.groups = append(root.groups, ng)
		}

		// A random threshold split on x.
		thresh := rng.Float64() * 100
		vals := tbl.Floats(tbl.Schema().MustIndex("x"))
		got := tr.splitMetric(&root, func(r int) bool { return vals[r] < thresh })

		want := 0.0
		for gi := range root.groups {
			g := &root.groups[gi]
			if len(g.sampled) == 0 {
				continue
			}
			left := make([]bool, len(g.sampled))
			for i, r := range g.sampled {
				left[i] = vals[r] < thresh
			}
			if m := bruteWeightedStd(g.infs, left); m > want {
				want = m
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStdFromSums checks the incremental std helper against direct
// computation.
func TestStdFromSums(t *testing.T) {
	xs := []float64{3, 7, 7, 19}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	got := stdFromSums(sum, sumsq, float64(len(xs)))
	mean := sum / 4
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	want := math.Sqrt(ss / 4)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("stdFromSums = %v, want %v", got, want)
	}
	if stdFromSums(0, 0, 0) != 0 {
		t.Error("empty std should be 0")
	}
	// Cancellation must not go negative.
	if v := stdFromSums(1e8, 1e8*1e8/4, 4); math.IsNaN(v) {
		t.Error("cancellation produced NaN")
	}
}
