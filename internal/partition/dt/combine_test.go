package dt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// combineSpace builds a 2-continuous + 1-discrete search space over a grid
// table.
func combineSpace(t testing.TB) *predicate.Space {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "y", Kind: relation.Continuous},
		relation.Column{Name: "d", Kind: relation.Discrete},
	)
	b := relation.NewBuilder(schema)
	for i := 0; i < 100; i++ {
		b.MustAppend(relation.Row{
			relation.F(float64(i)),
			relation.F(float64((i * 7) % 100)),
			relation.S([]string{"a", "b", "c", "e"}[i%4]),
		})
	}
	tbl := b.Build()
	space, err := predicate.NewSpace(tbl, []string{"x", "y", "d"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return space
}

func box(xlo, xhi, ylo, yhi float64) predicate.Predicate {
	return predicate.MustNew(
		predicate.NewRangeClause(0, "x", xlo, xhi, false),
		predicate.NewRangeClause(1, "y", ylo, yhi, false),
	)
}

func TestSplitByBoxFullyInside(t *testing.T) {
	space := combineSpace(t)
	p := box(10, 20, 10, 20)
	h := box(0, 100, 0, 100)
	inside, ok, outside := splitByBox(p, h, space)
	if !ok {
		t.Fatal("inside piece missing")
	}
	if !inside.Equal(p) {
		t.Errorf("inside = %v, want %v", inside, p)
	}
	if len(outside) != 0 {
		t.Errorf("outside pieces = %v, want none", outside)
	}
}

func TestSplitByBoxDisjoint(t *testing.T) {
	space := combineSpace(t)
	p := box(10, 20, 10, 20)
	h := box(50, 60, 50, 60)
	inside, ok, outside := splitByBox(p, h, space)
	if ok {
		t.Fatalf("unexpected inside piece %v", inside)
	}
	if len(outside) != 1 || !outside[0].Equal(p) {
		t.Errorf("outside = %v, want the original box", outside)
	}
}

func TestSplitByBoxPartialOverlap(t *testing.T) {
	space := combineSpace(t)
	p := box(0, 40, 0, 40)
	h := box(20, 60, 20, 60)
	inside, ok, outside := splitByBox(p, h, space)
	if !ok {
		t.Fatal("no inside piece")
	}
	// Inside must be [20,40) × [20,40).
	xc, _ := inside.ClauseOn(0)
	yc, _ := inside.ClauseOn(1)
	if xc.Lo != 20 || xc.Hi != 40 || yc.Lo != 20 || yc.Hi != 40 {
		t.Errorf("inside = %v", inside)
	}
	// Outside pieces: x ∈ [0,20) (full y), plus x ∈ [20,40) with y ∈ [0,20).
	if len(outside) != 2 {
		t.Fatalf("outside pieces = %d, want 2: %v", len(outside), outside)
	}
}

func TestSplitByBoxDiscrete(t *testing.T) {
	space := combineSpace(t)
	p := predicate.MustNew(predicate.NewSetClause(2, "d", []int32{0, 1, 2}))
	h := predicate.MustNew(predicate.NewSetClause(2, "d", []int32{1}))
	inside, ok, outside := splitByBox(p, h, space)
	if !ok {
		t.Fatal("no inside piece")
	}
	ic, _ := inside.ClauseOn(2)
	if len(ic.Values) != 1 || ic.Values[0] != 1 {
		t.Errorf("inside values = %v, want [1]", ic.Values)
	}
	if len(outside) != 1 {
		t.Fatalf("outside = %v", outside)
	}
	oc, _ := outside[0].ClauseOn(2)
	if len(oc.Values) != 2 {
		t.Errorf("outside values = %v, want [0 2]", oc.Values)
	}
}

func TestSplitByBoxUnconstrainedAttribute(t *testing.T) {
	space := combineSpace(t)
	// p constrains only x; h constrains only y: the split must introduce
	// the y clause via the domain.
	p := predicate.MustNew(predicate.NewRangeClause(0, "x", 10, 30, false))
	h := predicate.MustNew(predicate.NewRangeClause(1, "y", 20, 50, false))
	inside, ok, outside := splitByBox(p, h, space)
	if !ok {
		t.Fatal("no inside piece")
	}
	yc, found := inside.ClauseOn(1)
	if !found || yc.Lo != 20 || yc.Hi != 50 {
		t.Errorf("inside y clause = %+v", yc)
	}
	// Outside: y ∈ [0,20) and y ∈ [50, 99] slices of p.
	if len(outside) != 2 {
		t.Fatalf("outside = %v", outside)
	}
}

// Property: splitByBox partitions p — on every table row, membership in p
// equals membership in exactly one piece.
func TestSplitByBoxPartitionProperty(t *testing.T) {
	space := combineSpace(t)
	tbl := space.Table()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() predicate.Predicate {
			var clauses []predicate.Clause
			if rng.Intn(3) > 0 {
				lo := rng.Float64() * 80
				clauses = append(clauses, predicate.NewRangeClause(0, "x", lo, lo+rng.Float64()*40, false))
			}
			if rng.Intn(3) > 0 {
				lo := rng.Float64() * 80
				clauses = append(clauses, predicate.NewRangeClause(1, "y", lo, lo+rng.Float64()*40, false))
			}
			if rng.Intn(3) == 0 {
				n := 1 + rng.Intn(3)
				codes := make([]int32, n)
				for i := range codes {
					codes[i] = int32(rng.Intn(4))
				}
				clauses = append(clauses, predicate.NewSetClause(2, "d", codes))
			}
			return predicate.MustNew(clauses...)
		}
		p, h := mk(), mk()
		inside, ok, outside := splitByBox(p, h, space)
		pieces := append([]predicate.Predicate{}, outside...)
		if ok {
			pieces = append(pieces, inside)
		}
		for r := 0; r < tbl.NumRows(); r++ {
			count := 0
			for _, piece := range pieces {
				if piece.Match(tbl, r) {
					count++
				}
			}
			want := 0
			if p.Match(tbl, r) {
				want = 1
			}
			if count != want {
				return false
			}
		}
		// The inside piece must lie within h.
		if ok {
			for r := 0; r < tbl.NumRows(); r++ {
				if inside.Match(tbl, r) && !h.Match(tbl, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
