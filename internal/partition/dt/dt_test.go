package dt

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

func setup(t testing.TB, dims, perGroup int, mu float64, c float64) (*influence.Scorer, *predicate.Space, *synth.Dataset) {
	t.Helper()
	ds := synth.Generate(synth.Config{
		Dims: dims, TuplesPerGroup: perGroup, Groups: 6, OutlierGroups: 3, Mu: mu, Seed: 21,
	})
	task, space, err := eval.SynthTask(ds, "sum", 0.5, c)
	if err != nil {
		t.Fatal(err)
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	return scorer, space, ds
}

func TestThresholdCurve(t *testing.T) {
	// ω must be τmax for low infMax, τmin at infMax = infU, monotone
	// non-increasing in between; threshold scales by the spread.
	infL, infU := 0.0, 100.0
	tauMin, tauMax, p := 0.05, 0.5, 0.5
	atMax := threshold(infU, infL, infU, tauMin, tauMax, p)
	if math.Abs(atMax-tauMin*(infU-infL)) > 1e-9 {
		t.Errorf("threshold(infU) = %v, want %v", atMax, tauMin*(infU-infL))
	}
	atLow := threshold(infL, infL, infU, tauMin, tauMax, p)
	if math.Abs(atLow-tauMax*(infU-infL)) > 1e-9 {
		t.Errorf("threshold(infL) = %v, want %v", atLow, tauMax*(infU-infL))
	}
	atInflect := threshold(50, infL, infU, tauMin, tauMax, p)
	if math.Abs(atInflect-tauMax*(infU-infL)) > 1e-9 {
		t.Errorf("threshold at inflection = %v, want τmax·spread", atInflect)
	}
	prev := math.Inf(1)
	for x := 0.0; x <= 100; x += 5 {
		th := threshold(x, infL, infU, tauMin, tauMax, p)
		if th > prev+1e-12 {
			t.Fatalf("threshold increased at infMax=%v", x)
		}
		prev = th
	}
	if got := threshold(5, 3, 3, tauMin, tauMax, p); got != 0 {
		t.Errorf("degenerate spread threshold = %v, want 0", got)
	}
}

func TestPartitionLeavesTileOutlierGroups(t *testing.T) {
	scorer, space, _ := setup(t, 2, 200, 80, 0.1)
	pt, err := Partition(scorer, space, Params{DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.OutlierLeaves) == 0 {
		t.Fatal("no outlier leaves")
	}
	task := scorer.Task()
	gO := eval.OutlierUnion(task)
	gO.ForEach(func(r int) {
		matches := 0
		for _, leaf := range pt.OutlierLeaves {
			if leaf.Pred.Match(task.Table.Data(), r) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("row %d matches %d outlier leaves, want exactly 1", r, matches)
		}
	})
}

func TestCombinedPiecesTileOutlierGroups(t *testing.T) {
	scorer, space, _ := setup(t, 2, 200, 80, 0.1)
	pt, err := Partition(scorer, space, Params{DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	task := scorer.Task()
	gO := eval.OutlierUnion(task)
	gO.ForEach(func(r int) {
		matches := 0
		for _, piece := range pt.Combined {
			if piece.pred.Match(task.Table.Data(), r) {
				matches++
			}
		}
		if matches != 1 {
			t.Fatalf("row %d matches %d combined pieces, want exactly 1", r, matches)
		}
	})
}

func TestLeafCardinalitiesAreExact(t *testing.T) {
	scorer, space, _ := setup(t, 2, 150, 80, 0.1)
	pt, err := Partition(scorer, space, Params{DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	task := scorer.Task()
	for _, leaf := range pt.OutlierLeaves {
		for gi, g := range task.Outliers {
			want := leaf.Pred.Count(task.Table.Data(), g.Rows)
			if int(leaf.Cards[gi]) != want {
				t.Fatalf("leaf %v card[%d] = %v, want %d", leaf.Pred, gi, leaf.Cards[gi], want)
			}
		}
	}
}

func TestDTFindsPlantedCube(t *testing.T) {
	scorer, space, ds := setup(t, 2, 300, 80, 0.1)
	res, err := Run(scorer, space, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// After merging, the top candidate should recover the planted cube.
	merger := merge.New(scorer, space, merge.Params{TopQuartileOnly: true})
	merged := merger.Merge(res.Candidates)
	best, ok := partition.Top(merged)
	if !ok {
		t.Fatal("merger returned nothing")
	}
	acc := eval.Score(best.Pred, ds.Table, eval.OutlierUnion(scorer.Task()), ds.OuterRows)
	if acc.F1 < 0.5 {
		t.Errorf("merged F1 = %v (prec %v rec %v), pred = %v",
			acc.F1, acc.Precision, acc.Recall, best.Pred)
	}
}

func TestDTWithSamplingStillWorks(t *testing.T) {
	scorer, space, ds := setup(t, 2, 400, 80, 0.1)
	res, err := Run(scorer, space, Params{Epsilon: 0.05, SampleSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	merger := merge.New(scorer, space, merge.Params{TopQuartileOnly: true})
	best, ok := partition.Top(merger.Merge(res.Candidates))
	if !ok {
		t.Fatal("no merged candidates")
	}
	acc := eval.Score(best.Pred, ds.Table, eval.OutlierUnion(scorer.Task()), ds.OuterRows)
	if acc.F1 < 0.4 {
		t.Errorf("sampled F1 = %v, pred = %v", acc.F1, best.Pred)
	}
}

func TestPartitioningReusableAcrossC(t *testing.T) {
	scorer, space, _ := setup(t, 2, 150, 80, 0.5)
	pt, err := Partition(scorer, space, Params{DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	candsHighC := pt.Candidates(scorer)

	// Re-score the same partitioning with c = 0.
	task0 := *scorer.Task()
	task0.C = 0
	scorer0, err := influence.NewScorer(&task0)
	if err != nil {
		t.Fatal(err)
	}
	candsLowC := pt.Candidates(scorer0)
	if len(candsHighC) != len(candsLowC) {
		t.Fatalf("candidate counts differ: %d vs %d", len(candsHighC), len(candsLowC))
	}
	// Scores must differ somewhere (c matters) while predicates coincide.
	keys := func(cs []partition.Candidate) map[string]bool {
		m := map[string]bool{}
		for _, c := range cs {
			m[c.Pred.Key()] = true
		}
		return m
	}
	k1, k2 := keys(candsHighC), keys(candsLowC)
	for k := range k1 {
		if !k2[k] {
			t.Fatal("predicate sets differ across c")
		}
	}
}

func TestDTRejectsNonIndependentAggregate(t *testing.T) {
	scorer, space, _ := setup(t, 2, 100, 80, 0.1)
	task := *scorer.Task()
	task.Agg = aggregate.Median{}
	s2, err := influence.NewScorer(&task)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(s2, space, Params{}); err == nil {
		t.Fatal("expected error for non-independent aggregate")
	}
}

func TestDiscreteSplitting(t *testing.T) {
	// A dataset whose outliers are keyed by a discrete attribute: the tree
	// must split on it.
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "sensor", Kind: relation.Discrete},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	for i := 0; i < 200; i++ {
		sensor := []string{"s1", "s2", "s3", "s4"}[i%4]
		v := 10.0
		if sensor == "s3" {
			v = 90
		}
		b.MustAppend(relation.Row{relation.S("out"), relation.S(sensor), relation.F(v)})
	}
	for i := 0; i < 200; i++ {
		b.MustAppend(relation.Row{relation.S("hold"), relation.S([]string{"s1", "s2", "s3", "s4"}[i%4]), relation.F(10)})
	}
	tbl := b.Build()
	out := relation.NewRowSet(tbl.NumRows())
	hold := relation.NewRowSet(tbl.NumRows())
	for r := 0; r < 200; r++ {
		out.Add(r)
	}
	for r := 200; r < 400; r++ {
		hold.Add(r)
	}
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Avg{},
		AggCol:   tbl.Schema().MustIndex("v"),
		Outliers: []influence.Group{{Key: "out", Rows: out, Direction: influence.TooHigh}},
		HoldOuts: []influence.Group{{Key: "hold", Rows: hold}},
		Lambda:   0.5,
		C:        1,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	space, err := predicate.NewSpace(tbl, []string{"sensor"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(scorer, space, Params{DisableSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := partition.Top(res.Candidates)
	if !ok {
		t.Fatal("no candidates")
	}
	if got := best.Pred.Format(tbl); got != "sensor in ('s3')" {
		t.Errorf("best = %q, want sensor in ('s3')", got)
	}
}
