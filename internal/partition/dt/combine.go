package dt

import (
	"math"

	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// combine implements §6.1.4: outlier partitions are split along their
// intersections with influential hold-out partitions, so pieces that would
// perturb hold-out results are separated (and flagged) from pieces that only
// influence outliers.
func (pt *Partitioning) combine(space *predicate.Space, params Params) {
	influential := influentialHoldOuts(pt.HoldOutLeaves, params.HoldOutFrac)
	pt.Combined = pt.Combined[:0]
	for li, leaf := range pt.OutlierLeaves {
		pending := []predicate.Predicate{leaf.Pred}
		for _, h := range influential {
			var next []predicate.Predicate
			for _, piece := range pending {
				inside, ok, outside := splitByBox(piece, h.Pred, space)
				if ok {
					pt.Combined = append(pt.Combined, combinedPiece{
						pred:              inside,
						source:            li,
						influencesHoldOut: true,
					})
				}
				next = append(next, outside...)
			}
			pending = next
		}
		for _, piece := range pending {
			pt.Combined = append(pt.Combined, combinedPiece{pred: piece, source: li})
		}
	}
}

// influentialHoldOuts selects hold-out leaves whose mean |influence| is at
// least frac of the largest leaf's.
func influentialHoldOuts(leaves []Leaf, frac float64) []Leaf {
	maxAbs := 0.0
	for _, l := range leaves {
		if a := math.Abs(l.MeanInfluence); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return nil
	}
	var out []Leaf
	for _, l := range leaves {
		if math.Abs(l.MeanInfluence) >= frac*maxAbs {
			out = append(out, l)
		}
	}
	return out
}

// splitByBox partitions predicate p along box h: the piece inside h (ok
// reports whether it is non-empty) and the pieces outside h. The outside
// pieces are mutually disjoint and disjoint from the inside piece (up to
// boundary inclusivity of closed upper bounds, which DT boxes only use at
// the domain maximum).
func splitByBox(p, h predicate.Predicate, space *predicate.Space) (predicate.Predicate, bool, []predicate.Predicate) {
	rem := p
	var outside []predicate.Predicate
	for _, hc := range h.Clauses() {
		pc, ok := rem.ClauseOn(hc.Col)
		if !ok {
			pc = space.FullClause(hc.Col)
		}
		if hc.Kind == relation.Continuous {
			lo := math.Max(pc.Lo, hc.Lo)
			hi := math.Min(pc.Hi, hc.Hi)
			hiInc := pc.HiInc && hc.HiInc
			if pc.Hi < hc.Hi {
				hiInc = pc.HiInc
			} else if hc.Hi < pc.Hi {
				hiInc = hc.HiInc
			}
			if lo > hi || (lo == hi && !hiInc) {
				// No overlap on this attribute: everything is outside.
				return predicate.Predicate{}, false, append(outside, rem)
			}
			if pc.Lo < lo {
				left := predicate.NewRangeClause(hc.Col, hc.Name, pc.Lo, lo, false)
				outside = append(outside, replaceClause(rem, left))
			}
			if hi < pc.Hi {
				right := predicate.NewRangeClause(hc.Col, hc.Name, hi, pc.Hi, pc.HiInc)
				outside = append(outside, replaceClause(rem, right))
			}
			rem = replaceClause(rem, predicate.NewRangeClause(hc.Col, hc.Name, lo, hi, hiInc))
		} else {
			var inter, outs []int32
			hset := make(map[int32]bool, len(hc.Values))
			for _, v := range hc.Values {
				hset[v] = true
			}
			for _, v := range pc.Values {
				if hset[v] {
					inter = append(inter, v)
				} else {
					outs = append(outs, v)
				}
			}
			if len(inter) == 0 {
				return predicate.Predicate{}, false, append(outside, rem)
			}
			if len(outs) > 0 {
				outside = append(outside, replaceClause(rem, predicate.NewSetClause(hc.Col, hc.Name, outs)))
			}
			rem = replaceClause(rem, predicate.NewSetClause(hc.Col, hc.Name, inter))
		}
	}
	return rem, true, outside
}
