package partition

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the shared worker-pool runner behind every partitioner's parallel
// sections. It bundles the search context (for cancellation) with the worker
// budget, so NAIVE's predicate streaming, DT's node expansion and MC's
// frontier/merge scoring all draw from one fan-out facility instead of
// rolling their own goroutine plumbing.
//
// A Pool does not own long-lived goroutines: each ForEach or Stream call
// spins up at most Workers goroutines for its own duration. A Pool is safe
// to share across the sequential phases of one search.
type Pool struct {
	ctx     context.Context
	workers int
	// board, when non-nil, receives best-so-far candidate publications from
	// the searchers so observers can poll partial results mid-run.
	board *Board
}

// maxWorkers caps a pool's worker budget: beyond this, extra goroutines
// only cost stacks and scheduling (Stream spawns one goroutine per worker,
// so an unbounded value from an untrusted knob could exhaust memory).
const maxWorkers = 256

// NewPool builds a pool over ctx with the given worker budget. workers <= 0
// selects GOMAXPROCS; values above 256 are clamped. A nil ctx means
// context.Background(). A 1-worker pool runs everything on the calling
// goroutine (the serial path).
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	return &Pool{ctx: ctx, workers: workers}
}

// Context returns the pool's search context.
func (p *Pool) Context() context.Context { return p.ctx }

// WithBoard attaches a best-so-far board to the pool and returns the pool.
// Searchers publish to it via PublishBest; a nil board (the default)
// disables publication.
func (p *Pool) WithBoard(b *Board) *Pool {
	p.board = b
	return p
}

// Board returns the attached best-so-far board, or nil when unobserved.
func (p *Pool) Board() *Board { return p.board }

// PublishBest offers cands to the pool's board. It is safe to call from any
// worker and is a no-op when no board is attached or cands do not improve
// on the board's best.
func (p *Pool) PublishBest(cands []Candidate) { p.board.Publish(cands) }

// Workers returns the pool's worker budget.
func (p *Pool) Workers() int { return p.workers }

// Cancelled reports whether the pool's context is done, without blocking.
func (p *Pool) Cancelled() bool {
	select {
	case <-p.ctx.Done():
		return true
	default:
		return false
	}
}

// Err returns the context's error once cancelled, nil while the search may
// continue.
func (p *Pool) Err() error {
	if p.Cancelled() {
		return p.ctx.Err()
	}
	return nil
}

// ForEach runs f(i) for every index in [0, n), fanned out over the pool's
// workers. It stops handing out new indices once the context is cancelled
// (in-flight calls finish) and returns the context error, or nil when every
// index ran. f must be safe for concurrent invocation when the pool has
// more than one worker; writes to disjoint slice elements indexed by i are
// the intended communication pattern.
func (p *Pool) ForEach(n int, f func(i int)) error {
	if n <= 0 {
		return p.Err()
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if p.Cancelled() {
				return p.ctx.Err()
			}
			f(i)
		}
		return p.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if p.Cancelled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	return p.Err()
}

// Stream starts the pool's workers consuming items submitted by the caller
// — the producer/consumer shape NAIVE's enumeration needs, where the item
// universe is too large to materialize up front. It returns a submit
// function and a wait function: call submit for each item, then wait to
// close the stream and join the workers. After cancellation, submit drops
// items instead of blocking so producers can drain quickly; the producer
// should also poll Cancelled to stop generating work.
func Stream[T any](p *Pool, work func(T)) (submit func(T), wait func()) {
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	ch := make(chan T, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range ch {
				if p.Cancelled() {
					continue // drain without working
				}
				work(item)
			}
		}()
	}
	submit = func(item T) {
		select {
		case ch <- item:
		case <-p.ctx.Done():
		}
	}
	wait = func() {
		close(ch)
		wg.Wait()
	}
	return submit, wait
}
