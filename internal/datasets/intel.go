// Package datasets simulates the paper's two real-world workloads (§8.1,
// §8.4). The originals — the Intel Lab sensor trace and the FEC 2012
// campaign-expense file — are not redistributable here, so deterministic
// generators reproduce the attribute correlations the paper's experiments
// exploit (see DESIGN.md, "Substitutions"): a dying sensor and a
// battery-depleted sensor for INTEL, and concentrated media buys for
// EXPENSE. Scale is configurable; seeds make every run reproducible.
package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// IntelWorkload selects which scripted failure the generator injects.
type IntelWorkload int

const (
	// IntelDyingSensor reproduces §8.4 workload 1: sensor 15 starts dying
	// and reports >100°C temperatures, with low voltage and low light
	// during the failure window.
	IntelDyingSensor IntelWorkload = 1
	// IntelLowBattery reproduces §8.4 workload 2: sensor 18's battery
	// drains (voltage < 2.4 V), its temperatures climb to 90–122°C, and
	// readings are extreme exactly when light ∈ [283, 354].
	IntelLowBattery IntelWorkload = 2
)

// IntelConfig parameterizes the sensor-network simulator.
type IntelConfig struct {
	// Sensors is the mote count (the deployment had 61).
	Sensors int
	// Hours is the trace length in hours.
	Hours int
	// EpochsPerHour is readings per sensor per hour.
	EpochsPerHour int
	// FailStart is the hour the scripted failure begins.
	FailStart int
	// FailHours is the failure duration in hours (to the end if 0).
	FailHours int
	// Workload picks the scripted failure.
	Workload IntelWorkload
	// Seed drives the deterministic generator.
	Seed int64
}

func (c IntelConfig) withDefaults() IntelConfig {
	if c.Sensors <= 0 {
		c.Sensors = 61
	}
	if c.Hours <= 0 {
		c.Hours = 48
	}
	if c.EpochsPerHour <= 0 {
		c.EpochsPerHour = 4
	}
	if c.FailStart <= 0 {
		c.FailStart = c.Hours / 3
	}
	if c.FailHours <= 0 {
		c.FailHours = c.Hours - c.FailStart
	}
	if c.Workload == 0 {
		c.Workload = IntelDyingSensor
	}
	return c
}

// IntelDataset is a simulated sensor trace with its scripted ground truth.
type IntelDataset struct {
	Config IntelConfig
	Table  *relation.Table
	// OutlierHours are the group keys during the failure window.
	OutlierHours []string
	// HoldOutHours are the normal group keys.
	HoldOutHours []string
	// FailingSensor is the scripted culprit's id ("15" or "18").
	FailingSensor string
	// TruthRows are the readings the failing sensor emitted while failing.
	TruthRows *relation.RowSet
}

// HourKey renders hour h as its group key.
func HourKey(h int) string { return fmt.Sprintf("h%03d", h) }

// GenerateIntel builds the simulated trace.
func GenerateIntel(cfg IntelConfig) *IntelDataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := relation.MustSchema(
		relation.Column{Name: "hour", Kind: relation.Discrete},
		relation.Column{Name: "sensorid", Kind: relation.Discrete},
		relation.Column{Name: "voltage", Kind: relation.Continuous},
		relation.Column{Name: "humidity", Kind: relation.Continuous},
		relation.Column{Name: "light", Kind: relation.Continuous},
		relation.Column{Name: "temp", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)

	failingNum := 15
	if cfg.Workload == IntelLowBattery {
		failingNum = 18
	}
	// Small test deployments clamp the scripted culprit to the last mote.
	if failingNum > cfg.Sensors {
		failingNum = cfg.Sensors
	}
	failing := fmt.Sprintf("%d", failingNum)
	failEnd := cfg.FailStart + cfg.FailHours
	if failEnd > cfg.Hours {
		failEnd = cfg.Hours
	}

	ds := &IntelDataset{Config: cfg, FailingSensor: failing}
	total := cfg.Hours * cfg.Sensors * cfg.EpochsPerHour
	truth := relation.NewRowSet(total)

	// Per-sensor idiosyncrasies.
	tempOffset := make([]float64, cfg.Sensors+1)
	voltDrain := make([]float64, cfg.Sensors+1)
	for s := 1; s <= cfg.Sensors; s++ {
		tempOffset[s] = rng.NormFloat64() * 0.8
		voltDrain[s] = 0.0005 + rng.Float64()*0.0005
	}

	row := 0
	for h := 0; h < cfg.Hours; h++ {
		hourOfDay := float64(h % 24)
		failingNow := h >= cfg.FailStart && h < failEnd
		if failingNow {
			ds.OutlierHours = append(ds.OutlierHours, HourKey(h))
		} else {
			ds.HoldOutHours = append(ds.HoldOutHours, HourKey(h))
		}
		// Diurnal baselines.
		baseTemp := 19 + 5*math.Sin(2*math.Pi*(hourOfDay-9)/24)
		baseLight := math.Max(0, 400*math.Sin(2*math.Pi*(hourOfDay-6)/24))
		for s := 1; s <= cfg.Sensors; s++ {
			sid := fmt.Sprintf("%d", s)
			for e := 0; e < cfg.EpochsPerHour; e++ {
				temp := baseTemp + tempOffset[s] + rng.NormFloat64()*0.5
				humidity := 42 - 0.5*(temp-19) + rng.NormFloat64()*1.5
				light := math.Max(0, baseLight+rng.NormFloat64()*40)
				voltage := 2.68 - voltDrain[s]*float64(h) + rng.NormFloat64()*0.005

				if sid == failing && failingNow {
					switch cfg.Workload {
					case IntelDyingSensor:
						// Dying sensor: >100°C garbage; its supply sags into
						// a narrow band and the ADC's light channel reads
						// low. Readings are ~20°C hotter when light is
						// lowest (the paper's c→1 refinement).
						voltage = 2.307 + rng.Float64()*0.023
						light = rng.Float64() * 900
						temp = 100 + rng.Float64()*25
						if light < 450 {
							temp += 20
						}
					case IntelLowBattery:
						// Battery decay: voltage below 2.4 V, 90–122°C
						// readings, extreme exactly in the light band
						// [283, 354].
						voltage = 2.25 + rng.Float64()*0.14
						light = 250 + rng.Float64()*150
						temp = 90 + rng.Float64()*15
						if light >= 283 && light <= 354 {
							temp = 115 + rng.Float64()*7
						}
					}
					truth.Add(row)
				}
				b.MustAppend(relation.Row{
					relation.S(HourKey(h)),
					relation.S(sid),
					relation.F(round3(voltage)),
					relation.F(round3(humidity)),
					relation.F(round3(light)),
					relation.F(round3(temp)),
				})
				row++
			}
		}
	}
	ds.Table = b.Build()
	ds.TruthRows = truth
	return ds
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
