package datasets

import (
	"testing"

	"github.com/scorpiondb/scorpion/internal/query"
)

func TestIntelShape(t *testing.T) {
	ds := GenerateIntel(IntelConfig{Hours: 24, Sensors: 20, EpochsPerHour: 2, Seed: 1})
	if got := ds.Table.NumRows(); got != 24*20*2 {
		t.Fatalf("rows = %d, want %d", got, 24*20*2)
	}
	if len(ds.OutlierHours)+len(ds.HoldOutHours) != 24 {
		t.Fatalf("hour partition = %d + %d, want 24",
			len(ds.OutlierHours), len(ds.HoldOutHours))
	}
	if ds.FailingSensor != "15" {
		t.Errorf("workload 1 failing sensor = %s", ds.FailingSensor)
	}
	if ds.TruthRows.IsEmpty() {
		t.Error("no scripted truth rows")
	}
	// Tiny deployments clamp the culprit to the last mote.
	small := GenerateIntel(IntelConfig{Hours: 6, Sensors: 5, Seed: 1})
	if small.FailingSensor != "5" {
		t.Errorf("clamped failing sensor = %s, want 5", small.FailingSensor)
	}
}

func TestIntelDeterministic(t *testing.T) {
	a := GenerateIntel(IntelConfig{Hours: 12, Sensors: 8, Seed: 5})
	b := GenerateIntel(IntelConfig{Hours: 12, Sensors: 8, Seed: 5})
	if !a.TruthRows.Equal(b.TruthRows) {
		t.Fatal("same seed produced different truth rows")
	}
	tempCol := a.Table.Schema().MustIndex("temp")
	for r := 0; r < a.Table.NumRows(); r += 53 {
		if a.Table.Float(tempCol, r) != b.Table.Float(tempCol, r) {
			t.Fatal("same seed produced different temperatures")
		}
	}
}

func TestIntelFailureRaisesStddev(t *testing.T) {
	ds := GenerateIntel(IntelConfig{Hours: 36, Sensors: 20, EpochsPerHour: 2, Seed: 2})
	q, err := query.FromSQL(ds.Table, "SELECT stddev(temp), hour FROM readings GROUP BY hour")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	var failAvg, okAvg float64
	for _, h := range ds.OutlierHours {
		row, _ := res.Lookup(h)
		failAvg += row.Value
	}
	failAvg /= float64(len(ds.OutlierHours))
	for _, h := range ds.HoldOutHours {
		row, _ := res.Lookup(h)
		okAvg += row.Value
	}
	okAvg /= float64(len(ds.HoldOutHours))
	if failAvg < 5*okAvg {
		t.Errorf("failure hours stddev %v not clearly above normal %v", failAvg, okAvg)
	}
}

func TestIntelWorkload2Characteristics(t *testing.T) {
	ds := GenerateIntel(IntelConfig{Hours: 24, Sensors: 25, Workload: IntelLowBattery, Seed: 3})
	if ds.FailingSensor != "18" {
		t.Fatalf("workload 2 failing sensor = %s", ds.FailingSensor)
	}
	voltCol := ds.Table.Schema().MustIndex("voltage")
	tempCol := ds.Table.Schema().MustIndex("temp")
	lightCol := ds.Table.Schema().MustIndex("light")
	ds.TruthRows.ForEach(func(r int) {
		if v := ds.Table.Float(voltCol, r); v >= 2.4 {
			t.Fatalf("failing reading %d has voltage %v ≥ 2.4", r, v)
		}
		temp := ds.Table.Float(tempCol, r)
		if temp < 90 || temp > 122.5 {
			t.Fatalf("failing reading %d temp %v outside [90,122]", r, temp)
		}
		light := ds.Table.Float(lightCol, r)
		if light >= 283 && light <= 354 && temp < 110 {
			t.Fatalf("reading %d in the hot light band has temp %v < 110", r, temp)
		}
	})
}

func TestExpenseShape(t *testing.T) {
	ds := GenerateExpense(ExpenseConfig{Days: 20, RowsPerDay: 50, OutlierDays: 3, Seed: 1})
	if len(ds.OutlierDays) != 3 {
		t.Fatalf("outlier days = %d, want 3", len(ds.OutlierDays))
	}
	if len(ds.OutlierDays)+len(ds.HoldOutDays) != 20 {
		t.Fatalf("day partition = %d + %d",
			len(ds.OutlierDays), len(ds.HoldOutDays))
	}
	if ds.Table.Schema().NumColumns() != 14 {
		t.Fatalf("columns = %d, want 14", ds.Table.Schema().NumColumns())
	}
	if ds.TruthRows.IsEmpty() {
		t.Fatal("no truth rows")
	}
}

func TestExpenseOutlierDaysDominateSum(t *testing.T) {
	ds := GenerateExpense(ExpenseConfig{Days: 20, RowsPerDay: 60, OutlierDays: 4, Seed: 7})
	q, err := query.FromSQL(ds.Table,
		"SELECT sum(disb_amt), date FROM expenses WHERE candidate = 'Obama' GROUP BY date")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	minOutlier := 1e18
	maxNormal := 0.0
	for _, d := range ds.OutlierDays {
		row, ok := res.Lookup(d)
		if !ok {
			t.Fatalf("missing outlier day %s", d)
		}
		if row.Value < minOutlier {
			minOutlier = row.Value
		}
	}
	for _, d := range ds.HoldOutDays {
		row, ok := res.Lookup(d)
		if !ok {
			t.Fatalf("missing day %s", d)
		}
		if row.Value > maxNormal {
			maxNormal = row.Value
		}
	}
	if minOutlier < 5_000_000 {
		t.Errorf("weakest outlier day sums to %v, want > $5M", minOutlier)
	}
	if maxNormal > 1_000_000 {
		t.Errorf("normal day sums to %v, want modest baseline", maxNormal)
	}
}

func TestExpenseTruthMatchesDefinition(t *testing.T) {
	ds := GenerateExpense(ExpenseConfig{Days: 15, RowsPerDay: 40, Seed: 11})
	amtCol := ds.Table.Schema().MustIndex("disb_amt")
	for r := 0; r < ds.Table.NumRows(); r++ {
		want := ds.Table.Float(amtCol, r) > 1_500_000
		if got := ds.TruthRows.Contains(r); got != want {
			t.Fatalf("truth row mismatch at %d: %v vs amount %v",
				r, got, ds.Table.Float(amtCol, r))
		}
	}
	// All truth rows are GMMB INC. media buys by construction.
	recipCol := ds.Table.Schema().MustIndex("recipient_nm")
	descCol := ds.Table.Schema().MustIndex("disb_desc")
	ds.TruthRows.ForEach(func(r int) {
		if ds.Table.Str(recipCol, r) != "GMMB INC." || ds.Table.Str(descCol, r) != "MEDIA BUY" {
			t.Fatalf("truth row %d is not a GMMB media buy", r)
		}
	})
}

func TestExpenseDeterministic(t *testing.T) {
	a := GenerateExpense(ExpenseConfig{Days: 10, RowsPerDay: 30, Seed: 4})
	b := GenerateExpense(ExpenseConfig{Days: 10, RowsPerDay: 30, Seed: 4})
	if a.Table.NumRows() != b.Table.NumRows() || !a.TruthRows.Equal(b.TruthRows) {
		t.Fatal("same seed produced different datasets")
	}
}
