package datasets

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// ExpenseConfig parameterizes the campaign-expense simulator (§8.1
// EXPENSE). The schema mirrors the FEC disclosure file's shape: one row per
// disbursement, 14 attributes of widely varying cardinality, of which 12
// are available for explanations.
type ExpenseConfig struct {
	// Days is the number of calendar days in the trace.
	Days int
	// RowsPerDay is the typical number of disbursements per day.
	RowsPerDay int
	// OutlierDays is how many days carry the scripted media buys (7 in the
	// paper's workload).
	OutlierDays int
	// Recipients is the recipient_nm cardinality (the real file has ~18k;
	// default 400 keeps NAIVE runnable).
	Recipients int
	// Seed drives the deterministic generator.
	Seed int64
}

func (c ExpenseConfig) withDefaults() ExpenseConfig {
	if c.Days <= 0 {
		c.Days = 40
	}
	if c.RowsPerDay <= 0 {
		c.RowsPerDay = 120
	}
	if c.OutlierDays <= 0 {
		c.OutlierDays = 7
	}
	if c.Recipients <= 0 {
		c.Recipients = 400
	}
	return c
}

// ExpenseDataset is a simulated disbursement file with ground truth.
type ExpenseDataset struct {
	Config ExpenseConfig
	Table  *relation.Table
	// OutlierDays and HoldOutDays are the group keys of each class.
	OutlierDays []string
	HoldOutDays []string
	// TruthRows are rows with disb_amt > $1.5M (the paper's ground truth).
	TruthRows *relation.RowSet
}

// DayKey renders day d as its group key.
func DayKey(d int) string { return fmt.Sprintf("2012-%02d-%02d", 1+d/28, 1+d%28) }

// GenerateExpense builds the simulated disbursement file.
func GenerateExpense(cfg ExpenseConfig) *ExpenseDataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	schema := relation.MustSchema(
		relation.Column{Name: "date", Kind: relation.Discrete},
		relation.Column{Name: "candidate", Kind: relation.Discrete},
		relation.Column{Name: "disb_amt", Kind: relation.Continuous},
		relation.Column{Name: "recipient_nm", Kind: relation.Discrete},
		relation.Column{Name: "recipient_st", Kind: relation.Discrete},
		relation.Column{Name: "recipient_city", Kind: relation.Discrete},
		relation.Column{Name: "zip", Kind: relation.Discrete},
		relation.Column{Name: "organization_tp", Kind: relation.Discrete},
		relation.Column{Name: "disb_desc", Kind: relation.Discrete},
		relation.Column{Name: "file_num", Kind: relation.Discrete},
		relation.Column{Name: "election_tp", Kind: relation.Discrete},
		relation.Column{Name: "category", Kind: relation.Discrete},
		relation.Column{Name: "payee_tp", Kind: relation.Discrete},
		relation.Column{Name: "memo", Kind: relation.Discrete},
	)
	b := relation.NewBuilder(schema)

	states := []string{"DC", "IL", "NY", "CA", "VA", "MA", "OH", "FL", "TX", "WA"}
	cities := make([]string, 100)
	for i := range cities {
		cities[i] = fmt.Sprintf("CITY_%02d", i)
	}
	zips := make([]string, 100)
	for i := range zips {
		zips[i] = fmt.Sprintf("%05d", 20001+i*37)
	}
	orgs := []string{"CORP", "LLC", "PAC", "IND", "GOV", "NONPROF"}
	descs := []string{
		"PAYROLL", "TRAVEL", "CATERING", "RENT", "CONSULTING", "PRINTING",
		"POSTAGE", "PHONES", "SECURITY", "POLLING", "ONLINE ADS", "MEDIA BUY",
	}
	files := []string{"800216", "800316", "800416", "800516"}
	elections := []string{"P2012", "G2012"}
	categories := []string{"ADMIN", "MEDIA", "FUNDRAISING", "FIELD"}
	payees := []string{"VENDOR", "STAFF", "COMMITTEE"}
	recips := make([]string, cfg.Recipients)
	for i := range recips {
		recips[i] = fmt.Sprintf("VENDOR %04d LLC", i)
	}

	estRows := cfg.Days * (cfg.RowsPerDay + 8)
	truth := relation.NewRowSet(estRows + cfg.Days*16)
	ds := &ExpenseDataset{Config: cfg}

	// Outlier days spread through the trace.
	outlier := make(map[int]bool, cfg.OutlierDays)
	for len(outlier) < cfg.OutlierDays && len(outlier) < cfg.Days {
		outlier[rng.Intn(cfg.Days)] = true
	}

	row := 0
	appendRow := func(day, recip, st, city, zip, org, desc, file string, amt float64) {
		b.MustAppend(relation.Row{
			relation.S(day),
			relation.S("Obama"),
			relation.F(math.Round(amt*100) / 100),
			relation.S(recip),
			relation.S(st),
			relation.S(city),
			relation.S(zip),
			relation.S(org),
			relation.S(desc),
			relation.S(file),
			relation.S(elections[rng.Intn(len(elections))]),
			relation.S(categories[rng.Intn(len(categories))]),
			relation.S(payees[rng.Intn(len(payees))]),
			relation.S("N"),
		})
		if amt > 1_500_000 {
			truth.Add(row)
		}
		row++
	}

	for d := 0; d < cfg.Days; d++ {
		day := DayKey(d)
		if outlier[d] {
			ds.OutlierDays = append(ds.OutlierDays, day)
		} else {
			ds.HoldOutDays = append(ds.HoldOutDays, day)
		}
		// Baseline operational spending: many small disbursements.
		n := cfg.RowsPerDay + rng.Intn(cfg.RowsPerDay/4+1)
		for i := 0; i < n; i++ {
			amt := math.Exp(rng.NormFloat64()*1.1 + 3.5) // lognormal, median ≈ $33
			appendRow(day,
				recips[rng.Intn(len(recips))],
				states[rng.Intn(len(states))],
				cities[rng.Intn(len(cities))],
				zips[rng.Intn(len(zips))],
				orgs[rng.Intn(len(orgs))],
				descs[rng.Intn(len(descs)-1)], // never MEDIA BUY in baseline
				files[0],
				amt)
		}
		if outlier[d] {
			// The scripted anomaly: multi-million media buys paid to
			// GMMB INC. in DC under filing 800316 (§8.4 EXPENSE findings).
			buys := 4 + rng.Intn(3)
			for i := 0; i < buys; i++ {
				amt := 1_800_000 + rng.Float64()*1_800_000
				appendRow(day, "GMMB INC.", "DC", "WASHINGTON", "20001",
					"CORP", "MEDIA BUY", "800316", amt)
			}
			// Plus a few sub-threshold media purchases that muddy recall.
			for i := 0; i < 2; i++ {
				appendRow(day, "GMMB INC.", "DC", "WASHINGTON", "20001",
					"CORP", "MEDIA BUY", "800216", 400_000+rng.Float64()*500_000)
			}
		}
	}
	ds.Table = b.Build()
	// Shrink the truth set's universe to the actual row count.
	actual := relation.NewRowSet(ds.Table.NumRows())
	truth.ForEach(func(r int) {
		if r < ds.Table.NumRows() {
			actual.Add(r)
		}
	})
	ds.TruthRows = actual
	return ds
}
