package relation

import (
	"fmt"
	"math"
)

// Table is an immutable columnar relation. Continuous columns are []float64;
// discrete columns are dictionary-encoded []int32. Build with a Builder.
type Table struct {
	schema *Schema
	n      int
	floats [][]float64 // indexed by column position; nil for discrete columns
	codes  [][]int32   // indexed by column position; nil for continuous columns
	dicts  []*Dict     // indexed by column position; nil for continuous columns
}

// Builder accumulates rows and produces an immutable Table.
type Builder struct {
	schema *Schema
	n      int
	built  *Table // the frozen table once Build has run
	floats [][]float64
	codes  [][]int32
	dicts  []*Dict
}

// NewBuilder returns a builder for the given schema.
func NewBuilder(schema *Schema) *Builder {
	b := &Builder{
		schema: schema,
		floats: make([][]float64, schema.NumColumns()),
		codes:  make([][]int32, schema.NumColumns()),
		dicts:  make([]*Dict, schema.NumColumns()),
	}
	for i := 0; i < schema.NumColumns(); i++ {
		if schema.Column(i).Kind == Discrete {
			b.dicts[i] = NewDict()
		}
	}
	return b
}

// Append adds one row, validating arity and per-column kinds. After Build
// it returns ErrBuilt (the builder's storage has been handed to the table).
func (b *Builder) Append(row Row) error {
	if b.built != nil {
		return ErrBuilt
	}
	if err := row.checkAgainst(b.schema); err != nil {
		return err
	}
	for i, v := range row {
		if v.kind == Continuous {
			b.floats[i] = append(b.floats[i], v.f)
		} else {
			b.codes[i] = append(b.codes[i], b.dicts[i].Code(v.s))
		}
	}
	b.n++
	return nil
}

// MustAppend is Append that panics on error; for tests and generators whose
// rows are valid by construction.
func (b *Builder) MustAppend(row Row) {
	if err := b.Append(row); err != nil {
		panic(err)
	}
}

// NumRows reports how many rows have been appended so far.
func (b *Builder) NumRows() int { return b.n }

// Build freezes the builder into a Table. Further Append calls return
// ErrBuilt; a repeated Build returns the SAME frozen table (the builder's
// storage was handed to it, so rebuilding from the nilled slices would
// yield a corrupt table reporting rows it cannot read).
func (b *Builder) Build() *Table {
	if b.built != nil {
		return b.built
	}
	t := &Table{
		schema: b.schema,
		n:      b.n,
		floats: b.floats,
		codes:  b.codes,
		dicts:  b.dicts,
	}
	b.floats, b.codes, b.dicts = nil, nil, nil
	b.built = t
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return t.n }

// Floats returns the backing slice of a continuous column (read-only).
func (t *Table) Floats(col int) []float64 {
	if t.schema.Column(col).Kind != Continuous {
		panic(fmt.Sprintf("relation: Floats() on discrete column %q", t.schema.Column(col).Name))
	}
	return t.floats[col]
}

// Codes returns the backing code slice of a discrete column (read-only).
func (t *Table) Codes(col int) []int32 {
	if t.schema.Column(col).Kind != Discrete {
		panic(fmt.Sprintf("relation: Codes() on continuous column %q", t.schema.Column(col).Name))
	}
	return t.codes[col]
}

// Dict returns the dictionary of a discrete column.
func (t *Table) Dict(col int) *Dict {
	if t.schema.Column(col).Kind != Discrete {
		panic(fmt.Sprintf("relation: Dict() on continuous column %q", t.schema.Column(col).Name))
	}
	return t.dicts[col]
}

// Float returns a single continuous cell.
func (t *Table) Float(col, row int) float64 { return t.Floats(col)[row] }

// Code returns a single discrete cell's code.
func (t *Table) Code(col, row int) int32 { return t.Codes(col)[row] }

// Str returns a single discrete cell's string value.
func (t *Table) Str(col, row int) string { return t.dicts[col].Value(t.codes[col][row]) }

// Value returns any cell as a Value.
func (t *Table) Value(col, row int) Value {
	if t.schema.Column(col).Kind == Continuous {
		return F(t.floats[col][row])
	}
	return S(t.Str(col, row))
}

// Row materializes a full row. Intended for display and tests, not hot loops.
func (t *Table) Row(row int) Row {
	out := make(Row, t.schema.NumColumns())
	for c := range out {
		out[c] = t.Value(c, row)
	}
	return out
}

// AllRows returns the full-universe RowSet for this table.
func (t *Table) AllRows() *RowSet { return FullRowSet(t.n) }

// Gather materializes a new table containing only the given rows, in set
// order. Dictionaries are rebuilt so codes stay dense.
func (t *Table) Gather(rows *RowSet) *Table {
	b := NewBuilder(t.schema)
	rows.ForEach(func(r int) {
		b.MustAppend(t.Row(r))
	})
	return b.Build()
}

// ColumnStats holds summary statistics of a continuous column over a row set.
type ColumnStats struct {
	Min, Max float64
	Count    int
}

// FloatStats computes min/max/count of a continuous column over the rows in
// set (or all rows if set is nil). NaN values are skipped.
func (t *Table) FloatStats(col int, set *RowSet) ColumnStats {
	vals := t.Floats(col)
	st := ColumnStats{Min: math.Inf(1), Max: math.Inf(-1)}
	consider := func(v float64) {
		if math.IsNaN(v) {
			return
		}
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		st.Count++
	}
	if set == nil {
		for _, v := range vals {
			consider(v)
		}
	} else {
		set.ForEach(func(r int) { consider(vals[r]) })
	}
	return st
}

// DistinctCodes returns the distinct codes of a discrete column appearing in
// set (or the whole table if set is nil), in ascending code order.
func (t *Table) DistinctCodes(col int, set *RowSet) []int32 {
	codes := t.Codes(col)
	seen := make([]bool, t.dicts[col].Len())
	if set == nil {
		for _, c := range codes {
			seen[c] = true
		}
	} else {
		set.ForEach(func(r int) { seen[codes[r]] = true })
	}
	out := make([]int32, 0, 16)
	for c, ok := range seen {
		if ok {
			out = append(out, int32(c))
		}
	}
	return out
}
