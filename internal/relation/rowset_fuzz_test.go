package relation

// FuzzRowSet is the repo's second Go-native fuzz target (next to
// sqlparse.FuzzParse). It decodes the input bytes into a universe size and
// a stream of set operations, applies each operation to THREE copies of
// the working set — one forced into each encoding before every step — and
// asserts after every operation that all three agree with a map-based
// reference model on membership, cardinality, iteration order, and the
// pure query kernels (CountRange, Slice/Embed round-trip, SubsetOf, Equal,
// Min/Max). Any divergence between encodings, structural-invariant
// violation, or panic is a finding.
//
// Run it locally with:
//
//	go test -fuzz=FuzzRowSet -fuzztime 30s ./internal/relation

import (
	"testing"
)

// fuzzOps interprets the byte stream: each op consumes an opcode byte and
// two operand bytes (row/range positions scaled into the universe).
const (
	fuzzOpAdd = iota
	fuzzOpRemove
	fuzzOpAddRange
	fuzzOpAnd
	fuzzOpOr
	fuzzOpAndNot
	fuzzOpComplement
	fuzzOpCount // number of opcodes
)

// fuzzModel is the reference implementation: a boolean-array set.
type fuzzModel struct {
	n  int
	in []bool
}

func (m *fuzzModel) add(r int)    { m.in[r] = true }
func (m *fuzzModel) remove(r int) { m.in[r] = false }
func (m *fuzzModel) rows() []int {
	var out []int
	for r, ok := range m.in {
		if ok {
			out = append(out, r)
		}
	}
	return out
}

func FuzzRowSet(f *testing.F) {
	// Seeds: one per opcode at small universes, plus mixed sequences that
	// force encoding transitions (sparse→runs→dense and back).
	f.Add([]byte{7, fuzzOpAdd, 1, 0, fuzzOpAdd, 3, 0, fuzzOpRemove, 1, 0})
	f.Add([]byte{100, fuzzOpAddRange, 10, 90, fuzzOpComplement, 0, 0, fuzzOpAddRange, 0, 255})
	f.Add([]byte{200, fuzzOpAddRange, 0, 40, fuzzOpAnd, 20, 60, fuzzOpOr, 50, 55})
	f.Add([]byte{64, fuzzOpAdd, 0, 0, fuzzOpAdd, 63, 0, fuzzOpAndNot, 0, 32, fuzzOpComplement, 0, 0})
	f.Add([]byte{255, fuzzOpOr, 1, 3, fuzzOpOr, 5, 7, fuzzOpOr, 9, 11, fuzzOpAnd, 2, 200})
	f.Add([]byte{0})
	f.Add([]byte{1, fuzzOpComplement, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Universe: 0..255 rows keeps sets small enough to cross-check
		// exhaustively yet large enough to span several bitmap words.
		n := int(data[0])
		data = data[1:]
		model := &fuzzModel{n: n, in: make([]bool, n)}
		work := NewRowSet(n)
		if len(data) > 3*64 {
			data = data[:3*64] // bound per-input work
		}
		for len(data) >= 3 {
			op, a, b := int(data[0])%fuzzOpCount, int(data[1]), int(data[2])
			data = data[3:]
			if n == 0 {
				// Only Complement is meaningful on an empty universe.
				op = fuzzOpComplement
			}
			ra, rb := 0, 0
			if n > 0 {
				ra, rb = a%n, b%n
			}
			lo, hi := ra, rb
			if lo > hi {
				lo, hi = hi, lo
			}
			// The operand set for binary ops: the range [lo,hi) plus one
			// point, built fresh each step.
			operand := func() *RowSet {
				o := NewRowSet(n)
				if n > 0 {
					o.AddRange(lo, hi)
					o.Add(ra)
				}
				return o
			}
			apply := func(s *RowSet) {
				switch op {
				case fuzzOpAdd:
					s.Add(ra)
				case fuzzOpRemove:
					s.Remove(ra)
				case fuzzOpAddRange:
					s.AddRange(lo, hi)
				case fuzzOpAnd:
					s.And(operand())
				case fuzzOpOr:
					s.Or(operand())
				case fuzzOpAndNot:
					s.AndNot(operand())
				case fuzzOpComplement:
					s.Complement()
				}
			}
			switch op {
			case fuzzOpAdd:
				model.add(ra)
			case fuzzOpRemove:
				model.remove(ra)
			case fuzzOpAddRange:
				for r := lo; r < hi; r++ {
					model.add(r)
				}
			case fuzzOpAnd:
				o := operand()
				for r := 0; r < n; r++ {
					if model.in[r] && !o.Contains(r) {
						model.remove(r)
					}
				}
			case fuzzOpOr:
				operand().ForEach(func(r int) { model.add(r) })
			case fuzzOpAndNot:
				operand().ForEach(func(r int) { model.remove(r) })
			case fuzzOpComplement:
				for r := 0; r < n; r++ {
					model.in[r] = !model.in[r]
				}
			}
			// Apply the op to the adaptive set and to each forced encoding
			// in lockstep; all four must agree with the model.
			variants := encVariants(work)
			apply(work)
			for _, v := range variants {
				apply(v)
			}
			want := model.rows()
			all := [4]*RowSet{work, variants[0], variants[1], variants[2]}
			for vi, s := range all {
				if err := s.check(); err != nil {
					t.Fatalf("variant %d: invariant: %v", vi, err)
				}
				if s.Count() != len(want) {
					t.Fatalf("variant %d (%s): Count %d, model %d", vi, s.Encoding(), s.Count(), len(want))
				}
				got := s.Rows()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("variant %d (%s): Rows[%d] = %d, model %d", vi, s.Encoding(), i, got[i], want[i])
					}
				}
				if !s.Equal(work) || !work.Equal(s) {
					t.Fatalf("variant %d (%s): != adaptive set", vi, s.Encoding())
				}
				if !s.SubsetOf(work) || !work.SubsetOf(s) {
					t.Fatalf("variant %d (%s): SubsetOf asymmetric on equal sets", vi, s.Encoding())
				}
				// Pure probes.
				wantRange := 0
				for r := lo; r < hi; r++ {
					if model.in[r] {
						wantRange++
					}
				}
				if s.CountRange(lo, hi) != wantRange {
					t.Fatalf("variant %d (%s): CountRange(%d,%d) = %d, want %d", vi, s.Encoding(), lo, hi, s.CountRange(lo, hi), wantRange)
				}
				if n > 0 {
					back := s.Slice(lo, hi).Embed(lo, n)
					if back.Count() != wantRange {
						t.Fatalf("variant %d (%s): Slice/Embed count %d, want %d", vi, s.Encoding(), back.Count(), wantRange)
					}
					if !back.SubsetOf(s) {
						t.Fatalf("variant %d (%s): Slice/Embed not a subset", vi, s.Encoding())
					}
				}
				wantMin, wantMax := -1, -1
				if len(want) > 0 {
					wantMin, wantMax = want[0], want[len(want)-1]
				}
				if s.Min() != wantMin || s.Max() != wantMax {
					t.Fatalf("variant %d (%s): Min/Max %d/%d, want %d/%d", vi, s.Encoding(), s.Min(), s.Max(), wantMin, wantMax)
				}
			}
		}
	})
}
