package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVOptions controls CSV decoding.
type CSVOptions struct {
	// Kinds forces specific column kinds by name. Columns not listed are
	// type-inferred: a column is Continuous iff every value parses as a
	// float64, otherwise Discrete.
	Kinds map[string]Kind
	// Comma is the field delimiter; 0 means ','.
	Comma rune
}

// ReadCSV decodes a CSV stream with a header row into a Table.
//
// Type inference buffers the whole file; Scorpion datasets are in-memory
// anyway, so this keeps the decoder simple and deterministic.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has no header row")
	}
	header := records[0]
	body := records[1:]

	kinds := make([]Kind, len(header))
	for i, name := range header {
		if k, forced := opts.Kinds[name]; forced {
			kinds[i] = k
			continue
		}
		kinds[i] = inferKind(body, i)
	}

	cols := make([]Column, len(header))
	for i, name := range header {
		cols[i] = Column{Name: name, Kind: kinds[i]}
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}

	b := NewBuilder(schema)
	for ln, rec := range body {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: csv row %d has %d fields, want %d", ln+2, len(rec), len(header))
		}
		row := make(Row, len(rec))
		for i, field := range rec {
			if kinds[i] == Continuous {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv row %d column %q: %v", ln+2, header[i], err)
				}
				row[i] = F(v)
			} else {
				row[i] = S(field)
			}
		}
		if err := b.Append(row); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// inferKind decides whether column i of the records is continuous.
func inferKind(records [][]string, i int) Kind {
	sawValue := false
	for _, rec := range records {
		if i >= len(rec) {
			continue
		}
		sawValue = true
		if _, err := strconv.ParseFloat(rec[i], 64); err != nil {
			return Discrete
		}
	}
	if !sawValue {
		return Discrete
	}
	return Continuous
}

// WriteCSV encodes the table (all rows) as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.Schema().NumColumns())
	for r := 0; r < t.NumRows(); r++ {
		for c := range rec {
			if t.Schema().Column(c).Kind == Continuous {
				rec[c] = strconv.FormatFloat(t.Float(c, r), 'g', -1, 64)
			} else {
				rec[c] = t.Str(c, r)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
