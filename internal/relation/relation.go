// Package relation implements the in-memory relational substrate used by
// Scorpion: typed schemas, columnar tables, row sets (bitmaps), dictionary
// encoding for discrete attributes, and a CSV codec with type inference.
//
// Scorpion's algorithms only distinguish two attribute kinds:
//
//   - Continuous attributes hold float64 values and support range clauses.
//   - Discrete attributes hold dictionary-encoded strings and support
//     set-containment clauses.
//
// Tables are immutable once built (via Builder); algorithms reference subsets
// of a table through RowSet values instead of copying tuples, which is how
// backward provenance (output result -> input group) stays cheap.
package relation

import (
	"fmt"
	"strings"
)

// Kind identifies the physical/logical kind of a column.
type Kind int

const (
	// Continuous columns store float64 values and admit range predicates.
	Continuous Kind = iota
	// Discrete columns store dictionary-encoded strings and admit
	// set-containment predicates.
	Discrete
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Continuous:
		return "continuous"
	case Discrete:
		return "discrete"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Column describes a single attribute: its name and kind.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of uniquely named columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from the given columns. Column names must be
// non-empty and unique (case-sensitive).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{
		cols:  make([]Column, len(cols)),
		index: make(map[string]int, len(cols)),
	}
	copy(s.cols, cols)
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column name %q", c.Name)
		}
		if c.Kind != Continuous && c.Kind != Discrete {
			return nil, fmt.Errorf("relation: column %q has invalid kind %d", c.Name, int(c.Kind))
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is like NewSchema but panics on error. Intended for tests and
// static schemas known to be valid.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns reports the number of columns in the schema.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column descriptor.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column descriptors.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex returns the position of the named column, panicking if absent.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: no column named %q", name))
	}
	return i
}

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have identical columns in identical order.
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "name:kind, ...".
func (s *Schema) String() string {
	var b strings.Builder
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	return b.String()
}
