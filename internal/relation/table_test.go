package relation

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sensorsSchema mirrors Table 1 of the paper.
func sensorsSchema() *Schema {
	return MustSchema(
		Column{Name: "time", Kind: Discrete},
		Column{Name: "sensorid", Kind: Discrete},
		Column{Name: "voltage", Kind: Continuous},
		Column{Name: "humidity", Kind: Continuous},
		Column{Name: "temp", Kind: Continuous},
	)
}

// sensorsTable builds the 9-row running example from Table 1.
func sensorsTable(t *testing.T) *Table {
	t.Helper()
	b := NewBuilder(sensorsSchema())
	rows := []Row{
		{S("11AM"), S("1"), F(2.64), F(0.4), F(34)},
		{S("11AM"), S("2"), F(2.65), F(0.5), F(35)},
		{S("11AM"), S("3"), F(2.63), F(0.4), F(35)},
		{S("12PM"), S("1"), F(2.7), F(0.3), F(35)},
		{S("12PM"), S("2"), F(2.7), F(0.5), F(35)},
		{S("12PM"), S("3"), F(2.3), F(0.4), F(100)},
		{S("1PM"), S("1"), F(2.7), F(0.3), F(35)},
		{S("1PM"), S("2"), F(2.7), F(0.5), F(35)},
		{S("1PM"), S("3"), F(2.3), F(0.5), F(80)},
	}
	for _, r := range rows {
		if err := b.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return b.Build()
}

func TestBuilderAndAccessors(t *testing.T) {
	tbl := sensorsTable(t)
	if tbl.NumRows() != 9 {
		t.Fatalf("NumRows = %d, want 9", tbl.NumRows())
	}
	tempCol := tbl.Schema().MustIndex("temp")
	if got := tbl.Float(tempCol, 5); got != 100 {
		t.Errorf("Float(temp,5) = %v, want 100", got)
	}
	timeCol := tbl.Schema().MustIndex("time")
	if got := tbl.Str(timeCol, 0); got != "11AM" {
		t.Errorf("Str(time,0) = %q, want 11AM", got)
	}
	if tbl.Dict(timeCol).Len() != 3 {
		t.Errorf("time dictionary has %d values, want 3", tbl.Dict(timeCol).Len())
	}
	row := tbl.Row(5)
	if row[0].Str() != "12PM" || row[4].Float() != 100 {
		t.Errorf("Row(5) = %v", row)
	}
	if v := tbl.Value(tempCol, 8); v.Float() != 80 {
		t.Errorf("Value(temp,8) = %v", v)
	}
}

func TestBuilderRejectsBadRows(t *testing.T) {
	b := NewBuilder(sensorsSchema())
	if err := b.Append(Row{S("11AM")}); err == nil {
		t.Error("expected arity error")
	}
	if err := b.Append(Row{F(1), S("1"), F(2.64), F(0.4), F(34)}); err == nil {
		t.Error("expected kind error")
	}
	if b.NumRows() != 0 {
		t.Errorf("failed appends changed row count to %d", b.NumRows())
	}
}

func TestTableKindPanics(t *testing.T) {
	tbl := sensorsTable(t)
	timeCol := tbl.Schema().MustIndex("time")
	tempCol := tbl.Schema().MustIndex("temp")
	for name, fn := range map[string]func(){
		"FloatsOnDiscrete": func() { tbl.Floats(timeCol) },
		"CodesOnCont":      func() { tbl.Codes(tempCol) },
		"DictOnCont":       func() { tbl.Dict(tempCol) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestGather(t *testing.T) {
	tbl := sensorsTable(t)
	sub := tbl.Gather(RowSetOf(tbl.NumRows(), 5, 8))
	if sub.NumRows() != 2 {
		t.Fatalf("Gather rows = %d, want 2", sub.NumRows())
	}
	tempCol := sub.Schema().MustIndex("temp")
	if sub.Float(tempCol, 0) != 100 || sub.Float(tempCol, 1) != 80 {
		t.Errorf("gathered temps = %v,%v", sub.Float(tempCol, 0), sub.Float(tempCol, 1))
	}
	// Gathered dictionary must be dense: only the values present.
	timeCol := sub.Schema().MustIndex("time")
	if sub.Dict(timeCol).Len() != 2 {
		t.Errorf("gathered time dict len = %d, want 2", sub.Dict(timeCol).Len())
	}
}

func TestFloatStats(t *testing.T) {
	tbl := sensorsTable(t)
	tempCol := tbl.Schema().MustIndex("temp")
	st := tbl.FloatStats(tempCol, nil)
	if st.Min != 34 || st.Max != 100 || st.Count != 9 {
		t.Errorf("FloatStats(all) = %+v", st)
	}
	st = tbl.FloatStats(tempCol, RowSetOf(9, 0, 1, 2))
	if st.Min != 34 || st.Max != 35 || st.Count != 3 {
		t.Errorf("FloatStats(11AM rows) = %+v", st)
	}
}

func TestFloatStatsSkipsNaN(t *testing.T) {
	s := MustSchema(Column{Name: "x", Kind: Continuous})
	b := NewBuilder(s)
	b.MustAppend(Row{F(1)})
	b.MustAppend(Row{F(math.NaN())})
	b.MustAppend(Row{F(3)})
	st := b.Build().FloatStats(0, nil)
	if st.Count != 2 || st.Min != 1 || st.Max != 3 {
		t.Errorf("stats with NaN = %+v", st)
	}
}

func TestDistinctCodes(t *testing.T) {
	tbl := sensorsTable(t)
	sidCol := tbl.Schema().MustIndex("sensorid")
	all := tbl.DistinctCodes(sidCol, nil)
	if len(all) != 3 {
		t.Fatalf("distinct sensorids = %d, want 3", len(all))
	}
	some := tbl.DistinctCodes(sidCol, RowSetOf(9, 0, 3, 6)) // all sensor "1"
	if len(some) != 1 || tbl.Dict(sidCol).Value(some[0]) != "1" {
		t.Errorf("DistinctCodes over sensor-1 rows = %v", some)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sensorsTable(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf, CSVOptions{Kinds: map[string]Kind{
		"time": Discrete, "sensorid": Discrete,
	}})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.Schema().Equal(tbl.Schema()) {
		t.Fatalf("schema mismatch: %v vs %v", got.Schema(), tbl.Schema())
	}
	if got.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		for c := 0; c < tbl.Schema().NumColumns(); c++ {
			if got.Value(c, r).String() != tbl.Value(c, r).String() {
				t.Fatalf("cell (%d,%d) = %v, want %v", c, r, got.Value(c, r), tbl.Value(c, r))
			}
		}
	}
}

func TestCSVTypeInference(t *testing.T) {
	in := "a,b,c\n1,x,3.5\n2,y,4.5\n"
	tbl, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	want := []Kind{Continuous, Discrete, Continuous}
	for i, k := range want {
		if tbl.Schema().Column(i).Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, tbl.Schema().Column(i).Kind, k)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input: expected error")
	}
	// Forced continuous column with a non-numeric value.
	_, err := ReadCSV(strings.NewReader("a\nxyz\n"), CSVOptions{Kinds: map[string]Kind{"a": Continuous}})
	if err == nil {
		t.Error("unparseable forced-continuous value: expected error")
	}
}

func TestCSVHeaderOnly(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{})
	if err != nil {
		t.Fatalf("header-only csv: %v", err)
	}
	if tbl.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", tbl.NumRows())
	}
}
