package relation

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ErrBuilt is returned by Builder.Append once Build has frozen the builder.
// A built table cannot grow through its builder; extend it through an
// Appender instead.
var ErrBuilt = errors.New("relation: builder already built; extend the table through an Appender")

// Appender grows an append-only table as a chain of immutable snapshots.
//
// The appender owns growable column arrays; every Append publishes a new
// *Table whose column slices are capacity-clipped prefixes of those arrays
// (arr[:n:n]), so successive snapshots SHARE one backing array — appending
// a batch costs O(batch), not O(table) — while remaining immutable: later
// writes land at indices at or beyond every published snapshot's length,
// which no snapshot can observe.
//
// Dictionaries are copy-on-write: a batch that introduces a new discrete
// value clones that column's dict before inserting, so previously published
// snapshots keep reading their own frozen dictionaries. Codes are assigned
// in order of first appearance either way, which keeps every snapshot's
// codes meaning the same values.
//
// An Appender serializes its own Append calls; published snapshots may be
// read concurrently with further appends. A table being extended must not
// be extended through a second Appender at the same time — divergent
// appends would race on the shared arrays (the catalog keeps one appender
// per table entry for exactly this reason).
type Appender struct {
	mu     sync.Mutex
	schema *Schema
	n      int
	floats [][]float64
	codes  [][]int32
	dicts  []*Dict
	snap   *Table
}

// NewAppender returns an appender over an empty table of the given schema.
func NewAppender(schema *Schema) *Appender {
	return AppenderFor(NewBuilder(schema).Build())
}

// AppenderFor returns an appender that extends t. The first growing append
// re-allocates the column arrays once (Go's append copies when capacity is
// exhausted, leaving t's own arrays untouched); from then on snapshots
// share backing storage with each other.
func AppenderFor(t *Table) *Appender {
	a := &Appender{
		schema: t.schema,
		n:      t.n,
		floats: make([][]float64, len(t.floats)),
		codes:  make([][]int32, len(t.codes)),
		dicts:  make([]*Dict, len(t.dicts)),
		snap:   t,
	}
	copy(a.floats, t.floats)
	copy(a.codes, t.codes)
	copy(a.dicts, t.dicts)
	return a
}

// Schema returns the appended table's schema.
func (a *Appender) Schema() *Schema { return a.schema }

// NumRows reports the current row count (that of the latest snapshot).
func (a *Appender) NumRows() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// Snapshot returns the latest published table.
func (a *Appender) Snapshot() *Table {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.snap
}

// Append validates the whole batch against the schema, appends it, and
// publishes (and returns) the successor snapshot. The batch is atomic: on
// any validation error nothing is appended and the previous snapshot stays
// current. An empty batch returns the current snapshot unchanged.
func (a *Appender) Append(rows []Row) (*Table, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, row := range rows {
		if err := row.checkAgainst(a.schema); err != nil {
			return nil, fmt.Errorf("relation: append row %d: %w", i, err)
		}
	}
	if len(rows) == 0 {
		return a.snap, nil
	}
	// Copy-on-write dictionaries: clone a column's dict at most once per
	// batch, only when the batch introduces a value it has not seen.
	for c := 0; c < a.schema.NumColumns(); c++ {
		if a.schema.Column(c).Kind != Discrete {
			continue
		}
		cloned := false
		for _, row := range rows {
			if _, ok := a.dicts[c].Lookup(row[c].s); !ok {
				if !cloned {
					a.dicts[c] = a.dicts[c].Clone()
					cloned = true
				}
				a.dicts[c].Code(row[c].s)
			}
		}
	}
	for _, row := range rows {
		for c, v := range row {
			if v.kind == Continuous {
				a.floats[c] = append(a.floats[c], v.f)
			} else {
				a.codes[c] = append(a.codes[c], a.dicts[c].mustCode(v.s))
			}
		}
	}
	a.n += len(rows)
	a.snap = a.publish()
	return a.snap, nil
}

// publish builds the immutable snapshot of the first a.n rows: every column
// slice is capacity-clipped so the snapshot can never see rows appended
// after it. Callers hold a.mu.
func (a *Appender) publish() *Table {
	floats := make([][]float64, len(a.floats))
	for i, f := range a.floats {
		if f != nil {
			floats[i] = f[:a.n:a.n]
		}
	}
	codes := make([][]int32, len(a.codes))
	for i, c := range a.codes {
		if c != nil {
			codes[i] = c[:a.n:a.n]
		}
	}
	dicts := make([]*Dict, len(a.dicts))
	copy(dicts, a.dicts)
	return &Table{schema: a.schema, n: a.n, floats: floats, codes: codes, dicts: dicts}
}

// mustCode returns the code of a value known to be present (the append
// prepass inserted every new value before the write pass runs).
func (d *Dict) mustCode(v string) int32 {
	c, ok := d.byVal[v]
	if !ok {
		panic(fmt.Sprintf("relation: value %q missing from pre-populated dict", v))
	}
	return c
}

// Tail returns the zero-copy view of the rows appended since the table had
// `from` rows — the window [from, NumRows()). It panics when from is
// outside [0, NumRows()].
func (t *Table) Tail(from int) *View { return t.Window(from, t.n) }

// ParseCSVRows decodes a CSV stream with a header row into rows matching an
// EXISTING schema — the append-batch codec. The header must name exactly
// the schema's columns (any order); values are parsed by the schema's
// column kinds, so a non-numeric value in a continuous column is an error
// rather than a silent kind change. An empty body (header only) yields no
// rows.
func ParseCSVRows(r io.Reader, schema *Schema, opts CSVOptions) ([]Row, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: csv has no header row")
	}
	header := records[0]
	if len(header) != schema.NumColumns() {
		return nil, fmt.Errorf("relation: csv header has %d columns, schema has %d",
			len(header), schema.NumColumns())
	}
	// cols[i] is the schema position of CSV field i.
	cols := make([]int, len(header))
	seen := make(map[int]bool, len(header))
	for i, name := range header {
		c, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("relation: csv column %q is not in the schema (%s)", name, schema)
		}
		if seen[c] {
			return nil, fmt.Errorf("relation: csv header repeats column %q", name)
		}
		seen[c] = true
		cols[i] = c
	}
	rows := make([]Row, 0, len(records)-1)
	for ln, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: csv row %d has %d fields, want %d", ln+2, len(rec), len(header))
		}
		row := make(Row, schema.NumColumns())
		for i, field := range rec {
			c := cols[i]
			if schema.Column(c).Kind == Continuous {
				v, err := strconv.ParseFloat(field, 64)
				if err != nil {
					return nil, fmt.Errorf("relation: csv row %d column %q: %v", ln+2, header[i], err)
				}
				row[c] = F(v)
			} else {
				row[c] = S(field)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
