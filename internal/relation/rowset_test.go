package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowSetBasics(t *testing.T) {
	s := NewRowSet(130)
	if !s.IsEmpty() || s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	for _, r := range []int{0, 64, 129} {
		if !s.Contains(r) {
			t.Errorf("Contains(%d) = false", r)
		}
	}
	if s.Contains(1) || s.Contains(-1) || s.Contains(130) {
		t.Error("Contains reports rows never added")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	s.Remove(-5) // out of range: no-op
	if got := s.Rows(); len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("Rows() = %v", got)
	}
}

func TestRowSetAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range Add")
		}
	}()
	NewRowSet(10).Add(10)
}

func TestFullRowSetAndComplement(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		full := FullRowSet(n)
		if full.Count() != n {
			t.Fatalf("FullRowSet(%d).Count = %d", n, full.Count())
		}
		empty := full.Clone().Complement()
		if !empty.IsEmpty() {
			t.Fatalf("complement of full(%d) not empty", n)
		}
		if !empty.Complement().Equal(full) {
			t.Fatalf("double complement != full at n=%d", n)
		}
	}
}

func TestRowSetAlgebra(t *testing.T) {
	a := RowSetOf(100, 1, 2, 3, 50, 99)
	b := RowSetOf(100, 2, 3, 4, 98)
	if got := a.Intersect(b).Rows(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b).Count(); got != 7 {
		t.Errorf("Union count = %d, want 7", got)
	}
	if got := a.Difference(b).Rows(); len(got) != 3 {
		t.Errorf("Difference = %v", got)
	}
	if !RowSetOf(100, 2, 3).SubsetOf(a) {
		t.Error("SubsetOf false for genuine subset")
	}
	if b.SubsetOf(a) {
		t.Error("SubsetOf true for non-subset")
	}
}

func TestRowSetUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for universe mismatch")
		}
	}()
	NewRowSet(10).And(NewRowSet(20))
}

func TestRowSetSubsetOfDifferentUniverse(t *testing.T) {
	if NewRowSet(10).SubsetOf(NewRowSet(20)) {
		t.Fatal("SubsetOf across universes should be false")
	}
	if NewRowSet(10).Equal(NewRowSet(20)) {
		t.Fatal("Equal across universes should be false")
	}
}

// randomRowSet builds a set with each row included with probability p.
func randomRowSet(rng *rand.Rand, n int, p float64) *RowSet {
	s := NewRowSet(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			s.Add(i)
		}
	}
	return s
}

// Property: De Morgan — complement(a ∪ b) == complement(a) ∩ complement(b).
func TestRowSetDeMorganProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randomRowSet(r, n, 0.3)
		b := randomRowSet(r, n, 0.3)
		lhs := a.Union(b).Complement()
		rhs := a.Clone().Complement().Intersect(b.Clone().Complement())
		return lhs.Equal(rhs)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: |a| + |b| == |a ∪ b| + |a ∩ b| (inclusion-exclusion).
func TestRowSetInclusionExclusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randomRowSet(r, n, 0.4)
		b := randomRowSet(r, n, 0.4)
		return a.Count()+b.Count() == a.Union(b).Count()+a.Intersect(b).Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: difference then union with the intersection restores a.
func TestRowSetDifferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randomRowSet(r, n, 0.5)
		b := randomRowSet(r, n, 0.5)
		restored := a.Difference(b).Union(a.Intersect(b))
		return restored.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly Rows() in ascending order.
func TestRowSetForEachMatchesRows(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		a := randomRowSet(r, n, 0.2)
		var visited []int
		a.ForEach(func(row int) { visited = append(visited, row) })
		rows := a.Rows()
		if len(visited) != len(rows) {
			return false
		}
		prev := -1
		for i := range rows {
			if visited[i] != rows[i] || rows[i] <= prev {
				return false
			}
			prev = rows[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
