package relation

import (
	"strings"
	"testing"
)

func TestNewSchemaValid(t *testing.T) {
	s, err := NewSchema(
		Column{Name: "temp", Kind: Continuous},
		Column{Name: "sensor", Kind: Discrete},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	if got := s.NumColumns(); got != 2 {
		t.Fatalf("NumColumns = %d, want 2", got)
	}
	if i, ok := s.Index("sensor"); !ok || i != 1 {
		t.Fatalf("Index(sensor) = %d,%v; want 1,true", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Fatal("Index(missing) unexpectedly found")
	}
	if got := s.MustIndex("temp"); got != 0 {
		t.Fatalf("MustIndex(temp) = %d, want 0", got)
	}
}

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	_, err := NewSchema(
		Column{Name: "a", Kind: Continuous},
		Column{Name: "a", Kind: Discrete},
	)
	if err == nil {
		t.Fatal("expected error for duplicate column name")
	}
}

func TestNewSchemaRejectsEmptyName(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Kind: Continuous}); err == nil {
		t.Fatal("expected error for empty column name")
	}
}

func TestNewSchemaRejectsBadKind(t *testing.T) {
	if _, err := NewSchema(Column{Name: "x", Kind: Kind(42)}); err == nil {
		t.Fatal("expected error for invalid kind")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	s := MustSchema(Column{Name: "a", Kind: Continuous})
	defer func() {
		if recover() == nil {
			t.Fatal("MustIndex on missing column did not panic")
		}
	}()
	s.MustIndex("nope")
}

func TestSchemaEqualAndString(t *testing.T) {
	a := MustSchema(Column{Name: "x", Kind: Continuous}, Column{Name: "y", Kind: Discrete})
	b := MustSchema(Column{Name: "x", Kind: Continuous}, Column{Name: "y", Kind: Discrete})
	c := MustSchema(Column{Name: "x", Kind: Continuous})
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	if a.Equal(c) {
		t.Error("different schemas reported Equal")
	}
	if !strings.Contains(a.String(), "x:continuous") || !strings.Contains(a.String(), "y:discrete") {
		t.Errorf("String() = %q missing columns", a.String())
	}
}

func TestSchemaNamesAndColumnsAreCopies(t *testing.T) {
	s := MustSchema(Column{Name: "x", Kind: Continuous})
	names := s.Names()
	names[0] = "mutated"
	if s.Column(0).Name != "x" {
		t.Fatal("mutating Names() result affected schema")
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "x" {
		t.Fatal("mutating Columns() result affected schema")
	}
}

func TestValueAccessors(t *testing.T) {
	f := F(3.5)
	if f.Kind() != Continuous || f.Float() != 3.5 {
		t.Fatalf("F(3.5) = %v", f)
	}
	s := S("abc")
	if s.Kind() != Discrete || s.Str() != "abc" {
		t.Fatalf("S(abc) = %v", s)
	}
	if f.String() != "3.5" || s.String() != "abc" {
		t.Fatalf("String() renders: %q %q", f.String(), s.String())
	}
}

func TestValueKindPanics(t *testing.T) {
	t.Run("FloatOnDiscrete", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		_ = S("a").Float()
	})
	t.Run("StrOnContinuous", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		_ = F(1).Str()
	})
}

func TestDictBasics(t *testing.T) {
	d := NewDict()
	a := d.Code("alpha")
	b := d.Code("beta")
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if got := d.Code("alpha"); got != a {
		t.Fatalf("re-coding alpha gave %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Value(a) != "alpha" || d.Value(b) != "beta" {
		t.Fatal("Value() round-trip failed")
	}
	if c, ok := d.Lookup("beta"); !ok || c != b {
		t.Fatalf("Lookup(beta) = %d,%v", c, ok)
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup(gamma) unexpectedly found")
	}
}

func TestDictClone(t *testing.T) {
	d := NewDict()
	d.Code("a")
	c := d.Clone()
	c.Code("b")
	if d.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: d=%d c=%d", d.Len(), c.Len())
	}
}
