package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// viewTestTable builds a deterministic mixed-kind table of n rows.
func viewTestTable(t testing.TB, n int) *Table {
	t.Helper()
	schema := MustSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "v", Kind: Continuous},
		Column{Name: "tag", Kind: Discrete},
	)
	b := NewBuilder(schema)
	for i := 0; i < n; i++ {
		b.MustAppend(Row{
			S(fmt.Sprintf("g%d", i/7)),
			F(float64(i) * 1.5),
			S(fmt.Sprintf("t%d", i%3)),
		})
	}
	return b.Build()
}

func TestWindowIsZeroCopy(t *testing.T) {
	tbl := viewTestTable(t, 100)
	v := tbl.Window(10, 40)
	if v.Len() != 30 || v.Off() != 10 || v.Base() != tbl {
		t.Fatalf("window geometry: len=%d off=%d", v.Len(), v.Off())
	}
	// The view's column slices alias the base table's arrays.
	if &v.Floats(1)[0] != &tbl.Floats(1)[10] {
		t.Error("continuous window does not share the base array")
	}
	if &v.Codes(0)[0] != &tbl.Codes(0)[10] {
		t.Error("discrete window does not share the base array")
	}
	if v.Dict(0) != tbl.Dict(0) {
		t.Error("view does not share the base dictionary")
	}
	// Local cell reads equal the base's shifted reads.
	for l := 0; l < v.Len(); l++ {
		if v.Floats(1)[l] != tbl.Float(1, 10+l) {
			t.Fatalf("float mismatch at local %d", l)
		}
		if v.Data().Str(2, l) != tbl.Str(2, 10+l) {
			t.Fatalf("string mismatch at local %d", l)
		}
	}
}

// TestShardsPartitionExactly is the property test for Table.Shards(k):
// shards are contiguous, disjoint, covering, in row order, and their
// windows read the same cells as the base table.
func TestShardsPartitionExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(300)
		tbl := viewTestTable(t, n)
		k := 1 + rng.Intn(12)
		shards := tbl.Shards(k)

		wantShards := k
		if n > 0 && k > n {
			wantShards = n
		}
		if len(shards) != wantShards {
			t.Fatalf("n=%d k=%d: got %d shards", n, k, len(shards))
		}
		next := 0
		total := 0
		for i, v := range shards {
			if v.Off() != next {
				t.Fatalf("n=%d k=%d shard %d: off=%d want %d (gap or overlap)", n, k, i, v.Off(), next)
			}
			if n > 0 && v.Len() == 0 {
				t.Fatalf("n=%d k=%d shard %d: empty shard of a non-empty table", n, k, i)
			}
			for l := 0; l < v.Len(); l++ {
				if v.Floats(1)[l] != tbl.Float(1, v.Off()+l) {
					t.Fatalf("shard %d local %d reads the wrong base row", i, l)
				}
			}
			next = v.Off() + v.Len()
			total += v.Len()
		}
		if total != n || next != n {
			t.Fatalf("n=%d k=%d: shards cover %d rows ending at %d", n, k, total, next)
		}
		// Near-equal sizes: lengths differ by at most one row.
		min, max := n, 0
		for _, v := range shards {
			if v.Len() < min {
				min = v.Len()
			}
			if v.Len() > max {
				max = v.Len()
			}
		}
		if n > 0 && max-min > 1 {
			t.Fatalf("n=%d k=%d: shard sizes range [%d,%d]", n, k, min, max)
		}
	}
}

func TestShardsAt(t *testing.T) {
	tbl := viewTestTable(t, 50)
	shards := tbl.ShardsAt([]int{7, 20, 44})
	offs := []int{0, 7, 20, 44}
	lens := []int{7, 13, 24, 6}
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	for i, v := range shards {
		if v.Off() != offs[i] || v.Len() != lens[i] {
			t.Errorf("shard %d: [%d,+%d), want [%d,+%d)", i, v.Off(), v.Len(), offs[i], lens[i])
		}
	}
	for _, bad := range [][]int{{0}, {50}, {10, 10}, {20, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ShardsAt(%v) did not panic", bad)
				}
			}()
			tbl.ShardsAt(bad)
		}()
	}
}

// TestRowSetSliceEmbedRoundTrip is the offset-translation property test:
// Slice then Embed recovers exactly the members inside the window, and
// CountRange agrees with the slice's cardinality.
func TestRowSetSliceEmbedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		s := NewRowSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				s.Add(i)
			}
		}
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n-lo+1)

		local := s.Slice(lo, hi)
		if local.Universe() != hi-lo {
			t.Fatalf("slice universe %d want %d", local.Universe(), hi-lo)
		}
		// Membership translates by -lo.
		for l := 0; l < hi-lo; l++ {
			if local.Contains(l) != s.Contains(lo+l) {
				t.Fatalf("n=%d [%d,%d): local %d membership mismatch", n, lo, hi, l)
			}
		}
		if got := s.CountRange(lo, hi); got != local.Count() {
			t.Fatalf("CountRange(%d,%d) = %d, slice counts %d", lo, hi, got, local.Count())
		}

		// Round trip: embed back and compare against s ∩ [lo, hi).
		back := local.Embed(lo, n)
		want := s.Clone()
		for i := 0; i < n; i++ {
			if i < lo || i >= hi {
				want.Remove(i)
			}
		}
		if !back.Equal(want) {
			t.Fatalf("n=%d [%d,%d): embed(slice) != restriction", n, lo, hi)
		}
	}
}

func TestViewLocalGlobalRows(t *testing.T) {
	tbl := viewTestTable(t, 200)
	v := tbl.Window(63, 170)
	global := NewRowSet(200)
	for _, r := range []int{0, 62, 63, 64, 100, 169, 170, 199} {
		global.Add(r)
	}
	local := v.LocalRows(global)
	if local.Universe() != v.Len() {
		t.Fatalf("local universe %d", local.Universe())
	}
	wantLocal := []int{0, 1, 37, 106} // 63, 64, 100, 169 shifted by -63
	if got := local.Rows(); len(got) != len(wantLocal) {
		t.Fatalf("local rows %v, want %v", got, wantLocal)
	} else {
		for i := range got {
			if got[i] != wantLocal[i] {
				t.Fatalf("local rows %v, want %v", got, wantLocal)
			}
		}
	}
	back := v.GlobalRows(local)
	for _, r := range []int{63, 64, 100, 169} {
		if !back.Contains(r) {
			t.Errorf("GlobalRows lost row %d", r)
		}
	}
	if back.Count() != 4 {
		t.Errorf("GlobalRows count %d", back.Count())
	}
	// Id translation agrees with the set translation.
	if g := v.ToGlobal(37); g != 100 {
		t.Errorf("ToGlobal(37) = %d", g)
	}
	if l, ok := v.ToLocal(100); !ok || l != 37 {
		t.Errorf("ToLocal(100) = %d,%v", l, ok)
	}
	if _, ok := v.ToLocal(62); ok {
		t.Error("ToLocal(62) inside")
	}
	if _, ok := v.ToLocal(170); ok {
		t.Error("ToLocal(170) inside")
	}
}
