package relation

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// encVariants returns three independent copies of s, one forced into each
// encoding. Forced conversions deliberately ignore the size heuristics, so
// every kernel is exercised on every representation regardless of what the
// heuristics would pick.
func encVariants(s *RowSet) [3]*RowSet {
	d, r, sp := s.Clone(), s.Clone(), s.Clone()
	d.toDense()
	r.toRuns()
	sp.toSparse()
	return [3]*RowSet{d, r, sp}
}

// mustCheck fails the test if any structural invariant is violated.
func mustCheck(t *testing.T, s *RowSet) {
	t.Helper()
	if err := s.check(); err != nil {
		t.Fatalf("invariant: %v (%s)", err, s)
	}
}

// randomSet builds a set whose shape is drawn from one of the regimes the
// encodings target: empty, a few points, contiguous runs, dense noise.
func randomSet(rng *rand.Rand, n int) *RowSet {
	s := NewRowSet(n)
	if n == 0 {
		return s
	}
	switch rng.Intn(4) {
	case 0: // empty
	case 1: // sparse points
		for i := 0; i < rng.Intn(20); i++ {
			s.Add(rng.Intn(n))
		}
	case 2: // contiguous runs
		for i := 0; i < 1+rng.Intn(5); i++ {
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			s.AddRange(lo, hi)
		}
	default: // dense noise
		p := rng.Float64()
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				s.Add(i)
			}
		}
	}
	return s
}

func TestEncodingSelection(t *testing.T) {
	// A few points stay sparse.
	s := NewRowSet(100_000)
	for i := 0; i < 10; i++ {
		s.Add(i * 997)
	}
	if s.Encoding() != "sparse" {
		t.Fatalf("10 points: %s, want sparse", s.Encoding())
	}
	// A long ascending scan over contiguous members becomes one run.
	s = NewRowSet(100_000)
	for i := 5_000; i < 95_000; i++ {
		s.Add(i)
	}
	if s.Encoding() != "runs" {
		t.Fatalf("contiguous scan: %s, want runs", s.Encoding())
	}
	if got := s.MemBytes(); got > 200 {
		t.Fatalf("one-run set costs %d bytes", got)
	}
	// High-entropy membership degrades to dense.
	s = NewRowSet(100_000)
	for i := 0; i < 100_000; i += 2 {
		s.Add(i)
	}
	if s.Encoding() != "dense" {
		t.Fatalf("alternating bits: %s, want dense", s.Encoding())
	}
	// FullRowSet is a single run, whatever the universe.
	if got := FullRowSet(1_000_000).Encoding(); got != "runs" {
		t.Fatalf("FullRowSet: %s, want runs", got)
	}
	// NewDenseRowSet stays dense under point mutation.
	d := NewDenseRowSet(1000)
	d.Add(3)
	d.Remove(3)
	if d.Encoding() != "dense" {
		t.Fatalf("pinned dense: %s", d.Encoding())
	}
}

func TestEncodingOutOfOrderAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 4096
	s := NewRowSet(n)
	model := make(map[int]bool)
	for i := 0; i < 3000; i++ {
		r := rng.Intn(n)
		if rng.Intn(4) == 0 {
			s.Remove(r)
			delete(model, r)
		} else {
			s.Add(r)
			model[r] = true
		}
		if err := s.check(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if s.Count() != len(model) {
		t.Fatalf("count %d != model %d", s.Count(), len(model))
	}
	for _, r := range s.Rows() {
		if !model[r] {
			t.Fatalf("extra row %d", r)
		}
	}
}

// Every binary op must agree across all nine encoding pairs and match the
// dense-reference result.
func TestCrossEncodingBinaryOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ops := []struct {
		name string
		do   func(a, b *RowSet) *RowSet
	}{
		{"And", func(a, b *RowSet) *RowSet { return a.And(b) }},
		{"Or", func(a, b *RowSet) *RowSet { return a.Or(b) }},
		{"AndNot", func(a, b *RowSet) *RowSet { return a.AndNot(b) }},
	}
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(700)
		x, y := randomSet(rng, n), randomSet(rng, n)
		for _, op := range ops {
			// Dense reference.
			ref := x.Clone()
			ref.toDense()
			yd := y.Clone()
			yd.toDense()
			op.do(ref, yd)
			for _, xa := range encVariants(x) {
				for _, yb := range encVariants(y) {
					got := op.do(xa.Clone(), yb)
					mustCheck(t, got)
					if !got.Equal(ref) {
						t.Fatalf("trial %d %s: %v != ref %v", trial, op.name, got.Rows(), ref.Rows())
					}
					if !ref.Equal(got) { // Equal must be symmetric across encodings
						t.Fatalf("trial %d %s: Equal not symmetric", trial, op.name)
					}
				}
			}
		}
		// Complement, SubsetOf, Min/Max across encodings.
		ref := x.Clone()
		ref.toDense()
		ref.Complement()
		for _, xa := range encVariants(x) {
			c := xa.Clone().Complement()
			mustCheck(t, c)
			if !c.Equal(ref) {
				t.Fatalf("trial %d Complement mismatch", trial)
			}
			for _, yb := range encVariants(y) {
				want := true
				x.ForEach(func(r int) {
					if !y.Contains(r) {
						want = false
					}
				})
				if got := xa.SubsetOf(yb); got != want {
					t.Fatalf("trial %d SubsetOf(%v,%v) = %v, want %v", trial, x.Rows(), y.Rows(), got, want)
				}
			}
			rows := x.Rows()
			wantMin, wantMax := -1, -1
			if len(rows) > 0 {
				wantMin, wantMax = rows[0], rows[len(rows)-1]
			}
			if xa.Min() != wantMin || xa.Max() != wantMax {
				t.Fatalf("trial %d Min/Max = %d/%d, want %d/%d", trial, xa.Min(), xa.Max(), wantMin, wantMax)
			}
		}
	}
}

// In-place ops must tolerate aliasing (s.Or(s) etc.): the run iterator
// snapshots the operand before the receiver is rebuilt.
func TestBinaryOpsSelfAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		x := randomSet(rng, 300)
		for _, v := range encVariants(x) {
			or := v.Clone()
			or.Or(or)
			if !or.Equal(x) {
				t.Fatalf("s.Or(s) != s")
			}
			and := v.Clone()
			and.And(and)
			if !and.Equal(x) {
				t.Fatalf("s.And(s) != s")
			}
			not := v.Clone()
			not.AndNot(not)
			if !not.IsEmpty() {
				t.Fatalf("s.AndNot(s) not empty")
			}
		}
	}
}

// Property: Slice then Embed restores exactly the members inside the
// window, for every encoding — the LocalRows/GlobalRows round-trip the
// shard combiner leans on (extends the PR 4 view property suite).
func TestSliceEmbedRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(600)
		x := randomSet(rng, n)
		lo := rng.Intn(n + 1)
		hi := lo + rng.Intn(n-lo+1)
		want := NewRowSet(n)
		x.ForEach(func(r int) {
			if r >= lo && r < hi {
				want.Add(r)
			}
		})
		for _, v := range encVariants(x) {
			sl := v.Slice(lo, hi)
			if err := sl.check(); err != nil {
				t.Fatalf("slice: %v", err)
			}
			if sl.Universe() != hi-lo {
				return false
			}
			// Slice members are the window members, shifted.
			for _, r := range sl.Rows() {
				if !x.Contains(r + lo) {
					return false
				}
			}
			back := sl.Embed(lo, n)
			if err := back.check(); err != nil {
				t.Fatalf("embed: %v", err)
			}
			if !back.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountRange equals the brute-force membership count on every
// encoding, including clamped out-of-range bounds.
func TestCountRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(600)
		x := randomSet(rng, n)
		lo := rng.Intn(n+20) - 10
		hi := lo + rng.Intn(n+20)
		want := 0
		x.ForEach(func(r int) {
			if r >= lo && r < hi {
				want++
			}
		})
		for _, v := range encVariants(x) {
			if v.CountRange(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		s := randomSet(rng, n)
		model := make(map[int]bool)
		s.ForEach(func(r int) { model[r] = true })
		for i := 0; i < 5; i++ {
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n-lo+1)
			s.AddRange(lo, hi)
			for r := lo; r < hi; r++ {
				model[r] = true
			}
			mustCheck(t, s)
		}
		if s.Count() != len(model) {
			t.Fatalf("count %d != model %d", s.Count(), len(model))
		}
		for _, r := range s.Rows() {
			if !model[r] {
				t.Fatalf("extra row %d", r)
			}
		}
	}
}

func TestAddRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRowSet(10).AddRange(5, 11)
}

// Group provenance RowSets are shared across scorer worker goroutines;
// every read path must be pure. Run with -race in CI.
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomSet(rng, 2000)
	y := randomSet(rng, 2000)
	var wg sync.WaitGroup
	xs, ys := encVariants(x), encVariants(y)
	for _, v := range append(xs[:], ys[:]...) {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(s *RowSet) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					_ = s.Count()
					_ = s.CountRange(100, 1500)
					_ = s.Contains(i * 37 % 2000)
					_ = s.Min()
					_ = s.Max()
					_ = s.Slice(250, 1750)
					_ = s.Embed(0, 4000)
					_ = s.Intersect(y) // Clone-based; receiver unchanged
					sum := 0
					s.ForEach(func(r int) { sum += r })
				}
			}(v)
		}
	}
	wg.Wait()
}

// Clone must be deep: mutating the copy never leaks into the original.
func TestCloneIsDeepAcrossEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randomSet(rng, 400)
	for _, v := range encVariants(x) {
		before := v.Rows()
		c := v.Clone()
		c.Complement()
		c.Add(0)
		c.Remove(1)
		got := v.Rows()
		if len(got) != len(before) {
			t.Fatalf("clone mutation leaked: %d vs %d rows", len(got), len(before))
		}
		for i := range got {
			if got[i] != before[i] {
				t.Fatalf("clone mutation leaked at %d", i)
			}
		}
	}
}

func TestMemBytesTracksEncoding(t *testing.T) {
	n := 1_000_000
	dense := NewDenseRowSet(n)
	dense.AddRange(0, n)
	run := FullRowSet(n)
	if dense.MemBytes() < n/8 {
		t.Fatalf("dense MemBytes %d < %d", dense.MemBytes(), n/8)
	}
	if run.MemBytes() >= dense.MemBytes()/100 {
		t.Fatalf("run MemBytes %d not ≪ dense %d", run.MemBytes(), dense.MemBytes())
	}
	if !run.Equal(dense) {
		t.Fatal("full sets differ")
	}
}
