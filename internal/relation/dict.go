package relation

// Dict is an order-of-first-appearance dictionary mapping discrete string
// values to dense int32 codes. Codes are stable for the lifetime of the dict.
type Dict struct {
	byVal map[string]int32
	vals  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byVal: make(map[string]int32)}
}

// Code returns the code for v, assigning the next free code if v is new.
func (d *Dict) Code(v string) int32 {
	if c, ok := d.byVal[v]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.byVal[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Lookup returns the code for v without inserting.
func (d *Dict) Lookup(v string) (int32, bool) {
	c, ok := d.byVal[v]
	return c, ok
}

// Value returns the string for a code. It panics on out-of-range codes.
func (d *Dict) Value(code int32) string { return d.vals[code] }

// Len reports the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Values returns the dictionary's values in code order (shared slice; treat
// as read-only).
func (d *Dict) Values() []string { return d.vals }

// Clone returns an independent copy of the dictionary.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		byVal: make(map[string]int32, len(d.byVal)),
		vals:  make([]string, len(d.vals)),
	}
	copy(c.vals, d.vals)
	for k, v := range d.byVal {
		c.byVal[k] = v
	}
	return c
}
