package relation

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for RowSet — the unit of provenance on the shard wire.
//
// Layout (all integers varint-encoded unless noted):
//
//	byte 0   codec version (rowSetCodecVersion)
//	byte 1   encoding tag (encSparse / encRuns / encDense)
//	uvarint  universe n
//	payload  per encoding:
//	  sparse  uvarint count, then count deltas: the first is elems[0],
//	          each later one is elems[i] - elems[i-1] (strictly positive)
//	  runs    uvarint count, then per run uvarint(lo - prevHi) and
//	          uvarint(hi - lo); prevHi starts at 0, later gaps are
//	          strictly positive (runs are disjoint and non-adjacent)
//	  dense   (n+63)/64 raw little-endian 8-byte words
//
// The encoding tag is part of the format on purpose: a run-encoded set
// costs O(#runs) bytes on the wire exactly as it does in memory, and the
// decoder reconstructs the same representation, so shipping a shard task
// never forces a bitmap materialisation on either side. Dense stays raw
// words (not varint) so the dense wire size IS the bitmap size — the
// baseline the compact encodings are measured against.
//
// DecodeRowSet rejects unknown versions and tags with an error rather
// than a panic: a coordinator talking to a newer or older worker must be
// able to fall back to a local search.
const rowSetCodecVersion = 1

// RowSetCodecVersion is the wire version AppendBinary emits. Peers that
// see a different version must treat the payload as undecodable.
const RowSetCodecVersion = rowSetCodecVersion

// AppendBinary appends the versioned binary form of s to buf and returns
// the extended slice. The receiver is not modified; the emitted encoding
// tag matches the in-memory encoding.
func (s *RowSet) AppendBinary(buf []byte) []byte {
	buf = append(buf, rowSetCodecVersion, s.enc)
	buf = binary.AppendUvarint(buf, uint64(s.n))
	switch s.enc {
	case encSparse:
		buf = binary.AppendUvarint(buf, uint64(len(s.elems)))
		prev := int32(0)
		for i, e := range s.elems {
			if i == 0 {
				buf = binary.AppendUvarint(buf, uint64(e))
			} else {
				buf = binary.AppendUvarint(buf, uint64(e-prev))
			}
			prev = e
		}
	case encRuns:
		buf = binary.AppendUvarint(buf, uint64(len(s.runs)))
		prevHi := int32(0)
		for _, r := range s.runs {
			buf = binary.AppendUvarint(buf, uint64(r.lo-prevHi))
			buf = binary.AppendUvarint(buf, uint64(r.hi-r.lo))
			prevHi = r.hi
		}
	default: // dense
		for _, w := range s.words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	}
	return buf
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *RowSet) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// DecodeRowSet decodes one RowSet from the front of data, returning the
// set, the number of bytes consumed, and an error if the payload is
// truncated, malformed, or from an unknown codec version. The returned
// set shares no storage with data and carries the same encoding the
// producer had.
func DecodeRowSet(data []byte) (*RowSet, int, error) {
	if len(data) < 2 {
		return nil, 0, fmt.Errorf("relation: rowset codec: short header (%d bytes)", len(data))
	}
	if data[0] != rowSetCodecVersion {
		return nil, 0, fmt.Errorf("relation: rowset codec: unsupported version %d (want %d)", data[0], rowSetCodecVersion)
	}
	enc := data[1]
	if enc != encSparse && enc != encRuns && enc != encDense {
		return nil, 0, fmt.Errorf("relation: rowset codec: unknown encoding tag %d", enc)
	}
	pos := 2
	un, k := binary.Uvarint(data[pos:])
	if k <= 0 || un > math.MaxInt64 {
		return nil, 0, fmt.Errorf("relation: rowset codec: bad universe")
	}
	pos += k
	n := int(un)
	if enc != encDense && !compressible(n) {
		return nil, 0, fmt.Errorf("relation: rowset codec: universe %d requires dense encoding", n)
	}
	s := &RowSet{n: n, enc: enc}
	switch enc {
	case encSparse:
		cnt, k := binary.Uvarint(data[pos:])
		if k <= 0 || cnt > uint64(n) {
			return nil, 0, fmt.Errorf("relation: rowset codec: bad sparse count")
		}
		pos += k
		if cnt > 0 {
			s.elems = make([]int32, 0, cnt)
			prev := int64(-1)
			for i := uint64(0); i < cnt; i++ {
				d, k := binary.Uvarint(data[pos:])
				if k <= 0 {
					return nil, 0, fmt.Errorf("relation: rowset codec: truncated sparse delta %d", i)
				}
				pos += k
				if d > math.MaxInt32 {
					return nil, 0, fmt.Errorf("relation: rowset codec: sparse delta %d overflows int32", i)
				}
				var e int64
				if i == 0 {
					e = int64(d)
				} else {
					if d == 0 {
						return nil, 0, fmt.Errorf("relation: rowset codec: zero sparse delta %d", i)
					}
					e = prev + int64(d)
				}
				if e >= int64(n) {
					return nil, 0, fmt.Errorf("relation: rowset codec: sparse member %d outside universe %d", e, n)
				}
				s.elems = append(s.elems, int32(e))
				prev = e
			}
		}
	case encRuns:
		cnt, k := binary.Uvarint(data[pos:])
		if k <= 0 || cnt > uint64(n) {
			return nil, 0, fmt.Errorf("relation: rowset codec: bad run count")
		}
		pos += k
		if cnt > 0 {
			s.runs = make([]span, 0, cnt)
			prevHi := int64(0)
			for i := uint64(0); i < cnt; i++ {
				gap, k := binary.Uvarint(data[pos:])
				if k <= 0 {
					return nil, 0, fmt.Errorf("relation: rowset codec: truncated run gap %d", i)
				}
				pos += k
				ln, k := binary.Uvarint(data[pos:])
				if k <= 0 {
					return nil, 0, fmt.Errorf("relation: rowset codec: truncated run length %d", i)
				}
				pos += k
				if gap > math.MaxInt32 || ln > math.MaxInt32 {
					return nil, 0, fmt.Errorf("relation: rowset codec: run %d overflows int32", i)
				}
				if i > 0 && gap == 0 {
					return nil, 0, fmt.Errorf("relation: rowset codec: adjacent runs at %d", i)
				}
				if ln == 0 {
					return nil, 0, fmt.Errorf("relation: rowset codec: empty run %d", i)
				}
				lo := prevHi + int64(gap)
				hi := lo + int64(ln)
				if hi > int64(n) {
					return nil, 0, fmt.Errorf("relation: rowset codec: run [%d,%d) beyond universe %d", lo, hi, n)
				}
				s.runs = append(s.runs, span{int32(lo), int32(hi)})
				prevHi = hi
			}
		}
	default: // dense
		// Word-count arithmetic stays in uint64 so an adversarial universe
		// near MaxInt64 cannot overflow into a small allocation.
		words := int((un + 63) / 64)
		if uw := (un + 63) / 64; uw > uint64(len(data)-pos)/8 {
			return nil, 0, fmt.Errorf("relation: rowset codec: truncated dense payload (%d of %d words)", (len(data)-pos)/8, uw)
		}
		if words > 0 {
			s.words = make([]uint64, words)
			for i := range s.words {
				s.words[i] = binary.LittleEndian.Uint64(data[pos:])
				pos += 8
			}
		}
	}
	if err := s.check(); err != nil {
		return nil, 0, fmt.Errorf("relation: rowset codec: %w", err)
	}
	return s, pos, nil
}
