package relation

import (
	"fmt"
	"strconv"
)

// Value is a single cell: either a continuous float64 or a discrete string.
// The zero Value is the continuous value 0.
type Value struct {
	kind Kind
	f    float64
	s    string
}

// F wraps a float64 as a continuous Value.
func F(v float64) Value { return Value{kind: Continuous, f: v} }

// S wraps a string as a discrete Value.
func S(v string) Value { return Value{kind: Discrete, s: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Float returns the continuous payload. It panics on discrete values so that
// kind confusion fails loudly in tests rather than corrupting aggregates.
func (v Value) Float() float64 {
	if v.kind != Continuous {
		panic("relation: Float() on discrete value")
	}
	return v.f
}

// Str returns the discrete payload; it panics on continuous values.
func (v Value) Str() string {
	if v.kind != Discrete {
		panic("relation: Str() on continuous value")
	}
	return v.s
}

// String renders the value for display.
func (v Value) String() string {
	if v.kind == Continuous {
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	}
	return v.s
}

// Row is an ordered list of cells matching a schema.
type Row []Value

// checkAgainst validates a row's arity and per-column kinds against a schema.
func (r Row) checkAgainst(s *Schema) error {
	if len(r) != s.NumColumns() {
		return fmt.Errorf("relation: row has %d values, schema has %d columns", len(r), s.NumColumns())
	}
	for i, v := range r {
		if v.kind != s.Column(i).Kind {
			return fmt.Errorf("relation: column %q expects %s value, got %s",
				s.Column(i).Name, s.Column(i).Kind, v.kind)
		}
	}
	return nil
}
