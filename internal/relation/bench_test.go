package relation

import (
	"math/rand"
	"testing"
)

func benchSet(n int, density float64) *RowSet {
	rng := rand.New(rand.NewSource(1))
	s := NewRowSet(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func BenchmarkRowSetAnd(b *testing.B) {
	x := benchSet(1_000_000, 0.3)
	y := benchSet(1_000_000, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkRowSetForEach(b *testing.B) {
	x := benchSet(1_000_000, 0.1)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(r int) { sum += r })
	}
	_ = sum
}

func BenchmarkRowSetCount(b *testing.B) {
	x := benchSet(1_000_000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkBuilderAppend(b *testing.B) {
	schema := MustSchema(
		Column{Name: "d", Kind: Discrete},
		Column{Name: "v", Kind: Continuous},
	)
	row := Row{S("abc"), F(1.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(schema)
		for j := 0; j < 1000; j++ {
			bl.MustAppend(row)
		}
		bl.Build()
	}
}
