package relation

import (
	"math/rand"
	"testing"
)

func benchSet(n int, density float64) *RowSet {
	rng := rand.New(rand.NewSource(1))
	s := NewRowSet(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Add(i)
		}
	}
	return s
}

func BenchmarkRowSetAnd(b *testing.B) {
	x := benchSet(1_000_000, 0.3)
	y := benchSet(1_000_000, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkRowSetForEach(b *testing.B) {
	x := benchSet(1_000_000, 0.1)
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(r int) { sum += r })
	}
	_ = sum
}

func BenchmarkRowSetCount(b *testing.B) {
	x := benchSet(1_000_000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Count()
	}
}

func BenchmarkBuilderAppend(b *testing.B) {
	schema := MustSchema(
		Column{Name: "d", Kind: Discrete},
		Column{Name: "v", Kind: Continuous},
	)
	row := Row{S("abc"), F(1.5)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(schema)
		for j := 0; j < 1000; j++ {
			bl.MustAppend(row)
		}
		bl.Build()
	}
}

// benchShapes builds one set per encoding regime at a representative
// density over the same universe: "dense" is high-entropy random
// membership, "runs" is group-contiguous (1000-row groups, every other
// group flagged), "sparse" is a 48-point set. The forced dense twin of
// each shape is the old fixed-bitmap baseline.
func benchShapes(n int) map[string]*RowSet {
	shapes := make(map[string]*RowSet)

	dense := NewRowSet(n)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.5 {
			dense.Add(i)
		}
	}
	shapes["dense"] = dense

	runs := NewRowSet(n)
	for g := 0; g < n/1000; g += 2 {
		runs.AddRange(g*1000, (g+1)*1000)
	}
	shapes["runs"] = runs

	sparse := NewRowSet(n)
	for i := 0; i < 48; i++ {
		sparse.Add(i * (n / 48))
	}
	shapes["sparse"] = sparse
	return shapes
}

// BenchmarkRowSetOps measures every core kernel on every encoding shape,
// against the same shape forced into the dense bitmap — the numbers behind
// the selection heuristics in rowset.go (sparseMaxLen, maxRuns).
func BenchmarkRowSetOps(b *testing.B) {
	const n = 1_000_000
	for name, s := range benchShapes(n) {
		forced := s.Clone()
		forced.toDense()
		other := FullRowSet(n)
		other.Remove(n / 2) // two runs: cheap operand in any encoding
		for _, v := range []struct {
			enc string
			set *RowSet
		}{{"adaptive", s}, {"forced-dense", forced}} {
			b.Run(name+"/"+v.enc+"/And", func(b *testing.B) {
				b.ReportMetric(float64(v.set.MemBytes()), "bytes/set")
				for i := 0; i < b.N; i++ {
					_ = v.set.Intersect(other)
				}
			})
			b.Run(name+"/"+v.enc+"/Or", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = v.set.Union(other)
				}
			})
			b.Run(name+"/"+v.enc+"/Slice", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_ = v.set.Slice(n/4, 3*n/4)
				}
			})
			b.Run(name+"/"+v.enc+"/ForEach", func(b *testing.B) {
				sum := 0
				for i := 0; i < b.N; i++ {
					v.set.ForEach(func(r int) { sum += r })
				}
				_ = sum
			})
		}
	}
}
