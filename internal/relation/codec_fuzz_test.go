package relation

// FuzzRowSetCodec exercises the binary codec from both directions:
//
//   - generative: the input bytes build a membership set (universe byte +
//     row/range bytes), which is forced into each of the three encodings;
//     every variant must round-trip through AppendBinary/DecodeRowSet with
//     identical universe, membership, encoding tag, and bytes.
//   - adversarial: the raw input is also fed straight into DecodeRowSet,
//     which must either return a structurally valid set (check() clean,
//     re-encodable to the same bytes it consumed) or an error — never
//     panic, never hand back a corrupt set.
//
// Run it locally with:
//
//	go test -fuzz=FuzzRowSetCodec -fuzztime 30s ./internal/relation
import (
	"bytes"
	"testing"
)

func FuzzRowSetCodec(f *testing.F) {
	// Seeds: empty set, a sparse scatter, a run-shaped set, a dense-ish
	// alternating set, and a raw pre-encoded payload for the decode path.
	f.Add([]byte{0})
	f.Add([]byte{9, 1, 0, 3, 0, 8, 0})
	f.Add([]byte{200, 10, 60, 90, 120, 150, 200})
	f.Add([]byte{255, 0, 0, 2, 0, 4, 0, 6, 0, 8, 0, 10, 0})
	f.Add(RowSetOf(100, 5, 6, 7, 40).AppendBinary(nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: adversarial decode of the raw bytes.
		if s, used, err := DecodeRowSet(data); err == nil {
			if err := s.check(); err != nil {
				t.Fatalf("decode accepted invalid set: %v", err)
			}
			// Canonical re-encode must reproduce a payload the decoder
			// accepts with identical membership.
			again := s.AppendBinary(nil)
			s2, _, err := DecodeRowSet(again)
			if err != nil {
				t.Fatalf("re-encode of accepted input undecodable: %v", err)
			}
			if !s2.Equal(s) || s2.Universe() != s.Universe() {
				t.Fatalf("re-encode changed membership: %s vs %s", s2, s)
			}
			_ = used
		}

		// Direction 2: generative round-trip across all three encodings.
		if len(data) == 0 {
			return
		}
		n := int(data[0])
		data = data[1:]
		if len(data) > 64 {
			data = data[:64]
		}
		work := NewRowSet(n)
		for i := 0; i+1 < len(data) && n > 0; i += 2 {
			a, b := int(data[i])%n, int(data[i+1])%n
			if b == 0 {
				work.Add(a)
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			work.AddRange(lo, hi+1)
		}
		variants := encVariants(work)
		for vi, v := range [4]*RowSet{work, variants[0], variants[1], variants[2]} {
			buf := v.AppendBinary(nil)
			got, used, err := DecodeRowSet(buf)
			if err != nil {
				t.Fatalf("variant %d (%s): decode: %v", vi, v.Encoding(), err)
			}
			if used != len(buf) {
				t.Fatalf("variant %d (%s): consumed %d of %d", vi, v.Encoding(), used, len(buf))
			}
			if got.Universe() != v.Universe() || got.Encoding() != v.Encoding() {
				t.Fatalf("variant %d (%s): decoded as %s/%d", vi, v.Encoding(), got.Encoding(), got.Universe())
			}
			if !got.Equal(v) {
				t.Fatalf("variant %d (%s): membership differs", vi, v.Encoding())
			}
			if err := got.check(); err != nil {
				t.Fatalf("variant %d (%s): invariant: %v", vi, v.Encoding(), err)
			}
			if again := got.AppendBinary(nil); !bytes.Equal(again, buf) {
				t.Fatalf("variant %d (%s): re-encode not byte-identical", vi, v.Encoding())
			}
		}
	})
}
