package relation

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"unsafe"
)

// RowSet is a set of row indices over a fixed universe [0, N). It is the
// unit of provenance: input groups, predicate matches, and samples are all
// RowSets over the same base table.
//
// A RowSet is not one data structure but a small family of encodings behind
// one type, selected automatically as the set is built and mutated:
//
//   - sparse: a sorted []int32 of members — tiny sets (sample strata,
//     escalated candidates) cost 4 bytes per row.
//   - runs:   sorted disjoint half-open [lo,hi) spans — group-contiguous
//     provenance (the shape GROUP BY-ordered tables produce) costs 8 bytes
//     per run regardless of how many rows each run covers.
//   - dense:  the fixed-universe bitmap — high-entropy sets cost N/8 bytes
//     like they always did, and never more.
//
// Selection heuristics (see maxRuns): a set starts sparse, converts to runs
// past sparseMaxLen members, and converts to dense once its run count would
// make the spans cost more than the bitmap. Every operation is defined
// across all encoding pairs; Slice and Embed are O(#runs) offset arithmetic
// for the compact encodings, so id translation between a table and its
// Views never copies bitmap words unless the set really is dense.
//
// All read-only methods (Contains, Count, CountRange, ForEach, Rows,
// SubsetOf, Equal, Slice, Embed, Min, Max) never re-encode the receiver and
// are safe for concurrent readers; mutating methods are not.
type RowSet struct {
	n     int
	enc   uint8
	words []uint64 // dense: (n+63)/64 words, trailing bits clear
	runs  []span   // runs: sorted, disjoint, non-adjacent, each lo < hi
	elems []int32  // sparse: sorted, strictly increasing
}

// Encoding discriminants. The zero value is sparse so that the zero RowSet
// (universe 0, no storage) is valid.
const (
	encSparse uint8 = iota
	encRuns
	encDense
)

// span is one half-open run [lo, hi) of consecutive member rows.
type span struct{ lo, hi int32 }

const (
	// sparseMaxLen is the largest member count kept in the sorted-array
	// encoding: at 4 bytes per member vs 8 per run, sparse wins below two
	// members per run, and keeping it small bounds the O(len) cost of
	// out-of-order inserts.
	sparseMaxLen = 64
	// runsFloor and runsCeil clamp the run budget: the floor keeps tiny
	// universes from flapping to dense on their first few gaps, and the
	// ceiling (8192 runs = 64 KiB of spans) bounds the O(#runs) memmove
	// cost of pathological out-of-order construction.
	runsFloor = 8
	runsCeil  = 8192
)

// maxRuns is a universe's run budget: past n/64 runs the 8-byte spans cost
// more than the n/8-byte bitmap, so the set re-encodes dense.
func maxRuns(n int) int {
	r := n / 64
	if r < runsFloor {
		r = runsFloor
	}
	if r > runsCeil {
		r = runsCeil
	}
	return r
}

// compressible reports whether a universe fits the int32-based compact
// encodings. Universes beyond 2^31 rows are dense-only.
func compressible(n int) bool { return n <= math.MaxInt32 }

// NewRowSet returns an empty set over the universe [0, n). It starts in the
// sparse encoding (no storage at all) and adapts as members arrive.
func NewRowSet(n int) *RowSet {
	if n < 0 {
		panic("relation: negative RowSet universe")
	}
	if !compressible(n) {
		return &RowSet{n: n, enc: encDense, words: make([]uint64, (n+63)/64)}
	}
	return &RowSet{n: n, enc: encSparse}
}

// NewDenseRowSet returns an empty set pinned to the dense bitmap encoding.
// Add and Remove keep it dense (set-algebra methods may still re-encode the
// result); it exists so benchmarks can measure the fixed-bitmap baseline
// the adaptive encodings replaced.
func NewDenseRowSet(n int) *RowSet {
	if n < 0 {
		panic("relation: negative RowSet universe")
	}
	return &RowSet{n: n, enc: encDense, words: make([]uint64, (n+63)/64)}
}

// FullRowSet returns the set containing every row in [0, n) — a single run.
func FullRowSet(n int) *RowSet {
	s := NewRowSet(n)
	s.AddRange(0, n)
	return s
}

// RowSetOf returns a set over [0, n) containing exactly the given rows.
func RowSetOf(n int, rows ...int) *RowSet {
	s := NewRowSet(n)
	for _, r := range rows {
		s.Add(r)
	}
	return s
}

// Universe reports the size of the universe (not the cardinality).
func (s *RowSet) Universe() int { return s.n }

// Encoding reports the set's current representation: "sparse", "runs", or
// "dense". Observability only — callers must not branch on it for
// correctness.
func (s *RowSet) Encoding() string {
	switch s.enc {
	case encRuns:
		return "runs"
	case encDense:
		return "dense"
	default:
		return "sparse"
	}
}

// MemBytes reports the set's approximate heap footprint: the struct header
// plus the capacity of whichever backing array the encoding uses. This is
// the number the BENCH_memory lane tracks per provenance row.
func (s *RowSet) MemBytes() int {
	return int(unsafe.Sizeof(*s)) + cap(s.words)*8 + cap(s.runs)*8 + cap(s.elems)*4
}

// trim clears bits beyond the universe in the last word (dense only).
func (s *RowSet) trim() {
	if s.n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(s.n%64)) - 1
	}
}

// adapt applies the representation heuristics after a mutation.
func (s *RowSet) adapt() {
	switch s.enc {
	case encSparse:
		if len(s.elems) > sparseMaxLen {
			s.toRuns()
			if len(s.runs) > maxRuns(s.n) {
				s.toDense()
			}
		}
	case encRuns:
		if len(s.runs) > maxRuns(s.n) {
			s.toDense()
		}
	}
}

// toDense re-encodes the set as a bitmap, preserving membership.
func (s *RowSet) toDense() {
	if s.enc == encDense {
		return
	}
	words := make([]uint64, (s.n+63)/64)
	if s.enc == encSparse {
		for _, e := range s.elems {
			words[e>>6] |= 1 << uint(e&63)
		}
	} else {
		for _, r := range s.runs {
			setWordRange(words, int(r.lo), int(r.hi))
		}
	}
	s.words, s.runs, s.elems, s.enc = words, nil, nil, encDense
}

// toRuns re-encodes the set as spans, preserving membership. The caller is
// responsible for the run budget (adapt enforces it on the public paths).
func (s *RowSet) toRuns() {
	switch s.enc {
	case encRuns:
		return
	case encSparse:
		var runs []span
		for _, e := range s.elems {
			if k := len(runs); k > 0 && runs[k-1].hi == e {
				runs[k-1].hi++
			} else {
				runs = append(runs, span{e, e + 1})
			}
		}
		s.runs, s.elems, s.words, s.enc = runs, nil, nil, encRuns
	default: // dense
		var runs []span
		it := s.iter()
		for {
			lo, hi, ok := it.next()
			if !ok {
				break
			}
			runs = append(runs, span{int32(lo), int32(hi)})
		}
		s.runs, s.elems, s.words, s.enc = runs, nil, nil, encRuns
	}
}

// toSparse re-encodes the set as a sorted member array, preserving
// membership. Test/fuzz plumbing — production paths only shrink to sparse
// through the set builder, which checks the cardinality first.
func (s *RowSet) toSparse() {
	if s.enc == encSparse {
		return
	}
	elems := make([]int32, 0, s.Count())
	s.ForEach(func(r int) { elems = append(elems, int32(r)) })
	s.elems, s.runs, s.words, s.enc = elems, nil, nil, encSparse
}

// Add inserts row i. It panics if i is outside the universe.
func (s *RowSet) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("relation: row %d outside universe [0,%d)", i, s.n))
	}
	switch s.enc {
	case encDense:
		s.words[i>>6] |= 1 << uint(i&63)
	case encSparse:
		s.addSparse(int32(i))
	case encRuns:
		s.addRuns(int32(i))
	}
}

func (s *RowSet) addSparse(r int32) {
	k := len(s.elems)
	// Fast path: ascending construction appends.
	if k == 0 || r > s.elems[k-1] {
		s.elems = append(s.elems, r)
		s.adapt()
		return
	}
	j := sort.Search(k, func(i int) bool { return s.elems[i] >= r })
	if j < k && s.elems[j] == r {
		return
	}
	s.elems = append(s.elems, 0)
	copy(s.elems[j+1:], s.elems[j:])
	s.elems[j] = r
	s.adapt()
}

func (s *RowSet) addRuns(r int32) {
	k := len(s.runs)
	// Fast path: ascending construction extends or appends the tail run.
	if k == 0 || r >= s.runs[k-1].hi {
		if k > 0 && r == s.runs[k-1].hi {
			s.runs[k-1].hi++
			return
		}
		s.runs = append(s.runs, span{r, r + 1})
		s.adapt()
		return
	}
	// j: first run with hi > r.
	j := sort.Search(k, func(i int) bool { return s.runs[i].hi > r })
	if r >= s.runs[j].lo {
		return // already present
	}
	if r == s.runs[j].lo-1 {
		s.runs[j].lo--
		if j > 0 && s.runs[j-1].hi == s.runs[j].lo {
			// Bridged the gap: merge runs j-1 and j.
			s.runs[j-1].hi = s.runs[j].hi
			s.runs = append(s.runs[:j], s.runs[j+1:]...)
		}
		return
	}
	if j > 0 && s.runs[j-1].hi == r {
		s.runs[j-1].hi++
		return
	}
	s.runs = append(s.runs, span{})
	copy(s.runs[j+1:], s.runs[j:])
	s.runs[j] = span{r, r + 1}
	s.adapt()
}

// AddRange inserts every row in [lo, hi). It panics unless
// 0 <= lo <= hi <= Universe().
func (s *RowSet) AddRange(lo, hi int) {
	if lo < 0 || hi < lo || hi > s.n {
		panic(fmt.Sprintf("relation: AddRange [%d,%d) outside universe [0,%d)", lo, hi, s.n))
	}
	if lo == hi {
		return
	}
	switch s.enc {
	case encDense:
		setWordRange(s.words, lo, hi)
	case encSparse:
		if hi-lo == 1 {
			s.addSparse(int32(lo))
			return
		}
		s.toRuns()
		s.addRangeRuns(int32(lo), int32(hi))
		s.adapt()
	case encRuns:
		s.addRangeRuns(int32(lo), int32(hi))
		s.adapt()
	}
}

// addRangeRuns merges the span [lo, hi) into the run list.
func (s *RowSet) addRangeRuns(lo, hi int32) {
	// i: first run that overlaps or is left-adjacent to [lo, hi).
	i := sort.Search(len(s.runs), func(k int) bool { return s.runs[k].hi >= lo })
	// j: first run past the overlap/right-adjacency.
	j := i
	for j < len(s.runs) && s.runs[j].lo <= hi {
		j++
	}
	if i == j {
		s.runs = append(s.runs, span{})
		copy(s.runs[i+1:], s.runs[i:])
		s.runs[i] = span{lo, hi}
		return
	}
	if s.runs[i].lo < lo {
		lo = s.runs[i].lo
	}
	if s.runs[j-1].hi > hi {
		hi = s.runs[j-1].hi
	}
	s.runs[i] = span{lo, hi}
	s.runs = append(s.runs[:i+1], s.runs[j:]...)
}

// Remove deletes row i if present.
func (s *RowSet) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	switch s.enc {
	case encDense:
		s.words[i>>6] &^= 1 << uint(i&63)
	case encSparse:
		r := int32(i)
		j := sort.Search(len(s.elems), func(k int) bool { return s.elems[k] >= r })
		if j < len(s.elems) && s.elems[j] == r {
			s.elems = append(s.elems[:j], s.elems[j+1:]...)
		}
	case encRuns:
		r := int32(i)
		j := sort.Search(len(s.runs), func(k int) bool { return s.runs[k].hi > r })
		if j == len(s.runs) || r < s.runs[j].lo {
			return
		}
		run := s.runs[j]
		switch {
		case run.lo == r && run.hi == r+1:
			s.runs = append(s.runs[:j], s.runs[j+1:]...)
		case run.lo == r:
			s.runs[j].lo++
		case run.hi == r+1:
			s.runs[j].hi--
		default:
			// Split the run in two.
			s.runs = append(s.runs, span{})
			copy(s.runs[j+1:], s.runs[j:])
			s.runs[j] = span{run.lo, r}
			s.runs[j+1] = span{r + 1, run.hi}
			s.adapt()
		}
	}
}

// Contains reports whether row i is in the set.
func (s *RowSet) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	switch s.enc {
	case encDense:
		return s.words[i>>6]&(1<<uint(i&63)) != 0
	case encSparse:
		r := int32(i)
		j := sort.Search(len(s.elems), func(k int) bool { return s.elems[k] >= r })
		return j < len(s.elems) && s.elems[j] == r
	default:
		r := int32(i)
		j := sort.Search(len(s.runs), func(k int) bool { return s.runs[k].hi > r })
		return j < len(s.runs) && r >= s.runs[j].lo
	}
}

// Count returns the cardinality of the set.
func (s *RowSet) Count() int {
	switch s.enc {
	case encDense:
		c := 0
		for _, w := range s.words {
			c += bits.OnesCount64(w)
		}
		return c
	case encSparse:
		return len(s.elems)
	default:
		c := 0
		for _, r := range s.runs {
			c += int(r.hi - r.lo)
		}
		return c
	}
}

// IsEmpty reports whether the set has no rows.
func (s *RowSet) IsEmpty() bool {
	switch s.enc {
	case encDense:
		for _, w := range s.words {
			if w != 0 {
				return false
			}
		}
		return true
	case encSparse:
		return len(s.elems) == 0
	default:
		return len(s.runs) == 0
	}
}

// Min returns the smallest member, or -1 when the set is empty. O(1) for
// the compact encodings.
func (s *RowSet) Min() int {
	switch s.enc {
	case encSparse:
		if len(s.elems) == 0 {
			return -1
		}
		return int(s.elems[0])
	case encRuns:
		if len(s.runs) == 0 {
			return -1
		}
		return int(s.runs[0].lo)
	default:
		for wi, w := range s.words {
			if w != 0 {
				return wi<<6 + bits.TrailingZeros64(w)
			}
		}
		return -1
	}
}

// Max returns the largest member, or -1 when the set is empty. O(1) for the
// compact encodings.
func (s *RowSet) Max() int {
	switch s.enc {
	case encSparse:
		if len(s.elems) == 0 {
			return -1
		}
		return int(s.elems[len(s.elems)-1])
	case encRuns:
		if len(s.runs) == 0 {
			return -1
		}
		return int(s.runs[len(s.runs)-1].hi) - 1
	default:
		for wi := len(s.words) - 1; wi >= 0; wi-- {
			if w := s.words[wi]; w != 0 {
				return wi<<6 + 63 - bits.LeadingZeros64(w)
			}
		}
		return -1
	}
}

// Clone returns an independent copy in the same encoding.
func (s *RowSet) Clone() *RowSet {
	c := &RowSet{n: s.n, enc: s.enc}
	switch s.enc {
	case encDense:
		c.words = append([]uint64(nil), s.words...)
		if c.words == nil && s.n > 0 {
			c.words = make([]uint64, (s.n+63)/64)
		}
	case encRuns:
		c.runs = append([]span(nil), s.runs...)
	case encSparse:
		c.elems = append([]int32(nil), s.elems...)
	}
	return c
}

func (s *RowSet) checkUniverse(o *RowSet) {
	if s.n != o.n {
		panic(fmt.Sprintf("relation: RowSet universe mismatch %d != %d", s.n, o.n))
	}
}

// runIter walks a set's maximal runs in ascending order. It snapshots the
// backing arrays at creation, so the underlying set may be re-encoded while
// an iterator built earlier is still draining.
type runIter struct {
	enc   uint8
	words []uint64
	runs  []span
	elems []int32
	i     int // runs/elems cursor
	pos   int // dense bit cursor
}

func (s *RowSet) iter() runIter {
	return runIter{enc: s.enc, words: s.words, runs: s.runs, elems: s.elems}
}

func (it *runIter) next() (lo, hi int, ok bool) {
	switch it.enc {
	case encRuns:
		if it.i >= len(it.runs) {
			return 0, 0, false
		}
		r := it.runs[it.i]
		it.i++
		return int(r.lo), int(r.hi), true
	case encSparse:
		if it.i >= len(it.elems) {
			return 0, 0, false
		}
		lo = int(it.elems[it.i])
		hi = lo + 1
		it.i++
		for it.i < len(it.elems) && int(it.elems[it.i]) == hi {
			hi++
			it.i++
		}
		return lo, hi, true
	default: // dense
		nw := len(it.words)
		wi := it.pos >> 6
		if wi >= nw {
			return 0, 0, false
		}
		w := it.words[wi] & (^uint64(0) << uint(it.pos&63))
		for w == 0 {
			wi++
			if wi >= nw {
				return 0, 0, false
			}
			w = it.words[wi]
		}
		lo = wi<<6 + bits.TrailingZeros64(w)
		// Find the first clear bit after lo. Trailing garbage bits past the
		// universe are zero (trim), so the scan stops at or before n.
		wj := lo >> 6
		for {
			if wj >= nw {
				hi = nw << 6
				break
			}
			inv := ^it.words[wj]
			if wj == lo>>6 {
				inv &= ^uint64(0) << uint(lo&63)
			}
			if inv != 0 {
				hi = wj<<6 + bits.TrailingZeros64(inv)
				break
			}
			wj++
		}
		it.pos = hi
		return lo, hi, true
	}
}

// setBuilder accumulates ascending, disjoint runs and freezes them into
// whichever encoding the heuristics pick: sparse for tiny results, runs
// while under the universe's run budget, spilling to dense the moment the
// budget is exceeded (so a high-entropy result never materializes a huge
// span list first).
type setBuilder struct {
	n      int
	cnt    int
	budget int
	runs   []span
	words  []uint64 // non-nil once spilled to dense
}

func newSetBuilder(n int) setBuilder {
	b := setBuilder{n: n, budget: maxRuns(n)}
	if !compressible(n) {
		b.words = make([]uint64, (n+63)/64)
	}
	return b
}

// add appends the run [lo, hi); calls must arrive in ascending order with
// lo at or past the previous hi (adjacent runs are coalesced).
func (b *setBuilder) add(lo, hi int) {
	if hi <= lo {
		return
	}
	b.cnt += hi - lo
	if b.words != nil {
		setWordRange(b.words, lo, hi)
		return
	}
	if k := len(b.runs); k > 0 && int(b.runs[k-1].hi) == lo {
		b.runs[k-1].hi = int32(hi)
		return
	}
	if len(b.runs) >= b.budget {
		b.words = make([]uint64, (b.n+63)/64)
		for _, r := range b.runs {
			setWordRange(b.words, int(r.lo), int(r.hi))
		}
		b.runs = nil
		setWordRange(b.words, lo, hi)
		return
	}
	b.runs = append(b.runs, span{int32(lo), int32(hi)})
}

// store writes the built set into dst, replacing its contents.
func (b *setBuilder) store(dst *RowSet) {
	dst.n = b.n
	dst.words, dst.runs, dst.elems = nil, nil, nil
	switch {
	case b.words != nil:
		dst.enc, dst.words = encDense, b.words
	case b.cnt <= sparseMaxLen:
		elems := make([]int32, 0, b.cnt)
		for _, r := range b.runs {
			for e := r.lo; e < r.hi; e++ {
				elems = append(elems, e)
			}
		}
		dst.enc, dst.elems = encSparse, elems
	default:
		dst.enc, dst.runs = encRuns, b.runs
	}
}

// setWordRange sets bits [lo, hi) in a bitmap.
func setWordRange(words []uint64, lo, hi int) {
	if hi <= lo {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if wLo == wHi {
		words[wLo] |= loMask & hiMask
		return
	}
	words[wLo] |= loMask
	for w := wLo + 1; w < wHi; w++ {
		words[w] = ^uint64(0)
	}
	words[wHi] |= hiMask
}

// clearWordRange clears bits [lo, hi) in a bitmap.
func clearWordRange(words []uint64, lo, hi int) {
	if hi <= lo {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << uint(lo&63)
	hiMask := ^uint64(0) >> uint(63-(hi-1)&63)
	if wLo == wHi {
		words[wLo] &^= loMask & hiMask
		return
	}
	words[wLo] &^= loMask
	for w := wLo + 1; w < wHi; w++ {
		words[w] = 0
	}
	words[wHi] &^= hiMask
}

// And intersects s with o in place and returns s. The result may be
// re-encoded.
func (s *RowSet) And(o *RowSet) *RowSet {
	s.checkUniverse(o)
	if s.enc == encDense && o.enc == encDense {
		for i := range s.words {
			s.words[i] &= o.words[i]
		}
		return s
	}
	if s.enc == encDense {
		// Result ⊆ o: keep s dense, clear everything outside o's runs.
		prev := 0
		it := o.iter()
		for {
			lo, hi, ok := it.next()
			if !ok {
				break
			}
			clearWordRange(s.words, prev, lo)
			prev = hi
		}
		clearWordRange(s.words, prev, s.n)
		return s
	}
	b := newSetBuilder(s.n)
	ia, ib := s.iter(), o.iter()
	alo, ahi, aok := ia.next()
	blo, bhi, bok := ib.next()
	for aok && bok {
		lo, hi := alo, ahi
		if blo > lo {
			lo = blo
		}
		if bhi < hi {
			hi = bhi
		}
		if lo < hi {
			b.add(lo, hi)
		}
		if ahi <= bhi {
			alo, ahi, aok = ia.next()
		} else {
			blo, bhi, bok = ib.next()
		}
	}
	b.store(s)
	return s
}

// Or unions o into s in place and returns s. The result may be re-encoded.
func (s *RowSet) Or(o *RowSet) *RowSet {
	s.checkUniverse(o)
	if s.enc == encDense && o.enc == encDense {
		for i := range s.words {
			s.words[i] |= o.words[i]
		}
		return s
	}
	if s.enc == encDense {
		// Stays dense: set o's runs directly into the bitmap.
		it := o.iter()
		for {
			lo, hi, ok := it.next()
			if !ok {
				break
			}
			setWordRange(s.words, lo, hi)
		}
		return s
	}
	b := newSetBuilder(s.n)
	ia, ib := s.iter(), o.iter()
	alo, ahi, aok := ia.next()
	blo, bhi, bok := ib.next()
	curLo, curHi := 0, 0
	have := false
	emit := func(lo, hi int) {
		if !have {
			curLo, curHi, have = lo, hi, true
			return
		}
		if lo <= curHi {
			if hi > curHi {
				curHi = hi
			}
			return
		}
		b.add(curLo, curHi)
		curLo, curHi = lo, hi
	}
	for aok || bok {
		if aok && (!bok || alo <= blo) {
			emit(alo, ahi)
			alo, ahi, aok = ia.next()
		} else {
			emit(blo, bhi)
			blo, bhi, bok = ib.next()
		}
	}
	if have {
		b.add(curLo, curHi)
	}
	b.store(s)
	return s
}

// AndNot removes o's rows from s in place and returns s. The result may be
// re-encoded.
func (s *RowSet) AndNot(o *RowSet) *RowSet {
	s.checkUniverse(o)
	if s.enc == encDense && o.enc == encDense {
		for i := range s.words {
			s.words[i] &^= o.words[i]
		}
		return s
	}
	if s.enc == encDense {
		// Stays dense: clear o's runs from the bitmap.
		it := o.iter()
		for {
			lo, hi, ok := it.next()
			if !ok {
				break
			}
			clearWordRange(s.words, lo, hi)
		}
		return s
	}
	b := newSetBuilder(s.n)
	ia, ib := s.iter(), o.iter()
	alo, ahi, aok := ia.next()
	blo, bhi, bok := ib.next()
	for aok {
		for bok && bhi <= alo {
			blo, bhi, bok = ib.next()
		}
		if !bok || blo >= ahi {
			b.add(alo, ahi)
			alo, ahi, aok = ia.next()
			continue
		}
		if blo > alo {
			b.add(alo, blo)
		}
		if bhi >= ahi {
			alo, ahi, aok = ia.next()
		} else {
			alo = bhi
		}
	}
	b.store(s)
	return s
}

// Complement flips membership of every row in the universe, in place.
func (s *RowSet) Complement() *RowSet {
	if s.enc == encDense {
		for i := range s.words {
			s.words[i] = ^s.words[i]
		}
		s.trim()
		return s
	}
	b := newSetBuilder(s.n)
	prev := 0
	it := s.iter()
	for {
		lo, hi, ok := it.next()
		if !ok {
			break
		}
		b.add(prev, lo)
		prev = hi
	}
	b.add(prev, s.n)
	b.store(s)
	return s
}

// Intersect returns a new set with the rows common to s and o.
func (s *RowSet) Intersect(o *RowSet) *RowSet { return s.Clone().And(o) }

// Union returns a new set with the rows in either s or o.
func (s *RowSet) Union(o *RowSet) *RowSet { return s.Clone().Or(o) }

// Difference returns a new set with s's rows not in o.
func (s *RowSet) Difference(o *RowSet) *RowSet { return s.Clone().AndNot(o) }

// Equal reports whether s and o contain the same rows of the same universe,
// regardless of encoding.
func (s *RowSet) Equal(o *RowSet) bool {
	if s.n != o.n {
		return false
	}
	if s.enc == o.enc {
		switch s.enc {
		case encDense:
			for i := range s.words {
				if s.words[i] != o.words[i] {
					return false
				}
			}
			return true
		case encSparse:
			if len(s.elems) != len(o.elems) {
				return false
			}
			for i := range s.elems {
				if s.elems[i] != o.elems[i] {
					return false
				}
			}
			return true
		default:
			if len(s.runs) != len(o.runs) {
				return false
			}
			for i := range s.runs {
				if s.runs[i] != o.runs[i] {
					return false
				}
			}
			return true
		}
	}
	// Mixed encodings: every encoding yields the same canonical sequence of
	// maximal runs.
	ia, ib := s.iter(), o.iter()
	for {
		alo, ahi, aok := ia.next()
		blo, bhi, bok := ib.next()
		if aok != bok {
			return false
		}
		if !aok {
			return true
		}
		if alo != blo || ahi != bhi {
			return false
		}
	}
}

// SubsetOf reports whether every row of s is in o.
func (s *RowSet) SubsetOf(o *RowSet) bool {
	if s.n != o.n {
		return false
	}
	if s.enc == encDense && o.enc == encDense {
		for i := range s.words {
			if s.words[i]&^o.words[i] != 0 {
				return false
			}
		}
		return true
	}
	// Each maximal run of s must lie inside one maximal run of o (maximal
	// runs of o are separated by gaps, so a covered contiguous run cannot
	// straddle two of them).
	ia, ib := s.iter(), o.iter()
	blo, bhi, bok := ib.next()
	for {
		alo, ahi, aok := ia.next()
		if !aok {
			return true
		}
		for bok && bhi <= alo {
			blo, bhi, bok = ib.next()
		}
		if !bok || blo > alo || bhi < ahi {
			return false
		}
	}
}

// Slice projects the members in [lo, hi) into a new set over the universe
// [0, hi-lo), shifting each row by -lo — the window-local translation a
// View needs. O(#runs) offset arithmetic for the compact encodings. It
// panics unless 0 <= lo <= hi <= Universe().
func (s *RowSet) Slice(lo, hi int) *RowSet {
	if lo < 0 || hi < lo || hi > s.n {
		panic(fmt.Sprintf("relation: slice [%d,%d) outside universe [0,%d)", lo, hi, s.n))
	}
	out := &RowSet{n: hi - lo}
	switch s.enc {
	case encDense:
		out.enc = encDense
		out.words = make([]uint64, (out.n+63)/64)
		shift := uint(lo & 63)
		w0 := lo >> 6
		for i := range out.words {
			w := s.words[w0+i] >> shift
			if shift != 0 && w0+i+1 < len(s.words) {
				w |= s.words[w0+i+1] << (64 - shift)
			}
			out.words[i] = w
		}
		out.trim()
	case encRuns:
		b := newSetBuilder(hi - lo)
		i := sort.Search(len(s.runs), func(k int) bool { return int(s.runs[k].hi) > lo })
		for ; i < len(s.runs) && int(s.runs[i].lo) < hi; i++ {
			l, h := int(s.runs[i].lo), int(s.runs[i].hi)
			if l < lo {
				l = lo
			}
			if h > hi {
				h = hi
			}
			b.add(l-lo, h-lo)
		}
		b.store(out)
	default: // sparse
		i := sort.Search(len(s.elems), func(k int) bool { return int(s.elems[k]) >= lo })
		j := sort.Search(len(s.elems), func(k int) bool { return int(s.elems[k]) >= hi })
		elems := make([]int32, j-i)
		for k := i; k < j; k++ {
			elems[k-i] = s.elems[k] - int32(lo)
		}
		out.enc, out.elems = encSparse, elems
	}
	return out
}

// Embed shifts every member by +off into a new set over the universe
// [0, universe) — the inverse of Slice, mapping window-local rows back to
// global ids. O(#runs) offset arithmetic for the compact encodings. It
// panics unless off >= 0 and off+Universe() <= universe.
func (s *RowSet) Embed(off, universe int) *RowSet {
	if off < 0 || off+s.n > universe {
		panic(fmt.Sprintf("relation: embed at %d of universe %d into %d", off, s.n, universe))
	}
	out := &RowSet{n: universe}
	if !compressible(universe) && s.enc != encDense {
		// A compact set cannot address a beyond-int32 universe; fall back
		// to dense.
		out.enc = encDense
		out.words = make([]uint64, (universe+63)/64)
		it := s.iter()
		for {
			lo, hi, ok := it.next()
			if !ok {
				break
			}
			setWordRange(out.words, lo+off, hi+off)
		}
		return out
	}
	switch s.enc {
	case encDense:
		out.enc = encDense
		out.words = make([]uint64, (universe+63)/64)
		shift := uint(off & 63)
		w0 := off >> 6
		for i, w := range s.words {
			if w == 0 {
				continue
			}
			out.words[w0+i] |= w << shift
			if shift != 0 {
				// High bits spilling into the next word are real members
				// (off+row < universe), so the index is always in range.
				if hi := w >> (64 - shift); hi != 0 {
					out.words[w0+i+1] |= hi
				}
			}
		}
	case encRuns:
		runs := make([]span, len(s.runs))
		for i, r := range s.runs {
			runs[i] = span{r.lo + int32(off), r.hi + int32(off)}
		}
		out.enc, out.runs = encRuns, runs
	default: // sparse
		elems := make([]int32, len(s.elems))
		for i, e := range s.elems {
			elems[i] = e + int32(off)
		}
		out.enc, out.elems = encSparse, elems
	}
	return out
}

// CountRange returns the number of members in [lo, hi) without building a
// new set. Bounds are clamped to the universe. O(log #runs) for the compact
// encodings.
func (s *RowSet) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if hi <= lo {
		return 0
	}
	switch s.enc {
	case encDense:
		c := 0
		wLo, wHi := lo>>6, (hi-1)>>6
		for wi := wLo; wi <= wHi; wi++ {
			w := s.words[wi]
			if wi == wLo {
				w &= ^uint64(0) << uint(lo&63)
			}
			if wi == wHi && hi&63 != 0 {
				w &= (uint64(1) << uint(hi&63)) - 1
			}
			c += bits.OnesCount64(w)
		}
		return c
	case encSparse:
		i := sort.Search(len(s.elems), func(k int) bool { return int(s.elems[k]) >= lo })
		j := sort.Search(len(s.elems), func(k int) bool { return int(s.elems[k]) >= hi })
		return j - i
	default:
		c := 0
		i := sort.Search(len(s.runs), func(k int) bool { return int(s.runs[k].hi) > lo })
		for ; i < len(s.runs) && int(s.runs[i].lo) < hi; i++ {
			l, h := int(s.runs[i].lo), int(s.runs[i].hi)
			if l < lo {
				l = lo
			}
			if h > hi {
				h = hi
			}
			c += h - l
		}
		return c
	}
}

// ForEach calls fn for every row in ascending order.
func (s *RowSet) ForEach(fn func(row int)) {
	switch s.enc {
	case encDense:
		for wi, w := range s.words {
			base := wi << 6
			for w != 0 {
				tz := bits.TrailingZeros64(w)
				fn(base + tz)
				w &= w - 1
			}
		}
	case encSparse:
		for _, e := range s.elems {
			fn(int(e))
		}
	default:
		for _, r := range s.runs {
			for i := int(r.lo); i < int(r.hi); i++ {
				fn(i)
			}
		}
	}
}

// Rows returns the member rows in ascending order.
func (s *RowSet) Rows() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(r int) { out = append(out, r) })
	return out
}

// String renders a small summary, e.g. "RowSet(5/100,runs)".
func (s *RowSet) String() string {
	return fmt.Sprintf("RowSet(%d/%d,%s)", s.Count(), s.n, s.Encoding())
}

// check validates the encoding's structural invariants; tests and the fuzz
// harness call it after every operation. Heuristic size thresholds are NOT
// invariants (forced conversions may exceed them).
func (s *RowSet) check() error {
	if s.n < 0 {
		return fmt.Errorf("negative universe %d", s.n)
	}
	switch s.enc {
	case encDense:
		if len(s.words) != (s.n+63)/64 {
			return fmt.Errorf("dense: %d words for universe %d", len(s.words), s.n)
		}
		if s.runs != nil || s.elems != nil {
			return fmt.Errorf("dense: stale compact storage")
		}
		if s.n%64 != 0 && len(s.words) > 0 {
			if s.words[len(s.words)-1]&^((uint64(1)<<uint(s.n%64))-1) != 0 {
				return fmt.Errorf("dense: bits set beyond universe %d", s.n)
			}
		}
	case encRuns:
		if s.words != nil || s.elems != nil {
			return fmt.Errorf("runs: stale storage")
		}
		prev := int32(-1)
		for i, r := range s.runs {
			if r.lo >= r.hi {
				return fmt.Errorf("runs[%d]: empty span [%d,%d)", i, r.lo, r.hi)
			}
			if int(r.hi) > s.n {
				return fmt.Errorf("runs[%d]: span [%d,%d) beyond universe %d", i, r.lo, r.hi, s.n)
			}
			if r.lo < 0 {
				return fmt.Errorf("runs[%d]: negative lo %d", i, r.lo)
			}
			if prev >= 0 && r.lo <= prev {
				return fmt.Errorf("runs[%d]: span [%d,%d) not past previous hi %d (unsorted or adjacent)", i, r.lo, r.hi, prev)
			}
			prev = r.hi
		}
	case encSparse:
		if s.words != nil || s.runs != nil {
			return fmt.Errorf("sparse: stale storage")
		}
		for i, e := range s.elems {
			if e < 0 || int(e) >= s.n {
				return fmt.Errorf("elems[%d]: %d outside universe [0,%d)", i, e, s.n)
			}
			if i > 0 && e <= s.elems[i-1] {
				return fmt.Errorf("elems[%d]: %d not strictly increasing", i, e)
			}
		}
	default:
		return fmt.Errorf("unknown encoding %d", s.enc)
	}
	return nil
}
