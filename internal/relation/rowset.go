package relation

import (
	"fmt"
	"math/bits"
)

// RowSet is a fixed-universe bitmap over row indices [0, N). It is the unit
// of provenance: input groups, predicate matches, and samples are all
// RowSets over the same base table.
type RowSet struct {
	n     int
	words []uint64
}

// NewRowSet returns an empty set over the universe [0, n).
func NewRowSet(n int) *RowSet {
	if n < 0 {
		panic("relation: negative RowSet universe")
	}
	return &RowSet{n: n, words: make([]uint64, (n+63)/64)}
}

// FullRowSet returns the set containing every row in [0, n).
func FullRowSet(n int) *RowSet {
	s := NewRowSet(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// RowSetOf returns a set over [0, n) containing exactly the given rows.
func RowSetOf(n int, rows ...int) *RowSet {
	s := NewRowSet(n)
	for _, r := range rows {
		s.Add(r)
	}
	return s
}

// trim clears bits beyond the universe in the last word.
func (s *RowSet) trim() {
	if s.n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(s.n%64)) - 1
	}
}

// Universe reports the size of the universe (not the cardinality).
func (s *RowSet) Universe() int { return s.n }

// Add inserts row i. It panics if i is outside the universe.
func (s *RowSet) Add(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("relation: row %d outside universe [0,%d)", i, s.n))
	}
	s.words[i>>6] |= 1 << uint(i&63)
}

// Remove deletes row i if present.
func (s *RowSet) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Contains reports whether row i is in the set.
func (s *RowSet) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the cardinality of the set.
func (s *RowSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no rows.
func (s *RowSet) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *RowSet) Clone() *RowSet {
	c := &RowSet{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

func (s *RowSet) checkUniverse(o *RowSet) {
	if s.n != o.n {
		panic(fmt.Sprintf("relation: RowSet universe mismatch %d != %d", s.n, o.n))
	}
}

// And intersects s with o in place and returns s.
func (s *RowSet) And(o *RowSet) *RowSet {
	s.checkUniverse(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Or unions o into s in place and returns s.
func (s *RowSet) Or(o *RowSet) *RowSet {
	s.checkUniverse(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// AndNot removes o's rows from s in place and returns s.
func (s *RowSet) AndNot(o *RowSet) *RowSet {
	s.checkUniverse(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// Complement flips membership of every row in the universe, in place.
func (s *RowSet) Complement() *RowSet {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
	return s
}

// Intersect returns a new set with the rows common to s and o.
func (s *RowSet) Intersect(o *RowSet) *RowSet { return s.Clone().And(o) }

// Union returns a new set with the rows in either s or o.
func (s *RowSet) Union(o *RowSet) *RowSet { return s.Clone().Or(o) }

// Difference returns a new set with s's rows not in o.
func (s *RowSet) Difference(o *RowSet) *RowSet { return s.Clone().AndNot(o) }

// Equal reports whether s and o contain the same rows of the same universe.
func (s *RowSet) Equal(o *RowSet) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every row of s is in o.
func (s *RowSet) SubsetOf(o *RowSet) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Slice projects the members in [lo, hi) into a new set over the universe
// [0, hi-lo), shifting each row by -lo — the window-local translation a
// View needs. It panics unless 0 <= lo <= hi <= Universe().
func (s *RowSet) Slice(lo, hi int) *RowSet {
	if lo < 0 || hi < lo || hi > s.n {
		panic(fmt.Sprintf("relation: slice [%d,%d) outside universe [0,%d)", lo, hi, s.n))
	}
	out := NewRowSet(hi - lo)
	shift := uint(lo & 63)
	w0 := lo >> 6
	for i := range out.words {
		w := s.words[w0+i] >> shift
		if shift != 0 && w0+i+1 < len(s.words) {
			w |= s.words[w0+i+1] << (64 - shift)
		}
		out.words[i] = w
	}
	out.trim()
	return out
}

// Embed shifts every member by +off into a new set over the universe
// [0, universe) — the inverse of Slice, mapping window-local rows back to
// global ids. It panics unless off >= 0 and off+Universe() <= universe.
func (s *RowSet) Embed(off, universe int) *RowSet {
	if off < 0 || off+s.n > universe {
		panic(fmt.Sprintf("relation: embed at %d of universe %d into %d", off, s.n, universe))
	}
	out := NewRowSet(universe)
	shift := uint(off & 63)
	w0 := off >> 6
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		out.words[w0+i] |= w << shift
		if shift != 0 {
			// High bits spilling into the next word are real members
			// (off+row < universe), so the index is always in range.
			if hi := w >> (64 - shift); hi != 0 {
				out.words[w0+i+1] |= hi
			}
		}
	}
	return out
}

// CountRange returns the number of members in [lo, hi) without building a
// new set. Bounds are clamped to the universe.
func (s *RowSet) CountRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if hi <= lo {
		return 0
	}
	c := 0
	wLo, wHi := lo>>6, (hi-1)>>6
	for wi := wLo; wi <= wHi; wi++ {
		w := s.words[wi]
		if wi == wLo {
			w &= ^uint64(0) << uint(lo&63)
		}
		if wi == wHi && hi&63 != 0 {
			w &= (uint64(1) << uint(hi&63)) - 1
		}
		c += bits.OnesCount64(w)
	}
	return c
}

// ForEach calls fn for every row in ascending order.
func (s *RowSet) ForEach(fn func(row int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Rows returns the member rows in ascending order.
func (s *RowSet) Rows() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(r int) { out = append(out, r) })
	return out
}

// String renders a small summary, e.g. "RowSet(5/100)".
func (s *RowSet) String() string {
	return fmt.Sprintf("RowSet(%d/%d)", s.Count(), s.n)
}
