package relation

import (
	"bytes"
	"testing"
)

// roundTrip encodes s, decodes the bytes, and asserts the decoded set is
// structurally identical: same universe, membership, AND encoding.
func roundTrip(t *testing.T, s *RowSet) []byte {
	t.Helper()
	buf := s.AppendBinary(nil)
	got, used, err := DecodeRowSet(buf)
	if err != nil {
		t.Fatalf("decode %s: %v", s, err)
	}
	if used != len(buf) {
		t.Fatalf("decode %s: consumed %d of %d bytes", s, used, len(buf))
	}
	if got.Universe() != s.Universe() {
		t.Fatalf("decode %s: universe %d", s, got.Universe())
	}
	if got.Encoding() != s.Encoding() {
		t.Fatalf("decode %s: encoding %s", s, got.Encoding())
	}
	if !got.Equal(s) {
		t.Fatalf("decode %s: membership differs: %s", s, got)
	}
	mustCheck(t, got)
	// The codec is canonical in the encode direction: re-encoding the
	// decoded set reproduces the input bytes exactly.
	again := got.AppendBinary(nil)
	if !bytes.Equal(again, buf) {
		t.Fatalf("re-encode of %s not byte-identical", s)
	}
	return buf
}

func TestRowSetCodecRoundTripAllEncodings(t *testing.T) {
	shapes := []*RowSet{
		NewRowSet(0),
		NewRowSet(1),
		RowSetOf(1, 0),
		RowSetOf(7, 1, 3, 6),
		FullRowSet(200),
		RowSetOf(1000, 0, 999),
		func() *RowSet { s := NewRowSet(500); s.AddRange(10, 90); s.AddRange(200, 450); return s }(),
		func() *RowSet { // alternating bits: worst case for runs/sparse
			s := NewRowSet(300)
			for i := 0; i < 300; i += 2 {
				s.Add(i)
			}
			return s
		}(),
		func() *RowSet { s := NewDenseRowSet(129); s.Add(0); s.Add(64); s.Add(128); return s }(),
	}
	for _, base := range shapes {
		for _, v := range encVariants(base) {
			roundTrip(t, v)
		}
		roundTrip(t, base)
	}
}

func TestRowSetCodecCompactBeatsDense(t *testing.T) {
	// A group-contiguous 1M-row provenance set: the run encoding must ship
	// in a tiny fraction of the bitmap bytes. This is the property the
	// remote shard wire depends on.
	const n = 1 << 20
	s := NewRowSet(n)
	s.AddRange(1000, 2000)
	s.AddRange(500000, 501000)
	runBytes := len(s.AppendBinary(nil))
	d := s.Clone()
	d.toDense()
	denseBytes := len(d.AppendBinary(nil))
	if denseBytes < n/8 {
		t.Fatalf("dense wire %d bytes, want >= %d (raw bitmap)", denseBytes, n/8)
	}
	if runBytes*10 > denseBytes {
		t.Fatalf("runs wire %d bytes vs dense %d: not <= 1/10", runBytes, denseBytes)
	}
}

func TestRowSetCodecStream(t *testing.T) {
	// Multiple sets back to back in one buffer, as the wire layer ships
	// group provenance: consumed-byte accounting must chain cleanly.
	sets := []*RowSet{RowSetOf(10, 1, 2, 3), FullRowSet(64), NewRowSet(5)}
	var buf []byte
	for _, s := range sets {
		buf = s.AppendBinary(buf)
	}
	pos := 0
	for i, want := range sets {
		got, used, err := DecodeRowSet(buf[pos:])
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("set %d: %s != %s", i, got, want)
		}
		pos += used
	}
	if pos != len(buf) {
		t.Fatalf("consumed %d of %d bytes", pos, len(buf))
	}
}

func TestRowSetCodecRejectsMalformed(t *testing.T) {
	valid := RowSetOf(100, 5, 6, 7).AppendBinary(nil)
	cases := map[string][]byte{
		"empty":            nil,
		"short header":     {rowSetCodecVersion},
		"bad version":      append([]byte{99}, valid[1:]...),
		"bad tag":          {rowSetCodecVersion, 7, 10},
		"truncated":        valid[:len(valid)-1],
		"member past univ": (&RowSet{n: 3, enc: encSparse, elems: []int32{0, 5}}).AppendBinary(nil),
		"adjacent runs":    (&RowSet{n: 10, enc: encRuns, runs: []span{{0, 2}, {2, 4}}}).AppendBinary(nil),
		"run past univ":    (&RowSet{n: 4, enc: encRuns, runs: []span{{0, 9}}}).AppendBinary(nil),
		"dense trailing": func() []byte {
			b := NewDenseRowSet(3).AppendBinary(nil)
			b[len(b)-8] = 0xF0 // bits 4..7 beyond universe 3
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := DecodeRowSet(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestRowSetCodecVersionConstant(t *testing.T) {
	buf := NewRowSet(1).AppendBinary(nil)
	if buf[0] != RowSetCodecVersion {
		t.Fatalf("emitted version %d, exported constant %d", buf[0], RowSetCodecVersion)
	}
}
