package relation

import (
	"errors"
	"strings"
	"testing"
)

func appendTestSchema() *Schema {
	return MustSchema(
		Column{Name: "g", Kind: Discrete},
		Column{Name: "x", Kind: Continuous},
	)
}

func TestBuilderAppendAfterBuildReturnsError(t *testing.T) {
	b := NewBuilder(appendTestSchema())
	b.MustAppend(Row{S("a"), F(1)})
	tbl := b.Build()
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	// Regression: this used to nil-panic (Build nils the backing slices).
	if err := b.Append(Row{S("b"), F(2)}); !errors.Is(err, ErrBuilt) {
		t.Fatalf("Append after Build: err = %v, want ErrBuilt", err)
	}
	if tbl.NumRows() != 1 || b.NumRows() != 1 {
		t.Fatalf("post-Build append mutated state: table %d builder %d rows",
			tbl.NumRows(), b.NumRows())
	}
	// A repeated Build returns the same frozen table, not a corrupt one
	// whose row count outruns its nilled column storage.
	if again := b.Build(); again != tbl {
		t.Fatalf("second Build returned a different table (%d rows)", again.NumRows())
	}
	// MustAppend surfaces the same error as a panic rather than a nil deref.
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend after Build did not panic")
		}
	}()
	b.MustAppend(Row{S("b"), F(2)})
}

func TestAppenderSnapshotsAreImmutable(t *testing.T) {
	b := NewBuilder(appendTestSchema())
	for i := 0; i < 4; i++ {
		b.MustAppend(Row{S([]string{"a", "b"}[i%2]), F(float64(i))})
	}
	base := b.Build()
	a := AppenderFor(base)

	snap1, err := a.Append([]Row{{S("c"), F(10)}, {S("a"), F(11)}})
	if err != nil {
		t.Fatal(err)
	}
	if base.NumRows() != 4 || snap1.NumRows() != 6 {
		t.Fatalf("rows: base %d snap1 %d", base.NumRows(), snap1.NumRows())
	}
	// The base table must be untouched: same rows, and its dictionary must
	// not have grown the new "c" value (copy-on-write).
	if _, ok := base.Dict(0).Lookup("c"); ok {
		t.Fatal("append mutated the base table's dictionary")
	}
	if _, ok := snap1.Dict(0).Lookup("c"); !ok {
		t.Fatal("snapshot missing appended dictionary value")
	}

	snap2, err := a.Append([]Row{{S("b"), F(12)}})
	if err != nil {
		t.Fatal(err)
	}
	// snap1 is immutable across later appends.
	if snap1.NumRows() != 6 || snap1.Float(1, 5) != 11 || snap1.Str(0, 4) != "c" {
		t.Fatalf("snap1 changed after later append")
	}
	if snap2.NumRows() != 7 || snap2.Float(1, 6) != 12 {
		t.Fatalf("snap2 wrong tail: %v", snap2.Row(6))
	}
	// The shared prefix is identical value-by-value.
	for r := 0; r < snap1.NumRows(); r++ {
		for c := 0; c < 2; c++ {
			if snap1.Value(c, r).String() != snap2.Value(c, r).String() {
				t.Fatalf("prefix diverged at (%d,%d)", c, r)
			}
		}
	}
}

func TestAppenderSnapshotsShareBackingArrays(t *testing.T) {
	a := NewAppender(appendTestSchema())
	rows := make([]Row, 64)
	for i := range rows {
		rows[i] = Row{S("a"), F(float64(i))}
	}
	snap1, err := a.Append(rows)
	if err != nil {
		t.Fatal(err)
	}
	// A one-row follow-up fits in the grown capacity, so the two snapshots
	// share one backing array (the whole point of the snapshot chain).
	snap2, err := a.Append([]Row{{S("a"), F(999)}})
	if err != nil {
		t.Fatal(err)
	}
	if &snap1.Floats(1)[0] != &snap2.Floats(1)[0] {
		t.Skip("appender reallocated on a small follow-up batch; sharing not observable here")
	}
	if snap1.Float(1, 63) != 63 || snap2.Float(1, 64) != 999 {
		t.Fatalf("shared-array snapshots read wrong values")
	}
}

func TestAppenderBatchIsAtomic(t *testing.T) {
	a := NewAppender(appendTestSchema())
	if _, err := a.Append([]Row{{S("a"), F(1)}}); err != nil {
		t.Fatal(err)
	}
	// Second row has a kind mismatch: nothing from the batch may land.
	_, err := a.Append([]Row{{S("b"), F(2)}, {S("c"), S("oops")}})
	if err == nil {
		t.Fatal("expected kind-mismatch error")
	}
	if got := a.NumRows(); got != 1 {
		t.Fatalf("failed batch partially applied: %d rows", got)
	}
	if _, ok := a.Snapshot().Dict(0).Lookup("b"); ok {
		t.Fatal("failed batch leaked a dictionary value")
	}
	// Arity mismatch is also rejected batch-atomically.
	if _, err := a.Append([]Row{{S("b")}}); err == nil {
		t.Fatal("expected arity error")
	}
	// An empty batch is a no-op returning the current snapshot.
	snap, err := a.Append(nil)
	if err != nil || snap.NumRows() != 1 {
		t.Fatalf("empty batch: snap %v err %v", snap.NumRows(), err)
	}
}

func TestAppenderTailWindow(t *testing.T) {
	a := NewAppender(appendTestSchema())
	if _, err := a.Append([]Row{{S("a"), F(1)}, {S("b"), F(2)}}); err != nil {
		t.Fatal(err)
	}
	before := a.NumRows()
	snap, err := a.Append([]Row{{S("c"), F(3)}, {S("a"), F(4)}, {S("b"), F(5)}})
	if err != nil {
		t.Fatal(err)
	}
	tail := snap.Tail(before)
	if tail.Len() != 3 || tail.Off() != 2 {
		t.Fatalf("tail = %s", tail)
	}
	if tail.Floats(1)[0] != 3 || tail.Floats(1)[2] != 5 {
		t.Fatalf("tail values wrong: %v", tail.Floats(1))
	}
}

func TestParseCSVRows(t *testing.T) {
	schema := appendTestSchema()
	// Header may reorder columns; values parse by schema kind.
	rows, err := ParseCSVRows(strings.NewReader("x,g\n1.5,a\nNaN,b\n"), schema, CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].Str() != "a" || rows[0][1].Float() != 1.5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][1].Float() == rows[1][1].Float() { // NaN != NaN
		t.Fatalf("expected NaN, got %v", rows[1][1])
	}

	for name, body := range map[string]string{
		"unknown column":        "g,y\na,1\n",
		"missing column":        "g\na\n",
		"duplicate column":      "g,g\na,b\n",
		"non-numeric continous": "g,x\na,notanumber\n",
		"ragged row":            "g,x\na\n",
		"empty body":            "",
	} {
		if _, err := ParseCSVRows(strings.NewReader(body), schema, CSVOptions{}); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Header-only body: zero rows, no error.
	rows, err = ParseCSVRows(strings.NewReader("g,x\n"), schema, CSVOptions{})
	if err != nil || len(rows) != 0 {
		t.Fatalf("header-only: rows %v err %v", rows, err)
	}
}

func TestAppenderEquivalentToOneShotBuild(t *testing.T) {
	// Building via K batches must yield exactly the table a one-shot build
	// yields: same values, same dictionary codes (order of first appearance
	// is preserved by construction).
	var all []Row
	for i := 0; i < 23; i++ {
		all = append(all, Row{S([]string{"a", "b", "c"}[i%3]), F(float64(i) / 3)})
	}
	b := NewBuilder(appendTestSchema())
	for _, r := range all {
		b.MustAppend(r)
	}
	oneShot := b.Build()

	a := NewAppender(appendTestSchema())
	for lo := 0; lo < len(all); lo += 5 {
		hi := lo + 5
		if hi > len(all) {
			hi = len(all)
		}
		if _, err := a.Append(all[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Snapshot()
	if got.NumRows() != oneShot.NumRows() {
		t.Fatalf("rows %d != %d", got.NumRows(), oneShot.NumRows())
	}
	for r := 0; r < got.NumRows(); r++ {
		if got.Code(0, r) != oneShot.Code(0, r) || got.Float(1, r) != oneShot.Float(1, r) {
			t.Fatalf("row %d diverged: %v vs %v", r, got.Row(r), oneShot.Row(r))
		}
	}
}
