package relation

import "fmt"

// Relation is the read-only face shared by a whole *Table and a *View of
// one. Search components (query grouping, predicate spaces, influence
// scorers) accept a Relation, so a shard-local search sees only its own
// row window while using the exact same code paths as a full-table search.
//
// Row ids are LOCAL to the relation: [0, NumRows()). Data returns the
// concrete columnar window those ids index — hot loops grab it once and
// work against *Table directly, so the interface costs nothing per row.
// Base and Off anchor local rows in the root table's global id space:
// global = Off() + local.
type Relation interface {
	// Schema returns the relation's column layout (shared with the base).
	Schema() *Schema
	// NumRows reports the number of rows in this relation's window.
	NumRows() int
	// Floats returns the backing slice of a continuous column (read-only),
	// indexed by local row id.
	Floats(col int) []float64
	// Codes returns the backing code slice of a discrete column
	// (read-only), indexed by local row id.
	Codes(col int) []int32
	// Dict returns the dictionary of a discrete column. Views share their
	// base table's dictionaries, so codes — and therefore discrete
	// predicate clauses — mean the same thing on every shard.
	Dict(col int) *Dict
	// FloatStats computes min/max/count of a continuous column over the
	// rows in set (local ids; nil = the whole window).
	FloatStats(col int, set *RowSet) ColumnStats
	// DistinctCodes returns the distinct codes of a discrete column in set
	// (local ids; nil = the whole window), ascending.
	DistinctCodes(col int, set *RowSet) []int32
	// Data returns the concrete columnar store behind this relation: the
	// table itself, or a view's zero-copy window table.
	Data() *Table
	// Base returns the root table the relation's rows come from.
	Base() *Table
	// Off returns the global row id of local row 0.
	Off() int
}

// Table implements Relation over its own full extent.
var _ Relation = (*Table)(nil)

// Data returns the table itself: a Table is its own columnar store.
func (t *Table) Data() *Table { return t }

// Base returns the table itself: a Table is its own root.
func (t *Table) Base() *Table { return t }

// Off returns 0: a table's local and global row ids coincide.
func (t *Table) Off() int { return 0 }

// View is a zero-copy horizontal slice of a Table: a contiguous row window
// [off, off+len) sharing the base table's column arrays (via subslices)
// and its dictionaries. Building a view allocates only headers — no row
// data is copied — so slicing a huge table into shards is O(columns), not
// O(rows).
//
// A View is itself a Relation with local row ids [0, Len()); ToGlobal,
// ToLocal, LocalRows and GlobalRows translate between the window and the
// base table's id space.
type View struct {
	win  *Table // the windowed sub-table: subslices of base, shared dicts
	base *Table
	off  int
}

var _ Relation = (*View)(nil)

// Window returns the zero-copy view of rows [lo, hi) of the table. It
// panics when the bounds are not 0 <= lo <= hi <= NumRows().
func (t *Table) Window(lo, hi int) *View {
	if lo < 0 || hi < lo || hi > t.n {
		panic(fmt.Sprintf("relation: window [%d,%d) outside table of %d rows", lo, hi, t.n))
	}
	floats := make([][]float64, len(t.floats))
	for i, f := range t.floats {
		if f != nil {
			floats[i] = f[lo:hi:hi]
		}
	}
	codes := make([][]int32, len(t.codes))
	for i, c := range t.codes {
		if c != nil {
			codes[i] = c[lo:hi:hi]
		}
	}
	win := &Table{
		schema: t.schema,
		n:      hi - lo,
		floats: floats,
		codes:  codes,
		dicts:  t.dicts,
	}
	return &View{win: win, base: t, off: lo}
}

// Shards splits the table into k contiguous views of near-equal size
// (sizes differ by at most one row): disjoint, covering, in row order.
// k is clamped to [1, NumRows()] (a non-empty table never yields empty
// shards); an empty table yields one empty shard.
func (t *Table) Shards(k int) []*View {
	if k < 1 {
		k = 1
	}
	if k > t.n && t.n > 0 {
		k = t.n
	}
	out := make([]*View, 0, k)
	for i := 0; i < k; i++ {
		lo := i * t.n / k
		hi := (i + 1) * t.n / k
		out = append(out, t.Window(lo, hi))
	}
	return out
}

// ShardsAt splits the table at the given cut points: bounds must be
// strictly increasing and lie in (0, NumRows()); the result has
// len(bounds)+1 contiguous views covering every row. It panics on
// out-of-order or out-of-range bounds — callers (the shard planner)
// produce them by construction.
func (t *Table) ShardsAt(bounds []int) []*View {
	out := make([]*View, 0, len(bounds)+1)
	lo := 0
	for _, b := range bounds {
		if b <= lo || b >= t.n {
			panic(fmt.Sprintf("relation: shard bound %d outside (%d,%d)", b, lo, t.n))
		}
		out = append(out, t.Window(lo, b))
		lo = b
	}
	return append(out, t.Window(lo, t.n))
}

// Schema returns the base table's schema (views never reshape columns).
func (v *View) Schema() *Schema { return v.win.schema }

// NumRows reports the window length.
func (v *View) NumRows() int { return v.win.n }

// Len is NumRows under its geometric name.
func (v *View) Len() int { return v.win.n }

// Floats returns the windowed slice of a continuous column.
func (v *View) Floats(col int) []float64 { return v.win.Floats(col) }

// Codes returns the windowed code slice of a discrete column.
func (v *View) Codes(col int) []int32 { return v.win.Codes(col) }

// Dict returns the base table's dictionary for a discrete column.
func (v *View) Dict(col int) *Dict { return v.win.Dict(col) }

// FloatStats computes min/max/count over the window (local ids).
func (v *View) FloatStats(col int, set *RowSet) ColumnStats { return v.win.FloatStats(col, set) }

// DistinctCodes returns the distinct codes within the window (local ids).
func (v *View) DistinctCodes(col int, set *RowSet) []int32 { return v.win.DistinctCodes(col, set) }

// Data returns the zero-copy window table; its row ids are the view's
// local ids.
func (v *View) Data() *Table { return v.win }

// Base returns the root table the view slices.
func (v *View) Base() *Table { return v.base }

// Off returns the global row id of the window's first row.
func (v *View) Off() int { return v.off }

// ToGlobal maps a local row id to the base table's id space.
func (v *View) ToGlobal(local int) int { return v.off + local }

// ToLocal maps a global row id into the window, reporting whether it is
// inside.
func (v *View) ToLocal(global int) (int, bool) {
	l := global - v.off
	if l < 0 || l >= v.win.n {
		return 0, false
	}
	return l, true
}

// LocalRows projects a base-table RowSet onto the window: the returned set
// has universe Len() and contains, shifted by -Off, exactly the members
// that fall inside the window.
func (v *View) LocalRows(global *RowSet) *RowSet {
	if global.Universe() != v.base.n {
		panic(fmt.Sprintf("relation: LocalRows universe %d != base %d", global.Universe(), v.base.n))
	}
	return global.Slice(v.off, v.off+v.win.n)
}

// GlobalRows embeds a window-local RowSet back into the base table's id
// space: the inverse of LocalRows, so v.GlobalRows(v.LocalRows(s)) equals
// s restricted to the window.
func (v *View) GlobalRows(local *RowSet) *RowSet {
	if local.Universe() != v.win.n {
		panic(fmt.Sprintf("relation: GlobalRows universe %d != window %d", local.Universe(), v.win.n))
	}
	return local.Embed(v.off, v.base.n)
}

// String renders a small summary, e.g. "View([100,200) of 1000)".
func (v *View) String() string {
	return fmt.Sprintf("View([%d,%d) of %d)", v.off, v.off+v.win.n, v.base.n)
}
