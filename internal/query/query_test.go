package query

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// sensorsTable builds the paper's Table 1.
func sensorsTable(t testing.TB) *relation.Table {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "time", Kind: relation.Discrete},
		relation.Column{Name: "sensorid", Kind: relation.Discrete},
		relation.Column{Name: "voltage", Kind: relation.Continuous},
		relation.Column{Name: "humidity", Kind: relation.Continuous},
		relation.Column{Name: "temp", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	rows := []relation.Row{
		{relation.S("11AM"), relation.S("1"), relation.F(2.64), relation.F(0.4), relation.F(34)},
		{relation.S("11AM"), relation.S("2"), relation.F(2.65), relation.F(0.5), relation.F(35)},
		{relation.S("11AM"), relation.S("3"), relation.F(2.63), relation.F(0.4), relation.F(35)},
		{relation.S("12PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("12PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("12PM"), relation.S("3"), relation.F(2.3), relation.F(0.4), relation.F(100)},
		{relation.S("1PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("1PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("1PM"), relation.S("3"), relation.F(2.3), relation.F(0.5), relation.F(80)},
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}

func TestRunQ1MatchesTable2(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatalf("FromSQL: %v", err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	// Table 2 of the paper: α1=34.6̄ (11AM), α2=56.6̄ (12PM), α3=50 (1PM).
	want := map[string]float64{
		"11AM": 104.0 / 3,
		"12PM": 170.0 / 3,
		"1PM":  50,
	}
	for key, w := range want {
		row, ok := res.Lookup(key)
		if !ok {
			t.Fatalf("missing group %q", key)
		}
		if math.Abs(row.Value-w) > 1e-9 {
			t.Errorf("avg(%s) = %v, want %v", key, row.Value, w)
		}
		if row.Group.Count() != 3 {
			t.Errorf("group %q has %d input tuples, want 3", key, row.Group.Count())
		}
	}
	// Provenance: the 12PM group must be exactly rows 3,4,5.
	row, _ := res.Lookup("12PM")
	if got := row.Group.Rows(); len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("12PM provenance = %v, want [3 4 5]", got)
	}
}

func TestRestAttributes(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	rest := q.RestAttributes()
	want := []string{"sensorid", "voltage", "humidity"}
	if len(rest) != len(want) {
		t.Fatalf("RestAttributes = %v, want %v", rest, want)
	}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("RestAttributes = %v, want %v", rest, want)
		}
	}
}

func TestWhereFilter(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time FROM sensors WHERE sensorid != '3' GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	row, ok := res.Lookup("12PM")
	if !ok {
		t.Fatal("missing 12PM")
	}
	if row.Value != 35 {
		t.Errorf("avg without sensor 3 = %v, want 35", row.Value)
	}
	if row.Group.Count() != 2 {
		t.Errorf("group size = %d, want 2", row.Group.Count())
	}
}

func TestWhereRangeOnContinuous(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT count(*), time FROM sensors WHERE voltage < 2.5 GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Only T6 (12PM) and T9 (1PM) have voltage < 2.5; 11AM group is absent.
	if _, ok := res.Lookup("11AM"); ok {
		t.Error("11AM group should be filtered out entirely")
	}
	for _, key := range []string{"12PM", "1PM"} {
		row, ok := res.Lookup(key)
		if !ok || row.Value != 1 {
			t.Errorf("count(%s) = %v, want 1", key, row.Value)
		}
	}
}

func TestWhereInAndOrNot(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl,
		"SELECT count(*), time FROM sensors WHERE sensorid IN ('1','2') AND NOT (voltage > 2.69) GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Sensors 1,2 with voltage <= 2.69: rows T1 (2.64), T2 (2.65) at 11AM.
	row, ok := res.Lookup("11AM")
	if !ok || row.Value != 2 {
		t.Fatalf("count(11AM) = %+v, want 2", row)
	}
	if len(res.Rows) != 1 {
		t.Errorf("groups = %d, want 1", len(res.Rows))
	}
}

func TestCountStar(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT count(*), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Value != 3 {
			t.Errorf("count(%s) = %v, want 3", row.Key, row.Value)
		}
	}
}

func TestMultiColumnGroupBy(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time, sensorid FROM sensors GROUP BY time, sensorid")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("groups = %d, want 9", len(res.Rows))
	}
	key := GroupKey([]relation.Value{relation.S("12PM"), relation.S("3")})
	row, ok := res.Lookup(key)
	if !ok || row.Value != 100 {
		t.Errorf("avg(12PM,3) = %+v", row)
	}
}

func TestBindErrors(t *testing.T) {
	tbl := sensorsTable(t)
	cases := []string{
		"SELECT avg(nope), time FROM s GROUP BY time",         // unknown agg col
		"SELECT avg(time), sensorid FROM s GROUP BY sensorid", // discrete agg col
		"SELECT avg(temp), nope FROM s GROUP BY nope",         // unknown group col
		"SELECT avg(temp) FROM s GROUP BY time, time",         // duplicate group col
		"SELECT avg(temp) FROM s GROUP BY temp",               // agg col grouped
		"SELECT median(*) FROM s GROUP BY time",               // star on non-count
		"SELECT bogus(temp) FROM s GROUP BY time",             // unknown aggregate
	}
	for _, sql := range cases {
		if _, err := FromSQL(tbl, sql); err == nil {
			t.Errorf("FromSQL(%q): expected error", sql)
		}
	}
}

func TestWhereCompileErrors(t *testing.T) {
	tbl := sensorsTable(t)
	cases := []string{
		"SELECT avg(temp), time FROM s WHERE nope = 1 GROUP BY time",       // unknown col
		"SELECT avg(temp), time FROM s WHERE voltage = 'x' GROUP BY time",  // non-numeric on continuous
		"SELECT avg(temp), time FROM s WHERE sensorid < '3' GROUP BY time", // range on discrete
		"SELECT avg(temp), time FROM s WHERE voltage IN ('a') GROUP BY time",
	}
	for _, sql := range cases {
		if _, err := FromSQL(tbl, sql); err == nil {
			t.Errorf("FromSQL(%q): expected error", sql)
		}
	}
}

func TestWhereEqualityUnknownDiscreteValue(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT count(*), time FROM s WHERE sensorid = '99' GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("groups = %d, want 0 for value absent from dictionary", len(res.Rows))
	}
	// != of an absent value matches everything.
	q, err = FromSQL(tbl, "SELECT count(*), time FROM s WHERE sensorid != '99' GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	res, err = q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("groups = %d, want 3", len(res.Rows))
	}
}

func TestResultOrderingNumericAware(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	for _, g := range []string{"10", "2", "1", "30", "3"} {
		b.MustAppend(relation.Row{relation.S(g), relation.F(1)})
	}
	tbl := b.Build()
	q, err := FromSQL(tbl, "SELECT sum(v), g FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Keys()
	want := []string{"1", "2", "3", "10", "30"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestAggValues(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time FROM s GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	vals := q.AggValues(relation.RowSetOf(tbl.NumRows(), 3, 4, 5))
	if len(vals) != 3 || vals[0] != 35 || vals[1] != 35 || vals[2] != 100 {
		t.Errorf("AggValues = %v", vals)
	}
	// count(*) path returns zeros of the right length.
	q2, err := FromSQL(tbl, "SELECT count(*), time FROM s GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	vals = q2.AggValues(relation.RowSetOf(tbl.NumRows(), 0, 1))
	if len(vals) != 2 || vals[0] != 0 || vals[1] != 0 {
		t.Errorf("count(*) AggValues = %v", vals)
	}
}

func TestSQLRendering(t *testing.T) {
	tbl := sensorsTable(t)
	q, err := FromSQL(tbl, "SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		t.Fatal(err)
	}
	if q.SQL() == "" {
		t.Error("SQL() empty for parsed query")
	}
	q2, err := Bind(tbl, "avg", "temp", []string{"time"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if q2.SQL() == "" {
		t.Error("SQL() empty for bound query")
	}
}
