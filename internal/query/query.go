// Package query executes Scorpion's class of aggregate queries — single
// table, GROUP BY, one aggregate, optional WHERE — and records backward
// provenance: every output row keeps the RowSet of input tuples that
// produced it (the paper's "input group" g_αi, §3.1 and the Provenance
// component of §4.1).
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/sqlparse"
)

// AggregateQuery is a bound, executable query against a specific relation
// — a whole table, or a relation.View whose grouping (and provenance)
// covers only that window's rows.
type AggregateQuery struct {
	Table relation.Relation
	// GroupBy holds group-by column indexes.
	GroupBy []int
	// Agg is the aggregate function.
	Agg aggregate.Func
	// AggCol is the aggregate attribute's column index, or -1 for count(*).
	AggCol int
	// Where is an optional row filter (nil = all rows).
	Where func(row int) bool
	// stmt retains the SQL text for display when built from SQL.
	stmt *sqlparse.SelectStmt
}

// ResultRow is one output tuple α_i with its provenance.
type ResultRow struct {
	// Key is the canonical group key (join of the rendered key values).
	Key string
	// KeyValues are the group-by column values for this group.
	KeyValues []relation.Value
	// Value is the aggregate result α_i.res.
	Value float64
	// Group is the input group g_αi: the rows that produced this output.
	Group *relation.RowSet
}

// Result is the ordered output of an AggregateQuery.
type Result struct {
	Query *AggregateQuery
	Rows  []ResultRow
	byKey map[string]int
}

// keySep separates rendered key components; it cannot appear in data because
// it is a control byte.
const keySep = "\x1f"

// GroupKey renders group-by values into the canonical key string.
func GroupKey(vals []relation.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, keySep)
}

// Bind resolves column names and the aggregate, returning an executable
// query. aggArg may be "*" only for count.
func Bind(t relation.Relation, aggName, aggArg string, groupBy []string, where func(row int) bool) (*AggregateQuery, error) {
	agg, err := aggregate.ByName(aggName)
	if err != nil {
		return nil, err
	}
	q := &AggregateQuery{Table: t, Agg: agg, AggCol: -1, Where: where}
	if aggArg == "*" {
		if agg.Name() != "count" {
			return nil, fmt.Errorf("query: %s(*) is not supported; only count(*)", aggName)
		}
	} else {
		col, ok := t.Schema().Index(aggArg)
		if !ok {
			return nil, fmt.Errorf("query: no aggregate column %q", aggArg)
		}
		if t.Schema().Column(col).Kind != relation.Continuous {
			return nil, fmt.Errorf("query: aggregate column %q must be continuous", aggArg)
		}
		q.AggCol = col
	}
	if len(groupBy) == 0 {
		return nil, fmt.Errorf("query: at least one GROUP BY column is required")
	}
	seen := map[int]bool{}
	for _, name := range groupBy {
		col, ok := t.Schema().Index(name)
		if !ok {
			return nil, fmt.Errorf("query: no group-by column %q", name)
		}
		if seen[col] {
			return nil, fmt.Errorf("query: duplicate group-by column %q", name)
		}
		if col == q.AggCol {
			return nil, fmt.Errorf("query: column %q cannot be both grouped and aggregated", name)
		}
		seen[col] = true
		q.GroupBy = append(q.GroupBy, col)
	}
	return q, nil
}

// FromSQL parses and binds a SQL statement against the relation. The
// statement's FROM table name is accepted as-is (the caller supplies the
// relation).
func FromSQL(t relation.Relation, sql string) (*AggregateQuery, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	where, err := CompileWhere(t, stmt.Where)
	if err != nil {
		return nil, err
	}
	q, err := Bind(t, stmt.Agg.Name, stmt.Agg.Arg, stmt.GroupBy, where)
	if err != nil {
		return nil, err
	}
	q.stmt = stmt
	return q, nil
}

// SQL renders the query's SQL text when built from SQL, or a synthesized
// description otherwise.
func (q *AggregateQuery) SQL() string {
	if q.stmt != nil {
		return q.stmt.String()
	}
	agg := q.Agg.Name() + "(*)"
	if q.AggCol >= 0 {
		agg = fmt.Sprintf("%s(%s)", q.Agg.Name(), q.Table.Schema().Column(q.AggCol).Name)
	}
	names := make([]string, len(q.GroupBy))
	for i, c := range q.GroupBy {
		names[i] = q.Table.Schema().Column(c).Name
	}
	return fmt.Sprintf("SELECT %s FROM t GROUP BY %s", agg, strings.Join(names, ", "))
}

// RestAttributes returns A_rest: every attribute that is neither grouped nor
// aggregated (§3.1) — the attributes explanations are built from.
func (q *AggregateQuery) RestAttributes() []string {
	gb := map[int]bool{}
	for _, c := range q.GroupBy {
		gb[c] = true
	}
	var out []string
	for i := 0; i < q.Table.Schema().NumColumns(); i++ {
		if i == q.AggCol || gb[i] {
			continue
		}
		out = append(out, q.Table.Schema().Column(i).Name)
	}
	return out
}

// AggValues projects the aggregate attribute over the given rows, in row
// order. For count(*) it returns a slice of zeros of matching length (the
// values are irrelevant to COUNT).
func (q *AggregateQuery) AggValues(rows *relation.RowSet) []float64 {
	n := rows.Count()
	out := make([]float64, 0, n)
	if q.AggCol < 0 {
		return make([]float64, n)
	}
	col := q.Table.Floats(q.AggCol)
	rows.ForEach(func(r int) { out = append(out, col[r]) })
	return out
}

// Run executes the query, producing one ResultRow per group with full
// provenance. Rows are ordered by their key values (numeric-aware per
// component). Row ids (and the provenance RowSets) are local to the
// query's relation.
func (q *AggregateQuery) Run() (*Result, error) {
	t := q.Table.Data()
	n := t.NumRows()
	// Group provenance is built by one ascending row scan, so each set sees
	// in-order appends: on tables clustered by the group-by key (the common
	// time-series layout) the RowSets settle into the run encoding — a few
	// spans per group instead of an n-bit bitmap per group.
	groups := make(map[string]*relation.RowSet)
	keyVals := make(map[string][]relation.Value)

	vals := make([]relation.Value, len(q.GroupBy))
	for r := 0; r < n; r++ {
		if q.Where != nil && !q.Where(r) {
			continue
		}
		for i, col := range q.GroupBy {
			vals[i] = t.Value(col, r)
		}
		key := GroupKey(vals)
		set, ok := groups[key]
		if !ok {
			set = relation.NewRowSet(n)
			groups[key] = set
			kv := make([]relation.Value, len(vals))
			copy(kv, vals)
			keyVals[key] = kv
		}
		set.Add(r)
	}

	res := &Result{Query: q, byKey: make(map[string]int, len(groups))}
	for key, set := range groups {
		res.Rows = append(res.Rows, ResultRow{
			Key:       key,
			KeyValues: keyVals[key],
			Value:     q.Agg.Compute(q.AggValues(set)),
			Group:     set,
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return lessKeyValues(res.Rows[i].KeyValues, res.Rows[j].KeyValues)
	})
	for i, row := range res.Rows {
		res.byKey[row.Key] = i
	}
	return res, nil
}

// NewResult assembles a Result from externally maintained rows — the
// streaming tracker's path, where per-group provenance and aggregate values
// are advanced incrementally per append batch instead of recomputed by Run.
// Rows are sorted into Run's canonical key order and indexed; the slice is
// taken over (not copied).
func NewResult(q *AggregateQuery, rows []ResultRow) *Result {
	res := &Result{Query: q, Rows: rows, byKey: make(map[string]int, len(rows))}
	sort.Slice(res.Rows, func(i, j int) bool {
		return lessKeyValues(res.Rows[i].KeyValues, res.Rows[j].KeyValues)
	})
	for i, row := range res.Rows {
		res.byKey[row.Key] = i
	}
	return res
}

// lessKeyValues orders key tuples component-wise: continuous numerically,
// discrete by numeric value when both parse as numbers, else lexically.
func lessKeyValues(a, b []relation.Value) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		av, bv := a[i], b[i]
		if av.Kind() == relation.Continuous && bv.Kind() == relation.Continuous {
			if av.Float() != bv.Float() {
				return av.Float() < bv.Float()
			}
			continue
		}
		as, bs := av.String(), bv.String()
		an, aerr := strconv.ParseFloat(as, 64)
		bn, berr := strconv.ParseFloat(bs, 64)
		if aerr == nil && berr == nil {
			if an != bn {
				return an < bn
			}
			continue
		}
		if as != bs {
			return as < bs
		}
	}
	return false
}

// Lookup returns the result row with the given key.
func (r *Result) Lookup(key string) (ResultRow, bool) {
	i, ok := r.byKey[key]
	if !ok {
		return ResultRow{}, false
	}
	return r.Rows[i], true
}

// Keys returns all group keys in output order.
func (r *Result) Keys() []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.Key
	}
	return out
}
