package query

import (
	"fmt"

	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/sqlparse"
)

// CompileWhere lowers a parsed WHERE expression into a row filter over t.
// A nil expression compiles to a nil filter (match everything).
//
// Semantics: range operators (<, <=, >, >=) require a continuous column and
// a numeric literal. Equality and IN work on both kinds — numerically on
// continuous columns, by string on discrete columns (a numeric literal is
// rendered back to text for the comparison).
func CompileWhere(t relation.Relation, e sqlparse.Expr) (func(row int) bool, error) {
	if e == nil {
		return nil, nil
	}
	return compileExpr(t, e)
}

func compileExpr(t relation.Relation, e sqlparse.Expr) (func(int) bool, error) {
	switch e := e.(type) {
	case *sqlparse.BinaryExpr:
		left, err := compileExpr(t, e.Left)
		if err != nil {
			return nil, err
		}
		right, err := compileExpr(t, e.Right)
		if err != nil {
			return nil, err
		}
		if e.Op == "and" {
			return func(r int) bool { return left(r) && right(r) }, nil
		}
		return func(r int) bool { return left(r) || right(r) }, nil

	case *sqlparse.NotExpr:
		inner, err := compileExpr(t, e.Inner)
		if err != nil {
			return nil, err
		}
		return func(r int) bool { return !inner(r) }, nil

	case *sqlparse.CompareExpr:
		return compileCompare(t, e)

	case *sqlparse.InExpr:
		return compileIn(t, e)

	default:
		return nil, fmt.Errorf("query: unsupported WHERE node %T", e)
	}
}

func litText(l sqlparse.Literal) string {
	if l.IsNumber {
		return l.String()
	}
	return l.Str
}

func compileCompare(t relation.Relation, e *sqlparse.CompareExpr) (func(int) bool, error) {
	col, ok := t.Schema().Index(e.Col)
	if !ok {
		return nil, fmt.Errorf("query: no column %q in WHERE", e.Col)
	}
	kind := t.Schema().Column(col).Kind

	if kind == relation.Continuous {
		if !e.Lit.IsNumber {
			return nil, fmt.Errorf("query: column %q is continuous; literal %s is not numeric", e.Col, e.Lit)
		}
		v := e.Lit.Num
		vals := t.Floats(col)
		switch e.Op {
		case "=":
			return func(r int) bool { return vals[r] == v }, nil
		case "!=":
			return func(r int) bool { return vals[r] != v }, nil
		case "<":
			return func(r int) bool { return vals[r] < v }, nil
		case "<=":
			return func(r int) bool { return vals[r] <= v }, nil
		case ">":
			return func(r int) bool { return vals[r] > v }, nil
		case ">=":
			return func(r int) bool { return vals[r] >= v }, nil
		}
		return nil, fmt.Errorf("query: unsupported operator %q", e.Op)
	}

	// Discrete column: only equality semantics are defined.
	switch e.Op {
	case "=", "!=":
	default:
		return nil, fmt.Errorf("query: operator %q requires a continuous column, %q is discrete", e.Op, e.Col)
	}
	want := litText(e.Lit)
	code, found := t.Dict(col).Lookup(want)
	codes := t.Codes(col)
	if e.Op == "=" {
		if !found {
			return func(int) bool { return false }, nil
		}
		return func(r int) bool { return codes[r] == code }, nil
	}
	if !found {
		return func(int) bool { return true }, nil
	}
	return func(r int) bool { return codes[r] != code }, nil
}

func compileIn(t relation.Relation, e *sqlparse.InExpr) (func(int) bool, error) {
	col, ok := t.Schema().Index(e.Col)
	if !ok {
		return nil, fmt.Errorf("query: no column %q in WHERE", e.Col)
	}
	if t.Schema().Column(col).Kind == relation.Continuous {
		want := make(map[float64]bool, len(e.List))
		for _, l := range e.List {
			if !l.IsNumber {
				return nil, fmt.Errorf("query: column %q is continuous; IN list item %s is not numeric", e.Col, l)
			}
			want[l.Num] = true
		}
		vals := t.Floats(col)
		return func(r int) bool { return want[vals[r]] }, nil
	}
	want := make(map[int32]bool, len(e.List))
	for _, l := range e.List {
		if code, found := t.Dict(col).Lookup(litText(l)); found {
			want[code] = true
		}
	}
	codes := t.Codes(col)
	return func(r int) bool { return want[codes[r]] }, nil
}
