package query

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// randomTable builds a random 3-column table (g discrete, f discrete filter
// column, v continuous).
func randomTable(rng *rand.Rand) *relation.Table {
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "f", Kind: relation.Discrete},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	n := 1 + rng.Intn(200)
	for i := 0; i < n; i++ {
		b.MustAppend(relation.Row{
			relation.S(fmt.Sprintf("g%d", rng.Intn(5))),
			relation.S([]string{"x", "y"}[rng.Intn(2)]),
			relation.F(rng.Float64()*100 - 50),
		})
	}
	return b.Build()
}

// Property: provenance partitions the (filtered) input — the groups are
// disjoint and their union is exactly the set of rows passing WHERE.
func TestProvenancePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomTable(rng)
		q, err := FromSQL(tbl, "SELECT avg(v), g FROM t WHERE f = 'x' GROUP BY g")
		if err != nil {
			return false
		}
		res, err := q.Run()
		if err != nil {
			return false
		}
		union := relation.NewRowSet(tbl.NumRows())
		total := 0
		for _, row := range res.Rows {
			if !row.Group.Intersect(union).IsEmpty() {
				return false // groups overlap
			}
			union.Or(row.Group)
			total += row.Group.Count()
		}
		// Union must equal the filtered rows.
		fCol := tbl.Schema().MustIndex("f")
		codes := tbl.Codes(fCol)
		xCode, ok := tbl.Dict(fCol).Lookup("x")
		want := relation.NewRowSet(tbl.NumRows())
		if ok {
			for r := 0; r < tbl.NumRows(); r++ {
				if codes[r] == xCode {
					want.Add(r)
				}
			}
		}
		return union.Equal(want) && total == want.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SUM over groups equals SUM over the whole (filtered) table.
func TestGroupSumsAddUpProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomTable(rng)
		q, err := FromSQL(tbl, "SELECT sum(v), g FROM t GROUP BY g")
		if err != nil {
			return false
		}
		res, err := q.Run()
		if err != nil {
			return false
		}
		var groupTotal float64
		for _, row := range res.Rows {
			groupTotal += row.Value
		}
		var grandTotal float64
		vCol := tbl.Schema().MustIndex("v")
		for r := 0; r < tbl.NumRows(); r++ {
			grandTotal += tbl.Float(vCol, r)
		}
		diff := groupTotal - grandTotal
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: count(*) per group equals the provenance RowSet cardinality.
func TestCountMatchesProvenanceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomTable(rng)
		q, err := FromSQL(tbl, "SELECT count(*), g FROM t GROUP BY g")
		if err != nil {
			return false
		}
		res, err := q.Run()
		if err != nil {
			return false
		}
		for _, row := range res.Rows {
			if int(row.Value) != row.Group.Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
