// Package worker executes one remote shard search: the server side of the
// coordinator/worker split. Run is a pure function from a wire.Task plus a
// locally-held table to a wire.Result — it reproduces exactly what the
// shard coordinator's local path does for the same window, so a remote
// fleet and a single process produce identical candidate streams.
package worker

import (
	"context"
	"fmt"

	"github.com/scorpiondb/scorpion/internal/estimate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/mc"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/wire"
)

// ErrTableMismatch marks a task whose pinned row count disagrees with the
// worker's copy of the table — the worker must refuse rather than answer
// from drifted data. Servers map it to 409.
type ErrTableMismatch struct {
	Table      string
	Want, Have int
}

func (e *ErrTableMismatch) Error() string {
	return fmt.Sprintf("worker: table %q has %d rows, task pinned %d", e.Table, e.Have, e.Want)
}

// Run executes one shard search task against tbl. The context cancels the
// search (the coordinator's per-shard timeout arrives here through the
// HTTP request context); maxWorkers caps the task's requested parallelism.
//
// The query SQL is parsed and bound only — never executed: group
// provenance arrives pre-sliced in the task, so the worker pays the
// search, not the aggregation.
func Run(ctx context.Context, tbl *relation.Table, t *wire.Task, maxWorkers int) (*wire.Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if tbl.NumRows() != t.Rows {
		return nil, &ErrTableMismatch{Table: t.Table, Want: t.Rows, Have: tbl.NumRows()}
	}
	if t.WindowHi > tbl.NumRows() {
		return nil, fmt.Errorf("worker: window [%d,%d) beyond table %q (%d rows)", t.WindowLo, t.WindowHi, t.Table, tbl.NumRows())
	}
	q, err := query.FromSQL(tbl, t.SQL)
	if err != nil {
		return nil, fmt.Errorf("worker: bind query: %w", err)
	}
	v := tbl.Window(t.WindowLo, t.WindowHi)
	winLen := t.WindowHi - t.WindowLo
	outliers, err := wire.DecodeGroups(t.Outliers, winLen)
	if err != nil {
		return nil, err
	}
	holdouts, err := wire.DecodeGroups(t.HoldOuts, winLen)
	if err != nil {
		return nil, err
	}
	task := &influence.Task{
		Table:    v,
		Agg:      q.Agg,
		AggCol:   q.AggCol,
		Outliers: outliers,
		HoldOuts: holdouts,
		Lambda:   t.Lambda,
		C:        t.C,
		Perturb:  t.Perturb,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		return nil, fmt.Errorf("worker: %w", err)
	}
	space, err := predicate.NewSpace(v, t.Attrs, nil)
	if err != nil {
		return nil, fmt.Errorf("worker: %w", err)
	}
	domains := wire.DecodeDomains(t.Domains)

	var searcher partition.Searcher
	switch t.Algorithm {
	case "naive":
		params := naive.Params{Bins: t.Bins, TopK: t.TopK, Domains: domains}
		if t.Epsilon > 0 {
			params.Estimator = estimate.New(scorer, estimate.Params{
				Epsilon:    t.Epsilon,
				Confidence: t.Confidence,
				Metrics:    obs.RegistryFrom(ctx),
			})
		}
		searcher = naive.NewSearcher(scorer, space, params)
	case "mc":
		params := mc.Params{Bins: t.Bins, Domains: domains}
		if t.Epsilon > 0 {
			params.Estimator = estimate.New(scorer, estimate.Params{
				Epsilon:    t.Epsilon,
				Confidence: t.Confidence,
				Metrics:    obs.RegistryFrom(ctx),
			})
		}
		searcher = mc.NewSearcher(scorer, space, params)
	default:
		return nil, fmt.Errorf("worker: unsupported algorithm %q", t.Algorithm)
	}

	workers := t.Workers
	if workers < 1 {
		workers = 1
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	outcome, err := partition.RunSearch(ctx, workers, searcher)
	if err != nil {
		return nil, err
	}
	if outcome.Interrupted {
		// A partial candidate stream would silently skew the combiner's
		// merge; the coordinator must retry or search this shard locally.
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		return nil, fmt.Errorf("worker: shard search interrupted: %w", cause)
	}
	return wire.EncodeOutcome(outcome), nil
}
