package experiments

import (
	"fmt"
	"io"
	"strings"
)

// TextTable renders aligned monospace tables for experiment output.
type TextTable struct {
	headers []string
	rows    [][]string
}

// NewTextTable starts a table with the given column headers.
func NewTextTable(headers ...string) *TextTable {
	return &TextTable{headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *TextTable) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table. A nil writer is a no-op.
func (t *TextTable) Render(w io.Writer) {
	if w == nil {
		return
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// Section prints an underlined section heading. A nil writer is a no-op.
func Section(w io.Writer, format string, args ...any) {
	if w == nil {
		return
	}
	s := fmt.Sprintf(format, args...)
	fmt.Fprintf(w, "\n%s\n%s\n", s, strings.Repeat("=", len(s)))
}
