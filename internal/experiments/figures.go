package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
)

// CSweep is the c grid used throughout §8.3 (0 to 0.5).
var CSweep = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}

// Figure9Row is one panel of Figure 9: the optimal NAIVE predicate at one c.
type Figure9Row struct {
	C         float64
	Predicate string
	Matched   int
	InnerAcc  eval.Accuracy
	OuterAcc  eval.Accuracy
}

// Figure9 reproduces the Figure 9 panels: NAIVE's optimal predicates on
// SYNTH-2D-Hard as c varies.
func Figure9(s Scale, w io.Writer) ([]Figure9Row, error) {
	ds := s.synthDataset(2, mu("Hard"))
	var rows []Figure9Row
	for _, c := range []float64{0, 0.05, 0.1, 0.2, 0.5} {
		out, err := s.RunAlgorithm("naive", ds, c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure9Row{
			C:         c,
			Predicate: out.Best.Format(ds.Table),
			Matched:   out.OuterAcc.Matched,
			InnerAcc:  out.InnerAcc,
			OuterAcc:  out.OuterAcc,
		})
	}
	Section(w, "Figure 9: optimal NAIVE predicates on SYNTH-2D-Hard as c varies")
	tbl := NewTextTable("c", "matched", "outer F1", "inner F1", "predicate")
	for _, r := range rows {
		tbl.AddRow(r.C, r.Matched, r.OuterAcc.F1, r.InnerAcc.F1, r.Predicate)
	}
	tbl.Render(w)
	return rows, nil
}

// Figure10Row is one point of Figure 10: NAIVE accuracy vs c per dataset
// and ground-truth choice.
type Figure10Row struct {
	Dataset string // SYNTH-2D-Easy / SYNTH-2D-Hard
	C       float64
	Truth   string // Inner / Outer
	Acc     eval.Accuracy
}

// Figure10 reproduces Figure 10: NAIVE precision/recall/F as c varies, with
// both cubes as ground truth, on the Easy and Hard 2D datasets.
func Figure10(s Scale, w io.Writer) ([]Figure10Row, error) {
	var rows []Figure10Row
	for _, diff := range []string{"Easy", "Hard"} {
		ds := s.synthDataset(2, mu(diff))
		for _, c := range CSweep {
			out, err := s.RunAlgorithm("naive", ds, c)
			if err != nil {
				return nil, err
			}
			name := "SYNTH-2D-" + diff
			rows = append(rows,
				Figure10Row{Dataset: name, C: c, Truth: "Inner", Acc: out.InnerAcc},
				Figure10Row{Dataset: name, C: c, Truth: "Outer", Acc: out.OuterAcc},
			)
		}
	}
	Section(w, "Figure 10: NAIVE accuracy statistics as c varies")
	tbl := NewTextTable("dataset", "c", "truth", "precision", "recall", "F1")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.C, r.Truth, r.Acc.Precision, r.Acc.Recall, r.Acc.F1)
	}
	tbl.Render(w)
	return rows, nil
}

// Figure11Row is one best-so-far sample of NAIVE's convergence curve.
type Figure11Row struct {
	C       float64
	Elapsed time.Duration
	InnerF1 float64
	OuterF1 float64
}

// Figure11 reproduces Figure 11: NAIVE's best-so-far accuracy over time on
// SYNTH-2D-Hard for three c values.
func Figure11(s Scale, w io.Writer) ([]Figure11Row, error) {
	ds := s.synthDataset(2, mu("Hard"))
	var rows []Figure11Row
	for _, c := range []float64{0, 0.1, 0.5} {
		out, err := s.RunAlgorithm("naive", ds, c)
		if err != nil {
			return nil, err
		}
		task, _, err := eval.SynthTask(ds, "sum", 0.5, c)
		if err != nil {
			return nil, err
		}
		gO := eval.OutlierUnion(task)
		for _, tp := range out.Trace {
			inner := eval.Score(tp.Pred, ds.Table, gO, ds.InnerRows)
			outer := eval.Score(tp.Pred, ds.Table, gO, ds.OuterRows)
			rows = append(rows, Figure11Row{
				C:       c,
				Elapsed: tp.Elapsed,
				InnerF1: inner.F1,
				OuterF1: outer.F1,
			})
		}
	}
	Section(w, "Figure 11: NAIVE best-so-far accuracy vs time on SYNTH-2D-Hard")
	tbl := NewTextTable("c", "elapsed", "inner F1", "outer F1")
	for _, r := range rows {
		tbl.AddRow(r.C, r.Elapsed.Round(time.Millisecond).String(), r.InnerF1, r.OuterF1)
	}
	tbl.Render(w)
	return rows, nil
}

// AccuracyRow is one (dataset, algorithm, c) accuracy measurement, used by
// Figures 12 and 13.
type AccuracyRow struct {
	Dataset   string
	Dims      int
	Algorithm string
	C         float64
	Acc       eval.Accuracy // vs the outer cube (§8.3.1's surrogate truth)
	Elapsed   time.Duration
}

// Figure12 reproduces Figure 12: DT vs MC vs NAIVE accuracy as c varies on
// the 2D datasets, outer-cube ground truth.
func Figure12(s Scale, w io.Writer) ([]AccuracyRow, error) {
	rows, err := accuracyGrid(s, []int{2}, []string{"Easy", "Hard"})
	if err != nil {
		return nil, err
	}
	Section(w, "Figure 12: accuracy by algorithm as c varies (2D)")
	tbl := NewTextTable("dataset", "algorithm", "c", "precision", "recall", "F1")
	for _, r := range rows {
		tbl.AddRow(r.Dataset, r.Algorithm, r.C, r.Acc.Precision, r.Acc.Recall, r.Acc.F1)
	}
	tbl.Render(w)
	return rows, nil
}

// Figure13 reproduces Figure 13: F-score as dimensionality grows from 2 to
// 4, Easy and Hard.
func Figure13(s Scale, w io.Writer) ([]AccuracyRow, error) {
	rows, err := accuracyGrid(s, []int{2, 3, 4}, []string{"Easy", "Hard"})
	if err != nil {
		return nil, err
	}
	Section(w, "Figure 13: F-score as dimensionality increases")
	tbl := NewTextTable("dims", "difficulty", "algorithm", "c", "F1")
	for _, r := range rows {
		diff := "Easy"
		if len(r.Dataset) >= 4 && r.Dataset[len(r.Dataset)-4:] == "Hard" {
			diff = "Hard"
		}
		tbl.AddRow(r.Dims, diff, r.Algorithm, r.C, r.Acc.F1)
	}
	tbl.Render(w)
	return rows, nil
}

// Figure14 reproduces Figure 14: runtime vs c as dimensionality increases
// (Easy datasets; log-scale cost in the paper).
func Figure14(s Scale, w io.Writer) ([]AccuracyRow, error) {
	rows, err := accuracyGrid(s, []int{2, 3, 4}, []string{"Easy"})
	if err != nil {
		return nil, err
	}
	Section(w, "Figure 14: cost (seconds) as dimensionality increases (Easy)")
	tbl := NewTextTable("dims", "algorithm", "c", "seconds")
	for _, r := range rows {
		tbl.AddRow(r.Dims, r.Algorithm, r.C, r.Elapsed.Seconds())
	}
	tbl.Render(w)
	return rows, nil
}

// accuracyGrid runs all three algorithms over a (dims × difficulty × c)
// grid.
func accuracyGrid(s Scale, dims []int, difficulties []string) ([]AccuracyRow, error) {
	cs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	var rows []AccuracyRow
	for _, d := range dims {
		for _, diff := range difficulties {
			ds := s.synthDataset(d, mu(diff))
			for _, algo := range s.algorithms() {
				for _, c := range cs {
					out, err := s.RunAlgorithm(algo, ds, c)
					if err != nil {
						return nil, err
					}
					rows = append(rows, AccuracyRow{
						Dataset:   fmt.Sprintf("SYNTH-%dD-%s", d, diff),
						Dims:      d,
						Algorithm: algo,
						C:         c,
						Acc:       out.OuterAcc,
						Elapsed:   out.Elapsed,
					})
				}
			}
		}
	}
	return rows, nil
}

// Figure15Row is one runtime measurement at a dataset size.
type Figure15Row struct {
	Dims      int
	Tuples    int // total tuples
	Algorithm string
	Elapsed   time.Duration
}

// Figure15 reproduces Figure 15: cost as the Easy dataset grows, c = 0.1.
// Sizes are per-group tuple counts scaled around the configured base.
func Figure15(s Scale, w io.Writer) ([]Figure15Row, error) {
	perGroup := []int{s.TuplesPerGroup / 4, s.TuplesPerGroup / 2, s.TuplesPerGroup,
		s.TuplesPerGroup * 2, s.TuplesPerGroup * 4}
	var rows []Figure15Row
	for _, d := range []int{2, 3, 4} {
		for _, n := range perGroup {
			if n < 20 {
				continue
			}
			sz := s
			sz.TuplesPerGroup = n
			ds := sz.synthDataset(d, mu("Easy"))
			for _, algo := range []string{"dt", "mc"} {
				out, err := sz.RunAlgorithm(algo, ds, 0.1)
				if err != nil {
					return nil, err
				}
				rows = append(rows, Figure15Row{
					Dims:      d,
					Tuples:    n * sz.Groups,
					Algorithm: algo,
					Elapsed:   out.Elapsed,
				})
			}
		}
	}
	Section(w, "Figure 15: cost as dataset size increases (Easy, c=0.1)")
	tbl := NewTextTable("dims", "total tuples", "algorithm", "seconds")
	for _, r := range rows {
		tbl.AddRow(r.Dims, r.Tuples, r.Algorithm, r.Elapsed.Seconds())
	}
	tbl.Render(w)
	return rows, nil
}

// Figure16Row is one cached-vs-fresh cost comparison point.
type Figure16Row struct {
	Dims       int
	Difficulty string
	C          float64
	Cached     time.Duration
	NoCache    time.Duration
}

// Figure16 reproduces Figure 16: executing DT+Merger over a descending c
// sweep with and without reusing the partitioning and prior merge results
// (§8.3.3).
func Figure16(s Scale, w io.Writer) ([]Figure16Row, error) {
	cs := []float64{0.5, 0.4, 0.3, 0.2, 0.1, 0}
	var rows []Figure16Row
	for _, d := range []int{3, 4} {
		for _, diff := range []string{"Easy", "Hard"} {
			ds := s.synthDataset(d, mu(diff))

			// Cached sweep: partition once, seed each merge with the
			// previous (higher-c) results.
			var pt *dt.Partitioning
			var prevMerged []partition.Candidate
			cached := make(map[float64]time.Duration, len(cs))
			for _, c := range cs {
				task, space, err := eval.SynthTask(ds, "avg", 0.5, c)
				if err != nil {
					return nil, err
				}
				scorer, err := influence.NewScorer(task)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if pt == nil {
					pt, err = dt.Partition(scorer, space, dt.Params{})
					if err != nil {
						return nil, err
					}
				}
				cands := pt.Candidates(scorer)
				merger := merge.New(scorer, space, merge.Params{
					TopQuartileOnly:  true,
					UseApproximation: true,
				})
				seeds := prevMerged
				if len(seeds) > 5 {
					seeds = seeds[:5]
				}
				prevMerged = merger.MergeSeeded(cands, seeds)
				cached[c] = time.Since(start)
			}

			// Fresh sweep: everything recomputed per c.
			fresh := make(map[float64]time.Duration, len(cs))
			for _, c := range cs {
				task, space, err := eval.SynthTask(ds, "avg", 0.5, c)
				if err != nil {
					return nil, err
				}
				scorer, err := influence.NewScorer(task)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				res, err := dt.Run(scorer, space, dt.Params{})
				if err != nil {
					return nil, err
				}
				merger := merge.New(scorer, space, merge.Params{
					TopQuartileOnly:  true,
					UseApproximation: true,
				})
				merger.Merge(res.Candidates)
				fresh[c] = time.Since(start)
			}

			for _, c := range cs {
				rows = append(rows, Figure16Row{
					Dims:       d,
					Difficulty: diff,
					C:          c,
					Cached:     cached[c],
					NoCache:    fresh[c],
				})
			}
		}
	}
	Section(w, "Figure 16: DT cost with and without caching across a descending c sweep")
	tbl := NewTextTable("dims", "difficulty", "c", "cached (s)", "no-cache (s)")
	for _, r := range rows {
		tbl.AddRow(r.Dims, r.Difficulty, r.C, r.Cached.Seconds(), r.NoCache.Seconds())
	}
	tbl.Render(w)
	return rows, nil
}

// NaiveConvergenceDeadline exposes the scale's NAIVE deadline for callers
// rendering Figure 11 commentary.
func (s Scale) NaiveConvergenceDeadline() time.Duration { return s.NaiveDeadline }

// guard against unused import when figures evolve.
var _ = naive.Params{}
