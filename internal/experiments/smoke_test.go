package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps every figure runnable in well under a second each.
func tinyScale() Scale {
	return Scale{TuplesPerGroup: 80, Groups: 4, OutlierGroups: 2, Bins: 6,
		NaiveDeadline: 2 * time.Second, Seed: 1}
}

func TestSmokeFigure9(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure9(tinyScale(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 c panels", len(rows))
	}
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("missing section header")
	}
	// Higher c must never match more tuples than c=0 (selectivity knob).
	if rows[len(rows)-1].Matched > rows[0].Matched {
		t.Errorf("c=0.5 matched %d > c=0 matched %d",
			rows[len(rows)-1].Matched, rows[0].Matched)
	}
}

func TestSmokeFigure10(t *testing.T) {
	rows, err := Figure10(tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × |CSweep| × 2 truths.
	want := 2 * len(CSweep) * 2
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Acc.Precision < 0 || r.Acc.Precision > 1 || r.Acc.Recall < 0 || r.Acc.Recall > 1 {
			t.Fatalf("out-of-range accuracy: %+v", r)
		}
	}
}

func TestSmokeFigure11(t *testing.T) {
	rows, err := Figure11(tinyScale(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no convergence points")
	}
	// Elapsed within a c series must be non-decreasing.
	var lastC float64 = -1
	var lastElapsed time.Duration
	for _, r := range rows {
		if r.C != lastC {
			lastC, lastElapsed = r.C, 0
		}
		if r.Elapsed < lastElapsed {
			t.Fatalf("time went backwards within c=%v series", r.C)
		}
		lastElapsed = r.Elapsed
	}
}

func TestSmokeFigure12(t *testing.T) {
	s := tinyScale()
	rows, err := Figure12(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	algos := map[string]bool{}
	for _, r := range rows {
		algos[r.Algorithm] = true
	}
	for _, a := range []string{"naive", "dt", "mc"} {
		if !algos[a] {
			t.Errorf("algorithm %s missing from grid", a)
		}
	}
}

func TestSmokeFigure13And14(t *testing.T) {
	s := tinyScale()
	s.Algorithms = []string{"dt", "mc"} // keep the 4D grid fast
	rows13, err := Figure13(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	dims := map[int]bool{}
	for _, r := range rows13 {
		dims[r.Dims] = true
	}
	for _, d := range []int{2, 3, 4} {
		if !dims[d] {
			t.Errorf("dims %d missing", d)
		}
	}
	rows14, err := Figure14(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows14 {
		if r.Elapsed <= 0 {
			t.Fatalf("non-positive elapsed for %+v", r)
		}
	}
}

func TestSmokeFigure15(t *testing.T) {
	s := tinyScale()
	rows, err := Figure15(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestSmokeFigure16(t *testing.T) {
	s := tinyScale()
	rows, err := Figure16(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 2 dims × 2 difficulties × 6 c values.
	if len(rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(rows))
	}
	// Cached total must not wildly exceed the fresh total.
	var cached, fresh time.Duration
	for _, r := range rows {
		cached += r.Cached
		fresh += r.NoCache
	}
	if cached > fresh*2 {
		t.Errorf("cached sweep (%v) much slower than fresh (%v)", cached, fresh)
	}
}

func TestSmokeRunningExample(t *testing.T) {
	var buf bytes.Buffer
	expl, err := RunningExample(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if expl != "sensorid in ('3')" && !strings.Contains(expl, "voltage") {
		t.Errorf("running example explanation = %q", expl)
	}
	for _, want := range []string{"Table 1", "Table 2", "56.667", "α2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSmokeIntelBothWorkloads(t *testing.T) {
	scale := IntelScale{Hours: 20, Sensors: 18, EpochsPerHour: 2, Seed: 3}
	for _, wl := range []int{1, 2} {
		rows, err := IntelWorkload(wl, scale, nil)
		if err != nil {
			t.Fatalf("workload %d: %v", wl, err)
		}
		// At least one c setting must implicate the scripted sensor.
		culprit := "15"
		if wl == 2 {
			culprit = "18"
		}
		found := false
		for _, r := range rows {
			if strings.Contains(r.Predicate, "'"+culprit+"'") {
				found = true
			}
		}
		if !found {
			t.Errorf("workload %d never implicated sensor %s: %+v", wl, culprit, rows)
		}
	}
}

func TestSmokeExpense(t *testing.T) {
	rows, err := ExpenseWorkload(ExpenseScale{Days: 15, RowsPerDay: 40, Recipients: 60, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	foundGMMB := false
	for _, r := range rows {
		if strings.Contains(r.Predicate, "GMMB INC.") ||
			strings.Contains(r.Predicate, "800316") {
			foundGMMB = true
		}
	}
	if !foundGMMB {
		t.Errorf("expense workload never found the media buys: %+v", rows)
	}
}

func TestTextTable(t *testing.T) {
	var buf bytes.Buffer
	tbl := NewTextTable("a", "bb")
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer", 2)
	tbl.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "longer") || !strings.Contains(out, "1.500") {
		t.Errorf("table output:\n%s", out)
	}
	// nil writer is a no-op.
	tbl.Render(nil)
	Section(nil, "nothing")
}
