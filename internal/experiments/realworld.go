package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/scorpiondb/scorpion/internal/datasets"
	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/partition/mc"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// RealWorldRow is one (workload, c) result on a simulated real dataset.
type RealWorldRow struct {
	Workload  string
	C         float64
	Predicate string
	Acc       eval.Accuracy
	Elapsed   time.Duration
}

// IntelScale controls the INTEL simulator size.
type IntelScale struct {
	Hours, Sensors, EpochsPerHour int
	Seed                          int64
}

// QuickIntel is a CI-sized deployment.
func QuickIntel() IntelScale { return IntelScale{Hours: 33, Sensors: 20, EpochsPerHour: 2, Seed: 7} }

// PaperIntel approaches the deployment's 61 motes over two weeks.
func PaperIntel() IntelScale { return IntelScale{Hours: 336, Sensors: 61, EpochsPerHour: 6, Seed: 7} }

// IntelWorkload runs §8.4's INTEL workload (1 = dying sensor, 2 = battery
// decay) across a c sweep with the DT partitioner, as the paper does for
// STDDEV.
func IntelWorkload(n int, scale IntelScale, w io.Writer) ([]RealWorldRow, error) {
	ds := datasets.GenerateIntel(datasets.IntelConfig{
		Hours:         scale.Hours,
		Sensors:       scale.Sensors,
		EpochsPerHour: scale.EpochsPerHour,
		Workload:      datasets.IntelWorkload(n),
		Seed:          scale.Seed,
	})
	q, err := query.FromSQL(ds.Table, "SELECT stddev(temp), hour FROM readings GROUP BY hour")
	if err != nil {
		return nil, err
	}
	qres, err := q.Run()
	if err != nil {
		return nil, err
	}
	space, err := predicate.NewSpace(ds.Table,
		[]string{"sensorid", "voltage", "humidity", "light"}, nil)
	if err != nil {
		return nil, err
	}

	var rows []RealWorldRow
	for _, c := range []float64{1, 0.5, 0.2, 0.1, 0} {
		task := &influence.Task{
			Table:  ds.Table,
			Agg:    q.Agg,
			AggCol: q.AggCol,
			Lambda: 0.5,
			C:      c,
		}
		for _, h := range ds.OutlierHours {
			row, ok := qres.Lookup(h)
			if !ok {
				return nil, fmt.Errorf("eval: missing hour %s", h)
			}
			task.Outliers = append(task.Outliers,
				influence.Group{Key: h, Rows: row.Group, Direction: influence.TooHigh})
		}
		for _, h := range ds.HoldOutHours {
			row, ok := qres.Lookup(h)
			if !ok {
				return nil, fmt.Errorf("eval: missing hour %s", h)
			}
			task.HoldOuts = append(task.HoldOuts, influence.Group{Key: h, Rows: row.Group})
		}
		scorer, err := influence.NewScorer(task)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := dt.Run(scorer, space, dt.Params{})
		if err != nil {
			return nil, err
		}
		merger := merge.New(scorer, space, merge.Params{
			TopQuartileOnly:  true,
			UseApproximation: true,
		})
		best, ok := partition.Top(merger.Merge(res.Candidates))
		if !ok {
			return nil, fmt.Errorf("eval: intel workload %d produced no candidates", n)
		}
		elapsed := time.Since(start)
		gO := eval.OutlierUnion(task)
		rows = append(rows, RealWorldRow{
			Workload:  fmt.Sprintf("INTEL#%d", n),
			C:         c,
			Predicate: best.Pred.Format(ds.Table),
			Acc:       eval.Score(best.Pred, ds.Table, gO, ds.TruthRows),
			Elapsed:   elapsed,
		})
	}
	Section(w, "§8.4 INTEL workload %d (sensor %s, %d outlier hours, %d hold-outs)",
		n, ds.FailingSensor, len(ds.OutlierHours), len(ds.HoldOutHours))
	writeRealWorld(w, rows)
	return rows, nil
}

// ExpenseScale controls the EXPENSE simulator size.
type ExpenseScale struct {
	Days, RowsPerDay, Recipients int
	Seed                         int64
}

// QuickExpense is a CI-sized ledger.
func QuickExpense() ExpenseScale {
	return ExpenseScale{Days: 34, RowsPerDay: 80, Recipients: 150, Seed: 5}
}

// PaperExpense approaches the FEC file's 116k rows.
func PaperExpense() ExpenseScale {
	return ExpenseScale{Days: 540, RowsPerDay: 215, Recipients: 2000, Seed: 5}
}

// ExpenseWorkload runs §8.4's EXPENSE workload (SUM of Obama's daily
// disbursements, MC algorithm) across a c sweep.
func ExpenseWorkload(scale ExpenseScale, w io.Writer) ([]RealWorldRow, error) {
	ds := datasets.GenerateExpense(datasets.ExpenseConfig{
		Days:       scale.Days,
		RowsPerDay: scale.RowsPerDay,
		Recipients: scale.Recipients,
		Seed:       scale.Seed,
	})
	q, err := query.FromSQL(ds.Table,
		"SELECT sum(disb_amt), date FROM expenses WHERE candidate = 'Obama' GROUP BY date")
	if err != nil {
		return nil, err
	}
	qres, err := q.Run()
	if err != nil {
		return nil, err
	}
	attrs := []string{"recipient_nm", "recipient_st", "recipient_city", "zip",
		"organization_tp", "disb_desc", "file_num", "election_tp", "category",
		"payee_tp", "memo"}
	space, err := predicate.NewSpace(ds.Table, attrs, nil)
	if err != nil {
		return nil, err
	}

	var rows []RealWorldRow
	for _, c := range []float64{1, 0.5, 0.2, 0.1, 0.05} {
		task := &influence.Task{
			Table:  ds.Table,
			Agg:    q.Agg,
			AggCol: q.AggCol,
			Lambda: 0.5,
			C:      c,
		}
		for _, d := range ds.OutlierDays {
			row, ok := qres.Lookup(d)
			if !ok {
				return nil, fmt.Errorf("eval: missing day %s", d)
			}
			task.Outliers = append(task.Outliers,
				influence.Group{Key: d, Rows: row.Group, Direction: influence.TooHigh})
		}
		for _, d := range ds.HoldOutDays {
			row, ok := qres.Lookup(d)
			if !ok {
				return nil, fmt.Errorf("eval: missing day %s", d)
			}
			task.HoldOuts = append(task.HoldOuts, influence.Group{Key: d, Rows: row.Group})
		}
		scorer, err := influence.NewScorer(task)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := mc.Run(scorer, space, mc.Params{MaxDiscreteValues: 60})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		gO := eval.OutlierUnion(task)
		rows = append(rows, RealWorldRow{
			Workload:  "EXPENSE",
			C:         c,
			Predicate: res.Best.Pred.Format(ds.Table),
			Acc:       eval.Score(res.Best.Pred, ds.Table, gO, ds.TruthRows),
			Elapsed:   elapsed,
		})
	}
	Section(w, "§8.4 EXPENSE workload (%d outlier days, %d hold-outs)",
		len(ds.OutlierDays), len(ds.HoldOutDays))
	writeRealWorld(w, rows)
	return rows, nil
}

func writeRealWorld(w io.Writer, rows []RealWorldRow) {
	tbl := NewTextTable("workload", "c", "F1", "precision", "recall", "seconds", "predicate")
	for _, r := range rows {
		tbl.AddRow(r.Workload, r.C, r.Acc.F1, r.Acc.Precision, r.Acc.Recall,
			r.Elapsed.Seconds(), r.Predicate)
	}
	tbl.Render(w)
}

// RunningExample reproduces Tables 1 and 2: it executes Q1 over the
// paper's nine sensor readings, prints both tables, and explains the 12PM
// and 1PM outliers.
func RunningExample(w io.Writer) (string, error) {
	tbl := runningExampleTable()
	q, err := query.FromSQL(tbl, "SELECT avg(temp), time FROM sensors GROUP BY time")
	if err != nil {
		return "", err
	}
	qres, err := q.Run()
	if err != nil {
		return "", err
	}

	Section(w, "Table 1: sensors")
	t1 := NewTextTable("tuple", "time", "sensorid", "voltage", "humidity", "temp")
	for r := 0; r < tbl.NumRows(); r++ {
		row := tbl.Row(r)
		t1.AddRow(fmt.Sprintf("T%d", r+1), row[0].Str(), row[1].Str(),
			row[2].Float(), row[3].Float(), row[4].Float())
	}
	t1.Render(w)

	Section(w, "Table 2: Q1 results and annotations")
	t2 := NewTextTable("result", "time", "avg(temp)", "label", "v")
	for i, row := range qres.Rows {
		label, v := "Hold-out", "-"
		if row.Key == "12PM" || row.Key == "1PM" {
			label, v = "Outlier", "<+1>"
		}
		t2.AddRow(fmt.Sprintf("α%d", i+1), row.Key, row.Value, label, v)
	}
	t2.Render(w)

	task := &influence.Task{
		Table:  tbl,
		Agg:    q.Agg,
		AggCol: q.AggCol,
		Lambda: 0.5,
		C:      1,
	}
	for _, key := range []string{"12PM", "1PM"} {
		row, _ := qres.Lookup(key)
		task.Outliers = append(task.Outliers,
			influence.Group{Key: key, Rows: row.Group, Direction: influence.TooHigh})
	}
	hold, _ := qres.Lookup("11AM")
	task.HoldOuts = []influence.Group{{Key: "11AM", Rows: hold.Group}}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		return "", err
	}
	space, err := predicate.NewSpace(tbl, []string{"sensorid", "voltage", "humidity"}, nil)
	if err != nil {
		return "", err
	}
	res, err := dt.Run(scorer, space, dt.Params{DisableSampling: true})
	if err != nil {
		return "", err
	}
	merger := merge.New(scorer, space, merge.Params{})
	best, ok := partition.Top(merger.Merge(res.Candidates))
	if !ok {
		return "", fmt.Errorf("eval: running example produced no explanation")
	}
	explanation := best.Pred.Format(tbl)
	if w != nil {
		fmt.Fprintf(w, "\nExplanation for {12PM, 1PM} too-high: %s (influence %.3f)\n",
			explanation, scorer.Influence(best.Pred))
	}
	return explanation, nil
}

func runningExampleTable() *relation.Table {
	schema := relation.MustSchema(
		relation.Column{Name: "time", Kind: relation.Discrete},
		relation.Column{Name: "sensorid", Kind: relation.Discrete},
		relation.Column{Name: "voltage", Kind: relation.Continuous},
		relation.Column{Name: "humidity", Kind: relation.Continuous},
		relation.Column{Name: "temp", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	rows := []relation.Row{
		{relation.S("11AM"), relation.S("1"), relation.F(2.64), relation.F(0.4), relation.F(34)},
		{relation.S("11AM"), relation.S("2"), relation.F(2.65), relation.F(0.5), relation.F(35)},
		{relation.S("11AM"), relation.S("3"), relation.F(2.63), relation.F(0.4), relation.F(35)},
		{relation.S("12PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("12PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("12PM"), relation.S("3"), relation.F(2.3), relation.F(0.4), relation.F(100)},
		{relation.S("1PM"), relation.S("1"), relation.F(2.7), relation.F(0.3), relation.F(35)},
		{relation.S("1PM"), relation.S("2"), relation.F(2.7), relation.F(0.5), relation.F(35)},
		{relation.S("1PM"), relation.S("3"), relation.F(2.3), relation.F(0.5), relation.F(80)},
	}
	for _, r := range rows {
		b.MustAppend(r)
	}
	return b.Build()
}
