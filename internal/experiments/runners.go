package experiments

import (
	"fmt"
	"time"

	"github.com/scorpiondb/scorpion/internal/eval"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/merge"
	"github.com/scorpiondb/scorpion/internal/partition"
	"github.com/scorpiondb/scorpion/internal/partition/dt"
	"github.com/scorpiondb/scorpion/internal/partition/mc"
	"github.com/scorpiondb/scorpion/internal/partition/naive"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// Scale controls experiment sizes so the same harness serves quick CI runs
// (default) and paper-scale runs (-full in cmd/scorpion-bench).
type Scale struct {
	// TuplesPerGroup is the SYNTH group size (paper: 2000).
	TuplesPerGroup int
	// Groups and OutlierGroups shape SYNTH (paper: 10 and 5).
	Groups, OutlierGroups int
	// Bins for NAIVE/MC unit granularity (paper: 15).
	Bins int
	// NaiveDeadline bounds each NAIVE run (paper: 40 min).
	NaiveDeadline time.Duration
	// Algorithms optionally restricts the grid experiments (Figures 12-14)
	// to a subset of {"naive", "dt", "mc"}; nil means all three.
	Algorithms []string
	// Seed drives all generators.
	Seed int64
}

// algorithms returns the configured algorithm list or the default trio.
func (s Scale) algorithms() []string {
	if len(s.Algorithms) > 0 {
		return s.Algorithms
	}
	return []string{"naive", "dt", "mc"}
}

// QuickScale finishes the full suite in tens of seconds on a laptop.
func QuickScale() Scale {
	return Scale{
		TuplesPerGroup: 250,
		Groups:         6,
		OutlierGroups:  3,
		Bins:           10,
		NaiveDeadline:  2 * time.Second,
		Seed:           1,
	}
}

// PaperScale mirrors §8.1's parameters (NAIVE runs are still capped at two
// minutes per configuration rather than the paper's 40).
func PaperScale() Scale {
	return Scale{
		TuplesPerGroup: 2000,
		Groups:         10,
		OutlierGroups:  5,
		Bins:           15,
		NaiveDeadline:  2 * time.Minute,
		Seed:           1,
	}
}

// synthDataset builds a SYNTH dataset at this scale.
func (s Scale) synthDataset(dims int, mu float64) *synth.Dataset {
	return synth.Generate(synth.Config{
		Dims:           dims,
		TuplesPerGroup: s.TuplesPerGroup,
		Groups:         s.Groups,
		OutlierGroups:  s.OutlierGroups,
		Mu:             mu,
		Seed:           s.Seed,
	})
}

// mu converts a difficulty name ("Easy"/"Hard") to µ.
func mu(difficulty string) float64 {
	if difficulty == "Hard" {
		return 30
	}
	return 80
}

// AlgoOutcome is one algorithm run's result on a SYNTH task.
type AlgoOutcome struct {
	Algorithm string
	Best      predicate.Predicate
	Score     float64
	Elapsed   time.Duration
	// InnerAcc and OuterAcc compare against the two ground-truth cubes.
	InnerAcc, OuterAcc eval.Accuracy
	// ScorerCalls counts influence evaluations.
	ScorerCalls int64
	// Trace carries NAIVE's best-so-far curve (nil for DT/MC).
	Trace []naive.TracePoint
}

// RunAlgorithm executes one named algorithm ("naive", "dt", "mc") on a
// SYNTH dataset with SUM (the paper's §8.1 query) at the given c.
func (s Scale) RunAlgorithm(algo string, ds *synth.Dataset, c float64) (AlgoOutcome, error) {
	task, space, err := eval.SynthTask(ds, "sum", 0.5, c)
	if err != nil {
		return AlgoOutcome{}, err
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		return AlgoOutcome{}, err
	}
	out := AlgoOutcome{Algorithm: algo}
	start := time.Now()
	var best partition.Candidate
	switch algo {
	case "naive":
		res, err := naive.Run(scorer, space, naive.Params{
			Bins:     s.Bins,
			Deadline: s.NaiveDeadline,
		})
		if err != nil {
			return out, err
		}
		best = res.Best
		out.Trace = res.Trace

	case "dt":
		res, err := dt.Run(scorer, space, dt.Params{})
		if err != nil {
			return out, err
		}
		merger := merge.New(scorer, space, merge.Params{
			TopQuartileOnly:  true,
			UseApproximation: scorer.Incremental(),
		})
		merged := merger.Merge(res.Candidates)
		b, ok := partition.Top(merged)
		if !ok {
			return out, fmt.Errorf("eval: dt produced no candidates")
		}
		best = b

	case "mc":
		res, err := mc.Run(scorer, space, mc.Params{Bins: s.Bins})
		if err != nil {
			return out, err
		}
		best = res.Best

	default:
		return out, fmt.Errorf("eval: unknown algorithm %q", algo)
	}
	out.Elapsed = time.Since(start)
	out.Best = best.Pred
	out.Score = scorer.Influence(best.Pred)
	out.ScorerCalls = scorer.Calls()
	gO := eval.OutlierUnion(task)
	out.InnerAcc = eval.Score(best.Pred, ds.Table, gO, ds.InnerRows)
	out.OuterAcc = eval.Score(best.Pred, ds.Table, gO, ds.OuterRows)
	return out, nil
}
