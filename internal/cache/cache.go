// Package cache is the server-level explanation cache: a bounded LRU of
// finished results keyed by a canonical request fingerprint, plus a
// singleflight-style flight registry so N concurrent identical requests
// admit ONE search and all wait on it.
//
// The paper's intended workload is interactive (§8.3.3): a user flags
// outliers in a UI, sweeps the c slider, and re-asks. Every re-ask used to
// run a full search from scratch; with this cache a repeated request is
// served instantly and a concurrent duplicate coalesces onto the in-flight
// job instead of spending worker budget twice.
//
// Keys are opaque strings built by the caller (the HTTP server). The
// convention used there — "<table>@<generation>|<hash of the canonical
// request>" — makes invalidation structural: replacing a table bumps its
// generation so stale keys can never be hit again, and InvalidatePrefix
// proactively frees the dead entries.
//
// All methods are safe for concurrent use.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/scorpiondb/scorpion/internal/obs"
)

// DefaultCapacity is the entry bound used when New receives a
// non-positive capacity.
const DefaultCapacity = 256

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts Get calls answered from a stored entry.
	Hits int64 `json:"hits"`
	// Misses counts Get calls that found nothing.
	Misses int64 `json:"misses"`
	// Coalesced counts Join calls that attached to an existing flight
	// instead of leading a new computation.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions int64 `json:"evictions"`
	// Invalidations counts entries dropped by InvalidatePrefix or Clear.
	Invalidations int64 `json:"invalidations"`
	// Entries is the current entry count.
	Entries int `json:"entries"`
	// Bytes is the summed size estimate of the stored entries.
	Bytes int64 `json:"bytes"`
	// Capacity is the entry bound.
	Capacity int `json:"capacity"`
}

// entry is one stored value.
type entry struct {
	key  string
	val  any
	size int64
}

// Cache is a bounded LRU with flight coalescing. Create one with New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	flights  map[string]*Flight
	bytes    int64

	hits, misses, coalesced, evictions, invalidations int64
}

// New builds a cache bounded to capacity entries (<= 0 means
// DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*Flight),
	}
}

// Capacity returns the entry bound.
func (c *Cache) Capacity() int { return c.capacity }

// Get returns the value stored under key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key with the given size estimate, evicting the
// least recently used entries beyond the capacity bound.
func (c *Cache) Put(key string, val any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.val, e.size = val, size
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
	c.bytes += size
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
}

// GetOrCreate returns the value under key, creating and storing mk()'s
// result when absent. mk runs under the cache lock — keep it cheap (the
// server uses it to allocate empty session shells, not to run searches).
func (c *Cache) GetOrCreate(key string, size int64, mk func() any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry).val
	}
	val := mk()
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, size: size})
	c.bytes += size
	for c.ll.Len() > c.capacity {
		c.removeLocked(c.ll.Back())
		c.evictions++
	}
	return val
}

// removeLocked unlinks one element; callers hold c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// InvalidatePrefix drops every entry whose key starts with prefix and
// returns how many were dropped. The server invalidates "<table>@" when a
// table is uploaded over, replaced, or unloaded.
func (c *Cache) InvalidatePrefix(prefix string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); len(e.key) >= len(prefix) && e.key[:len(prefix)] == prefix {
			c.removeLocked(el)
			n++
		}
		el = next
	}
	c.invalidations += int64(n)
	return n
}

// Clear drops every entry and returns how many were dropped. In-flight
// computations are not touched; they deregister themselves when they
// finish (their results will simply repopulate the cache).
func (c *Cache) Clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.bytes = 0
	c.invalidations += int64(n)
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Coalesced:     c.coalesced,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
		Capacity:      c.capacity,
	}
}

// RegisterMetrics wires the cache's counters into a registry as
// scrape-time collectors: the cache keeps its cheap private counters on
// the serving path, and every exposition reads one consistent Stats
// snapshot — no double accounting, no per-Get registry traffic. The name
// label distinguishes multiple caches in one process.
func (c *Cache) RegisterMetrics(reg *obs.Registry, name string) {
	if reg == nil {
		return
	}
	reg.RegisterFunc(func(emit obs.EmitFunc) { c.EmitMetrics(emit, name) })
}

// EmitMetrics emits one consistent Stats snapshot through emit. Callers
// whose cache pointer can be swapped at runtime (the server's
// ConfigureCache) register their own collector func and call this on
// whichever cache is current — RegisterMetrics would pin the original
// pointer forever. Safe on a nil receiver (emits nothing).
func (c *Cache) EmitMetrics(emit obs.EmitFunc, name string) {
	if c == nil {
		return
	}
	st := c.Stats()
	emit("scorpion_cache_hits_total", "counter", float64(st.Hits), "cache", name)
	emit("scorpion_cache_misses_total", "counter", float64(st.Misses), "cache", name)
	emit("scorpion_cache_coalesced_total", "counter", float64(st.Coalesced), "cache", name)
	emit("scorpion_cache_evictions_total", "counter", float64(st.Evictions), "cache", name)
	emit("scorpion_cache_invalidations_total", "counter", float64(st.Invalidations), "cache", name)
	emit("scorpion_cache_entries", "gauge", float64(st.Entries), "cache", name)
	emit("scorpion_cache_bytes", "gauge", float64(st.Bytes), "cache", name)
}

// --- flights (request coalescing) --------------------------------------

// Flight is one in-progress computation of a cache key. The first caller
// to Join a key leads the flight: it starts the real work, Publishes a
// payload (the server publishes the admitted job) for followers to attach
// to, and Forgets the flight once the work reaches a terminal state.
// Followers Join the same key, read the payload, and wait on the shared
// work instead of admitting their own.
type Flight struct {
	c   *Cache
	key string

	published chan struct{} // closed once payload (or abandonment) is set
	payload   any

	forgotten atomic.Bool
}

// Join returns the flight registered under key, creating it when absent.
// leader is true for the caller that created the flight — that caller MUST
// eventually call Publish (or Abandon) and then Forget, or followers will
// block and future requests will coalesce onto a dead flight.
func (c *Cache) Join(key string) (f *Flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		c.coalesced++
		return f, false
	}
	f = &Flight{c: c, key: key, published: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// Publish hands followers the leader's payload (for the server: the
// admitted *jobs.Job every coalesced request waits on).
func (f *Flight) Publish(payload any) {
	f.payload = payload
	close(f.published)
}

// Abandon resolves the flight with no payload — the leader failed to start
// the work (e.g. the scheduler shed the job). Followers receive a nil
// payload and fall back to their own admission. The flight is forgotten.
func (f *Flight) Abandon() {
	close(f.published)
	f.Forget()
}

// Payload blocks until the leader Publishes or Abandons, then returns the
// payload (nil when abandoned).
func (f *Flight) Payload() any {
	<-f.published
	return f.payload
}

// Forget deregisters the flight so future Joins lead a fresh computation.
// Idempotent; a racing Join that already created a successor flight is
// left untouched.
func (f *Flight) Forget() {
	if !f.forgotten.CompareAndSwap(false, true) {
		return
	}
	f.c.mu.Lock()
	if cur, ok := f.c.flights[f.key]; ok && cur == f {
		delete(f.c.flights, f.key)
	}
	f.c.mu.Unlock()
}

// InFlight reports how many flights are currently registered.
func (c *Cache) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}
