package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetPutLRU(t *testing.T) {
	c := New(2)
	c.Put("a@1|x", 1, 10)
	c.Put("b@1|y", 2, 20)
	if v, ok := c.Get("a@1|x"); !ok || v != 1 {
		t.Fatalf("Get a = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting a third entry evicts it.
	c.Put("c@1|z", 3, 30)
	if _, ok := c.Get("b@1|y"); ok {
		t.Fatal("LRU entry b survived beyond capacity")
	}
	if _, ok := c.Get("a@1|x"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes != 40 { // a(10) + c(30); b's 20 went with the eviction
		t.Errorf("bytes = %d, want 40", st.Bytes)
	}
}

func TestPutReplaceAdjustsBytes(t *testing.T) {
	c := New(4)
	c.Put("k", "old", 100)
	c.Put("k", "new", 7)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 7 {
		t.Errorf("stats after replace = %+v", st)
	}
	if v, _ := c.Get("k"); v != "new" {
		t.Errorf("value = %v", v)
	}
}

func TestInvalidatePrefix(t *testing.T) {
	c := New(16)
	c.Put("sensors@1|aaa", 1, 1)
	c.Put("sensors@1|bbb", 2, 1)
	c.Put("sensors@2|ccc", 3, 1)
	c.Put("expenses@1|ddd", 4, 1)
	if n := c.InvalidatePrefix("sensors@"); n != 3 {
		t.Fatalf("invalidated %d, want 3", n)
	}
	if _, ok := c.Get("expenses@1|ddd"); !ok {
		t.Fatal("unrelated entry was invalidated")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Invalidations != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClear(t *testing.T) {
	c := New(16)
	c.Put("a", 1, 5)
	c.Put("b", 2, 5)
	if n := c.Clear(); n != 2 {
		t.Fatalf("cleared %d, want 2", n)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after clear = %+v", st)
	}
}

func TestGetOrCreate(t *testing.T) {
	c := New(16)
	made := 0
	mk := func() any { made++; return made }
	if v := c.GetOrCreate("s", 1, mk); v != 1 {
		t.Fatalf("first GetOrCreate = %v", v)
	}
	if v := c.GetOrCreate("s", 1, mk); v != 1 {
		t.Fatalf("second GetOrCreate = %v (created a duplicate)", v)
	}
	if made != 1 {
		t.Errorf("mk ran %d times", made)
	}
}

// TestJoinCoalesces is the coalescing contract under -race: N concurrent
// Joins of one key elect exactly one leader, every follower observes the
// leader's payload, and after Forget a fresh Join leads again.
func TestJoinCoalesces(t *testing.T) {
	c := New(16)
	const n = 32
	var leaders, followers atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			f, leader := c.Join("key")
			if leader {
				leaders.Add(1)
				f.Publish("the-job")
				return
			}
			followers.Add(1)
			if p := f.Payload(); p != "the-job" {
				t.Errorf("follower payload = %v", p)
			}
		}()
	}
	close(start)
	wg.Wait()
	if leaders.Load() != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders.Load())
	}
	if followers.Load() != n-1 {
		t.Fatalf("followers = %d, want %d", followers.Load(), n-1)
	}
	if got := c.Stats().Coalesced; got != n-1 {
		t.Errorf("coalesced stat = %d, want %d", got, n-1)
	}

	// The flight is still registered (leader has not Forgotten it yet):
	// late joiners keep attaching to it.
	if f, leader := c.Join("key"); leader {
		t.Fatal("late Join led a second flight while the first was live")
	} else if f.Payload() != "the-job" {
		t.Fatal("late Join saw the wrong payload")
	}

	// After Forget, the next Join leads a fresh flight.
	f, _ := c.Join("key")
	f.Forget()
	if c.InFlight() != 0 {
		t.Fatalf("in-flight = %d after Forget", c.InFlight())
	}
	if _, leader := c.Join("key"); !leader {
		t.Fatal("Join after Forget did not lead")
	}
}

// TestAbandon checks followers of an abandoned flight observe a nil
// payload (their cue to admit their own work).
func TestAbandon(t *testing.T) {
	c := New(16)
	f, leader := c.Join("key")
	if !leader {
		t.Fatal("first Join must lead")
	}
	done := make(chan any, 1)
	f2, leader2 := c.Join("key")
	if leader2 {
		t.Fatal("second Join led")
	}
	go func() { done <- f2.Payload() }()
	f.Abandon()
	if p := <-done; p != nil {
		t.Fatalf("abandoned payload = %v, want nil", p)
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight = %d after Abandon", c.InFlight())
	}
}

// TestForgetIdempotentUnderRace hammers Forget from many goroutines while
// new Joins create successor flights; successor registrations must never
// be deleted by a stale Forget.
func TestForgetIdempotentUnderRace(t *testing.T) {
	c := New(16)
	for round := 0; round < 50; round++ {
		f, leader := c.Join("key")
		if !leader {
			t.Fatal("expected to lead")
		}
		f.Publish(round)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); f.Forget() }()
		}
		wg.Wait()
		if c.InFlight() != 0 {
			t.Fatalf("round %d: in-flight = %d", round, c.InFlight())
		}
	}
}

// TestConcurrentMixedUse runs Get/Put/Invalidate/Join concurrently so the
// race detector can inspect the locking.
func TestConcurrentMixedUse(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("t%d@1|%d", g%2, i%16)
				switch i % 4 {
				case 0:
					c.Put(key, i, int64(i%32))
				case 1:
					c.Get(key)
				case 2:
					if f, leader := c.Join(key); leader {
						f.Publish(i)
						f.Forget()
					} else {
						f.Payload()
					}
				case 3:
					c.InvalidatePrefix("t0@")
				}
			}
		}(g)
	}
	wg.Wait()
}
