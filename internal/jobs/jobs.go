// Package jobs is an asynchronous job service with a global worker
// scheduler: long-running searches are enqueued as jobs, admitted FIFO
// against one process-wide worker budget, and observable (status, progress,
// best-so-far results) while they run. It turns the blocking
// one-connection-per-search server of the paper's §4.1 tool into a queued
// serving layer — the "batch/async explain API" direction of the ROADMAP.
//
// The scheduler enforces two bounds:
//
//   - a worker budget: the summed worker grants of all running jobs never
//     exceed Budget, so concurrent searches share the machine instead of
//     each allocating its own pool;
//   - a queue depth: Submit fails with ErrQueueFull once QueueCap jobs are
//     waiting, so callers can shed load (HTTP 429) instead of queueing
//     unboundedly.
//
// Admission is strictly FIFO: a large job at the head waits for enough
// free workers rather than being starved by smaller jobs slipping past it.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/scorpiondb/scorpion/internal/obs"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued means the job waits for worker budget.
	StatusQueued Status = "queued"
	// StatusRunning means the job holds workers and is searching.
	StatusRunning Status = "running"
	// StatusDone means the job finished successfully.
	StatusDone Status = "done"
	// StatusFailed means the job's run returned a non-context error.
	StatusFailed Status = "failed"
	// StatusCanceled means the job was canceled (while queued or running).
	StatusCanceled Status = "canceled"
	// StatusTimeout means the job's own deadline expired mid-run; its
	// result, if any, holds the best answer found before the cut.
	StatusTimeout Status = "timeout"
)

// Terminal reports whether a status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusTimeout:
		return true
	}
	return false
}

// ErrQueueFull is returned by Submit when the waiting queue is at capacity.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: scheduler closed")

// Task describes one unit of schedulable work.
type Task struct {
	// Kind labels the work ("explain"); informational.
	Kind string
	// Table names the dataset the job runs against; informational.
	Table string
	// RequestID is the originating request's correlation id (the HTTP
	// X-Request-ID); informational, echoed in views and logs.
	RequestID string
	// Workers is the requested worker budget. It is clamped to
	// [1, scheduler budget] at admission; the granted value is what Run
	// receives.
	Workers int
	// Timeout bounds the run once started (0 = none). Queue wait does not
	// count against it.
	Timeout time.Duration
	// Run does the work. ctx is canceled by job cancellation, scheduler
	// shutdown, or Timeout; workers is the granted budget; report
	// publishes an opaque progress snapshot readable through Job.View
	// while the job runs. Run may return a non-nil result together with a
	// context error to expose best-so-far partial answers.
	Run func(ctx context.Context, workers int, report func(any)) (any, error)
	// OnDone, when non-nil, runs synchronously with the job's final result
	// and error on EVERY terminal path (done, failed, canceled — even
	// canceled while still queued), strictly before the job's Done channel
	// closes. Waiters that observe Done therefore observe OnDone's effects
	// — the server relies on this to populate its result cache before any
	// waiter can re-ask. It runs under scheduler locks: keep it fast and
	// never call back into the scheduler.
	OnDone func(result any, err error)
}

// Job is one submitted task. All exported methods are safe for concurrent
// use.
type Job struct {
	id     string
	task   Task
	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}
	// instant marks SubmitDone (cache-hit) jobs, which retire through the
	// scheduler's instant retention ring instead of the regular one.
	instant bool

	mu       sync.Mutex
	status   Status
	granted  int
	created  time.Time
	started  time.Time
	finished time.Time
	progress any
	result   any
	err      error
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the run's outcome; valid once Done is closed. The result
// may be non-nil even when err is a context error (partial best-so-far).
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// View is a point-in-time copy of a job's observable state.
type View struct {
	ID       string
	Kind     string
	Table    string
	Status   Status
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Workers is the granted budget (0 while queued).
	Workers int
	// RequestID is the submitting request's correlation id, if any.
	RequestID string
	// QueuedFor is how long the job waited for admission: started-created
	// once running, finished-created for jobs canceled while queued, and
	// elapsed-so-far while still waiting. It separates admission stalls
	// from slow searches when diagnosing timeouts.
	QueuedFor time.Duration
	// RanFor is the run duration: finished-started once terminal,
	// elapsed-so-far while running, 0 for jobs that never started.
	RanFor time.Duration
	// QueuePos is the job's 1-based position in the admission queue while
	// Status is queued (1 = next to be admitted); 0 otherwise. Filled by
	// Scheduler.Jobs and Scheduler.ViewOf — a Job alone cannot know it.
	QueuePos int
	// Progress is the latest report from the running task, if any.
	Progress any
	// Result is the task's outcome once terminal.
	Result any
	// Err is the task's error once terminal.
	Err error
}

// View snapshots the job.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.id,
		Kind:      j.task.Kind,
		Table:     j.task.Table,
		Status:    j.status,
		Created:   j.created,
		Started:   j.started,
		Finished:  j.finished,
		Workers:   j.granted,
		RequestID: j.task.RequestID,
		Progress:  j.progress,
		Result:    j.result,
		Err:       j.err,
	}
	now := time.Now()
	switch {
	case !j.started.IsZero():
		v.QueuedFor = j.started.Sub(j.created)
		if !j.finished.IsZero() {
			v.RanFor = j.finished.Sub(j.started)
		} else {
			v.RanFor = now.Sub(j.started)
		}
	case !j.finished.IsZero():
		// Terminal without ever running (canceled while queued, or an
		// instant cache-hit job): the whole lifetime was queue wait.
		v.QueuedFor = j.finished.Sub(j.created)
	default:
		v.QueuedFor = now.Sub(j.created)
	}
	return v
}

// report stores the latest progress snapshot.
func (j *Job) report(v any) {
	j.mu.Lock()
	j.progress = v
	j.mu.Unlock()
}

// Scheduler admits jobs against a global worker budget. Create one with
// New and share it across all request handlers.
type Scheduler struct {
	budget   int
	queueCap int
	retain   int
	baseCtx  context.Context
	stop     context.CancelFunc

	met metrics

	mu       sync.Mutex
	closed   bool
	inUse    int
	seq      int64
	queue    []*Job
	jobs     map[string]*Job
	finished []string // terminal job ids, oldest first, for retention pruning
	// instant holds SubmitDone (cache-hit) job ids in their own retention
	// ring: unbounded hit traffic must not evict real finished jobs that
	// clients still poll.
	instant []string
}

// Options tunes a scheduler.
type Options struct {
	// Budget is the global worker budget; <= 0 means GOMAXPROCS.
	Budget int
	// QueueCap bounds the number of waiting (not running) jobs; <= 0
	// means 64.
	QueueCap int
	// Retain caps how many terminal jobs stay queryable; <= 0 means 256.
	// The oldest finished jobs are evicted first; queued and running jobs
	// are never evicted.
	Retain int
}

// New builds a scheduler with the given options.
func New(opts Options) *Scheduler {
	if opts.Budget <= 0 {
		opts.Budget = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.Retain <= 0 {
		opts.Retain = 256
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		budget:   opts.Budget,
		queueCap: opts.QueueCap,
		retain:   opts.Retain,
		baseCtx:  ctx,
		stop:     cancel,
		jobs:     make(map[string]*Job),
	}
}

// metrics holds the scheduler's pre-resolved instruments; the zero value
// (telemetry off) is all nil and every operation no-ops.
type metrics struct {
	submitted *obs.Counter
	queueWait *obs.Histogram
	runTime   *obs.Histogram
	reg       *obs.Registry
}

// SetRegistry wires the scheduler into a metrics registry: admission,
// rejection (429) and completion counters, queue-wait and run-time
// histograms, and scrape-time queue-depth / in-use-worker gauges. Call
// once, before serving traffic.
func (s *Scheduler) SetRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.met = metrics{
		submitted: reg.Counter("scorpion_jobs_submitted_total"),
		queueWait: reg.Histogram("scorpion_jobs_queue_wait_seconds", nil),
		runTime:   reg.Histogram("scorpion_jobs_run_seconds", nil),
		reg:       reg,
	}
	reg.RegisterFunc(func(emit obs.EmitFunc) {
		s.mu.Lock()
		depth, inUse := len(s.queue), s.inUse
		s.mu.Unlock()
		emit("scorpion_jobs_queue_depth", "gauge", float64(depth))
		emit("scorpion_jobs_workers_in_use", "gauge", float64(inUse))
		emit("scorpion_jobs_worker_budget", "gauge", float64(s.budget))
	})
}

// Closed reports whether the scheduler has been shut down (used by
// liveness probes).
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Budget returns the global worker budget.
func (s *Scheduler) Budget() int { return s.budget }

// InUse returns the summed worker grants of currently running jobs. It is
// the scheduler's invariant that InUse never exceeds Budget.
func (s *Scheduler) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inUse
}

// QueueLen returns the number of jobs waiting for admission.
func (s *Scheduler) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Submit enqueues a task and returns its job. It fails fast with
// ErrQueueFull when the waiting queue is at capacity and ErrClosed after
// Close. The job may start running before Submit returns.
func (s *Scheduler) Submit(task Task) (*Job, error) {
	if task.Run == nil {
		return nil, fmt.Errorf("jobs: task has no Run")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.met.reg.Counter("scorpion_jobs_rejected_total", "reason", "closed").Inc()
		return nil, ErrClosed
	}
	if len(s.queue) >= s.queueCap {
		s.met.reg.Counter("scorpion_jobs_rejected_total", "reason", "queue_full").Inc()
		return nil, ErrQueueFull
	}
	s.met.submitted.Inc()
	job := s.newJobLocked(task)
	s.queue = append(s.queue, job)
	s.pruneLocked()
	s.dispatchLocked()
	return job, nil
}

// newJobLocked constructs and registers a queued job; callers hold s.mu.
func (s *Scheduler) newJobLocked(task Task) *Job {
	s.seq++
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		id:      fmt.Sprintf("job-%d", s.seq),
		task:    task,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusQueued,
		created: time.Now(),
	}
	s.jobs[job.id] = job
	return job
}

// SubmitDone registers a task as an already-completed job carrying result
// — the serving path for cache hits. The job is terminal (StatusDone) the
// moment Submit returns: it is queryable and cancelable like any other
// retained job, but consumed no queue slot and no worker budget, and its
// Run (which may be nil) is never invoked. These jobs retire through
// their own retention ring, so a flood of them can never evict a real
// finished job a client is still polling.
func (s *Scheduler) SubmitDone(task Task, result any) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	// The closures are never invoked on this path; drop them so a retained
	// instant job does not pin the task's captures (for the server: the
	// compiled request and its table) beyond the data's lifetime.
	task.Run = nil
	task.OnDone = nil
	job := s.newJobLocked(task)
	job.instant = true
	s.finalizeLocked(job, result, nil, StatusDone)
	return job, nil
}

// Get resolves a job id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// positionLocked returns a job id's 1-based admission-queue position, or 0
// when it is not queued; callers hold s.mu.
func (s *Scheduler) positionLocked(id string) int {
	for i, j := range s.queue {
		if j.id == id {
			return i + 1
		}
	}
	return 0
}

// Position reports a queued job's 1-based position in the admission queue
// (1 = next to be admitted once budget frees); 0 when the id is unknown or
// the job is no longer queued. Clients waiting under load use it to see
// where they stand.
func (s *Scheduler) Position(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.positionLocked(id)
}

// ViewOf snapshots a job by id with its queue position filled in — what
// the HTTP status endpoint serves.
func (s *Scheduler) ViewOf(id string) (View, bool) {
	s.mu.Lock()
	job, ok := s.jobs[id]
	var pos int
	if ok {
		pos = s.positionLocked(id)
	}
	s.mu.Unlock()
	if !ok {
		return View{}, false
	}
	v := job.View()
	if v.Status == StatusQueued {
		v.QueuePos = pos
	}
	return v, true
}

// Jobs lists all retained jobs, oldest submission first. Queued jobs carry
// their admission-queue position (View.QueuePos).
func (s *Scheduler) Jobs() []View {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	pos := make(map[string]int, len(s.queue))
	for i, j := range s.queue {
		pos[j.id] = i + 1
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
		if views[i].Status == StatusQueued {
			views[i].QueuePos = pos[views[i].ID]
		}
	}
	// ids are "job-<seq>"; sort by creation time instead of parsing.
	for i := 1; i < len(views); i++ {
		for k := i; k > 0 && views[k].Created.Before(views[k-1].Created); k-- {
			views[k], views[k-1] = views[k-1], views[k]
		}
	}
	return views
}

// Cancel cancels a job: a queued job becomes canceled without running, a
// running job has its context canceled (its Run decides how fast to stop).
// It reports whether the id was known and not already terminal.
func (s *Scheduler) Cancel(id string) bool {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	job.mu.Lock()
	terminal := job.status.Terminal()
	queued := job.status == StatusQueued
	job.mu.Unlock()
	if terminal {
		s.mu.Unlock()
		return false
	}
	if queued {
		// Drop it from the queue so it never runs. Canceling the head can
		// unblock smaller jobs behind it, so re-dispatch before unlocking.
		for i, q := range s.queue {
			if q == job {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.finalizeLocked(job, nil, context.Canceled, StatusCanceled)
		s.dispatchLocked()
		s.mu.Unlock()
		return true
	}
	s.mu.Unlock()
	job.cancel()
	return true
}

// Remove forgets a terminal job, reporting whether it was removed. Queued
// and running jobs cannot be removed — cancel them first.
func (s *Scheduler) Remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return false
	}
	job.mu.Lock()
	terminal := job.status.Terminal()
	job.mu.Unlock()
	if !terminal {
		return false
	}
	delete(s.jobs, id)
	for i, fid := range s.finished {
		if fid == id {
			s.finished = append(s.finished[:i], s.finished[i+1:]...)
			return true
		}
	}
	for i, fid := range s.instant {
		if fid == id {
			s.instant = append(s.instant[:i], s.instant[i+1:]...)
			break
		}
	}
	return true
}

// Close cancels every queued and running job and rejects new submissions.
// It does not wait for running jobs to finish; use their Done channels.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	queued := s.queue
	s.queue = nil
	for _, job := range queued {
		s.finalizeLocked(job, nil, context.Canceled, StatusCanceled)
	}
	s.mu.Unlock()
	s.stop() // cancels baseCtx → every running job's ctx
}

// dispatchLocked admits queued jobs FIFO while worker budget allows;
// callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 {
		head := s.queue[0]
		if head.ctx.Err() != nil {
			// Canceled while queued through the context (Close or a racing
			// cancel); finalize without running.
			s.queue = s.queue[1:]
			s.finalizeLocked(head, nil, context.Canceled, StatusCanceled)
			continue
		}
		grant := head.task.Workers
		if grant < 1 {
			grant = 1
		}
		if grant > s.budget {
			grant = s.budget
		}
		if s.inUse+grant > s.budget {
			return // head-of-line waits; no skipping
		}
		s.queue = s.queue[1:]
		s.inUse += grant
		head.mu.Lock()
		head.status = StatusRunning
		head.granted = grant
		head.started = time.Now()
		s.met.queueWait.Observe(head.started.Sub(head.created).Seconds())
		head.mu.Unlock()
		go s.run(head, grant)
	}
}

// run executes one admitted job and releases its workers.
func (s *Scheduler) run(job *Job, grant int) {
	ctx := job.ctx
	cancel := func() {}
	if job.task.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, job.task.Timeout)
	}
	result, err := job.task.Run(ctx, grant, job.report)
	cancel()

	status := StatusDone
	switch {
	case err == nil:
		status = StatusDone
	case errors.Is(err, context.DeadlineExceeded):
		status = StatusTimeout
	case errors.Is(err, context.Canceled):
		status = StatusCanceled
	default:
		status = StatusFailed
	}
	s.mu.Lock()
	s.inUse -= grant
	s.finalizeLocked(job, result, err, status)
	s.dispatchLocked()
	s.mu.Unlock()
}

// finalizeLocked moves a job to a terminal status; callers hold s.mu.
func (s *Scheduler) finalizeLocked(job *Job, result any, err error, status Status) {
	job.mu.Lock()
	if job.status.Terminal() {
		job.mu.Unlock()
		return
	}
	job.status = status
	job.result = result
	job.err = err
	job.finished = time.Now()
	if !job.started.IsZero() {
		s.met.runTime.Observe(job.finished.Sub(job.started).Seconds())
	}
	if !job.instant {
		s.met.reg.Counter("scorpion_jobs_completed_total", "status", string(status)).Inc()
	}
	job.mu.Unlock()
	// Release the job's context so it deregisters from baseCtx — without
	// this every completed job would stay in baseCtx's children for the
	// scheduler's lifetime.
	job.cancel()
	// Instant (cache-hit) jobs retire through their own ring so a flood
	// of them can never evict — not even transiently — a real finished
	// job a client still polls.
	if job.instant {
		s.instant = append(s.instant, job.id)
	} else {
		s.finished = append(s.finished, job.id)
	}
	if job.task.OnDone != nil {
		job.task.OnDone(result, err)
	}
	close(job.done)
	s.pruneLocked()
}

// pruneLocked evicts the oldest terminal jobs beyond the retention cap —
// each ring against its own cap; callers hold s.mu.
func (s *Scheduler) pruneLocked() {
	for len(s.finished) > s.retain {
		id := s.finished[0]
		s.finished = s.finished[1:]
		delete(s.jobs, id)
	}
	for len(s.instant) > s.retain {
		id := s.instant[0]
		s.instant = s.instant[1:]
		delete(s.jobs, id)
	}
}
