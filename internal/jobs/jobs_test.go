package jobs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingTask returns a task whose Run blocks until release is closed (or
// its ctx is canceled), recording concurrency in running/maxRunning.
func blockingTask(workers int, release <-chan struct{}, running, maxRunning *atomic.Int64) Task {
	return Task{
		Kind:    "test",
		Workers: workers,
		Run: func(ctx context.Context, granted int, report func(any)) (any, error) {
			n := running.Add(1)
			for {
				old := maxRunning.Load()
				if n <= old || maxRunning.CompareAndSwap(old, n) {
					break
				}
			}
			defer running.Add(-1)
			select {
			case <-release:
				return granted, nil
			case <-ctx.Done():
				return granted, ctx.Err()
			}
		},
	}
}

func waitStatus(t *testing.T, j *Job, want Status) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		if j.View().Status == want {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck at %s, want %s", j.ID(), j.View().Status, want)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestBudgetNeverExceeded submits more demand than the budget and checks
// the scheduler's worker accounting (InUse) and the actual number of
// concurrently running tasks both respect the global budget.
func TestBudgetNeverExceeded(t *testing.T) {
	s := New(Options{Budget: 4, QueueCap: 32})
	defer s.Close()
	release := make(chan struct{})
	var running, maxRunning atomic.Int64
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(blockingTask(2, release, &running, &maxRunning))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	// 4 budget / 2 workers each → exactly 2 jobs admitted.
	waitStatus(t, jobs[0], StatusRunning)
	waitStatus(t, jobs[1], StatusRunning)
	if got := s.InUse(); got != 4 {
		t.Errorf("InUse = %d, want 4", got)
	}
	if got := jobs[2].View().Status; got != StatusQueued {
		t.Errorf("job 3 status = %s, want queued", got)
	}
	if got := s.QueueLen(); got != 4 {
		t.Errorf("QueueLen = %d, want 4", got)
	}
	close(release)
	for _, j := range jobs {
		<-j.Done()
		if res, err := j.Result(); err != nil || res.(int) != 2 {
			t.Errorf("job %s result = %v, %v", j.ID(), res, err)
		}
	}
	if got := maxRunning.Load(); got > 2 {
		t.Errorf("max concurrent jobs = %d, want <= 2 (budget 4, 2 workers each)", got)
	}
	if got := s.InUse(); got != 0 {
		t.Errorf("InUse after drain = %d", got)
	}
}

// TestFIFONoSkipping checks a small job cannot starve a large job waiting
// at the head of the queue.
func TestFIFONoSkipping(t *testing.T) {
	s := New(Options{Budget: 4, QueueCap: 8})
	defer s.Close()
	var running, maxRunning atomic.Int64
	relA := make(chan struct{})
	a, _ := s.Submit(blockingTask(3, relA, &running, &maxRunning))
	waitStatus(t, a, StatusRunning)

	relB := make(chan struct{})
	b, _ := s.Submit(blockingTask(4, relB, &running, &maxRunning)) // needs full budget
	relC := make(chan struct{})
	c, _ := s.Submit(blockingTask(1, relC, &running, &maxRunning)) // would fit now

	time.Sleep(20 * time.Millisecond)
	if got := b.View().Status; got != StatusQueued {
		t.Fatalf("b = %s, want queued", got)
	}
	if got := c.View().Status; got != StatusQueued {
		t.Fatalf("c = %s, want queued (FIFO: must not skip b)", got)
	}

	close(relA)
	waitStatus(t, b, StatusRunning)
	if got := s.InUse(); got != 4 {
		t.Errorf("InUse with b running = %d", got)
	}
	close(relB)
	waitStatus(t, c, StatusRunning)
	close(relC)
	<-c.Done()
}

// TestCancelQueuedHeadUnblocksQueue checks liveness: canceling a large
// job waiting at the queue head immediately admits the smaller jobs
// behind it, without waiting for an unrelated scheduler event.
func TestCancelQueuedHeadUnblocksQueue(t *testing.T) {
	s := New(Options{Budget: 4, QueueCap: 8})
	defer s.Close()
	var running, maxRunning atomic.Int64
	relA := make(chan struct{})
	defer close(relA)
	a, _ := s.Submit(blockingTask(2, relA, &running, &maxRunning))
	waitStatus(t, a, StatusRunning)

	relB := make(chan struct{})
	defer close(relB)
	b, _ := s.Submit(blockingTask(4, relB, &running, &maxRunning)) // blocked head
	relC := make(chan struct{})
	defer close(relC)
	c, _ := s.Submit(blockingTask(1, relC, &running, &maxRunning)) // fits, behind b

	time.Sleep(10 * time.Millisecond)
	if got := c.View().Status; got != StatusQueued {
		t.Fatalf("c = %s before cancel, want queued (FIFO)", got)
	}
	if !s.Cancel(b.ID()) {
		t.Fatal("Cancel(b) = false")
	}
	// c must start without anything else finishing or being submitted.
	waitStatus(t, c, StatusRunning)
}

// TestQueueFull checks the 429 path: a full queue rejects fast.
func TestQueueFull(t *testing.T) {
	s := New(Options{Budget: 1, QueueCap: 2})
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	var running, maxRunning atomic.Int64
	head, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	waitStatus(t, head, StatusRunning)
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(blockingTask(1, release, &running, &maxRunning)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(blockingTask(1, release, &running, &maxRunning)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

// TestCancelQueuedAndRunning covers both cancel paths.
func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Options{Budget: 1, QueueCap: 8})
	defer s.Close()
	release := make(chan struct{})
	defer close(release)
	var running, maxRunning atomic.Int64
	a, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	waitStatus(t, a, StatusRunning)
	b, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))

	// Queued cancel: b never runs.
	if !s.Cancel(b.ID()) {
		t.Fatal("Cancel(queued) = false")
	}
	<-b.Done()
	if v := b.View(); v.Status != StatusCanceled || !v.Started.IsZero() {
		t.Errorf("b = %+v, want canceled before start", v)
	}
	if s.Cancel(b.ID()) {
		t.Error("second Cancel returned true")
	}

	// Running cancel: a's ctx fires, Run returns ctx.Err.
	if !s.Cancel(a.ID()) {
		t.Fatal("Cancel(running) = false")
	}
	<-a.Done()
	if got := a.View().Status; got != StatusCanceled {
		t.Errorf("a = %s, want canceled", got)
	}
	if _, err := a.Result(); !errors.Is(err, context.Canceled) {
		t.Errorf("a err = %v", err)
	}
	if got := s.InUse(); got != 0 {
		t.Errorf("InUse = %d after cancels", got)
	}
}

// TestTimeoutKeepsPartialResult checks a job cut by its own deadline ends
// as timeout and keeps the partial result its Run returned.
func TestTimeoutKeepsPartialResult(t *testing.T) {
	s := New(Options{Budget: 1})
	defer s.Close()
	j, err := s.Submit(Task{
		Kind:    "test",
		Workers: 1,
		Timeout: 10 * time.Millisecond,
		Run: func(ctx context.Context, _ int, _ func(any)) (any, error) {
			<-ctx.Done()
			return "partial", ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if got := j.View().Status; got != StatusTimeout {
		t.Fatalf("status = %s, want timeout", got)
	}
	if res, err := j.Result(); res != "partial" || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("result = %v, %v", res, err)
	}
}

// TestProgressReports checks mid-run reports surface through View.
func TestProgressReports(t *testing.T) {
	s := New(Options{Budget: 1})
	defer s.Close()
	reported := make(chan struct{})
	release := make(chan struct{})
	j, _ := s.Submit(Task{
		Kind:    "test",
		Workers: 1,
		Run: func(ctx context.Context, _ int, report func(any)) (any, error) {
			report("halfway")
			close(reported)
			<-release
			return "full", nil
		},
	})
	<-reported
	if got := j.View().Progress; got != "halfway" {
		t.Errorf("progress = %v", got)
	}
	close(release)
	<-j.Done()
	if v := j.View(); v.Status != StatusDone || v.Result != "full" {
		t.Errorf("final view = %+v", v)
	}
}

// TestCloseCancelsEverything checks shutdown: queued jobs are canceled
// without running, running jobs see their context fire, and new submits
// are rejected.
func TestCloseCancelsEverything(t *testing.T) {
	s := New(Options{Budget: 1, QueueCap: 8})
	release := make(chan struct{})
	defer close(release)
	var running, maxRunning atomic.Int64
	a, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	waitStatus(t, a, StatusRunning)
	b, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	s.Close()
	<-a.Done()
	<-b.Done()
	if got := a.View().Status; got != StatusCanceled {
		t.Errorf("running job after Close = %s", got)
	}
	if got := b.View().Status; got != StatusCanceled {
		t.Errorf("queued job after Close = %s", got)
	}
	if _, err := s.Submit(Task{Run: func(context.Context, int, func(any)) (any, error) { return nil, nil }}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v", err)
	}
}

// TestRetention checks terminal jobs are pruned beyond the cap while live
// jobs survive.
func TestRetention(t *testing.T) {
	s := New(Options{Budget: 2, QueueCap: 8, Retain: 2})
	defer s.Close()
	for i := 0; i < 5; i++ {
		j, err := s.Submit(Task{Run: func(context.Context, int, func(any)) (any, error) { return nil, nil }})
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
	}
	// Everything is terminal; only the 2 newest should remain.
	views := s.Jobs()
	if len(views) != 2 {
		t.Fatalf("retained %d jobs, want 2: %+v", len(views), views)
	}
	if !views[0].Created.Before(views[1].Created) && !views[0].Created.Equal(views[1].Created) {
		t.Errorf("Jobs not in submission order: %+v", views)
	}
}

// TestRemove checks terminal jobs can be deleted and live ones cannot.
func TestRemove(t *testing.T) {
	s := New(Options{Budget: 1})
	defer s.Close()
	release := make(chan struct{})
	var running, maxRunning atomic.Int64
	live, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	waitStatus(t, live, StatusRunning)
	if s.Remove(live.ID()) {
		t.Error("removed a running job")
	}
	close(release)
	<-live.Done()
	if !s.Remove(live.ID()) {
		t.Error("Remove(terminal) = false")
	}
	if _, ok := s.Get(live.ID()); ok {
		t.Error("job still resolvable after Remove")
	}
}

// TestConcurrentSubmitters hammers the scheduler from many goroutines under
// the race detector and re-checks the budget invariant.
func TestConcurrentSubmitters(t *testing.T) {
	s := New(Options{Budget: 3, QueueCap: 1024})
	defer s.Close()
	var running, maxRunning atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j, err := s.Submit(Task{
					Workers: 1 + (i % 3),
					Run: func(ctx context.Context, granted int, _ func(any)) (any, error) {
						n := running.Add(int64(granted))
						for {
							old := maxRunning.Load()
							if n <= old || maxRunning.CompareAndSwap(old, n) {
								break
							}
						}
						defer running.Add(int64(-granted))
						time.Sleep(time.Duration(i%3) * time.Millisecond)
						return nil, nil
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					s.Cancel(j.ID())
				}
			}
		}(g)
	}
	wg.Wait()
	// Drain: wait for every retained job to finish.
	for _, v := range s.Jobs() {
		if j, ok := s.Get(v.ID); ok {
			<-j.Done()
		}
	}
	if got := maxRunning.Load(); got > 3 {
		t.Errorf("peak granted workers = %d, exceeds budget 3", got)
	}
	if got := s.InUse(); got != 0 {
		t.Errorf("InUse after drain = %d", got)
	}
}

// TestSubmitDone covers the cache-hit admission path: the job is terminal
// immediately, carries its result, spent no budget, and still participates
// in retention.
func TestSubmitDone(t *testing.T) {
	s := New(Options{Budget: 1, Retain: 2})
	defer s.Close()
	job, err := s.SubmitDone(Task{Kind: "explain", Table: "t"}, "cached-result")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("SubmitDone job not terminal at return")
	}
	if res, err := job.Result(); err != nil || res != "cached-result" {
		t.Fatalf("Result = %v, %v", res, err)
	}
	if v := job.View(); v.Status != StatusDone || !v.Started.IsZero() || v.Workers != 0 {
		t.Fatalf("view = %+v (must never have run)", v)
	}
	if s.InUse() != 0 || s.QueueLen() != 0 {
		t.Fatalf("budget touched: inUse=%d queue=%d", s.InUse(), s.QueueLen())
	}
	// REAL finished jobs must survive any flood of SubmitDone jobs — even
	// with the regular retention ring already AT its cap, where a single
	// extra entry would trigger eviction: instant jobs must never transit
	// that ring, not even transiently.
	run := func(context.Context, int, func(any)) (any, error) { return "searched", nil }
	var reals []*Job
	for i := 0; i < 2; i++ { // fill the ring to Retain=2 exactly
		r, err := s.Submit(Task{Run: run})
		if err != nil {
			t.Fatal(err)
		}
		<-r.Done()
		reals = append(reals, r)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.SubmitDone(Task{}, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range reals {
		if _, ok := s.Get(r.ID()); !ok {
			t.Errorf("real finished job %s was evicted by SubmitDone flood", r.ID())
		}
	}
	// The instant ring itself is bounded by the same retention cap.
	if _, ok := s.Get(job.ID()); ok {
		t.Error("oldest SubmitDone job survived retention")
	}
	s.Close()
	if _, err := s.SubmitDone(Task{}, nil); err != ErrClosed {
		t.Errorf("SubmitDone after Close = %v, want ErrClosed", err)
	}
}

// TestQueuePosition: queued jobs report their 1-based admission position
// through Position, ViewOf and Jobs, and positions shift as the queue
// drains or queued jobs are canceled.
func TestQueuePosition(t *testing.T) {
	s := New(Options{Budget: 1, QueueCap: 8})
	defer s.Close()
	release := make(chan struct{})
	var running, maxRunning atomic.Int64

	first, err := s.Submit(blockingTask(1, release, &running, &maxRunning))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, first, StatusRunning)
	second, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))
	third, _ := s.Submit(blockingTask(1, release, &running, &maxRunning))

	if got := s.Position(first.ID()); got != 0 {
		t.Errorf("running job position = %d, want 0", got)
	}
	if got := s.Position(second.ID()); got != 1 {
		t.Errorf("second position = %d, want 1", got)
	}
	if got := s.Position(third.ID()); got != 2 {
		t.Errorf("third position = %d, want 2", got)
	}
	if got := s.Position("job-unknown"); got != 0 {
		t.Errorf("unknown id position = %d", got)
	}

	// ViewOf carries the position only while queued.
	if v, ok := s.ViewOf(second.ID()); !ok || v.QueuePos != 1 || v.Status != StatusQueued {
		t.Errorf("ViewOf(second) = %+v", v)
	}
	if v, ok := s.ViewOf(first.ID()); !ok || v.QueuePos != 0 {
		t.Errorf("ViewOf(first).QueuePos = %d, want 0", v.QueuePos)
	}

	// Jobs fills QueuePos for the queued entries.
	for _, v := range s.Jobs() {
		want := 0
		switch v.ID {
		case second.ID():
			want = 1
		case third.ID():
			want = 2
		}
		if v.QueuePos != want {
			t.Errorf("Jobs view %s QueuePos = %d, want %d", v.ID, v.QueuePos, want)
		}
	}

	// Canceling the queue head promotes the job behind it.
	if !s.Cancel(second.ID()) {
		t.Fatal("cancel queued second failed")
	}
	if got := s.Position(third.ID()); got != 1 {
		t.Errorf("third position after cancel = %d, want 1", got)
	}

	close(release)
	<-first.Done()
	<-third.Done()
	if got := s.Position(third.ID()); got != 0 {
		t.Errorf("terminal job position = %d, want 0", got)
	}
}

// TestViewQueuedRunningSplit is the regression test for the
// queued_ms/running_ms split: a job stuck behind a full budget accrues
// queue wait with NO run time, a running job accrues live run time, and a
// finished job freezes both — queue wait must never bleed into run time.
func TestViewQueuedRunningSplit(t *testing.T) {
	s := New(Options{Budget: 1, QueueCap: 8})
	defer s.Close()
	release := make(chan struct{})
	var running, maxRunning atomic.Int64
	first, err := s.Submit(blockingTask(1, release, &running, &maxRunning))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, first, StatusRunning)
	second, err := s.Submit(blockingTask(1, release, &running, &maxRunning))
	if err != nil {
		t.Fatal(err)
	}

	time.Sleep(20 * time.Millisecond)
	v := second.View()
	if v.Status != StatusQueued {
		t.Fatalf("second job status = %s, want queued", v.Status)
	}
	if v.QueuedFor <= 0 {
		t.Errorf("queued job QueuedFor = %s, want > 0", v.QueuedFor)
	}
	if v.RanFor != 0 {
		t.Errorf("queued job RanFor = %s, want 0", v.RanFor)
	}

	rv := first.View()
	if rv.RanFor <= 0 {
		t.Errorf("running job RanFor = %s, want live elapsed > 0", rv.RanFor)
	}

	close(release)
	waitStatus(t, second, StatusDone)
	dv := second.View()
	if dv.QueuedFor <= 0 || dv.RanFor < 0 {
		t.Errorf("done job QueuedFor = %s RanFor = %s", dv.QueuedFor, dv.RanFor)
	}
	if dv.QueuedFor < v.QueuedFor {
		t.Errorf("final QueuedFor %s shrank below mid-queue reading %s", dv.QueuedFor, v.QueuedFor)
	}
	// Frozen once terminal: two views must agree.
	if dv2 := second.View(); dv2.QueuedFor != dv.QueuedFor || dv2.RanFor != dv.RanFor {
		t.Errorf("terminal view not frozen: %s/%s vs %s/%s", dv.QueuedFor, dv.RanFor, dv2.QueuedFor, dv2.RanFor)
	}
}
