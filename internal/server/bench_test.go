package server

// BenchmarkExplainCached measures what the result cache buys on repeated
// identical traffic — the paper's interactive workload (§8.3.3) served
// over HTTP. Three modes on the same request:
//
//   - cold:   every request bypasses the cache (full search each time)
//   - warm:   every request after the first is a cache hit
//   - csweep: each request alternates c, so the result cache misses but
//     the Explainer session reuses the DT partitioning
//
// The recorded baseline lives in BENCH_cache.json; re-record with
//
//	go test -run '^$' -bench BenchmarkExplainCached -benchtime 50x ./internal/server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"github.com/scorpiondb/scorpion/internal/catalog"
)

func benchPost(b *testing.B, srv *Server, body map[string]any) *explainResult {
	b.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/explain", bytes.NewReader(data))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("explain = %d (%s)", rec.Code, rec.Body)
	}
	var out explainResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		b.Fatal(err)
	}
	return &out
}

func BenchmarkExplainCached(b *testing.B) {
	base := func() map[string]any {
		return map[string]any{
			"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
			"outliers":           []string{"g2", "g3"},
			"all_others_holdout": true,
			"algorithm":          "dt",
		}
	}

	b.Run("cold", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		body["cache"] = "bypass"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, srv, body)
		}
	})

	b.Run("warm", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		benchPost(b, srv, body) // populate
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			if res := benchPost(b, srv, body); res.Cached != nil && *res.Cached {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hit-ratio")
	})

	b.Run("csweep", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		body["c"] = 1.0
		benchPost(b, srv, body) // build the session's partitioning
		b.ResetTimer()
		reused := 0
		for i := 0; i < b.N; i++ {
			// A distinct c each iteration: the result cache misses, so every
			// request exercises the session's partition reuse.
			body["c"] = float64(i%997) / 1000.0
			if res := benchPost(b, srv, body); res.ReusedPartition {
				reused++
			}
		}
		b.ReportMetric(float64(reused)/float64(b.N), "partition-reuse-ratio")
	})
}

// --- streaming bench ----------------------------------------------------

// streamBenchCSV renders the streaming bench fixture: group-contiguous
// rows, `groups` GROUP BY keys of `rowsPerGroup` rows each, the last two
// groups outliers whose a1 ∈ [50, 80] region carries inflated values.
func streamBenchCSV(groups, rowsPerGroup int) string {
	var sb strings.Builder
	sb.WriteString("grp,a1,a2,v\n")
	for g := 0; g < groups; g++ {
		for i := 0; i < rowsPerGroup; i++ {
			a1 := (i * 7) % 100
			a2 := (i * 13) % 100
			v := 10
			if g >= groups-2 && a1 >= 50 && a1 <= 80 {
				v = 95
			}
			fmt.Fprintf(&sb, "g%02d,%d,%d,%d\n", g, a1, a2, v)
		}
	}
	return sb.String()
}

// streamBenchBatch renders one append batch (rows only, no header) spread
// across every group, preserving the fixture's outlier pattern.
func streamBenchBatch(groups, n, seed int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		g := (seed*31 + i) % groups
		a1 := (seed*17 + i*7) % 100
		a2 := (seed*5 + i*13) % 100
		v := 10
		if g >= groups-2 && a1 >= 50 && a1 <= 80 {
			v = 95
		}
		fmt.Fprintf(&sb, "g%02d,%d,%d,%d\n", g, a1, a2, v)
	}
	return sb.String()
}

// streamBenchResult decodes the streaming fields the bench asserts on.
type streamBenchResult struct {
	Explanations  []ExplanationJSON `json:"explanations"`
	Cached        bool              `json:"cached"`
	Refreshed     bool              `json:"refreshed"`
	RefreshedFrom int64             `json:"refreshed_from"`
}

func streamBenchPost(b *testing.B, srv *Server, path, contentType, body string, wantCode int) []byte {
	b.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != wantCode {
		b.Fatalf("POST %s = %d (%s)", path, rec.Code, rec.Body)
	}
	return rec.Body.Bytes()
}

// BenchmarkExplainStreaming measures what the append path buys a live
// table: each iteration ingests one batch of rows and re-explains.
//
//   - refresh: POST /tables/{t}/rows + /explain — the server warm-starts
//     from its stream session, re-scoring the previous run's candidates
//     against incrementally advanced group states ("refreshed_from").
//   - reload: DELETE /tables/{t} + re-upload the WHOLE grown CSV + a cold
//     /explain — the only way to track growing data when tables are
//     immutable and appends invalidate rather than warm-start.
//
// Both sides process identical batches onto identical bases; the recorded
// baseline lives in BENCH_stream.json (acceptance: refresh ≥ 2× faster).
// Re-record with
//
//	go test -run '^$' -bench BenchmarkExplainStreaming -benchtime 20x ./internal/server
func BenchmarkExplainStreaming(b *testing.B) {
	const groups, rowsPerGroup, batchRows = 30, 300, 120
	baseCSV := streamBenchCSV(groups, rowsPerGroup)
	explainBody := func() string {
		return `{"table":"t","sql":"SELECT sum(v), grp FROM t GROUP BY grp",` +
			`"outliers":["g` + fmt.Sprint(groups-2) + `","g` + fmt.Sprint(groups-1) + `"],` +
			`"all_others_holdout":true,"algorithm":"naive"}`
	}

	b.Run("refresh", func(b *testing.B) {
		srv := NewCatalog(catalog.New(), nil)
		defer srv.Close()
		streamBenchPost(b, srv, "/tables?name=t", "text/csv", baseCSV, http.StatusCreated)
		streamBenchPost(b, srv, "/explain", "application/json", explainBody(), http.StatusOK) // prime cold
		refreshed := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamBenchPost(b, srv, "/tables/t/rows", "text/csv",
				"grp,a1,a2,v\n"+streamBenchBatch(groups, batchRows, i), http.StatusOK)
			var out streamBenchResult
			if err := json.Unmarshal(streamBenchPost(b, srv, "/explain", "application/json",
				explainBody(), http.StatusOK), &out); err != nil {
				b.Fatal(err)
			}
			if out.Cached {
				b.Fatal("successor generation served from cache")
			}
			if out.Refreshed {
				refreshed++
			}
			if len(out.Explanations) == 0 {
				b.Fatal("no explanations")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(refreshed)/float64(b.N), "refresh-ratio")
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})

	b.Run("reload", func(b *testing.B) {
		srv := NewCatalog(catalog.New(), nil)
		defer srv.Close()
		streamBenchPost(b, srv, "/tables?name=t", "text/csv", baseCSV, http.StatusCreated)
		streamBenchPost(b, srv, "/explain", "application/json", explainBody(), http.StatusOK)
		grown := baseCSV
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			grown += streamBenchBatch(groups, batchRows, i)
			// Unload, re-upload the whole grown table, explain cold (the
			// re-upload starts a new lineage and generation, so nothing is
			// served warm or cached).
			req := httptest.NewRequest("DELETE", "/tables/t", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("unload = %d", rec.Code)
			}
			streamBenchPost(b, srv, "/tables?name=t", "text/csv", grown, http.StatusCreated)
			var out streamBenchResult
			if err := json.Unmarshal(streamBenchPost(b, srv, "/explain", "application/json",
				explainBody(), http.StatusOK), &out); err != nil {
				b.Fatal(err)
			}
			if out.Cached || out.Refreshed {
				b.Fatalf("reload side served warm: %+v", out)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	})
}
