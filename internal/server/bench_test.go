package server

// BenchmarkExplainCached measures what the result cache buys on repeated
// identical traffic — the paper's interactive workload (§8.3.3) served
// over HTTP. Three modes on the same request:
//
//   - cold:   every request bypasses the cache (full search each time)
//   - warm:   every request after the first is a cache hit
//   - csweep: each request alternates c, so the result cache misses but
//     the Explainer session reuses the DT partitioning
//
// The recorded baseline lives in BENCH_cache.json; re-record with
//
//	go test -run '^$' -bench BenchmarkExplainCached -benchtime 50x ./internal/server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func benchPost(b *testing.B, srv *Server, body map[string]any) *explainResult {
	b.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/explain", bytes.NewReader(data))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("explain = %d (%s)", rec.Code, rec.Body)
	}
	var out explainResult
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		b.Fatal(err)
	}
	return &out
}

func BenchmarkExplainCached(b *testing.B) {
	base := func() map[string]any {
		return map[string]any{
			"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
			"outliers":           []string{"g2", "g3"},
			"all_others_holdout": true,
			"algorithm":          "dt",
		}
	}

	b.Run("cold", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		body["cache"] = "bypass"
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, srv, body)
		}
	})

	b.Run("warm", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		benchPost(b, srv, body) // populate
		b.ResetTimer()
		hits := 0
		for i := 0; i < b.N; i++ {
			if res := benchPost(b, srv, body); res.Cached != nil && *res.Cached {
				hits++
			}
		}
		b.ReportMetric(float64(hits)/float64(b.N), "hit-ratio")
	})

	b.Run("csweep", func(b *testing.B) {
		srv := New(bigTable(b))
		defer srv.Close()
		body := base()
		body["c"] = 1.0
		benchPost(b, srv, body) // build the session's partitioning
		b.ResetTimer()
		reused := 0
		for i := 0; i < b.N; i++ {
			// A distinct c each iteration: the result cache misses, so every
			// request exercises the session's partition reuse.
			body["c"] = float64(i%997) / 1000.0
			if res := benchPost(b, srv, body); res.ReusedPartition {
				reused++
			}
		}
		b.ReportMetric(float64(reused)/float64(b.N), "partition-reuse-ratio")
	})
}
