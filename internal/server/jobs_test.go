package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/jobs"
)

// multiTableServer builds a server hosting the sensors table twice under
// distinct names, with the given scheduler options.
func multiTableServer(t *testing.T, opts jobs.Options) *Server {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.Add("sensors", testTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Add("sensors2", testTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	srv := NewCatalog(cat, jobs.New(opts))
	t.Cleanup(srv.Close)
	return srv
}

func decodeJSON(t *testing.T, rec *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("bad JSON %q: %v", rec.Body.String(), err)
	}
}

// TestMultiTableServing proves one process answers /schema, /query and
// /explain for two different tables by name — the catalog acceptance
// criterion.
func TestMultiTableServing(t *testing.T) {
	srv := multiTableServer(t, jobs.Options{})

	// /tables lists both.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tables", nil))
	var tablesOut struct {
		Tables []tableJSON `json:"tables"`
	}
	decodeJSON(t, rec, &tablesOut)
	if len(tablesOut.Tables) != 2 || tablesOut.Tables[0].Name != "sensors" || tablesOut.Tables[1].Name != "sensors2" {
		t.Fatalf("tables = %+v", tablesOut.Tables)
	}

	// /schema requires the name now that two tables exist.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/schema", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("ambiguous /schema = %d", rec.Code)
	}
	for _, name := range []string{"sensors", "sensors2"} {
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/schema?table="+name, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/schema?table=%s = %d (%s)", name, rec.Code, rec.Body)
		}
		var schemaOut struct {
			Table string `json:"table"`
			Rows  int    `json:"rows"`
		}
		decodeJSON(t, rec, &schemaOut)
		if schemaOut.Table != name || schemaOut.Rows != 9 {
			t.Errorf("schema = %+v", schemaOut)
		}

		// /query and /explain against each table by name.
		rec = postJSON(t, srv, "/query", QueryRequest{
			Table: name,
			SQL:   "SELECT avg(temp), time FROM sensors GROUP BY time",
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("query(%s) = %d (%s)", name, rec.Code, rec.Body)
		}
		rec = postJSON(t, srv, "/explain", ExplainRequest{
			Table:            name,
			SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
			Outliers:         []string{"12PM", "1PM"},
			AllOthersHoldOut: true,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("explain(%s) = %d (%s)", name, rec.Code, rec.Body)
		}
	}

	// An unknown name is a 404.
	rec = postJSON(t, srv, "/query", QueryRequest{Table: "nope", SQL: "SELECT avg(temp), time FROM s GROUP BY time"})
	if rec.Code != http.StatusNotFound {
		t.Errorf("query(nope) = %d", rec.Code)
	}
}

// TestTableUploadAndUnload covers the catalog's HTTP write path.
func TestTableUploadAndUnload(t *testing.T) {
	srv := multiTableServer(t, jobs.Options{})
	csv := "g,v\na,1\na,2\nb,9\n"
	req := httptest.NewRequest("POST", "/tables?name=uploaded", strings.NewReader(csv))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d (%s)", rec.Code, rec.Body)
	}
	var out struct {
		Table tableJSON `json:"table"`
	}
	decodeJSON(t, rec, &out)
	if out.Table.Rows != 3 || out.Table.Source != "upload" {
		t.Errorf("uploaded table = %+v", out.Table)
	}

	rec = postJSON(t, srv, "/query", QueryRequest{Table: "uploaded", SQL: "SELECT avg(v), g FROM t GROUP BY g"})
	if rec.Code != http.StatusOK {
		t.Fatalf("query(uploaded) = %d (%s)", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/tables/uploaded", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unload = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/tables/uploaded", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("second unload = %d", rec.Code)
	}
	// Missing ?name= is rejected.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables", strings.NewReader(csv)))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("nameless upload = %d", rec.Code)
	}

	// Oversized bodies are shed with 413 before they can exhaust memory.
	srv.MaxUploadBytes = 8
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables?name=huge", strings.NewReader(csv)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload = %d (%s)", rec.Code, rec.Body)
	}
}

// TestExplainWorkersValidation covers the workers satellite: values below
// -1 are a 400, and -1 resolves to GOMAXPROCS (same result as serial).
func TestExplainWorkersValidation(t *testing.T) {
	srv := New(testTable(t))
	t.Cleanup(srv.Close)
	base := map[string]any{
		"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
		"outliers":           []string{"12PM", "1PM"},
		"all_others_holdout": true,
	}
	for _, bad := range []int{-2, -100} {
		base["workers"] = bad
		rec := postJSON(t, srv, "/explain", base)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("workers=%d status = %d (%s)", bad, rec.Code, rec.Body)
		}
	}
	base["workers"] = -1
	rec := postJSON(t, srv, "/explain", base)
	if rec.Code != http.StatusOK {
		t.Errorf("workers=-1 status = %d (%s)", rec.Code, rec.Body)
	}
}

// pollJob GETs a job until pred is satisfied or the deadline passes.
func pollJob(t *testing.T, srv *Server, id string, deadline time.Duration, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+id, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("poll %s = %d (%s)", id, rec.Code, rec.Body)
		}
		var view map[string]any
		decodeJSON(t, rec, &view)
		if pred(view) {
			return view
		}
		if time.Now().After(stop) {
			t.Fatalf("job %s never reached the wanted state; last view: %v", id, view)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowExplainBody is a NAIVE search over bigTable that runs for minutes —
// long enough that polls observe it mid-flight.
func slowExplainBody() map[string]any {
	return map[string]any{
		"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
		"outliers":           []string{"g2", "g3"},
		"all_others_holdout": true,
		"algorithm":          "naive",
	}
}

// TestAsyncJobLifecycle is the jobs acceptance criterion end to end:
// enqueue, observe queued→running, poll best-so-far mid-search, cancel,
// and read the partial result off the terminal job.
func TestAsyncJobLifecycle(t *testing.T) {
	srv := New(bigTable(t))
	srv.ProgressInterval = 5 * time.Millisecond
	t.Cleanup(srv.Close)

	rec := postJSON(t, srv, "/explain?mode=async", slowExplainBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async submit = %d (%s)", rec.Code, rec.Body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
		Poll  string `json:"poll"`
	}
	decodeJSON(t, rec, &accepted)
	if accepted.JobID == "" || accepted.Poll != "/jobs/"+accepted.JobID {
		t.Fatalf("accepted = %+v", accepted)
	}

	// Poll until a best-so-far snapshot with at least one predicate shows
	// up mid-search.
	view := pollJob(t, srv, accepted.JobID, 30*time.Second, func(v map[string]any) bool {
		prog, ok := v["progress"].(map[string]any)
		if !ok {
			return false
		}
		best, ok := prog["best"].([]any)
		return ok && len(best) > 0
	})
	if got := view["status"]; got != "running" {
		t.Fatalf("status with progress = %v", got)
	}
	if _, hasResult := view["result"]; hasResult {
		t.Fatal("running job already has a final result")
	}
	best := view["progress"].(map[string]any)["best"].([]any)
	first := best[0].(map[string]any)
	if first["where"] == "" {
		t.Fatalf("best-so-far entry = %v", first)
	}

	// Cancel it; the job winds down to "canceled" with a partial result.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+accepted.JobID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d (%s)", rec.Code, rec.Body)
	}
	view = pollJob(t, srv, accepted.JobID, 30*time.Second, func(v map[string]any) bool {
		return v["status"] == "canceled"
	})
	result, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("canceled job has no partial result: %v", view)
	}
	if result["interrupted"] != true {
		t.Errorf("partial result not marked interrupted: %v", result)
	}
	if _, ok := result["explanations"].([]any); !ok {
		t.Errorf("partial result has no explanations field: %v", result)
	}

	// A second DELETE forgets the terminal job.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+accepted.JobID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("remove = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+accepted.JobID, nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("removed job still resolves: %d", rec.Code)
	}
}

// TestJobTimeout checks the per-search deadline moves an async job to the
// "timeout" status with its best-so-far partial result attached.
func TestJobTimeout(t *testing.T) {
	srv := New(bigTable(t))
	srv.ExplainTimeout = 100 * time.Millisecond
	srv.ProgressInterval = 5 * time.Millisecond
	t.Cleanup(srv.Close)

	rec := postJSON(t, srv, "/jobs", slowExplainBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", rec.Code, rec.Body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	decodeJSON(t, rec, &accepted)
	view := pollJob(t, srv, accepted.JobID, 30*time.Second, func(v map[string]any) bool {
		return v["status"] == "timeout"
	})
	if result, ok := view["result"].(map[string]any); !ok || result["interrupted"] != true {
		t.Errorf("timeout job result = %v", view["result"])
	}
	if view["error"] == "" {
		t.Error("timeout job carries no error")
	}
}

// TestQueueOverflow checks load shedding: with a budget of 1 and a queue
// depth of 1, a third job is answered 429. The bodies bypass the cache —
// without that, identical submissions coalesce onto job 1 instead of
// queueing (see TestExplainCoalescesConcurrentDuplicates).
func TestQueueOverflow(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Add("t", bigTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	srv := NewCatalog(cat, jobs.New(jobs.Options{Budget: 1, QueueCap: 1}))
	t.Cleanup(srv.Close)

	bypass := func() map[string]any {
		body := slowExplainBody()
		body["cache"] = "bypass"
		return body
	}
	rec := postJSON(t, srv, "/jobs", bypass())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("job 1 = %d (%s)", rec.Code, rec.Body)
	}
	var first struct {
		JobID string `json:"job_id"`
	}
	decodeJSON(t, rec, &first)
	// Wait until it actually occupies the budget so the next submit queues.
	pollJob(t, srv, first.JobID, 30*time.Second, func(v map[string]any) bool {
		return v["status"] == "running"
	})
	if rec = postJSON(t, srv, "/jobs", bypass()); rec.Code != http.StatusAccepted {
		t.Fatalf("job 2 = %d (%s)", rec.Code, rec.Body)
	}
	if rec = postJSON(t, srv, "/jobs", bypass()); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("job 3 = %d, want 429 (%s)", rec.Code, rec.Body)
	}
}

// TestConcurrentExplainsShareBudget runs several synchronous /explain
// requests against a 2-worker global budget and samples the scheduler's
// worker accounting throughout: the sum of granted workers must never
// exceed the budget, yet every request must still succeed — the acceptance
// criterion for the shared scheduler. (Race-detector gated via CI's -race
// run of this package.)
func TestConcurrentExplainsShareBudget(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Add("sensors", testTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	sched := jobs.New(jobs.Options{Budget: 2, QueueCap: 64})
	srv := NewCatalog(cat, sched)
	t.Cleanup(srv.Close)

	// Sample InUse continuously while the requests run.
	var maxInUse atomic.Int64
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
				if n := int64(sched.InUse()); n > maxInUse.Load() {
					maxInUse.Store(n)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	const requests = 6
	var wg sync.WaitGroup
	codes := make([]int, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(t, srv, "/explain", map[string]any{
				"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
				"outliers":           []string{"12PM", "1PM"},
				"all_others_holdout": true,
				"workers":            2, // up to the whole budget (clamped to GOMAXPROCS)
				// Bypass so every request admits its OWN job — coalescing
				// would collapse these identical searches to one and the
				// budget would never be contended.
				"cache": "bypass",
			})
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	close(stopSampling)
	samplerDone.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d = %d", i, code)
		}
	}
	if got := maxInUse.Load(); got > 2 {
		t.Errorf("peak scheduled workers = %d, exceeds global budget 2", got)
	}
	if got := sched.InUse(); got != 0 {
		t.Errorf("InUse after drain = %d", got)
	}
}
