package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/scorpiondb/scorpion/internal/dispatch"
	"github.com/scorpiondb/scorpion/internal/obs"
	"github.com/scorpiondb/scorpion/internal/wire"
	"github.com/scorpiondb/scorpion/internal/worker"
)

// Remote shard worker mode (scorpion-server -worker) and coordinator-side
// peer wiring (scorpion-server -peers). A worker exposes POST
// /shards/search: one shard of a sharded explanation search, executed
// against the worker's own copy of the table and answered as a wire.Result.
// A coordinator configured with peers offers every shard of every sharded
// explain to that fleet first, falling back to the local search path per
// shard when the fleet can't answer.

// maxShardTaskBytes caps a POST /shards/search body; shard tasks are
// run-length provenance and knobs, so even 1M-row windows stay far below
// this.
const maxShardTaskBytes = 64 << 20

// EnableWorker registers the worker endpoint. Concurrent shard searches
// are capped by the scheduler's worker budget: each in-flight search
// holds one slot, and requests beyond the cap answer 429 immediately so
// the coordinator can try another peer instead of queueing blind into a
// busy process (queueing here could deadlock a fleet whose members
// coordinate for each other).
func (s *Server) EnableWorker() {
	budget := s.sched.Budget()
	if budget < 1 {
		budget = 1
	}
	s.workerSem = make(chan struct{}, budget)
	s.mux.HandleFunc("POST /shards/search", s.handleShardSearch)
}

// SetPeers configures coordinator-side dispatch: every sharded explain on
// this server offers its shards to the given worker URLs. shardTimeout
// bounds one dispatch attempt (0 = the dispatch default).
func (s *Server) SetPeers(peers []string, shardTimeout time.Duration, client *http.Client) error {
	pool, err := dispatch.NewPool(dispatch.Options{
		Peers:        peers,
		ShardTimeout: shardTimeout,
		Client:       client,
	})
	if err != nil {
		return err
	}
	s.dispatch = pool
	return nil
}

// DispatchStats exposes the peer pool's counters (zero when no peers are
// configured).
func (s *Server) DispatchStats() dispatch.Stats {
	if s.dispatch == nil {
		return dispatch.Stats{}
	}
	return s.dispatch.Stats()
}

func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	status := func(code int, reason string) {
		s.reg.Counter("scorpion_worker_shard_searches_total", "status", reason).Inc()
		_ = code
	}
	var t wire.Task
	body := http.MaxBytesReader(w, r.Body, maxShardTaskBytes)
	if err := json.NewDecoder(body).Decode(&t); err != nil {
		status(http.StatusBadRequest, "bad_request")
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode shard task: %w", err))
		return
	}
	if t.Version != wire.Version {
		status(http.StatusBadRequest, "version_mismatch")
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("wire version %d not supported (worker speaks %d)", t.Version, wire.Version))
		return
	}
	entry, err := s.resolveTable(t.Table)
	if err != nil {
		status(http.StatusNotFound, "no_table")
		writeError(w, http.StatusNotFound, err)
		return
	}
	select {
	case s.workerSem <- struct{}{}:
		defer func() { <-s.workerSem }()
	default:
		status(http.StatusTooManyRequests, "busy")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("worker at capacity (%d shard searches in flight)", cap(s.workerSem)))
		return
	}

	ctx := obs.ContextWithRegistry(r.Context(), s.reg)
	if s.log != nil {
		ctx = obs.ContextWithLogger(ctx, s.log)
	}
	span := obs.NewSpan("worker.shard_search")
	span.SetAttr("table", t.Table)
	span.SetAttr("window_lo", t.WindowLo)
	span.SetAttr("window_hi", t.WindowHi)
	span.SetAttr("algorithm", t.Algorithm)
	ctx = obs.ContextWithSpan(ctx, span)
	start := time.Now()
	res, err := worker.Run(ctx, entry.Table, &t, s.sched.Budget())
	span.End()
	s.reg.Histogram("scorpion_worker_shard_seconds", nil).Observe(time.Since(start).Seconds())
	if err != nil {
		var mismatch *worker.ErrTableMismatch
		switch {
		case errors.As(err, &mismatch):
			status(http.StatusConflict, "table_mismatch")
			writeError(w, http.StatusConflict, err)
		case r.Context().Err() != nil:
			// The coordinator gave up (per-shard timeout or cancelled
			// search); the response goes nowhere, but account for it.
			status(499, "cancelled")
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			status(http.StatusInternalServerError, "error")
			writeError(w, http.StatusInternalServerError, err)
		}
		if s.log != nil {
			s.log.Warn("worker: shard search failed", "table", t.Table, "error", err)
		}
		return
	}
	status(http.StatusOK, "ok")
	writeJSON(w, http.StatusOK, res)
}
