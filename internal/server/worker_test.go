package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/jobs"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/wire"
)

// workerTask builds a valid one-shard task over the sensors fixture: the
// whole table as a single window, 12PM/1PM flagged, 11AM held out.
func workerTask() *wire.Task {
	groups := func(rows ...int) []byte {
		return relation.RowSetOf(9, rows...).AppendBinary(nil)
	}
	return &wire.Task{
		Version:   wire.Version,
		Table:     "default",
		Rows:      9,
		SQL:       "SELECT avg(temp), time FROM sensors GROUP BY time",
		WindowLo:  0,
		WindowHi:  9,
		Algorithm: "naive",
		Bins:      10,
		TopK:      4,
		Attrs:     []string{"sensorid", "voltage"},
		Lambda:    0.5,
		C:         0.2,
		Outliers: []wire.Group{
			{Key: "12PM", Direction: float64(influence.TooHigh), Rows: groups(3, 4, 5)},
			{Key: "1PM", Direction: float64(influence.TooHigh), Rows: groups(6, 7, 8)},
		},
		HoldOuts: []wire.Group{{Key: "11AM", Rows: groups(0, 1, 2)}},
	}
}

func TestWorkerEndpoint(t *testing.T) {
	srv := New(testTable(t))
	t.Cleanup(srv.Close)
	srv.EnableWorker()

	t.Run("searches a shard", func(t *testing.T) {
		rec := postJSON(t, srv, "/shards/search", workerTask())
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
		}
		var res wire.Result
		decodeJSON(t, rec, &res)
		outcome, err := wire.DecodeOutcome(&res)
		if err != nil {
			t.Fatal(err)
		}
		if len(outcome.Candidates) == 0 || outcome.Work == 0 {
			t.Fatalf("empty shard outcome: %+v", outcome)
		}
	})

	t.Run("rejects version skew", func(t *testing.T) {
		task := workerTask()
		task.Version = wire.Version + 1
		if rec := postJSON(t, srv, "/shards/search", task); rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
		}
	})

	t.Run("rejects unknown table", func(t *testing.T) {
		task := workerTask()
		task.Table = "nope"
		if rec := postJSON(t, srv, "/shards/search", task); rec.Code != http.StatusNotFound {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
		}
	})

	t.Run("rejects row-count drift", func(t *testing.T) {
		task := workerTask()
		task.Rows = 9999
		if rec := postJSON(t, srv, "/shards/search", task); rec.Code != http.StatusConflict {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
		}
	})

	t.Run("rejects malformed body", func(t *testing.T) {
		req := httptest.NewRequest("POST", "/shards/search", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
		}
	})
}

func TestWorkerAnswersBusyAtCapacity(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Add("default", testTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	srv := NewCatalog(cat, jobs.New(jobs.Options{Budget: 1}))
	t.Cleanup(srv.Close)
	srv.EnableWorker()

	// Occupy the single slot; the next request must answer 429 immediately
	// rather than queue (a fleet whose members coordinate for each other
	// would deadlock on queued shard searches).
	srv.workerSem <- struct{}{}
	defer func() { <-srv.workerSem }()
	if rec := postJSON(t, srv, "/shards/search", workerTask()); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
}

// TestExplainThroughPeers runs a sharded explain end to end across two
// server processes: a coordinator with -peers pointed at a -worker, both
// holding the same table. The fleet answers every shard, and the result is
// identical to the same request answered by a peer-less server.
func TestExplainThroughPeers(t *testing.T) {
	workerSrv := New(testTable(t))
	t.Cleanup(workerSrv.Close)
	workerSrv.EnableWorker()
	ws := httptest.NewServer(workerSrv)
	t.Cleanup(ws.Close)

	coord := New(testTable(t))
	t.Cleanup(coord.Close)
	if err := coord.SetPeers([]string{ws.URL}, 0, nil); err != nil {
		t.Fatal(err)
	}
	local := New(testTable(t))
	t.Cleanup(local.Close)

	body := map[string]any{
		"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
		"outliers":           []string{"12PM", "1PM"},
		"all_others_holdout": true,
		"algorithm":          "naive",
		"shards":             2,
	}
	rec := postJSON(t, coord, "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("remote-sharded explain = %d (%s)", rec.Code, rec.Body)
	}
	var remote map[string]any
	decodeJSON(t, rec, &remote)

	rec = postJSON(t, local, "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("local-sharded explain = %d (%s)", rec.Code, rec.Body)
	}
	var want map[string]any
	decodeJSON(t, rec, &want)

	if !reflect.DeepEqual(remote["explanations"], want["explanations"]) {
		t.Fatalf("remote-sharded explanations diverge from local-sharded:\nremote: %v\nlocal:  %v",
			remote["explanations"], want["explanations"])
	}
	// The planner anchors on outlier rows, so outlier-free windows are
	// skipped before dispatch; every shard that IS searched must have been
	// answered remotely with no fallbacks.
	st := coord.DispatchStats()
	if st.Dispatched == 0 || st.Succeeded != st.Dispatched || st.Fallbacks != 0 {
		t.Fatalf("dispatch stats = %+v, want every searched shard answered remotely", st)
	}
	if st.BytesOut == 0 || st.BytesIn == 0 {
		t.Fatalf("missing wire accounting: %+v", st)
	}
}
