// Package server implements the backend of the paper's end-to-end data
// exploration tool (§4.1, Figure 2): a JSON-over-HTTP API through which a
// visualization front-end executes aggregate queries, flags outlier and
// hold-out results, and receives ranked explanation predicates.
//
// Unlike the paper's per-database workflow, one process hosts many datasets
// (a catalog of named tables) and runs every explanation as a job admitted
// against one global worker budget — a serving layer rather than a demo.
//
// Endpoints:
//
//	GET    /tables        — list loaded tables
//	POST   /tables?name=N — upload a CSV body as table N
//	POST   /tables/{name}/rows — append a CSV batch to a loaded table
//	DELETE /tables/{name} — unload a table
//	GET    /schema        — a table's columns and kinds (?table=N)
//	POST   /query         — {"table", "sql"} → aggregate results
//	POST   /explain       — an ExplainRequest → ranked explanations;
//	                        "mode":"async" (or ?mode=async) enqueues instead
//	POST   /jobs          — same body as /explain, always async → job id
//	GET    /jobs          — list jobs
//	GET    /jobs/{id}     — job status, progress, best-so-far, final result
//	DELETE /jobs/{id}     — cancel a live job / forget a finished one
//	GET    /cache         — result-cache stats (hits/misses/coalesced/…)
//	DELETE /cache         — drop all cached results and Explainer sessions
//
// The "table" parameter may be omitted while exactly one table is loaded.
// Synchronous /explain is a thin wait-on-job wrapper, so both paths share
// one execution story: queued admission, the per-job worker grant, progress
// snapshots, and cancellation through the job's context.
//
// Repeated traffic is served from a result cache (see cache.go): an
// identical repeat answers instantly with "cached": true, concurrent
// identical requests coalesce onto one job, and a repeat differing only in
// the c knob reuses the session's DT partitioning (§8.3.3). Requests opt
// out per call with "cache": "bypass".
//
// Appended tables are served warm (see stream.go): appending rows publishes
// a SUCCESSOR generation on the same lineage, and a repeated explanation
// after the append re-scores the previous run's candidates against the
// grown groups — "refreshed_from" in the result names the generation the
// warm state came from — instead of invalidating and re-searching.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/cache"
	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/dispatch"
	"github.com/scorpiondb/scorpion/internal/jobs"
	"github.com/scorpiondb/scorpion/internal/obs"
)

// Server serves a catalog of tables over HTTP, scheduling explanation
// searches onto a shared worker budget.
type Server struct {
	catalog *catalog.Catalog
	sched   *jobs.Scheduler
	mux     *http.ServeMux
	// cache holds finished /explain results keyed by request fingerprint
	// and coalesces concurrent identical requests; sessions holds the
	// per-(table, query, labels, lambda) Explainer reuse units. Both nil
	// when caching is disabled (ConfigureCache(-1)).
	cache    *cache.Cache
	sessions *cache.Cache
	// streams holds per-(table lineage, request) Refresher sessions: the
	// append-path warm-start units (see stream.go). nil when caching is
	// disabled.
	streams *cache.Cache
	// reg is the process-wide metrics registry (always non-nil; NewCatalog
	// installs one): HTTP traffic, scheduler and cache collectors, and the
	// search spine (through job contexts) all report into it. log is the
	// base logger for request-scoped logging; nil (the default) logs
	// nothing — the server binary installs one via SetLogger.
	reg *obs.Registry
	log *slog.Logger
	// inflightJobs maps a live coalescable job's id to its inflight record
	// so the explicit DELETE /jobs/{id} path can honor waiter accounting
	// (one client's cancel must not kill a search others still wait on).
	inflightJobs sync.Map
	// ExplainTimeout bounds one explanation search once it starts running
	// (0 = none); queue wait does not count. The deadline is enforced
	// through the job's context: when it passes, the running search itself
	// stops and a synchronous client receives a 504 JSON error.
	ExplainTimeout time.Duration
	// Workers is the default per-search worker grant when a request leaves
	// "workers" unset (0 = serial, -1 = GOMAXPROCS). The scheduler further
	// clamps grants so that all running jobs together never exceed its
	// global budget.
	Workers int
	// ProgressInterval is how often running jobs refresh their best-so-far
	// snapshot (0 = 100ms).
	ProgressInterval time.Duration
	// MaxUploadBytes caps a POST /tables body (0 = 256 MiB) so one upload
	// cannot exhaust the process's memory.
	MaxUploadBytes int64
	// workerSem caps concurrent remote shard searches when this process
	// runs as a worker (EnableWorker); sized by the scheduler budget.
	workerSem chan struct{}
	// dispatch is the remote shard peer pool when this process coordinates
	// over a fleet (SetPeers); nil means every shard searches locally.
	dispatch *dispatch.Pool
}

// defaultMaxUploadBytes bounds table uploads when MaxUploadBytes is unset.
const defaultMaxUploadBytes = 256 << 20

// New builds a single-table server with a default scheduler — the
// pre-catalog convenience constructor. The table is registered under the
// name "default" but requests may omit the table parameter while it is the
// only one loaded.
func New(table *scorpion.Table) *Server {
	cat := catalog.New()
	if _, err := cat.Add("default", table, "builtin"); err != nil {
		panic(err) // "default" is a valid name; only a nil table can fail
	}
	return NewCatalog(cat, nil)
}

// NewCatalog builds a server over an existing catalog and scheduler. A nil
// scheduler gets a default one (GOMAXPROCS budget). The caller should
// Close the server (or the scheduler) on shutdown to cancel live jobs.
func NewCatalog(cat *catalog.Catalog, sched *jobs.Scheduler) *Server {
	if sched == nil {
		sched = jobs.New(jobs.Options{})
	}
	s := &Server{
		catalog:  cat,
		sched:    sched,
		mux:      http.NewServeMux(),
		cache:    cache.New(0), // 0 = cache.DefaultCapacity
		sessions: cache.New(defaultSessionEntries),
		streams:  cache.New(defaultStreamEntries),
		reg:      obs.NewRegistry(),
	}
	sched.SetRegistry(s.reg)
	// One scrape-time collector over whichever caches are CURRENT:
	// ConfigureCache swaps the cache pointers, so registering the caches
	// themselves would pin (and keep exporting) the originals forever.
	s.reg.RegisterFunc(func(emit obs.EmitFunc) {
		s.cache.EmitMetrics(emit, "results")
		s.sessions.EmitMetrics(emit, "sessions")
		s.streams.EmitMetrics(emit, "streams")
	})
	s.mux.HandleFunc("GET /tables", s.handleTables)
	s.mux.HandleFunc("POST /tables", s.handleTableUpload)
	s.mux.HandleFunc("POST /tables/{name}/rows", s.handleTableAppend)
	s.mux.HandleFunc("DELETE /tables/{name}", s.handleTableDelete)
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleJobList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /cache", s.handleCacheStats)
	s.mux.HandleFunc("DELETE /cache", s.handleCacheClear)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	return s
}

// Catalog returns the server's table registry.
func (s *Server) Catalog() *catalog.Catalog { return s.catalog }

// Scheduler returns the server's job scheduler.
func (s *Server) Scheduler() *jobs.Scheduler { return s.sched }

// Close cancels all live jobs and rejects new ones.
func (s *Server) Close() { s.sched.Close() }

// --- catalog endpoints -------------------------------------------------

// tableJSON describes one catalog entry.
type tableJSON struct {
	Name     string `json:"name"`
	Rows     int    `json:"rows"`
	Columns  int    `json:"columns"`
	Source   string `json:"source"`
	LoadedAt string `json:"loaded_at"`
	// Gen is the entry's content generation; Lineage identifies its
	// append-only snapshot chain (appends bump Gen, keep Lineage).
	Gen     int64 `json:"gen"`
	Lineage int64 `json:"lineage"`
	// AppendedRows is the size of the latest appended tail (0 for a fresh
	// load).
	AppendedRows int `json:"appended_rows,omitempty"`
}

func entryJSON(e *catalog.Entry) tableJSON {
	appended := 0
	if e.PrevGen != 0 {
		appended = e.Rows() - e.PrevRows
	}
	return tableJSON{
		Name:         e.Name,
		Rows:         e.Rows(),
		Columns:      e.Columns(),
		Source:       e.Source,
		LoadedAt:     e.LoadedAt.UTC().Format(time.RFC3339),
		Gen:          e.Gen,
		Lineage:      e.Lineage,
		AppendedRows: appended,
	}
}

func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	entries := s.catalog.List()
	out := make([]tableJSON, len(entries))
	for i, e := range entries {
		out[i] = entryJSON(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"tables": out})
}

func (s *Server) handleTableUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?name= for uploaded table"))
		return
	}
	limit := s.MaxUploadBytes
	if limit <= 0 {
		limit = defaultMaxUploadBytes
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	e, err := s.catalog.LoadCSV(name, body, scorpion.CSVOptions{}, "upload")
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("upload exceeds the %d-byte limit", limit))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The upload may have replaced an existing table of the same name:
	// drop its cached results and sessions. (Keys also embed the catalog
	// generation, so this is hygiene, not the correctness mechanism.)
	s.invalidateTable(name)
	writeJSON(w, http.StatusCreated, map[string]any{"table": entryJSON(e)})
}

// handleTableAppend grows a loaded table by a CSV batch (header row naming
// the table's columns, any order). The append publishes a successor
// generation on the same lineage: cached results and Explainer sessions of
// the old generation are swept (they can never be hit again), but stream
// sessions survive — the next explanation against this table warm-starts
// from them instead of searching cold.
func (s *Server) handleTableAppend(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	limit := s.MaxUploadBytes
	if limit <= 0 {
		limit = defaultMaxUploadBytes
	}
	body := http.MaxBytesReader(w, r.Body, limit)
	e, n, err := s.catalog.AppendCSV(name, body)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("append exceeds the %d-byte limit", limit))
		case errors.Is(err, catalog.ErrNotFound):
			writeError(w, http.StatusNotFound, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	// Old-generation results and sessions are unreachable now (keys embed
	// the generation); sweep them for memory, NOT for correctness. The
	// stream sessions (keyed by lineage) are deliberately kept: successor
	// generations warm-start rather than invalidate.
	if s.cache != nil {
		s.cache.InvalidatePrefix(name + "@")
	}
	if s.sessions != nil {
		s.sessions.InvalidatePrefix(name + "@")
	}
	s.reg.Counter("scorpion_append_batches_total", "table", name).Inc()
	s.reg.Counter("scorpion_append_rows_total", "table", name).Add(float64(n))
	writeJSON(w, http.StatusOK, map[string]any{
		"table":    entryJSON(e),
		"appended": n,
	})
}

func (s *Server) handleTableDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.catalog.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
		return
	}
	s.invalidateTable(name)
	writeJSON(w, http.StatusOK, map[string]any{"unloaded": name})
}

// resolveTable maps a request's table parameter to a catalog entry.
func (s *Server) resolveTable(name string) (*catalog.Entry, error) {
	return s.catalog.Resolve(name)
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	entry, err := s.resolveTable(r.URL.Query().Get("table"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	table := entry.Table
	cols := make([]columnJSON, 0, table.Schema().NumColumns())
	for i := 0; i < table.Schema().NumColumns(); i++ {
		c := table.Schema().Column(i)
		cols = append(cols, columnJSON{Name: c.Name, Kind: c.Kind.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table":   entry.Name,
		"columns": cols,
		"rows":    table.NumRows(),
	})
}

// columnJSON describes one schema column.
type columnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// --- query endpoint ----------------------------------------------------

// QueryRequest is the /query input.
type QueryRequest struct {
	// Table names the catalog entry to query; may be empty while exactly
	// one table is loaded.
	Table string `json:"table,omitempty"`
	SQL   string `json:"sql"`
}

// QueryRow is one aggregate result.
type QueryRow struct {
	Key       string  `json:"key"`
	Value     float64 `json:"value"`
	GroupSize int     `json:"group_size"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	entry, err := s.resolveTable(req.Table)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	res, err := scorpion.RunQuery(entry.Table, req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([]QueryRow, 0, len(res.Rows))
	for _, row := range res.Rows {
		size := 0
		if row.Group != nil {
			size = row.Group.Count()
		}
		rows = append(rows, QueryRow{Key: row.Key, Value: row.Value, GroupSize: size})
	}
	writeJSON(w, http.StatusOK, map[string]any{"table": entry.Name, "rows": rows})
}

// --- explain / jobs ----------------------------------------------------

// ExplainRequest is the /explain and /jobs input.
type ExplainRequest struct {
	// Table names the catalog entry to explain against; may be empty while
	// exactly one table is loaded.
	Table            string   `json:"table,omitempty"`
	SQL              string   `json:"sql"`
	Outliers         []string `json:"outliers"`
	HoldOuts         []string `json:"holdouts,omitempty"`
	AllOthersHoldOut bool     `json:"all_others_holdout,omitempty"`
	Direction        string   `json:"direction,omitempty"` // "high" (default) | "low"
	Attributes       []string `json:"attributes,omitempty"`
	C                *float64 `json:"c,omitempty"`
	Lambda           *float64 `json:"lambda,omitempty"`
	Algorithm        string   `json:"algorithm,omitempty"` // auto|naive|dt|mc
	TopK             int      `json:"top_k,omitempty"`
	// Workers requests a search worker grant: 0 = server default, -1 =
	// GOMAXPROCS; other negative values are rejected. The scheduler clamps
	// the grant against its global budget.
	Workers int `json:"workers,omitempty"`
	// Shards fans the search across horizontal slices of the table
	// (scorpion.Request.Shards): 0 = auto from the table size and worker
	// grant, 1 = unsharded, k > 1 = slice into k group-aware windows.
	// Negative values are rejected. Sharded requests run one-shot (no
	// Explainer-session partition reuse) and per-shard best-so-far appears
	// in job progress snapshots.
	Shards int `json:"shards,omitempty"`
	// Epsilon switches the search to the anytime path
	// (scorpion.Request.Epsilon): candidates whose sampled influence
	// interval falls more than epsilon below the running top-k frontier are
	// pruned without exact scoring. 0 (or absent) = exact search; negative
	// values are rejected.
	Epsilon *float64 `json:"epsilon,omitempty"`
	// Confidence is the anytime path's joint interval coverage
	// (scorpion.Request.Confidence); absent = server default (0.95), other
	// values must lie in (0, 1).
	Confidence *float64 `json:"confidence,omitempty"`
	// Mode selects sync (default) or "async" execution on /explain;
	// ignored on /jobs, which is always async.
	Mode string `json:"mode,omitempty"`
	// Cache controls result caching for this request: "" (default) serves
	// hits, coalesces duplicates, and reuses Explainer sessions; "bypass"
	// forces a cold search whose result is not stored.
	Cache string `json:"cache,omitempty"`
}

// ExplanationJSON is one ranked explanation.
type ExplanationJSON struct {
	Where             string  `json:"where"`
	Influence         float64 `json:"influence"`
	Matched           int     `json:"matched_outlier_tuples"`
	HoldOutPenalty    float64 `json:"holdout_penalty"`
	InfluencesHoldOut bool    `json:"influences_holdout"`
}

// JobProgress is the best-so-far snapshot a running job exposes to polls.
type JobProgress struct {
	ElapsedMS   int64                `json:"elapsed_ms"`
	ScorerCalls int64                `json:"scorer_calls"`
	Best        []scorpion.BestSoFar `json:"best"`
	// Shards carries per-shard best-so-far (window-local estimates) when
	// the search runs sharded.
	Shards  []scorpion.ShardProgress `json:"shards,omitempty"`
	Version int64                    `json:"version"`
}

// resolveWorkers validates and resolves the per-request workers knob:
// 0 uses the server default, -1 (like the CLI) means GOMAXPROCS, other
// negatives are rejected, and the result is clamped to GOMAXPROCS — extra
// goroutines beyond the host's parallelism cannot help, and an absurd
// value must not allocate them.
func (s *Server) resolveWorkers(requested int) (int, error) {
	if requested < -1 {
		return 0, fmt.Errorf("bad workers %d (want -1, 0, or a positive count)", requested)
	}
	w := requested
	if w == 0 {
		w = s.Workers
	}
	maxW := runtime.GOMAXPROCS(0)
	if w < 0 {
		w = maxW
	}
	if w == 0 {
		w = 1 // serial
	}
	if w > maxW {
		w = maxW
	}
	return w, nil
}

// explainPlan is a compiled ExplainRequest: the schedulable task plus the
// cache keys that route it. key is empty when the result must not be
// cached or coalesced (caching disabled, or "cache": "bypass").
type explainPlan struct {
	task jobs.Task
	key  string
}

// buildExplainTask validates an ExplainRequest and compiles it into a
// schedulable job plan. reqID is the submitting request's correlation id
// (possibly empty); it rides the task into job views and the run's root
// span. Validation errors map to the returned status code.
func (s *Server) buildExplainTask(req *ExplainRequest, reqID string) (*explainPlan, int, error) {
	entry, err := s.resolveTable(req.Table)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	workers, err := s.resolveWorkers(req.Workers)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.Shards < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad shards %d (want 0 = auto, 1 = unsharded, or a positive count)", req.Shards)
	}
	if req.Epsilon != nil && *req.Epsilon < 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("bad epsilon %v (want >= 0; 0 = exact)", *req.Epsilon)
	}
	if req.Confidence != nil && (*req.Confidence <= 0 || *req.Confidence >= 1) {
		return nil, http.StatusBadRequest, fmt.Errorf("bad confidence %v (want a value in (0, 1))", *req.Confidence)
	}
	sreq := &scorpion.Request{
		Table:            entry.Table,
		SQL:              req.SQL,
		Outliers:         req.Outliers,
		HoldOuts:         req.HoldOuts,
		AllOthersHoldOut: req.AllOthersHoldOut,
		Attributes:       req.Attributes,
		TopK:             req.TopK,
		Shards:           req.Shards,
	}
	switch req.Direction {
	case "", "high":
		sreq.Direction = scorpion.TooHigh
	case "low":
		sreq.Direction = scorpion.TooLow
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("bad direction %q", req.Direction)
	}
	switch req.Algorithm {
	case "", "auto":
		sreq.Algorithm = scorpion.Auto
	case "naive":
		sreq.Algorithm = scorpion.Naive
	case "dt":
		sreq.Algorithm = scorpion.DT
	case "mc":
		sreq.Algorithm = scorpion.MC
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("bad algorithm %q", req.Algorithm)
	}
	switch req.Cache {
	case "", "bypass":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("bad cache %q (want bypass)", req.Cache)
	}
	// SetC/SetLambda, not field writes: an explicit {"c": 0} or
	// {"lambda": 0} is a legal knob setting (§3.2 allows λ = 0) and must
	// reach the scorer unchanged instead of being mistaken for "unset".
	if req.C != nil {
		sreq.SetC(*req.C)
	}
	if req.Lambda != nil {
		sreq.SetLambda(*req.Lambda)
	}
	if req.Epsilon != nil {
		sreq.Epsilon = *req.Epsilon
	}
	if req.Confidence != nil {
		sreq.Confidence = *req.Confidence
	}
	if s.dispatch != nil {
		// Offer this search's shards to the worker fleet. The dispatcher
		// declines non-grid algorithms and failed peers per shard, so this
		// is always safe to set; the local path is the fallback.
		sreq.ShardDispatch = s.dispatch.For(entry.Name, entry.Gen)
	}

	var key, sessionKey, streamKey string
	if s.cache != nil && req.Cache != "bypass" {
		key, sessionKey, streamKey = explainKeys(entry, sreq)
	}

	interval := s.ProgressInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	task := jobs.Task{
		Kind:      "explain",
		Table:     entry.Name,
		Workers:   workers,
		Timeout:   s.ExplainTimeout,
		RequestID: reqID,
		Run: func(ctx context.Context, granted int, report func(any)) (any, error) {
			// The job runs detached from the HTTP request (async clients
			// poll it), so the telemetry context is rebuilt here: the
			// process registry, plus a fresh root span that becomes the
			// job's phase timeline ("trace" in the result).
			ctx = obs.ContextWithRegistry(ctx, s.reg)
			root := obs.NewSpan("explain")
			root.SetAttr("table", entry.Name)
			if reqID != "" {
				root.SetAttr("request_id", reqID)
			}
			ctx = obs.ContextWithSpan(ctx, root)
			r := *sreq
			r.Workers = granted
			r.ProgressInterval = interval
			onProgress := func(p scorpion.Progress) {
				report(JobProgress{
					ElapsedMS:   p.Elapsed.Milliseconds(),
					ScorerCalls: p.ScorerCalls,
					Best:        p.Best,
					Shards:      p.Shards,
					Version:     p.Version,
				})
			}
			r.OnProgress = onProgress
			var res *scorpion.Result
			var refreshedFrom int64
			var err error
			if ss := s.streamFor(streamKey); ss != nil {
				var reason string
				res, refreshedFrom, reason, err = ss.run(ctx, &r, entry)
				if reason == "" {
					s.reg.Counter("scorpion_stream_warm_total", "table", entry.Name).Inc()
				} else {
					s.reg.Counter("scorpion_stream_cold_total",
						"table", entry.Name, "reason", reason).Inc()
				}
			} else if sess := s.sessionFor(sessionKey); sess != nil {
				res, err = sess.run(ctx, &r, granted, onProgress, interval)
			} else {
				res, err = scorpion.ExplainContext(ctx, &r)
			}
			root.End()
			if res == nil {
				return nil, err
			}
			// A partial (interrupted) result is still worth returning.
			out := explainResultJSON(res)
			out["trace"] = []*obs.Node{root.Snapshot()}
			if refreshedFrom > 0 {
				out["refreshed_from"] = refreshedFrom
			}
			if key != "" {
				out["cached"] = false
				out["cache_key"] = key
			}
			return out, err
		},
	}
	return &explainPlan{task: task, key: key}, 0, nil
}

// explainResultJSON renders a search result as the /explain response body.
func explainResultJSON(res *scorpion.Result) map[string]any {
	explanations := make([]ExplanationJSON, 0, len(res.Explanations))
	for _, e := range res.Explanations {
		explanations = append(explanations, ExplanationJSON{
			Where:             e.Where,
			Influence:         e.Influence,
			Matched:           e.MatchedOutlierTuples,
			HoldOutPenalty:    e.HoldOutPenalty,
			InfluencesHoldOut: e.InfluencesHoldOut,
		})
	}
	out := map[string]any{
		"algorithm":    res.Stats.Algorithm.String(),
		"duration_ms":  res.Stats.Duration.Milliseconds(),
		"scorer_calls": res.Stats.ScorerCalls,
		"explanations": explanations,
	}
	if res.Stats.Shards > 1 {
		out["shards"] = res.Stats.Shards
	}
	if res.Stats.Pruned > 0 || res.Stats.Escalated > 0 {
		out["pruned"] = res.Stats.Pruned
		out["escalated"] = res.Stats.Escalated
	}
	if res.Stats.ReusedPartition {
		out["reused_partition"] = true
	}
	if res.Stats.Refreshed {
		out["refreshed"] = true
	}
	if res.Stats.Interrupted {
		out["interrupted"] = true
		out["interrupt_reason"] = res.Stats.InterruptReason
	}
	return out
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	async := req.Mode == "async" || r.URL.Query().Get("mode") == "async"
	if req.Mode != "" && req.Mode != "sync" && req.Mode != "async" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad mode %q (want sync or async)", req.Mode))
		return
	}
	plan, status, err := s.buildExplainTask(&req, obs.RequestID(r.Context()))
	if err != nil {
		writeError(w, status, err)
		return
	}
	if async {
		s.submitAsync(w, plan)
		return
	}

	// Synchronous path: a thin wait-on-job wrapper. The search still runs
	// as a scheduled job (same admission, budget, progress and cancel
	// story); the handler just blocks on its completion. A cache hit is
	// answered immediately without a job; a coalesced request waits on
	// another request's identical job.
	job, inf, hit, err := s.dispatchExplain(plan, false)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	if hit != nil {
		writeJSON(w, http.StatusOK, hit)
		return
	}
	// dispatchExplain already counted this handler in inf.waiters.
	select {
	case <-job.Done():
		if inf != nil {
			inf.waiters.Add(-1)
		}
	case <-r.Context().Done():
		// Client went away or the server is draining. Cancel the job only
		// when nobody else shares it: coalesced identical requests wait on
		// ONE job, and async clients may be polling it. (A follower that
		// joins in the instant between the count reaching zero and the
		// cancel landing sees a canceled partial result — the same outcome
		// as issuing the request during a shutdown.)
		if inf == nil || (inf.waiters.Add(-1) == 0 && inf.pollers.Load() == 0) {
			s.sched.Cancel(job.ID())
			<-job.Done()
		} else {
			// Others still wait on the search; just stop waiting.
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("explanation canceled"))
			return
		}
	}
	result, err := job.Result()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("explanation exceeded %s", s.ExplainTimeout))
		case errors.Is(err, context.Canceled):
			// Either the client went away (the write below goes nowhere) or
			// the server is shutting down while the client still listens —
			// answer 503 so a drained connection never sees an empty 200.
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("explanation canceled"))
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, result)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	plan, status, err := s.buildExplainTask(&req, obs.RequestID(r.Context()))
	if err != nil {
		writeError(w, status, err)
		return
	}
	s.submitAsync(w, plan)
}

// submitAsync dispatches the plan and answers 202 with the job handle. A
// cache hit hands back an already-"done" job (poll once, get the result);
// a coalesced duplicate hands back the SAME job id as the in-flight
// original — the idempotency-key behavior for repeated submissions.
func (s *Server) submitAsync(w http.ResponseWriter, plan *explainPlan) {
	job, _, _, err := s.dispatchExplain(plan, true)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": job.ID(),
		"status": string(job.View().Status),
		"poll":   "/jobs/" + job.ID(),
	})
}

// --- cache endpoints ----------------------------------------------------

// handleCacheStats reports the result cache's counters plus the session
// store's occupancy.
func (s *Server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"results":  s.cache.Stats(),
		"sessions": s.sessions.Stats().Entries,
		"streams":  s.streams.Stats().Entries,
	})
}

// handleCacheClear drops every cached result and Explainer session.
// In-flight searches are untouched; their results repopulate the cache.
func (s *Server) handleCacheClear(w http.ResponseWriter, _ *http.Request) {
	if s.cache == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"cleared":          s.cache.Clear(),
		"sessions_cleared": s.sessions.Clear(),
		"streams_cleared":  s.streams.Clear(),
	})
}

// writeSubmitError maps scheduler admission failures to HTTP statuses:
// a full queue is load-shedding (429), a closed scheduler is shutdown (503).
func writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, jobs.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// jobJSON renders a job view for /jobs responses.
func jobJSON(v jobs.View) map[string]any {
	out := map[string]any{
		"id":      v.ID,
		"kind":    v.Kind,
		"table":   v.Table,
		"status":  string(v.Status),
		"created": v.Created.UTC().Format(time.RFC3339Nano),
	}
	if v.RequestID != "" {
		out["request_id"] = v.RequestID
	}
	// The queued/running split: queued_ms is admission wait only, and
	// running_ms (present once the job has started) is pure run time —
	// a queued-but-slow job and a fast-but-starved one look different.
	out["queued_ms"] = v.QueuedFor.Milliseconds()
	if !v.Started.IsZero() {
		out["running_ms"] = v.RanFor.Milliseconds()
	}
	if v.Status == jobs.StatusQueued && v.QueuePos > 0 {
		// 1 = next to be admitted; async clients use this to see where
		// they stand under load.
		out["position"] = v.QueuePos
	}
	if !v.Started.IsZero() {
		out["started"] = v.Started.UTC().Format(time.RFC3339Nano)
		out["workers"] = v.Workers
	}
	if !v.Finished.IsZero() {
		out["finished"] = v.Finished.UTC().Format(time.RFC3339Nano)
	}
	if v.Progress != nil {
		out["progress"] = v.Progress
	}
	if v.Result != nil {
		out["result"] = v.Result
	}
	if v.Err != nil {
		out["error"] = v.Err.Error()
	}
	return out
}

func (s *Server) handleJobList(w http.ResponseWriter, _ *http.Request) {
	views := s.sched.Jobs()
	out := make([]map[string]any, len(views))
	for i, v := range views {
		out[i] = jobJSON(v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.sched.ViewOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, jobJSON(view))
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.sched.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	// A coalesced job is shared: one client's explicit cancel must not
	// fail the others'. Every DELETE retires one async poller (so an
	// abandoned search never becomes uncancelable); the job is answered
	// "shared" — and keeps running — while synchronous waiters remain or
	// other pollers still hold the id. The CLI treats "shared" by simply
	// continuing to poll. Clients are anonymous, so the accounting is
	// one-DELETE-per-poller by convention: a RETRIED delete retires a
	// second slot — treat a "shared" answer as success, don't retry it.
	if v, ok := s.inflightJobs.Load(id); ok {
		inf := v.(*inflight)
		polling := inf.pollers.Load()
		for polling > 0 && !inf.pollers.CompareAndSwap(polling, polling-1) {
			polling = inf.pollers.Load()
		}
		if inf.waiters.Load() > 0 || polling > 1 {
			writeJSON(w, http.StatusOK, map[string]any{"shared": id, "job": jobJSON(job.View())})
			return
		}
	}
	if s.sched.Cancel(id) {
		// Live job: cancellation is in flight; report the current state.
		writeJSON(w, http.StatusOK, map[string]any{"canceled": id, "job": jobJSON(job.View())})
		return
	}
	// Terminal job: forget it, but hand back its final state — a client
	// whose cancel raced the job's own completion recovers the result from
	// this response instead of a 404 on its next poll.
	view := job.View()
	s.sched.Remove(id)
	writeJSON(w, http.StatusOK, map[string]any{"removed": id, "job": jobJSON(view)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
