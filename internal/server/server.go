// Package server implements the backend of the paper's end-to-end data
// exploration tool (§4.1, Figure 2): a JSON-over-HTTP API through which a
// visualization front-end executes aggregate queries, flags outlier and
// hold-out results, and receives ranked explanation predicates.
//
// Endpoints:
//
//	GET  /schema   — the loaded table's columns and kinds
//	POST /query    — {"sql": ...} → aggregate results with group keys
//	POST /explain  — an ExplainRequest → ranked explanations
//
// The server is stateless beyond the table it serves; one process serves
// one dataset (matching the paper's per-database workflow).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
)

// Server serves Scorpion over HTTP for a single table.
type Server struct {
	table *scorpion.Table
	mux   *http.ServeMux
	// ExplainTimeout bounds one explanation request (0 = none). The
	// deadline is enforced through the search's context: when it passes,
	// the running search itself stops (rather than being abandoned in a
	// goroutine) and the client receives a 504 JSON error.
	ExplainTimeout time.Duration
	// Workers is the default worker-pool size for explanation searches
	// (0 = serial); per-request "workers" overrides it.
	Workers int
}

// New builds a server around the given table.
func New(table *scorpion.Table) *Server {
	s := &Server{table: table, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /schema", s.handleSchema)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// columnJSON describes one schema column.
type columnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	cols := make([]columnJSON, 0, s.table.Schema().NumColumns())
	for i := 0; i < s.table.Schema().NumColumns(); i++ {
		c := s.table.Schema().Column(i)
		cols = append(cols, columnJSON{Name: c.Name, Kind: c.Kind.String()})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"columns": cols,
		"rows":    s.table.NumRows(),
	})
}

// QueryRequest is the /query input.
type QueryRequest struct {
	SQL string `json:"sql"`
}

// QueryRow is one aggregate result.
type QueryRow struct {
	Key       string  `json:"key"`
	Value     float64 `json:"value"`
	GroupSize int     `json:"group_size"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	// Reuse the Explain plumbing's query path by running a throwaway
	// request bind: querying directly through the public API.
	res, err := scorpion.RunQuery(s.table, req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	rows := make([]QueryRow, 0, len(res.Rows))
	for _, row := range res.Rows {
		rows = append(rows, QueryRow{Key: row.Key, Value: row.Value, GroupSize: row.Group.Count()})
	}
	writeJSON(w, http.StatusOK, map[string]any{"rows": rows})
}

// ExplainRequest is the /explain input.
type ExplainRequest struct {
	SQL              string   `json:"sql"`
	Outliers         []string `json:"outliers"`
	HoldOuts         []string `json:"holdouts,omitempty"`
	AllOthersHoldOut bool     `json:"all_others_holdout,omitempty"`
	Direction        string   `json:"direction,omitempty"` // "high" (default) | "low"
	Attributes       []string `json:"attributes,omitempty"`
	C                *float64 `json:"c,omitempty"`
	Lambda           *float64 `json:"lambda,omitempty"`
	Algorithm        string   `json:"algorithm,omitempty"` // auto|naive|dt|mc
	TopK             int      `json:"top_k,omitempty"`
	Workers          int      `json:"workers,omitempty"` // search worker pool (0 = server default)
}

// ExplanationJSON is one ranked explanation.
type ExplanationJSON struct {
	Where             string  `json:"where"`
	Influence         float64 `json:"influence"`
	Matched           int     `json:"matched_outlier_tuples"`
	HoldOutPenalty    float64 `json:"holdout_penalty"`
	InfluencesHoldOut bool    `json:"influences_holdout"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req ExplainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %w", err))
		return
	}
	sreq := &scorpion.Request{
		Table:            s.table,
		SQL:              req.SQL,
		Outliers:         req.Outliers,
		HoldOuts:         req.HoldOuts,
		AllOthersHoldOut: req.AllOthersHoldOut,
		Attributes:       req.Attributes,
		TopK:             req.TopK,
		Workers:          req.Workers,
	}
	if sreq.Workers == 0 {
		sreq.Workers = s.Workers
	}
	// Clamp the client-supplied knob: workers beyond the host's parallelism
	// cannot help, and an absurd value must not allocate goroutines.
	if maxW := runtime.GOMAXPROCS(0); sreq.Workers > maxW {
		sreq.Workers = maxW
	}
	switch req.Direction {
	case "", "high":
		sreq.Direction = scorpion.TooHigh
	case "low":
		sreq.Direction = scorpion.TooLow
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad direction %q", req.Direction))
		return
	}
	switch req.Algorithm {
	case "", "auto":
		sreq.Algorithm = scorpion.Auto
	case "naive":
		sreq.Algorithm = scorpion.Naive
	case "dt":
		sreq.Algorithm = scorpion.DT
	case "mc":
		sreq.Algorithm = scorpion.MC
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad algorithm %q", req.Algorithm))
		return
	}
	if req.C != nil {
		sreq.C = *req.C
	}
	if req.Lambda != nil {
		sreq.Lambda = *req.Lambda
	}

	// The request context already cancels on client disconnect and server
	// shutdown; layer the explanation deadline on top, and let the search
	// itself observe both through ExplainContext.
	ctx := r.Context()
	if s.ExplainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.ExplainTimeout)
		defer cancel()
	}
	res, err := scorpion.ExplainContext(ctx, sreq)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("explanation exceeded %s", s.ExplainTimeout))
		case errors.Is(err, context.Canceled):
			// Either the client went away (the write below goes nowhere) or
			// the server is shutting down while the client still listens —
			// answer 503 so a drained connection never sees an empty 200.
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("explanation canceled"))
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}

	explanations := make([]ExplanationJSON, 0, len(res.Explanations))
	for _, e := range res.Explanations {
		explanations = append(explanations, ExplanationJSON{
			Where:             e.Where,
			Influence:         e.Influence,
			Matched:           e.MatchedOutlierTuples,
			HoldOutPenalty:    e.HoldOutPenalty,
			InfluencesHoldOut: e.InfluencesHoldOut,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"algorithm":    res.Stats.Algorithm.String(),
		"duration_ms":  res.Stats.Duration.Milliseconds(),
		"scorer_calls": res.Stats.ScorerCalls,
		"explanations": explanations,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
