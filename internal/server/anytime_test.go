package server

// Tests for the anytime (epsilon/confidence) knobs at the HTTP layer: the
// validation contract (bad knobs are a 400 before any search starts) and the
// cache fingerprint contract (approximate results must never be served to
// exact requests or to runs at a different error bound, while a redundant
// confidence on an exact request must not fragment the cache).

import (
	"net/http"
	"strings"
	"testing"
)

func TestExplainAnytimeKnobValidation(t *testing.T) {
	srv := New(testTable(t))
	t.Cleanup(srv.Close)
	cases := []struct {
		name string
		body map[string]any
		want string // substring the error must name
	}{
		{"negative epsilon", map[string]any{"epsilon": -0.1}, "epsilon"},
		{"confidence above 1", map[string]any{"epsilon": 0.1, "confidence": 1.5}, "confidence"},
		{"negative confidence", map[string]any{"confidence": -1.0}, "confidence"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := map[string]any{
				"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
				"outliers":           []string{"12PM", "1PM"},
				"all_others_holdout": true,
			}
			for k, v := range tc.body {
				body[k] = v
			}
			rec := postJSON(t, srv, "/explain", body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
			}
			if !strings.Contains(rec.Body.String(), tc.want) {
				t.Errorf("error %q does not name %q", rec.Body, tc.want)
			}
		})
	}
}

func TestAnytimeFingerprintSeparatesCacheEntries(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)
	// The default algorithm keeps each run fast; the fingerprint logic under
	// test is algorithm-independent (epsilon keys the entry whether or not
	// the search can act on it).
	body := func(knobs map[string]any) map[string]any {
		b := map[string]any{
			"sql":                "SELECT sum(v), grp FROM t GROUP BY grp",
			"outliers":           []string{"g2", "g3"},
			"all_others_holdout": true,
		}
		for k, v := range knobs {
			b[k] = v
		}
		return b
	}

	exact := postExplain(t, srv, body(nil))
	if exact.Cached == nil || *exact.Cached {
		t.Fatalf("first exact run cached = %v", exact.Cached)
	}

	// An approximate run must not be served the exact result.
	approx := postExplain(t, srv, body(map[string]any{"epsilon": 0.5}))
	if approx.Cached == nil || *approx.Cached {
		t.Fatal("epsilon=0.5 run was served from the exact run's cache entry")
	}
	if approx.CacheKey == exact.CacheKey {
		t.Fatalf("epsilon=0.5 shares cache key %q with the exact run", approx.CacheKey)
	}

	// Repeating the same bound IS a hit, on the approximate entry.
	again := postExplain(t, srv, body(map[string]any{"epsilon": 0.5}))
	if again.Cached == nil || !*again.Cached || again.CacheKey != approx.CacheKey {
		t.Fatalf("repeat epsilon=0.5: cached = %v key %q, want hit on %q",
			again.Cached, again.CacheKey, approx.CacheKey)
	}

	// A different confidence is a different bound, hence a different entry.
	tighter := postExplain(t, srv, body(map[string]any{"epsilon": 0.5, "confidence": 0.8}))
	if tighter.CacheKey == approx.CacheKey || tighter.CacheKey == exact.CacheKey {
		t.Fatalf("epsilon=0.5/confidence=0.8 reused key %q", tighter.CacheKey)
	}
	if tighter.Cached != nil && *tighter.Cached {
		t.Fatal("distinct confidence served from another bound's entry")
	}

	// Confidence without epsilon is inert: the request is exact, and must
	// map to the exact entry rather than fragment the cache.
	inert := postExplain(t, srv, body(map[string]any{"epsilon": 0.0, "confidence": 0.8}))
	if inert.CacheKey != exact.CacheKey {
		t.Fatalf("epsilon=0 with confidence got key %q, want the exact key %q",
			inert.CacheKey, exact.CacheKey)
	}
	if inert.Cached == nil || !*inert.Cached {
		t.Fatal("epsilon=0 with confidence did not hit the exact entry")
	}
}
