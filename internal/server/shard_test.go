package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/jobs"
)

// TestExplainShardsKnob: the "shards" request knob reaches the search (the
// response reports the slice count), invalid values are rejected, and the
// cache keys sharded and unsharded runs separately.
func TestExplainShardsKnob(t *testing.T) {
	srv := New(testTable(t))
	t.Cleanup(srv.Close)
	body := func(shards int) map[string]any {
		return map[string]any{
			"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
			"outliers":           []string{"12PM", "1PM"},
			"all_others_holdout": true,
			"shards":             shards,
		}
	}

	rec := postJSON(t, srv, "/explain", body(2))
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded explain = %d (%s)", rec.Code, rec.Body)
	}
	var out map[string]any
	decodeJSON(t, rec, &out)
	if got, _ := out["shards"].(float64); got != 2 {
		t.Fatalf("result shards = %v, want 2 (body %v)", out["shards"], out)
	}
	if len(out["explanations"].([]any)) == 0 {
		t.Fatal("sharded explain returned no explanations")
	}

	// A repeat with the same shard count hits the cache...
	rec = postJSON(t, srv, "/explain", body(2))
	decodeJSON(t, rec, &out)
	if out["cached"] != true {
		t.Errorf("identical sharded repeat not cached: %v", out)
	}
	// ...but an unsharded run of the same request does not alias to it.
	rec = postJSON(t, srv, "/explain", body(1))
	decodeJSON(t, rec, &out)
	if out["cached"] == true {
		t.Error("unsharded request served from the sharded run's cache entry")
	}

	// Negative shard counts are a 400, not a search.
	rec = postJSON(t, srv, "/explain", body(-2))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("shards=-2 = %d, want 400 (%s)", rec.Code, rec.Body)
	}
}

// TestShardedJobProgressAndCancel is the serving half of the sharding
// acceptance criterion: a sharded job's /jobs/{id} snapshots carry
// per-shard best-so-far, and one DELETE cancels every shard search through
// the job's context.
func TestShardedJobProgressAndCancel(t *testing.T) {
	srv := New(bigTable(t))
	srv.ProgressInterval = 5 * time.Millisecond
	t.Cleanup(srv.Close)

	body := slowExplainBody()
	body["shards"] = 2
	rec := postJSON(t, srv, "/jobs", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", rec.Code, rec.Body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	decodeJSON(t, rec, &accepted)

	// Poll until a progress snapshot carries per-shard bests.
	view := pollJob(t, srv, accepted.JobID, 30*time.Second, func(v map[string]any) bool {
		progress, ok := v["progress"].(map[string]any)
		if !ok {
			return false
		}
		shards, ok := progress["shards"].([]any)
		if !ok || len(shards) == 0 {
			return false
		}
		for _, s := range shards {
			m := s.(map[string]any)
			if m["shard"] == "" {
				return false
			}
			if best, ok := m["best"].([]any); ok && len(best) > 0 {
				return true // at least one shard has published a best
			}
		}
		return false
	})
	_ = view

	// Cancel: the job context fans into every shard pool; the job must go
	// terminal promptly with an interrupted partial result.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+accepted.JobID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d (%s)", rec.Code, rec.Body)
	}
	final := pollJob(t, srv, accepted.JobID, 30*time.Second, func(v map[string]any) bool {
		return v["status"] == "canceled"
	})
	if result, ok := final["result"].(map[string]any); ok {
		if result["interrupted"] != true {
			t.Errorf("canceled sharded job result not marked interrupted: %v", result)
		}
	}
}

// TestJobQueuePosition: queued jobs report their 1-based admission
// position on GET /jobs/{id} and in the list view, and positions shift as
// the queue drains.
func TestJobQueuePosition(t *testing.T) {
	cat := catalog.New()
	if _, err := cat.Add("t", bigTable(t), "builtin"); err != nil {
		t.Fatal(err)
	}
	srv := NewCatalog(cat, jobs.New(jobs.Options{Budget: 1, QueueCap: 4}))
	t.Cleanup(srv.Close)

	bypass := func() map[string]any {
		body := slowExplainBody()
		body["cache"] = "bypass"
		return body
	}
	submit := func() string {
		rec := postJSON(t, srv, "/jobs", bypass())
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit = %d (%s)", rec.Code, rec.Body)
		}
		var accepted struct {
			JobID string `json:"job_id"`
		}
		decodeJSON(t, rec, &accepted)
		return accepted.JobID
	}

	first := submit()
	pollJob(t, srv, first, 30*time.Second, func(v map[string]any) bool {
		return v["status"] == "running"
	})
	second := submit()
	third := submit()

	wantPos := func(id string, want float64) {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+id, nil))
		var v map[string]any
		decodeJSON(t, rec, &v)
		if v["status"] != "queued" {
			t.Fatalf("job %s status %v, want queued", id, v["status"])
		}
		if got, _ := v["position"].(float64); got != want {
			t.Errorf("job %s position = %v, want %v", id, v["position"], want)
		}
	}
	wantPos(second, 1)
	wantPos(third, 2)

	// The running job reports no position.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+first, nil))
	var v map[string]any
	decodeJSON(t, rec, &v)
	if _, has := v["position"]; has {
		t.Errorf("running job carries position %v", v["position"])
	}

	// The list view carries the same positions.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
	var list struct {
		Jobs []map[string]any `json:"jobs"`
	}
	decodeJSON(t, rec, &list)
	byID := map[string]map[string]any{}
	for _, j := range list.Jobs {
		byID[j["id"].(string)] = j
	}
	if got, _ := byID[second]["position"].(float64); got != 1 {
		t.Errorf("list position of %s = %v, want 1", second, byID[second]["position"])
	}
	if got, _ := byID[third]["position"].(float64); got != 2 {
		t.Errorf("list position of %s = %v, want 2", third, byID[third]["position"])
	}

	// Canceling the head of the queue moves the next job up.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+second, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel queued = %d (%s)", rec.Code, rec.Body)
	}
	wantPos(third, 1)
}
