package server

// Server-level result caching and request coalescing (§8.3.3 serving
// path). Three cooperating pieces make repeated traffic cheap rather than
// merely schedulable:
//
//   - a bounded LRU of finished /explain results keyed by a canonical
//     request fingerprint (internal/cache.Cache): a repeated identical
//     request is answered from memory as an instantly-terminal job,
//     spending zero worker budget;
//   - flight coalescing on the same keys: N concurrent identical requests
//     admit ONE search job and all wait on (or poll) it;
//   - per-(table, query, labels, lambda) Explainer sessions: a request
//     that differs from a previous one only in the c knob reuses the
//     session's cached DT partitioning and high-c merge seeds instead of
//     re-partitioning.
//
// Keys embed the catalog entry's generation ("<table>@<gen>|<hash>"), so
// uploading over, replacing, or unloading a table can never serve results
// computed against the old data; the handlers additionally invalidate the
// "<table>@" prefix proactively to free dead entries.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/cache"
	"github.com/scorpiondb/scorpion/internal/catalog"
	"github.com/scorpiondb/scorpion/internal/jobs"
)

// defaultSessionEntries bounds the Explainer session store. Sessions pin a
// scorer (per-group aggregate states) and a DT partitioning per distinct
// (table, query, labels, lambda), so the bound is deliberately modest.
const defaultSessionEntries = 32

// ConfigureCache sizes the server's result cache: entries > 0 sets the
// LRU bound, entries == 0 keeps the default, and entries < 0 disables
// result caching, coalescing, and session reuse entirely. Call before
// serving traffic.
func (s *Server) ConfigureCache(entries int) {
	if entries < 0 {
		s.cache = nil
		s.sessions = nil
		s.streams = nil
		return
	}
	s.cache = cache.New(entries) // New maps 0 to cache.DefaultCapacity
	s.sessions = cache.New(defaultSessionEntries)
	s.streams = cache.New(defaultStreamEntries)
}

// --- request fingerprints ----------------------------------------------

// fingerprint is the canonical JSON shape hashed into cache keys. Every
// field that changes what a search returns is present; knobs that only
// change how fast it runs (workers, progress interval, sync vs async) are
// deliberately absent — parallel searches return the same explanations as
// serial ones, so they may share entries.
type fingerprint struct {
	SQL        string   `json:"sql"`
	Outliers   []string `json:"outliers"`
	Direction  string   `json:"direction"`
	HoldOuts   []string `json:"holdouts"`
	AllOthers  bool     `json:"all_others"`
	Attributes []string `json:"attributes"`
	Lambda     float64  `json:"lambda"`
	C          *float64 `json:"c,omitempty"` // nil for the c-agnostic session key
	Algorithm  string   `json:"algorithm"`
	TopK       int      `json:"top_k"`
	// Shards is the raw sharding knob: sharded runs of the greedy
	// algorithms (MC, DT) are distinct heuristics from unsharded ones, so
	// they must not share entries. (Auto, 0, resolves per worker grant; its
	// rare heuristic variance across grants is accepted as cache-equal.)
	Shards int `json:"shards,omitempty"`
	// Epsilon and Confidence shape which candidates survive the anytime
	// path's pruning, so approximate runs never share entries with exact
	// ones (or with runs at a different error bound). Confidence is the
	// RESOLVED value, like Lambda and C; it is omitted entirely when
	// Epsilon is 0 — exact requests are confidence-agnostic.
	Epsilon    float64 `json:"epsilon,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// explainKeys derives the result-cache key, the (c-agnostic) Explainer
// session key, and the (generation-agnostic) stream-session key for a
// compiled request — only the compiled scorpion.Request feeds the
// fingerprint, never the raw HTTP body. The session key is empty when
// session reuse cannot apply (explicitly forced NAIVE or MC searches); the
// stream key is set exactly when the session key is NOT, so the two reuse
// units never fight over a request. Lambda and C are the RESOLVED values,
// so an explicit default, an unset knob — and, after the explicit-zero fix,
// nothing else — map to the same entry.
func explainKeys(entry *catalog.Entry, sreq *scorpion.Request) (resultKey, sessionKey, streamKey string) {
	dir := "high"
	if sreq.Direction == scorpion.TooLow {
		dir = "low"
	}
	topK := sreq.TopK
	if topK <= 0 {
		topK = 5
	}
	c := sreq.ResolvedC()
	fp := fingerprint{
		SQL:        sreq.SQL,
		Outliers:   sortedCopy(sreq.Outliers),
		Direction:  dir,
		HoldOuts:   sortedCopy(sreq.HoldOuts),
		AllOthers:  sreq.AllOthersHoldOut,
		Attributes: sreq.Attributes,
		Lambda:     sreq.ResolvedLambda(),
		C:          &c,
		Algorithm:  sreq.Algorithm.String(),
		TopK:       topK,
		Shards:     sreq.Shards,
	}
	if sreq.Epsilon > 0 {
		fp.Epsilon = sreq.Epsilon
		fp.Confidence = sreq.ResolvedConfidence()
	}
	resultKey = keyFor(entry, &fp)
	// Sessions cache a FULL-table DT partitioning, so any request that
	// RESOLVES to a sharded run — explicit Shards > 1, or auto (0) on a
	// table big enough to auto-shard — never routes through one (the
	// Explainer would silently run it unsharded).
	if sreq.ResolvedShards() <= 1 && (sreq.Algorithm == scorpion.Auto || sreq.Algorithm == scorpion.DT) {
		fp.C = nil
		sessionKey = keyFor(entry, &fp)
	} else {
		// Everything the Explainer sessions do not claim (forced NAIVE/MC,
		// sharded runs) gets a stream session instead: keyed by LINEAGE
		// rather than generation, so an append's successor generation lands
		// on the same session and warm-starts from its state.
		streamKey = streamKeyFor(entry, &fp)
	}
	return resultKey, sessionKey, streamKey
}

// keyFor renders "<table>@<generation>|<hash of the canonical request>".
// The generation makes stale hits structurally impossible; the prefix
// before "|" is what table invalidation sweeps.
func keyFor(entry *catalog.Entry, fp *fingerprint) string {
	data, err := json.Marshal(fp)
	if err != nil {
		// Marshaling a struct of strings/floats cannot fail; treat an
		// impossible failure as uncacheable rather than panicking.
		return ""
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s@%d|%x", entry.Name, entry.Gen, sum[:12])
}

// streamKeyFor renders "<table>#<lineage>|<hash>": generation-free, so a
// successor generation (an append) maps to the SAME stream session, while a
// replace or reload (a new lineage) maps to a fresh one. The "#" separator
// keeps the "<table>@" invalidation sweep from touching stream sessions —
// appends must warm-start, not invalidate.
func streamKeyFor(entry *catalog.Entry, fp *fingerprint) string {
	data, err := json.Marshal(fp)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%s#%d|%x", entry.Name, entry.Lineage, sum[:12])
}

func sortedCopy(in []string) []string {
	out := make([]string, len(in))
	copy(out, in)
	sort.Strings(out)
	return out
}

// invalidateTable drops every cached result and session belonging to the
// named table; called when a table is uploaded over or unloaded. (Keys
// carry the catalog generation too, so this is proactive memory hygiene,
// not the correctness mechanism.)
func (s *Server) invalidateTable(name string) {
	if s.cache != nil {
		s.cache.InvalidatePrefix(name + "@")
	}
	if s.sessions != nil {
		s.sessions.InvalidatePrefix(name + "@")
	}
	// Replace/unload ends the lineage: stream sessions die with it. (The
	// append path does NOT call this — successor generations warm-start.)
	if s.streams != nil {
		s.streams.InvalidatePrefix(name + "#")
	}
}

// --- Explainer sessions -------------------------------------------------

// explainSession is the per-(table, query, labels, lambda) reuse unit: one
// Explainer whose DT partitioning and merge seeds survive across requests
// that differ only in c. Runs are serialized per session — shared mutable
// search state cannot be raced — while distinct sessions run concurrently.
type explainSession struct {
	mu    sync.Mutex
	tried bool
	exp   *scorpion.Explainer
}

// sessionFor resolves (or creates) the session under key; nil when session
// reuse is disabled or inapplicable.
func (s *Server) sessionFor(key string) *explainSession {
	if s.sessions == nil || key == "" {
		return nil
	}
	return s.sessions.GetOrCreate(key, 1, func() any { return &explainSession{} }).(*explainSession)
}

// run executes one request through the session, falling back to a plain
// ExplainContext when the session cannot answer it. The session only
// substitutes for searches that would run the DT path anyway: explicit DT
// requests, and Auto requests whose aggregate resolves to DT — so reuse
// never changes which algorithm a request observes.
func (sess *explainSession) run(ctx context.Context, r *scorpion.Request, granted int, onProgress func(scorpion.Progress), interval time.Duration) (*scorpion.Result, error) {
	if !sess.mu.TryLock() {
		// The session is mid-search for another c. Don't park this job's
		// granted workers (and its deadline, and its cancelability) on a
		// mutex doing nothing — run sessionless instead. Only the
		// partition reuse is forgone; the answer is identical.
		return scorpion.ExplainContext(ctx, r)
	}
	if !sess.tried {
		sess.tried = true
		if exp, err := scorpion.NewExplainer(r); err == nil {
			if r.Algorithm == scorpion.DT ||
				(r.Algorithm == scorpion.Auto && exp.AutoAlgorithm() == scorpion.DT) {
				sess.exp = exp
			}
		}
		// NewExplainer errors (non-independent aggregate, bad labels) and
		// non-DT Auto resolutions leave sess.exp nil: the decision is
		// cached so later requests skip straight to the fallback. The very
		// first such request pays the probe's query execution twice (once
		// here, once in the fallback) — a one-time cost per session key;
		// avoiding it would need ExplainContext to accept a prebuilt
		// scorer.
	}
	exp := sess.exp
	if exp == nil {
		sess.mu.Unlock()
		return scorpion.ExplainContext(ctx, r)
	}
	defer sess.mu.Unlock()
	exp.Configure(granted, onProgress, interval)
	res, err := exp.ExplainCContext(ctx, r.ResolvedC())
	// Drop the per-job callback: the long-lived session must only pin the
	// state it reuses (scorer, partitioning, merge seeds), not the
	// finished job reachable through the progress closure.
	exp.Configure(0, nil, 0)
	return res, err
}

// --- coalesced in-flight jobs -------------------------------------------

// inflight wraps the one job shared by coalesced identical requests, with
// waiter accounting so a single client's disconnect does not cancel a
// search other clients still wait on. dispatchExplain registers every
// caller BEFORE the inflight becomes observable (the leader before
// Publish, a follower before dispatch returns), so the counts can never
// transiently read zero while a client still cares. waiters counts
// synchronous handlers blocked on the job; pollers counts async
// submissions that were handed this job id to poll — each explicit
// DELETE retires one poller, and the job is only canceled by the last.
type inflight struct {
	job     *jobs.Job
	waiters atomic.Int64
	pollers atomic.Int64
}

// approxSize estimates a result's memory footprint for the cache's bytes
// accounting. It is structural, not a JSON encoding: it runs inside
// jobs.Task.OnDone — under the scheduler's lock — so it must stay O(top-k)
// cheap.
func approxSize(v any) int64 {
	size := int64(256) // fixed fields: algorithm, durations, counters, key
	m, ok := v.(map[string]any)
	if !ok {
		return size
	}
	if exps, ok := m["explanations"].([]ExplanationJSON); ok {
		for _, e := range exps {
			size += int64(len(e.Where)) + 96
		}
	}
	return size
}

// cachedResponse clones a stored result map and marks it as served from
// the cache. (The stored map is shared by every future hit — it must never
// be mutated in place.)
func cachedResponse(v any, key string) map[string]any {
	src, ok := v.(map[string]any)
	if !ok {
		return map[string]any{"cached": true, "cache_key": key}
	}
	out := make(map[string]any, len(src)+1)
	for k, val := range src {
		if k == "trace" {
			// A hit ran none of the phases the stored timeline describes;
			// serving it would misattribute another request's timings.
			continue
		}
		out[k] = val
	}
	out["cached"] = true
	return out
}

// dispatchExplain routes a compiled request through the cache: a hit is
// served directly (sync) or as an instantly-terminal job (async, which
// owes the client a pollable job id), a miss under an identical in-flight
// request coalesces onto its job, and everything else admits a fresh job
// whose result (on success) populates the cache. Exactly one of hit and
// job is non-nil on success; inflight is non-nil only for coalescable
// jobs.
func (s *Server) dispatchExplain(plan *explainPlan, async bool) (job *jobs.Job, inf *inflight, hit map[string]any, err error) {
	if s.cache == nil || plan.key == "" {
		job, err := s.sched.Submit(plan.task)
		return job, nil, nil, err
	}
	if v, ok := s.cache.Get(plan.key); ok {
		res := cachedResponse(v, plan.key)
		if !async {
			// Serve the hit without minting a job: unbounded hit traffic
			// must not churn the scheduler's terminal-job retention ring
			// out from under async clients still polling real results.
			return nil, nil, res, nil
		}
		job, err := s.sched.SubmitDone(plan.task, res)
		return job, nil, nil, err
	}
	flight, leader := s.cache.Join(plan.key)
	if leader {
		// Re-check the cache after winning leadership: the previous leader
		// may have Put its result and Forgotten the flight between our Get
		// miss and our Join, and a redundant search would burn a full
		// worker grant recomputing an entry already in store.
		if v, ok := s.cache.Get(plan.key); ok {
			flight.Abandon()
			res := cachedResponse(v, plan.key)
			if !async {
				return nil, nil, res, nil
			}
			job, err := s.sched.SubmitDone(plan.task, res)
			return job, nil, nil, err
		}
		task := plan.task
		key := plan.key
		// OnDone runs on every terminal path strictly before the job's
		// Done channel closes, so a waiter that saw the job finish — and
		// anyone it tells — is guaranteed a cache hit on re-ask. Only
		// clean successes are cached: canceled/timeout partials and
		// failures must re-run next time, not be served as final.
		task.OnDone = func(res any, jerr error) {
			if jerr == nil && res != nil {
				s.cache.Put(key, res, approxSize(res))
			}
			flight.Forget()
		}
		job, err := s.sched.Submit(task)
		if err != nil {
			// Queue full / shutdown: resolve the flight so followers (and
			// future leaders) are not stranded behind a job that never was.
			flight.Abandon()
			return nil, nil, nil, err
		}
		inf := &inflight{job: job}
		if async {
			inf.pollers.Store(1)
		} else {
			inf.waiters.Store(1) // the leader itself, counted before Publish
		}
		s.inflightJobs.Store(job.ID(), inf)
		go func() {
			<-job.Done()
			s.inflightJobs.Delete(job.ID())
		}()
		flight.Publish(inf)
		return job, inf, nil, nil
	}
	inf, ok := flight.Payload().(*inflight)
	if !ok || inf == nil {
		// The leader failed to admit its job; run independently.
		job, err := s.sched.Submit(plan.task)
		return job, nil, nil, err
	}
	if async {
		inf.pollers.Add(1)
	} else {
		inf.waiters.Add(1)
	}
	return inf.job, inf, nil, nil
}
