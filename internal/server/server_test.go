package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	scorpion "github.com/scorpiondb/scorpion"
)

// testTable builds the running-example sensors table.
func testTable(t *testing.T) *scorpion.Table {
	t.Helper()
	schema, err := scorpion.NewSchema(
		scorpion.Column{Name: "time", Kind: scorpion.Discrete},
		scorpion.Column{Name: "sensorid", Kind: scorpion.Discrete},
		scorpion.Column{Name: "voltage", Kind: scorpion.Continuous},
		scorpion.Column{Name: "temp", Kind: scorpion.Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := scorpion.NewBuilder(schema)
	for _, r := range []scorpion.Row{
		{scorpion.S("11AM"), scorpion.S("1"), scorpion.F(2.64), scorpion.F(34)},
		{scorpion.S("11AM"), scorpion.S("2"), scorpion.F(2.65), scorpion.F(35)},
		{scorpion.S("11AM"), scorpion.S("3"), scorpion.F(2.63), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(100)},
		{scorpion.S("1PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(80)},
	} {
		b.MustAppend(r)
	}
	return b.Build()
}

func postJSON(t *testing.T, srv http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestSchemaEndpoint(t *testing.T) {
	srv := New(testTable(t))
	req := httptest.NewRequest("GET", "/schema", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Columns []columnJSON `json:"columns"`
		Rows    int          `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Columns) != 4 || out.Rows != 9 {
		t.Errorf("schema = %+v", out)
	}
	if out.Columns[0].Name != "time" || out.Columns[0].Kind != "discrete" {
		t.Errorf("column 0 = %+v", out.Columns[0])
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := New(testTable(t))
	rec := postJSON(t, srv, "/query", QueryRequest{
		SQL: "SELECT avg(temp), time FROM sensors GROUP BY time",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Rows []QueryRow `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %+v", out.Rows)
	}
	for _, row := range out.Rows {
		if row.GroupSize != 3 {
			t.Errorf("group size = %d", row.GroupSize)
		}
	}
}

func TestQueryEndpointBadSQL(t *testing.T) {
	srv := New(testTable(t))
	rec := postJSON(t, srv, "/query", QueryRequest{SQL: "not sql"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("body = %s", rec.Body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := New(testTable(t))
	c := 1.0
	rec := postJSON(t, srv, "/explain", ExplainRequest{
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        "high",
		C:                &c,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Algorithm    string            `json:"algorithm"`
		Explanations []ExplanationJSON `json:"explanations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "dt" {
		t.Errorf("algorithm = %s", out.Algorithm)
	}
	if len(out.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	top := out.Explanations[0]
	if !strings.Contains(top.Where, "sensorid in ('3')") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("top explanation = %q", top.Where)
	}
}

func TestExplainEndpointValidation(t *testing.T) {
	srv := New(testTable(t))
	cases := []ExplainRequest{
		{}, // no SQL
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time"}, // no outliers
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"12PM"}, Direction: "sideways"},
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"12PM"}, Algorithm: "quantum"},
	}
	for i, req := range cases {
		rec := postJSON(t, srv, "/explain", req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d", i, rec.Code)
		}
	}
	// Malformed JSON bodies.
	req := httptest.NewRequest("POST", "/explain", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := New(testTable(t))
	req := httptest.NewRequest("GET", "/explain", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /explain status = %d", rec.Code)
	}
}
