package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	scorpion "github.com/scorpiondb/scorpion"
)

// testTable builds the running-example sensors table.
func testTable(t testing.TB) *scorpion.Table {
	t.Helper()
	schema, err := scorpion.NewSchema(
		scorpion.Column{Name: "time", Kind: scorpion.Discrete},
		scorpion.Column{Name: "sensorid", Kind: scorpion.Discrete},
		scorpion.Column{Name: "voltage", Kind: scorpion.Continuous},
		scorpion.Column{Name: "temp", Kind: scorpion.Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := scorpion.NewBuilder(schema)
	for _, r := range []scorpion.Row{
		{scorpion.S("11AM"), scorpion.S("1"), scorpion.F(2.64), scorpion.F(34)},
		{scorpion.S("11AM"), scorpion.S("2"), scorpion.F(2.65), scorpion.F(35)},
		{scorpion.S("11AM"), scorpion.S("3"), scorpion.F(2.63), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("12PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(100)},
		{scorpion.S("1PM"), scorpion.S("1"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("2"), scorpion.F(2.7), scorpion.F(35)},
		{scorpion.S("1PM"), scorpion.S("3"), scorpion.F(2.3), scorpion.F(80)},
	} {
		b.MustAppend(r)
	}
	return b.Build()
}

func postJSON(t *testing.T, srv http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func TestSchemaEndpoint(t *testing.T) {
	srv := New(testTable(t))
	req := httptest.NewRequest("GET", "/schema", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Columns []columnJSON `json:"columns"`
		Rows    int          `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Columns) != 4 || out.Rows != 9 {
		t.Errorf("schema = %+v", out)
	}
	if out.Columns[0].Name != "time" || out.Columns[0].Kind != "discrete" {
		t.Errorf("column 0 = %+v", out.Columns[0])
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv := New(testTable(t))
	rec := postJSON(t, srv, "/query", QueryRequest{
		SQL: "SELECT avg(temp), time FROM sensors GROUP BY time",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Rows []QueryRow `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows = %+v", out.Rows)
	}
	for _, row := range out.Rows {
		if row.GroupSize != 3 {
			t.Errorf("group size = %d", row.GroupSize)
		}
	}
}

func TestQueryEndpointBadSQL(t *testing.T) {
	srv := New(testTable(t))
	rec := postJSON(t, srv, "/query", QueryRequest{SQL: "not sql"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("body = %s", rec.Body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := New(testTable(t))
	c := 1.0
	rec := postJSON(t, srv, "/explain", ExplainRequest{
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        "high",
		C:                &c,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Algorithm    string            `json:"algorithm"`
		Explanations []ExplanationJSON `json:"explanations"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Algorithm != "dt" {
		t.Errorf("algorithm = %s", out.Algorithm)
	}
	if len(out.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	top := out.Explanations[0]
	if !strings.Contains(top.Where, "sensorid in ('3')") &&
		!strings.Contains(top.Where, "voltage") {
		t.Errorf("top explanation = %q", top.Where)
	}
}

func TestExplainEndpointValidation(t *testing.T) {
	srv := New(testTable(t))
	cases := []ExplainRequest{
		{}, // no SQL
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time"}, // no outliers
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"12PM"}, Direction: "sideways"},
		{SQL: "SELECT avg(temp), time FROM s GROUP BY time",
			Outliers: []string{"12PM"}, Algorithm: "quantum"},
	}
	for i, req := range cases {
		rec := postJSON(t, srv, "/explain", req)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("case %d: status = %d", i, rec.Code)
		}
	}
	// Malformed JSON bodies.
	req := httptest.NewRequest("POST", "/explain", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	srv := New(testTable(t))
	req := httptest.NewRequest("GET", "/explain", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /explain status = %d", rec.Code)
	}
}

// bigTable builds a synthetic dataset large enough that a NAIVE search over
// several continuous attributes takes far longer than the test timeout.
func bigTable(t testing.TB) *scorpion.Table {
	t.Helper()
	schema, err := scorpion.NewSchema(
		scorpion.Column{Name: "grp", Kind: scorpion.Discrete},
		scorpion.Column{Name: "a1", Kind: scorpion.Continuous},
		scorpion.Column{Name: "a2", Kind: scorpion.Continuous},
		scorpion.Column{Name: "a3", Kind: scorpion.Continuous},
		scorpion.Column{Name: "v", Kind: scorpion.Continuous},
	)
	if err != nil {
		t.Fatal(err)
	}
	b := scorpion.NewBuilder(schema)
	for g := 0; g < 4; g++ {
		key := []string{"g0", "g1", "g2", "g3"}[g]
		for i := 0; i < 800; i++ {
			v := 10.0
			if g >= 2 && i%7 == 0 {
				v = 90
			}
			b.MustAppend(scorpion.Row{
				scorpion.S(key),
				scorpion.F(float64(i % 100)),
				scorpion.F(float64((i * 13) % 100)),
				scorpion.F(float64((i * 29) % 100)),
				scorpion.F(v),
			})
		}
	}
	return b.Build()
}

// TestExplainTimeoutInterruptsSearch proves ExplainTimeout now cancels a
// running NAIVE search through the context path: a tiny timeout against a
// large table returns a 504 JSON error promptly instead of hanging until
// the search finishes.
func TestExplainTimeoutInterruptsSearch(t *testing.T) {
	srv := New(bigTable(t))
	srv.ExplainTimeout = 50 * time.Millisecond

	start := time.Now()
	rec := postJSON(t, srv, "/explain", map[string]any{
		"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
		"outliers":           []string{"g2", "g3"},
		"all_others_holdout": true,
		"algorithm":          "naive",
	})
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, http.StatusGatewayTimeout, rec.Body.String())
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("non-JSON error body: %v", err)
	}
	if body["error"] == "" {
		t.Fatal("timeout response carries no error field")
	}
	// The old goroutine+channel timeout also returned 504 quickly, but the
	// search kept running; with the context path the handler returns only
	// after the search actually stopped. Either way the response must not
	// wait for the full exhaustive search (which takes minutes).
	if elapsed > 10*time.Second {
		t.Fatalf("timeout took %s, want prompt interruption", elapsed)
	}
}

// TestExplainWorkersField checks the per-request workers knob is accepted
// and produces the same explanations as a serial request.
func TestExplainWorkersField(t *testing.T) {
	srv := New(testTable(t))
	req := map[string]any{
		"sql":                "SELECT avg(temp), time FROM readings GROUP BY time",
		"outliers":           []string{"12PM", "1PM"},
		"all_others_holdout": true,
	}
	serial := postJSON(t, srv, "/explain", req)
	req["workers"] = 8
	parallel := postJSON(t, srv, "/explain", req)
	if serial.Code != http.StatusOK || parallel.Code != http.StatusOK {
		t.Fatalf("status serial=%d parallel=%d", serial.Code, parallel.Code)
	}
	var a, b struct {
		Explanations []ExplanationJSON `json:"explanations"`
	}
	if err := json.Unmarshal(serial.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(parallel.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	if !reflect.DeepEqual(a.Explanations, b.Explanations) {
		t.Fatalf("parallel explanations differ:\nserial   %+v\nparallel %+v", a.Explanations, b.Explanations)
	}
}

// TestExplainClientDisconnect checks a cancelled request context stops the
// search without writing a response.
func TestExplainClientDisconnect(t *testing.T) {
	srv := New(bigTable(t))
	data, err := json.Marshal(map[string]any{
		"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
		"outliers":           []string{"g2", "g3"},
		"all_others_holdout": true,
		"algorithm":          "naive",
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/explain", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}
