package server

// Tests for the streaming append path: POST /tables/{name}/rows, successor
// generations warm-starting repeated explanations (refreshed_from), the
// 4xx failure surface, and append racing DELETE (race-gated via CI's -race
// run of this package).

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/catalog"
)

// streamCSV renders the streaming fixture: group-contiguous rows where the
// "out" group's a ∈ [5, 8] region carries v=100 against a background of 10.
func streamCSV(rowsPerGroup int) string {
	var b strings.Builder
	b.WriteString("g,a,v\n")
	for _, g := range []string{"hold1", "hold2", "out"} {
		for i := 0; i < rowsPerGroup; i++ {
			a := i % 10
			v := 10
			if g == "out" && a >= 5 && a <= 8 {
				v = 100
			}
			fmt.Fprintf(&b, "%s,%d,%d\n", g, a, v)
		}
	}
	return b.String()
}

// streamBatchCSV renders an append batch following the fixture's pattern.
func streamBatchCSV(n int) string {
	var b strings.Builder
	b.WriteString("g,a,v\n")
	for i := 0; i < n; i++ {
		g := []string{"hold1", "hold2", "out"}[i%3]
		a := (i * 3) % 10
		v := 10
		if g == "out" && a >= 5 && a <= 8 {
			v = 100
		}
		fmt.Fprintf(&b, "%s,%d,%d\n", g, a, v)
	}
	return b.String()
}

// streamExplainBody is the request the streaming tests repeat: forced
// NAIVE, so it routes through a stream session rather than an Explainer
// session.
func streamExplainBody() map[string]any {
	return map[string]any{
		"table":              "t",
		"sql":                "SELECT sum(v), g FROM t GROUP BY g",
		"outliers":           []string{"out"},
		"all_others_holdout": true,
		"algorithm":          "naive",
	}
}

// uploadCSV POSTs a CSV body as table name.
func uploadCSV(t *testing.T, srv *Server, name, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables?name="+name, strings.NewReader(body)))
	return rec
}

// appendCSV POSTs a CSV batch to /tables/{name}/rows.
func appendCSV(t *testing.T, srv *Server, name, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables/"+name+"/rows", strings.NewReader(body)))
	return rec
}

// streamResult decodes the fields the streaming tests assert on.
type streamResult struct {
	Algorithm     string            `json:"algorithm"`
	Explanations  []ExplanationJSON `json:"explanations"`
	Cached        bool              `json:"cached"`
	Refreshed     bool              `json:"refreshed"`
	RefreshedFrom int64             `json:"refreshed_from"`
}

func postStreamExplain(t *testing.T, srv *Server, body map[string]any) streamResult {
	t.Helper()
	rec := postJSON(t, srv, "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d (%s)", rec.Code, rec.Body)
	}
	var out streamResult
	decodeJSON(t, rec, &out)
	return out
}

func TestAppendEndpointWarmRefresh(t *testing.T) {
	srv := NewCatalog(catalog.New(), nil)
	defer srv.Close()
	if rec := uploadCSV(t, srv, "t", streamCSV(40)); rec.Code != http.StatusCreated {
		t.Fatalf("upload = %d (%s)", rec.Code, rec.Body)
	}
	// Cold first run.
	first := postStreamExplain(t, srv, streamExplainBody())
	if first.Refreshed || first.RefreshedFrom != 0 {
		t.Fatalf("first run refreshed: %+v", first)
	}
	if len(first.Explanations) == 0 {
		t.Fatal("first run found nothing")
	}

	// Append a batch: 200, successor generation, same lineage.
	rec := appendCSV(t, srv, "t", streamBatchCSV(12))
	if rec.Code != http.StatusOK {
		t.Fatalf("append = %d (%s)", rec.Code, rec.Body)
	}
	var ap struct {
		Table    tableJSON `json:"table"`
		Appended int       `json:"appended"`
	}
	decodeJSON(t, rec, &ap)
	if ap.Appended != 12 || ap.Table.Rows != 132 {
		t.Fatalf("append response = %+v", ap)
	}
	if ap.Table.AppendedRows != 12 {
		t.Fatalf("appended_rows = %d", ap.Table.AppendedRows)
	}

	// The repeated explanation warm-starts from the predecessor state.
	warm := postStreamExplain(t, srv, streamExplainBody())
	if warm.Cached {
		t.Fatal("successor generation served a stale cache hit")
	}
	if !warm.Refreshed || warm.RefreshedFrom == 0 {
		t.Fatalf("expected warm refresh, got %+v", warm)
	}

	// The warm answer must match a forced-cold run on the same data.
	bypass := streamExplainBody()
	bypass["cache"] = "bypass"
	cold := postStreamExplain(t, srv, bypass)
	if cold.Refreshed {
		t.Fatal("bypass run served warm")
	}
	if len(warm.Explanations) == 0 || len(cold.Explanations) == 0 {
		t.Fatal("empty explanations")
	}
	if warm.Explanations[0].Where != cold.Explanations[0].Where {
		t.Fatalf("warm top %q != cold top %q", warm.Explanations[0].Where, cold.Explanations[0].Where)
	}
	if d := math.Abs(warm.Explanations[0].Influence - cold.Explanations[0].Influence); d > 1e-9 {
		t.Fatalf("warm influence %v != cold %v", warm.Explanations[0].Influence, cold.Explanations[0].Influence)
	}

	// An exact repeat of the warm request is now a plain cache hit.
	repeat := postStreamExplain(t, srv, streamExplainBody())
	if !repeat.Cached {
		t.Fatalf("repeat not served from cache: %+v", repeat)
	}

	// Async jobs report refreshed_from too.
	if rec := appendCSV(t, srv, "t", streamBatchCSV(6)); rec.Code != http.StatusOK {
		t.Fatalf("append 2 = %d", rec.Code)
	}
	rec = postJSON(t, srv, "/jobs", streamExplainBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("job submit = %d (%s)", rec.Code, rec.Body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	decodeJSON(t, rec, &accepted)
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+accepted.JobID, nil))
		var view struct {
			Status string        `json:"status"`
			Result *streamResult `json:"result"`
		}
		decodeJSON(t, rec, &view)
		if view.Status == "done" {
			if view.Result == nil || !view.Result.Refreshed || view.Result.RefreshedFrom == 0 {
				t.Fatalf("job result missing refreshed_from: %+v", view.Result)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplaceStartsColdLineage(t *testing.T) {
	srv := NewCatalog(catalog.New(), nil)
	defer srv.Close()
	if rec := uploadCSV(t, srv, "t", streamCSV(40)); rec.Code != http.StatusCreated {
		t.Fatal("upload failed")
	}
	postStreamExplain(t, srv, streamExplainBody())
	if rec := appendCSV(t, srv, "t", streamBatchCSV(6)); rec.Code != http.StatusOK {
		t.Fatal("append failed")
	}
	warm := postStreamExplain(t, srv, streamExplainBody())
	if !warm.Refreshed {
		t.Fatalf("expected warm refresh before replace, got %+v", warm)
	}
	// Replacing the table ends the lineage: the next run must be cold.
	if rec := uploadCSV(t, srv, "t", streamCSV(40)); rec.Code != http.StatusCreated {
		t.Fatal("replace failed")
	}
	res := postStreamExplain(t, srv, streamExplainBody())
	if res.Cached || res.Refreshed || res.RefreshedFrom != 0 {
		t.Fatalf("replaced table served warm/stale: %+v", res)
	}
}

func TestAppendEndpointFailures(t *testing.T) {
	srv := NewCatalog(catalog.New(), nil)
	defer srv.Close()
	if rec := uploadCSV(t, srv, "t", streamCSV(10)); rec.Code != http.StatusCreated {
		t.Fatal("upload failed")
	}
	cases := []struct {
		name string
		tab  string
		body string
		want int
	}{
		{"unknown table", "ghost", "g,a,v\nx,1,2\n", http.StatusNotFound},
		{"schema mismatch", "t", "g,a,extra\nx,1,2\n", http.StatusBadRequest},
		{"bad kind", "t", "g,a,v\nx,notanumber,2\n", http.StatusBadRequest},
		{"ragged row", "t", "g,a,v\nx,1\n", http.StatusBadRequest},
		{"empty body", "t", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := appendCSV(t, srv, tc.tab, tc.body); rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	// NaN/Inf VALUES are legal float input: the append lands and a
	// subsequent explanation stays finite, never panics.
	if rec := appendCSV(t, srv, "t", "g,a,v\nout,6,NaN\nout,7,+Inf\n"); rec.Code != http.StatusOK {
		t.Fatalf("NaN/Inf append = %d (%s)", rec.Code, rec.Body)
	}
	res := postStreamExplain(t, srv, streamExplainBody())
	for _, e := range res.Explanations {
		if math.IsNaN(e.Influence) || math.IsInf(e.Influence, 0) {
			t.Fatalf("explanation %q has non-finite influence %v", e.Where, e.Influence)
		}
	}
	// Upload size cap applies to appends too.
	srv.MaxUploadBytes = 64
	if rec := appendCSV(t, srv, "t", streamBatchCSV(1000)); rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized append = %d, want 413", rec.Code)
	}
	srv.MaxUploadBytes = 0
	// Appending to a deleted table 404s.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/tables/t", nil))
	if rec.Code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if rec := appendCSV(t, srv, "t", streamBatchCSV(3)); rec.Code != http.StatusNotFound {
		t.Errorf("append after delete = %d, want 404", rec.Code)
	}
}

func TestAppendRacingTableDelete(t *testing.T) {
	// Appends racing DELETE /tables/{name} and re-uploads must produce
	// clean statuses (200 landed, 404 lost the race, 409-free) and never
	// panic; the race detector gates the shared catalog/appender state.
	srv := NewCatalog(catalog.New(), nil)
	defer srv.Close()
	if rec := uploadCSV(t, srv, "t", streamCSV(10)); rec.Code != http.StatusCreated {
		t.Fatal("upload failed")
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables/t/rows",
					strings.NewReader("g,a,v\nout,1,5\n")))
				switch rec.Code {
				case http.StatusOK, http.StatusNotFound:
				default:
					t.Errorf("append status %d (%s)", rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 25; j++ {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/tables/t", nil))
			if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
				t.Errorf("delete status %d", rec.Code)
				return
			}
			if rec := uploadCSV(t, srv, "t", streamCSV(10)); rec.Code != http.StatusCreated {
				t.Errorf("re-upload status %d", rec.Code)
				return
			}
		}
	}()
	wg.Wait()
}
