package server

// Streaming warm-start (the append path's serving story). Where cache.go
// makes REPEATED traffic cheap on FIXED data, this file makes repeated
// traffic cheap on GROWING data: appending rows to a table publishes a
// successor generation on the same lineage, and instead of treating the new
// generation as a plain cache invalidation, the server keeps a
// per-(table lineage, request) scorpion.Refresher whose incremental state —
// per-group provenance and decomposable aggregate states advanced from each
// appended tail — lets the next identical request re-score the previous
// search's candidates instead of searching cold. Results carry
// "refreshed": true and "refreshed_from": <generation the warm state came
// from>.
//
// Stream sessions are keyed WITHOUT the generation (lineage instead), so a
// successor generation maps to the same session; a replace or unload starts
// a new lineage and therefore a cold session. They currently serve the
// requests the Explainer sessions do NOT claim (forced NAIVE/MC searches
// and sharded runs): an unsharded DT/Auto request keeps its §8.3.3 c-sweep
// partition reuse, which a per-c stream session would otherwise defeat.

import (
	"context"
	"sync"

	scorpion "github.com/scorpiondb/scorpion"
	"github.com/scorpiondb/scorpion/internal/catalog"
)

// defaultStreamEntries bounds the stream-session store. Each session pins a
// table snapshot, the full candidate list of its last run, and per-group
// aggregate states, so the bound is deliberately modest.
const defaultStreamEntries = 16

// streamSession is one warm-start unit: a Refresher plus the generation its
// state was last computed against. Runs are serialized per session;
// concurrent identical requests coalesce upstream (cache.go), and a
// concurrent DIFFERENT request on the same session falls back to a plain
// search rather than queueing.
type streamSession struct {
	mu  sync.Mutex
	ref *scorpion.Refresher
	gen int64 // generation of ref's current state; 0 before the first run
}

// streamFor resolves (or creates) the stream session under key; nil when
// streaming warm-start is disabled or inapplicable.
func (s *Server) streamFor(key string) *streamSession {
	if s.streams == nil || key == "" {
		return nil
	}
	return s.streams.GetOrCreate(key, 1, func() any { return &streamSession{} }).(*streamSession)
}

// run executes one request through the session. It returns the generation
// the result was refreshed from (0 when the run was cold) and, for cold
// runs, WHY the warm path was not taken (reason is "" exactly when the
// run was warm) — the label on the server's stream warm/cold counters.
// The request r already carries the job's granted workers and progress
// reporter.
func (ss *streamSession) run(ctx context.Context, r *scorpion.Request, entry *catalog.Entry) (*scorpion.Result, int64, string, error) {
	if !ss.mu.TryLock() {
		// Mid-run for another request: don't park this job's workers on a
		// lock — run sessionless. Only the warm start is forgone.
		res, err := scorpion.ExplainContext(ctx, r)
		return res, 0, "busy", err
	}
	defer ss.mu.Unlock()
	if entry.Gen < ss.gen {
		// A queued job that resolved its entry BEFORE an append another
		// request has since advanced past: answering it from the session
		// would cold-rebuild on the obsolete snapshot and throw away the
		// fresher warm state. Run it sessionless instead.
		res, err := scorpion.ExplainContext(ctx, r)
		return res, 0, "stale_generation", err
	}
	if ss.ref == nil {
		ref, err := scorpion.NewRefresher(r)
		if err != nil {
			res, rerr := scorpion.ExplainContext(ctx, r)
			return res, 0, "init_failed", rerr
		}
		ss.ref = ref
	}
	prevGen := ss.gen
	ss.ref.Configure(r.Workers, r.OnProgress, r.ProgressInterval)
	res, refreshed, err := ss.ref.ExplainTable(ctx, entry.Table)
	reason := ""
	if !refreshed {
		if reason = ss.ref.FallbackReason(); reason == "" {
			reason = "unknown"
		}
	}
	// Drop the per-job callback so the long-lived session only pins the
	// state it reuses, not the finished job behind the progress closure.
	ss.ref.Configure(0, nil, 0)
	if err == nil {
		ss.gen = entry.Gen
	}
	if refreshed && prevGen != 0 {
		return res, prevGen, reason, err
	}
	return res, 0, reason, err
}
