package server

// Observability-surface suite: the introspection endpoints (/healthz,
// /version, /metrics, /debug/vars), request-id assignment/echo and its
// propagation into job views, the queued_ms/running_ms split, and the
// job trace timeline (present in job results, absent from cache hits).

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func obsExplainBody() ExplainRequest {
	c := 1.0
	return ExplainRequest{
		SQL:              "SELECT avg(temp), time FROM sensors GROUP BY time",
		Outliers:         []string{"12PM", "1PM"},
		AllOthersHoldOut: true,
		Direction:        "high",
		C:                &c,
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := New(testTable(t))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, body %s", rec.Code, rec.Body)
	}
	var out struct {
		Status string `json:"status"`
		Tables int    `json:"tables"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Tables != 1 {
		t.Errorf("healthz body = %+v", out)
	}

	srv.Close()
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz after Close = %d, want 503", rec.Code)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv := New(testTable(t))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/version", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("version = %d, body %s", rec.Code, rec.Body)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if goVer, _ := out["go"].(string); !strings.HasPrefix(goVer, "go") {
		t.Errorf("version go = %v", out["go"])
	}
	if _, ok := out["gomaxprocs"].(float64); !ok {
		t.Errorf("version gomaxprocs = %v", out["gomaxprocs"])
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New(testTable(t))
	// Generate some traffic first so the HTTP families exist.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tables", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("tables = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		`scorpion_http_requests_total{method="GET",route="GET /tables",status="200"} 1`,
		"# TYPE scorpion_http_request_seconds histogram",
		`scorpion_cache_hits_total{cache="results"} 0`,
		"scorpion_jobs_queue_depth 0",
		"scorpion_jobs_worker_budget",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q; got:\n%s", want, text)
		}
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	srv := New(testTable(t))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("debug/vars = %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("debug/vars is not JSON: %v; body %s", err, rec.Body)
	}
	if _, ok := out["scorpion_jobs_queue_depth"]; !ok {
		t.Errorf("debug/vars missing scorpion_jobs_queue_depth: %v", out)
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	srv := New(testTable(t))

	// No client id: one is minted and echoed.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/tables", nil))
	if got := rec.Header().Get("X-Request-ID"); got == "" {
		t.Error("no X-Request-ID assigned")
	}

	// A client id is honored verbatim.
	req := httptest.NewRequest("GET", "/tables", nil)
	req.Header.Set("X-Request-ID", "client-abc")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != "client-abc" {
		t.Errorf("X-Request-ID = %q, want client-abc", got)
	}
}

// TestJobViewTimingsAndRequestID is the regression test for the
// queued_ms/running_ms split: a finished job's view must report both, the
// submitting request's id must ride into the view, and the result must
// carry the phase-trace timeline.
func TestJobViewTimingsAndRequestID(t *testing.T) {
	srv := New(testTable(t))
	body, _ := json.Marshal(obsExplainBody())
	req := httptest.NewRequest("POST", "/jobs", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "trace-me")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, body %s", rec.Code, rec.Body)
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}

	var view map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec = httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+accepted.JobID, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("poll = %d, body %s", rec.Code, rec.Body)
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
			t.Fatal(err)
		}
		if view["status"] == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if view["request_id"] != "trace-me" {
		t.Errorf("request_id = %v, want trace-me", view["request_id"])
	}
	if _, ok := view["queued_ms"].(float64); !ok {
		t.Errorf("queued_ms missing or not a number: %v", view["queued_ms"])
	}
	run, ok := view["running_ms"].(float64)
	if !ok || run < 0 {
		t.Errorf("running_ms = %v, want a non-negative number", view["running_ms"])
	}
	result, ok := view["result"].(map[string]any)
	if !ok {
		t.Fatalf("result missing: %v", view)
	}
	trace, ok := result["trace"].([]any)
	if !ok || len(trace) != 1 {
		t.Fatalf("trace = %v, want a one-element timeline", result["trace"])
	}
	rootNode, ok := trace[0].(map[string]any)
	if !ok || rootNode["name"] != "explain" {
		t.Errorf("trace root = %v, want an explain span", trace[0])
	}
	if attrs, ok := rootNode["attrs"].(map[string]any); !ok || attrs["request_id"] != "trace-me" {
		t.Errorf("trace root attrs = %v, want request_id trace-me", rootNode["attrs"])
	}
	children, _ := rootNode["children"].([]any)
	var names []string
	for _, c := range children {
		if m, ok := c.(map[string]any); ok {
			names = append(names, m["name"].(string))
		}
	}
	// This request routes through the Explainer session path, whose trace
	// is search + rank (the plan phase is the cached session state; the
	// one-shot path's plan span is pinned by the root package's trace
	// suite).
	joined := strings.Join(names, ",")
	for _, phase := range []string{"search", "rank"} {
		if !strings.Contains(joined, phase) {
			t.Errorf("trace children = %v, missing %q", names, phase)
		}
	}
}

// TestCachedResponseOmitsTrace: a cache hit must not replay the original
// run's phase timeline as if the hit had executed it.
func TestCachedResponseOmitsTrace(t *testing.T) {
	srv := New(testTable(t))
	first := postJSON(t, srv, "/explain", obsExplainBody())
	if first.Code != http.StatusOK {
		t.Fatalf("first = %d, body %s", first.Code, first.Body)
	}
	var cold map[string]any
	if err := json.Unmarshal(first.Body.Bytes(), &cold); err != nil {
		t.Fatal(err)
	}
	if _, ok := cold["trace"]; !ok {
		t.Fatal("cold run has no trace")
	}

	second := postJSON(t, srv, "/explain", obsExplainBody())
	if second.Code != http.StatusOK {
		t.Fatalf("second = %d, body %s", second.Code, second.Body)
	}
	var hit map[string]any
	if err := json.Unmarshal(second.Body.Bytes(), &hit); err != nil {
		t.Fatal(err)
	}
	if hit["cached"] != true {
		t.Fatalf("second run not served from cache: %v", hit)
	}
	if _, ok := hit["trace"]; ok {
		t.Error("cache hit carries a stale trace")
	}
}
