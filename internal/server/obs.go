package server

// The server's observability surface: request-ID correlation, per-route
// HTTP metrics, request-scoped logging, and the introspection endpoints
// (/metrics, /debug/vars, /healthz, /version, optional /debug/pprof).
//
// Every request is stamped with a correlation id — the client's
// X-Request-ID when present, a fresh one otherwise — which is echoed in
// the response header, attached to the request-scoped logger, carried
// into any job the request submits (visible in /jobs views), and recorded
// on the job's root span. One registry (created in NewCatalog) collects
// the whole process: HTTP traffic here, scheduler and cache counters via
// scrape-time collectors, and search-spine metrics through the request
// context.

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"github.com/scorpiondb/scorpion/internal/obs"
)

// Registry returns the server's metrics registry — the one scraped by
// GET /metrics. Callers embedding the server can register their own
// collectors on it.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetLogger installs the base logger for request-scoped logging. Each
// request logs through a child logger carrying its request id. The
// default (nil) discards everything.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// EnablePprof mounts the standard runtime profiler under /debug/pprof/.
// Off by default: profiling endpoints can stall the process (CPU
// profiles block for their duration), so exposure is an explicit opt-in
// (the server binary's -pprof flag).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ServeHTTP implements http.Handler: it wraps the route mux with the
// telemetry middleware — request-id assignment/echo, context wiring
// (registry, logger, request id), per-route request/latency/status
// metrics, and one access-log line per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)

	ctx := obs.ContextWithRequestID(r.Context(), reqID)
	ctx = obs.ContextWithRegistry(ctx, s.reg)
	logger := s.log
	if logger != nil {
		logger = logger.With("request_id", reqID)
		ctx = obs.ContextWithLogger(ctx, logger)
	}

	// Resolve the route pattern BEFORE dispatch: the mux rewrites the
	// request it passes down, so the pattern is not visible on our copy
	// afterwards. Unmatched requests share one "unmatched" series rather
	// than minting a label per probed path.
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}

	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))

	status := sw.status
	if status == 0 {
		status = http.StatusOK // handler wrote a body (or nothing) without WriteHeader
	}
	elapsed := time.Since(start)
	s.reg.Counter("scorpion_http_requests_total",
		"route", route, "method", r.Method, "status", strconv.Itoa(status)).Inc()
	s.reg.Histogram("scorpion_http_request_seconds", nil, "route", route).
		Observe(elapsed.Seconds())
	if logger != nil {
		logger.Info("http request",
			"method", r.Method, "path", r.URL.Path, "route", route,
			"status", status, "duration_ms", elapsed.Milliseconds())
	}
}

// statusWriter captures the response status for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// newRequestID mints a 16-hex-char correlation id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unknown" // crypto/rand failing means the host is broken
	}
	return hex.EncodeToString(b[:])
}

// --- introspection endpoints --------------------------------------------

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleDebugVars serves the same registry as one JSON document — the
// expvar-style view for humans and scripts. (A hand-rolled handler, not
// expvar.Publish: publishing panics on duplicate names, which every
// test spinning up a second server would hit.)
func (s *Server) handleDebugVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.WriteJSON(w)
}

// handleHealthz answers liveness probes: 200 while the server accepts
// work, 503 once the scheduler has been closed (draining/shutdown) so
// load balancers stop routing to a process that would only answer 503s
// on /explain anyway.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.sched.Closed() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shutting_down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"tables": len(s.catalog.List()),
	})
}

// handleVersion reports build identity: module version and VCS revision
// when the binary carries build info, plus the Go runtime and its
// parallelism (the default worker budget's ceiling).
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{
		"go":         runtime.Version(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		out["module"] = bi.Main.Path
		if bi.Main.Version != "" {
			out["version"] = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				out["revision"] = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}
