package server

// Tests for the server-level result cache: repeat hits, concurrent
// coalescing (race-gated via CI's -race run of this package), catalog
// invalidation, §8.3.3 session reuse across c values, the cache endpoints,
// and the explicit-zero knob round-trip.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/scorpiondb/scorpion/internal/jobs"
)

// explainBody is the canonical request the cache tests repeat.
func explainBody() map[string]any {
	return map[string]any{
		"sql":                "SELECT avg(v), grp FROM t GROUP BY grp",
		"outliers":           []string{"g2", "g3"},
		"all_others_holdout": true,
	}
}

// explainResult decodes the fields these tests assert on.
type explainResult struct {
	Algorithm       string            `json:"algorithm"`
	ScorerCalls     int64             `json:"scorer_calls"`
	Explanations    []ExplanationJSON `json:"explanations"`
	Cached          *bool             `json:"cached"`
	CacheKey        string            `json:"cache_key"`
	ReusedPartition bool              `json:"reused_partition"`
}

func postExplain(t *testing.T, srv *Server, body map[string]any) explainResult {
	t.Helper()
	rec := postJSON(t, srv, "/explain", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("explain = %d (%s)", rec.Code, rec.Body)
	}
	var out explainResult
	decodeJSON(t, rec, &out)
	return out
}

// cacheStats fetches GET /cache.
func cacheStats(t *testing.T, srv *Server) map[string]any {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/cache", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /cache = %d", rec.Code)
	}
	var out map[string]any
	decodeJSON(t, rec, &out)
	return out
}

// startedJobs counts jobs that actually ran (cache-hit jobs are terminal
// without ever starting).
func startedJobs(t *testing.T, srv *Server) int {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
	var out struct {
		Jobs []map[string]any `json:"jobs"`
	}
	decodeJSON(t, rec, &out)
	n := 0
	for _, j := range out.Jobs {
		if _, ok := j["started"]; ok {
			n++
		}
	}
	return n
}

// TestExplainCacheHitServesRepeat is the core acceptance criterion: an
// identical repeated /explain is served from the cache — "cached": true,
// identical explanations, zero new scorer calls (no second search job
// ever starts).
func TestExplainCacheHitServesRepeat(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	first := postExplain(t, srv, explainBody())
	if first.Cached == nil || *first.Cached {
		t.Fatalf("first response cached = %v, want false", first.Cached)
	}
	if first.CacheKey == "" {
		t.Fatal("first response has no cache_key")
	}
	second := postExplain(t, srv, explainBody())
	if second.Cached == nil || !*second.Cached {
		t.Fatalf("repeat response cached = %v, want true", second.Cached)
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache_key changed across identical requests: %q vs %q", first.CacheKey, second.CacheKey)
	}
	if len(second.Explanations) == 0 || len(second.Explanations) != len(first.Explanations) {
		t.Fatalf("cached explanations = %d, first = %d", len(second.Explanations), len(first.Explanations))
	}
	for i := range first.Explanations {
		if first.Explanations[i] != second.Explanations[i] {
			t.Errorf("explanation %d differs: %+v vs %+v", i, first.Explanations[i], second.Explanations[i])
		}
	}
	// Zero new scorer calls: only ONE job ever started a search.
	if n := startedJobs(t, srv); n != 1 {
		t.Errorf("%d jobs started, want 1 (the repeat must not search)", n)
	}
	stats := cacheStats(t, srv)
	results, _ := stats["results"].(map[string]any)
	if results == nil || results["hits"].(float64) < 1 {
		t.Errorf("cache stats after hit = %v", stats)
	}
}

// TestExplainCoalescesConcurrentDuplicates runs N identical synchronous
// requests concurrently: exactly one search job (and thus one scorer) may
// run; everyone still gets the full answer. Race-gated in CI.
func TestExplainCoalescesConcurrentDuplicates(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	const n = 8
	results := make([]explainResult, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = postExplain(t, srv, explainBody())
		}(i)
	}
	close(start)
	wg.Wait()

	if got := startedJobs(t, srv); got != 1 {
		t.Fatalf("%d search jobs started for %d identical concurrent requests, want exactly 1", got, n)
	}
	for i := 1; i < n; i++ {
		if len(results[i].Explanations) != len(results[0].Explanations) {
			t.Fatalf("request %d got %d explanations, request 0 got %d",
				i, len(results[i].Explanations), len(results[0].Explanations))
		}
		for k := range results[0].Explanations {
			if results[i].Explanations[k] != results[0].Explanations[k] {
				t.Errorf("request %d explanation %d differs", i, k)
			}
		}
	}
	stats := cacheStats(t, srv)
	results0, _ := stats["results"].(map[string]any)
	if results0 == nil {
		t.Fatalf("no results stats: %v", stats)
	}
	coalesced := int(results0["coalesced"].(float64))
	hits := int(results0["hits"].(float64))
	if coalesced+hits != n-1 {
		t.Errorf("coalesced %d + hits %d != %d duplicates", coalesced, hits, n-1)
	}
}

// TestCacheInvalidationOnTableChange proves upload-over and unload both
// invalidate a table's entries: the same request against replaced data is
// a fresh search, never a stale hit.
func TestCacheInvalidationOnTableChange(t *testing.T) {
	srv := multiTableServer(t, jobs.Options{})
	upload := func(csv string) {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables?name=up", strings.NewReader(csv)))
		if rec.Code != http.StatusCreated {
			t.Fatalf("upload = %d (%s)", rec.Code, rec.Body)
		}
	}
	body := map[string]any{
		"table":              "up",
		"sql":                "SELECT avg(v), g FROM up GROUP BY g",
		"outliers":           []string{"b"},
		"all_others_holdout": true,
	}
	upload("g,a,v\na,x,1\na,y,2\nb,x,9\nb,y,8\n")
	first := postExplain(t, srv, body)
	if first.Cached == nil || *first.Cached {
		t.Fatalf("first = %+v", first)
	}
	if got := postExplain(t, srv, body); got.Cached == nil || !*got.Cached {
		t.Fatal("repeat against unchanged table was not a hit")
	}

	// Replace the table by uploading over the same name: the next identical
	// request must re-search (different generation ⇒ different key).
	upload("g,a,v\na,x,5\na,y,6\nb,x,70\nb,y,60\n")
	replaced := postExplain(t, srv, body)
	if replaced.Cached == nil || *replaced.Cached {
		t.Fatal("request after table replace served a stale cached result")
	}
	if replaced.CacheKey == first.CacheKey {
		t.Error("cache key did not change with the table's generation")
	}

	// Unload, re-upload, and ask again: still no stale hit.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/tables/up", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unload = %d", rec.Code)
	}
	upload("g,a,v\na,x,1\na,y,2\nb,x,9\nb,y,8\n")
	if got := postExplain(t, srv, body); got.Cached == nil || *got.Cached {
		t.Fatal("request after unload+reload served a stale cached result")
	}

	stats := cacheStats(t, srv)
	results, _ := stats["results"].(map[string]any)
	if results == nil || results["invalidations"].(float64) < 1 {
		t.Errorf("no invalidations recorded: %v", stats)
	}
}

// TestCSweepReusesSessionPartitioning is the HTTP half of the §8.3.3
// acceptance criterion: a repeat differing only in c reuses the session's
// DT partitioning — no re-partition, strictly fewer scorer calls than a
// cold run at the same c.
func TestCSweepReusesSessionPartitioning(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	body := explainBody()
	body["algorithm"] = "dt"
	body["c"] = 1.0
	first := postExplain(t, srv, body)
	if first.ReusedPartition {
		t.Fatal("cold run claims a reused partitioning")
	}

	body["c"] = 0.5
	warm := postExplain(t, srv, body)
	if warm.Cached != nil && *warm.Cached {
		t.Fatal("different c must not be a result-cache hit")
	}
	if !warm.ReusedPartition {
		t.Fatal("c-sweep repeat did not reuse the session's partitioning")
	}

	cold := explainBody()
	cold["algorithm"] = "dt"
	cold["c"] = 0.5
	cold["cache"] = "bypass" // forces a sessionless cold search
	coldRes := postExplain(t, srv, cold)
	if coldRes.ReusedPartition {
		t.Fatal("bypass run reused a session")
	}
	if warm.ScorerCalls >= coldRes.ScorerCalls {
		t.Errorf("warm c-sweep spent %d scorer calls, cold %d — partition reuse saved nothing",
			warm.ScorerCalls, coldRes.ScorerCalls)
	}
}

// TestExplicitZeroKnobsSurviveHTTP is the round-trip half of the
// explicit-zero fix: {"lambda": 0} flips every influence non-positive
// (objective −(1−λ)·penalty), and {"c": 0} yields different influence
// values than the default c — under the old bug both zeros were silently
// replaced by the defaults and the responses were identical.
func TestExplicitZeroKnobsSurviveHTTP(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	withDefaults := postExplain(t, srv, explainBody())
	if len(withDefaults.Explanations) == 0 || withDefaults.Explanations[0].Influence <= 0 {
		t.Fatalf("default run top influence = %+v, want positive", withDefaults.Explanations)
	}

	lambdaZero := explainBody()
	lambdaZero["lambda"] = 0.0
	lz := postExplain(t, srv, lambdaZero)
	for _, e := range lz.Explanations {
		if e.Influence > 0 {
			t.Fatalf("lambda 0: influence %v > 0 for %q — the zero was replaced by the default", e.Influence, e.Where)
		}
	}

	cZero := explainBody()
	cZero["c"] = 0.0
	cDefault := explainBody()
	cDefault["c"] = 0.2
	z := postExplain(t, srv, cZero)
	d := postExplain(t, srv, cDefault)
	if len(z.Explanations) == 0 || len(d.Explanations) == 0 {
		t.Fatal("no explanations")
	}
	if z.Explanations[0].Influence == d.Explanations[0].Influence {
		t.Errorf("c 0 and c 0.2 produced identical top influence %v — the explicit zero did not reach the scorer",
			z.Explanations[0].Influence)
	}
}

// TestCacheBypassAndClear covers the operator controls: "cache": "bypass"
// runs cold and stores nothing; DELETE /cache empties the store so the
// next identical request searches again.
func TestCacheBypassAndClear(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	bypass := explainBody()
	bypass["cache"] = "bypass"
	if got := postExplain(t, srv, bypass); got.Cached != nil || got.CacheKey != "" {
		t.Fatalf("bypass response carries cache fields: %+v", got)
	}
	if got := postExplain(t, srv, bypass); got.Cached != nil {
		t.Fatal("second bypass was served from cache")
	}
	if n := startedJobs(t, srv); n != 2 {
		t.Fatalf("%d jobs started, want 2 (bypass must not coalesce or hit)", n)
	}

	// Populate, then clear.
	postExplain(t, srv, explainBody())
	if got := postExplain(t, srv, explainBody()); got.Cached == nil || !*got.Cached {
		t.Fatal("no hit before clear")
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/cache", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE /cache = %d", rec.Code)
	}
	var cleared struct {
		Cleared int `json:"cleared"`
	}
	decodeJSON(t, rec, &cleared)
	if cleared.Cleared < 1 {
		t.Errorf("cleared = %d, want >= 1", cleared.Cleared)
	}
	if got := postExplain(t, srv, explainBody()); got.Cached == nil || *got.Cached {
		t.Fatal("request after clear was still a hit")
	}
}

// TestCacheDisabled checks ConfigureCache(-1) turns the whole layer off:
// no cache fields in responses and /cache reports disabled.
func TestCacheDisabled(t *testing.T) {
	srv := New(testTable(t))
	srv.ConfigureCache(-1)
	t.Cleanup(srv.Close)

	body := map[string]any{
		"sql":                "SELECT avg(temp), time FROM sensors GROUP BY time",
		"outliers":           []string{"12PM", "1PM"},
		"all_others_holdout": true,
	}
	if got := postExplain(t, srv, body); got.Cached != nil {
		t.Fatalf("disabled cache still decorated the response: %+v", got)
	}
	postExplain(t, srv, body)
	if n := startedJobs(t, srv); n != 2 {
		t.Errorf("%d jobs started, want 2 with caching disabled", n)
	}
	stats := cacheStats(t, srv)
	if enabled, _ := stats["enabled"].(bool); enabled {
		t.Errorf("GET /cache = %v, want enabled false", stats)
	}
}

// TestAsyncCoalescingSharesJobID checks the idempotency-key behavior: an
// async duplicate of an in-flight request returns the SAME job id, and an
// async duplicate of a finished one returns an instantly-"done" job.
func TestAsyncCoalescingSharesJobID(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	submit := func() (string, string) {
		rec := postJSON(t, srv, "/jobs", slowExplainBody())
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit = %d (%s)", rec.Code, rec.Body)
		}
		var out struct {
			JobID  string `json:"job_id"`
			Status string `json:"status"`
		}
		decodeJSON(t, rec, &out)
		return out.JobID, out.Status
	}
	id1, _ := submit()
	id2, _ := submit()
	if id1 != id2 {
		t.Fatalf("duplicate async submissions got distinct jobs %s / %s", id1, id2)
	}
	// Two async clients share the job, so the first DELETE only retires
	// one poller ("shared" refusal) and the second actually cancels — one
	// client's cancel must not kill a search the other still polls.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+id1, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first cancel = %d", rec.Code)
	}
	var sharedOut struct {
		Shared string `json:"shared"`
	}
	decodeJSON(t, rec, &sharedOut)
	if sharedOut.Shared != id1 {
		t.Fatalf("first DELETE of a twice-polled job = %s, want shared refusal", rec.Body)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+id1, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("second cancel = %d", rec.Code)
	}
	// The canceled (partial) result must NOT be cached, so a later
	// submission admits a fresh job.
	pollJob(t, srv, id1, 30*time.Second, func(v map[string]any) bool {
		s, _ := v["status"].(string)
		return s == "canceled"
	})
	id3, _ := submit()
	if id3 == id1 {
		t.Fatal("submission after cancel coalesced onto the dead job")
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+id3, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("cleanup cancel = %d", rec.Code)
	}
}

// TestDeleteSharedJobRefusesCancel proves an explicit DELETE /jobs/{id}
// cannot kill a search a synchronous client still waits on: the server
// answers "shared" and the job runs on; once the waiter leaves, the
// cancel goes through.
func TestDeleteSharedJobRefusesCancel(t *testing.T) {
	srv := New(bigTable(t))
	t.Cleanup(srv.Close)

	data, err := json.Marshal(slowExplainBody())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		req := httptest.NewRequest("POST", "/explain", bytes.NewReader(data)).WithContext(ctx)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()

	// Find the running job the sync handler waits on.
	var id string
	deadline := time.Now().Add(30 * time.Second)
	for id == "" {
		if time.Now().After(deadline) {
			t.Fatal("no running job appeared")
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
		var out struct {
			Jobs []map[string]any `json:"jobs"`
		}
		decodeJSON(t, rec, &out)
		for _, j := range out.Jobs {
			if j["status"] == "running" {
				id = j["id"].(string)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("DELETE", "/jobs/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE shared = %d (%s)", rec.Code, rec.Body)
	}
	var out map[string]any
	decodeJSON(t, rec, &out)
	if out["shared"] != id {
		t.Fatalf("DELETE on a waited-on job = %v, want shared refusal", out)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/"+id, nil))
	var view map[string]any
	decodeJSON(t, rec, &view)
	if view["status"] != "running" {
		t.Fatalf("job was canceled despite the shared refusal: %v", view["status"])
	}

	// The waiter disconnects; its own cancel path winds the job down.
	cancel()
	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("sync handler did not return after disconnect")
	}
	pollJob(t, srv, id, 30*time.Second, func(v map[string]any) bool {
		s, _ := v["status"].(string)
		return s == "canceled"
	})
}
