package eval

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

func scoreTable(t *testing.T) *relation.Table {
	t.Helper()
	schema := relation.MustSchema(relation.Column{Name: "x", Kind: relation.Continuous})
	b := relation.NewBuilder(schema)
	for i := 0; i < 100; i++ {
		b.MustAppend(relation.Row{relation.F(float64(i))})
	}
	return b.Build()
}

func TestScorePerfectMatch(t *testing.T) {
	tbl := scoreTable(t)
	gO := relation.FullRowSet(100)
	truth := relation.NewRowSet(100)
	for i := 40; i < 60; i++ {
		truth.Add(i)
	}
	p := predicate.MustNew(predicate.NewRangeClause(0, "x", 40, 60, false))
	acc := Score(p, tbl, gO, truth)
	if acc.Precision != 1 || acc.Recall != 1 || acc.F1 != 1 || acc.Matched != 20 {
		t.Errorf("perfect match acc = %+v", acc)
	}
}

func TestScorePartialOverlap(t *testing.T) {
	tbl := scoreTable(t)
	gO := relation.FullRowSet(100)
	truth := relation.NewRowSet(100)
	for i := 40; i < 60; i++ {
		truth.Add(i)
	}
	// Predicate covers [50,70): 10 hits of 20 matched → precision 0.5,
	// recall 10/20 = 0.5.
	p := predicate.MustNew(predicate.NewRangeClause(0, "x", 50, 70, false))
	acc := Score(p, tbl, gO, truth)
	if math.Abs(acc.Precision-0.5) > 1e-9 || math.Abs(acc.Recall-0.5) > 1e-9 {
		t.Errorf("partial acc = %+v", acc)
	}
	if math.Abs(acc.F1-0.5) > 1e-9 {
		t.Errorf("F1 = %v, want 0.5", acc.F1)
	}
}

func TestScoreZeroDenominators(t *testing.T) {
	tbl := scoreTable(t)
	gO := relation.FullRowSet(100)
	empty := relation.NewRowSet(100)
	// No truth at all: recall undefined → 0, F1 0.
	p := predicate.MustNew(predicate.NewRangeClause(0, "x", 0, 10, false))
	acc := Score(p, tbl, gO, empty)
	if acc.Recall != 0 || acc.F1 != 0 {
		t.Errorf("empty truth acc = %+v", acc)
	}
	// Predicate matching nothing: precision undefined → 0.
	p = predicate.MustNew(predicate.NewRangeClause(0, "x", 500, 600, false))
	truth := relation.RowSetOf(100, 1, 2, 3)
	acc = Score(p, tbl, gO, truth)
	if acc.Precision != 0 || acc.Matched != 0 || acc.F1 != 0 {
		t.Errorf("no-match acc = %+v", acc)
	}
}

func TestScoreRestrictedToOutlierUnion(t *testing.T) {
	tbl := scoreTable(t)
	// g_O is only the first half; truth rows outside g_O must not count.
	gO := relation.NewRowSet(100)
	for i := 0; i < 50; i++ {
		gO.Add(i)
	}
	truth := relation.NewRowSet(100)
	for i := 40; i < 80; i++ {
		truth.Add(i) // only 40..49 are inside g_O
	}
	p := predicate.MustNew(predicate.NewRangeClause(0, "x", 40, 100, true))
	acc := Score(p, tbl, gO, truth)
	// Matched inside g_O: rows 40..49 = 10, all true → precision 1,
	// recall 10/10 = 1.
	if acc.Matched != 10 || acc.Precision != 1 || acc.Recall != 1 {
		t.Errorf("restricted acc = %+v", acc)
	}
}

func TestSynthTaskShape(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 50, Groups: 4, OutlierGroups: 2, Mu: 80, Seed: 2,
	})
	task, space, err := SynthTask(ds, "sum", 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(task.Outliers) != 2 || len(task.HoldOuts) != 2 {
		t.Fatalf("groups = %d/%d", len(task.Outliers), len(task.HoldOuts))
	}
	if task.C != 0.1 || task.Lambda != 0.5 {
		t.Errorf("knobs = %v/%v", task.C, task.Lambda)
	}
	if len(space.Columns()) != 2 {
		t.Errorf("space columns = %v", space.Columns())
	}
	if u := OutlierUnion(task); u.Count() != 100 {
		t.Errorf("outlier union = %d rows, want 100", u.Count())
	}
}

func TestSynthTaskBadAggregate(t *testing.T) {
	ds := synth.Generate(synth.Config{
		Dims: 2, TuplesPerGroup: 20, Groups: 4, OutlierGroups: 2, Seed: 2,
	})
	if _, _, err := SynthTask(ds, "bogus", 0.5, 0.1); err == nil {
		t.Fatal("expected error for unknown aggregate")
	}
}
