// Package eval implements the paper's evaluation harness (§8): accuracy
// metrics against planted ground truth, task construction helpers, and the
// per-figure experiment runners that regenerate every table and figure of
// the evaluation section.
package eval

import (
	"fmt"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/query"
	"github.com/scorpiondb/scorpion/internal/relation"
	"github.com/scorpiondb/scorpion/internal/synth"
)

// Accuracy holds the §8.2 result-quality metrics of one predicate.
type Accuracy struct {
	Precision float64
	Recall    float64
	F1        float64
	// Matched is |p(g_O)|, the tuples the predicate selects from the
	// outlier input groups.
	Matched int
}

// Score compares p(g_O) against a ground-truth tuple set, both restricted
// to the union of outlier input groups (§8.2).
func Score(p predicate.Predicate, t *relation.Table, gO, truth *relation.RowSet) Accuracy {
	matched := p.Eval(t, gO)
	truthInGO := truth.Intersect(gO)
	hit := matched.Intersect(truthInGO).Count()
	acc := Accuracy{Matched: matched.Count()}
	if acc.Matched > 0 {
		acc.Precision = float64(hit) / float64(acc.Matched)
	}
	if n := truthInGO.Count(); n > 0 {
		acc.Recall = float64(hit) / float64(n)
	}
	if acc.Precision+acc.Recall > 0 {
		acc.F1 = 2 * acc.Precision * acc.Recall / (acc.Precision + acc.Recall)
	}
	return acc
}

// SynthTask binds a synthetic dataset into an influence task plus its
// search space. aggName is the SQL aggregate (the paper uses SUM for SYNTH);
// the outlier groups are flagged "too high".
func SynthTask(ds *synth.Dataset, aggName string, lambda, c float64) (*influence.Task, *predicate.Space, error) {
	sql := fmt.Sprintf("SELECT %s(v), g FROM synth GROUP BY g", aggName)
	q, err := query.FromSQL(ds.Table, sql)
	if err != nil {
		return nil, nil, err
	}
	res, err := q.Run()
	if err != nil {
		return nil, nil, err
	}
	task := &influence.Task{
		Table:  ds.Table,
		Agg:    q.Agg,
		AggCol: q.AggCol,
		Lambda: lambda,
		C:      c,
	}
	for _, key := range ds.OutlierKeys {
		row, ok := res.Lookup(key)
		if !ok {
			return nil, nil, fmt.Errorf("eval: missing outlier group %q", key)
		}
		task.Outliers = append(task.Outliers, influence.Group{
			Key: key, Rows: row.Group, Direction: influence.TooHigh,
		})
	}
	for _, key := range ds.HoldOutKeys {
		row, ok := res.Lookup(key)
		if !ok {
			return nil, nil, fmt.Errorf("eval: missing hold-out group %q", key)
		}
		task.HoldOuts = append(task.HoldOuts, influence.Group{Key: key, Rows: row.Group})
	}
	space, err := predicate.NewSpace(ds.Table, ds.DimNames(), nil)
	if err != nil {
		return nil, nil, err
	}
	return task, space, nil
}

// OutlierUnion returns g_O for a task.
func OutlierUnion(task *influence.Task) *relation.RowSet {
	u := relation.NewRowSet(task.Table.NumRows())
	for _, g := range task.Outliers {
		u.Or(g.Rows)
	}
	return u
}
