// Package feature implements the dimensionality-reduction step Scorpion's
// paper sketches in §6.4 and defers to future work: filter-based attribute
// selection. Attributes are ranked by how informative they are about tuple
// influence — continuous attributes by the absolute Pearson correlation
// between attribute value and influence, discrete attributes by the
// influence variance explained across their values (the correlation ratio
// η²). Non-informative attributes can then be dropped before the predicate
// search, shrinking NAIVE's exponential space and DT/MC's candidate grids.
package feature

import (
	"math"
	"sort"

	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// AttrScore is one attribute's informativeness about tuple influence,
// normalized to [0, 1].
type AttrScore struct {
	Col   int
	Name  string
	Score float64
}

// RankAttributes scores every attribute of the search space against the
// per-tuple influences of the outlier groups and returns the attributes in
// descending informativeness.
func RankAttributes(scorer *influence.Scorer, space *predicate.Space) []AttrScore {
	task := scorer.Task()
	// Collect (row, influence) samples over all outlier groups.
	var rows []int
	var infs []float64
	for gi, g := range task.Outliers {
		g.Rows.ForEach(func(r int) {
			rows = append(rows, r)
			infs = append(infs, scorer.TupleOutlierInfluence(gi, r))
		})
	}
	out := make([]AttrScore, 0, len(space.Columns()))
	for _, col := range space.Columns() {
		score := 0.0
		if space.Kind(col) == relation.Continuous {
			score = math.Abs(pearson(task.Table.Floats(col), rows, infs))
		} else {
			score = correlationRatio(task.Table.Codes(col), rows, infs)
		}
		if math.IsNaN(score) {
			score = 0
		}
		out = append(out, AttrScore{Col: col, Name: space.Name(col), Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Select returns the names of the top-k attributes (all of them when k <= 0
// or k exceeds the count).
func Select(scorer *influence.Scorer, space *predicate.Space, k int) []string {
	ranked := RankAttributes(scorer, space)
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ranked[i].Name
	}
	return names
}

// pearson computes the Pearson correlation between vals[rows[i]] and y[i].
func pearson(vals []float64, rows []int, y []float64) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i, r := range rows {
		x := vals[r]
		sx += x
		sy += y[i]
		sxx += x * x
		syy += y[i] * y[i]
		sxy += x * y[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// correlationRatio computes η²: the share of influence variance explained
// by grouping on the attribute's codes.
func correlationRatio(codes []int32, rows []int, y []float64) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	type agg struct {
		n   float64
		sum float64
	}
	groups := make(map[int32]*agg)
	var total float64
	for i, r := range rows {
		g := groups[codes[r]]
		if g == nil {
			g = &agg{}
			groups[codes[r]] = g
		}
		g.n++
		g.sum += y[i]
		total += y[i]
	}
	mean := total / n
	var between, totalVar float64
	for _, g := range groups {
		gm := g.sum / g.n
		between += g.n * (gm - mean) * (gm - mean)
	}
	for i := range rows {
		d := y[i] - mean
		totalVar += d * d
	}
	if totalVar <= 0 {
		return 0
	}
	eta2 := between / totalVar
	if eta2 > 1 {
		eta2 = 1
	}
	return eta2
}
