package feature

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/aggregate"
	"github.com/scorpiondb/scorpion/internal/influence"
	"github.com/scorpiondb/scorpion/internal/predicate"
	"github.com/scorpiondb/scorpion/internal/relation"
)

// fixture builds a task where attribute "signal" (continuous) and "tag"
// (discrete) determine the aggregate value, while "noise" and "junk" are
// uninformative.
func fixture(t testing.TB) (*influence.Scorer, *predicate.Space) {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "g", Kind: relation.Discrete},
		relation.Column{Name: "signal", Kind: relation.Continuous},
		relation.Column{Name: "noise", Kind: relation.Continuous},
		relation.Column{Name: "tag", Kind: relation.Discrete},
		relation.Column{Name: "junk", Kind: relation.Discrete},
		relation.Column{Name: "v", Kind: relation.Continuous},
	)
	b := relation.NewBuilder(schema)
	for i := 0; i < 200; i++ {
		signal := float64(i % 50)
		noise := float64((i * 37) % 100)
		tag := []string{"low", "low", "high"}[i%3]
		junk := []string{"a", "b", "c", "d"}[i%4]
		v := 10 + signal // v tracks signal exactly
		if tag == "high" {
			v += 40
		}
		b.MustAppend(relation.Row{
			relation.S("out"),
			relation.F(signal),
			relation.F(noise),
			relation.S(tag),
			relation.S(junk),
			relation.F(v),
		})
	}
	tbl := b.Build()
	out := relation.FullRowSet(tbl.NumRows())
	task := &influence.Task{
		Table:    tbl,
		Agg:      aggregate.Avg{},
		AggCol:   tbl.Schema().MustIndex("v"),
		Outliers: []influence.Group{{Key: "out", Rows: out, Direction: influence.TooHigh}},
		Lambda:   0.5,
		C:        1,
	}
	scorer, err := influence.NewScorer(task)
	if err != nil {
		t.Fatal(err)
	}
	space, err := predicate.NewSpace(tbl, []string{"signal", "noise", "tag", "junk"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return scorer, space
}

func TestRankAttributesOrdersByInformativeness(t *testing.T) {
	scorer, space := fixture(t)
	ranked := RankAttributes(scorer, space)
	if len(ranked) != 4 {
		t.Fatalf("ranked = %d attrs", len(ranked))
	}
	pos := map[string]int{}
	score := map[string]float64{}
	for i, a := range ranked {
		pos[a.Name] = i
		score[a.Name] = a.Score
	}
	if pos["signal"] > pos["noise"] {
		t.Errorf("signal (%.3f) ranked below noise (%.3f)", score["signal"], score["noise"])
	}
	if pos["tag"] > pos["junk"] {
		t.Errorf("tag (%.3f) ranked below junk (%.3f)", score["tag"], score["junk"])
	}
	if score["signal"] < 0.5 {
		t.Errorf("signal score = %.3f, want strong", score["signal"])
	}
	if score["junk"] > 0.2 {
		t.Errorf("junk score = %.3f, want weak", score["junk"])
	}
	for _, a := range ranked {
		if a.Score < 0 || a.Score > 1 || math.IsNaN(a.Score) {
			t.Errorf("%s score %v outside [0,1]", a.Name, a.Score)
		}
	}
}

func TestSelectTopK(t *testing.T) {
	scorer, space := fixture(t)
	top2 := Select(scorer, space, 2)
	if len(top2) != 2 {
		t.Fatalf("Select(2) = %v", top2)
	}
	want := map[string]bool{"signal": true, "tag": true}
	for _, name := range top2 {
		if !want[name] {
			t.Errorf("Select(2) includes %q, want signal and tag; got %v", name, top2)
		}
	}
	all := Select(scorer, space, 0)
	if len(all) != 4 {
		t.Errorf("Select(0) = %v, want all 4", all)
	}
	over := Select(scorer, space, 99)
	if len(over) != 4 {
		t.Errorf("Select(99) = %v, want all 4", over)
	}
}

func TestPearsonEdgeCases(t *testing.T) {
	if got := pearson([]float64{1, 1, 1}, []int{0, 1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant x correlation = %v, want 0", got)
	}
	if got := pearson([]float64{5}, []int{0}, []float64{1}); got != 0 {
		t.Errorf("single point correlation = %v, want 0", got)
	}
	// Perfect correlation.
	got := pearson([]float64{1, 2, 3, 4}, []int{0, 1, 2, 3}, []float64{2, 4, 6, 8})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("perfect correlation = %v, want 1", got)
	}
	// Perfect anti-correlation.
	got = pearson([]float64{1, 2, 3, 4}, []int{0, 1, 2, 3}, []float64{8, 6, 4, 2})
	if math.Abs(got+1) > 1e-9 {
		t.Errorf("perfect anti-correlation = %v, want -1", got)
	}
}

func TestCorrelationRatioEdgeCases(t *testing.T) {
	// One group explains nothing beyond the mean.
	if got := correlationRatio([]int32{0, 0, 0}, []int{0, 1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("single-group η² = %v, want 0", got)
	}
	// Groups fully determine y.
	got := correlationRatio([]int32{0, 0, 1, 1}, []int{0, 1, 2, 3}, []float64{1, 1, 9, 9})
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("deterministic η² = %v, want 1", got)
	}
	// Constant y.
	if got := correlationRatio([]int32{0, 1}, []int{0, 1}, []float64{5, 5}); got != 0 {
		t.Errorf("constant-y η² = %v, want 0", got)
	}
}
