package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}

func TestComputeBasics(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	cases := []struct {
		f    Func
		want float64
	}{
		{Sum{}, 10},
		{Count{}, 4},
		{Avg{}, 2.5},
		{Variance{}, 1.25},
		{StdDev{}, math.Sqrt(1.25)},
		{Min{}, 1},
		{Max{}, 4},
		{Median{}, 2.5},
	}
	for _, c := range cases {
		if got := c.f.Compute(vals); !almostEqual(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.f.Name(), vals, got, c.want)
		}
	}
}

func TestComputeEmpty(t *testing.T) {
	if got := (Sum{}).Compute(nil); got != 0 {
		t.Errorf("sum(empty) = %v", got)
	}
	if got := (Count{}).Compute(nil); got != 0 {
		t.Errorf("count(empty) = %v", got)
	}
	for _, f := range []Func{Avg{}, Variance{}, StdDev{}, Min{}, Max{}, Median{}} {
		if got := f.Compute(nil); !math.IsNaN(got) {
			t.Errorf("%s(empty) = %v, want NaN", f.Name(), got)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := (Median{}).Compute([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median odd = %v", got)
	}
	if got := (Median{}).Compute([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("median even = %v", got)
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	(Median{}).Compute(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("median mutated input: %v", in)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sum", "COUNT", "Avg", "mean", "variance", "var", "stddev", "std", "min", "max", "median"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestPaperAvgExample(t *testing.T) {
	// §3.2: g_α2 = {T4, T5, T6} with temps {35, 35, 100}; avg = 56.6̄.
	temps := []float64{35, 35, 100}
	avg := Avg{}.Compute(temps)
	if !almostEqual(avg, 170.0/3) {
		t.Fatalf("avg = %v", avg)
	}
	// Removing T6 yields avg {35,35} = 35; Δ = 56.6̄ − 35 = 21.6̄.
	st := Avg{}.State(temps)
	removed := Avg{}.Remove(st, Avg{}.State([]float64{100}))
	if got := (Avg{}).Recover(removed); !almostEqual(got, 35) {
		t.Fatalf("avg after removing T6 = %v, want 35", got)
	}
	// Removing T4 yields avg {35,100} = 67.5; Δ = 56.6̄ − 67.5 = −10.8̄.
	removed = Avg{}.Remove(st, Avg{}.State([]float64{35}))
	if got := (Avg{}).Recover(removed); !almostEqual(got, 67.5) {
		t.Fatalf("avg after removing T4 = %v, want 67.5", got)
	}
}

func TestAntiMonotonicChecks(t *testing.T) {
	if !(Sum{}).Check([]float64{0, 1, 2}) {
		t.Error("sum.check(non-negative) should be true")
	}
	if (Sum{}).Check([]float64{1, -2}) {
		t.Error("sum.check(negative) should be false")
	}
	if !(Count{}).Check([]float64{-5, 5}) {
		t.Error("count.check should always be true")
	}
	if !(Max{}).Check([]float64{-5, 5}) {
		t.Error("max.check should always be true")
	}
}

func TestEmptySafe(t *testing.T) {
	if (Sum{}).EmptyValue() != 0 || (Count{}).EmptyValue() != 0 {
		t.Error("sum/count empty values should be 0")
	}
}

func TestUDA(t *testing.T) {
	u := UDA{FuncName: "range", Fn: func(vals []float64) float64 {
		return Max{}.Compute(vals) - Min{}.Compute(vals)
	}}
	if u.Name() != "range" {
		t.Errorf("Name = %q", u.Name())
	}
	if got := u.Compute([]float64{1, 5, 3}); got != 4 {
		t.Errorf("range = %v, want 4", got)
	}
	if u.Independent() {
		t.Error("default UDA should not claim independence")
	}
	if _, ok := Func(u).(Removable); ok {
		t.Error("UDA must not satisfy Removable")
	}
}

func TestIndependenceFlags(t *testing.T) {
	independent := []Func{Sum{}, Count{}, Avg{}, Variance{}, StdDev{}}
	for _, f := range independent {
		if !f.Independent() {
			t.Errorf("%s should be independent", f.Name())
		}
	}
	dependent := []Func{Min{}, Max{}, Median{}}
	for _, f := range dependent {
		if f.Independent() {
			t.Errorf("%s should not be independent", f.Name())
		}
	}
}

// randomVals produces n random values in [-50, 50].
func randomVals(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*100 - 50
	}
	return out
}

// Property: for every removable aggregate,
// Recover(Remove(State(D), State(S))) == Compute(D − S) for random splits.
func TestRemovableEquivalenceProperty(t *testing.T) {
	aggs := []Removable{Sum{}, Count{}, Avg{}, Variance{}, StdDev{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		d := randomVals(rng, n)
		// Choose a strict subset S of D.
		k := 1 + rng.Intn(n-1)
		s := d[:k]
		rest := d[k:]
		for _, agg := range aggs {
			got := agg.Recover(agg.Remove(agg.State(d), agg.State(s)))
			want := agg.Compute(rest)
			ok := almostEqual(got, want)
			if agg.Name() == "stddev" {
				// The sum-of-squares state cancels catastrophically when the
				// remainder's variance is near zero; sqrt amplifies that to
				// ~1e-4 absolute. Compare variances instead.
				ok = almostEqual(got*got, want*want) || math.Abs(got*got-want*want) < 1e-6
			}
			if !ok {
				t.Logf("%s: incremental %v != recompute %v (n=%d k=%d)", agg.Name(), got, want, n, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Update over a partition of D equals State(D).
func TestUpdatePartitionProperty(t *testing.T) {
	aggs := []Removable{Sum{}, Count{}, Avg{}, Variance{}, StdDev{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		d := randomVals(rng, n)
		// Random 3-way partition.
		var parts [3][]float64
		for _, v := range d {
			i := rng.Intn(3)
			parts[i] = append(parts[i], v)
		}
		for _, agg := range aggs {
			combined := agg.Update(agg.State(parts[0]), agg.State(parts[1]), agg.State(parts[2]))
			whole := agg.State(d)
			if !almostEqual(agg.Recover(combined), agg.Recover(whole)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: anti-monotonicity of Δ for SUM on non-negative data — removing a
// superset changes the result at least as much as removing a subset.
func TestSumDeltaAntiMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		d := make([]float64, n)
		for i := range d {
			d[i] = rng.Float64() * 100 // non-negative → check passes
		}
		if !(Sum{}).Check(d) {
			return false
		}
		total := Sum{}.Compute(d)
		// Subset s1 ⊆ s2 ⊆ d by prefix length.
		k2 := 1 + rng.Intn(n)
		k1 := 1 + rng.Intn(k2)
		delta1 := total - Sum{}.Compute(d[k1:]) // removes d[:k1]
		delta2 := total - Sum{}.Compute(d[k2:])
		return delta1 <= delta2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Variance recovery is never negative, even with adversarial
// cancellation.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := rng.Float64() * 1e6
		vals := make([]float64, 2+rng.Intn(20))
		for i := range vals {
			vals[i] = base + rng.Float64()*1e-3
		}
		return Variance{}.Compute(vals) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStateClone(t *testing.T) {
	s := State{1, 2}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}
