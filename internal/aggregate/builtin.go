package aggregate

import "math"

// Sum is the SUM aggregate: incrementally removable, independent, and
// anti-monotonic when all inputs are non-negative (§5.3).
type Sum struct{}

// Name implements Func.
func (Sum) Name() string { return "sum" }

// Compute implements Func.
func (Sum) Compute(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// Independent implements Func.
func (Sum) Independent() bool { return true }

// State implements Removable: [sum].
func (Sum) State(vals []float64) State { return State{Sum{}.Compute(vals)} }

// Update implements Removable.
func (Sum) Update(states ...State) State {
	s := 0.0
	for _, st := range states {
		s += st[0]
	}
	return State{s}
}

// Remove implements Removable.
func (Sum) Remove(d, s State) State { return State{d[0] - s[0]} }

// Recover implements Removable.
func (Sum) Recover(s State) float64 { return s[0] }

// Check implements AntiMonotonic: SUM(D) bounds SUM of subsets only when no
// value is negative.
func (Sum) Check(vals []float64) bool {
	for _, v := range vals {
		if v < 0 {
			return false
		}
	}
	return true
}

// EmptyValue implements EmptySafe.
func (Sum) EmptyValue() float64 { return 0 }

// Count is the COUNT aggregate: incrementally removable, independent, and
// unconditionally anti-monotonic.
type Count struct{}

// Name implements Func.
func (Count) Name() string { return "count" }

// Compute implements Func.
func (Count) Compute(vals []float64) float64 { return float64(len(vals)) }

// Independent implements Func.
func (Count) Independent() bool { return true }

// State implements Removable: [count].
func (Count) State(vals []float64) State { return State{float64(len(vals))} }

// Update implements Removable.
func (Count) Update(states ...State) State {
	n := 0.0
	for _, st := range states {
		n += st[0]
	}
	return State{n}
}

// Remove implements Removable.
func (Count) Remove(d, s State) State { return State{d[0] - s[0]} }

// Recover implements Removable.
func (Count) Recover(s State) float64 { return s[0] }

// Check implements AntiMonotonic: density is always anti-monotonic.
func (Count) Check([]float64) bool { return true }

// EmptyValue implements EmptySafe.
func (Count) EmptyValue() float64 { return 0 }

// Avg is the AVG aggregate: incrementally removable and independent
// (the paper's §5.1 worked example).
type Avg struct{}

// Name implements Func.
func (Avg) Name() string { return "avg" }

// Compute implements Func. The average of no values is NaN.
func (Avg) Compute(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	return Sum{}.Compute(vals) / float64(len(vals))
}

// Independent implements Func.
func (Avg) Independent() bool { return true }

// State implements Removable: [sum, count].
func (Avg) State(vals []float64) State {
	return State{Sum{}.Compute(vals), float64(len(vals))}
}

// Update implements Removable.
func (Avg) Update(states ...State) State {
	out := State{0, 0}
	for _, st := range states {
		out[0] += st[0]
		out[1] += st[1]
	}
	return out
}

// Remove implements Removable.
func (Avg) Remove(d, s State) State { return State{d[0] - s[0], d[1] - s[1]} }

// Recover implements Removable. Empty state recovers NaN.
func (Avg) Recover(s State) float64 {
	if s[1] == 0 {
		return math.NaN()
	}
	return s[0] / s[1]
}

// Variance is the population VARIANCE aggregate: incrementally removable
// (state [sum, sumsq, count]) and independent.
type Variance struct{}

// Name implements Func.
func (Variance) Name() string { return "variance" }

// Compute implements Func. Variance of fewer than one value is NaN.
func (Variance) Compute(vals []float64) float64 {
	return Variance{}.Recover(Variance{}.State(vals))
}

// Independent implements Func.
func (Variance) Independent() bool { return true }

// State implements Removable: [sum, sum of squares, count].
func (Variance) State(vals []float64) State {
	var sum, sumsq float64
	for _, v := range vals {
		sum += v
		sumsq += v * v
	}
	return State{sum, sumsq, float64(len(vals))}
}

// Update implements Removable.
func (Variance) Update(states ...State) State {
	out := State{0, 0, 0}
	for _, st := range states {
		out[0] += st[0]
		out[1] += st[1]
		out[2] += st[2]
	}
	return out
}

// Remove implements Removable.
func (Variance) Remove(d, s State) State {
	return State{d[0] - s[0], d[1] - s[1], d[2] - s[2]}
}

// Recover implements Removable: E[X²] − E[X]², clamped at zero to absorb
// floating-point cancellation.
func (Variance) Recover(s State) float64 {
	n := s[2]
	if n <= 0 {
		return math.NaN()
	}
	mean := s[0] / n
	v := s[1]/n - mean*mean
	if v < 0 {
		v = 0
	}
	return v
}

// StdDev is the population STDDEV aggregate: incrementally removable and
// independent. It is the aggregate used by the paper's INTEL workloads.
type StdDev struct{}

// Name implements Func.
func (StdDev) Name() string { return "stddev" }

// Compute implements Func.
func (StdDev) Compute(vals []float64) float64 {
	return math.Sqrt(Variance{}.Compute(vals))
}

// Independent implements Func.
func (StdDev) Independent() bool { return true }

// State implements Removable (same state as Variance).
func (StdDev) State(vals []float64) State { return Variance{}.State(vals) }

// Update implements Removable.
func (StdDev) Update(states ...State) State { return Variance{}.Update(states...) }

// Remove implements Removable.
func (StdDev) Remove(d, s State) State { return Variance{}.Remove(d, s) }

// Recover implements Removable.
func (StdDev) Recover(s State) float64 { return math.Sqrt(Variance{}.Recover(s)) }

// Min is the MIN aggregate. It is not incrementally removable (§5.1:
// recomputing after removing the minimum requires the full dataset).
type Min struct{}

// Name implements Func.
func (Min) Name() string { return "min" }

// Compute implements Func. Min of no values is NaN.
func (Min) Compute(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Independent implements Func. MIN is dominated by a single tuple; tuple
// contributions are not independent.
func (Min) Independent() bool { return false }

// Max is the MAX aggregate: not incrementally removable, but Δ is
// unconditionally anti-monotonic (§5.3 defines MAX.check(D)=True).
type Max struct{}

// Name implements Func.
func (Max) Name() string { return "max" }

// Compute implements Func. Max of no values is NaN.
func (Max) Compute(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Independent implements Func.
func (Max) Independent() bool { return false }

// Check implements AntiMonotonic.
func (Max) Check([]float64) bool { return true }

// Median is the MEDIAN aggregate: a black-box order statistic, neither
// incrementally removable nor independent. It exercises Scorpion's NAIVE
// fallback path.
type Median struct{}

// Name implements Func.
func (Median) Name() string { return "median" }

// Compute implements Func. Median of no values is NaN; even-length inputs
// average the two middle values.
func (Median) Compute(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := sortedCopy(vals)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Independent implements Func.
func (Median) Independent() bool { return false }

// Static interface conformance checks.
var (
	_ Removable     = Sum{}
	_ Removable     = Count{}
	_ Removable     = Avg{}
	_ Removable     = Variance{}
	_ Removable     = StdDev{}
	_ AntiMonotonic = Sum{}
	_ AntiMonotonic = Count{}
	_ AntiMonotonic = Max{}
	_ EmptySafe     = Sum{}
	_ EmptySafe     = Count{}
	_ Func          = Min{}
	_ Func          = Median{}
	_ Func          = UDA{}
)
