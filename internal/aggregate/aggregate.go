// Package aggregate implements Scorpion's aggregate-operator framework (§5
// of the paper): plain (black-box) aggregate functions plus the three
// optional properties that unlock the efficient algorithms —
//
//   - incrementally removable (§5.1): the aggregate decomposes into
//     state/update/remove/recover so that removing a subset only requires
//     reading that subset;
//   - independent (§5.2): input tuples influence the result independently,
//     enabling the DT partitioner's greedy reasoning;
//   - anti-monotonic (§5.3): Δ of a contained predicate never exceeds Δ of
//     its container (subject to a data-dependent check), enabling MC's
//     pruning.
//
// All built-in statistical aggregates (SUM, COUNT, AVG, VARIANCE, STDDEV,
// MIN, MAX, MEDIAN) are provided, and arbitrary user-defined aggregates can
// be registered as black boxes.
package aggregate

import (
	"fmt"
	"sort"
	"strings"
)

// Func is a (possibly black-box) aggregate function over a projected
// attribute. Compute must be a pure function of its input; the framework
// may call it many times on overlapping subsets.
type Func interface {
	// Name returns the canonical lower-case name, e.g. "avg".
	Name() string
	// Compute evaluates the aggregate over vals. Implementations define
	// their own result for empty input (commonly 0 or NaN).
	Compute(vals []float64) float64
	// Independent reports the §5.2 property: whether tuples influence the
	// result independently of each other.
	Independent() bool
}

// State is a constant-size summary of an input set for incrementally
// removable aggregates, as produced by Removable.State.
type State []float64

// Clone returns an independent copy of the state.
func (s State) Clone() State {
	c := make(State, len(s))
	copy(c, s)
	return c
}

// Removable is the incrementally removable property (§5.1): F(D−S) is
// computable from state(D) and state(S) alone.
type Removable interface {
	Func
	// State summarizes a value multiset into a constant-size tuple.
	State(vals []float64) State
	// Update combines n disjoint states into the state of their union.
	Update(states ...State) State
	// Remove computes state(D−S) from state(D) and state(S), where S ⊆ D.
	Remove(d, s State) State
	// Recover recomputes the aggregate result from a state.
	Recover(s State) float64
}

// AntiMonotonic is the §5.3 property. Check inspects the aggregate's input
// values and reports whether Δ is anti-monotonic on this data (e.g. SUM
// requires non-negative values).
type AntiMonotonic interface {
	Func
	Check(vals []float64) bool
}

// EmptySafe is implemented by aggregates with a well-defined value on empty
// input (SUM and COUNT yield 0). The Scorer uses it when a predicate removes
// an entire input group.
type EmptySafe interface {
	Func
	EmptyValue() float64
}

// ByName returns the built-in aggregate with the given (case-insensitive)
// name.
func ByName(name string) (Func, error) {
	switch strings.ToLower(name) {
	case "sum":
		return Sum{}, nil
	case "count":
		return Count{}, nil
	case "avg", "mean":
		return Avg{}, nil
	case "var", "variance":
		return Variance{}, nil
	case "stddev", "std":
		return StdDev{}, nil
	case "min":
		return Min{}, nil
	case "max":
		return Max{}, nil
	case "median":
		return Median{}, nil
	default:
		return nil, fmt.Errorf("aggregate: unknown aggregate %q", name)
	}
}

// UDA wraps an arbitrary function as a black-box user-defined aggregate.
// Black-box aggregates get no properties, so Scorpion falls back to the
// NAIVE partitioner and full recomputation (§4).
type UDA struct {
	FuncName      string
	Fn            func([]float64) float64
	IsIndependent bool
}

// Name implements Func.
func (u UDA) Name() string { return u.FuncName }

// Compute implements Func.
func (u UDA) Compute(vals []float64) float64 { return u.Fn(vals) }

// Independent implements Func.
func (u UDA) Independent() bool { return u.IsIndependent }

// sortedCopy returns vals sorted ascending without mutating the input.
func sortedCopy(vals []float64) []float64 {
	c := make([]float64, len(vals))
	copy(c, vals)
	sort.Float64s(c)
	return c
}
