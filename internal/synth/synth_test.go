package synth

import (
	"math"
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func TestGenerateShape(t *testing.T) {
	ds := Easy(2, 400, 1)
	if got := ds.Table.NumRows(); got != 4000 {
		t.Fatalf("rows = %d, want 4000", got)
	}
	if ds.Table.Schema().NumColumns() != 4 { // g, v, a1, a2
		t.Fatalf("columns = %d, want 4", ds.Table.Schema().NumColumns())
	}
	if len(ds.OutlierKeys) != 5 || len(ds.HoldOutKeys) != 5 {
		t.Fatalf("keys = %d/%d, want 5/5", len(ds.OutlierKeys), len(ds.HoldOutKeys))
	}
	names := ds.DimNames()
	if len(names) != 2 || names[0] != "a1" || names[1] != "a2" {
		t.Fatalf("DimNames = %v", names)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Easy(3, 100, 42)
	b := Easy(3, 100, 42)
	if a.Table.NumRows() != b.Table.NumRows() {
		t.Fatal("row counts differ")
	}
	for c := 0; c < a.Table.Schema().NumColumns(); c++ {
		for r := 0; r < a.Table.NumRows(); r += 97 {
			if a.Table.Value(c, r).String() != b.Table.Value(c, r).String() {
				t.Fatalf("cell (%d,%d) differs between same-seed runs", c, r)
			}
		}
	}
	if !a.OuterRows.Equal(b.OuterRows) || !a.InnerRows.Equal(b.InnerRows) {
		t.Fatal("ground truth differs between same-seed runs")
	}
}

func TestGroundTruthFractions(t *testing.T) {
	ds := Easy(2, 2000, 7)
	perGroup := ds.Config.TuplesPerGroup
	nOutlierGroups := len(ds.OutlierKeys)
	outerN := ds.OuterRows.Count()
	innerN := ds.InnerRows.Count()
	wantOuter := float64(perGroup*nOutlierGroups) * 0.25
	wantInner := wantOuter * 0.25
	if math.Abs(float64(outerN)-wantOuter) > wantOuter*0.15 {
		t.Errorf("outer rows = %d, want ≈ %v", outerN, wantOuter)
	}
	if math.Abs(float64(innerN)-wantInner) > wantInner*0.3 {
		t.Errorf("inner rows = %d, want ≈ %v", innerN, wantInner)
	}
	if !ds.InnerRows.SubsetOf(ds.OuterRows) {
		t.Error("inner rows must be a subset of outer rows")
	}
}

func TestGroundTruthGeometry(t *testing.T) {
	ds := Hard(3, 500, 11)
	// Every inner row's point must lie in the inner cube; outer rows in the
	// outer cube.
	dims := make([]int, ds.Config.Dims)
	for i := range dims {
		dims[i] = ds.Table.Schema().MustIndex(DimName(i))
	}
	pt := make([]float64, len(dims))
	check := func(rows *relation.RowSet, cube Cube, label string) {
		rows.ForEach(func(r int) {
			for i, c := range dims {
				pt[i] = ds.Table.Float(c, r)
			}
			if !cube.Contains(pt) {
				t.Fatalf("%s row %d at %v outside its cube [%v,%v]", label, r, pt, cube.Lo, cube.Hi)
			}
		})
	}
	check(ds.OuterRows, ds.Outer, "outer")
	check(ds.InnerRows, ds.Inner, "inner")
	// Inner cube nested in outer.
	for d := 0; d < ds.Config.Dims; d++ {
		if ds.Inner.Lo[d] < ds.Outer.Lo[d] || ds.Inner.Hi[d] > ds.Outer.Hi[d] {
			t.Fatalf("inner cube not nested in outer on dim %d", d)
		}
	}
}

func TestValueDistributions(t *testing.T) {
	ds := Easy(2, 2000, 3)
	vCol := ds.Table.Schema().MustIndex("v")
	var innerSum, outerShellSum float64
	var innerN, outerShellN int
	ds.OuterRows.ForEach(func(r int) {
		if ds.InnerRows.Contains(r) {
			innerSum += ds.Table.Float(vCol, r)
			innerN++
		} else {
			outerShellSum += ds.Table.Float(vCol, r)
			outerShellN++
		}
	})
	innerMean := innerSum / float64(innerN)
	shellMean := outerShellSum / float64(outerShellN)
	if math.Abs(innerMean-80) > 5 {
		t.Errorf("inner mean = %v, want ≈ 80", innerMean)
	}
	if math.Abs(shellMean-45) > 5 {
		t.Errorf("outer-shell mean = %v, want ≈ 45", shellMean)
	}
	// Hold-out groups are purely normal.
	gCol := ds.Table.Schema().MustIndex("g")
	var normSum float64
	var normN int
	holdKeys := map[string]bool{}
	for _, k := range ds.HoldOutKeys {
		holdKeys[k] = true
	}
	for r := 0; r < ds.Table.NumRows(); r++ {
		if holdKeys[ds.Table.Str(gCol, r)] {
			normSum += ds.Table.Float(vCol, r)
			normN++
		}
	}
	if m := normSum / float64(normN); math.Abs(m-10) > 2 {
		t.Errorf("hold-out mean = %v, want ≈ 10", m)
	}
}

func TestHoldOutGroupsHaveNoTruthRows(t *testing.T) {
	ds := Easy(2, 300, 5)
	gCol := ds.Table.Schema().MustIndex("g")
	holdKeys := map[string]bool{}
	for _, k := range ds.HoldOutKeys {
		holdKeys[k] = true
	}
	ds.OuterRows.ForEach(func(r int) {
		if holdKeys[ds.Table.Str(gCol, r)] {
			t.Fatalf("ground-truth row %d belongs to hold-out group %s", r, ds.Table.Str(gCol, r))
		}
	})
}

func TestConfigDefaults(t *testing.T) {
	ds := Generate(Config{Seed: 9})
	cfg := ds.Config
	if cfg.Dims != 2 || cfg.TuplesPerGroup != 2000 || cfg.Groups != 10 ||
		cfg.OutlierGroups != 5 || cfg.Mu != 80 {
		t.Errorf("defaults = %+v", cfg)
	}
}
