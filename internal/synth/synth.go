// Package synth generates the paper's synthetic ground-truth datasets
// (§8.1): 10 groups of tuples with n uniform dimension attributes in
// [0,100], where half the groups (the outlier groups) hide two nested
// hyper-cubes — the outer cube holds medium-valued outliers drawn from
// N((µ+10)/2, 10) and the inner cube holds high-valued outliers from
// N(µ, 10); everything else is normal, N(10, 10). µ controls difficulty:
// Easy = 80, Hard = 30.
package synth

import (
	"fmt"
	"math/rand"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// Config parameterizes a synthetic dataset.
type Config struct {
	// Dims is the number of dimension attributes A1..An (paper: 2–4).
	Dims int
	// TuplesPerGroup is the group size (paper: 2,000).
	TuplesPerGroup int
	// Groups is the number of group-by values (paper: 10).
	Groups int
	// OutlierGroups is how many groups contain planted outliers (paper: 5).
	OutlierGroups int
	// Mu is the high-outlier mean µ (Easy: 80, Hard: 30).
	Mu float64
	// NormalStd is the normal tuples' std-dev (paper: 10; one experiment
	// re-runs with 0).
	NormalStd float64
	// OuterFrac is the fraction of a group inside the outer cube (0.25).
	OuterFrac float64
	// InnerFrac is the fraction of the outer cube inside the inner (0.25).
	InnerFrac float64
	// OuterSide and InnerSide are the cube side lengths (60 and 20,
	// matching the paper's Figure 8 example).
	OuterSide, InnerSide float64
	// AllowNegative disables the default clamping of Av at 0. The paper
	// runs SUM — "an independent anti-monotonic aggregate" — over this
	// data, and SUM's anti-monotonicity check (§5.3) requires non-negative
	// values, so by default the N(10,10) normal draws are truncated at 0.
	AllowNegative bool
	// Seed drives the deterministic generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Dims <= 0 {
		c.Dims = 2
	}
	if c.TuplesPerGroup <= 0 {
		c.TuplesPerGroup = 2000
	}
	if c.Groups <= 0 {
		c.Groups = 10
	}
	if c.OutlierGroups <= 0 {
		c.OutlierGroups = c.Groups / 2
	}
	if c.Mu == 0 {
		c.Mu = 80
	}
	if c.NormalStd == 0 {
		c.NormalStd = 10
	}
	if c.OuterFrac <= 0 {
		c.OuterFrac = 0.25
	}
	if c.InnerFrac <= 0 {
		c.InnerFrac = 0.25
	}
	if c.OuterSide <= 0 {
		c.OuterSide = 60
	}
	if c.InnerSide <= 0 {
		c.InnerSide = 20
	}
	return c
}

// Cube is an axis-aligned hyper-cube [Lo_i, Hi_i] per dimension.
type Cube struct {
	Lo, Hi []float64
}

// Contains reports whether the point lies inside the cube.
func (c Cube) Contains(pt []float64) bool {
	for i := range c.Lo {
		if pt[i] < c.Lo[i] || pt[i] > c.Hi[i] {
			return false
		}
	}
	return true
}

// Dataset is a generated table plus its ground truth.
type Dataset struct {
	Config Config
	Table  *relation.Table
	// Outer and Inner are the planted cubes (Outer contains Inner).
	Outer, Inner Cube
	// OuterRows are the rows drawn inside the outer cube of outlier groups
	// (medium AND high outliers); InnerRows only the high-valued ones.
	OuterRows, InnerRows *relation.RowSet
	// OutlierKeys and HoldOutKeys name the group-by values of each class.
	OutlierKeys, HoldOutKeys []string
}

// DimName returns the i-th dimension attribute's name, "a1"-based.
func DimName(i int) string { return fmt.Sprintf("a%d", i+1) }

// DimNames returns all dimension attribute names.
func (d *Dataset) DimNames() []string {
	out := make([]string, d.Config.Dims)
	for i := range out {
		out[i] = DimName(i)
	}
	return out
}

// Easy generates a SYNTH-<dims>D-Easy dataset (µ=80).
func Easy(dims, perGroup int, seed int64) *Dataset {
	return Generate(Config{Dims: dims, TuplesPerGroup: perGroup, Mu: 80, Seed: seed})
}

// Hard generates a SYNTH-<dims>D-Hard dataset (µ=30).
func Hard(dims, perGroup int, seed int64) *Dataset {
	return Generate(Config{Dims: dims, TuplesPerGroup: perGroup, Mu: 30, Seed: seed})
}

// Generate builds a deterministic synthetic dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	cols := make([]relation.Column, 0, cfg.Dims+2)
	cols = append(cols, relation.Column{Name: "g", Kind: relation.Discrete})
	cols = append(cols, relation.Column{Name: "v", Kind: relation.Continuous})
	for i := 0; i < cfg.Dims; i++ {
		cols = append(cols, relation.Column{Name: DimName(i), Kind: relation.Continuous})
	}
	schema := relation.MustSchema(cols...)
	b := relation.NewBuilder(schema)

	outer, inner := nestedCubes(rng, cfg)
	total := cfg.Groups * cfg.TuplesPerGroup
	outerRows := relation.NewRowSet(total)
	innerRows := relation.NewRowSet(total)

	ds := &Dataset{Config: cfg, Outer: outer, Inner: inner}
	row := 0
	pt := make([]float64, cfg.Dims)
	for g := 0; g < cfg.Groups; g++ {
		key := fmt.Sprintf("g%02d", g)
		isOutlier := g < cfg.OutlierGroups
		if isOutlier {
			ds.OutlierKeys = append(ds.OutlierKeys, key)
		} else {
			ds.HoldOutKeys = append(ds.HoldOutKeys, key)
		}
		for i := 0; i < cfg.TuplesPerGroup; i++ {
			var v float64
			if isOutlier {
				u := rng.Float64()
				switch {
				case u < cfg.OuterFrac*cfg.InnerFrac:
					samplePoint(rng, inner, pt)
					v = gauss(rng, cfg.Mu, 10)
					innerRows.Add(row)
					outerRows.Add(row)
				case u < cfg.OuterFrac:
					samplePointInShell(rng, outer, inner, pt)
					v = gauss(rng, (cfg.Mu+10)/2, 10)
					outerRows.Add(row)
				default:
					samplePointOutside(rng, outer, pt)
					v = gauss(rng, 10, cfg.NormalStd)
				}
			} else {
				uniformPoint(rng, pt)
				v = gauss(rng, 10, cfg.NormalStd)
			}
			if !cfg.AllowNegative && v < 0 {
				v = 0
			}
			r := make(relation.Row, 0, cfg.Dims+2)
			r = append(r, relation.S(key), relation.F(v))
			for _, x := range pt {
				r = append(r, relation.F(x))
			}
			b.MustAppend(r)
			row++
		}
	}
	ds.Table = b.Build()
	ds.OuterRows = outerRows
	ds.InnerRows = innerRows
	return ds
}

// nestedCubes places a random outer cube in [0,100]^n and a random inner
// cube nested inside it.
func nestedCubes(rng *rand.Rand, cfg Config) (Cube, Cube) {
	outer := Cube{Lo: make([]float64, cfg.Dims), Hi: make([]float64, cfg.Dims)}
	inner := Cube{Lo: make([]float64, cfg.Dims), Hi: make([]float64, cfg.Dims)}
	for d := 0; d < cfg.Dims; d++ {
		oLo := rng.Float64() * (100 - cfg.OuterSide)
		outer.Lo[d] = oLo
		outer.Hi[d] = oLo + cfg.OuterSide
		iLo := oLo + rng.Float64()*(cfg.OuterSide-cfg.InnerSide)
		inner.Lo[d] = iLo
		inner.Hi[d] = iLo + cfg.InnerSide
	}
	return outer, inner
}

func uniformPoint(rng *rand.Rand, pt []float64) {
	for d := range pt {
		pt[d] = rng.Float64() * 100
	}
}

func samplePoint(rng *rand.Rand, c Cube, pt []float64) {
	for d := range pt {
		pt[d] = c.Lo[d] + rng.Float64()*(c.Hi[d]-c.Lo[d])
	}
}

// samplePointInShell draws uniformly from outer \ inner by rejection; the
// shell is ≥ 1−(1/3)^n of the outer cube for the default side lengths, so a
// handful of draws suffice.
func samplePointInShell(rng *rand.Rand, outer, inner Cube, pt []float64) {
	for tries := 0; tries < 1000; tries++ {
		samplePoint(rng, outer, pt)
		if !inner.Contains(pt) {
			return
		}
	}
	// Fall back to a face of the outer cube (outside the inner by
	// construction when sides differ).
	pt[0] = outer.Lo[0]
}

// samplePointOutside draws uniformly from [0,100]^n \ outer by rejection.
func samplePointOutside(rng *rand.Rand, outer Cube, pt []float64) {
	for tries := 0; tries < 1000; tries++ {
		uniformPoint(rng, pt)
		if !outer.Contains(pt) {
			return
		}
	}
	pt[0] = 0
}

// gauss draws from N(mean, std).
func gauss(rng *rand.Rand, mean, std float64) float64 {
	return mean + rng.NormFloat64()*std
}
