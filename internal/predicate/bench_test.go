package predicate

import (
	"testing"

	"github.com/scorpiondb/scorpion/internal/relation"
)

func benchTable(b *testing.B, n int) *relation.Table {
	b.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "d", Kind: relation.Discrete},
	)
	bl := relation.NewBuilder(schema)
	vals := []string{"a", "b", "c", "e", "f"}
	for i := 0; i < n; i++ {
		bl.MustAppend(relation.Row{
			relation.F(float64(i % 1000)),
			relation.S(vals[i%len(vals)]),
		})
	}
	return bl.Build()
}

func BenchmarkPredicateEvalRange(b *testing.B) {
	tbl := benchTable(b, 100_000)
	p := MustNew(NewRangeClause(0, "x", 100, 500, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eval(tbl, nil)
	}
}

func BenchmarkPredicateEvalConjunction(b *testing.B) {
	tbl := benchTable(b, 100_000)
	p := MustNew(
		NewRangeClause(0, "x", 100, 500, false),
		NewSetClause(1, "d", []int32{0, 2}),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Count(tbl, nil)
	}
}

func BenchmarkPredicateIntersect(b *testing.B) {
	p := MustNew(
		NewRangeClause(0, "x", 0, 600, false),
		NewSetClause(1, "d", []int32{0, 1, 2}),
	)
	q := MustNew(
		NewRangeClause(0, "x", 300, 900, false),
		NewSetClause(1, "d", []int32{1, 2, 3}),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = p.Intersect(q)
	}
}

func BenchmarkPredicateKey(b *testing.B) {
	p := MustNew(
		NewRangeClause(0, "x", 12.5, 600.25, true),
		NewSetClause(1, "d", []int32{0, 1, 2, 3}),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Key()
	}
}
