package predicate

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// testTable builds a small mixed-kind table:
//
//	x (continuous), y (continuous), color (discrete: red, green, blue)
func testTable(t testing.TB) *relation.Table {
	t.Helper()
	schema := relation.MustSchema(
		relation.Column{Name: "x", Kind: relation.Continuous},
		relation.Column{Name: "y", Kind: relation.Continuous},
		relation.Column{Name: "color", Kind: relation.Discrete},
	)
	b := relation.NewBuilder(schema)
	colors := []string{"red", "green", "blue"}
	for i := 0; i < 30; i++ {
		b.MustAppend(relation.Row{
			relation.F(float64(i)),
			relation.F(float64(i % 10)),
			relation.S(colors[i%3]),
		})
	}
	return b.Build()
}

func TestRangeClauseMatch(t *testing.T) {
	tbl := testTable(t)
	p := MustNew(NewRangeClause(0, "x", 5, 10, false))
	got := p.Eval(tbl, nil).Rows()
	want := []int{5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("Eval rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Eval rows = %v, want %v", got, want)
		}
	}
	// Inclusive upper bound adds row 10.
	p = MustNew(NewRangeClause(0, "x", 5, 10, true))
	if n := p.Count(tbl, nil); n != 6 {
		t.Fatalf("inclusive Count = %d, want 6", n)
	}
}

func TestSetClauseMatch(t *testing.T) {
	tbl := testTable(t)
	colorCol := tbl.Schema().MustIndex("color")
	red, _ := tbl.Dict(colorCol).Lookup("red")
	p := MustNew(NewSetClause(colorCol, "color", []int32{red}))
	if n := p.Count(tbl, nil); n != 10 {
		t.Fatalf("red count = %d, want 10", n)
	}
	// Evaluation restricted to a universe.
	universe := relation.RowSetOf(tbl.NumRows(), 0, 1, 2, 3, 4, 5)
	if n := p.Count(tbl, universe); n != 2 { // rows 0, 3
		t.Fatalf("red count in universe = %d, want 2", n)
	}
}

func TestSetClauseDeduplicatesAndSorts(t *testing.T) {
	c := NewSetClause(0, "c", []int32{5, 1, 5, 3, 1})
	if len(c.Values) != 3 || c.Values[0] != 1 || c.Values[1] != 3 || c.Values[2] != 5 {
		t.Fatalf("Values = %v, want [1 3 5]", c.Values)
	}
}

func TestConjunction(t *testing.T) {
	tbl := testTable(t)
	colorCol := tbl.Schema().MustIndex("color")
	red, _ := tbl.Dict(colorCol).Lookup("red")
	p := MustNew(
		NewRangeClause(0, "x", 0, 15, false),
		NewSetClause(colorCol, "color", []int32{red}),
	)
	// x<15 and red: rows 0,3,6,9,12.
	if n := p.Count(tbl, nil); n != 5 {
		t.Fatalf("conjunction count = %d, want 5", n)
	}
}

func TestNewRejectsDuplicateColumns(t *testing.T) {
	_, err := New(
		NewRangeClause(0, "x", 0, 1, false),
		NewRangeClause(0, "x", 2, 3, false),
	)
	if err == nil {
		t.Fatal("expected duplicate-column error")
	}
}

func TestTruePredicate(t *testing.T) {
	tbl := testTable(t)
	p := True()
	if !p.IsTrue() {
		t.Fatal("True() not IsTrue")
	}
	if n := p.Count(tbl, nil); n != tbl.NumRows() {
		t.Fatalf("True matches %d rows, want %d", n, tbl.NumRows())
	}
	if p.String() != "true" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestIntersect(t *testing.T) {
	a := MustNew(NewRangeClause(0, "x", 0, 10, false))
	b := MustNew(NewRangeClause(0, "x", 5, 15, true))
	m, ok := a.Intersect(b)
	if !ok {
		t.Fatal("intersection reported empty")
	}
	c := m.Clauses()[0]
	if c.Lo != 5 || c.Hi != 10 || c.HiInc {
		t.Fatalf("intersection = %+v, want [5,10)", c)
	}

	// Disjoint ranges are empty.
	c2 := MustNew(NewRangeClause(0, "x", 20, 30, false))
	if _, ok := a.Intersect(c2); ok {
		t.Fatal("disjoint intersection reported non-empty")
	}

	// Different attributes conjoin.
	d := MustNew(NewRangeClause(1, "y", 0, 5, false))
	m, ok = a.Intersect(d)
	if !ok || m.NumClauses() != 2 {
		t.Fatalf("cross-attribute intersect = %v, %v", m, ok)
	}
}

func TestIntersectDiscrete(t *testing.T) {
	a := MustNew(NewSetClause(2, "color", []int32{0, 1}))
	b := MustNew(NewSetClause(2, "color", []int32{1, 2}))
	m, ok := a.Intersect(b)
	if !ok {
		t.Fatal("intersection reported empty")
	}
	if vs := m.Clauses()[0].Values; len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("values = %v, want [1]", vs)
	}
	c := MustNew(NewSetClause(2, "color", []int32{5}))
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint discrete intersection reported non-empty")
	}
}

func TestMerge(t *testing.T) {
	a := MustNew(
		NewRangeClause(0, "x", 0, 10, false),
		NewRangeClause(1, "y", 2, 4, false),
	)
	b := MustNew(
		NewRangeClause(0, "x", 20, 30, true),
	)
	m := a.Merge(b)
	// y is unconstrained in b, so it must vanish from the merge.
	if m.NumClauses() != 1 {
		t.Fatalf("merge clauses = %d, want 1", m.NumClauses())
	}
	c := m.Clauses()[0]
	if c.Lo != 0 || c.Hi != 30 || !c.HiInc {
		t.Fatalf("merged range = %+v, want [0,30]", c)
	}
}

func TestMergeDiscrete(t *testing.T) {
	a := MustNew(NewSetClause(2, "color", []int32{0, 2}))
	b := MustNew(NewSetClause(2, "color", []int32{1, 2}))
	m := a.Merge(b)
	if vs := m.Clauses()[0].Values; len(vs) != 3 {
		t.Fatalf("union = %v, want 3 codes", vs)
	}
}

func TestContains(t *testing.T) {
	outer := MustNew(NewRangeClause(0, "x", 0, 100, true))
	inner := MustNew(
		NewRangeClause(0, "x", 10, 20, false),
		NewRangeClause(1, "y", 0, 5, false),
	)
	if !outer.Contains(inner) {
		t.Error("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner should not contain outer")
	}
	if !True().Contains(outer) {
		t.Error("true should contain everything")
	}
	if outer.Contains(True()) {
		t.Error("range should not contain true")
	}
}

func TestContainsBoundaryInclusivity(t *testing.T) {
	halfOpen := MustNew(NewRangeClause(0, "x", 0, 10, false))
	closed := MustNew(NewRangeClause(0, "x", 0, 10, true))
	if halfOpen.Contains(closed) {
		t.Error("[0,10) must not contain [0,10]")
	}
	if !closed.Contains(halfOpen) {
		t.Error("[0,10] must contain [0,10)")
	}
}

func TestContainedInSemantic(t *testing.T) {
	tbl := testTable(t)
	p := MustNew(NewRangeClause(0, "x", 0, 5, false))
	q := MustNew(NewRangeClause(0, "x", 0, 20, false))
	if !p.ContainedIn(q, tbl, nil) {
		t.Error("p ≺D q expected")
	}
	if q.ContainedIn(p, tbl, nil) {
		t.Error("q ≺D p not expected")
	}
}

func TestStringAndFormat(t *testing.T) {
	tbl := testTable(t)
	colorCol := tbl.Schema().MustIndex("color")
	red, _ := tbl.Dict(colorCol).Lookup("red")
	p := MustNew(
		NewRangeClause(0, "x", 0, 10, false),
		NewSetClause(colorCol, "color", []int32{red}),
	)
	s := p.Format(tbl)
	if !strings.Contains(s, "x <") || !strings.Contains(s, "'red'") {
		t.Errorf("Format = %q", s)
	}
	if p.Key() == True().Key() {
		t.Error("distinct predicates share a Key")
	}
}

func TestVolume(t *testing.T) {
	tbl := testTable(t)
	space, err := NewSpace(tbl, []string{"x", "color"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// x spans [0,29]; a [0,14.5] clause covers half. color clause with 1 of 3
	// values covers a third.
	colorCol := tbl.Schema().MustIndex("color")
	p := MustNew(
		NewRangeClause(0, "x", 0, 14.5, false),
		NewSetClause(colorCol, "color", []int32{0}),
	)
	got := p.Volume(space)
	want := 0.5 * (1.0 / 3.0)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Volume = %v, want %v", got, want)
	}
	if v := True().Volume(space); v != 1 {
		t.Errorf("Volume(true) = %v, want 1", v)
	}
}

func TestSpace(t *testing.T) {
	tbl := testTable(t)
	space, err := NewSpace(tbl, []string{"x", "color"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(space.Columns()) != 2 {
		t.Fatalf("space columns = %v", space.Columns())
	}
	d, ok := space.Domain(0)
	if !ok || d.Lo != 0 || d.Hi != 29 {
		t.Errorf("x domain = %+v", d)
	}
	colorCol := tbl.Schema().MustIndex("color")
	d, ok = space.Domain(colorCol)
	if !ok || d.Card != 3 {
		t.Errorf("color domain = %+v", d)
	}
	fc := space.FullClause(0)
	if fc.Lo != 0 || fc.Hi != 29 || !fc.HiInc {
		t.Errorf("FullClause(x) = %+v", fc)
	}
	fc = space.FullClause(colorCol)
	if len(fc.Values) != 3 {
		t.Errorf("FullClause(color) = %+v", fc)
	}
	if _, err := NewSpace(tbl, []string{"missing"}, nil); err == nil {
		t.Error("expected error for unknown attribute")
	}
}

func TestAdjacent(t *testing.T) {
	tbl := testTable(t)
	space, _ := NewSpace(tbl, []string{"x", "y"}, nil)
	a := MustNew(NewRangeClause(0, "x", 0, 10, false))
	b := MustNew(NewRangeClause(0, "x", 10, 20, false))
	c := MustNew(NewRangeClause(0, "x", 25, 30, false))
	if !space.Adjacent(a, b, 1e-9) {
		t.Error("touching ranges should be adjacent")
	}
	if space.Adjacent(a, c, 1e-9) {
		t.Error("separated ranges should not be adjacent")
	}
	// Different attributes are always adjacent (each spans the other's dim).
	d := MustNew(NewRangeClause(1, "y", 0, 1, false))
	if !space.Adjacent(a, d, 1e-9) {
		t.Error("cross-attribute predicates should be adjacent")
	}
}

// randomPredicate builds a random predicate over testTable's attributes.
func randomPredicate(rng *rand.Rand) Predicate {
	var clauses []Clause
	if rng.Intn(2) == 0 {
		lo := rng.Float64() * 25
		hi := lo + rng.Float64()*10
		clauses = append(clauses, NewRangeClause(0, "x", lo, hi, rng.Intn(2) == 0))
	}
	if rng.Intn(2) == 0 {
		lo := rng.Float64() * 8
		hi := lo + rng.Float64()*3
		clauses = append(clauses, NewRangeClause(1, "y", lo, hi, rng.Intn(2) == 0))
	}
	if rng.Intn(2) == 0 {
		n := 1 + rng.Intn(3)
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(rng.Intn(3))
		}
		clauses = append(clauses, NewSetClause(2, "color", codes))
	}
	return MustNew(clauses...)
}

// Property: Merge yields a predicate containing both inputs (syntactically).
func TestMergeIsUpperBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPredicate(rng), randomPredicate(rng)
		m := a.Merge(b)
		return m.Contains(a) && m.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Intersect result is contained in both inputs, and matches
// exactly the AND of the row sets.
func TestIntersectSemanticsProperty(t *testing.T) {
	tbl := testTable(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPredicate(rng), randomPredicate(rng)
		m, ok := a.Intersect(b)
		want := a.Eval(tbl, nil).Intersect(b.Eval(tbl, nil))
		if !ok {
			// Syntactically empty must imply semantically empty.
			return want.IsEmpty()
		}
		if !a.Contains(m) || !b.Contains(m) {
			return false
		}
		return m.Eval(tbl, nil).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: syntactic containment implies semantic containment.
func TestContainsImpliesContainedInProperty(t *testing.T) {
	tbl := testTable(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPredicate(rng), randomPredicate(rng)
		if a.Contains(b) && !b.ContainedIn(a, tbl, nil) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Contains is reflexive and transitive on random predicates.
func TestContainsPartialOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomPredicate(rng), randomPredicate(rng)
		c := a.Merge(b)
		if !a.Contains(a) {
			return false
		}
		// c contains a; a contains (a ∩ b) when non-empty — so c contains it.
		if m, ok := a.Intersect(b); ok {
			if !a.Contains(m) {
				return false
			}
			if !c.Contains(m) { // transitivity through a
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is stable across clause insertion order and distinguishes
// semantically distinct predicates built from the generator.
func TestKeyCanonicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPredicate(rng)
		cs := p.Clauses()
		if len(cs) < 2 {
			return true
		}
		// Rebuild with reversed clause order.
		rev := make([]Clause, len(cs))
		for i := range cs {
			rev[i] = cs[len(cs)-1-i]
		}
		q := MustNew(rev...)
		return p.Key() == q.Key() && p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Key is precomputed at construction; the accessor must be a pointer read,
// not a per-call string build. The scorer's memo lookup leans on this.
func TestKeyZeroAlloc(t *testing.T) {
	p := MustNew(
		NewRangeClause(0, "x", 1.25, 9.5, true),
		NewSetClause(2, "color", []int32{2, 0, 1}),
	)
	allocs := testing.AllocsPerRun(100, func() {
		if p.Key() == "" {
			t.Fatal("empty key")
		}
	})
	if allocs != 0 {
		t.Fatalf("Key allocated %v times per call; want 0", allocs)
	}
}

// The cached fingerprint must render exactly the historical fmt-based
// format ("col:[lo,hi,hiInc];" / "col:{v0,v1,...,};"), including %g float
// rendering and special values — persisted dedupe keys depend on it.
func TestKeyFormatMatchesLegacy(t *testing.T) {
	legacy := func(p Predicate) string {
		var b strings.Builder
		for _, c := range p.Clauses() {
			if c.Kind == relation.Continuous {
				fmt.Fprintf(&b, "%d:[%g,%g,%v];", c.Col, c.Lo, c.Hi, c.HiInc)
			} else {
				fmt.Fprintf(&b, "%d:{", c.Col)
				for _, v := range c.Values {
					fmt.Fprintf(&b, "%d,", v)
				}
				b.WriteString("};")
			}
		}
		return b.String()
	}
	cases := []Predicate{
		True(),
		MustNew(NewRangeClause(0, "x", 0, 10, false)),
		MustNew(NewRangeClause(1, "y", -0.5, math.Inf(1), true)),
		MustNew(NewRangeClause(1, "y", math.Inf(-1), 1e300, false)),
		MustNew(NewRangeClause(0, "x", 0.1, 0.30000000000000004, false)),
		MustNew(NewSetClause(2, "color", []int32{5, 3, 3, 0})),
		MustNew(
			NewRangeClause(0, "x", 1, 2, true),
			NewSetClause(2, "color", []int32{7}),
		),
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		cases = append(cases, randomPredicate(rng))
	}
	for _, p := range cases {
		if got, want := p.Key(), legacy(p); got != want {
			t.Fatalf("Key mismatch:\n got  %q\n want %q", got, want)
		}
	}
}

// Derived predicates (Intersect, Merge) must carry fresh fingerprints, not
// stale copies of their inputs'.
func TestKeyDerivedPredicates(t *testing.T) {
	a := MustNew(NewRangeClause(0, "x", 0, 10, false))
	b := MustNew(NewRangeClause(0, "x", 5, 20, false))
	m, ok := a.Intersect(b)
	if !ok {
		t.Fatal("intersect empty")
	}
	if m.Key() == a.Key() || m.Key() == b.Key() {
		t.Fatalf("intersection key %q not distinct from inputs", m.Key())
	}
	u := a.Merge(b)
	if got, want := u.Key(), MustNew(NewRangeClause(0, "x", 0, 20, false)).Key(); got != want {
		t.Fatalf("merge key %q != rebuilt %q", got, want)
	}
}
