// Package predicate implements Scorpion's explanation language: conjunctions
// of range clauses over continuous attributes and set-containment clauses
// over discrete attributes, with at most one clause per attribute (§3.1 of
// the paper).
//
// Predicates are immutable values. All operations (intersection,
// bounding-box merge, containment, evaluation) return new predicates or
// derived data. Discrete clauses hold dictionary codes of one specific base
// table; a predicate is only meaningful against the table whose dictionaries
// coded it.
package predicate

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// Clause constrains a single attribute. Exactly one of the range fields
// (continuous) or Values (discrete) is meaningful, according to Kind.
//
// Continuous clauses match Lo <= v < Hi, or Lo <= v <= Hi when HiInc is set.
// Discrete clauses match rows whose code appears in Values (sorted).
type Clause struct {
	Col    int // column index in the base table's schema
	Name   string
	Kind   relation.Kind
	Lo     float64
	Hi     float64
	HiInc  bool
	Values []int32
}

// NewRangeClause builds a continuous clause. It panics if lo > hi.
func NewRangeClause(col int, name string, lo, hi float64, hiInc bool) Clause {
	if lo > hi {
		panic(fmt.Sprintf("predicate: empty range [%v,%v)", lo, hi))
	}
	return Clause{Col: col, Name: name, Kind: relation.Continuous, Lo: lo, Hi: hi, HiInc: hiInc}
}

// NewSetClause builds a discrete clause over the given codes. The codes are
// copied, de-duplicated and sorted.
func NewSetClause(col int, name string, codes []int32) Clause {
	vs := make([]int32, len(codes))
	copy(vs, codes)
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	// De-duplicate in place.
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return Clause{Col: col, Name: name, Kind: relation.Discrete, Values: out}
}

// matchFloat reports whether the continuous clause admits v.
func (c Clause) matchFloat(v float64) bool {
	if v < c.Lo {
		return false
	}
	if c.HiInc {
		return v <= c.Hi
	}
	return v < c.Hi
}

// matchCode reports whether the discrete clause admits the code.
func (c Clause) matchCode(code int32) bool {
	i := sort.Search(len(c.Values), func(i int) bool { return c.Values[i] >= code })
	return i < len(c.Values) && c.Values[i] == code
}

// isEmptyRange reports whether the continuous clause can match nothing.
func (c Clause) isEmptyRange() bool {
	return c.Lo > c.Hi || (c.Lo == c.Hi && !c.HiInc)
}

// containsClause reports whether c admits every value admitted by o
// (syntactic containment on a single attribute; both clauses must share
// Col and Kind).
func (c Clause) containsClause(o Clause) bool {
	if c.Col != o.Col || c.Kind != o.Kind {
		return false
	}
	if c.Kind == relation.Continuous {
		if o.Lo < c.Lo {
			return false
		}
		if o.Hi < c.Hi {
			return true
		}
		if o.Hi > c.Hi {
			return false
		}
		return c.HiInc || !o.HiInc
	}
	// Discrete: o.Values ⊆ c.Values. Both sorted.
	i := 0
	for _, v := range o.Values {
		for i < len(c.Values) && c.Values[i] < v {
			i++
		}
		if i >= len(c.Values) || c.Values[i] != v {
			return false
		}
	}
	return true
}

// Predicate is a conjunction of clauses, at most one per attribute, kept
// sorted by column index. The zero Predicate has no clauses and matches
// every row.
type Predicate struct {
	clauses []Clause
	// key is the canonical fingerprint, computed once at construction and
	// shared by copies of the value. Predicates are immutable, so the box
	// is written exactly once before the value escapes — safe to read from
	// any goroutine. nil only for the zero value (True), whose key is "".
	key *string
}

// newPredicate wraps sorted clauses and stamps their canonical fingerprint.
func newPredicate(clauses []Clause) Predicate {
	k := buildKey(clauses)
	return Predicate{clauses: clauses, key: &k}
}

// True returns the empty predicate, which matches all rows.
func True() Predicate { return Predicate{} }

// New builds a predicate from clauses. It returns an error if two clauses
// name the same column.
func New(clauses ...Clause) (Predicate, error) {
	cs := make([]Clause, len(clauses))
	copy(cs, clauses)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Col < cs[j].Col })
	for i := 1; i < len(cs); i++ {
		if cs[i].Col == cs[i-1].Col {
			return Predicate{}, fmt.Errorf("predicate: duplicate clause on column %q", cs[i].Name)
		}
	}
	return newPredicate(cs), nil
}

// MustNew is New that panics on error.
func MustNew(clauses ...Clause) Predicate {
	p, err := New(clauses...)
	if err != nil {
		panic(err)
	}
	return p
}

// Clauses returns the predicate's clauses in column order (shared slice;
// treat as read-only).
func (p Predicate) Clauses() []Clause { return p.clauses }

// NumClauses reports the number of clauses.
func (p Predicate) NumClauses() int { return len(p.clauses) }

// IsTrue reports whether the predicate matches everything (no clauses).
func (p Predicate) IsTrue() bool { return len(p.clauses) == 0 }

// ClauseOn returns the clause on the given column, if any.
func (p Predicate) ClauseOn(col int) (Clause, bool) {
	i := sort.Search(len(p.clauses), func(i int) bool { return p.clauses[i].Col >= col })
	if i < len(p.clauses) && p.clauses[i].Col == col {
		return p.clauses[i], true
	}
	return Clause{}, false
}

// Columns returns the column indexes constrained by the predicate, ascending.
func (p Predicate) Columns() []int {
	out := make([]int, len(p.clauses))
	for i, c := range p.clauses {
		out[i] = c.Col
	}
	return out
}

// Match reports whether row r of table t satisfies the predicate.
func (p Predicate) Match(t *relation.Table, r int) bool {
	for _, c := range p.clauses {
		if c.Kind == relation.Continuous {
			if !c.matchFloat(t.Floats(c.Col)[r]) {
				return false
			}
		} else {
			if !c.matchCode(t.Codes(c.Col)[r]) {
				return false
			}
		}
	}
	return true
}

// Eval returns the rows of universe (or the whole table when universe is
// nil) that satisfy the predicate.
func (p Predicate) Eval(t *relation.Table, universe *relation.RowSet) *relation.RowSet {
	out := relation.NewRowSet(t.NumRows())
	if universe == nil {
		for r := 0; r < t.NumRows(); r++ {
			if p.Match(t, r) {
				out.Add(r)
			}
		}
		return out
	}
	universe.ForEach(func(r int) {
		if p.Match(t, r) {
			out.Add(r)
		}
	})
	return out
}

// Count returns |p(universe)| without materializing the row set.
func (p Predicate) Count(t *relation.Table, universe *relation.RowSet) int {
	n := 0
	if universe == nil {
		for r := 0; r < t.NumRows(); r++ {
			if p.Match(t, r) {
				n++
			}
		}
		return n
	}
	universe.ForEach(func(r int) {
		if p.Match(t, r) {
			n++
		}
	})
	return n
}

// Intersect conjoins two predicates. The second result is false when the
// intersection is syntactically empty (some shared attribute has
// incompatible clauses).
func (p Predicate) Intersect(o Predicate) (Predicate, bool) {
	out := make([]Clause, 0, len(p.clauses)+len(o.clauses))
	i, j := 0, 0
	for i < len(p.clauses) && j < len(o.clauses) {
		a, b := p.clauses[i], o.clauses[j]
		switch {
		case a.Col < b.Col:
			out = append(out, a)
			i++
		case a.Col > b.Col:
			out = append(out, b)
			j++
		default:
			m, ok := intersectClauses(a, b)
			if !ok {
				return Predicate{}, false
			}
			out = append(out, m)
			i++
			j++
		}
	}
	out = append(out, p.clauses[i:]...)
	out = append(out, o.clauses[j:]...)
	return newPredicate(out), true
}

func intersectClauses(a, b Clause) (Clause, bool) {
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("predicate: kind mismatch on column %q", a.Name))
	}
	if a.Kind == relation.Continuous {
		m := a
		if b.Lo > m.Lo {
			m.Lo = b.Lo
		}
		if b.Hi < m.Hi {
			m.Hi, m.HiInc = b.Hi, b.HiInc
		} else if b.Hi == m.Hi {
			m.HiInc = m.HiInc && b.HiInc
		}
		if m.isEmptyRange() {
			return Clause{}, false
		}
		return m, true
	}
	// Discrete: sorted intersection.
	vals := make([]int32, 0, min(len(a.Values), len(b.Values)))
	i, j := 0, 0
	for i < len(a.Values) && j < len(b.Values) {
		switch {
		case a.Values[i] < b.Values[j]:
			i++
		case a.Values[i] > b.Values[j]:
			j++
		default:
			vals = append(vals, a.Values[i])
			i++
			j++
		}
	}
	if len(vals) == 0 {
		return Clause{}, false
	}
	m := a
	m.Values = vals
	return m, true
}

// Merge computes the minimum bounding predicate of p and o (§4.3): ranges
// take the bounding interval, discrete sets take the union. An attribute
// constrained by only one of the two is unconstrained in the result, because
// the other predicate spans that attribute's full domain.
func (p Predicate) Merge(o Predicate) Predicate {
	out := make([]Clause, 0, min(len(p.clauses), len(o.clauses)))
	i, j := 0, 0
	for i < len(p.clauses) && j < len(o.clauses) {
		a, b := p.clauses[i], o.clauses[j]
		switch {
		case a.Col < b.Col:
			i++
		case a.Col > b.Col:
			j++
		default:
			out = append(out, mergeClauses(a, b))
			i++
			j++
		}
	}
	return newPredicate(out)
}

func mergeClauses(a, b Clause) Clause {
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("predicate: kind mismatch on column %q", a.Name))
	}
	if a.Kind == relation.Continuous {
		m := a
		if b.Lo < m.Lo {
			m.Lo = b.Lo
		}
		if b.Hi > m.Hi {
			m.Hi, m.HiInc = b.Hi, b.HiInc
		} else if b.Hi == m.Hi {
			m.HiInc = m.HiInc || b.HiInc
		}
		return m
	}
	// Discrete: sorted union.
	vals := make([]int32, 0, len(a.Values)+len(b.Values))
	i, j := 0, 0
	for i < len(a.Values) || j < len(b.Values) {
		switch {
		case j >= len(b.Values) || (i < len(a.Values) && a.Values[i] < b.Values[j]):
			vals = append(vals, a.Values[i])
			i++
		case i >= len(a.Values) || a.Values[i] > b.Values[j]:
			vals = append(vals, b.Values[j])
			j++
		default:
			vals = append(vals, a.Values[i])
			i++
			j++
		}
	}
	m := a
	m.Values = vals
	return m
}

// Contains reports syntactic containment: every row matched by o is matched
// by p, provable from the clauses alone. For each clause of p, o must have a
// clause on the same attribute that p's clause contains. (Attributes p does
// not constrain are unconstrained, hence contained.)
func (p Predicate) Contains(o Predicate) bool {
	for _, pc := range p.clauses {
		oc, ok := o.ClauseOn(pc.Col)
		if !ok {
			return false
		}
		if !pc.containsClause(oc) {
			return false
		}
	}
	return true
}

// ContainedIn implements the paper's p ≺D q relation semantically: p(D) ⊆
// q(D) over the rows of universe. Unlike Contains, this consults the data.
func (p Predicate) ContainedIn(q Predicate, t *relation.Table, universe *relation.RowSet) bool {
	contained := true
	check := func(r int) {
		if !contained {
			return
		}
		if p.Match(t, r) && !q.Match(t, r) {
			contained = false
		}
	}
	if universe == nil {
		for r := 0; r < t.NumRows() && contained; r++ {
			check(r)
		}
	} else {
		universe.ForEach(check)
	}
	return contained
}

// Equal reports whether two predicates have identical clauses.
func (p Predicate) Equal(o Predicate) bool {
	if len(p.clauses) != len(o.clauses) {
		return false
	}
	for i := range p.clauses {
		a, b := p.clauses[i], o.clauses[i]
		if a.Col != b.Col || a.Kind != b.Kind {
			return false
		}
		if a.Kind == relation.Continuous {
			if a.Lo != b.Lo || a.Hi != b.Hi || a.HiInc != b.HiInc {
				return false
			}
		} else {
			if len(a.Values) != len(b.Values) {
				return false
			}
			for k := range a.Values {
				if a.Values[k] != b.Values[k] {
					return false
				}
			}
		}
	}
	return true
}

// Key returns a canonical string usable as a map key for de-duplication.
// The fingerprint is computed once when the predicate is constructed, so
// the hot callers — the scorer's memo lookup, candidate de-duplication,
// obs labels — pay a pointer read, not a string build, per call.
func (p Predicate) Key() string {
	if p.key != nil {
		return *p.key
	}
	// Zero-value predicates (True) never went through a constructor; their
	// key is the empty clause list's rendering.
	return buildKey(p.clauses)
}

// buildKey renders the canonical fingerprint of a sorted clause list:
// "col:[lo,hi,hiInc];" per continuous clause, "col:{v0,v1,...,};" per
// discrete clause.
func buildKey(clauses []Clause) string {
	var b strings.Builder
	for _, c := range clauses {
		b.WriteString(strconv.Itoa(c.Col))
		if c.Kind == relation.Continuous {
			b.WriteString(":[")
			b.WriteString(strconv.FormatFloat(c.Lo, 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(c.Hi, 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatBool(c.HiInc))
			b.WriteString("];")
		} else {
			b.WriteString(":{")
			for _, v := range c.Values {
				b.WriteString(strconv.FormatInt(int64(v), 10))
				b.WriteByte(',')
			}
			b.WriteString("};")
		}
	}
	return b.String()
}

// String renders the predicate with dictionary codes (use Format for
// human-readable discrete values).
func (p Predicate) String() string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p.clauses))
	for i, c := range p.clauses {
		if c.Kind == relation.Continuous {
			hi := "<"
			if c.HiInc {
				hi = "<="
			}
			parts[i] = fmt.Sprintf("%.4g <= %s %s %.4g", c.Lo, c.Name, hi, c.Hi)
		} else {
			vals := make([]string, len(c.Values))
			for j, v := range c.Values {
				vals[j] = fmt.Sprintf("#%d", v)
			}
			parts[i] = fmt.Sprintf("%s in (%s)", c.Name, strings.Join(vals, ", "))
		}
	}
	return strings.Join(parts, " and ")
}

// Format renders the predicate with discrete codes resolved through the
// table's dictionaries.
func (p Predicate) Format(t *relation.Table) string {
	if p.IsTrue() {
		return "true"
	}
	parts := make([]string, len(p.clauses))
	for i, c := range p.clauses {
		if c.Kind == relation.Continuous {
			hi := "<"
			if c.HiInc {
				hi = "<="
			}
			parts[i] = fmt.Sprintf("%.4g <= %s %s %.4g", c.Lo, c.Name, hi, c.Hi)
		} else {
			dict := t.Dict(c.Col)
			vals := make([]string, len(c.Values))
			for j, v := range c.Values {
				vals[j] = fmt.Sprintf("'%s'", dict.Value(v))
			}
			parts[i] = fmt.Sprintf("%s in (%s)", c.Name, strings.Join(vals, ", "))
		}
	}
	return strings.Join(parts, " and ")
}

// Volume returns the fraction of the search space the predicate covers,
// assuming independent uniform attributes: the product over its clauses of
// (range width / domain width) for continuous and (|values| / cardinality)
// for discrete attributes. Attributes without clauses contribute 1. Used by
// the Merger's cached-tuple influence approximation (§6.3).
func (p Predicate) Volume(space *Space) float64 {
	v := 1.0
	for _, c := range p.clauses {
		d, ok := space.Domain(c.Col)
		if !ok {
			continue
		}
		if c.Kind == relation.Continuous {
			w := d.Hi - d.Lo
			if w <= 0 {
				continue
			}
			frac := (c.Hi - c.Lo) / w
			v *= math.Max(0, math.Min(1, frac))
		} else {
			if d.Card <= 0 {
				continue
			}
			v *= float64(len(c.Values)) / float64(d.Card)
		}
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
