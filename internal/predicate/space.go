package predicate

import (
	"fmt"

	"github.com/scorpiondb/scorpion/internal/relation"
)

// Domain describes one attribute's extent within the search space:
// [Lo, Hi] for continuous attributes, Card distinct values for discrete ones.
type Domain struct {
	Lo, Hi float64
	Card   int
}

// Space is the predicate search space: the subset of a relation's attributes
// (A_rest in the paper — everything that is neither the group-by key nor the
// aggregate input) together with their observed domains. A space built over
// a relation.View spans only that view's rows — the shard-local search
// space — while sharing the base table's dictionaries, so its discrete
// clauses stay meaningful globally.
type Space struct {
	rel     relation.Relation
	table   *relation.Table // rel.Data(): the concrete window hot loops use
	cols    []int
	domains map[int]Domain
}

// NewSpace builds the search space over the named attributes of rel,
// measuring each attribute's domain over the given rows (local ids; all
// rows if set is nil).
func NewSpace(rel relation.Relation, attrs []string, rows *relation.RowSet) (*Space, error) {
	s := &Space{rel: rel, table: rel.Data(), domains: make(map[int]Domain, len(attrs))}
	for _, name := range attrs {
		col, ok := rel.Schema().Index(name)
		if !ok {
			return nil, fmt.Errorf("predicate: no attribute %q in schema", name)
		}
		s.cols = append(s.cols, col)
		if rel.Schema().Column(col).Kind == relation.Continuous {
			st := rel.FloatStats(col, rows)
			if st.Count == 0 {
				st.Min, st.Max = 0, 0
			}
			s.domains[col] = Domain{Lo: st.Min, Hi: st.Max}
		} else {
			s.domains[col] = Domain{Card: rel.Dict(col).Len()}
		}
	}
	return s, nil
}

// Table returns the concrete columnar window the space is defined over
// (the table itself, or a view's zero-copy sub-table). Row ids are local.
func (s *Space) Table() *relation.Table { return s.table }

// Relation returns the relation the space was built over.
func (s *Space) Relation() relation.Relation { return s.rel }

// AttrNames returns the names of the space's attributes in column order —
// what a shard coordinator needs to rebuild the same space over a view.
func (s *Space) AttrNames() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = s.Name(c)
	}
	return out
}

// Columns returns the column indexes of the space's attributes.
func (s *Space) Columns() []int { return s.cols }

// Domain returns the domain of the given column, if it is in the space.
func (s *Space) Domain(col int) (Domain, bool) {
	d, ok := s.domains[col]
	return d, ok
}

// Kind returns the kind of the given column.
func (s *Space) Kind(col int) relation.Kind { return s.table.Schema().Column(col).Kind }

// Name returns the name of the given column.
func (s *Space) Name(col int) string { return s.table.Schema().Column(col).Name }

// FullClause returns a clause spanning the entire domain of col: the full
// closed range for continuous attributes, or all dictionary codes for
// discrete ones.
func (s *Space) FullClause(col int) Clause {
	d := s.domains[col]
	if s.Kind(col) == relation.Continuous {
		return NewRangeClause(col, s.Name(col), d.Lo, d.Hi, true)
	}
	codes := make([]int32, d.Card)
	for i := range codes {
		codes[i] = int32(i)
	}
	return NewSetClause(col, s.Name(col), codes)
}

// Adjacent reports whether two predicates are adjacent in this space and can
// be merged by the Merger: on every continuous attribute constrained by both,
// the ranges overlap or touch within eps; attributes constrained by only one
// predicate span the full domain on the other side and are always adjacent;
// discrete clauses never block adjacency (their union is always valid).
func (s *Space) Adjacent(p, q Predicate, eps float64) bool {
	for _, pc := range p.Clauses() {
		if pc.Kind != relation.Continuous {
			continue
		}
		qc, ok := q.ClauseOn(pc.Col)
		if !ok {
			continue
		}
		if pc.Lo-eps > qc.Hi || qc.Lo-eps > pc.Hi {
			return false
		}
	}
	return true
}
